// Replclient: a complete client of the replicated serving layer over
// real TCP on loopback. It boots a primary and a read replica
// in-process (the same wiring `nvwal-server` does), then drives them
// the way an application would: writes through the retrying client,
// replica-lag observation via STATUS, and snapshot reads served by
// the replica at its applied mark.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	const (
		primaryAddr = "127.0.0.1:7170"
		replicaAddr = "127.0.0.1:7180"
		shipAddr    = "127.0.0.1:7181"
	)

	// --- primary: NVWAL database + replication + TCP front-end -------
	pplat, err := platform.NewTuna()
	if err != nil {
		log.Fatal(err)
	}
	d, err := db.Open(pplat, "primary.db", db.Options{
		Journal:    db.JournalNVWAL,
		NVWAL:      core.VariantUHLSDiff(),
		Concurrent: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		log.Fatal(err)
	}
	// Semi-sync: a successful Put means the write is on the replica too.
	primary, err := repl.NewPrimary(d, repl.PrimaryOptions{Epoch: 1, AckReplicas: 1})
	if err != nil {
		log.Fatal(err)
	}
	plis, err := netsim.ListenTCP(primaryAddr)
	if err != nil {
		log.Fatal(err)
	}
	psrv := server.New(primary, server.Options{
		Epoch:    1,
		Clock:    pplat.Clock,
		Pressure: d.Pressure,
	})
	go psrv.Serve(plis)

	// --- replica: own platform, own NVWAL, read-only front-end -------
	rplat, err := platform.NewTuna()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repl.NewReplica(rplat, "replica.db", repl.ReplicaOptions{Epoch: 1})
	if err != nil {
		log.Fatal(err)
	}
	shipLis, err := netsim.ListenTCP(shipAddr)
	if err != nil {
		log.Fatal(err)
	}
	go rep.Serve(shipLis)
	rlis, err := netsim.ListenTCP(replicaAddr)
	if err != nil {
		log.Fatal(err)
	}
	rsrv := server.New(rep, server.Options{Epoch: 1, ReadOnly: true, Clock: rplat.Clock})
	go rsrv.Serve(rlis)

	primary.AddReplica(shipAddr, netsim.DialTCP)

	// --- the client ---------------------------------------------------
	// Writes need the primary; the client discovers it by probing the
	// address list with STATUS and follows fencing epochs on failover.
	writer := server.NewClient(netsim.DialTCP, []string{primaryAddr, replicaAddr}, server.ClientOptions{})
	defer writer.Close()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("user:%04d", i)
		if _, err := writer.Put("kv", []byte(key), []byte(fmt.Sprintf("profile-%d", i))); err != nil {
			log.Fatalf("put %s: %v", key, err)
		}
	}
	seq, err := writer.Batch("kv", []server.Op{
		{Key: []byte("config:theme"), Value: []byte("dark")},
		{Key: []byte("config:lang"), Value: []byte("en")},
		{Key: []byte("user:0003"), Delete: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote 10 users + 1 batch (last commit seq %d), all replica-acked\n", seq)

	st, err := writer.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary: role=%s epoch=%d mark=%d lag=%d\n", st.Role, st.Epoch, st.Mark, st.Lag)

	// Reads can go anywhere: this client is pinned to the replica and
	// sees the snapshot at its applied mark — never a torn batch.
	reader := server.NewClient(netsim.DialTCP, []string{replicaAddr}, server.ClientOptions{
		ReadAnywhere: true,
		RecvTimeout:  500 * time.Millisecond,
	})
	defer reader.Close()
	for _, key := range []string{"user:0001", "user:0003", "config:theme"} {
		v, found, err := reader.Get("kv", []byte(key))
		if err != nil {
			log.Fatalf("replica get %s: %v", key, err)
		}
		if found {
			fmt.Printf("replica %s = %q\n", key, v)
		} else {
			fmt.Printf("replica %s absent (deleted in the batch)\n", key)
		}
	}

	// Hedged reads over real TCP run in the first-response-wins
	// degenerate form (no virtual clock): a read is duplicated to the
	// second endpoint when the first is slow, and a dead first target
	// must degrade to the plain retry loop instead of failing the read.
	hedged := server.NewClient(netsim.DialTCP, []string{replicaAddr, primaryAddr}, server.ClientOptions{
		ReadAnywhere: true,
		HedgeDelay:   200 * time.Microsecond,
		RecvTimeout:  200 * time.Millisecond,
	})
	defer hedged.Close()
	v, found, err := hedged.Get("kv", []byte("user:0001"))
	if err != nil || !found {
		log.Fatalf("hedged get: found=%v err=%v", found, err)
	}
	fmt.Printf("hedged read user:0001 = %q\n", v)
	// Kill the replica front-end: the hedged reader's first target goes
	// dark mid-session, and reads must still complete via the primary.
	rsrv.Close()
	v, found, err = hedged.Get("kv", []byte("config:theme"))
	if err != nil || !found {
		log.Fatalf("hedged get with replica down: found=%v err=%v", found, err)
	}
	fmt.Printf("hedged read with replica down config:theme = %q\n", v)

	rsrv.Close()
	rep.Close()
	psrv.Close()
	primary.Close()
	_ = d.Close()
}
