// Analytics: consistent reporting over snapshot read transactions while
// a writer keeps ingesting — the reader/writer concurrency WAL mode
// brought to SQLite, on top of NVWAL. An order stream commits
// continuously; periodic reports each read one frozen snapshot, so
// their totals are internally consistent even though the table changes
// underneath them.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/platform"
)

func main() {
	plat, err := platform.NewNexus5()
	if err != nil {
		log.Fatal(err)
	}
	d, err := db.Open(plat, "orders.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CreateTable("orders"); err != nil {
		log.Fatal(err)
	}

	ingest := func(first, count int) {
		for i := first; i < first+count; i++ {
			tx, err := d.Begin()
			if err != nil {
				log.Fatal(err)
			}
			key := fmt.Sprintf("order-%06d", i)
			val := make([]byte, 8)
			binary.LittleEndian.PutUint64(val, uint64(10+i%90)) // order amount
			if err := tx.Insert("orders", []byte(key), val); err != nil {
				log.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				log.Fatal(err)
			}
		}
	}

	report := func(snap *db.ReadTx, label string) {
		var n int
		var total uint64
		if err := snap.Scan("orders", func(_, v []byte) bool {
			n++
			total += binary.LittleEndian.Uint64(v)
			return true
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %4d orders, total amount %6d\n", label, n, total)
	}

	// Ingest a first batch, freeze a snapshot, keep ingesting, freeze
	// another — then run both reports *after* all the ingestion, proving
	// each sees exactly its frozen state.
	ingest(0, 300)
	snapA, err := d.BeginRead()
	if err != nil {
		log.Fatal(err)
	}
	ingest(300, 200)
	snapB, err := d.BeginRead()
	if err != nil {
		log.Fatal(err)
	}
	ingest(500, 150)

	report(snapA, "snapshot A (after 300)")
	report(snapB, "snapshot B (after 500)")
	live, _ := d.Count("orders")
	fmt.Printf("live view             : %4d orders\n", live)

	// Checkpointing waits for the readers.
	if err := d.Checkpoint(); err == nil {
		log.Fatal("checkpoint should have been blocked by open snapshots")
	}
	snapA.Close()
	snapB.Close()
	if err := d.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshots closed; checkpoint flushed the NVRAM log into the database file")
	fmt.Printf("total virtual time: %v\n", plat.Clock.Now())
}
