// Quickstart: open a database with NVWAL journaling on a simulated
// platform, run a transaction, crash the machine, and observe that
// committed data survives while uncommitted data does not.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

func main() {
	// Assemble the simulated hardware: NVRAM + cache hierarchy, flash
	// block device, EXT4, and the Heapo kernel heap manager.
	plat, err := platform.NewNexus5()
	if err != nil {
		log.Fatal(err)
	}

	// Open a database journaled by NVWAL with the paper's recommended
	// scheme: user-level heap + lazy synchronization + differential
	// logging (UH+LS+Diff).
	d, err := db.Open(plat, "app.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		log.Fatal(err)
	}

	// A committed transaction.
	tx, err := d.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert("kv", []byte("answer"), []byte("42")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// An uncommitted transaction, interrupted by a power failure.
	tx2, err := d.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx2.Insert("kv", []byte("volatile"), []byte("gone")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pulling the power mid-transaction...")
	plat.PowerFail(memsim.FailDropAll, 1)
	if err := plat.Reboot(); err != nil {
		log.Fatal(err)
	}

	// Re-opening runs NVWAL recovery automatically.
	d, err = db.Open(plat, "app.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if v, ok, _ := d.Get("kv", []byte("answer")); ok {
		fmt.Printf("committed record survived: answer = %s\n", v)
	} else {
		log.Fatal("committed record lost!")
	}
	if _, ok, _ := d.Get("kv", []byte("volatile")); !ok {
		fmt.Println("uncommitted record correctly rolled away")
	} else {
		log.Fatal("uncommitted record leaked!")
	}
	fmt.Printf("total virtual time: %v\n", plat.Clock.Now())
}
