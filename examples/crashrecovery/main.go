// Crashrecovery: a walkthrough of NVWAL's failure-atomicity machinery
// (§4.3). The example crashes the machine at three distinct points of
// the commit protocol — using the library's crash-injection hooks — and
// shows what recovery does in each case: reclaiming a pending block,
// discarding a torn transaction, and honoring a persisted commit mark.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

type crashNow struct{}

func main() {
	scenario("crash after nv_pre_malloc (block pending, unreferenced)",
		core.StepAfterPreMalloc,
		"the heap manager reclaims the pending block; the transaction is gone")
	scenario("crash after the log memcpy (no commit mark yet)",
		core.StepAfterMemcpy,
		"recovery finds no commit mark and discards the torn frames")
	scenario("crash after the commit mark persisted",
		core.StepAfterCommitFlush,
		"the transaction is durable and recovery replays it")
}

func scenario(title, step, expect string) {
	fmt.Printf("== %s ==\n", title)
	plat, err := platform.NewTuna()
	if err != nil {
		log.Fatal(err)
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff(), CPU: db.CPUTuna}
	d, err := db.Open(plat, "ledger.db", opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CreateTable("ledger"); err != nil {
		log.Fatal(err)
	}

	// A durable baseline entry.
	mustPut(d, "balance:alice", "100")

	// The doomed transaction: a transfer that must be all-or-nothing.
	nv := d.Journal().(*core.NVWAL)
	crashed := false
	func() {
		defer func() {
			nv.SetCrashHook(nil)
			if r := recover(); r != nil {
				if _, ok := r.(crashNow); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		nv.SetCrashHook(func(s string) {
			if s == step {
				panic(crashNow{})
			}
		})
		tx, err := d.Begin()
		if err != nil {
			log.Fatal(err)
		}
		ins := func(k, v string) {
			if err := tx.Insert("ledger", []byte(k), []byte(v)); err != nil {
				log.Fatal(err)
			}
		}
		ins("balance:alice", "60")
		ins("balance:bob", "40")
		// An audit trail big enough to dirty fresh B-tree pages, so the
		// commit needs a new NVRAM block and every injection point is
		// reachable. Atomicity must cover all of it.
		for i := 0; i < 80; i++ {
			k := fmt.Sprintf("audit:%04d", i)
			entry := fmt.Sprintf("transfer 40 alice->bob (entry %d) %s", i, strings.Repeat("=", 160))
			ins(k, entry)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}()
	fmt.Printf("power failed mid-protocol: %v\n", crashed)

	plat.PowerFail(memsim.FailDropAll, 42)
	if err := plat.Reboot(); err != nil {
		log.Fatal(err)
	}
	d, err = db.Open(plat, "ledger.db", opts)
	if err != nil {
		log.Fatal(err)
	}

	alice := get(d, "balance:alice")
	bob := get(d, "balance:bob")
	fmt.Printf("after recovery: alice=%s bob=%s\n", alice, bob)
	switch {
	case alice == "100" && bob == "(none)":
		fmt.Println("-> transfer rolled away atomically")
	case alice == "60" && bob == "40":
		fmt.Println("-> transfer committed atomically")
	default:
		log.Fatalf("ATOMICITY VIOLATION: alice=%s bob=%s", alice, bob)
	}
	fmt.Printf("expected: %s\n\n", expect)
}

func mustPut(d *db.DB, k, v string) {
	tx, err := d.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Insert("ledger", []byte(k), []byte(v)); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
}

func get(d *db.DB, k string) string {
	v, ok, err := d.Get("ledger", []byte(k))
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		return "(none)"
	}
	return string(v)
}
