// Messagestore: a Twitter-style timeline cache (§1 names Twitter among
// the apps persisting through SQLite). Messages append to a per-user
// timeline in small transactions; the example sweeps the NVRAM write
// latency and prints the throughput curve, demonstrating the paper's
// latency-insensitivity observation on an application workload.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/platform"
	"repro/internal/simclock"
)

func main() {
	fmt.Println("timeline ingest throughput vs NVRAM write latency (NVWAL UH+LS+Diff)")
	for _, lat := range []time.Duration{
		500 * time.Nanosecond, 2 * time.Microsecond, 10 * time.Microsecond,
	} {
		tput, err := ingest(lat, 500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8v NVRAM latency: %6.0f msgs/sec\n", lat, tput)
	}
}

// ingest appends n messages across three user timelines and returns
// messages per second of virtual time.
func ingest(latency time.Duration, n int) (float64, error) {
	plat, err := platform.NewNexus5()
	if err != nil {
		return 0, err
	}
	plat.SetNVRAMLatency(latency)
	d, err := db.Open(plat, "timeline.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		return 0, err
	}
	if err := d.CreateTable("timeline"); err != nil {
		return 0, err
	}
	users := []string{"alice", "bob", "carol"}
	start := plat.Clock.Now()
	for i := 0; i < n; i++ {
		tx, err := d.Begin()
		if err != nil {
			return 0, err
		}
		user := users[i%len(users)]
		// Keys sort by (user, sequence), so a prefix scan yields one
		// user's timeline in order.
		key := fmt.Sprintf("%s/%08d", user, i)
		msg := fmt.Sprintf(`{"user":%q,"seq":%d,"text":"message number %d from %s"}`, user, i, i, user)
		if err := tx.Insert("timeline", []byte(key), []byte(msg)); err != nil {
			tx.Rollback()
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	elapsed := plat.Clock.Now() - start

	// Show a timeline read: the five most recent messages of one user.
	var recent []string
	if err := d.Scan("timeline", func(k, v []byte) bool {
		if len(k) > 5 && string(k[:5]) == "alice" {
			recent = append(recent, string(k))
		}
		return true
	}); err != nil {
		return 0, err
	}
	if len(recent) < 5 {
		return 0, fmt.Errorf("alice's timeline too short: %d", len(recent))
	}
	fmt.Printf("    alice's timeline holds %d messages, newest key %s\n",
		len(recent), recent[len(recent)-1])
	return simclock.Throughput(n, elapsed), d.Close()
}
