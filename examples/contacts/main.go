// Contacts: the paper's motivating mobile workload — an Android-style
// contact manager persisting every edit through the database (§1 lists
// contact managers among SQLite's heaviest users). The example compares
// the same edit session under stock WAL on flash versus NVWAL, printing
// the virtual-time speedup.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/platform"
)

// Contact is one address-book entry, stored as JSON (apps serialize
// structured rows; SQLite sees bytes).
type Contact struct {
	Name  string `json:"name"`
	Phone string `json:"phone"`
	Email string `json:"email"`
}

func main() {
	nvwalTime, err := session(db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		log.Fatal(err)
	}
	walTime, err := session(db.Options{Journal: db.JournalWAL, CPU: db.CPUNexus5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edit session under stock WAL on flash: %v\n", walTime)
	fmt.Printf("edit session under NVWAL (UH+LS+Diff): %v\n", nvwalTime)
	fmt.Printf("speedup: %.1fx\n", float64(walTime)/float64(nvwalTime))
}

// session simulates a user syncing and editing an address book: a bulk
// import, then many small single-contact transactions (each UI action
// commits immediately, the pattern that makes mobile SQLite I/O-bound).
func session(opts db.Options) (time.Duration, error) {
	plat, err := platform.NewNexus5()
	if err != nil {
		return 0, err
	}
	d, err := db.Open(plat, "contacts.db", opts)
	if err != nil {
		return 0, err
	}
	if err := d.CreateTable("contacts"); err != nil {
		return 0, err
	}
	start := plat.Clock.Now()

	// Initial sync: 50 contacts in one transaction.
	tx, err := d.Begin()
	if err != nil {
		return 0, err
	}
	for i := 0; i < 50; i++ {
		if err := put(tx, Contact{
			Name:  fmt.Sprintf("Person %02d", i),
			Phone: fmt.Sprintf("+82-10-%04d-%04d", i, i*7%10000),
			Email: fmt.Sprintf("person%02d@example.com", i),
		}); err != nil {
			tx.Rollback()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}

	// Interactive edits: 200 single-contact transactions.
	for i := 0; i < 200; i++ {
		tx, err := d.Begin()
		if err != nil {
			return 0, err
		}
		c := Contact{
			Name:  fmt.Sprintf("Person %02d", i%50),
			Phone: fmt.Sprintf("+82-10-%04d-%04d", i%50, i),
			Email: fmt.Sprintf("person%02d@work.example.com", i%50),
		}
		if err := put(tx, c); err != nil {
			tx.Rollback()
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}

	// Look one contact up to show the read path.
	if v, ok, err := d.Get("contacts", []byte("Person 07")); err != nil {
		return 0, err
	} else if ok {
		var c Contact
		if err := json.Unmarshal(v, &c); err != nil {
			return 0, err
		}
		fmt.Printf("  [%s] Person 07 -> %s\n", opts.Journal, c.Phone)
	}
	if n, _ := d.Count("contacts"); n != 50 {
		return 0, fmt.Errorf("expected 50 contacts, found %d", n)
	}
	return plat.Clock.Now() - start, d.Close()
}

func put(tx *db.Tx, c Contact) error {
	blob, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return tx.Insert("contacts", []byte(c.Name), blob)
}
