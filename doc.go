// Package repro is a from-scratch Go reproduction of "NVWAL: Exploiting
// NVRAM in Write-Ahead Logging" (Kim, Kim, Baek, Nam, Won — ASPLOS
// 2016): SQLite-style write-ahead logging kept in byte-addressable
// NVRAM, with byte-granularity differential logging, transaction-aware
// lazy synchronization, and user-level NVRAM heap management.
//
// The repository layers, bottom to top:
//
//	internal/simclock     deterministic virtual clock
//	internal/metrics      counters and per-phase time attribution
//	internal/memsim       write-back cache + memory controller + NVRAM cells
//	internal/nvram        the NVRAM device (typed accessors, latency knob)
//	internal/heapo        kernel NVRAM heap manager (tri-state blocks, namespace)
//	internal/blockdev     eMMC flash block device
//	internal/ext4         ordered-mode journaling file system
//	internal/btree        SQLite-style B+tree (early-split variant included)
//	internal/pager        DRAM page cache and transaction pre-images
//	internal/wal          stock + optimized file WAL baselines
//	internal/core         NVWAL itself (the paper's contribution)
//	internal/db           the embedded database facade
//	internal/mobibench    the evaluation workload generator
//	internal/experiments  regenerators for every table and figure of §5
//
// See README.md for a quickstart, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for paper-versus-measured
// results. The root-level benchmarks (bench_test.go) wrap each
// experiment as a testing.B benchmark reporting virtual-time metrics.
package repro
