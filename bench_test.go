package repro

// One benchmark per table/figure of the paper's evaluation. Each runs
// the corresponding experiment and reports the headline quantity as a
// custom metric in *virtual* time (the simulation is deterministic;
// wall-clock ns/op only measures the simulator itself).
//
//	go test -bench=. -benchmem

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/experiments"
	"repro/internal/mobibench"
	"repro/internal/platform"
)

const benchTxns = 100

func BenchmarkTable1FlushesPerTxn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Flushes, "flushes/txn(K=1)")
		b.ReportMetric(r.Rows[len(r.Rows)-1].Flushes, "flushes/txn(K=32)")
	}
}

func BenchmarkTable2BytesPerTxn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Reduction(mobibench.Insert, 0)*100, "insert-diff-saving-%")
		b.ReportMetric(r.FramesPerBlock, "frames/block")
	}
}

func BenchmarkFig5LazyVsEager(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		l, e := r.Cell(32, true), r.Cell(32, false)
		b.ReportMetric(float64(l.Ordering().Microseconds()), "lazy-ordering-us(K=32)")
		b.ReportMetric(float64(e.Ordering().Microseconds()), "eager-ordering-us(K=32)")
	}
}

func BenchmarkFig6OverheadPercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cell(1, true).OverheadPercent(), "overhead-%(K=1)")
		b.ReportMetric(r.Cell(32, true).OverheadPercent(), "overhead-%(K=32)")
	}
}

func BenchmarkFig7Variants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(mobibench.Insert, benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		slow := r.Latencies[len(r.Latencies)-1]
		b.ReportMetric(r.Throughput("NVWAL UH+LS+Diff", slow), "UH+LS+Diff-txn/s@1942ns")
		b.ReportMetric(r.Throughput("NVWAL LS", slow), "LS-txn/s@1942ns")
	}
}

func BenchmarkFig8BlockTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.JournalReduction()*100, "journal-saving-%")
	}
}

func BenchmarkFig9NVWALvsFlash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup(2*time.Microsecond), "speedup-x@2us")
		b.ReportMetric(r.Throughput(experiments.Fig9Series[2], r.Latencies[0]), "wal-txn/s")
	}
}

func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baselines(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Row("Rollback journal").Throughput, "rollback-txn/s")
		b.ReportMetric(r.Row("NVWAL UH+LS+Diff").Throughput, "nvwal-txn/s")
	}
}

func BenchmarkPersistencyModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Persistency(benchTxns)
		if err != nil {
			b.Fatal(err)
		}
		slow := r.Latencies[len(r.Latencies)-1]
		b.ReportMetric(r.Throughput("Epoch persistency", slow), "epoch-txn/s@1942ns")
		b.ReportMetric(r.Throughput("Strict persistency", slow), "strict-txn/s@1942ns")
	}
}

// BenchmarkCommitPath measures the simulator's own wall-clock cost of
// one NVWAL commit (not a paper figure; a sanity benchmark for the
// reproduction itself). ReportAllocs makes allocs/op part of the
// default output: the zero-copy commit path is audited by allocation
// count, not just latency (DESIGN.md §15).
func BenchmarkCommitPath(b *testing.B) {
	plat, err := platform.NewNexus5()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := d.Begin()
		if err != nil {
			b.Fatal(err)
		}
		key := []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
		if err := tx.Insert("t", key, val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
