package mobibench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/platform"
)

func newDB(t testing.TB) (*db.DB, *platform.Platform) {
	t.Helper()
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
		CPU:     db.CPUNexus5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, plat
}

func TestInsertWorkload(t *testing.T) {
	d, plat := newDB(t)
	w, err := Prepare(d, Workload{Op: Insert, Transactions: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, plat.Clock, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 50 {
		t.Fatalf("Transactions = %d", res.Transactions)
	}
	if res.Elapsed <= 0 || res.Throughput() <= 0 {
		t.Fatalf("no virtual time elapsed: %v", res.Elapsed)
	}
	if n, _ := d.Count(w.Table); n != 50 {
		t.Fatalf("table holds %d records, want 50", n)
	}
}

func TestUpdateWorkloadPrePopulates(t *testing.T) {
	d, plat := newDB(t)
	w, err := Prepare(d, Workload{Op: Update, Transactions: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count(w.Table); n != 30 {
		t.Fatalf("pre-populated %d records, want 30", n)
	}
	res, err := Run(d, plat.Clock, w)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count(w.Table); n != 30 {
		t.Fatalf("update changed record count to %d", n)
	}
	if res.PerTxn() <= 0 {
		t.Fatal("PerTxn = 0")
	}
}

func TestDeleteWorkloadRemovesRecords(t *testing.T) {
	d, plat := newDB(t)
	w, err := Prepare(d, Workload{Op: Delete, Transactions: 20, OpsPerTxn: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, plat.Clock, w); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Count(w.Table); n != 0 {
		t.Fatalf("%d records remain after delete workload", n)
	}
}

func TestMultiOpTransactionsCostLessPerOp(t *testing.T) {
	// §5.1: batching more inserts per transaction amortizes the
	// per-transaction overhead.
	perOp := func(k int) time.Duration {
		d, plat := newDB(t)
		w, err := Prepare(d, Workload{Op: Insert, Transactions: 20, OpsPerTxn: k, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d, plat.Clock, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTxn() / time.Duration(k)
	}
	if one, eight := perOp(1), perOp(8); eight >= one {
		t.Fatalf("per-op cost did not amortize: K=1 %v, K=8 %v", one, eight)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	w := Workload{}.withDefaults()
	if w.Transactions != 1000 || w.OpsPerTxn != 1 || w.RecordSize != 100 {
		t.Fatalf("defaults = %+v", w)
	}
	u := Workload{Op: Update, Transactions: 10}.withDefaults()
	if u.PrePopulate != 10 {
		t.Fatalf("update PrePopulate = %d", u.PrePopulate)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Transactions: 100, Elapsed: time.Second}
	if r.Throughput() != 100 {
		t.Fatalf("Throughput = %v", r.Throughput())
	}
	if r.PerTxn() != 10*time.Millisecond {
		t.Fatalf("PerTxn = %v", r.PerTxn())
	}
	var zero Result
	if zero.PerTxn() != 0 {
		t.Fatal("zero-result PerTxn should be 0")
	}
}
