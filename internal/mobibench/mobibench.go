// Package mobibench generates the paper's evaluation workloads, after
// the Mobibench SQLite benchmark used in §5: sequences of transactions
// each inserting, updating or deleting fixed-size records (100 bytes in
// the paper), with a configurable number of operations per transaction.
package mobibench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/db"
	"repro/internal/simclock"
)

// Op is a workload operation type.
type Op int

const (
	Insert Op = iota
	Update
	Delete
)

func (o Op) String() string {
	switch o {
	case Update:
		return "update"
	case Delete:
		return "delete"
	default:
		return "insert"
	}
}

// Workload describes one benchmark run.
type Workload struct {
	// Table receives the records (created if missing).
	Table string
	// Op is the per-transaction operation type.
	Op Op
	// Transactions is the number of transactions to run (paper: 1000).
	Transactions int
	// OpsPerTxn is the number of records touched per transaction
	// (paper: 1 for Figures 7 and 9; 1–32 for Figures 5 and 6).
	OpsPerTxn int
	// RecordSize is the record payload size (paper: 100 bytes).
	RecordSize int
	// Seed drives record-content generation and update/delete targets.
	Seed int64
	// PrePopulate loads this many records before the measured run
	// (required for update/delete workloads; they cycle through these
	// keys).
	PrePopulate int
}

// withDefaults fills the paper's standard parameters.
func (w Workload) withDefaults() Workload {
	if w.Table == "" {
		w.Table = "mobibench"
	}
	if w.Transactions <= 0 {
		w.Transactions = 1000
	}
	if w.OpsPerTxn <= 0 {
		w.OpsPerTxn = 1
	}
	if w.RecordSize <= 0 {
		w.RecordSize = 100
	}
	if w.PrePopulate <= 0 && w.Op != Insert {
		w.PrePopulate = w.Transactions * w.OpsPerTxn
	}
	return w
}

// Result reports a run's outcome in virtual time.
type Result struct {
	Workload     Workload
	Transactions int
	Elapsed      time.Duration
}

// Throughput returns transactions per second of virtual time.
func (r Result) Throughput() float64 {
	return simclock.Throughput(r.Transactions, r.Elapsed)
}

// PerTxn returns the average virtual time per transaction.
func (r Result) PerTxn() time.Duration {
	if r.Transactions == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Transactions)
}

func key(i int) []byte { return []byte(fmt.Sprintf("rec-%010d", i)) }

// record builds a deterministic payload of the configured size.
func record(rng *rand.Rand, size int) []byte {
	p := make([]byte, size)
	rng.Read(p)
	return p
}

// Prepare creates the workload table and pre-populates it (outside the
// measured window).
func Prepare(d *db.DB, w Workload) (Workload, error) {
	w = w.withDefaults()
	if !d.HasTable(w.Table) {
		if err := d.CreateTable(w.Table); err != nil {
			return w, err
		}
	}
	if w.PrePopulate > 0 {
		rng := rand.New(rand.NewSource(w.Seed ^ 0x5EED))
		const batch = 100
		for base := 0; base < w.PrePopulate; base += batch {
			tx, err := d.Begin()
			if err != nil {
				return w, err
			}
			for i := base; i < base+batch && i < w.PrePopulate; i++ {
				if err := tx.Insert(w.Table, key(i), record(rng, w.RecordSize)); err != nil {
					tx.Rollback()
					return w, err
				}
			}
			if err := tx.Commit(); err != nil {
				return w, err
			}
		}
	}
	return w, nil
}

// Run executes the measured workload on a prepared database, returning
// throughput over virtual time.
func Run(d *db.DB, clock *simclock.Clock, w Workload) (Result, error) {
	w = w.withDefaults()
	rng := rand.New(rand.NewSource(w.Seed))
	start := clock.Now()
	next := w.PrePopulate // next fresh key for inserts
	victim := 0           // next existing key for update/delete
	for t := 0; t < w.Transactions; t++ {
		tx, err := d.Begin()
		if err != nil {
			return Result{}, err
		}
		for op := 0; op < w.OpsPerTxn; op++ {
			switch w.Op {
			case Insert:
				err = tx.Insert(w.Table, key(next), record(rng, w.RecordSize))
				next++
			case Update:
				_, err = tx.Update(w.Table, key(victim%w.PrePopulate), record(rng, w.RecordSize))
				victim++
			case Delete:
				_, err = tx.Delete(w.Table, key(victim%w.PrePopulate))
				victim++
			}
			if err != nil {
				tx.Rollback()
				return Result{}, err
			}
		}
		if err := tx.Commit(); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Workload:     w,
		Transactions: w.Transactions,
		Elapsed:      clock.Now() - start,
	}, nil
}
