// Slow-fault (gray-failure) tests for the simulated network: seeded
// message stalls must be deterministic and must delay — never lose —
// the message.
package netsim

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

func TestMessageStallsDeterministicForSeed(t *testing.T) {
	run := func() (int64, int64, time.Duration) {
		clock := simclock.New()
		m := &metrics.Counters{}
		n := New(clock, Config{
			Latency:    20 * time.Microsecond,
			StallRate:  0.3,
			StallDelay: 5 * time.Millisecond,
		}, 17, m)
		l, err := n.Listen("srv")
		if err != nil {
			t.Fatal(err)
		}
		cli, err := n.Dial("cli", "srv")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := l.Accept(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := cli.Send([]byte("ping")); err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Recv(time.Second); err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
		}
		return m.Count(metrics.SlowFaultStalls), m.Count(metrics.SlowFaultStallNs), clock.Now()
	}
	s1, ns1, t1 := run()
	s2, ns2, t2 := run()
	if s1 == 0 {
		t.Fatal("no message stalls fired; the config should bite over 200 messages")
	}
	if s1 != s2 || ns1 != ns2 || t1 != t2 {
		t.Fatalf("message stalls not deterministic: %d/%dns/%v vs %d/%dns/%v",
			s1, ns1, t1, s2, ns2, t2)
	}
}

func TestStalledMessagesStillDeliverInOrder(t *testing.T) {
	clock := simclock.New()
	n := New(clock, Config{
		Latency:    10 * time.Microsecond,
		StallRate:  1, // every message stalls
		StallDelay: time.Millisecond,
	}, 1, nil)
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := n.Dial("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 20; i++ {
		if err := cli.Send([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 20; i++ {
		got, err := srv.Recv(time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != i {
			t.Fatalf("message %d arrived as %v — stall dropped or reordered it", i, got)
		}
	}
	// All sends left at virtual time 0, so delivery lands one stall
	// window out — the stall delays the wire, it does not serialize it.
	if clock.Now() < time.Millisecond {
		t.Fatalf("stalls did not charge the clock: %v", clock.Now())
	}
}
