// Package netsim is the wire-level sibling of memsim and blockdev: a
// simulated, simclock-driven message network with fault injection
// designed in from the first line. Endpoints exchange whole messages
// over paired in-memory conns; a seeded per-link fault model injects
// latency, jitter, drops, reordering, partitions and mid-stream cuts,
// so the serving and replication layers are tortured against the same
// class of adversary the storage layers already face — without real
// sockets. A thin TCP binding (tcp.go) exposes the same Conn/Listener
// interfaces over real sockets for cmd/nvwal-server.
//
// Timing: each message is stamped deliverAt = sender-clock now +
// sampled latency; Recv advances the receiver's clock to deliverAt
// (simclock.AdvanceTo — a monotone max, so lanes compose). Blocking
// semantics are real-time (condition variables), which keeps the
// simulation live under goroutine concurrency; optional real-time
// receive timeouts bound waits on links that may have silently
// dropped traffic.
//
// Fault semantics per link (sampled from the link's seeded rng):
//   - DropRate: the message is silently lost (the sender still pays
//     the send; request/response protocols recover by retrying).
//   - ReorderRate: the message is enqueued BEFORE the last message
//     still queued at the receiver, modelling datagram reordering.
//   - CutRate: the connection dies mid-message — the message is lost
//     and both endpoints see ErrClosed from then on, modelling a
//     connection reset. In-flight undelivered messages are purged.
//   - Partitions: while two endpoint names are partitioned, messages
//     between them black-hole silently (no error — exactly the
//     asymmetry that makes distributed timeouts hard).
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Config is one link's fault model. The zero value is a perfect,
// zero-latency wire.
type Config struct {
	// Latency is the base one-way delivery latency charged to virtual
	// time; Jitter adds a uniform [0, Jitter) on top, per message.
	Latency time.Duration
	Jitter  time.Duration
	// DropRate, ReorderRate and CutRate are per-message probabilities
	// in [0, 1].
	DropRate    float64
	ReorderRate float64
	CutRate     float64
	// StallRate/StallDelay model gray failures: with probability
	// StallRate a message is delivered StallDelay late — a bufferbloat
	// spike, a retransmission burst, a link briefly saturated. Unlike
	// DropRate the message DOES arrive, which is what makes slow links
	// harder to defend against than dead ones.
	StallRate  float64
	StallDelay time.Duration
}

// Network is a named-endpoint message fabric. All methods are safe for
// concurrent use.
type Network struct {
	clock *simclock.Clock
	m     *metrics.Counters

	mu        sync.Mutex
	rng       *rand.Rand
	def       Config
	links     map[[2]string]Config // directional override, [from, to]
	clocks    map[string]*simclock.Clock
	listeners map[string]*listener
	cut       map[[2]string]bool // partitioned pairs (unordered key)
	isolated  map[string]bool
}

// Errors surfaced by conns and listeners.
var (
	ErrClosed    = errors.New("netsim: connection closed")
	ErrNoPeer    = errors.New("netsim: no listener at that name")
	ErrTimeout   = errors.New("netsim: receive timed out")
	ErrNetClosed = errors.New("netsim: listener closed")
)

// New creates a network whose messages are timed against clock and
// whose fault draws derive from seed. cfg is the default link model;
// SetLink overrides it per directional pair.
func New(clock *simclock.Clock, cfg Config, seed int64, m *metrics.Counters) *Network {
	if m == nil {
		m = &metrics.Counters{}
	}
	return &Network{
		clock:     clock,
		m:         m,
		rng:       rand.New(rand.NewSource(seed)),
		def:       cfg,
		links:     make(map[[2]string]Config),
		clocks:    make(map[string]*simclock.Clock),
		listeners: make(map[string]*listener),
		cut:       make(map[[2]string]bool),
		isolated:  make(map[string]bool),
	}
}

// Register binds an endpoint name to its own clock (a lane, usually);
// Recv at that endpoint advances this clock. Unregistered endpoints
// use the network clock.
func (n *Network) Register(name string, clock *simclock.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clocks[name] = clock
}

// SetLink overrides the fault model for messages flowing from -> to.
func (n *Network) SetLink(from, to string, cfg Config) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{from, to}] = cfg
}

// Partition black-holes traffic between a and b (both directions)
// until Heal.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[pairKey(a, b)] = true
}

// Heal removes the a<->b partition.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, pairKey(a, b))
}

// Isolate black-holes ALL traffic to and from name — the external view
// of a machine losing power. Existing conns stay allocated but no
// message crosses; close them via CutNode for a hard reset.
func (n *Network) Isolate(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[name] = true
}

// Rejoin lifts an isolation.
func (n *Network) Rejoin(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, name)
}

// HealAll lifts every partition and isolation.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[[2]string]bool)
	n.isolated = make(map[string]bool)
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Listen binds name. One listener per name; a second Listen on the
// same name fails until the first closes.
func (n *Network) Listen(name string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[name]; ok {
		return nil, fmt.Errorf("netsim: name %q already bound", name)
	}
	l := &listener{net: n, name: name}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[name] = l
	return l, nil
}

// Dial connects from -> to, returning the initiator's end. The
// accepted peer end is delivered to the listener at to. Dialing an
// isolated or partitioned endpoint fails with ErrNoPeer — in a real
// network a SYN to a dead host times out; the caller's retry loop is
// the model for that.
func (n *Network) Dial(from, to string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[to]
	blocked := n.isolated[from] || n.isolated[to] || n.cut[pairKey(from, to)]
	n.mu.Unlock()
	if !ok || blocked {
		return nil, ErrNoPeer
	}
	a, b := n.pair(from, to)
	if !l.deliver(b) {
		return nil, ErrNoPeer
	}
	return a, nil
}

// pair builds the two halves of a connection.
func (n *Network) pair(from, to string) (*conn, *conn) {
	shared := &connShared{net: n}
	a := &conn{shared: shared, local: from, remote: to}
	b := &conn{shared: shared, local: to, remote: from}
	a.peer, b.peer = b, a
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	return a, b
}

// clockFor returns the endpoint's registered clock (or the network's).
func (n *Network) clockFor(name string) *simclock.Clock {
	if c, ok := n.clocks[name]; ok {
		return c
	}
	return n.clock
}

// Conn is one end of a message connection.
type Conn interface {
	// Send enqueues one whole message toward the peer. A nil error
	// means the message was handed to the wire — NOT that it will
	// arrive (drops and partitions are silent).
	Send(msg []byte) error
	// Recv blocks for the next message. timeout bounds the real-time
	// wait (0 = block until a message or close); expiry returns
	// ErrTimeout with the conn still usable.
	Recv(timeout time.Duration) ([]byte, error)
	// Close tears the connection down at both ends; undelivered
	// messages are purged (they die with the sockets).
	Close() error
	LocalName() string
	RemoteName() string
}

// Listener accepts inbound conns at a name.
type Listener interface {
	// Accept blocks for the next inbound conn. timeout bounds the
	// real-time wait (0 = block); expiry returns ErrTimeout.
	Accept(timeout time.Duration) (Conn, error)
	Close() error
	Addr() string
}

// connShared is the state both halves share.
type connShared struct {
	net  *Network
	mu   sync.Mutex
	dead bool
}

type message struct {
	payload   []byte
	deliverAt time.Duration
}

type conn struct {
	shared *connShared
	peer   *conn
	local  string
	remote string

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []message
	closed bool
}

func (c *conn) LocalName() string  { return c.local }
func (c *conn) RemoteName() string { return c.remote }

func (c *conn) Send(msg []byte) error {
	n := c.shared.net

	c.shared.mu.Lock()
	dead := c.shared.dead
	c.shared.mu.Unlock()
	if dead {
		return ErrClosed
	}

	n.mu.Lock()
	cfg, ok := n.links[[2]string{c.local, c.remote}]
	if !ok {
		cfg = n.def
	}
	blocked := n.isolated[c.local] || n.isolated[c.remote] || n.cut[pairKey(c.local, c.remote)]
	var cutNow, dropNow, reorderNow bool
	if !blocked {
		if cfg.CutRate > 0 && n.rng.Float64() < cfg.CutRate {
			cutNow = true
		} else if cfg.DropRate > 0 && n.rng.Float64() < cfg.DropRate {
			dropNow = true
		} else if cfg.ReorderRate > 0 && n.rng.Float64() < cfg.ReorderRate {
			reorderNow = true
		}
	}
	lat := cfg.Latency
	if cfg.Jitter > 0 {
		lat += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	stalled := false
	if cfg.StallRate > 0 && cfg.StallDelay > 0 && n.rng.Float64() < cfg.StallRate {
		lat += cfg.StallDelay
		stalled = true
	}
	sendClock := n.clockFor(c.local)
	n.mu.Unlock()

	n.m.Inc(metrics.NetMessages, 1)
	n.m.Inc(metrics.NetBytes, int64(len(msg)))
	// The send itself costs the sender its share of the latency — wire
	// time is virtual-clock time like NVRAM write-backs are.
	deliverAt := sendClock.Now() + lat

	if blocked {
		// Black hole: silently gone, conn stays up.
		n.m.Inc(metrics.NetDropped, 1)
		return nil
	}
	if cutNow {
		n.m.Inc(metrics.NetCuts, 1)
		c.teardown()
		return ErrClosed
	}
	if dropNow {
		n.m.Inc(metrics.NetDropped, 1)
		return nil
	}
	if stalled {
		// Counted only once the message will actually be delivered — a
		// stall on a send that is then blackholed/cut/dropped is never
		// experienced by the receiver.
		n.m.Inc(metrics.SlowFaultStalls, 1)
		n.m.Inc(metrics.SlowFaultStallNs, cfg.StallDelay.Nanoseconds())
	}

	cp := make([]byte, len(msg))
	copy(cp, msg)
	p := c.peer
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	m := message{payload: cp, deliverAt: deliverAt}
	if reorderNow && len(p.inbox) > 0 {
		n.m.Inc(metrics.NetReordered, 1)
		p.inbox = append(p.inbox[:len(p.inbox)-1], m, p.inbox[len(p.inbox)-1])
	} else {
		p.inbox = append(p.inbox, m)
	}
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

func (c *conn) Recv(timeout time.Duration) ([]byte, error) {
	var timer *time.Timer
	expired := false
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			c.mu.Lock()
			expired = true
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer timer.Stop()
	}
	c.mu.Lock()
	for len(c.inbox) == 0 && !c.closed && !expired {
		c.cond.Wait()
	}
	if len(c.inbox) == 0 {
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, ErrTimeout
	}
	m := c.inbox[0]
	c.inbox = c.inbox[1:]
	c.mu.Unlock()

	// Charge the wire latency to the receiver's clock: delivery cannot
	// precede the send plus flight time. AdvanceTo is a monotone max,
	// so a receiver already past deliverAt pays nothing extra.
	c.shared.net.mu.Lock()
	clk := c.shared.net.clockFor(c.local)
	c.shared.net.mu.Unlock()
	clk.AdvanceTo(m.deliverAt)
	return m.payload, nil
}

// RecvAt is Recv without the clock advance: it returns the next message
// together with its virtual delivery time and leaves the AdvanceTo to
// the caller. Hedged-read clients need this — the hedge must pick the
// response with the EARLIER virtual arrival, and a plain Recv on the
// loser would drag the receiver's clock past the winner's.
func (c *conn) RecvAt(timeout time.Duration) ([]byte, time.Duration, error) {
	var timer *time.Timer
	expired := false
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			c.mu.Lock()
			expired = true
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer timer.Stop()
	}
	c.mu.Lock()
	for len(c.inbox) == 0 && !c.closed && !expired {
		c.cond.Wait()
	}
	if len(c.inbox) == 0 {
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, 0, ErrClosed
		}
		return nil, 0, ErrTimeout
	}
	m := c.inbox[0]
	c.inbox = c.inbox[1:]
	c.mu.Unlock()
	return m.payload, m.deliverAt, nil
}

// RecvAt receives on any Conn, reporting the message's virtual delivery
// time when the transport tracks one. ok=false means the conn has no
// virtual timing (the TCP binding): at is zero and the message was
// received with the conn's plain semantics.
func RecvAt(c Conn, timeout time.Duration) (msg []byte, at time.Duration, ok bool, err error) {
	type recvAtConn interface {
		RecvAt(timeout time.Duration) ([]byte, time.Duration, error)
	}
	if rc, has := c.(recvAtConn); has {
		msg, at, err = rc.RecvAt(timeout)
		return msg, at, true, err
	}
	msg, err = c.Recv(timeout)
	return msg, 0, false, err
}

func (c *conn) Close() error {
	c.teardown()
	return nil
}

// teardown kills both halves and purges undelivered messages.
func (c *conn) teardown() {
	c.shared.mu.Lock()
	already := c.shared.dead
	c.shared.dead = true
	c.shared.mu.Unlock()
	if already {
		return
	}
	for _, half := range [2]*conn{c, c.peer} {
		half.mu.Lock()
		half.closed = true
		half.inbox = nil
		half.cond.Broadcast()
		half.mu.Unlock()
	}
}

type listener struct {
	net  *Network
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*conn
	closed  bool
}

func (l *listener) Addr() string { return l.name }

// deliver hands an inbound conn half to the accept queue.
func (l *listener) deliver(c *conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.backlog = append(l.backlog, c)
	l.cond.Signal()
	return true
}

func (l *listener) Accept(timeout time.Duration) (Conn, error) {
	var timer *time.Timer
	expired := false
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			l.mu.Lock()
			expired = true
			l.cond.Broadcast()
			l.mu.Unlock()
		})
		defer timer.Stop()
	}
	l.mu.Lock()
	for len(l.backlog) == 0 && !l.closed && !expired {
		l.cond.Wait()
	}
	if len(l.backlog) == 0 {
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return nil, ErrNetClosed
		}
		return nil, ErrTimeout
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	l.mu.Unlock()
	return c, nil
}

func (l *listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	backlog := l.backlog
	l.backlog = nil
	l.cond.Broadcast()
	l.mu.Unlock()

	for _, c := range backlog {
		c.teardown()
	}
	l.net.mu.Lock()
	if l.net.listeners[l.name] == l {
		delete(l.net.listeners, l.name)
	}
	l.net.mu.Unlock()
	return nil
}
