// Real-socket binding: the same Conn/Listener interfaces over TCP,
// with 4-byte big-endian length-prefix framing, so cmd/nvwal-server
// serves actual clients with the exact protocol code the simulated
// network tortures. No fault injection here — real networks bring
// their own.
package netsim

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"time"
)

// maxFrame bounds one framed message (16 MiB) so a corrupt or
// malicious length prefix cannot allocate unbounded memory.
const maxFrame = 16 << 20

// ErrFrameTooLarge rejects messages over maxFrame.
var ErrFrameTooLarge = errors.New("netsim: framed message exceeds 16 MiB")

// ListenTCP binds a real TCP listener at addr (host:port).
func ListenTCP(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{nl: nl}, nil
}

// DialTCP connects to a real TCP endpoint.
func DialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{nc: nc}, nil
}

type tcpListener struct{ nl net.Listener }

func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Accept(timeout time.Duration) (Conn, error) {
	if timeout > 0 {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := l.nl.(deadliner); ok {
			_ = d.SetDeadline(time.Now().Add(timeout))
			defer func() { _ = d.SetDeadline(time.Time{}) }()
		}
	}
	nc, err := l.nl.Accept()
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, ErrTimeout
		}
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrNetClosed
		}
		return nil, err
	}
	return &tcpConn{nc: nc}, nil
}

type tcpConn struct{ nc net.Conn }

func (c *tcpConn) LocalName() string  { return c.nc.LocalAddr().String() }
func (c *tcpConn) RemoteName() string { return c.nc.RemoteAddr().String() }
func (c *tcpConn) Close() error       { return c.nc.Close() }

func (c *tcpConn) Send(msg []byte) error {
	if len(msg) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return mapNetErr(err)
	}
	_, err := c.nc.Write(msg)
	return mapNetErr(err)
}

func (c *tcpConn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		_ = c.nc.SetReadDeadline(time.Now().Add(timeout))
		defer func() { _ = c.nc.SetReadDeadline(time.Time{}) }()
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.nc, hdr[:]); err != nil {
		return nil, mapNetErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.nc, msg); err != nil {
		return nil, mapNetErr(err)
	}
	return msg, nil
}

// mapNetErr folds socket errors onto the simulated network's error
// vocabulary so protocol code handles both identically.
func mapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return ErrTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}
