package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

func TestRoundTripChargesLatency(t *testing.T) {
	clock := simclock.New()
	n := New(clock, Config{Latency: 100 * time.Microsecond}, 1, nil)
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := n.Dial("cli", "srv")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Recv(time.Second)
	if err != nil || string(got) != "ping" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	if now := clock.Now(); now < 100*time.Microsecond {
		t.Fatalf("delivery did not charge wire latency: clock at %v", now)
	}
	if err := srv.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, err := cli.Recv(time.Second); err != nil || string(got) != "pong" {
		t.Fatalf("reply = %q, %v", got, err)
	}
	if cli.RemoteName() != "srv" || srv.RemoteName() != "cli" {
		t.Fatalf("names: %s<->%s", cli.RemoteName(), srv.RemoteName())
	}
}

func TestPerNodeLanesAdvanceIndependently(t *testing.T) {
	parent := simclock.New()
	n := New(parent, Config{Latency: time.Millisecond}, 1, nil)
	laneA, laneB := parent.NewLane(), parent.NewLane()
	n.Register("a", laneA)
	n.Register("b", laneB)
	l, _ := n.Listen("b")
	ca, _ := n.Dial("a", "b")
	cb, _ := l.Accept(time.Second)
	if err := ca.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Recv(time.Second); err != nil {
		t.Fatal(err)
	}
	if laneB.Now() < time.Millisecond {
		t.Fatalf("receiver lane did not advance: %v", laneB.Now())
	}
}

func TestDropAndTimeout(t *testing.T) {
	clock := simclock.New()
	n := New(clock, Config{DropRate: 1}, 1, nil)
	l, _ := n.Listen("srv")
	cli, _ := n.Dial("cli", "srv")
	srv, _ := l.Accept(time.Second)
	if err := cli.Send([]byte("lost")); err != nil {
		t.Fatalf("drops must be silent: %v", err)
	}
	if _, err := srv.Recv(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// The conn survives a timeout.
	n.SetLink("cli", "srv", Config{})
	if err := cli.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got, err := srv.Recv(time.Second); err != nil || string(got) != "ok" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
}

func TestCutKillsBothEnds(t *testing.T) {
	clock := simclock.New()
	n := New(clock, Config{CutRate: 1}, 1, nil)
	l, _ := n.Listen("srv")
	cli, _ := n.Dial("cli", "srv")
	srv, _ := l.Accept(time.Second)
	if err := cli.Send([]byte("doomed")); !errors.Is(err, ErrClosed) {
		t.Fatalf("cut send = %v, want ErrClosed", err)
	}
	if _, err := srv.Recv(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer recv after cut = %v, want ErrClosed", err)
	}
	if err := srv.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer send after cut = %v, want ErrClosed", err)
	}
}

func TestPartitionAndIsolateBlackhole(t *testing.T) {
	clock := simclock.New()
	m := &metrics.Counters{}
	n := New(clock, Config{}, 1, m)
	l, _ := n.Listen("srv")
	cli, _ := n.Dial("cli", "srv")
	srv, _ := l.Accept(time.Second)

	n.Partition("cli", "srv")
	if err := cli.Send([]byte("gone")); err != nil {
		t.Fatalf("partitioned send must black-hole silently: %v", err)
	}
	if _, err := srv.Recv(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned recv = %v", err)
	}
	n.Heal("cli", "srv")
	if err := cli.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if got, err := srv.Recv(time.Second); err != nil || string(got) != "back" {
		t.Fatalf("healed: %q %v", got, err)
	}

	n.Isolate("srv")
	if _, err := n.Dial("cli2", "srv"); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("dial to isolated node = %v", err)
	}
	if err := cli.Send([]byte("dead")); err != nil {
		t.Fatalf("send toward isolated node must black-hole: %v", err)
	}
	n.Rejoin("srv")
	if m.Count(metrics.NetDropped) < 2 {
		t.Fatalf("drops not counted: %d", m.Count(metrics.NetDropped))
	}
}

func TestReorderSwapsQueuedMessages(t *testing.T) {
	clock := simclock.New()
	n := New(clock, Config{}, 42, nil)
	l, _ := n.Listen("srv")
	cli, _ := n.Dial("cli", "srv")
	srv, _ := l.Accept(time.Second)
	// First message queues normally; the second (ReorderRate=1) is
	// inserted before it.
	if err := cli.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	n.SetLink("cli", "srv", Config{ReorderRate: 1})
	if err := cli.Send([]byte("second")); err != nil {
		t.Fatal(err)
	}
	a, _ := srv.Recv(time.Second)
	b, _ := srv.Recv(time.Second)
	if string(a) != "second" || string(b) != "first" {
		t.Fatalf("order: %q then %q", a, b)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	clock := simclock.New()
	n := New(clock, Config{}, 1, nil)
	l, _ := n.Listen("srv")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	if err := <-done; !errors.Is(err, ErrNetClosed) {
		t.Fatalf("accept after close = %v", err)
	}
	// The name is free again.
	if _, err := n.Listen("srv"); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}
