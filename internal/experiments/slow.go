// Gray-failure serving experiment: hedged versus plain replica reads
// under one gray-degraded replica. The reader is pinned (by endpoint
// order) to the replica that then degrades — the realistic worst case:
// a gray failure hurts exactly the clients attached to the sick node.
// Hedging must recover the tail (p99) by duplicating the late read to
// the healthy replica, while costing near-zero extra reads when the
// cluster is healthy.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/repl"
	"repro/internal/server"
)

// SlowReadRow is one (scenario, mode) cell of the gray-failure sweep.
type SlowReadRow struct {
	Scenario    string  `json:"scenario"` // healthy | degraded
	Hedged      bool    `json:"hedged"`
	Reads       int     `json:"reads"`
	P50Ns       int64   `json:"p50_ns"`       // median virtual read latency
	P99Ns       int64   `json:"p99_ns"`       // tail virtual read latency
	HedgedReads int64   `json:"hedged_reads"` // reads duplicated to a 2nd replica
	HedgeWins   int64   `json:"hedge_wins"`
	AmplPct     float64 `json:"read_amplification_pct"` // extra reads / reads
}

// SlowResult holds the gray-failure read experiment.
type SlowResult struct {
	ValueBytes      int           `json:"value_bytes"`
	Keys            int           `json:"keys"`
	NetLatency      time.Duration `json:"net_latency_ns"`
	DegradedLatency time.Duration `json:"degraded_latency_ns"`
	HedgeDelay      time.Duration `json:"hedge_delay_ns"`
	Rows            []SlowReadRow `json:"rows"`
	// P99RecoveryX is plain p99 / hedged p99 with one degraded replica —
	// the headline number (acceptance floor: 2×).
	P99RecoveryX float64 `json:"p99_recovery_x"`
	// HealthyAmplPct is the hedged mode's extra-read cost when nothing
	// is wrong (acceptance ceiling: 5%).
	HealthyAmplPct float64 `json:"healthy_ampl_pct"`
}

// Slow runs the gray-failure read experiment. txns scales the read
// count per cell (default 2000).
func Slow(txns int) (*SlowResult, error) {
	if txns <= 0 {
		txns = 2000
	}
	res := &SlowResult{
		ValueBytes:      256,
		Keys:            200,
		NetLatency:      20 * time.Microsecond,
		DegradedLatency: 2 * time.Millisecond,
		HedgeDelay:      100 * time.Microsecond,
	}

	c, err := repl.NewCluster(replPlatformConfig(), netsim.Config{Latency: res.NetLatency}, 7, "n0", "n1", "n2")
	if err != nil {
		return nil, err
	}
	pn, err := c.StartPrimary("n0", repl.DefaultDBOptions(), repl.PrimaryOptions{Epoch: 1}, server.Options{})
	if err != nil {
		return nil, err
	}
	defer pn.Stop(false)
	if err := pn.DB.CreateTable("kv"); err != nil {
		return nil, err
	}
	val := make([]byte, res.ValueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < res.Keys; i++ {
		ops := []server.Op{{Key: []byte(fmt.Sprintf("k%04d", i)), Value: val}}
		if _, err := pn.Repl.Apply(context.Background(), "kv", ops); err != nil {
			return nil, err
		}
	}
	for _, name := range []string{"n1", "n2"} {
		rn, err := c.StartReplica(name, repl.ReplicaOptions{Epoch: 1}, server.Options{})
		if err != nil {
			return nil, err
		}
		defer rn.Stop()
		pn.Attach(c, name)
		if !rn.WaitCaughtUp(pn.Repl.Status().Mark, 10*time.Second) {
			return nil, fmt.Errorf("slow: replica %s never caught up", name)
		}
	}

	// The reader lists n1 first, so both modes start pinned to n1 —
	// the replica the degraded scenario then slows down.
	addrs := []string{"n1", "n2"}
	healDegrade := func() {
		base := netsim.Config{Latency: res.NetLatency}
		for _, rd := range []string{"rd-plain-d", "rd-hedge-d"} {
			c.Net.SetLink("n1", rd, base)
			c.Net.SetLink(rd, "n1", base)
		}
	}
	degrade := func(rd string) {
		bad := netsim.Config{Latency: res.DegradedLatency}
		c.Net.SetLink("n1", rd, bad)
		c.Net.SetLink(rd, "n1", bad)
	}

	for _, cell := range []struct {
		scenario string
		hedged   bool
		rd       string
	}{
		{"healthy", false, "rd-plain-h"},
		{"healthy", true, "rd-hedge-h"},
		{"degraded", false, "rd-plain-d"},
		{"degraded", true, "rd-hedge-d"},
	} {
		if cell.scenario == "degraded" {
			degrade(cell.rd)
		}
		row, err := runSlowReadCell(c, addrs, cell.rd, cell.hedged, txns, res.Keys, res.HedgeDelay)
		if err != nil {
			return nil, err
		}
		row.Scenario = cell.scenario
		res.Rows = append(res.Rows, row)
	}
	healDegrade()

	var plainD, hedgeD, hedgeH *SlowReadRow
	for i := range res.Rows {
		r := &res.Rows[i]
		switch {
		case r.Scenario == "degraded" && !r.Hedged:
			plainD = r
		case r.Scenario == "degraded" && r.Hedged:
			hedgeD = r
		case r.Scenario == "healthy" && r.Hedged:
			hedgeH = r
		}
	}
	if hedgeD != nil && hedgeD.P99Ns > 0 {
		res.P99RecoveryX = float64(plainD.P99Ns) / float64(hedgeD.P99Ns)
	}
	if hedgeH != nil {
		res.HealthyAmplPct = hedgeH.AmplPct
	}
	return res, nil
}

// runSlowReadCell issues reads from a fresh client on its own clock
// lane and reports virtual-latency percentiles.
func runSlowReadCell(c *repl.Cluster, addrs []string, rd string, hedged bool, reads, keys int, hedgeDelay time.Duration) (SlowReadRow, error) {
	lane := c.Clock.NewLane()
	c.Net.Register(rd, lane)
	m := c.Registry.Counters(rd)
	opts := server.ClientOptions{ReadAnywhere: true, Metrics: m, Seed: 13}
	if hedged {
		opts.HedgeDelay = hedgeDelay
		opts.Clock = lane
	}
	cli := server.NewClient(c.Dialer(rd), addrs, opts)
	defer cli.Close()

	lats := make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		key := []byte(fmt.Sprintf("k%04d", i%keys))
		t0 := lane.Now()
		if _, found, err := cli.Get("kv", key); err != nil || !found {
			return SlowReadRow{}, fmt.Errorf("read %s via %s: found=%v err=%v", key, rd, found, err)
		}
		lats = append(lats, lane.Now()-t0)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row := SlowReadRow{
		Hedged:      hedged,
		Reads:       reads,
		P50Ns:       int64(lats[len(lats)/2]),
		P99Ns:       int64(lats[len(lats)*99/100]),
		HedgedReads: m.Count(metrics.HedgedReads),
		HedgeWins:   m.Count(metrics.HedgeWins),
	}
	row.AmplPct = 100 * float64(row.HedgedReads) / float64(reads)
	return row, nil
}

// Print writes the human-readable report.
func (r *SlowResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Gray-failure reads (%dB values, %d keys, %v links, degraded replica at %v, hedge floor %v)\n",
		r.ValueBytes, r.Keys, r.NetLatency, r.DegradedLatency, r.HedgeDelay)
	fmt.Fprintf(w, "%-10s %-7s %-8s %-12s %-12s %-8s %-6s %s\n",
		"scenario", "hedged", "reads", "p50(vus)", "p99(vus)", "hedges", "wins", "ampl")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-7t %-8d %-12.1f %-12.1f %-8d %-6d %.2f%%\n",
			row.Scenario, row.Hedged, row.Reads,
			float64(row.P50Ns)/1e3, float64(row.P99Ns)/1e3,
			row.HedgedReads, row.HedgeWins, row.AmplPct)
	}
	fmt.Fprintf(w, "p99 recovery with one degraded replica: %.1fx (plain/hedged); healthy read amplification %.2f%%\n",
		r.P99RecoveryX, r.HealthyAmplPct)
}
