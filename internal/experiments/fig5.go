package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mobibench"
)

// Fig5Cell is the per-transaction time breakdown of one (K, scheme)
// configuration.
type Fig5Cell struct {
	InsertsPerTxn int
	Lazy          bool
	Memcpy        time.Duration
	Dccmvac       time.Duration // flush issue + completion wait
	Dmb           time.Duration
	Syscall       time.Duration // kernel mode switches
	Persist       time.Duration
	Total         time.Duration // whole transaction
}

// Ordering reports the total ordering-constraint overhead (everything
// except memcpy and query CPU): the quantity Figure 6 divides by the
// transaction time.
func (c Fig5Cell) Ordering() time.Duration {
	return c.Dccmvac + c.Dmb + c.Syscall + c.Persist
}

// OverheadPercent is the Figure 6 y-axis.
func (c Fig5Cell) OverheadPercent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Ordering()) / float64(c.Total)
}

// Fig5Result holds the lazy/eager sweep; it serves both Figure 5 (time
// breakdown) and Figure 6 (overhead percentage).
type Fig5Result struct {
	Cells []Fig5Cell
}

// Figure5 reproduces the §5.1 ordering-constraint experiment on Tuna at
// 500 ns NVRAM write latency: lazy (L) versus eager (E) synchronization
// with differential logging, varying inserts per transaction.
func Figure5(txns int) (*Fig5Result, error) {
	if txns <= 0 {
		txns = 200
	}
	res := &Fig5Result{}
	for _, k := range kSweep {
		for _, lazy := range []bool{true, false} {
			cfg := core.VariantUHLSDiff()
			if !lazy {
				cfg.Sync = core.SyncEager
			}
			s, err := NewNVWALSetup(Tuna, cfg, db1000)
			if err != nil {
				return nil, err
			}
			s.Plat.SetNVRAMLatency(500 * time.Nanosecond)
			w, err := mobibench.Prepare(s.DB, mobibench.Workload{
				Op: mobibench.Insert, Transactions: txns, OpsPerTxn: k, Seed: 5,
			})
			if err != nil {
				return nil, err
			}
			before := s.Plat.Metrics.Snapshot()
			r, err := mobibench.Run(s.DB, s.Plat.Clock, w)
			if err != nil {
				return nil, err
			}
			delta := s.Plat.Metrics.Snapshot().Sub(before)
			n := time.Duration(txns)
			res.Cells = append(res.Cells, Fig5Cell{
				InsertsPerTxn: k,
				Lazy:          lazy,
				Memcpy:        delta.Time(metrics.TimeMemcpy) / n,
				Dccmvac:       delta.Time(metrics.TimeFlush) / n,
				Dmb:           delta.Time(metrics.TimeBarrier) / n,
				Syscall:       delta.Time(metrics.TimeSyscall) / n,
				Persist:       delta.Time(metrics.TimePersist) / n,
				Total:         r.PerTxn(),
			})
		}
	}
	return res, nil
}

// Cell returns the cell for (k, lazy), or nil.
func (r *Fig5Result) Cell(k int, lazy bool) *Fig5Cell {
	for i := range r.Cells {
		if r.Cells[i].InsertsPerTxn == k && r.Cells[i].Lazy == lazy {
			return &r.Cells[i]
		}
	}
	return nil
}

// Print prints the Figure 5 series (times in µs per transaction).
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: Ordering-constraint time per transaction (usec), L=lazy E=eager")
	fmt.Fprintf(w, "%4s %4s %10s %10s %8s %10s %10s %12s\n",
		"K", "mode", "memcpy", "dccmvac", "dmb", "syscall", "persist", "txn total")
	for _, c := range r.Cells {
		mode := "E"
		if c.Lazy {
			mode = "L"
		}
		fmt.Fprintf(w, "%4d %4s %10s %10s %8s %10s %10s %12s\n",
			c.InsertsPerTxn, mode,
			usec(c.Memcpy), usec(c.Dccmvac), usec(c.Dmb),
			usec(c.Syscall), usec(c.Persist), usec(c.Total))
	}
}

// WriteFigure6 prints the Figure 6 view of the same data.
func (r *Fig5Result) WriteFigure6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: Ordering-constraint overhead as % of query execution time")
	fmt.Fprintf(w, "%4s %8s %8s\n", "K", "L (%)", "E (%)")
	for _, k := range kSweep {
		l, e := r.Cell(k, true), r.Cell(k, false)
		if l == nil || e == nil {
			continue
		}
		fmt.Fprintf(w, "%4d %8.1f %8.1f\n", k, l.OverheadPercent(), e.OverheadPercent())
	}
}
