// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated platforms:
//
//	Table 1   cache-line flushes per transaction vs. inserts/txn
//	Table 2   bytes written to NVRAM, full-page vs. differential logging
//	Figure 5  memcpy / dccmvac / dmb time, lazy vs. eager sync
//	Figure 6  ordering-constraint overhead as % of query time
//	Figure 7  throughput vs. NVRAM latency for the six NVWAL variants
//	Figure 8  block I/O trace, stock vs. optimized WAL on EXT4
//	Figure 9  throughput vs. NVRAM latency, NVWAL vs. WAL on flash
//
// Absolute numbers come from the calibrated virtual clock; the shapes
// (who wins, by what factor, where crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/mobibench"
	"repro/internal/platform"
)

// Setup is one assembled platform + open database.
type Setup struct {
	Plat *platform.Platform
	DB   *db.DB
}

// Board selects the evaluation platform.
type Board int

const (
	// Tuna is the NVRAM emulation board (§5.1–5.3): 32 B lines,
	// 400–2000 ns NVRAM latency, ARM Cortex-A9 CPU costs.
	Tuna Board = iota
	// Nexus5 is the smartphone platform (§5.4): 64 B lines, eMMC flash,
	// Snapdragon 800 CPU costs.
	Nexus5
)

func (b Board) String() string {
	if b == Nexus5 {
		return "nexus5"
	}
	return "tuna"
}

func (b Board) newPlatform() (*platform.Platform, error) {
	if b == Nexus5 {
		return platform.NewNexus5()
	}
	return platform.NewTuna()
}

func (b Board) cpu() db.CPUProfile {
	if b == Nexus5 {
		return db.CPUNexus5
	}
	return db.CPUTuna
}

// NewNVWALSetup opens an NVWAL-journaled database on the given board.
func NewNVWALSetup(b Board, cfg core.Config, checkpointLimit int) (*Setup, error) {
	plat, err := b.newPlatform()
	if err != nil {
		return nil, err
	}
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal:         db.JournalNVWAL,
		NVWAL:           cfg,
		CPU:             b.cpu(),
		CheckpointLimit: checkpointLimit,
	})
	if err != nil {
		return nil, err
	}
	return &Setup{Plat: plat, DB: d}, nil
}

// NewWALSetup opens a flash-WAL database (stock or optimized) on the
// given board.
func NewWALSetup(b Board, optimized bool, checkpointLimit int) (*Setup, error) {
	plat, err := b.newPlatform()
	if err != nil {
		return nil, err
	}
	mode := db.JournalWAL
	if optimized {
		mode = db.JournalOptimizedWAL
	}
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal:         mode,
		CPU:             b.cpu(),
		CheckpointLimit: checkpointLimit,
	})
	if err != nil {
		return nil, err
	}
	return &Setup{Plat: plat, DB: d}, nil
}

// runWorkload prepares and runs a mobibench workload, returning the
// result.
func (s *Setup) runWorkload(w mobibench.Workload) (mobibench.Result, error) {
	w, err := mobibench.Prepare(s.DB, w)
	if err != nil {
		return mobibench.Result{}, err
	}
	return mobibench.Run(s.DB, s.Plat.Clock, w)
}

// usec renders a duration as microseconds with one decimal.
func usec(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

// kSweep is the inserts-per-transaction sweep of §5.1 (Figures 5/6,
// Tables 1/2).
var kSweep = []int{1, 2, 4, 8, 16, 32}

// tunaLatencies is the Figure 7 NVRAM write-latency sweep (§5.3 varies
// 400–1900 ns; 1942 ns appears in the text as the slowest setting).
var tunaLatencies = []time.Duration{
	437 * time.Nanosecond,
	700 * time.Nanosecond,
	1000 * time.Nanosecond,
	1300 * time.Nanosecond,
	1600 * time.Nanosecond,
	1942 * time.Nanosecond,
}

// nexusLatencies is the Figure 9 emulated-latency sweep (2–230 µs).
var nexusLatencies = []time.Duration{
	2 * time.Microsecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	22 * time.Microsecond,
	47 * time.Microsecond,
	100 * time.Microsecond,
	160 * time.Microsecond,
	230 * time.Microsecond,
}
