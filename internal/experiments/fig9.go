package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mobibench"
)

// Fig9Series names the four systems of Figure 9.
var Fig9Series = []string{
	"NVWAL UH+LS+Diff on NVRAM",
	"NVWAL LS on NVRAM",
	"Optimized WAL on eMMC",
	"WAL on eMMC",
}

// Fig9Point is one (series, latency) measurement.
type Fig9Point struct {
	Series     string
	Latency    time.Duration
	Throughput float64
}

// Fig9Result holds the Figure 9 sweep.
type Fig9Result struct {
	Latencies []time.Duration
	Points    []Fig9Point
}

// Figure9 reproduces the headline experiment (§5.4) on the Nexus 5:
// 1000 single-insert transactions of 100-byte records into an empty
// table, comparing NVWAL (UH+LS+Diff and plain LS) against the stock
// and optimized file WAL on eMMC as the emulated NVRAM write latency
// sweeps 2–230 µs. The flash WAL baselines do not depend on the NVRAM
// latency and are measured once. Checkpointing is amortized across the
// 1000 transactions via SQLite's default 1000-frame limit, as in the
// paper.
func Figure9(txns int) (*Fig9Result, error) {
	if txns <= 0 {
		txns = 1000
	}
	res := &Fig9Result{Latencies: nexusLatencies}
	workload := mobibench.Workload{Op: mobibench.Insert, Transactions: txns, OpsPerTxn: 1, Seed: 9}

	measureNVWAL := func(series string, cfg core.Config) error {
		for _, lat := range res.Latencies {
			s, err := NewNVWALSetup(Nexus5, cfg, db1000)
			if err != nil {
				return err
			}
			s.Plat.SetNVRAMLatency(lat)
			r, err := s.runWorkload(workload)
			if err != nil {
				return err
			}
			res.Points = append(res.Points, Fig9Point{series, lat, r.Throughput()})
		}
		return nil
	}
	if err := measureNVWAL(Fig9Series[0], core.VariantUHLSDiff()); err != nil {
		return nil, err
	}
	if err := measureNVWAL(Fig9Series[1], core.VariantLS()); err != nil {
		return nil, err
	}
	for i, optimized := range []bool{true, false} {
		s, err := NewWALSetup(Nexus5, optimized, db1000)
		if err != nil {
			return nil, err
		}
		r, err := s.runWorkload(workload)
		if err != nil {
			return nil, err
		}
		for _, lat := range res.Latencies {
			res.Points = append(res.Points, Fig9Point{Fig9Series[2+i], lat, r.Throughput()})
		}
	}
	return res, nil
}

// Throughput returns the measurement for (series, latency), or 0.
func (r *Fig9Result) Throughput(series string, lat time.Duration) float64 {
	for _, p := range r.Points {
		if p.Series == series && p.Latency == lat {
			return p.Throughput
		}
	}
	return 0
}

// Speedup reports NVWAL UH+LS+Diff at the given latency over the
// optimized WAL baseline (the paper's "at least 10x" headline holds at
// 2 µs: 5812 vs 541 ins/sec).
func (r *Fig9Result) Speedup(lat time.Duration) float64 {
	base := r.Throughput(Fig9Series[2], r.Latencies[0])
	if base == 0 {
		return 0
	}
	return r.Throughput(Fig9Series[0], lat) / base
}

// Crossover returns the smallest swept latency at which the series
// drops to or below the optimized-WAL baseline (paper: ~47 µs for LS,
// ~230 µs for UH+LS+Diff), or 0 if it stays above throughout.
func (r *Fig9Result) Crossover(series string) time.Duration {
	base := r.Throughput(Fig9Series[2], r.Latencies[0])
	for _, lat := range r.Latencies {
		if r.Throughput(series, lat) <= base {
			return lat
		}
	}
	return 0
}

// Print prints the Figure 9 series.
func (r *Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: Transaction throughput (txn/sec) vs emulated NVRAM latency")
	fmt.Fprintf(w, "%-28s", "series \\ latency")
	for _, lat := range r.Latencies {
		fmt.Fprintf(w, "%8dus", lat.Microseconds())
	}
	fmt.Fprintln(w)
	for _, s := range Fig9Series {
		fmt.Fprintf(w, "%-28s", s)
		for _, lat := range r.Latencies {
			fmt.Fprintf(w, "%10.0f", r.Throughput(s, lat))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "speedup of UH+LS+Diff over optimized WAL at %v: %.1fx (paper: >= 10x)\n",
		r.Latencies[0], r.Speedup(r.Latencies[0]))
	if c := r.Crossover(Fig9Series[1]); c > 0 {
		fmt.Fprintf(w, "NVWAL LS crosses WAL at ~%v (paper: ~47us)\n", c)
	}
	if c := r.Crossover(Fig9Series[0]); c > 0 {
		fmt.Fprintf(w, "NVWAL UH+LS+Diff crosses WAL at ~%v (paper: ~230us)\n", c)
	}
}
