package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/dbfile"
	"repro/internal/ext4"
	"repro/internal/heapo"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/pager"
	"repro/internal/simclock"
)

// ChecksumRow reports the crash outcomes of asynchronous commit under
// one checksum width.
type ChecksumRow struct {
	Bits      int // validated checksum bits
	Trials    int
	Survived  int // transaction fully recovered
	Dropped   int // torn transaction detected and discarded (safe)
	Corrupted int // torn transaction accepted (the §4.2 hazard)
}

// ChecksumResult holds the §4.2 collision study.
type ChecksumResult struct {
	Rows []ChecksumRow
}

// ChecksumStudy quantifies the asynchronous-commit consistency risk the
// paper describes qualitatively ("there is a chance that the written
// checksum bytes accidentally match the unwritten log entries. Hence,
// although the chance is very low, a system crash may corrupt a
// database file", §4.2). For each checksum width it commits a
// transaction under the CS scheme, crashes adversarially (arbitrary
// cache lines persist), recovers, and classifies the outcome. With the
// full 32-bit CRC no corruption should ever surface; artificially
// narrowed checksums make the collision rate observable at roughly
// 2^-bits per torn commit.
func ChecksumStudy(trials int) (*ChecksumResult, error) {
	if trials <= 0 {
		trials = 400
	}
	res := &ChecksumResult{}
	for _, bits := range []int{32, 8, 4, 2} {
		row := ChecksumRow{Bits: bits, Trials: trials}
		for seed := int64(1); seed <= int64(trials); seed++ {
			outcome, err := runChecksumTrial(bits, seed)
			if err != nil {
				return nil, err
			}
			switch outcome {
			case "survived":
				row.Survived++
			case "dropped":
				row.Dropped++
			default:
				row.Corrupted++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runChecksumTrial performs one commit-crash-recover cycle and reports
// "survived", "dropped", or "corrupted".
func runChecksumTrial(bits int, seed int64) (string, error) {
	clock := simclock.New()
	m := &metrics.Counters{}
	dev := nvram.NewDevice(nvram.Config{Size: 4 << 20}, clock, m)
	h, err := heapo.Format(dev)
	if err != nil {
		return "", err
	}
	bd := blockdev.New(blockdev.Config{Pages: 1 << 12}, clock, m, nil)
	fs := ext4.New(bd)
	f, err := fs.Create("cs.db", "db")
	if err != nil {
		return "", err
	}
	db := dbfile.New(f, 4096)

	cfg := core.VariantUHCSDiff()
	if bits < 32 {
		cfg.ChecksumMask = (1 << bits) - 1
	}
	w, err := core.Open(h, db, cfg, m)
	if err != nil {
		return "", err
	}
	// One full-page transaction with content the crash can tear.
	rng := rand.New(rand.NewSource(seed ^ 0x7777))
	img := make([]byte, 4096)
	rng.Read(img)
	if err := w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: img}}); err != nil {
		return "", err
	}

	dev.PowerFail(memsim.FailAdversarial, seed)
	dev.Recover()
	h2, err := heapo.Attach(dev)
	if err != nil {
		return "", err
	}
	h2.ReclaimPending()
	w2, err := core.Open(h2, db, cfg, m)
	if err != nil {
		return "", err
	}
	got, ok := w2.PageVersion(2)
	switch {
	case !ok:
		return "dropped", nil
	case bytes.Equal(got, img):
		return "survived", nil
	default:
		return "corrupted", nil
	}
}

// CorruptionRate returns the corrupted fraction for a checksum width.
func (r *ChecksumResult) CorruptionRate(bits int) float64 {
	for _, row := range r.Rows {
		if row.Bits == bits && row.Trials > 0 {
			return float64(row.Corrupted) / float64(row.Trials)
		}
	}
	return 0
}

// Print renders the study.
func (r *ChecksumResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Asynchronous-commit checksum collision study (§4.2), adversarial crashes")
	fmt.Fprintf(w, "%-14s %8s %10s %10s %12s\n", "checksum bits", "trials", "survived", "dropped", "CORRUPTED")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14d %8d %10d %10d %12d\n",
			row.Bits, row.Trials, row.Survived, row.Dropped, row.Corrupted)
	}
	fmt.Fprintln(w, "full-width CRC32 must show zero corruption; narrowed checksums corrupt at ~2^-bits per torn commit")
}
