package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/ext4"
	"repro/internal/mobibench"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Fig8Side is the block trace of one WAL mode.
type Fig8Side struct {
	Mode      string
	Events    []trace.Event
	ByTag     map[string]int // bytes per stream
	BatchTime time.Duration  // virtual time of the 10-transaction batch
}

// Fig8Result holds both sides of Figure 8.
type Fig8Result struct {
	Stock     Fig8Side
	Optimized Fig8Side
}

// Figure8 reproduces the §5.4 block-trace experiment on the Nexus 5: 10
// single-insert transactions in stock WAL mode versus the optimized WAL
// mode, recording every block write (EXT4 journal, .db-wal, .db).
func Figure8() (*Fig8Result, error) {
	run := func(optimized bool) (Fig8Side, error) {
		s, err := NewWALSetup(Nexus5, optimized, db1000)
		if err != nil {
			return Fig8Side{}, err
		}
		w, err := mobibench.Prepare(s.DB, mobibench.Workload{
			Op: mobibench.Insert, Transactions: 10, OpsPerTxn: 1, Seed: 8,
		})
		if err != nil {
			return Fig8Side{}, err
		}
		s.Plat.Trace.Reset()
		start := s.Plat.Clock.Now()
		if _, err := mobibench.Run(s.DB, s.Plat.Clock, w); err != nil {
			return Fig8Side{}, err
		}
		mode := "WAL"
		if optimized {
			mode = "Optimized WAL"
		}
		return Fig8Side{
			Mode:      mode,
			Events:    s.Plat.Trace.Events(),
			ByTag:     s.Plat.Trace.BytesByTag(),
			BatchTime: s.Plat.Clock.Now() - start,
		}, nil
	}
	stock, err := run(false)
	if err != nil {
		return nil, err
	}
	opt, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Stock: stock, Optimized: opt}, nil
}

// JournalReduction reports the EXT4-journal traffic saving of the
// optimized mode (paper: ~40%, 284 KB vs 172 KB).
func (r *Fig8Result) JournalReduction() float64 {
	s := r.Stock.ByTag[ext4.TagJournal]
	o := r.Optimized.ByTag[ext4.TagJournal]
	if s == 0 {
		return 0
	}
	return 1 - float64(o)/float64(s)
}

// Print prints the per-mode traffic summary and the block traces.
func (r *Fig8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: Block trace of 10 SQLite insert transactions")
	for _, side := range []Fig8Side{r.Stock, r.Optimized} {
		fmt.Fprintf(w, "%-14s journal %6.0f KB   db-wal %6.0f KB   db %6.0f KB   batch %s usec\n",
			side.Mode,
			float64(side.ByTag[ext4.TagJournal])/1024,
			float64(side.ByTag[wal.TagWAL])/1024,
			float64(side.ByTag["db"])/1024,
			usec(side.BatchTime))
	}
	fmt.Fprintf(w, "EXT4 journal traffic reduction: %.0f%% (paper: ~40%%)\n", r.JournalReduction()*100)
	fmt.Fprintln(w, "\ntrace (time_us block stream):")
	for _, side := range []Fig8Side{r.Stock, r.Optimized} {
		fmt.Fprintf(w, "-- %s --\n", side.Mode)
		for _, e := range side.Events {
			fmt.Fprintf(w, "%10.1f %8d %s\n", float64(e.T.Microseconds()), e.Block, e.Tag)
		}
	}
}
