package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/mobibench"
)

// These tests pin the reproduction targets: each experiment's *shape*
// must match the paper (who wins, roughly by what factor, where the
// crossovers fall). Transaction counts are reduced for test speed; the
// bench harness runs the full sizes.

const testTxns = 60

func TestTable1FlushesGrowWithBatchSize(t *testing.T) {
	r, err := Table1(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(kSweep) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Flushes <= r.Rows[i-1].Flushes {
			t.Fatalf("flushes not increasing: %+v", r.Rows)
		}
	}
	// K=1 lands in the Table 1 ballpark (tens of flushes, not hundreds:
	// differential logging keeps single-insert transactions small).
	if f := r.Rows[0].Flushes; f < 5 || f > 60 {
		t.Fatalf("K=1 flushes = %.1f, want tens", f)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "cache line flushes") {
		t.Fatal("Print output malformed")
	}
}

func TestTable2DifferentialSavesMostForInsert(t *testing.T) {
	r, err := Table2(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.OpsPerTxn {
		ins := r.Reduction(mobibench.Insert, i)
		upd := r.Reduction(mobibench.Update, i)
		del := r.Reduction(mobibench.Delete, i)
		if ins <= 0 || upd <= 0 || del <= 0 {
			t.Fatalf("differential logging increased I/O at column %d: ins=%.2f upd=%.2f del=%.2f", i, ins, upd, del)
		}
		// The paper's per-op ranges overlap (insert 73–84%, update
		// 29–85%, delete 49–69%), so only positivity holds pointwise;
		// the small-K insert band is checked below.
		_ = upd
	}
	// §5.2: single-insert transactions benefit the most from
	// differential logging.
	if ins1 := r.Reduction(mobibench.Insert, 0); ins1 < r.Reduction(mobibench.Delete, 0) {
		t.Fatalf("K=1 insert reduction (%.2f) below delete's (%.2f)", ins1, r.Reduction(mobibench.Delete, 0))
	}
	// Insert reduction in the paper's 73–84%% band (we accept 60–97%%).
	if red := r.Reduction(mobibench.Insert, 0); red < 0.60 || red > 0.97 {
		t.Fatalf("insert K=1 reduction = %.0f%%, want roughly the paper's 73–84%%", red*100)
	}
	// §3.3: several frames share one 8 KB block under differential
	// logging (paper: 4.9).
	if r.FramesPerBlock < 2 || r.FramesPerBlock > 12 {
		t.Fatalf("frames per block = %.1f, want a small multiple (paper 4.9)", r.FramesPerBlock)
	}
}

func TestFigure5LazyBeatsEagerOnOrdering(t *testing.T) {
	r, err := Figure5(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kSweep {
		l, e := r.Cell(k, true), r.Cell(k, false)
		if l == nil || e == nil {
			t.Fatalf("missing cells for K=%d", k)
		}
		if l.Ordering() >= e.Ordering() {
			t.Fatalf("K=%d: lazy ordering overhead %v not below eager %v", k, l.Ordering(), e.Ordering())
		}
		// memcpy time is scheme-independent (§5.1: "amounts of time
		// spent on memcpy in both schemes are similar").
		diff := float64(l.Memcpy-e.Memcpy) / float64(e.Memcpy)
		if diff < -0.1 || diff > 0.1 {
			t.Fatalf("K=%d: memcpy differs by %.0f%% between schemes", k, diff*100)
		}
	}
	// The dccmvac(+dmb) component of eager is a few percent to a few
	// tens of percent slower (paper: 2–23%).
	l32, e32 := r.Cell(32, true), r.Cell(32, false)
	ratio := float64(e32.Dccmvac+e32.Dmb) / float64(l32.Dccmvac+l32.Dmb)
	if ratio < 1.01 || ratio > 1.6 {
		t.Fatalf("eager/lazy dccmvac+dmb ratio = %.2f, want within the paper's up-to-23%% band", ratio)
	}
}

func TestFigure6OverheadSmallAndDecreasing(t *testing.T) {
	r, err := Figure5(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	first := r.Cell(kSweep[0], true)
	last := r.Cell(kSweep[len(kSweep)-1], true)
	if first.OverheadPercent() > 6.0 {
		t.Fatalf("K=1 overhead = %.1f%%, paper reports at most 4.6%%", first.OverheadPercent())
	}
	if last.OverheadPercent() >= first.OverheadPercent() {
		t.Fatalf("overhead %% must fall with K: K=1 %.1f%%, K=32 %.1f%%",
			first.OverheadPercent(), last.OverheadPercent())
	}
}

func TestFigure7VariantOrderingAndLatencySensitivity(t *testing.T) {
	r, err := Figure7(mobibench.Insert, testTxns)
	if err != nil {
		t.Fatal(err)
	}
	slow := r.Latencies[len(r.Latencies)-1]
	// Throughput decreases with latency for every variant.
	for _, v := range r.Variants {
		prev := r.Throughput(v, r.Latencies[0])
		for _, lat := range r.Latencies[1:] {
			cur := r.Throughput(v, lat)
			if cur > prev {
				t.Fatalf("%s: throughput rose with latency (%f -> %f)", v, prev, cur)
			}
			prev = cur
		}
	}
	at := func(v string) float64 { return r.Throughput(v, slow) }
	// Figure 7 ordering at high latency: UH+CS+Diff fastest; each
	// technique helps.
	if !(at("NVWAL UH+CS+Diff") >= at("NVWAL UH+LS+Diff") &&
		at("NVWAL UH+LS+Diff") > at("NVWAL LS+Diff") &&
		at("NVWAL LS+Diff") > at("NVWAL LS") &&
		at("NVWAL UH+LS") > at("NVWAL LS")) {
		t.Fatalf("variant ordering wrong at %v: %+v", slow, r.Points)
	}
	// §5.3: UH+LS+Diff is comparable to (within ~10%% of) UH+CS+Diff.
	if gap := at("NVWAL UH+CS+Diff") / at("NVWAL UH+LS+Diff"); gap > 1.10 {
		t.Fatalf("UH+LS+Diff not comparable to UH+CS+Diff: gap %.2fx", gap)
	}
	// Abstract anchor: one-fifth latency gives only a few %% gain for
	// UH+LS+Diff (2517 -> 2621 ins/s, ~4%%).
	gain := r.Throughput("NVWAL UH+LS+Diff", r.Latencies[0]) /
		r.Throughput("NVWAL UH+LS+Diff", slow)
	if gain < 1.0 || gain > 1.12 {
		t.Fatalf("latency insensitivity broken: 437ns/1942ns gain = %.2fx (paper ~1.04x)", gain)
	}
}

func TestFigure8OptimizedWALCutsJournalTraffic(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	red := r.JournalReduction()
	if red < 0.25 || red > 0.55 {
		t.Fatalf("journal reduction = %.0f%%, paper ~40%%", red*100)
	}
	if r.Optimized.BatchTime >= r.Stock.BatchTime {
		t.Fatalf("optimized batch (%v) not faster than stock (%v)", r.Optimized.BatchTime, r.Stock.BatchTime)
	}
	if len(r.Stock.Events) == 0 || len(r.Optimized.Events) == 0 {
		t.Fatal("empty block traces")
	}
	// Stock WAL writes more .db-wal blocks (misaligned frames).
	if r.Stock.ByTag["db-wal"] <= r.Optimized.ByTag["db-wal"] {
		t.Fatal("stock WAL did not show frame-misalignment write amplification")
	}
}

func TestFigure9HeadlineSpeedupAndCrossovers(t *testing.T) {
	r, err := Figure9(200)
	if err != nil {
		t.Fatal(err)
	}
	// Headline: >= 10x over WAL on flash at 2 µs (§1, §5.4).
	if s := r.Speedup(2 * time.Microsecond); s < 9.0 {
		t.Fatalf("speedup at 2µs = %.1fx, paper >= 10x", s)
	}
	// Optimized WAL beats stock WAL.
	lat0 := r.Latencies[0]
	if r.Throughput(Fig9Series[2], lat0) <= r.Throughput(Fig9Series[3], lat0) {
		t.Fatal("optimized WAL not faster than stock WAL")
	}
	// LS crosses the WAL baseline around 47 µs (within our sweep's
	// granularity), and much earlier than UH+LS+Diff.
	lsCross := r.Crossover(Fig9Series[1])
	if lsCross == 0 || lsCross < 22*time.Microsecond || lsCross > 100*time.Microsecond {
		t.Fatalf("LS crossover = %v, paper ~47µs", lsCross)
	}
	uhCross := r.Crossover(Fig9Series[0])
	if uhCross != 0 && uhCross < 160*time.Microsecond {
		t.Fatalf("UH+LS+Diff crossover = %v, paper ~230µs", uhCross)
	}
	// NVWAL throughput decreases monotonically with latency.
	for _, s := range Fig9Series[:2] {
		prev := r.Throughput(s, r.Latencies[0])
		for _, lat := range r.Latencies[1:] {
			cur := r.Throughput(s, lat)
			if cur > prev {
				t.Fatalf("%s: throughput rose with latency", s)
			}
			prev = cur
		}
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	r5, err := Figure5(20)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	r5.Print(&b)
	r5.WriteFigure6(&b)
	if !strings.Contains(b.String(), "Figure 5") || !strings.Contains(b.String(), "Figure 6") {
		t.Fatal("printer output missing headers")
	}
}
