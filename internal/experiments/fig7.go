package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mobibench"
)

// Fig7Point is one (variant, latency) measurement.
type Fig7Point struct {
	Variant    string
	Latency    time.Duration
	Throughput float64 // transactions per second
}

// Fig7Result is one operation panel of Figure 7.
type Fig7Result struct {
	Op        mobibench.Op
	Latencies []time.Duration
	Variants  []string
	Points    []Fig7Point
}

// Figure7 reproduces one panel of Figure 7 on Tuna: transaction
// throughput of the six NVWAL variants as the NVRAM write latency
// sweeps 400–1900 ns. Transactions are single-operation with 100-byte
// records; periodic checkpointing is included, as on the Tuna board
// (§5.4 notes Tuna results are sustained-minus... peak including
// checkpoints).
func Figure7(op mobibench.Op, txns int) (*Fig7Result, error) {
	if txns <= 0 {
		txns = 1000
	}
	res := &Fig7Result{Op: op, Latencies: tunaLatencies}
	for _, v := range core.Figure7Variants() {
		res.Variants = append(res.Variants, v.Name)
		for _, lat := range res.Latencies {
			s, err := NewNVWALSetup(Tuna, v.Cfg, db1000)
			if err != nil {
				return nil, err
			}
			s.Plat.SetNVRAMLatency(lat)
			r, err := s.runWorkload(mobibench.Workload{
				Op: op, Transactions: txns, OpsPerTxn: 1, Seed: 7,
			})
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Fig7Point{
				Variant:    v.Name,
				Latency:    lat,
				Throughput: r.Throughput(),
			})
		}
	}
	return res, nil
}

// Throughput returns the measurement for (variant, latency), or 0.
func (r *Fig7Result) Throughput(variant string, lat time.Duration) float64 {
	for _, p := range r.Points {
		if p.Variant == variant && p.Latency == lat {
			return p.Throughput
		}
	}
	return 0
}

// Print prints the panel as the paper's series.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 7(%s): Transaction throughput (txn/sec) vs NVRAM write latency\n", r.Op)
	fmt.Fprintf(w, "%-18s", "variant \\ latency")
	for _, lat := range r.Latencies {
		fmt.Fprintf(w, "%9dns", lat.Nanoseconds())
	}
	fmt.Fprintln(w)
	for _, v := range r.Variants {
		fmt.Fprintf(w, "%-18s", v)
		for _, lat := range r.Latencies {
			fmt.Fprintf(w, "%11.0f", r.Throughput(v, lat))
		}
		fmt.Fprintln(w)
	}
}
