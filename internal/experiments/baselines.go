package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/mobibench"
)

// BaselineRow is one journal mode's measurement under the standard
// insert workload.
type BaselineRow struct {
	Mode         string
	Throughput   float64
	FsyncsPerTx  float64
	BlockIOPerTx float64 // flash pages written per transaction
	NVRAMPerTx   float64 // NVRAM log bytes per transaction
}

// BaselinesResult compares every journaling scheme in the repository.
type BaselinesResult struct {
	Rows []BaselineRow
}

// Baselines quantifies the §1/§2 motivation: rollback journaling needs
// more fsyncs and I/O than WAL ("WAL needs fewer fsync() calls as it
// modifies a single log file instead of two"), the optimized WAL trims
// the EXT4 overhead, and NVWAL removes block I/O from the commit path
// entirely. Nexus 5, 100-byte single-insert transactions.
func Baselines(txns int) (*BaselinesResult, error) {
	if txns <= 0 {
		txns = 300
	}
	type mode struct {
		name string
		open func() (*Setup, error)
	}
	modes := []mode{
		{"Rollback journal", func() (*Setup, error) {
			plat, err := Nexus5.newPlatform()
			if err != nil {
				return nil, err
			}
			d, err := db.Open(plat, "bench.db", db.Options{
				Journal: db.JournalRollback, CPU: Nexus5.cpu(), CheckpointLimit: db1000,
			})
			if err != nil {
				return nil, err
			}
			return &Setup{Plat: plat, DB: d}, nil
		}},
		{"Stock WAL", func() (*Setup, error) { return NewWALSetup(Nexus5, false, db1000) }},
		{"Optimized WAL", func() (*Setup, error) { return NewWALSetup(Nexus5, true, db1000) }},
		{"NVWAL UH+LS+Diff", func() (*Setup, error) {
			return NewNVWALSetup(Nexus5, core.VariantUHLSDiff(), db1000)
		}},
	}
	res := &BaselinesResult{}
	for _, m := range modes {
		s, err := m.open()
		if err != nil {
			return nil, err
		}
		w, err := mobibench.Prepare(s.DB, mobibench.Workload{
			Op: mobibench.Insert, Transactions: txns, OpsPerTxn: 1, Seed: 17,
		})
		if err != nil {
			return nil, err
		}
		before := s.Plat.Metrics.Snapshot()
		r, err := mobibench.Run(s.DB, s.Plat.Clock, w)
		if err != nil {
			return nil, err
		}
		delta := s.Plat.Metrics.Snapshot().Sub(before)
		n := float64(txns)
		res.Rows = append(res.Rows, BaselineRow{
			Mode:         m.name,
			Throughput:   r.Throughput(),
			FsyncsPerTx:  float64(delta.Count(metrics.Fsync)) / n,
			BlockIOPerTx: float64(delta.Count(metrics.BlockWrite)) / n,
			NVRAMPerTx:   float64(delta.Count(core.MetricLoggedBytes)) / n,
		})
	}
	return res, nil
}

// Row returns the named mode's measurements.
func (r *BaselinesResult) Row(mode string) *BaselineRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Print renders the comparison.
func (r *BaselinesResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Journaling baselines (§1/§2 motivation): 100B single-insert transactions, Nexus 5")
	fmt.Fprintf(w, "%-18s %10s %12s %14s %14s\n",
		"mode", "txn/sec", "fsyncs/txn", "flash pg/txn", "NVRAM B/txn")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %10.0f %12.1f %14.1f %14.0f\n",
			row.Mode, row.Throughput, row.FsyncsPerTx, row.BlockIOPerTx, row.NVRAMPerTx)
	}
}
