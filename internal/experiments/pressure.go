package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/platform"
)

// PressureRow is one (heap size, writer count) cell of the exhaustion
// sweep: a sustained overwrite workload against a heap far smaller than
// the data it logs, so survival depends entirely on the watermark
// backpressure (urgent checkpoints, admission stalls, commit-side
// retries). Latencies are virtual-clock nanoseconds.
type PressureRow struct {
	HeapPages   int     `json:"heap_pages"`
	Writers     int     `json:"writers"`
	Txns        int     `json:"txns"`
	Committed   int     `json:"committed"`
	Busy        int     `json:"busy"` // ErrBusy outcomes (clean deadline rollbacks)
	P50CommitNs int64   `json:"p50_commit_ns"`
	P99CommitNs int64   `json:"p99_commit_ns"`
	Stalls      int64   `json:"pressure_stalls"`
	StallNs     int64   `json:"pressure_stall_ns"`
	UrgentCkpts int64   `json:"urgent_checkpoints"`
	Timeouts    int64   `json:"commit_timeouts"`
	Throughput  float64 `json:"txn_per_sec"` // virtual-time transactions/sec
}

// PressureResult holds the heap-size × writer sweep.
type PressureResult struct {
	ValueBytes    int           `json:"value_bytes"`
	CommitTimeout time.Duration `json:"commit_timeout_ns"`
	Rows          []PressureRow `json:"rows"`
}

// Pressure measures commit behavior under NVRAM-space exhaustion. Each
// cell cycles full-content overwrites of a small key set (every byte of
// the value changes per write, so differential logging produces real
// log volume) against heaps sized for a handful of transactions. Before
// this PR's reservations and watermarks the workload died on a raw
// allocation error; now every transaction either commits — the common
// case, stalled briefly while an urgent checkpoint frees space — or
// rolls back cleanly with ErrBusy at its deadline.
func Pressure(txns int) (*PressureResult, error) {
	if txns <= 0 {
		txns = 400
	}
	res := &PressureResult{
		ValueBytes:    1024,
		CommitTimeout: 20 * time.Millisecond,
	}
	for _, pages := range []int{24, 48, 96, 192} {
		for _, writers := range []int{1, 4} {
			row, err := runPressure(pages, writers, txns, res.ValueBytes, res.CommitTimeout)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runPressure(pages, writers, txns, valueBytes int, timeout time.Duration) (PressureRow, error) {
	plat, err := platform.New(platform.Config{
		NVRAM: nvram.Config{Size: heapo.SizeForPages(pages)},
	})
	if err != nil {
		return PressureRow{}, err
	}
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal:       db.JournalNVWAL,
		NVWAL:         core.VariantUHLSDiff(),
		Concurrent:    writers > 1,
		GroupCommit:   writers,
		CommitTimeout: timeout,
	})
	if err != nil {
		return PressureRow{}, err
	}
	if err := d.CreateTable("bench"); err != nil {
		return PressureRow{}, err
	}

	perWriter := txns / writers
	before := plat.Metrics.Snapshot()
	start := plat.Clock.Now()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []int64
		committed int
		busy      int
		hardErr   error
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Full-content overwrite: 8 keys per writer, every value
				// byte varies with the iteration.
				key := []byte(fmt.Sprintf("w%d-k%d", w, i%8))
				val := make([]byte, valueBytes)
				for j := range val {
					val[j] = byte(i + j + w)
				}
				tx, err := d.Begin()
				if err != nil {
					if !errors.Is(err, db.ErrBusy) {
						mu.Lock()
						hardErr = err
						mu.Unlock()
						return
					}
					mu.Lock()
					busy++
					mu.Unlock()
					continue
				}
				if err := tx.Insert("bench", key, val); err != nil {
					tx.Rollback()
					mu.Lock()
					hardErr = err
					mu.Unlock()
					return
				}
				t0 := plat.Clock.Now()
				err = tx.Commit()
				lat := int64(plat.Clock.Now() - t0)
				mu.Lock()
				switch {
				case err == nil:
					committed++
					latencies = append(latencies, lat)
				case errors.Is(err, db.ErrBusy):
					busy++
				default:
					hardErr = err
				}
				mu.Unlock()
				if err != nil && !errors.Is(err, db.ErrBusy) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if hardErr != nil {
		return PressureRow{}, fmt.Errorf("heap=%d writers=%d: %w", pages, writers, hardErr)
	}

	delta := plat.Metrics.Snapshot().Sub(before)
	elapsed := plat.Clock.Now() - start
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return PressureRow{
		HeapPages:   pages,
		Writers:     writers,
		Txns:        perWriter * writers,
		Committed:   committed,
		Busy:        busy,
		P50CommitNs: pct(latencies, 50),
		P99CommitNs: pct(latencies, 99),
		Stalls:      delta.Count(metrics.PressureStalls),
		StallNs:     delta.Count(metrics.PressureStallNs),
		UrgentCkpts: delta.Count(metrics.UrgentCheckpoints),
		Timeouts:    delta.Count(metrics.CommitTimeouts),
		Throughput:  float64(committed) / elapsed.Seconds(),
	}, nil
}

// pct returns the p-th percentile of sorted values (0 when empty).
func pct(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

// Print renders the sweep.
func (r *PressureResult) Print(w io.Writer) {
	fmt.Fprintf(w, "NVRAM-space exhaustion sweep (UH+LS+Diff, %dB full-content overwrites, CommitTimeout %v)\n",
		r.ValueBytes, r.CommitTimeout)
	fmt.Fprintf(w, "%-6s %-8s %-6s %-10s %-5s %12s %12s %8s %12s %8s %9s %10s\n",
		"pages", "writers", "txns", "committed", "busy", "p50(ns)", "p99(ns)",
		"stalls", "stall(ns)", "urgent", "timeouts", "txn/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6d %-8d %-6d %-10d %-5d %12d %12d %8d %12d %8d %9d %10.0f\n",
			row.HeapPages, row.Writers, row.Txns, row.Committed, row.Busy,
			row.P50CommitNs, row.P99CommitNs, row.Stalls, row.StallNs,
			row.UrgentCkpts, row.Timeouts, row.Throughput)
	}
	fmt.Fprintln(w, "every transaction commits or rolls back cleanly; raw allocation errors never escape")
}
