// Replication serving experiments: read scale-out across WAL-shipping
// replicas, and acked-write durability across a forced failover. Both
// run real clients through the simulated network against a laned
// cluster (one virtual core per node), so read throughput is
// virtual-time parallelism — N nodes serve N reads in the virtual
// time one node serves one — and the failover numbers come from the
// same crash machinery the torture chains use.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/memsim"
	"repro/internal/netsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/server"
)

// ReplReadRow is one replica-count cell of the read scale-out sweep.
type ReplReadRow struct {
	Replicas    int     `json:"replicas"`
	Readers     int     `json:"readers"` // one per serving node
	Reads       int     `json:"reads"`
	ElapsedNs   int64   `json:"elapsed_ns"` // max over node lanes
	ReadsPerSec float64 `json:"reads_per_sec"`
	Speedup     float64 `json:"speedup_vs_primary_only"`
}

// ReplFailoverResult is the forced-failover durability check: every
// client-acked write (semi-sync, quorum 1) must survive promotion of
// the most-caught-up replica.
type ReplFailoverResult struct {
	AckedWrites   int     `json:"acked_writes"`
	Survived      int     `json:"survived"`
	DurablePct    float64 `json:"durable_pct"`
	PromotedEpoch uint64  `json:"promoted_epoch"`
}

// ReplResult holds both replication experiments.
type ReplResult struct {
	ValueBytes int                `json:"value_bytes"`
	Keys       int                `json:"keys"`
	NetLatency time.Duration      `json:"net_latency_ns"`
	Rows       []ReplReadRow      `json:"rows"`
	Failover   ReplFailoverResult `json:"failover"`
}

func replPlatformConfig() platform.Config {
	return platform.Config{NVRAM: nvram.Config{
		Size:              16 << 20,
		CacheLineSize:     32,
		NVRAMWriteLatency: 500 * time.Nanosecond,
	}}
}

// Repl runs the replication serving experiments. txns scales the read
// count (default 3000 reads per row).
func Repl(txns int) (*ReplResult, error) {
	if txns <= 0 {
		txns = 3000
	}
	res := &ReplResult{
		ValueBytes: 256,
		Keys:       200,
		NetLatency: 20 * time.Microsecond,
	}
	for _, replicas := range []int{0, 1, 2} {
		row, err := runReplReadRow(replicas, txns, res.Keys, res.ValueBytes, res.NetLatency)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if base := res.Rows[0].ReadsPerSec; base > 0 {
		for i := range res.Rows {
			res.Rows[i].Speedup = res.Rows[i].ReadsPerSec / base
		}
	}
	fo, err := runReplFailover(400, res.ValueBytes)
	if err != nil {
		return nil, err
	}
	res.Failover = fo
	return res, nil
}

// runReplReadRow measures aggregate read throughput with the keyspace
// served by a primary plus `replicas` caught-up replicas, one pinned
// reader per node. Virtual elapsed is the max over node lanes: nodes
// are parallel virtual cores, so serving from more nodes divides the
// per-lane work.
func runReplReadRow(replicas, reads, keys, valueBytes int, latency time.Duration) (ReplReadRow, error) {
	names := []string{"n0", "n1", "n2"}[:replicas+1]
	c, err := repl.NewCluster(replPlatformConfig(), netsim.Config{Latency: latency}, 5, names...)
	if err != nil {
		return ReplReadRow{}, err
	}
	pn, err := c.StartPrimary("n0", repl.DefaultDBOptions(), repl.PrimaryOptions{Epoch: 1}, server.Options{})
	if err != nil {
		return ReplReadRow{}, err
	}
	defer pn.Stop(false)
	if err := pn.DB.CreateTable("kv"); err != nil {
		return ReplReadRow{}, err
	}
	val := make([]byte, valueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < keys; i++ {
		ops := []server.Op{{Key: []byte(fmt.Sprintf("k%04d", i)), Value: val}}
		if _, err := pn.Repl.Apply(context.Background(), "kv", ops); err != nil {
			return ReplReadRow{}, err
		}
	}
	var rns []*repl.ReplicaNode
	for _, name := range names[1:] {
		rn, err := c.StartReplica(name, repl.ReplicaOptions{Epoch: 1}, server.Options{})
		if err != nil {
			return ReplReadRow{}, err
		}
		defer rn.Stop()
		rns = append(rns, rn)
		pn.Attach(c, name)
	}
	target := pn.Repl.Status().Mark
	for _, rn := range rns {
		if !rn.WaitCaughtUp(target, 10*time.Second) {
			return ReplReadRow{}, fmt.Errorf("repl: replica %s never caught up", rn.Node.Name)
		}
	}

	// One reader per node, registered ON the node's lane (a colocated
	// client): all its virtual time accrues where it is served.
	nodes := len(names)
	per := reads / nodes
	starts := make([]time.Duration, nodes)
	for i, name := range names {
		starts[i] = c.Node(name).Plat.Clock.Now()
	}
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			rd := fmt.Sprintf("rd-%s", name)
			c.Net.Register(rd, c.Node(name).Plat.Clock)
			cli := server.NewClient(c.Dialer(rd), []string{name}, server.ClientOptions{ReadAnywhere: true})
			defer cli.Close()
			for j := 0; j < per; j++ {
				key := []byte(fmt.Sprintf("k%04d", (i*per+j)%keys))
				if _, found, err := cli.Get("kv", key); err != nil || !found {
					errs[i] = fmt.Errorf("read %s via %s: found=%v err=%v", key, name, found, err)
					return
				}
			}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ReplReadRow{}, err
		}
	}
	var elapsed time.Duration
	for i, name := range names {
		if d := c.Node(name).Plat.Clock.Now() - starts[i]; d > elapsed {
			elapsed = d
		}
	}
	total := per * nodes
	return ReplReadRow{
		Replicas:    replicas,
		Readers:     nodes,
		Reads:       total,
		ElapsedNs:   int64(elapsed),
		ReadsPerSec: float64(total) / elapsed.Seconds(),
	}, nil
}

// runReplFailover writes `writes` acked single-key transactions
// through a semi-sync 3-node cluster, crash-fails the primary, and
// counts how many acked writes the promoted replica still serves.
func runReplFailover(writes, valueBytes int) (ReplFailoverResult, error) {
	c, err := repl.NewCluster(replPlatformConfig(), netsim.Config{Latency: 20 * time.Microsecond}, 9, "n0", "n1", "n2")
	if err != nil {
		return ReplFailoverResult{}, err
	}
	pn, err := c.StartPrimary("n0", repl.DefaultDBOptions(),
		repl.PrimaryOptions{Epoch: 1, AckReplicas: 1}, server.Options{})
	if err != nil {
		return ReplFailoverResult{}, err
	}
	if err := pn.DB.CreateTable("kv"); err != nil {
		return ReplFailoverResult{}, err
	}
	var rns []*repl.ReplicaNode
	for _, name := range []string{"n1", "n2"} {
		rn, err := c.StartReplica(name, repl.ReplicaOptions{Epoch: 1}, server.Options{})
		if err != nil {
			return ReplFailoverResult{}, err
		}
		rns = append(rns, rn)
		pn.Attach(c, name)
	}

	cli := server.NewClient(c.Dialer("writer"), []string{"n0", "n1", "n2"}, server.ClientOptions{})
	defer cli.Close()
	val := make([]byte, valueBytes)
	acked := make(map[string]bool, writes)
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("w%05d", i)
		if _, err := cli.Put("kv", []byte(key), val); err != nil {
			return ReplFailoverResult{}, fmt.Errorf("acked write %d: %w", i, err)
		}
		acked[key] = true
	}

	// Forced failover: black-hole the primary, power-fail it, promote
	// the most-caught-up replica under the next epoch.
	c.IsolateNode("n0")
	pn.Node.Plat.PowerFail(memsim.FailDropAll, 1)
	pn.Stop(true)
	best := rns[0]
	if rns[1].R.Applied() > best.R.Applied() {
		best = rns[1]
	}
	bestName := best.Node.Name
	best.Stop()
	d, err := best.R.Promote(repl.DefaultDBOptions())
	if err != nil {
		return ReplFailoverResult{}, err
	}
	pn2, err := c.ServePromoted(bestName, d, repl.PrimaryOptions{Epoch: 2}, server.Options{})
	if err != nil {
		return ReplFailoverResult{}, err
	}
	defer pn2.Stop(false)
	for _, rn := range rns {
		if rn != best {
			defer rn.Stop()
		}
	}

	survived := 0
	for key := range acked {
		if _, found, err := pn2.Repl.Get("kv", []byte(key)); err == nil && found {
			survived++
		}
	}
	return ReplFailoverResult{
		AckedWrites:   len(acked),
		Survived:      survived,
		DurablePct:    100 * float64(survived) / float64(len(acked)),
		PromotedEpoch: 2,
	}, nil
}

// Print writes the human-readable report.
func (r *ReplResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Replicated serving sweep (%dB values, %d keys, %v link latency, one lane per node)\n",
		r.ValueBytes, r.Keys, r.NetLatency)
	fmt.Fprintf(w, "%-9s %-8s %-8s %-14s %-14s %s\n",
		"replicas", "readers", "reads", "elapsed(vms)", "reads/sec", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9d %-8d %-8d %-14.3f %-14.0f %.2fx\n",
			row.Replicas, row.Readers, row.Reads,
			float64(row.ElapsedNs)/1e6, row.ReadsPerSec, row.Speedup)
	}
	fmt.Fprintf(w, "forced failover: %d/%d acked writes survived (%.1f%%), promoted epoch %d\n",
		r.Failover.Survived, r.Failover.AckedWrites, r.Failover.DurablePct, r.Failover.PromotedEpoch)
}
