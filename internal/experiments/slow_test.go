package experiments

import (
	"strings"
	"testing"
)

// TestSlowShapes runs the gray-failure read experiment small and checks
// the shapes the full bench run gates on: hedging recovers the degraded
// tail, costs (near) nothing when healthy, and the plain reader pinned
// to the degraded replica eats the full degraded round-trip.
func TestSlowShapes(t *testing.T) {
	res, err := Slow(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 cells, got %d", len(res.Rows))
	}
	var plainH, hedgeH, plainD, hedgeD *SlowReadRow
	for i := range res.Rows {
		r := &res.Rows[i]
		switch {
		case r.Scenario == "healthy" && !r.Hedged:
			plainH = r
		case r.Scenario == "healthy" && r.Hedged:
			hedgeH = r
		case r.Scenario == "degraded" && !r.Hedged:
			plainD = r
		case r.Scenario == "degraded" && r.Hedged:
			hedgeD = r
		}
	}
	if plainH == nil || hedgeH == nil || plainD == nil || hedgeD == nil {
		t.Fatalf("missing cells: %+v", res.Rows)
	}

	// The degraded plain reader pays the degraded link on every read.
	if plainD.P99Ns < int64(res.DegradedLatency) {
		t.Errorf("degraded plain p99 %d below the degraded link latency %d — the pin did not bite",
			plainD.P99Ns, int64(res.DegradedLatency))
	}
	// Hedging recovers the tail (acceptance floor 2×, expect far more).
	if res.P99RecoveryX < 2 {
		t.Errorf("p99 recovery %.1fx below the 2x floor (plain %d vs hedged %d)",
			res.P99RecoveryX, plainD.P99Ns, hedgeD.P99Ns)
	}
	if hedgeD.HedgedReads == 0 {
		t.Error("degraded hedged cell fired no hedges")
	}
	// Healthy hedged mode must cost (almost) nothing (ceiling 5%).
	if res.HealthyAmplPct > 5 {
		t.Errorf("healthy read amplification %.2f%% above the 5%% ceiling", res.HealthyAmplPct)
	}
	if plainH.HedgedReads != 0 {
		t.Errorf("plain reader hedged %d reads", plainH.HedgedReads)
	}

	var b strings.Builder
	res.Print(&b)
	if !strings.Contains(b.String(), "p99 recovery") {
		t.Errorf("Print output missing the headline: %q", b.String())
	}
}
