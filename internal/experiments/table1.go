package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mobibench"
)

// Table1Row is one column of the paper's Table 1: the average number of
// dccmvac instructions per transaction for K inserts per transaction.
type Table1Row struct {
	InsertsPerTxn int
	Flushes       float64
}

// Table1Result holds the full sweep.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1 on the Tuna board: NVWAL with lazy
// synchronization and differential logging, counting cache-line flushes
// per transaction as the inserts-per-transaction grow.
func Table1(txns int) (*Table1Result, error) {
	if txns <= 0 {
		txns = 200
	}
	res := &Table1Result{}
	for _, k := range kSweep {
		s, err := NewNVWALSetup(Tuna, core.VariantUHLSDiff(), db1000)
		if err != nil {
			return nil, err
		}
		w, err := mobibench.Prepare(s.DB, mobibench.Workload{
			Op: mobibench.Insert, Transactions: txns, OpsPerTxn: k, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		before := s.Plat.Metrics.Snapshot()
		if _, err := mobibench.Run(s.DB, s.Plat.Clock, w); err != nil {
			return nil, err
		}
		delta := s.Plat.Metrics.Snapshot().Sub(before)
		res.Rows = append(res.Rows, Table1Row{
			InsertsPerTxn: k,
			Flushes:       float64(delta.Count(metrics.CacheLineFlush)) / float64(txns),
		})
	}
	return res, nil
}

// db1000 is SQLite's default checkpoint threshold.
const db1000 = 1000

// Print prints the table in the paper's layout.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Average number of cache line flushes per transaction")
	fmt.Fprintf(w, "%-24s", "# of insertion per txn")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d", row.InsertsPerTxn)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-24s", "# of cache line flushes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8.1f", row.Flushes)
	}
	fmt.Fprintln(w)
}
