package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/pager"
)

// GroupCommitRow is one group size's measurement.
type GroupCommitRow struct {
	GroupSize  int
	Throughput float64 // logical transactions per second
}

// GroupCommitResult holds the ablation sweep.
type GroupCommitResult struct {
	Latency time.Duration
	Rows    []GroupCommitRow
}

// GroupCommit measures an extension the paper's design enables but does
// not evaluate: amortizing the commit synchronization across several
// transactions. sqliteWriteWalFramesToNVRAM takes a commit flag
// (Algorithm 1), so a group of G transactions can share one
// flush-batch + commit-mark persist — at the cost of group-level
// durability (a crash loses the whole in-flight group, never a prefix
// of it, because only the final frame carries the mark).
//
// The sweep runs single-insert logical transactions against NVWAL
// UH+LS+Diff on Tuna at the slow end of the latency range, where the
// ordering overhead is most visible.
func GroupCommit(txns int) (*GroupCommitResult, error) {
	if txns <= 0 {
		txns = 400
	}
	const latency = 1942 * time.Nanosecond
	res := &GroupCommitResult{Latency: latency}
	for _, g := range []int{1, 2, 4, 8, 16} {
		s, err := NewNVWALSetup(Tuna, core.VariantUHLSDiff(), -1)
		if err != nil {
			return nil, err
		}
		s.Plat.SetNVRAMLatency(latency)
		nv, ok := s.DB.Journal().(*core.NVWAL)
		if !ok {
			return nil, fmt.Errorf("journal is not NVWAL")
		}
		// Work against raw page images: each logical transaction dirties
		// one page with a small change, like the Figure 7 inserts.
		base := make([]byte, 4096)
		pages := make(map[uint32][]byte)
		cpu := Tuna.cpu()
		start := s.Plat.Clock.Now()
		for i := 0; i < txns; i++ {
			pgno := uint32(2 + i%32)
			img, okp := pages[pgno]
			if !okp {
				img = append([]byte(nil), base...)
			}
			img = append([]byte(nil), img...)
			off := 64 + (i/32)*8%3800
			for b := 0; b < 100; b++ {
				img[off+b%128] = byte(i + b)
			}
			pages[pgno] = img
			// Query-processing CPU cost per logical transaction.
			s.Plat.Clock.Advance(cpu.TxnFixed + cpu.PerOp)
			commit := (i+1)%g == 0 || i == txns-1
			if err := nv.WriteFrames([]pager.Frame{{Pgno: pgno, Data: img}}, commit); err != nil {
				return nil, err
			}
		}
		elapsed := s.Plat.Clock.Now() - start
		res.Rows = append(res.Rows, GroupCommitRow{
			GroupSize:  g,
			Throughput: float64(txns) / elapsed.Seconds(),
		})
	}
	return res, nil
}

// Throughput returns the measurement for a group size, or 0.
func (r *GroupCommitResult) Throughput(g int) float64 {
	for _, row := range r.Rows {
		if row.GroupSize == g {
			return row.Throughput
		}
	}
	return 0
}

// Print renders the sweep.
func (r *GroupCommitResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Group-commit ablation (NVWAL UH+LS+Diff, Tuna @ %v NVRAM latency)\n", r.Latency)
	fmt.Fprintf(w, "%-12s %12s\n", "group size", "txn/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12d %12.0f\n", row.GroupSize, row.Throughput)
	}
	fmt.Fprintln(w, "durability coarsens to group granularity; atomicity is preserved (one commit mark per group)")
}
