package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/shard"
)

// ShardRow is one (shard count, writer count) cell of the scale-out
// sweep. Shards == 0 is the direct single-engine baseline: the same
// workload against one db.DB with no shard layer at all, which is what
// the shards == 1 row must stay within 10% of — the router and the
// coordinator record may not tax the single-shard path. Latencies are
// virtual-clock nanoseconds measured on the committing shard's lane.
type ShardRow struct {
	Shards      int     `json:"shards"` // 0 = unsharded baseline
	Writers     int     `json:"writers"`
	Txns        int     `json:"txns"`
	Committed   int     `json:"committed"`
	Busy        int     `json:"busy"`
	P50CommitNs int64   `json:"p50_commit_ns"`
	P99CommitNs int64   `json:"p99_commit_ns"`
	Throughput  float64 `json:"txn_per_sec"` // virtual-time transactions/sec
}

// ShardsResult holds the shard-count × writer sweep.
type ShardsResult struct {
	ValueBytes int           `json:"value_bytes"`
	Latency    time.Duration `json:"nvram_latency_ns"`
	Rows       []ShardRow    `json:"rows"`
}

// Shards measures single-key scale-out across engine shards. Each
// writer is bound to a home shard and commits single-key transactions
// against keys pre-routed there, so every transaction runs shard-local:
// no 2PC, no cross-shard coordination. The laned platform gives each
// shard its own virtual core — the parent clock advances by the max
// over lanes — so throughput measures genuine parallelism: N shards
// commit N transactions in the virtual time one shard commits one.
func Shards(txns int) (*ShardsResult, error) {
	if txns <= 0 {
		txns = 4000
	}
	res := &ShardsResult{
		ValueBytes: 256,
		Latency:    500 * time.Nanosecond,
	}
	for _, writers := range []int{1, 8, 32} {
		row, err := runShardBaseline(writers, txns, res.ValueBytes, res.Latency)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, writers := range []int{1, 8, 32} {
			row, err := runSharded(shards, writers, txns, res.ValueBytes, res.Latency)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Row returns the cell for (shards, writers), nil if absent.
func (r *ShardsResult) Row(shards, writers int) *ShardRow {
	for i := range r.Rows {
		if r.Rows[i].Shards == shards && r.Rows[i].Writers == writers {
			return &r.Rows[i]
		}
	}
	return nil
}

func shardBenchConfig(latency time.Duration) platform.Config {
	return platform.Config{
		NVRAM: nvram.Config{
			Size:              64 << 20,
			CacheLineSize:     64,
			NVRAMWriteLatency: latency,
		},
	}
}

func shardBenchOpts() db.Options {
	return db.Options{
		Journal:         db.JournalNVWAL,
		NVWAL:           core.VariantUHLSDiff(),
		Concurrent:      true,
		GroupCommit:     1,
		CheckpointLimit: -1,
	}
}

// benchValue fills a value whose every byte varies per iteration, so
// differential logging produces real log volume.
func benchValue(val []byte, w, i int) {
	for j := range val {
		val[j] = byte(i + j + w)
	}
}

// runShardBaseline is the Shards == 0 row: the identical workload on a
// bare engine, no shard layer.
func runShardBaseline(writers, txns, valueBytes int, latency time.Duration) (ShardRow, error) {
	plat, err := platform.New(shardBenchConfig(latency))
	if err != nil {
		return ShardRow{}, err
	}
	d, err := db.Open(plat, "bench.db", shardBenchOpts())
	if err != nil {
		return ShardRow{}, err
	}
	if err := d.CreateTable("bench"); err != nil {
		return ShardRow{}, err
	}
	keys := make([][][]byte, writers)
	for w := 0; w < writers; w++ {
		keys[w] = make([][]byte, 8)
		for k := range keys[w] {
			keys[w][k] = []byte(fmt.Sprintf("w%d-k%d", w, k))
		}
	}
	run := func(w, i int, lat *int64) error {
		key := keys[w][i%8]
		val := make([]byte, valueBytes)
		benchValue(val, w, i)
		tx, err := d.Begin()
		if err != nil {
			return err
		}
		if err := tx.Insert("bench", key, val); err != nil {
			tx.Rollback()
			return err
		}
		t0 := plat.Clock.Now()
		err = tx.Commit()
		*lat = int64(plat.Clock.Now() - t0)
		return err
	}
	start := plat.Clock.Now()
	committed, busy, lats, err := driveShardWriters(writers, txns/writers, run)
	if err != nil {
		return ShardRow{}, fmt.Errorf("baseline writers=%d: %w", writers, err)
	}
	return shardRowFrom(0, writers, txns/writers*writers, committed, busy, lats,
		plat.Clock.Now()-start), nil
}

// runSharded is one laned-platform cell: writers bound to home shards
// round-robin, keys pre-routed, commits timed on the home lane.
func runSharded(shards, writers, txns, valueBytes int, latency time.Duration) (ShardRow, error) {
	plat, err := shard.NewLaned(shardBenchConfig(latency), shards)
	if err != nil {
		return ShardRow{}, err
	}
	s, err := shard.Open(plat, "bench.db", shard.Options{DB: shardBenchOpts()})
	if err != nil {
		return ShardRow{}, err
	}
	if err := s.CreateTable("bench"); err != nil {
		return ShardRow{}, err
	}
	// Pre-route 8 keys per writer to its home shard; the suffix search
	// stands in for a client hashing its working set.
	keys := make([][][]byte, writers)
	for w := 0; w < writers; w++ {
		home := w % shards
		keys[w] = make([][]byte, 8)
		for k := range keys[w] {
			for n := 0; ; n++ {
				cand := []byte(fmt.Sprintf("w%d-k%d-%d", w, k, n))
				if s.ShardOf(cand) == home {
					keys[w][k] = cand
					break
				}
			}
		}
	}
	run := func(w, i int, lat *int64) error {
		key := keys[w][i%8]
		val := make([]byte, valueBytes)
		benchValue(val, w, i)
		home := s.ShardOf(key) // the routed, shard-local path
		d := s.Shard(home)
		lane := plat.View(home).Clock
		tx, err := d.Begin()
		if err != nil {
			return err
		}
		if err := tx.Insert("bench", key, val); err != nil {
			tx.Rollback()
			return err
		}
		t0 := lane.Now()
		err = tx.Commit()
		*lat = int64(lane.Now() - t0)
		return err
	}
	start := plat.Clock.Now()
	committed, busy, lats, err := driveShardWriters(writers, txns/writers, run)
	if err != nil {
		return ShardRow{}, fmt.Errorf("shards=%d writers=%d: %w", shards, writers, err)
	}
	return shardRowFrom(shards, writers, txns/writers*writers, committed, busy, lats,
		plat.Clock.Now()-start), nil
}

// driveShardWriters runs the per-writer transaction loops and collects
// outcomes. ErrBusy is a clean rollback, anything else is fatal.
func driveShardWriters(writers, perWriter int, run func(w, i int, lat *int64) error) (int, int, []int64, error) {
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []int64
		committed int
		busy      int
		hardErr   error
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var lat int64
				err := run(w, i, &lat)
				mu.Lock()
				switch {
				case err == nil:
					committed++
					latencies = append(latencies, lat)
				case errors.Is(err, db.ErrBusy):
					busy++
				default:
					if hardErr == nil {
						hardErr = err
					}
				}
				mu.Unlock()
				if err != nil && !errors.Is(err, db.ErrBusy) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return committed, busy, latencies, hardErr
}

func shardRowFrom(shards, writers, txns, committed, busy int, latencies []int64, elapsed time.Duration) ShardRow {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return ShardRow{
		Shards:      shards,
		Writers:     writers,
		Txns:        txns,
		Committed:   committed,
		Busy:        busy,
		P50CommitNs: pct(latencies, 50),
		P99CommitNs: pct(latencies, 99),
		Throughput:  float64(committed) / elapsed.Seconds(),
	}
}

// Print renders the sweep with per-writer-count scaling factors.
func (r *ShardsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Shard scale-out sweep (UH+LS+Diff, %dB single-key txns, %v NVRAM, one lane per shard; shards=0 is the bare-engine baseline)\n",
		r.ValueBytes, r.Latency)
	fmt.Fprintf(w, "%-7s %-8s %-6s %-10s %-5s %12s %12s %10s %8s\n",
		"shards", "writers", "txns", "committed", "busy", "p50(ns)", "p99(ns)", "txn/sec", "scale")
	for _, row := range r.Rows {
		scale := "-"
		if row.Shards >= 1 {
			if one := r.Row(1, row.Writers); one != nil && one.Throughput > 0 {
				scale = fmt.Sprintf("%.2fx", row.Throughput/one.Throughput)
			}
		}
		fmt.Fprintf(w, "%-7d %-8d %-6d %-10d %-5d %12d %12d %10.0f %8s\n",
			row.Shards, row.Writers, row.Txns, row.Committed, row.Busy,
			row.P50CommitNs, row.P99CommitNs, row.Throughput, scale)
	}
	fmt.Fprintln(w, "single-key transactions never cross shards; throughput scales with the shard count while per-commit latency holds")
}
