package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/metrics"
)

// CheckpointRow is one (mode, writer count) cell of the checkpoint
// stall sweep. Commit latencies are wall-clock (they capture the real
// blocking a caller experiences, including inline checkpoint I/O and
// lock waits); throughput stays on the calibrated virtual clock like
// every other experiment.
type CheckpointRow struct {
	Mode            string  `json:"mode"` // "blocking" or "background"
	Writers         int     `json:"writers"`
	Txns            int     `json:"txns"`
	P50CommitNs     int64   `json:"p50_commit_ns"`
	P99CommitNs     int64   `json:"p99_commit_ns"`
	MaxCommitNs     int64   `json:"max_commit_ns"`
	Checkpoints     int64   `json:"checkpoints"`
	CheckpointPages int64   `json:"checkpoint_pages"`
	CheckpointNs    int64   `json:"checkpoint_ns_total"`
	CommitStallNs   int64   `json:"commit_stall_ns"`
	Throughput      float64 `json:"txns_per_vsec"`
}

// CheckpointResult holds the blocking-versus-background sweep.
type CheckpointResult struct {
	LatencyNs int64           `json:"nvram_latency_ns"`
	Limit     int             `json:"checkpoint_limit"`
	Rows      []CheckpointRow `json:"rows"`
}

// CheckpointStall measures what auto-checkpointing costs the commit
// path. The blocking baseline runs the checkpoint inline from the
// committing goroutine (the pre-incremental behaviour: every
// CheckpointLimit-th commit absorbs the whole page writeback + fsync,
// which is exactly SQLite's checkpoint hiccup); the background mode
// hands the same work to the checkpointer goroutine, whose phase B runs
// outside the writer lock. The headline number is the p99 commit
// latency collapsing toward the p50 when the stall moves off-path.
//
// The board is Tuna at the slow end of the NVRAM range with a small
// checkpoint limit, so rounds are frequent and the stall is visible.
func CheckpointStall(txns int) (*CheckpointResult, error) {
	if txns <= 0 {
		txns = 400
	}
	const (
		latency = 1942 * time.Nanosecond
		limit   = 16
	)
	res := &CheckpointResult{LatencyNs: latency.Nanoseconds(), Limit: limit}
	for _, background := range []bool{false, true} {
		for _, writers := range []int{1, 4} {
			row, err := runCheckpointStall(background, writers, txns, latency, limit)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runCheckpointStall(background bool, writers, txns int, latency time.Duration, limit int) (CheckpointRow, error) {
	plat, err := Tuna.newPlatform()
	if err != nil {
		return CheckpointRow{}, err
	}
	plat.SetNVRAMLatency(latency)
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal:              db.JournalNVWAL,
		NVWAL:                core.VariantUHLSDiff(),
		CPU:                  Tuna.cpu(),
		CheckpointLimit:      limit,
		Concurrent:           true,
		BackgroundCheckpoint: background,
	})
	if err != nil {
		return CheckpointRow{}, err
	}
	if err := d.CreateTable("bench"); err != nil {
		return CheckpointRow{}, err
	}

	perWriter := txns / writers
	total := perWriter * writers
	before := plat.Metrics.Snapshot()
	start := plat.Clock.Now()

	lats := make([][]time.Duration, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for s := 0; s < writers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			val := make([]byte, 100)
			mine := make([]time.Duration, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				tx, err := d.Begin()
				if err != nil {
					errs <- err
					return
				}
				key := []byte(fmt.Sprintf("w%02d-%06d", s, i))
				if err := tx.Insert("bench", key, val); err != nil {
					errs <- err
					return
				}
				t0 := time.Now()
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				mine = append(mine, time.Since(t0))
			}
			lats[s] = mine
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return CheckpointRow{}, err
	}
	elapsed := plat.Clock.Now() - start

	// Let the background checkpointer finish in-flight rounds so both
	// modes report comparable checkpoint totals, then stop it.
	if background {
		deadline := time.Now().Add(5 * time.Second)
		for d.Journal().FramesSinceCheckpoint() >= limit && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	delta := plat.Metrics.Snapshot().Sub(before)
	if err := d.Close(); err != nil {
		return CheckpointRow{}, err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i].Nanoseconds()
	}
	mode := "blocking"
	if background {
		mode = "background"
	}
	return CheckpointRow{
		Mode:            mode,
		Writers:         writers,
		Txns:            total,
		P50CommitNs:     pct(0.50),
		P99CommitNs:     pct(0.99),
		MaxCommitNs:     pct(1.0),
		Checkpoints:     delta.Count(metrics.Checkpoints),
		CheckpointPages: delta.Count(metrics.CheckpointPages),
		CheckpointNs:    delta.Count(metrics.CheckpointNanos),
		CommitStallNs:   delta.Count(metrics.CommitStallNanos),
		Throughput:      float64(total) / elapsed.Seconds(),
	}, nil
}

// P99 returns the p99 commit latency for (mode, writers), or 0.
func (r *CheckpointResult) P99(mode string, writers int) int64 {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Writers == writers {
			return row.P99CommitNs
		}
	}
	return 0
}

// Print renders the sweep.
func (r *CheckpointResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Checkpoint stall (NVWAL UH+LS+Diff, Tuna @ %v NVRAM latency, limit %d frames)\n",
		time.Duration(r.LatencyNs), r.Limit)
	fmt.Fprintf(w, "%-11s %-8s %-6s %10s %10s %10s %6s %8s %12s\n",
		"mode", "writers", "txns", "p50(µs)", "p99(µs)", "max(µs)", "ckpts", "pages", "stall(µs)")
	for _, row := range r.Rows {
		us := func(ns int64) float64 { return float64(ns) / 1000 }
		fmt.Fprintf(w, "%-11s %-8d %-6d %10.1f %10.1f %10.1f %6d %8d %12.1f\n",
			row.Mode, row.Writers, row.Txns,
			us(row.P50CommitNs), us(row.P99CommitNs), us(row.MaxCommitNs),
			row.Checkpoints, row.CheckpointPages, us(row.CommitStallNs))
	}
	fmt.Fprintln(w, "latencies are wall-clock per Commit call; background mode moves the")
	fmt.Fprintln(w, "writeback+fsync off the commit path, so p99 falls toward p50")
}
