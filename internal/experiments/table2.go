package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mobibench"
)

// Table2Row is one (operation, logging scheme) row: average bytes
// written into the NVRAM log per transaction, per ops-per-txn column.
type Table2Row struct {
	Op           mobibench.Op
	Differential bool
	Bytes        []float64 // indexed like kSweep
}

// Table2Result holds all six rows plus the §3.3 frames-per-block
// statistic measured alongside.
type Table2Result struct {
	OpsPerTxn      []int
	Rows           []Table2Row
	FramesPerBlock float64 // with differential logging and 8 KB blocks
}

// Table2 reproduces Table 2: NVRAM I/O volume of full-page logging
// versus byte-granularity differential logging for insert, update and
// delete transactions.
func Table2(txns int) (*Table2Result, error) {
	if txns <= 0 {
		txns = 200
	}
	res := &Table2Result{OpsPerTxn: kSweep}
	var diffFrames, diffBlocks int64
	for _, op := range []mobibench.Op{mobibench.Insert, mobibench.Delete, mobibench.Update} {
		for _, differential := range []bool{false, true} {
			row := Table2Row{Op: op, Differential: differential}
			for _, k := range kSweep {
				cfg := core.VariantUHLS()
				cfg.Differential = differential
				s, err := NewNVWALSetup(Tuna, cfg, db1000)
				if err != nil {
					return nil, err
				}
				w, err := mobibench.Prepare(s.DB, mobibench.Workload{
					Op: op, Transactions: txns, OpsPerTxn: k, Seed: 2,
				})
				if err != nil {
					return nil, err
				}
				before := s.Plat.Metrics.Snapshot()
				if _, err := mobibench.Run(s.DB, s.Plat.Clock, w); err != nil {
					return nil, err
				}
				delta := s.Plat.Metrics.Snapshot().Sub(before)
				row.Bytes = append(row.Bytes,
					float64(delta.Count(core.MetricLoggedBytes))/float64(txns))
				if differential {
					diffFrames += delta.Count(metrics.WALFrames)
					diffBlocks += delta.Count(core.MetricBlocks)
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if diffBlocks > 0 {
		res.FramesPerBlock = float64(diffFrames) / float64(diffBlocks)
	}
	return res, nil
}

// Reduction reports the differential scheme's I/O saving for an
// operation at column i, as a fraction (the paper reports 73–84% for
// insert, 29–85% for update, 49–69% for delete).
func (r *Table2Result) Reduction(op mobibench.Op, i int) float64 {
	var full, diff float64
	for _, row := range r.Rows {
		if row.Op != op {
			continue
		}
		if row.Differential {
			diff = row.Bytes[i]
		} else {
			full = row.Bytes[i]
		}
	}
	if full == 0 {
		return 0
	}
	return 1 - diff/full
}

// Print prints the table in the paper's layout.
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Average number of bytes written to NVRAM per transaction")
	fmt.Fprintf(w, "%-16s", "# of op per txn")
	for _, k := range r.OpsPerTxn {
		fmt.Fprintf(w, "%10d", k)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		name := row.Op.String()
		if row.Differential {
			name += " (Diff)"
		}
		fmt.Fprintf(w, "%-16s", name)
		for _, b := range row.Bytes {
			fmt.Fprintf(w, "%10.0f", b)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "reduction: insert %.0f–%.0f%%, update %.0f–%.0f%%, delete %.0f–%.0f%%\n",
		r.reductionRange(mobibench.Insert, false)*100, r.reductionRange(mobibench.Insert, true)*100,
		r.reductionRange(mobibench.Update, false)*100, r.reductionRange(mobibench.Update, true)*100,
		r.reductionRange(mobibench.Delete, false)*100, r.reductionRange(mobibench.Delete, true)*100)
	fmt.Fprintf(w, "frames per 8KB NVRAM block (differential): %.1f (paper: 4.9)\n", r.FramesPerBlock)
}

// reductionRange returns the min (max=false) or max (max=true)
// reduction across the sweep for op.
func (r *Table2Result) reductionRange(op mobibench.Op, max bool) float64 {
	best := r.Reduction(op, 0)
	for i := range r.OpsPerTxn {
		v := r.Reduction(op, i)
		if (max && v > best) || (!max && v < best) {
			best = v
		}
	}
	return best
}
