package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// MVCCRow is one (mode, writer count) cell of the multi-writer MVCC
// sweep over an OVERLAPPING keyspace: every writer updates the same
// shared key set, so the legacy mode serializes on the writer slot
// while MVCC sessions build their frame chains in parallel and pay only
// for real page conflicts at commit. Latencies are virtual-clock
// nanoseconds on the platform clock (the parent of the per-writer
// lanes, so it reads the max over parallel writers).
type MVCCRow struct {
	Mode        string  `json:"mode"` // "legacy" (slot-serialized Begin) or "mvcc" (sessions)
	Writers     int     `json:"writers"`
	Txns        int     `json:"txns"`
	Committed   int     `json:"committed"`
	Conflicts   int64   `json:"conflicts"`    // commit-time validation losses (retried)
	ConflictPct float64 `json:"conflict_pct"` // conflicts / commit attempts
	BarriersTxn float64 `json:"barriers_txn"` // persist barriers per committed txn
	P50CommitNs int64   `json:"p50_commit_ns"`
	P99CommitNs int64   `json:"p99_commit_ns"`
	Throughput  float64 `json:"txn_per_sec"` // virtual-time transactions/sec
}

// MVCCResult holds the mode × writer-count sweep.
type MVCCResult struct {
	ValueBytes int           `json:"value_bytes"`
	SharedKeys int           `json:"shared_keys"`
	Latency    time.Duration `json:"nvram_latency_ns"`
	Rows       []MVCCRow     `json:"rows"`
}

// MVCC measures multi-writer commit throughput on one shared keyspace
// at 8–64 writers, legacy slot transactions versus MVCC sessions. The
// keyspace is pre-populated so the tree shape is stable and conflicts
// come from data-page contention, not structural splits. Each MVCC
// writer charges its CPU to its own simclock lane (independent cores);
// the journal flush itself still charges the shared platform clock, so
// what the MVCC rows demonstrate is exactly the tentpole claim: with
// per-writer streams the serialized portion shrinks to one merged
// Algorithm 1 flush per group, and throughput grows with writers
// instead of staying flat.
func MVCC(txns int) (*MVCCResult, error) {
	if txns <= 0 {
		txns = 4000
	}
	res := &MVCCResult{
		ValueBytes: 128,
		SharedKeys: 512,
		Latency:    500 * time.Nanosecond,
	}
	for _, writers := range []int{8, 16, 32, 64} {
		row, err := runMVCCCell("legacy", writers, txns, res)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, writers := range []int{8, 16, 32, 64} {
		row, err := runMVCCCell("mvcc", writers, txns, res)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the cell for (mode, writers), nil if absent.
func (r *MVCCResult) Row(mode string, writers int) *MVCCRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode && r.Rows[i].Writers == writers {
			return &r.Rows[i]
		}
	}
	return nil
}

// mvccBenchRetries bounds conflict retries per transaction; the bench
// counts every loss and retries with a fresh snapshot, which is how a
// real client uses ErrConflict.
const mvccBenchRetries = 128

func runMVCCCell(mode string, writers, txns int, res *MVCCResult) (MVCCRow, error) {
	plat, err := platform.New(shardBenchConfig(res.Latency))
	if err != nil {
		return MVCCRow{}, err
	}
	opts := shardBenchOpts()
	opts.GroupCommit = writers
	// The paper's point (§5.1) is that query-processing CPU dominates
	// transactions. Charging the calibrated profile is what the sweep
	// measures: legacy writers burn that CPU serialized on the writer
	// slot (one shared clock), MVCC sessions burn it on per-writer lanes
	// (independent cores), so only the merged flush stays serial.
	opts.CPU = db.CPUTuna
	d, err := db.Open(plat, "bench.db", opts)
	if err != nil {
		return MVCCRow{}, err
	}
	if err := d.CreateTable("bench"); err != nil {
		return MVCCRow{}, err
	}
	keys := make([][]byte, res.SharedKeys)
	for k := range keys {
		keys[k] = []byte(fmt.Sprintf("k%04d", k))
	}
	// Pre-populate the whole shared keyspace so the sweep measures
	// data-page contention on a stable tree.
	for lo := 0; lo < len(keys); lo += 64 {
		tx, err := d.Begin()
		if err != nil {
			return MVCCRow{}, err
		}
		val := make([]byte, res.ValueBytes)
		for k := lo; k < lo+64 && k < len(keys); k++ {
			benchValue(val, k, 0)
			if err := tx.Insert("bench", keys[k], val); err != nil {
				tx.Rollback()
				return MVCCRow{}, err
			}
		}
		if err := tx.Commit(); err != nil {
			return MVCCRow{}, err
		}
	}

	perWriter := txns / writers
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []int64
		committed int
		hardErr   error
	)
	before := plat.Metrics.Snapshot()
	start := plat.Clock.Now()
	// All lanes are created at the sweep origin, BEFORE any writer runs:
	// a lane created lazily inside its goroutine would start at whatever
	// time the other writers had already pushed the parent clock to, and
	// the sweep would serialize in virtual time exactly when the host
	// scheduler staggers goroutine start-up.
	lanes := make([]*simclock.Clock, writers)
	for w := range lanes {
		lanes[w] = plat.Clock.NewLane()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
			lane := lanes[w]
			val := make([]byte, res.ValueBytes)
			for i := 0; i < perWriter; i++ {
				key := keys[rng.Intn(len(keys))]
				benchValue(val, w, i+1)
				var cerr error
				var lat int64
				if mode == "legacy" {
					cerr, lat = mvccLegacyTxn(d, plat, key, val)
				} else {
					cerr, lat = mvccSessionTxn(d, plat, lane, key, val)
				}
				mu.Lock()
				switch {
				case cerr == nil:
					committed++
					latencies = append(latencies, lat)
				case errors.Is(cerr, db.ErrBusy):
					// clean backpressure rollback; drop the attempt
				default:
					if hardErr == nil {
						hardErr = cerr
					}
				}
				mu.Unlock()
				if cerr != nil && !errors.Is(cerr, db.ErrBusy) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if hardErr != nil {
		return MVCCRow{}, fmt.Errorf("%s writers=%d: %w", mode, writers, hardErr)
	}
	elapsed := plat.Clock.Now() - start
	delta := plat.Metrics.Snapshot().Sub(before)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	conflicts := delta.Count(metrics.MVCCConflicts)
	attempts := int64(committed) + conflicts
	row := MVCCRow{
		Mode:        mode,
		Writers:     writers,
		Txns:        perWriter * writers,
		Committed:   committed,
		Conflicts:   conflicts,
		P50CommitNs: pct(latencies, 50),
		P99CommitNs: pct(latencies, 99),
		Throughput:  float64(committed) / elapsed.Seconds(),
	}
	if attempts > 0 {
		row.ConflictPct = 100 * float64(conflicts) / float64(attempts)
	}
	if committed > 0 {
		row.BarriersTxn = float64(delta.Count(metrics.PersistBarrier)) / float64(committed)
	}
	return row, nil
}

// mvccLegacyTxn is one slot transaction: Begin serializes on the writer
// slot, so concurrent legacy writers queue no matter how many cores
// they have.
func mvccLegacyTxn(d *db.DB, plat *platform.Platform, key, val []byte) (error, int64) {
	tx, err := d.Begin()
	if err != nil {
		return err, 0
	}
	if err := tx.Insert("bench", key, val); err != nil {
		tx.Rollback()
		return err, 0
	}
	t0 := plat.Clock.Now()
	err = tx.Commit()
	return err, int64(plat.Clock.Now() - t0)
}

// mvccSessionTxn is one MVCC session transaction on the writer's own
// CPU lane, retrying first-committer-wins losses with a fresh snapshot.
func mvccSessionTxn(d *db.DB, plat *platform.Platform, lane *simclock.Clock, key, val []byte) (error, int64) {
	for try := 0; try <= mvccBenchRetries; try++ {
		tx, err := d.BeginConcurrent()
		if err != nil {
			return err, 0
		}
		tx.SetClock(lane)
		if err := tx.Insert("bench", key, val); err != nil {
			tx.Rollback()
			return err, 0
		}
		t0 := plat.Clock.Now()
		err = tx.Commit()
		lat := int64(plat.Clock.Now() - t0)
		if err == nil || !errors.Is(err, db.ErrConflict) {
			return err, lat
		}
	}
	return fmt.Errorf("mvcc txn still conflicting after %d retries", mvccBenchRetries), 0
}

// Print renders the sweep with per-mode scaling factors against the
// 8-writer row.
func (r *MVCCResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Multi-writer MVCC sweep (UH+LS+Diff, %dB txns over %d SHARED keys, %v NVRAM; legacy = slot-serialized Begin, mvcc = per-writer stream sessions on independent CPU lanes)\n",
		r.ValueBytes, r.SharedKeys, r.Latency)
	fmt.Fprintf(w, "%-7s %-8s %-6s %-10s %-10s %-9s %-9s %12s %12s %10s %8s\n",
		"mode", "writers", "txns", "committed", "conflicts", "confl%", "barr/txn", "p50(ns)", "p99(ns)", "txn/sec", "scale")
	for _, row := range r.Rows {
		scale := "-"
		if base := r.Row(row.Mode, 8); base != nil && base.Throughput > 0 {
			scale = fmt.Sprintf("%.2fx", row.Throughput/base.Throughput)
		}
		fmt.Fprintf(w, "%-7s %-8d %-6d %-10d %-10d %-9.1f %-9.2f %12d %12d %10.0f %8s\n",
			row.Mode, row.Writers, row.Txns, row.Committed, row.Conflicts,
			row.ConflictPct, row.BarriersTxn, row.P50CommitNs, row.P99CommitNs,
			row.Throughput, scale)
	}
	fmt.Fprintln(w, "legacy throughput stays flat as writers grow (one slot, one flush per txn); mvcc grows with writers as streams merge under fewer, larger group flushes")
}
