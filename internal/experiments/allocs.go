package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pager"
)

// CommitAllocsRow is one commit-path shape of the allocation audit:
// host-side allocations per operation (the quantity DESIGN.md §15's
// zero-copy work drives down) next to the wall-clock latency
// percentiles of the same loop. Virtual-time metrics are untouched by
// this experiment — it audits the simulator's own cost, not the
// paper's.
type CommitAllocsRow struct {
	Path        string  `json:"path"`
	Ops         int     `json:"ops"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	P50Ns       int64   `json:"p50_commit_ns"`
	P99Ns       int64   `json:"p99_commit_ns"`
}

// CommitAllocsResult holds the audit across commit-path shapes.
type CommitAllocsResult struct {
	Rows []CommitAllocsRow `json:"rows"`
}

// Row returns the named row, or nil.
func (r *CommitAllocsResult) Row(path string) *CommitAllocsRow {
	for i := range r.Rows {
		if r.Rows[i].Path == path {
			return &r.Rows[i]
		}
	}
	return nil
}

// CommitAllocs measures steady-state heap allocations per operation on
// the three commit-path shapes the zero-copy work targets: a solo
// end-to-end transaction (B-tree insert through NVWAL), a group commit
// driven straight at the journal, and the PageVersionInto read path.
// Measurement is runtime.MemStats deltas (Mallocs and TotalAlloc are
// monotonic, so a concurrent GC cannot skew them) over a single
// measuring goroutine.
func CommitAllocs(txns int) (*CommitAllocsResult, error) {
	if txns <= 0 {
		txns = 300
	}
	res := &CommitAllocsResult{}

	solo, err := soloCommitAllocs(txns)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, solo)

	group, pvi, err := journalAllocs(txns)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, group, pvi)
	return res, nil
}

// measureAllocs runs op n times on the calling goroutine and returns
// the allocation and latency profile. A warmup round runs first so
// one-time pool/scratch growth is not billed to the steady state under
// audit.
func measureAllocs(path string, n int, op func(i int) error) (CommitAllocsRow, error) {
	const warmup = 16
	for i := 0; i < warmup; i++ {
		if err := op(i); err != nil {
			return CommitAllocsRow{}, err
		}
	}
	lats := make([]time.Duration, 0, n)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := op(warmup + i); err != nil {
			return CommitAllocsRow{}, err
		}
		lats = append(lats, time.Since(t0))
	}
	runtime.ReadMemStats(&after)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 {
		return lats[int(p*float64(len(lats)-1))].Nanoseconds()
	}
	return CommitAllocsRow{
		Path:        path,
		Ops:         n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		P50Ns:       pct(0.50),
		P99Ns:       pct(0.99),
	}, nil
}

// soloCommitAllocs drives one-insert transactions end to end through
// the database layer, the BenchmarkCommitPath shape.
func soloCommitAllocs(txns int) (CommitAllocsRow, error) {
	// A checkpoint limit far above the transaction count keeps
	// checkpoint I/O out of the audited loop.
	s, err := NewNVWALSetup(Tuna, core.VariantUHLSDiff(), 1<<20)
	if err != nil {
		return CommitAllocsRow{}, err
	}
	if err := s.DB.CreateTable("bench"); err != nil {
		return CommitAllocsRow{}, err
	}
	val := make([]byte, 100)
	key := make([]byte, 8)
	row, err := measureAllocs("solo-commit", txns, func(i int) error {
		tx, err := s.DB.Begin()
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint64(key, uint64(i))
		if err := tx.Insert("bench", key, val); err != nil {
			return err
		}
		return tx.Commit()
	})
	if err != nil {
		return CommitAllocsRow{}, err
	}
	return row, s.DB.Close()
}

// journalAllocs drives the NVWAL journal directly: a 4-member group
// commit per operation, then the PageVersionInto read path over the
// committed pages.
func journalAllocs(txns int) (CommitAllocsRow, CommitAllocsRow, error) {
	var zero CommitAllocsRow
	s, err := NewNVWALSetup(Tuna, core.VariantUHLSDiff(), 1<<20)
	if err != nil {
		return zero, zero, err
	}
	gj, ok := s.DB.Journal().(pager.GroupJournal)
	if !ok {
		return zero, zero, fmt.Errorf("experiments: NVWAL journal lost its GroupJournal capability")
	}
	const members = 4
	const ps = 4096 // db.Open's default page size
	pages := make([][]byte, members)
	groups := make([][]pager.Frame, members)
	frames := make([][1]pager.Frame, members)
	for g := range pages {
		pages[g] = make([]byte, ps)
		frames[g][0] = pager.Frame{Pgno: uint32(100 + g), Data: pages[g]}
		groups[g] = frames[g][:]
	}
	group, err := measureAllocs("group-commit", txns, func(i int) error {
		for g := range pages {
			// A small dirty region per member keeps the differential
			// logger on its steady-state diff path.
			binary.LittleEndian.PutUint64(pages[g][(i%64)*16:], uint64(i+1))
		}
		return gj.CommitGroup(groups)
	})
	if err != nil {
		return zero, zero, err
	}

	pvi, ok := s.DB.Journal().(pager.PageVersionInto)
	if !ok {
		return zero, zero, fmt.Errorf("experiments: NVWAL journal lost its PageVersionInto capability")
	}
	buf := make([]byte, ps)
	read, err := measureAllocs("page-version-into", txns, func(i int) error {
		if !pvi.PageVersionInto(uint32(100+i%members), buf) {
			return fmt.Errorf("experiments: committed page %d has no version", 100+i%members)
		}
		return nil
	})
	if err != nil {
		return zero, zero, err
	}
	return group, read, s.DB.Close()
}

// Print renders the audit.
func (r *CommitAllocsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Commit-path allocation audit (host-side allocs; NVWAL UH+LS+Diff on Tuna)")
	fmt.Fprintf(w, "%-18s %6s %12s %12s %10s %10s\n",
		"path", "ops", "allocs/op", "bytes/op", "p50(µs)", "p99(µs)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %6d %12.2f %12.1f %10.1f %10.1f\n",
			row.Path, row.Ops, row.AllocsPerOp, row.BytesPerOp,
			float64(row.P50Ns)/1000, float64(row.P99Ns)/1000)
	}
}
