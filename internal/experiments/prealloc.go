package experiments

import (
	"fmt"
	"io"

	"repro/internal/db"
	"repro/internal/ext4"
	"repro/internal/mobibench"
)

// PreallocRow is one pre-allocation policy's measurement.
type PreallocRow struct {
	InitialPages int // 0 = stock WAL (no pre-allocation)
	Throughput   float64
	JournalKB    float64
	WastedPages  int // allocated but unused log pages at the end
}

// PreallocResult holds the WALDIO policy sweep.
type PreallocResult struct {
	Rows []PreallocRow
}

// Prealloc sweeps the optimized WAL's initial pre-allocation size (the
// §5.4 design choice: "the size of the pre-allocated pages can be fixed
// ... or the size can be doubled every time the pre-allocated pages
// fill up"; the paper picks 8-then-double). It quantifies the trade-off
// the paper mentions: larger pre-allocations journal less but may waste
// disk pages.
func Prealloc(txns int) (*PreallocResult, error) {
	if txns <= 0 {
		txns = 200
	}
	res := &PreallocResult{}
	for _, pages := range []int{0, 1, 2, 8, 32} {
		var s *Setup
		var err error
		if pages == 0 {
			s, err = NewWALSetup(Nexus5, false, db1000)
		} else {
			plat, perr := Nexus5.newPlatform()
			if perr != nil {
				return nil, perr
			}
			d, derr := db.Open(plat, "bench.db", db.Options{
				Journal:         db.JournalOptimizedWAL,
				WALPrealloc:     pages,
				CPU:             Nexus5.cpu(),
				CheckpointLimit: db1000,
			})
			if derr != nil {
				return nil, derr
			}
			s, err = &Setup{Plat: plat, DB: d}, nil
		}
		if err != nil {
			return nil, err
		}
		s.Plat.Trace.Reset()
		r, err := s.runWorkload(mobibench.Workload{
			Op: mobibench.Insert, Transactions: txns, OpsPerTxn: 1, Seed: 13,
		})
		if err != nil {
			return nil, err
		}
		wasted := 0
		if f, err := s.Plat.FS.Open("bench.db-wal"); err == nil {
			used := int((f.Size() + 4095) / 4096)
			if alloc := f.AllocatedPages(); alloc > used {
				wasted = alloc - used
			}
			// In optimized mode Preallocate extends the size too, so
			// approximate waste from the frame count instead.
			needed := 1 + s.DB.Journal().FramesSinceCheckpoint()
			if alloc := f.AllocatedPages(); alloc > needed {
				wasted = alloc - needed
			}
		}
		res.Rows = append(res.Rows, PreallocRow{
			InitialPages: pages,
			Throughput:   r.Throughput(),
			JournalKB:    float64(s.Plat.Trace.BytesByTag()[ext4.TagJournal]) / 1024,
			WastedPages:  wasted,
		})
	}
	return res, nil
}

// Print renders the sweep.
func (r *PreallocResult) Print(w io.Writer) {
	fmt.Fprintln(w, "WALDIO pre-allocation policy sweep (optimized WAL, doubling growth)")
	fmt.Fprintf(w, "%-16s %12s %14s %14s\n", "initial pages", "txn/sec", "journal KB", "wasted pages")
	for _, row := range r.Rows {
		name := fmt.Sprintf("%d", row.InitialPages)
		if row.InitialPages == 0 {
			name = "stock WAL"
		}
		fmt.Fprintf(w, "%-16s %12.0f %14.0f %14d\n", name, row.Throughput, row.JournalKB, row.WastedPages)
	}
}
