package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCommitAllocsShapes(t *testing.T) {
	r, err := CommitAllocs(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"solo-commit", "group-commit", "page-version-into"} {
		row := r.Row(path)
		if row == nil {
			t.Fatalf("audit missing row %q", path)
		}
		if row.Ops != testTxns {
			t.Fatalf("%s measured %d ops, want %d", path, row.Ops, testTxns)
		}
		if row.AllocsPerOp < 0 || row.BytesPerOp < 0 {
			t.Fatalf("%s reported negative allocations: %+v", path, row)
		}
	}
	// The read path is the zero-copy poster child: no allocations at
	// all once the caller supplies the buffer.
	if row := r.Row("page-version-into"); row.AllocsPerOp != 0 {
		t.Fatalf("page-version-into allocates %.2f/op, want 0", row.AllocsPerOp)
	}
	// The commit paths hand off a bounded set of buffers per
	// transaction; far above this means an intermediate frame image
	// crept back in. The bound is deliberately loose — the CI gate
	// against results/BENCH_commit_allocs.json does the tight tracking.
	if row := r.Row("solo-commit"); row.AllocsPerOp > 40 {
		t.Fatalf("solo-commit allocates %.2f/op, want the zero-copy steady state", row.AllocsPerOp)
	}
	if r.Row("unknown") != nil {
		t.Fatal("Row invented a path")
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "allocation audit") || !strings.Contains(b.String(), "group-commit") {
		t.Fatalf("Print output unexpected:\n%s", b.String())
	}
}
