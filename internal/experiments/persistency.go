package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mobibench"
)

// PersistencyPoint is one (model, latency) measurement of the §4.4
// ablation.
type PersistencyPoint struct {
	Model      string
	Latency    time.Duration
	Throughput float64
	Flushes    float64 // dccmvac instructions per txn (0 under hardware models)
	Syscalls   float64 // kernel-mode switches per txn
}

// PersistencyResult holds the ablation sweep.
type PersistencyResult struct {
	Latencies []time.Duration
	Models    []string
	Points    []PersistencyPoint
}

// Persistency runs the evaluation the paper could not (§4.4: "Due to
// the unavailability of real hardware that can implement strict and
// relaxed persistency, we leave a performance evaluation of NVWAL under
// various memory persistency models to our future work"): NVWAL under
// strict and epoch persistency versus the software eager/lazy schemes,
// on the Tuna board across the NVRAM latency sweep.
func Persistency(txns int) (*PersistencyResult, error) {
	if txns <= 0 {
		txns = 500
	}
	res := &PersistencyResult{Latencies: tunaLatencies}
	for _, v := range core.PersistencyVariants() {
		res.Models = append(res.Models, v.Name)
		for _, lat := range res.Latencies {
			s, err := NewNVWALSetup(Tuna, v.Cfg, db1000)
			if err != nil {
				return nil, err
			}
			s.Plat.SetNVRAMLatency(lat)
			w, err := mobibench.Prepare(s.DB, mobibench.Workload{
				Op: mobibench.Insert, Transactions: txns, OpsPerTxn: 1, Seed: 44,
			})
			if err != nil {
				return nil, err
			}
			before := s.Plat.Metrics.Snapshot()
			r, err := mobibench.Run(s.DB, s.Plat.Clock, w)
			if err != nil {
				return nil, err
			}
			delta := s.Plat.Metrics.Snapshot().Sub(before)
			res.Points = append(res.Points, PersistencyPoint{
				Model:      v.Name,
				Latency:    lat,
				Throughput: r.Throughput(),
				Flushes:    float64(delta.Count(metrics.CacheLineFlush)) / float64(txns),
				Syscalls:   float64(delta.Count(metrics.Syscall)) / float64(txns),
			})
		}
	}
	return res, nil
}

// Throughput returns the measurement for (model, latency), or 0.
func (r *PersistencyResult) Throughput(model string, lat time.Duration) float64 {
	for _, p := range r.Points {
		if p.Model == model && p.Latency == lat {
			return p.Throughput
		}
	}
	return 0
}

func (r *PersistencyResult) point(model string, lat time.Duration) *PersistencyPoint {
	for i := range r.Points {
		if r.Points[i].Model == model && r.Points[i].Latency == lat {
			return &r.Points[i]
		}
	}
	return nil
}

// Print renders the ablation table.
func (r *PersistencyResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Persistency-model ablation (§4.4 future work): insert txn/sec vs NVRAM latency")
	fmt.Fprintf(w, "%-20s", "model \\ latency")
	for _, lat := range r.Latencies {
		fmt.Fprintf(w, "%9dns", lat.Nanoseconds())
	}
	fmt.Fprintln(w)
	for _, m := range r.Models {
		fmt.Fprintf(w, "%-20s", m)
		for _, lat := range r.Latencies {
			fmt.Fprintf(w, "%11.0f", r.Throughput(m, lat))
		}
		fmt.Fprintln(w)
	}
	lat := r.Latencies[0]
	fmt.Fprintf(w, "per-txn instrumentation at %v:\n", lat)
	for _, m := range r.Models {
		if p := r.point(m, lat); p != nil {
			fmt.Fprintf(w, "  %-20s %6.1f dccmvac, %5.1f kernel switches\n", m, p.Flushes, p.Syscalls)
		}
	}
}
