package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/metrics"
)

// ConcurrentRow is one (writer count, group size) cell of the sweep.
type ConcurrentRow struct {
	Writers     int
	GroupSize   int
	Txns        int
	BarriersTxn float64 // persist barriers per transaction
	Groups      int64   // batched flushes taken
	Throughput  float64 // transactions per virtual second
}

// ConcurrentResult holds the writers × group-size sweep.
type ConcurrentResult struct {
	Latency time.Duration
	Rows    []ConcurrentRow
}

// Concurrent measures group commit on the real engine under goroutine
// concurrency — the end-to-end version of the GroupCommit ablation.
// W writer sessions run single-insert transaction loops against one
// Concurrent-mode NVWAL database; the group committer batches the
// overlapping commits through one Algorithm 1 sequence per group
// (Figure: persist barriers per transaction fall toward 1/min(W, K) of
// the solo cost as the group widens).
//
// The board is Tuna at the slow end of the NVRAM latency range, where
// ordering overhead is most visible (§5.2), with auto-checkpointing off
// so the commit path dominates.
func Concurrent(txns int) (*ConcurrentResult, error) {
	if txns <= 0 {
		txns = 240
	}
	const latency = 1942 * time.Nanosecond
	res := &ConcurrentResult{Latency: latency}
	for _, writers := range []int{1, 2, 4, 8} {
		for _, group := range []int{1, 4, 8} {
			row, err := runConcurrent(writers, group, txns, latency)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runConcurrent(writers, group, txns int, latency time.Duration) (ConcurrentRow, error) {
	plat, err := Tuna.newPlatform()
	if err != nil {
		return ConcurrentRow{}, err
	}
	plat.SetNVRAMLatency(latency)
	d, err := db.Open(plat, "bench.db", db.Options{
		Journal:         db.JournalNVWAL,
		NVWAL:           core.VariantUHLSDiff(),
		CPU:             Tuna.cpu(),
		CheckpointLimit: -1,
		Concurrent:      true,
		GroupCommit:     group,
	})
	if err != nil {
		return ConcurrentRow{}, err
	}
	if err := d.CreateTable("bench"); err != nil {
		return ConcurrentRow{}, err
	}

	perWriter := txns / writers
	total := perWriter * writers
	// Register every session before the first commit so the group
	// committer forms deterministic groups of min(writers, group).
	sessions := make([]*db.Writer, writers)
	for i := range sessions {
		sessions[i] = d.Writer()
	}
	before := plat.Metrics.Snapshot()
	start := plat.Clock.Now()

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for s := 0; s < writers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := sessions[s]
			defer sess.Close()
			val := make([]byte, 100)
			for i := 0; i < perWriter; i++ {
				tx, err := sess.Begin()
				if err != nil {
					errs <- err
					return
				}
				key := []byte(fmt.Sprintf("w%02d-%06d", s, i))
				if err := tx.Insert("bench", key, val); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return ConcurrentRow{}, err
	}

	delta := plat.Metrics.Snapshot().Sub(before)
	elapsed := plat.Clock.Now() - start
	return ConcurrentRow{
		Writers:     writers,
		GroupSize:   group,
		Txns:        total,
		BarriersTxn: float64(delta.Count(metrics.PersistBarrier)) / float64(total),
		Groups:      delta.Count(metrics.GroupCommits),
		Throughput:  float64(total) / elapsed.Seconds(),
	}, nil
}

// BarriersPerTxn returns the measurement for (writers, group), or 0.
func (r *ConcurrentResult) BarriersPerTxn(writers, group int) float64 {
	for _, row := range r.Rows {
		if row.Writers == writers && row.GroupSize == group {
			return row.BarriersTxn
		}
	}
	return 0
}

// Print renders the sweep.
func (r *ConcurrentResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Concurrent group commit (NVWAL UH+LS+Diff, Tuna @ %v NVRAM latency)\n", r.Latency)
	fmt.Fprintf(w, "%-8s %-6s %-6s %14s %8s %12s\n",
		"writers", "K", "txns", "barriers/txn", "groups", "txn/sec")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-6d %-6d %14.2f %8d %12.0f\n",
			row.Writers, row.GroupSize, row.Txns, row.BarriersTxn, row.Groups, row.Throughput)
	}
	fmt.Fprintln(w, "groups of min(writers, K) share one flush batch + one commit-mark persist")
}
