package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestPersistencyModelShapes(t *testing.T) {
	r, err := Persistency(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	slow := r.Latencies[len(r.Latencies)-1]
	// §4.4 conjectures: relaxed (epoch) persistency is the fastest; it
	// beats strict persistency at every latency.
	for _, lat := range r.Latencies {
		if r.Throughput("Epoch persistency", lat) < r.Throughput("Strict persistency", lat) {
			t.Fatalf("epoch not faster than strict at %v", lat)
		}
	}
	// Both hardware models remove explicit flush instructions.
	for _, m := range []string{"Strict persistency", "Epoch persistency"} {
		p := r.point(m, slow)
		if p == nil || p.Flushes > 1 {
			t.Fatalf("%s issued %v dccmvac per txn", m, p.Flushes)
		}
	}
	// The software schemes do flush explicitly.
	if p := r.point("Lazy (software)", slow); p == nil || p.Flushes < 5 {
		t.Fatalf("software lazy flushes = %+v", p)
	}
	// Epoch persistency also beats the software schemes (no kernel
	// crossings).
	if r.Throughput("Epoch persistency", slow) < r.Throughput("Lazy (software)", slow) {
		t.Fatal("epoch persistency slower than software lazy")
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "Persistency-model") {
		t.Fatal("printer output malformed")
	}
}

func TestPreallocShapes(t *testing.T) {
	r, err := Prealloc(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	var stock, p8, p32 *PreallocRow
	for i := range r.Rows {
		switch r.Rows[i].InitialPages {
		case 0:
			stock = &r.Rows[i]
		case 8:
			p8 = &r.Rows[i]
		case 32:
			p32 = &r.Rows[i]
		}
	}
	if stock == nil || p8 == nil || p32 == nil {
		t.Fatalf("missing rows: %+v", r.Rows)
	}
	// Pre-allocation beats stock on both throughput and journal bytes.
	if p8.Throughput <= stock.Throughput {
		t.Fatalf("prealloc throughput %f <= stock %f", p8.Throughput, stock.Throughput)
	}
	if p8.JournalKB >= stock.JournalKB {
		t.Fatalf("prealloc journal %f >= stock %f", p8.JournalKB, stock.JournalKB)
	}
	// The trade-off: pre-allocation leaves unused log pages behind
	// ("it may waste several disk pages if there is no next
	// transaction", §5.4). Exactly which policy wastes most depends on
	// where the doubling schedule lands relative to the workload, so
	// only the existence of waste is asserted.
	if p32.WastedPages == 0 && p8.WastedPages == 0 {
		t.Fatal("pre-allocation policies wasted no pages; the trade-off is invisible")
	}
}

func TestBaselinesOrdering(t *testing.T) {
	r, err := Baselines(testTxns)
	if err != nil {
		t.Fatal(err)
	}
	rb := r.Row("Rollback journal")
	sw := r.Row("Stock WAL")
	ow := r.Row("Optimized WAL")
	nv := r.Row("NVWAL UH+LS+Diff")
	if rb == nil || sw == nil || ow == nil || nv == nil {
		t.Fatalf("missing rows: %+v", r.Rows)
	}
	// §1/§2: rollback < stock WAL < optimized WAL << NVWAL.
	if !(rb.Throughput < sw.Throughput && sw.Throughput < ow.Throughput && ow.Throughput < nv.Throughput) {
		t.Fatalf("mode ordering wrong: %+v", r.Rows)
	}
	// Rollback journaling syncs two files; WAL one; NVWAL none.
	if rb.FsyncsPerTx <= sw.FsyncsPerTx {
		t.Fatalf("rollback fsyncs (%f) not above WAL's (%f)", rb.FsyncsPerTx, sw.FsyncsPerTx)
	}
	if nv.FsyncsPerTx != 0 || nv.BlockIOPerTx != 0 {
		t.Fatalf("NVWAL touched flash on the commit path: %+v", nv)
	}
	if nv.NVRAMPerTx <= 0 {
		t.Fatal("NVWAL logged no NVRAM bytes")
	}
}

func TestGroupCommitShapes(t *testing.T) {
	r, err := GroupCommit(150)
	if err != nil {
		t.Fatal(err)
	}
	// Grouping never hurts, and the gain is modest — the paper's own
	// point that ordering overhead is a small share of transaction time.
	if r.Throughput(16) < r.Throughput(1) {
		t.Fatalf("group commit slowed things down: %+v", r.Rows)
	}
	if gain := r.Throughput(16) / r.Throughput(1); gain > 1.2 {
		t.Fatalf("group-commit gain %.2fx implausibly large for a CPU-bound workload", gain)
	}
}

func TestChecksumStudyShapes(t *testing.T) {
	r, err := ChecksumStudy(60)
	if err != nil {
		t.Fatal(err)
	}
	// The full CRC32 never admits corruption.
	if got := r.CorruptionRate(32); got != 0 {
		t.Fatalf("32-bit CRC corruption rate = %f", got)
	}
	// Severely narrowed checksums do corrupt (the §4.2 hazard made
	// visible) — allow the 2-bit row to demonstrate it.
	if r.CorruptionRate(2) == 0 && r.CorruptionRate(4) == 0 {
		t.Fatal("narrowed checksums never corrupted; the study shows nothing")
	}
	// Every trial ends in one of the three outcomes.
	for _, row := range r.Rows {
		if row.Survived+row.Dropped+row.Corrupted != row.Trials {
			t.Fatalf("outcome accounting broken: %+v", row)
		}
	}
}

func TestConcurrentShapes(t *testing.T) {
	r, err := Concurrent(120)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	// With one writer no group can form, so K is irrelevant.
	if r.BarriersPerTxn(1, 8) != r.BarriersPerTxn(1, 1) {
		t.Fatalf("single writer affected by group size: %+v", r.Rows)
	}
	// The acceptance shape: group commit reduces persist barriers per
	// transaction as the writer count grows.
	for _, w := range []int{2, 4, 8} {
		if r.BarriersPerTxn(w, 8) >= r.BarriersPerTxn(w, 1) {
			t.Fatalf("K=8 did not amortize barriers at %d writers: %+v", w, r.Rows)
		}
	}
	if r.BarriersPerTxn(8, 8) >= r.BarriersPerTxn(2, 8) {
		t.Fatalf("amortization did not improve with writer count: %+v", r.Rows)
	}
	// Group width is min(writers, K), so K only separates K=4 from K=8
	// once 8 writers can actually fill the wider group.
	if r.BarriersPerTxn(8, 8) >= r.BarriersPerTxn(8, 4) {
		t.Fatalf("8-wide groups cost no less than 4-wide at 8 writers: %+v", r.Rows)
	}
}

func TestCheckpointStallShapes(t *testing.T) {
	r, err := CheckpointStall(160)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Txns == 0 || row.P99CommitNs == 0 {
			t.Fatalf("empty measurement: %+v", row)
		}
		if row.P99CommitNs < row.P50CommitNs {
			t.Fatalf("p99 below p50: %+v", row)
		}
	}
	// The blocking baseline runs its rounds inline from the commit path,
	// so its checkpoint count must be substantial (one per ~limit frames);
	// the background mode must have checkpointed at least once too —
	// otherwise the comparison measured nothing.
	for _, row := range r.Rows {
		if row.Checkpoints == 0 {
			t.Fatalf("%s/%d writers ran no checkpoint rounds: %+v", row.Mode, row.Writers, row)
		}
	}
	// Wall-clock latency comparisons are load-sensitive, so the shape
	// check stays coarse: with one writer the background p99 must not be
	// dramatically WORSE than blocking (it has strictly less work on the
	// commit path). Allow 2x slack for scheduler noise.
	if bg, bl := r.P99("background", 1), r.P99("blocking", 1); bg > 2*bl {
		t.Fatalf("background p99 %dns > 2x blocking p99 %dns", bg, bl)
	}
}

func TestPressureShapes(t *testing.T) {
	r, err := Pressure(120)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	var urgentOnSmallest int64
	for _, row := range r.Rows {
		// The headline property: every transaction either committed or came
		// back ErrBusy — Pressure returns an error for anything else, so
		// reaching here with full accounting is the assertion.
		if row.Committed+row.Busy != row.Txns {
			t.Fatalf("unaccounted transactions: %+v", row)
		}
		if row.Committed == 0 {
			t.Fatalf("no commits ever succeeded: %+v", row)
		}
		if row.P99CommitNs < row.P50CommitNs {
			t.Fatalf("p99 below p50: %+v", row)
		}
		if row.HeapPages == 24 {
			urgentOnSmallest += row.UrgentCkpts
		}
	}
	// A 24-page heap cannot absorb 120 1KB overwrites without the
	// watermarks checkpointing early; zero urgent rounds would mean the
	// sweep exercised no pressure at all.
	if urgentOnSmallest == 0 {
		t.Fatal("24-page cells triggered no urgent checkpoints")
	}
}

func TestShardsShapes(t *testing.T) {
	r, err := Shards(96)
	if err != nil {
		t.Fatal(err)
	}
	// 3 baseline cells (shards=0) + 4 shard counts × 3 writer counts.
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Committed+row.Busy != row.Txns {
			t.Fatalf("unaccounted transactions: %+v", row)
		}
		if row.Committed == 0 {
			t.Fatalf("no commits ever succeeded: %+v", row)
		}
		if row.P99CommitNs < row.P50CommitNs {
			t.Fatalf("p99 below p50: %+v", row)
		}
	}
	// The headline property survives even a tiny sweep: with 32 writers,
	// 8 shards on 8 lanes must out-commit 1 shard per unit virtual time.
	one, eight := r.Row(1, 32), r.Row(8, 32)
	if one == nil || eight == nil {
		t.Fatal("sweep missing the 1- or 8-shard 32-writer cell")
	}
	if eight.Throughput < 2*one.Throughput {
		t.Fatalf("8 shards only %.2fx over 1 at 32 writers",
			eight.Throughput/one.Throughput)
	}
	// The shard layer may not tax the single-shard path: shards=1 stays
	// in the same latency regime as the bare engine (loose 2x bound —
	// the committed full-size run pins it within 10%).
	base := r.Row(0, 1)
	if s1 := r.Row(1, 1); s1.P50CommitNs > 2*base.P50CommitNs {
		t.Fatalf("shards=1 p50 %dns vs bare-engine %dns", s1.P50CommitNs, base.P50CommitNs)
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "scale-out") {
		t.Fatal("printer output missing header")
	}
}

func TestMVCCShapes(t *testing.T) {
	r, err := MVCC(256)
	if err != nil {
		t.Fatal(err)
	}
	// 2 modes × 4 writer counts.
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Committed == 0 {
			t.Fatalf("no commits ever succeeded: %+v", row)
		}
		if row.P99CommitNs < row.P50CommitNs {
			t.Fatalf("p99 below p50: %+v", row)
		}
		if row.Conflicts > 0 && row.Mode == "legacy" {
			t.Fatalf("legacy slot transactions can never conflict: %+v", row)
		}
	}
	// The headline property survives a tiny sweep: sessions on
	// independent CPU lanes out-commit slot-serialized writers per unit
	// virtual time, and keep scaling with writers (loose bounds — the
	// committed full-size run pins 6.4x at 64 writers).
	l8, m8, m64 := r.Row("legacy", 8), r.Row("mvcc", 8), r.Row("mvcc", 64)
	if l8 == nil || m8 == nil || m64 == nil {
		t.Fatal("sweep missing a mode/writer cell")
	}
	if m8.Throughput < 2*l8.Throughput {
		t.Fatalf("mvcc only %.2fx over legacy at 8 writers", m8.Throughput/l8.Throughput)
	}
	if m64.Throughput < 1.5*m8.Throughput {
		t.Fatalf("mvcc at 64 writers only %.2fx over 8", m64.Throughput/m8.Throughput)
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "MVCC sweep") {
		t.Fatal("printer output missing header")
	}
}
