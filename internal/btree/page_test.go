package btree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPage(t testing.TB, typ int, usable int) *page {
	t.Helper()
	p := &page{no: 1, buf: make([]byte, 4096), usable: usable}
	p.init(typ)
	return p
}

func TestPageInit(t *testing.T) {
	p := newPage(t, pageLeaf, 4096)
	if !p.isLeaf() || p.nCells() != 0 || p.contentStart() != 4096 {
		t.Fatalf("fresh leaf: leaf=%v cells=%d cs=%d", p.isLeaf(), p.nCells(), p.contentStart())
	}
	if p.freeSpace() != 4096-headerSize {
		t.Fatalf("freeSpace = %d", p.freeSpace())
	}
	q := newPage(t, pageInterior, 4072)
	if q.isLeaf() || q.typ() != pageInterior || q.contentStart() != 4072 {
		t.Fatal("fresh interior wrong")
	}
}

func TestInsertCellOrderingAndLookup(t *testing.T) {
	p := newPage(t, pageLeaf, 4096)
	// Insert out of order via explicit indices.
	p.insertCellAt(0, encodeLeafCell([]byte("bb"), []byte("2")))
	p.insertCellAt(0, encodeLeafCell([]byte("aa"), []byte("1")))
	p.insertCellAt(2, encodeLeafCell([]byte("cc"), []byte("3")))
	if p.nCells() != 3 {
		t.Fatalf("nCells = %d", p.nCells())
	}
	for i, want := range []string{"aa", "bb", "cc"} {
		k, v := p.leafCell(i)
		if string(k) != want {
			t.Fatalf("cell %d key = %q", i, k)
		}
		if len(v) != 1 {
			t.Fatalf("cell %d val = %q", i, v)
		}
	}
	if err := p.checkAccounting(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCellOverflowPanics(t *testing.T) {
	p := newPage(t, pageLeaf, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing insertCellAt did not panic")
		}
	}()
	for i := 0; ; i++ {
		p.insertCellAt(i, encodeLeafCell([]byte{byte(i)}, bytes.Repeat([]byte{1}, 40)))
	}
}

func TestDeleteCellCompacts(t *testing.T) {
	p := newPage(t, pageLeaf, 4096)
	for i := 0; i < 10; i++ {
		p.insertCellAt(i, encodeLeafCell([]byte{byte('a' + i)}, bytes.Repeat([]byte{byte(i)}, 50)))
	}
	free0 := p.freeSpace()
	p.deleteCellAt(4)
	if p.nCells() != 9 {
		t.Fatalf("nCells = %d", p.nCells())
	}
	// Compaction returns the full cell size plus the pointer slot.
	if got := p.freeSpace() - free0; got != 55+2 {
		t.Fatalf("freed %d bytes, want 57", got)
	}
	// Remaining cells intact and ordered.
	want := []byte("abcdfghij")
	for i := 0; i < 9; i++ {
		k, _ := p.leafCell(i)
		if k[0] != want[i] {
			t.Fatalf("cell %d = %q, want %q", i, k, want[i:i+1])
		}
	}
	if err := p.checkAccounting(); err != nil {
		t.Fatal(err)
	}
}

func TestInteriorCells(t *testing.T) {
	p := newPage(t, pageInterior, 4096)
	p.insertCellAt(0, encodeInteriorCell(7, []byte("mm")))
	p.insertCellAt(1, encodeInteriorCell(9, []byte("tt")))
	p.setRightChild(11)
	c, k := p.interiorCell(0)
	if c != 7 || string(k) != "mm" {
		t.Fatalf("cell 0 = (%d,%q)", c, k)
	}
	p.setInteriorChild(0, 42)
	if c, _ = p.interiorCell(0); c != 42 {
		t.Fatalf("setInteriorChild: %d", c)
	}
	if p.rightChild() != 11 {
		t.Fatalf("rightChild = %d", p.rightChild())
	}
	child, kk := decodeInteriorCell(encodeInteriorCell(99, []byte("zz")))
	if child != 99 || string(kk) != "zz" {
		t.Fatal("interior cell round trip")
	}
}

func TestOverflowCellEncoding(t *testing.T) {
	cell := encodeOverflowCell([]byte("key"), []byte("local"), 5000, 77)
	if got := keyOfLeafCell(cell); string(got) != "key" {
		t.Fatalf("keyOfLeafCell = %q", got)
	}
	p := newPage(t, pageLeaf, 4096)
	p.insertCellAt(0, cell)
	k, local, total, ovfl := p.leafCellInfo(0)
	if string(k) != "key" || string(local) != "local" || total != 5000 || ovfl != 77 {
		t.Fatalf("leafCellInfo = (%q,%q,%d,%d)", k, local, total, ovfl)
	}
	if p.cellSize(0) != overflowCellSize(3, 5) {
		t.Fatalf("cellSize = %d", p.cellSize(0))
	}
}

// Property: any sequence of ordered inserts and deletes keeps page
// accounting valid and the cells reconstructible.
func TestPropertyPageCellOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newPage(t, pageLeaf, 1024)
		var model [][2][]byte // ordered (key, val)
		for op := 0; op < 200; op++ {
			if rng.Intn(3) != 0 || len(model) == 0 {
				key := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
				val := make([]byte, rng.Intn(60))
				rng.Read(val)
				cell := encodeLeafCell(key, val)
				if p.freeSpace() < len(cell)+2 {
					continue
				}
				idx := rng.Intn(len(model) + 1)
				p.insertCellAt(idx, cell)
				model = append(model, [2][]byte{})
				copy(model[idx+1:], model[idx:])
				model[idx] = [2][]byte{key, val}
			} else {
				idx := rng.Intn(len(model))
				p.deleteCellAt(idx)
				model = append(model[:idx], model[idx+1:]...)
			}
			if p.checkAccounting() != nil || p.nCells() != len(model) {
				return false
			}
		}
		for i, kv := range model {
			k, v := p.leafCell(i)
			if !bytes.Equal(k, kv[0]) || !bytes.Equal(v, kv[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
