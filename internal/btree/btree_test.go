package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// memStore is a minimal in-memory PageStore for unit-testing the tree in
// isolation from the pager.
type memStore struct {
	pageSize int
	pages    map[uint32][]byte
	next     uint32
	dirtied  map[uint32]int
	freed    []uint32
}

func newMemStore(pageSize int) *memStore {
	return &memStore{pageSize: pageSize, pages: make(map[uint32][]byte), next: 1, dirtied: make(map[uint32]int)}
}

func (s *memStore) PageSize() int { return s.pageSize }

func (s *memStore) Get(pgno uint32) ([]byte, error) {
	buf, ok := s.pages[pgno]
	if !ok {
		return nil, fmt.Errorf("memStore: page %d does not exist", pgno)
	}
	return buf, nil
}

func (s *memStore) Allocate() (uint32, []byte, error) {
	pgno := s.next
	s.next++
	buf := make([]byte, s.pageSize)
	s.pages[pgno] = buf
	return pgno, buf, nil
}

func (s *memStore) Free(pgno uint32) error {
	if _, ok := s.pages[pgno]; !ok {
		return fmt.Errorf("memStore: free of unknown page %d", pgno)
	}
	s.freed = append(s.freed, pgno)
	delete(s.pages, pgno)
	return nil
}

func (s *memStore) MarkDirty(pgno uint32) { s.dirtied[pgno]++ }

func newTree(t testing.TB, reserved int) (*Tree, *memStore) {
	t.Helper()
	s := newMemStore(4096)
	tr, err := Create(s, Config{Reserved: reserved})
	if err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func key(i int) []byte     { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte     { return bytes.Repeat([]byte{byte(i)}, 100) }
func vals(s string) []byte { return []byte(s) }

func TestPutGetSingle(t *testing.T) {
	tr, _ := newTree(t, 0)
	if err := tr.Put(key(1), vals("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get(key(1))
	if err != nil || !ok || !bytes.Equal(v, vals("hello")) {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := tr.Get(key(2)); ok {
		t.Fatal("found absent key")
	}
}

func TestPutReplaces(t *testing.T) {
	tr, _ := newTree(t, 0)
	tr.Put(key(1), vals("one"))
	tr.Put(key(1), vals("two"))
	v, ok, _ := tr.Get(key(1))
	if !ok || !bytes.Equal(v, vals("two")) {
		t.Fatalf("Get after replace = %q", v)
	}
	if n, _ := tr.Count(); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr, _ := newTree(t, 0)
	if err := tr.Put(nil, vals("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestTooLargeRecordRejected(t *testing.T) {
	tr, _ := newTree(t, 0)
	if err := tr.Put(key(1), make([]byte, MaxValueSize+1)); err == nil {
		t.Fatal("value beyond MaxValueSize accepted")
	}
	if err := tr.Put(make([]byte, 3000), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestOverflowValues(t *testing.T) {
	tr, s := newTree(t, ReservedTail)
	big := make([]byte, 20000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := tr.Put(key(1), big); err != nil {
		t.Fatal(err)
	}
	if len(s.pages) < 5 {
		t.Fatalf("20 KB value used only %d pages (no overflow chain?)", len(s.pages))
	}
	got, ok, err := tr.Get(key(1))
	if err != nil || !ok || !bytes.Equal(got, big) {
		t.Fatalf("overflow round trip failed (ok=%v err=%v, %d bytes)", ok, err, len(got))
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Scan and cursor also resolve the chain.
	tr.Scan(func(k, v []byte) bool {
		if !bytes.Equal(v, big) {
			t.Fatal("scan returned truncated overflow value")
		}
		return true
	})
	c := tr.NewCursor()
	if ok, _ := c.First(); !ok {
		t.Fatal("cursor lost the record")
	}
	if v, _ := c.Value(); !bytes.Equal(v, big) {
		t.Fatal("cursor returned truncated overflow value")
	}
}

func TestOverflowReplaceFreesChain(t *testing.T) {
	tr, s := newTree(t, 0)
	big := bytes.Repeat([]byte{7}, 30000)
	if err := tr.Put(key(1), big); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(key(1), []byte("small now")); err != nil {
		t.Fatal(err)
	}
	if len(s.freed) == 0 {
		t.Fatal("replacing an overflowing value freed no pages")
	}
	got, _, _ := tr.Get(key(1))
	if !bytes.Equal(got, []byte("small now")) {
		t.Fatalf("replacement value = %q", got)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowDeleteFreesChain(t *testing.T) {
	tr, s := newTree(t, 0)
	big := bytes.Repeat([]byte{9}, 25000)
	tr.Put(key(1), big)
	freedBefore := len(s.freed)
	ok, err := tr.Delete(key(1))
	if err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	want := (25000 - 900) / 4092 // roughly: all chain pages
	if got := len(s.freed) - freedBefore; got < want {
		t.Fatalf("delete freed %d pages, want >= %d", got, want)
	}
	if n, _ := tr.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
}

func TestOverflowManyRecords(t *testing.T) {
	tr, _ := newTree(t, ReservedTail)
	mk := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 1500+i*137%9000)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), mk(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, mk(i)) {
			t.Fatalf("record %d mismatch (ok=%v err=%v)", i, ok, err)
		}
	}
	// Mixed deletes keep everything consistent.
	for i := 0; i < n; i += 3 {
		if ok, err := tr.Delete(key(i)); err != nil || !ok {
			t.Fatalf("Delete %d: (%v,%v)", i, ok, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestManyInsertsSplitAndStaySorted(t *testing.T) {
	tr, _ := newTree(t, 0)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if cnt, _ := tr.Count(); cnt != n {
		t.Fatalf("Count = %d, want %d", cnt, n)
	}
	d, _ := tr.Depth()
	if d < 1 {
		t.Fatalf("tree did not split: depth %d", d)
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get %d after splits = (%v,%v)", i, ok, err)
		}
	}
	// Scan yields ascending order.
	var prev []byte
	tr.Scan(func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan order violation: %q then %q", prev, k)
		}
		prev = k
		return true
	})
}

func TestReverseOrderInserts(t *testing.T) {
	tr, _ := newTree(t, 0)
	const n = 1500
	for i := n - 1; i >= 0; i-- {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if cnt, _ := tr.Count(); cnt != n {
		t.Fatalf("Count = %d", cnt)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTree(t, 0)
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("Delete %d = (%v,%v)", i, ok, err)
		}
	}
	if ok, _ := tr.Delete(key(0)); ok {
		t.Fatal("double delete reported success")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get %d present=%v, want %v", i, ok, want)
		}
	}
	if n, _ := tr.Count(); n != 250 {
		t.Fatalf("Count = %d, want 250", n)
	}
}

func TestDeleteReclaimsPages(t *testing.T) {
	tr, s := newTree(t, ReservedTail)
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	pagesFull := len(s.pages)
	if d, _ := tr.Depth(); d < 1 {
		t.Fatal("tree never split")
	}
	for i := 0; i < n; i++ {
		if ok, err := tr.Delete(key(i)); err != nil || !ok {
			t.Fatalf("Delete %d: (%v,%v)", i, ok, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if cnt, _ := tr.Count(); cnt != 0 {
		t.Fatalf("Count = %d", cnt)
	}
	// Everything but the root came back.
	if len(s.pages) != 1 {
		t.Fatalf("%d pages remain after deleting all records, want 1 (root)", len(s.pages))
	}
	if d, _ := tr.Depth(); d != 0 {
		t.Fatalf("tree did not shrink: depth %d", d)
	}
	if len(s.freed) < pagesFull-1 {
		t.Fatalf("freed %d of %d pages", len(s.freed), pagesFull-1)
	}
	// The tree remains fully usable.
	for i := 0; i < 500; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteReverseOrderReclaims(t *testing.T) {
	tr, s := newTree(t, 0)
	const n = 1200
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	for i := n - 1; i >= 0; i-- {
		if ok, err := tr.Delete(key(i)); err != nil || !ok {
			t.Fatalf("Delete %d: (%v,%v)", i, ok, err)
		}
		if i%200 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("at %d: %v", i, err)
			}
		}
	}
	if len(s.pages) != 1 {
		t.Fatalf("%d pages remain", len(s.pages))
	}
}

func TestUpdate(t *testing.T) {
	tr, _ := newTree(t, 0)
	tr.Put(key(1), vals("old"))
	ok, err := tr.Update(key(1), vals("new"))
	if err != nil || !ok {
		t.Fatalf("Update = (%v,%v)", ok, err)
	}
	v, _, _ := tr.Get(key(1))
	if !bytes.Equal(v, vals("new")) {
		t.Fatalf("value = %q", v)
	}
	ok, err = tr.Update(key(99), vals("x"))
	if err != nil || ok {
		t.Fatalf("Update of absent key = (%v,%v), want (false,nil)", ok, err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 0)
	for i := 0; i < 100; i++ {
		tr.Put(key(i), val(i))
	}
	seen := 0
	tr.Scan(func(_, _ []byte) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("scan visited %d records, want 10", seen)
	}
}

func TestReservedTailNeverUsed(t *testing.T) {
	tr, s := newTree(t, ReservedTail)
	for i := 0; i < 1000; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for pgno, buf := range s.pages {
		tail := buf[len(buf)-ReservedTail:]
		if !bytes.Equal(tail, make([]byte, ReservedTail)) {
			t.Fatalf("page %d used its reserved tail: %x", pgno, tail)
		}
	}
}

func TestEarlySplitSplitsEarlier(t *testing.T) {
	// With a reserved tail the usable area is smaller, so the first
	// split must happen at or before the stock fill count.
	fill := func(reserved int) int {
		tr, _ := newTree(t, reserved)
		i := 0
		for {
			tr.Put(key(i), val(i))
			if d, _ := tr.Depth(); d > 0 {
				return i
			}
			i++
		}
	}
	if early, stock := fill(ReservedTail), fill(0); early > stock {
		t.Fatalf("early-split variant split later (%d) than stock (%d)", early, stock)
	}
}

func TestMarkDirtyPrecedesMutation(t *testing.T) {
	tr, s := newTree(t, 0)
	base := len(s.dirtied)
	tr.Put(key(1), val(1))
	if len(s.dirtied) <= base-1 {
		t.Fatal("Put did not mark any page dirty")
	}
}

func TestRootPageNumberStable(t *testing.T) {
	tr, _ := newTree(t, 0)
	root := tr.Root()
	const n = 12000 // enough to force a depth-2 tree (interior fanout ~200)
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	if tr.Root() != root {
		t.Fatalf("root moved from %d to %d", root, tr.Root())
	}
	d, _ := tr.Depth()
	if d < 2 {
		t.Fatalf("expected depth >= 2 after %d inserts, got %d", n, d)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAppendsNearContentStart(t *testing.T) {
	// §5.2: inserts append the new cell to the end of the used region,
	// keeping the insert-dirty region localized. Verify a fresh insert
	// lands adjacent to the previous content start.
	tr, s := newTree(t, 0)
	tr.Put(key(1), val(1))
	rootBuf := s.pages[tr.Root()]
	p := &page{no: tr.Root(), buf: rootBuf, usable: 4096}
	before := p.contentStart()
	tr.Put(key(2), val(2))
	after := p.contentStart()
	if want := before - leafCellSize(key(2), val(2)); after != want {
		t.Fatalf("contentStart after insert = %d, want %d", after, want)
	}
}

// Property: the tree matches a model map under random operation
// sequences, with invariants intact throughout.
func TestPropertyTreeMatchesModelMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _ := newTree(t, ReservedTail)
		model := make(map[string]string)
		keys := func() []string {
			ks := make([]string, 0, len(model))
			for k := range model {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			return ks
		}
		for op := 0; op < 800; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // insert/replace
				k := fmt.Sprintf("k%06d", rng.Intn(400))
				v := fmt.Sprintf("v%08d-%d", rng.Intn(1_000_000), op)
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 6, 7: // delete
				k := fmt.Sprintf("k%06d", rng.Intn(400))
				ok, err := tr.Delete([]byte(k))
				if err != nil {
					return false
				}
				_, inModel := model[k]
				if ok != inModel {
					return false
				}
				delete(model, k)
			case 8: // point lookup
				k := fmt.Sprintf("k%06d", rng.Intn(400))
				v, ok, err := tr.Get([]byte(k))
				if err != nil {
					return false
				}
				mv, inModel := model[k]
				if ok != inModel || (ok && string(v) != mv) {
					return false
				}
			case 9: // full scan comparison
				ks := keys()
				i := 0
				good := true
				tr.Scan(func(k, v []byte) bool {
					if i >= len(ks) || string(k) != ks[i] || string(v) != model[ks[i]] {
						good = false
						return false
					}
					i++
					return true
				})
				if !good || i != len(ks) {
					return false
				}
			}
		}
		return tr.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: page accounting survives adversarial same-page churn
// (replace + delete of equal and differing sizes).
func TestPropertyPageCompaction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _ := newTree(t, 0)
		live := map[int]bool{}
		for op := 0; op < 300; op++ {
			i := rng.Intn(20) // few keys, heavy churn within one page
			if rng.Intn(3) == 0 && live[i] {
				if ok, err := tr.Delete(key(i)); err != nil || !ok {
					return false
				}
				delete(live, i)
			} else {
				v := make([]byte, 20+rng.Intn(200))
				if err := tr.Put(key(i), v); err != nil {
					return false
				}
				live[i] = true
			}
			if tr.Check() != nil {
				return false
			}
		}
		n, _ := tr.Count()
		return n == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutSequential(b *testing.B) {
	tr, _ := newTree(b, ReservedTail)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr, _ := newTree(b, ReservedTail)
	for i := 0; i < 10000; i++ {
		tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 10000))
	}
}
