package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
)

// PageStore supplies pages to a Tree. The pager package implements it on
// top of the journal (WAL or NVWAL) and the database file.
type PageStore interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Get returns the mutable in-memory buffer of page pgno.
	Get(pgno uint32) ([]byte, error)
	// Allocate creates a fresh zeroed page and returns it.
	Allocate() (uint32, []byte, error)
	// Free returns a page to the store's free pool (overflow chains of
	// deleted records).
	Free(pgno uint32) error
	// MarkDirty must be called before a page buffer is mutated, so the
	// store can snapshot the pre-image for differential logging.
	MarkDirty(pgno uint32)
}

// ReservedTail is the per-page reserve of the early-split optimization:
// SQLite's 24-byte WAL frame header fits into the page's file-system
// block when the last 24 bytes of every B-tree page stay unused (§5.4).
const ReservedTail = 24

// MaxValueSize bounds a record's value (the on-page total-length field
// is 16 bits; larger values would need SQLite's varint cell format).
const MaxValueSize = 65535

// ErrTooLarge is returned when a key exceeds the per-cell budget or a
// value exceeds MaxValueSize. Values above the local threshold spill to
// overflow pages automatically.
var ErrTooLarge = errors.New("btree: record too large")

// Tree is one B+tree rooted at a fixed page. The root page number never
// changes (the database catalog references it), mirroring SQLite.
type Tree struct {
	store    PageStore
	root     uint32
	reserved int
}

// Config controls tree construction.
type Config struct {
	// Reserved is the per-page reserved tail in bytes. The paper's
	// early-split variant uses ReservedTail (24); stock SQLite uses 0.
	Reserved int
}

// New attaches to an existing tree rooted at root.
func New(store PageStore, root uint32, cfg Config) *Tree {
	return &Tree{store: store, root: root, reserved: cfg.Reserved}
}

// Create formats a fresh page as an empty tree root and returns the
// tree.
func Create(store PageStore, cfg Config) (*Tree, error) {
	pgno, _, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	t := &Tree{store: store, root: pgno, reserved: cfg.Reserved}
	p, err := t.page(pgno)
	if err != nil {
		return nil, err
	}
	store.MarkDirty(pgno)
	p.init(pageLeaf)
	return t, nil
}

// Root returns the tree's root page number.
func (t *Tree) Root() uint32 { return t.root }

func (t *Tree) usable() int { return t.store.PageSize() - t.reserved }

// maxCell is the largest cell the split logic can always place: a
// quarter of the usable content area.
func (t *Tree) maxCell() int {
	return (t.usable() - headerSize - 8) / 4
}

func (t *Tree) page(pgno uint32) (*page, error) {
	buf, err := t.store.Get(pgno)
	if err != nil {
		return nil, err
	}
	return &page{no: pgno, buf: buf, usable: t.usable()}, nil
}

// searchLeaf returns the index where key belongs in the leaf and whether
// it is already present.
func searchLeaf(p *page, key []byte) (int, bool) {
	n := p.nCells()
	i := sort.Search(n, func(i int) bool {
		k, _ := p.leafCell(i)
		return bytes.Compare(k, key) >= 0
	})
	if i < n {
		k, _ := p.leafCell(i)
		if bytes.Equal(k, key) {
			return i, true
		}
	}
	return i, false
}

// routeInterior returns the child to descend into for key, and the cell
// index it came from (nCells means the rightmost child).
func routeInterior(p *page, key []byte) (uint32, int) {
	n := p.nCells()
	i := sort.Search(n, func(i int) bool {
		_, k := p.interiorCell(i)
		return bytes.Compare(key, k) <= 0
	})
	if i == n {
		return p.rightChild(), n
	}
	child, _ := p.interiorCell(i)
	return child, i
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	pgno := t.root
	for {
		p, err := t.page(pgno)
		if err != nil {
			return nil, false, err
		}
		if p.isLeaf() {
			i, found := searchLeaf(p, key)
			if !found {
				return nil, false, nil
			}
			v, err := t.cellValue(p, i)
			if err != nil {
				return nil, false, err
			}
			return v, true, nil
		}
		pgno, _ = routeInterior(p, key)
	}
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, ok, err := t.Get(key)
	return ok, err
}

// Put inserts key/val, replacing any existing value. Values too large
// for a page cell spill to overflow pages.
func (t *Tree) Put(key, val []byte) error {
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	if len(key) > t.maxCell()/2 {
		return fmt.Errorf("%w: key of %d bytes, limit %d", ErrTooLarge, len(key), t.maxCell()/2)
	}
	if len(val) > MaxValueSize {
		return fmt.Errorf("%w: value of %d bytes, limit %d", ErrTooLarge, len(val), MaxValueSize)
	}
	var cell []byte
	if leafCellSize(key, val) <= t.maxCell() {
		cell = encodeLeafCell(key, val)
	} else {
		localLen := t.maxCell() - overflowCellSize(len(key), 0)
		head, err := t.buildOverflowChain(val[localLen:])
		if err != nil {
			return err
		}
		cell = encodeOverflowCell(key, val[:localLen], len(val), head)
	}
	res, err := t.insert(t.root, key, cell)
	if err != nil {
		return err
	}
	if res.split {
		return t.growRoot(res)
	}
	return nil
}

// overflowCapacity is the payload capacity of one overflow page.
func (t *Tree) overflowCapacity() int { return t.usable() - 4 }

// buildOverflowChain stores data across freshly allocated overflow
// pages and returns the head page number.
func (t *Tree) buildOverflowChain(data []byte) (uint32, error) {
	chunk := t.overflowCapacity()
	var head, prev uint32
	var prevBuf []byte
	for pos := 0; pos < len(data); pos += chunk {
		pgno, buf, err := t.store.Allocate()
		if err != nil {
			return 0, err
		}
		end := pos + chunk
		if end > len(data) {
			end = len(data)
		}
		copy(buf[4:], data[pos:end])
		if prev == 0 {
			head = pgno
		} else {
			prevBuf[0] = byte(pgno)
			prevBuf[1] = byte(pgno >> 8)
			prevBuf[2] = byte(pgno >> 16)
			prevBuf[3] = byte(pgno >> 24)
		}
		prev, prevBuf = pgno, buf
	}
	return head, nil
}

// freeOverflowChain releases the chain headed at head.
func (t *Tree) freeOverflowChain(head uint32) error {
	for head != 0 {
		buf, err := t.store.Get(head)
		if err != nil {
			return err
		}
		next := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
		if err := t.store.Free(head); err != nil {
			return err
		}
		head = next
	}
	return nil
}

// cellValue reassembles the full value of leaf cell i, following any
// overflow chain.
func (t *Tree) cellValue(p *page, i int) ([]byte, error) {
	_, local, total, ovfl := p.leafCellInfo(i)
	out := make([]byte, 0, total)
	out = append(out, local...)
	chunk := t.overflowCapacity()
	for ovfl != 0 && len(out) < total {
		buf, err := t.store.Get(ovfl)
		if err != nil {
			return nil, err
		}
		n := total - len(out)
		if n > chunk {
			n = chunk
		}
		out = append(out, buf[4:4+n]...)
		ovfl = uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	}
	if len(out) != total {
		return nil, fmt.Errorf("btree: truncated overflow chain (%d of %d bytes)", len(out), total)
	}
	return out, nil
}

// dropCell removes leaf cell i, releasing its overflow chain first.
func (t *Tree) dropCell(p *page, i int) error {
	if _, _, _, ovfl := p.leafCellInfo(i); ovfl != 0 {
		if err := t.freeOverflowChain(ovfl); err != nil {
			return err
		}
	}
	p.deleteCellAt(i)
	return nil
}

type splitResult struct {
	split bool
	sep   []byte // max key of the left (original) page
	right uint32 // page holding the upper half
}

// insert descends to the leaf, placing the pre-encoded cell and
// splitting on the way back up.
func (t *Tree) insert(pgno uint32, key, cell []byte) (splitResult, error) {
	p, err := t.page(pgno)
	if err != nil {
		return splitResult{}, err
	}
	if p.isLeaf() {
		i, found := searchLeaf(p, key)
		t.store.MarkDirty(pgno)
		if found {
			if err := t.dropCell(p, i); err != nil {
				return splitResult{}, err
			}
		}
		if p.freeSpace() >= len(cell)+2 {
			p.insertCellAt(i, cell)
			return splitResult{}, nil
		}
		return t.splitLeaf(p, i, cell)
	}

	child, idx := routeInterior(p, key)
	res, err := t.insert(child, key, cell)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// The child split: child keeps the lower half, res.right holds the
	// upper half, res.sep is the max key of the lower half. Insert a new
	// cell (child, sep) at idx and redirect the old slot to the right
	// sibling.
	t.store.MarkDirty(pgno)
	newCell := encodeInteriorCell(child, res.sep)
	if idx == p.nCells() {
		// child was the rightmost pointer.
		p.setRightChild(res.right)
	} else {
		p.setInteriorChild(idx, res.right)
	}
	if p.freeSpace() >= len(newCell)+2 {
		p.insertCellAt(idx, newCell)
		return splitResult{}, nil
	}
	return t.splitInterior(p, idx, newCell)
}

// setInteriorChild rewrites the child pointer of interior cell i in
// place.
func (p *page) setInteriorChild(i int, child uint32) {
	off := p.cellPtr(i)
	p.buf[off] = byte(child)
	p.buf[off+1] = byte(child >> 8)
	p.buf[off+2] = byte(child >> 16)
	p.buf[off+3] = byte(child >> 24)
}

// collectCells returns the raw encoded cells of p with pending inserted
// at index idx.
func collectCells(p *page, idx int, pending []byte) [][]byte {
	n := p.nCells()
	cells := make([][]byte, 0, n+1)
	for i := 0; i < n; i++ {
		off := p.cellPtr(i)
		sz := p.cellSize(i)
		c := make([]byte, sz)
		copy(c, p.buf[off:off+sz])
		cells = append(cells, c)
	}
	cells = append(cells[:idx], append([][]byte{pending}, cells[idx:]...)...)
	return cells
}

// splitLeaf distributes the page's cells plus the pending cell across
// the page and a fresh right sibling, by byte volume.
func (t *Tree) splitLeaf(p *page, idx int, pending []byte) (splitResult, error) {
	cells := collectCells(p, idx, pending)
	total := 0
	for _, c := range cells {
		total += len(c)
	}
	// Left keeps cells until it holds at least half the bytes.
	split, acc := 0, 0
	for split < len(cells)-1 {
		acc += len(cells[split])
		split++
		if acc >= total/2 {
			break
		}
	}
	rightNo, _, err := t.store.Allocate()
	if err != nil {
		return splitResult{}, err
	}
	right, err := t.page(rightNo)
	if err != nil {
		return splitResult{}, err
	}
	t.store.MarkDirty(rightNo)
	right.init(pageLeaf)
	for i, c := range cells[split:] {
		right.insertCellAt(i, c)
	}
	p.init(pageLeaf)
	for i, c := range cells[:split] {
		p.insertCellAt(i, c)
	}
	lastKey := keyOfLeafCell(cells[split-1])
	sep := make([]byte, len(lastKey))
	copy(sep, lastKey)
	return splitResult{split: true, sep: sep, right: rightNo}, nil
}

// splitInterior distributes interior cells across the page and a fresh
// right sibling; the middle cell's key moves up as the separator and its
// child becomes the left page's rightmost pointer.
func (t *Tree) splitInterior(p *page, idx int, pending []byte) (splitResult, error) {
	cells := collectCells(p, idx, pending)
	oldRight := p.rightChild()
	mid := len(cells) / 2
	midChild, midKey := decodeInteriorCell(cells[mid])

	rightNo, _, err := t.store.Allocate()
	if err != nil {
		return splitResult{}, err
	}
	right, err := t.page(rightNo)
	if err != nil {
		return splitResult{}, err
	}
	t.store.MarkDirty(rightNo)
	right.init(pageInterior)
	for i, c := range cells[mid+1:] {
		right.insertCellAt(i, c)
	}
	right.setRightChild(oldRight)

	p.init(pageInterior)
	for i, c := range cells[:mid] {
		p.insertCellAt(i, c)
	}
	p.setRightChild(midChild)

	sep := make([]byte, len(midKey))
	copy(sep, midKey)
	return splitResult{split: true, sep: sep, right: rightNo}, nil
}

func keyOfLeafCell(cell []byte) []byte {
	klRaw := int(cell[0]) | int(cell[1])<<8
	kl := klRaw &^ overflowFlag
	if klRaw&overflowFlag != 0 {
		return cell[6 : 6+kl]
	}
	return cell[4 : 4+kl]
}

func decodeInteriorCell(cell []byte) (uint32, []byte) {
	child := uint32(cell[0]) | uint32(cell[1])<<8 | uint32(cell[2])<<16 | uint32(cell[3])<<24
	kl := int(cell[4]) | int(cell[5])<<8
	return child, cell[6 : 6+kl]
}

// growRoot handles a root split while keeping the root page number
// fixed: the old root's content moves to a new left child and the root
// becomes an interior page over (left, right).
func (t *Tree) growRoot(res splitResult) error {
	root, err := t.page(t.root)
	if err != nil {
		return err
	}
	leftNo, _, err := t.store.Allocate()
	if err != nil {
		return err
	}
	left, err := t.page(leftNo)
	if err != nil {
		return err
	}
	t.store.MarkDirty(leftNo)
	copy(left.buf, root.buf)

	t.store.MarkDirty(t.root)
	root.init(pageInterior)
	root.insertCellAt(0, encodeInteriorCell(leftNo, res.sep))
	root.setRightChild(res.right)
	return nil
}

// Delete removes key, reporting whether it was present. A leaf emptied
// by the deletion is unlinked from its parent and freed; an interior
// page left with only its rightmost pointer collapses into it, and the
// root shrinks when it runs out of separators — so sustained deletions
// return pages instead of hollowing the tree out. (Full sibling
// rebalancing, as in SQLite's balance(), is not performed.)
func (t *Tree) Delete(key []byte) (bool, error) {
	res, err := t.deleteRec(t.root, key)
	if err != nil || !res.deleted {
		return false, err
	}
	// res.emptied for the root leaf is fine (an empty tree); the root
	// cannot collapse because deleteRec shrinks it in place.
	return true, nil
}

// deleteResult reports what the parent must do about a child after a
// recursive deletion.
type deleteResult struct {
	deleted bool
	// emptied: the child is a leaf with no cells; remove its reference
	// and free it.
	emptied bool
	// collapse: the child is an interior page reduced to its rightmost
	// pointer; redirect the reference to this page and free the child.
	collapse uint32
}

func (t *Tree) deleteRec(pgno uint32, key []byte) (deleteResult, error) {
	p, err := t.page(pgno)
	if err != nil {
		return deleteResult{}, err
	}
	if p.isLeaf() {
		i, found := searchLeaf(p, key)
		if !found {
			return deleteResult{}, nil
		}
		t.store.MarkDirty(pgno)
		if err := t.dropCell(p, i); err != nil {
			return deleteResult{}, err
		}
		return deleteResult{deleted: true, emptied: p.nCells() == 0 && pgno != t.root}, nil
	}

	child, idx := routeInterior(p, key)
	res, err := t.deleteRec(child, key)
	if err != nil || !res.deleted {
		return deleteResult{}, err
	}
	switch {
	case res.emptied:
		t.store.MarkDirty(pgno)
		if idx == p.nCells() {
			// The rightmost child vanished: its left neighbour becomes
			// the rightmost pointer.
			lastChild, _ := p.interiorCell(p.nCells() - 1)
			p.setRightChild(lastChild)
			p.deleteCellAt(p.nCells() - 1)
		} else {
			// Dropping cell idx merges its key range into the next
			// child, which keeps the separator ordering intact.
			p.deleteCellAt(idx)
		}
		if err := t.store.Free(child); err != nil {
			return deleteResult{}, err
		}
	case res.collapse != 0:
		t.store.MarkDirty(pgno)
		if idx == p.nCells() {
			p.setRightChild(res.collapse)
		} else {
			p.setInteriorChild(idx, res.collapse)
		}
		if err := t.store.Free(child); err != nil {
			return deleteResult{}, err
		}
	}
	if p.nCells() > 0 {
		return deleteResult{deleted: true}, nil
	}
	// Only the rightmost pointer remains.
	if pgno != t.root {
		return deleteResult{deleted: true, collapse: p.rightChild()}, nil
	}
	// Shrink the root in place (its page number is fixed): absorb the
	// sole remaining child.
	only := p.rightChild()
	cp, err := t.page(only)
	if err != nil {
		return deleteResult{}, err
	}
	t.store.MarkDirty(pgno)
	copy(p.buf, cp.buf)
	if err := t.store.Free(only); err != nil {
		return deleteResult{}, err
	}
	return deleteResult{deleted: true}, nil
}

// Update rewrites the value of an existing key in place (delete +
// insert within the leaf), reporting whether the key existed.
func (t *Tree) Update(key, val []byte) (bool, error) {
	ok, err := t.Has(key)
	if err != nil || !ok {
		return false, err
	}
	return true, t.Put(key, val)
}

// Scan visits all records in ascending key order until fn returns
// false.
func (t *Tree) Scan(fn func(key, val []byte) bool) error {
	_, err := t.scan(t.root, fn)
	return err
}

func (t *Tree) scan(pgno uint32, fn func(key, val []byte) bool) (bool, error) {
	p, err := t.page(pgno)
	if err != nil {
		return false, err
	}
	if p.isLeaf() {
		for i := 0; i < p.nCells(); i++ {
			k, _ := p.leafCell(i)
			kc := make([]byte, len(k))
			copy(kc, k)
			vc, err := t.cellValue(p, i)
			if err != nil {
				return false, err
			}
			if !fn(kc, vc) {
				return false, nil
			}
		}
		return true, nil
	}
	for i := 0; i < p.nCells(); i++ {
		child, _ := p.interiorCell(i)
		cont, err := t.scan(child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return t.scan(p.rightChild(), fn)
}

// Count returns the number of records in the tree.
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Check verifies the tree's structural invariants: uniform leaf depth,
// sorted keys, separator bounds, and per-page accounting. It returns a
// descriptive error on the first violation.
func (t *Tree) Check() error {
	depth := -1
	var last []byte
	haveLast := false
	var walk func(pgno uint32, d int, ub []byte, haveUB bool) error
	walk = func(pgno uint32, d int, ub []byte, haveUB bool) error {
		p, err := t.page(pgno)
		if err != nil {
			return err
		}
		if err := p.checkAccounting(); err != nil {
			return fmt.Errorf("page %d: %w", pgno, err)
		}
		if p.isLeaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("page %d: leaf at depth %d, expected %d", pgno, d, depth)
			}
			for i := 0; i < p.nCells(); i++ {
				k, _ := p.leafCell(i)
				if haveLast && bytes.Compare(last, k) >= 0 {
					return fmt.Errorf("page %d: key order violation at cell %d", pgno, i)
				}
				if haveUB && bytes.Compare(k, ub) > 0 {
					return fmt.Errorf("page %d: key exceeds separator bound", pgno)
				}
				last = append(last[:0], k...)
				haveLast = true
				// Overflow chains must resolve to exactly the declared
				// total length.
				if _, err := t.cellValue(p, i); err != nil {
					return fmt.Errorf("page %d cell %d: %w", pgno, i, err)
				}
			}
			return nil
		}
		if p.nCells() == 0 {
			return fmt.Errorf("page %d: interior page with no cells", pgno)
		}
		for i := 0; i < p.nCells(); i++ {
			child, sep := p.interiorCell(i)
			if haveUB && bytes.Compare(sep, ub) > 0 {
				return fmt.Errorf("page %d: separator exceeds parent bound", pgno)
			}
			if err := walk(child, d+1, sep, true); err != nil {
				return err
			}
		}
		return walk(p.rightChild(), d+1, ub, haveUB)
	}
	return walk(t.root, 0, nil, false)
}

// checkAccounting validates the page's internal layout: pointers inside
// the content area, no overlap with the pointer array, and contentStart
// consistency.
func (p *page) checkAccounting() error {
	n := p.nCells()
	arrayEnd := headerSize + 2*n
	cs := p.contentStart()
	if cs < arrayEnd || cs > p.usable {
		return fmt.Errorf("contentStart %d outside [%d,%d]", cs, arrayEnd, p.usable)
	}
	for i := 0; i < n; i++ {
		off := p.cellPtr(i)
		sz := p.cellSize(i)
		if off < cs || off+sz > p.usable {
			return fmt.Errorf("cell %d span [%d,%d) outside content area [%d,%d)", i, off, off+sz, cs, p.usable)
		}
	}
	return nil
}

// Drop releases every page of the tree — leaves, interior pages,
// overflow chains, and the root — back to the store. The tree must not
// be used afterwards.
func (t *Tree) Drop() error {
	var walk func(pgno uint32) error
	walk = func(pgno uint32) error {
		p, err := t.page(pgno)
		if err != nil {
			return err
		}
		if p.isLeaf() {
			for i := 0; i < p.nCells(); i++ {
				if _, _, _, ovfl := p.leafCellInfo(i); ovfl != 0 {
					if err := t.freeOverflowChain(ovfl); err != nil {
						return err
					}
				}
			}
			return t.store.Free(pgno)
		}
		for i := 0; i < p.nCells(); i++ {
			child, _ := p.interiorCell(i)
			if err := walk(child); err != nil {
				return err
			}
		}
		if err := walk(p.rightChild()); err != nil {
			return err
		}
		return t.store.Free(pgno)
	}
	return walk(t.root)
}

// Depth reports the tree height (0 for a lone leaf root).
func (t *Tree) Depth() (int, error) {
	d := 0
	pgno := t.root
	for {
		p, err := t.page(pgno)
		if err != nil {
			return 0, err
		}
		if p.isLeaf() {
			return d, nil
		}
		child, _ := p.interiorCell(0)
		pgno = child
		d++
	}
}
