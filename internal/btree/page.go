// Package btree implements the SQLite-style B+tree the database engine
// stores records in: fixed-size pages holding a cell-pointer array that
// grows forward from the page header and cell content allocated backward
// from the page end.
//
// The layout reproduces the dirty-byte behaviour §5.2 measures: an
// insert appends a new cell into the free gap and touches a small,
// localized region, while deletes (and therefore updates) compact the
// content area to avoid fragmentation and touch a large portion of the
// page — which is why differential logging helps inserts the most
// (Table 2).
//
// The package also implements the early-split variant of §5.4: every
// page keeps its last ReservedTail bytes (24 in the paper) unused so a
// WAL frame header plus the page fit exactly into one file-system block.
package btree

import (
	"encoding/binary"
	"fmt"
)

// Page type bytes.
const (
	pageLeaf     = 1
	pageInterior = 2
)

// Page header layout (both page types share one 12-byte header):
//
//	[0]      page type
//	[1]      unused
//	[2:4]    cell count (uint16)
//	[4:6]    content start: lowest offset of allocated cell content
//	[6:8]    unused (fragment accounting placeholder)
//	[8:12]   rightmost child page (interior pages only)
//	[12:]    cell pointer array, 2 bytes per cell
const (
	hdrType         = 0
	hdrNCells       = 2
	hdrContentStart = 4
	hdrRightChild   = 8
	headerSize      = 12
)

// page wraps one page buffer with layout accessors. It is a transient
// view; the underlying buffer belongs to the PageStore.
type page struct {
	no     uint32
	buf    []byte
	usable int // len(buf) - reserved tail
}

func (p *page) typ() int        { return int(p.buf[hdrType]) }
func (p *page) isLeaf() bool    { return p.buf[hdrType] == pageLeaf }
func (p *page) nCells() int     { return int(binary.LittleEndian.Uint16(p.buf[hdrNCells:])) }
func (p *page) setNCells(n int) { binary.LittleEndian.PutUint16(p.buf[hdrNCells:], uint16(n)) }
func (p *page) contentStart() int {
	return int(binary.LittleEndian.Uint16(p.buf[hdrContentStart:]))
}
func (p *page) setContentStart(v int) {
	binary.LittleEndian.PutUint16(p.buf[hdrContentStart:], uint16(v))
}
func (p *page) rightChild() uint32 { return binary.LittleEndian.Uint32(p.buf[hdrRightChild:]) }
func (p *page) setRightChild(c uint32) {
	binary.LittleEndian.PutUint32(p.buf[hdrRightChild:], c)
}

// init formats the page as an empty leaf or interior page.
func (p *page) init(typ int) {
	p.buf[hdrType] = byte(typ)
	p.buf[1] = 0
	p.setNCells(0)
	p.setContentStart(p.usable)
	binary.LittleEndian.PutUint16(p.buf[6:], 0)
	p.setRightChild(0)
}

// cellPtr returns the content offset of cell i.
func (p *page) cellPtr(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[headerSize+2*i:]))
}

func (p *page) setCellPtr(i, off int) {
	binary.LittleEndian.PutUint16(p.buf[headerSize+2*i:], uint16(off))
}

// freeSpace reports the bytes available in the gap between the pointer
// array and the content area.
func (p *page) freeSpace() int {
	return p.contentStart() - (headerSize + 2*p.nCells())
}

// Leaf cell: [keyLen u16][valLen u16][key][value]
//
// When the value is too large to store locally, the keyLen field's top
// bit (overflowFlag) is set and the cell becomes
//
//	[keyLen|flag u16][valTotal u16][localLen u16][key][local value][overflow pgno u32]
//
// with the remainder of the value on a chain of overflow pages, each
// laid out as [next pgno u32][payload...], like SQLite's overflow
// chains.
//
// Interior cell: [child u32][keyLen u16][key]

const overflowFlag = 0x8000

func leafCellSize(key, val []byte) int { return 4 + len(key) + len(val) }

func overflowCellSize(keyLen, localLen int) int { return 6 + keyLen + localLen + 4 }

func interiorCellSize(key []byte) int { return 6 + len(key) }

// leafCell reads the key and the locally stored value bytes of leaf
// cell i. The returned slices alias the page buffer. For overflowing
// cells, val is only the local prefix; use Tree.cellValue for the full
// value.
func (p *page) leafCell(i int) (key, val []byte) {
	key, local, _, _ := p.leafCellInfo(i)
	return key, local
}

// leafCellInfo decodes leaf cell i: key, local value bytes, the total
// value length, and the overflow chain head (0 = fully local).
func (p *page) leafCellInfo(i int) (key, local []byte, total int, ovfl uint32) {
	off := p.cellPtr(i)
	klRaw := binary.LittleEndian.Uint16(p.buf[off:])
	kl := int(klRaw &^ overflowFlag)
	total = int(binary.LittleEndian.Uint16(p.buf[off+2:]))
	if klRaw&overflowFlag == 0 {
		key = p.buf[off+4 : off+4+kl]
		local = p.buf[off+4+kl : off+4+kl+total]
		return key, local, total, 0
	}
	ll := int(binary.LittleEndian.Uint16(p.buf[off+4:]))
	key = p.buf[off+6 : off+6+kl]
	local = p.buf[off+6+kl : off+6+kl+ll]
	ovfl = binary.LittleEndian.Uint32(p.buf[off+6+kl+ll:])
	return key, local, total, ovfl
}

// interiorCell reads the child pointer and separator key of interior
// cell i. The key aliases the page buffer.
func (p *page) interiorCell(i int) (child uint32, key []byte) {
	off := p.cellPtr(i)
	child = binary.LittleEndian.Uint32(p.buf[off:])
	kl := int(binary.LittleEndian.Uint16(p.buf[off+4:]))
	key = p.buf[off+6 : off+6+kl]
	return child, key
}

// cellSize reports the content size of cell i.
func (p *page) cellSize(i int) int {
	off := p.cellPtr(i)
	if p.isLeaf() {
		klRaw := binary.LittleEndian.Uint16(p.buf[off:])
		kl := int(klRaw &^ overflowFlag)
		if klRaw&overflowFlag != 0 {
			ll := int(binary.LittleEndian.Uint16(p.buf[off+4:]))
			return overflowCellSize(kl, ll)
		}
		vl := int(binary.LittleEndian.Uint16(p.buf[off+2:]))
		return 4 + kl + vl
	}
	kl := int(binary.LittleEndian.Uint16(p.buf[off+4:]))
	return 6 + kl
}

// allocCell carves size bytes from the content area and returns the
// offset, or -1 if the free gap cannot hold size plus one pointer slot.
func (p *page) allocCell(size int) int {
	if p.freeSpace() < size+2 {
		return -1
	}
	off := p.contentStart() - size
	p.setContentStart(off)
	return off
}

// insertCellAt inserts raw cell content at pointer-array index i,
// shifting later pointers. Caller must have verified capacity via
// allocCell semantics; insertCellAt panics when out of space (a bug in
// the split logic, not a user error).
func (p *page) insertCellAt(i int, cell []byte) {
	off := p.allocCell(len(cell))
	if off < 0 {
		panic(fmt.Sprintf("btree: page %d overflow inserting %d bytes (free %d)", p.no, len(cell), p.freeSpace()))
	}
	copy(p.buf[off:], cell)
	n := p.nCells()
	copy(p.buf[headerSize+2*(i+1):headerSize+2*(n+1)], p.buf[headerSize+2*i:headerSize+2*n])
	p.setCellPtr(i, off)
	p.setNCells(n + 1)
}

// deleteCellAt removes cell i and compacts the content area so no
// fragmentation remains — the shifting behaviour that makes delete and
// update transactions dirty a large portion of the page (§5.2).
func (p *page) deleteCellAt(i int) {
	n := p.nCells()
	// Drop the pointer.
	copy(p.buf[headerSize+2*i:headerSize+2*(n-1)], p.buf[headerSize+2*(i+1):headerSize+2*n])
	p.setNCells(n - 1)
	p.compact()
}

// compact repacks all cell content against the end of the usable area,
// preserving cell order.
func (p *page) compact() {
	n := p.nCells()
	type span struct {
		idx, off, size int
	}
	spans := make([]span, n)
	total := 0
	for i := 0; i < n; i++ {
		sz := p.cellSize(i)
		spans[i] = span{i, p.cellPtr(i), sz}
		total += sz
	}
	// Copy content out and re-lay it in.
	tmp := make([]byte, total)
	pos := 0
	for i := range spans {
		copy(tmp[pos:], p.buf[spans[i].off:spans[i].off+spans[i].size])
		spans[i].off = pos // now an offset into tmp
		pos += spans[i].size
	}
	writeAt := p.usable
	for i := 0; i < n; i++ {
		writeAt -= spans[i].size
		copy(p.buf[writeAt:], tmp[spans[i].off:spans[i].off+spans[i].size])
		p.setCellPtr(i, writeAt)
	}
	p.setContentStart(writeAt)
}

// encodeLeafCell builds a leaf cell for key/val.
func encodeLeafCell(key, val []byte) []byte {
	cell := make([]byte, leafCellSize(key, val))
	binary.LittleEndian.PutUint16(cell[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(cell[2:], uint16(len(val)))
	copy(cell[4:], key)
	copy(cell[4+len(key):], val)
	return cell
}

// encodeOverflowCell builds a leaf cell whose value spills to an
// overflow chain headed at ovfl.
func encodeOverflowCell(key, local []byte, total int, ovfl uint32) []byte {
	cell := make([]byte, overflowCellSize(len(key), len(local)))
	binary.LittleEndian.PutUint16(cell[0:], uint16(len(key))|overflowFlag)
	binary.LittleEndian.PutUint16(cell[2:], uint16(total))
	binary.LittleEndian.PutUint16(cell[4:], uint16(len(local)))
	copy(cell[6:], key)
	copy(cell[6+len(key):], local)
	binary.LittleEndian.PutUint32(cell[6+len(key)+len(local):], ovfl)
	return cell
}

// encodeInteriorCell builds an interior cell for child/key.
func encodeInteriorCell(child uint32, key []byte) []byte {
	cell := make([]byte, interiorCellSize(key))
	binary.LittleEndian.PutUint32(cell[0:], child)
	binary.LittleEndian.PutUint16(cell[4:], uint16(len(key)))
	copy(cell[6:], key)
	return cell
}
