package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCursorEmptyTree(t *testing.T) {
	tr, _ := newTree(t, 0)
	c := tr.NewCursor()
	ok, err := c.First()
	if err != nil || ok {
		t.Fatalf("First on empty tree = (%v,%v)", ok, err)
	}
	if c.Valid() {
		t.Fatal("cursor valid on empty tree")
	}
}

func TestCursorFullIteration(t *testing.T) {
	tr, _ := newTree(t, 0)
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	c := tr.NewCursor()
	ok, err := c.First()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for ok {
		k, v, err := c.Record()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(k, key(count)) || !bytes.Equal(v, val(count)) {
			t.Fatalf("record %d = %q", count, k)
		}
		count++
		ok, err = c.Next()
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != n {
		t.Fatalf("iterated %d records, want %d", count, n)
	}
}

func TestCursorSeek(t *testing.T) {
	tr, _ := newTree(t, 0)
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Put(key(i), val(i))
	}
	c := tr.NewCursor()
	// Exact hit.
	ok, err := c.Seek(key(42))
	if err != nil || !ok {
		t.Fatalf("Seek(42) = (%v,%v)", ok, err)
	}
	if k, _ := c.Key(); !bytes.Equal(k, key(42)) {
		t.Fatalf("Seek(42) landed on %q", k)
	}
	// Between keys: lands on the next even key.
	ok, _ = c.Seek(key(43))
	if k, _ := c.Key(); !ok || !bytes.Equal(k, key(44)) {
		t.Fatalf("Seek(43) landed on %q", k)
	}
	// Past the end.
	ok, err = c.Seek(key(99))
	if err != nil || ok {
		t.Fatalf("Seek past end = (%v,%v)", ok, err)
	}
}

func TestCursorSkipsEmptyLeaves(t *testing.T) {
	tr, _ := newTree(t, 0)
	for i := 0; i < 400; i++ {
		tr.Put(key(i), val(i))
	}
	// Empty out a middle range, leaving hollow leaves in place.
	for i := 100; i < 300; i++ {
		tr.Delete(key(i))
	}
	c := tr.NewCursor()
	ok, err := c.Seek(key(100))
	if err != nil || !ok {
		t.Fatalf("Seek into hole = (%v,%v)", ok, err)
	}
	if k, _ := c.Key(); !bytes.Equal(k, key(300)) {
		t.Fatalf("Seek into hole landed on %q, want key 300", k)
	}
	// Full iteration sees exactly the live records.
	count := 0
	for ok, _ = c.First(); ok; ok, _ = c.Next() {
		count++
	}
	if count != 200 {
		t.Fatalf("iterated %d, want 200", count)
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := newTree(t, 0)
	for i := 0; i < 50; i++ {
		tr.Put(key(i), val(i))
	}
	var got []string
	err := tr.ScanRange(key(10), key(15), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != string(key(10)) || got[4] != string(key(14)) {
		t.Fatalf("range = %v", got)
	}
	// Open-ended range.
	n := 0
	tr.ScanRange(key(45), nil, func(_, _ []byte) bool { n++; return true })
	if n != 5 {
		t.Fatalf("open range visited %d", n)
	}
	// Early stop.
	n = 0
	tr.ScanRange(key(0), nil, func(_, _ []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanPrefix(t *testing.T) {
	tr, _ := newTree(t, 0)
	for _, k := range []string{"a/1", "a/2", "a/3", "b/1", "ab", "a"} {
		tr.Put([]byte(k), []byte("v"))
	}
	var got []string
	tr.ScanPrefix([]byte("a/"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a/1", "a/2", "a/3"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan = %v", got)
		}
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := prefixEnd([]byte("ab")); !bytes.Equal(got, []byte("ac")) {
		t.Fatalf("prefixEnd(ab) = %q", got)
	}
	if got := prefixEnd([]byte{0x61, 0xFF}); !bytes.Equal(got, []byte{0x62}) {
		t.Fatalf("prefixEnd(a\\xff) = %x", got)
	}
	if got := prefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Fatalf("prefixEnd(\\xff\\xff) = %x, want nil", got)
	}
}

func TestCursorReadUnpositionedPanics(t *testing.T) {
	tr, _ := newTree(t, 0)
	c := tr.NewCursor()
	defer func() {
		if recover() == nil {
			t.Fatal("reading unpositioned cursor did not panic")
		}
	}()
	c.Key()
}

// Property: cursor iteration equals sorted model-map iteration after
// arbitrary mutations, for both First and arbitrary Seeks.
func TestPropertyCursorMatchesSortedModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _ := newTree(t, ReservedTail)
		model := map[string]string{}
		for op := 0; op < 500; op++ {
			k := fmt.Sprintf("k%05d", rng.Intn(300))
			if rng.Intn(4) == 0 {
				tr.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", op)
				if tr.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			}
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		// Full iteration.
		c := tr.NewCursor()
		i := 0
		ok, err := c.First()
		for ; ok && err == nil; ok, err = c.Next() {
			k, v, e := c.Record()
			if e != nil || i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
				return false
			}
			i++
		}
		if err != nil || i != len(keys) {
			return false
		}

		// Random seeks.
		for trial := 0; trial < 20; trial++ {
			target := fmt.Sprintf("k%05d", rng.Intn(320))
			want := sort.SearchStrings(keys, target)
			ok, err := c.Seek([]byte(target))
			if err != nil {
				return false
			}
			if want == len(keys) {
				if ok {
					return false
				}
				continue
			}
			k, _ := c.Key()
			if !ok || string(k) != keys[want] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
