package btree

import "bytes"

// Cursor iterates a tree in ascending key order. It holds a descent
// stack into the tree, like SQLite's BtCursor. A cursor is invalidated
// by any mutation of the tree; position-then-read without interleaved
// writes, or re-Seek after writing.
type Cursor struct {
	t     *Tree
	stack []cursorFrame
	valid bool
}

type cursorFrame struct {
	pgno uint32
	idx  int // next cell index to visit at this level
}

// NewCursor returns an unpositioned cursor; call First or Seek.
func (t *Tree) NewCursor() *Cursor { return &Cursor{t: t} }

// First positions the cursor at the smallest key. ok is false for an
// empty tree.
func (c *Cursor) First() (bool, error) {
	c.stack = c.stack[:0]
	pgno := c.t.root
	for {
		p, err := c.t.page(pgno)
		if err != nil {
			c.valid = false
			return false, err
		}
		c.stack = append(c.stack, cursorFrame{pgno: pgno, idx: 0})
		if p.isLeaf() {
			return c.settle()
		}
		child, _ := p.interiorCell(0)
		pgno = child
	}
}

// Seek positions the cursor at the smallest key >= target. ok is false
// when no such key exists.
func (c *Cursor) Seek(target []byte) (bool, error) {
	c.stack = c.stack[:0]
	pgno := c.t.root
	for {
		p, err := c.t.page(pgno)
		if err != nil {
			c.valid = false
			return false, err
		}
		if p.isLeaf() {
			idx, _ := searchLeaf(p, target)
			c.stack = append(c.stack, cursorFrame{pgno: pgno, idx: idx})
			return c.settle()
		}
		child, idx := routeInterior(p, target)
		c.stack = append(c.stack, cursorFrame{pgno: pgno, idx: idx})
		pgno = child
	}
}

// settle ensures the top-of-stack leaf position references an existing
// cell, advancing through ancestors when a leaf is exhausted (including
// empty leaves left by deletions).
func (c *Cursor) settle() (bool, error) {
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		p, err := c.t.page(top.pgno)
		if err != nil {
			c.valid = false
			return false, err
		}
		if p.isLeaf() {
			if top.idx < p.nCells() {
				c.valid = true
				return true, nil
			}
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		// Interior: idx counts visited children; nCells()+1 children
		// exist (the rightmost pointer is the last).
		top.idx++
		if top.idx > p.nCells() {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		// Descend to the leftmost leaf of the next child.
		pgno := p.rightChild()
		if top.idx < p.nCells() {
			pgno, _ = p.interiorCell(top.idx)
		}
		for {
			ch, err := c.t.page(pgno)
			if err != nil {
				c.valid = false
				return false, err
			}
			c.stack = append(c.stack, cursorFrame{pgno: pgno, idx: 0})
			if ch.isLeaf() {
				break
			}
			pgno, _ = ch.interiorCell(0)
		}
	}
	c.valid = false
	return false, nil
}

// Valid reports whether the cursor references a record.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns a copy of the current record's key. Only valid cursors
// may be read.
func (c *Cursor) Key() ([]byte, error) {
	k, _, err := c.current()
	return k, err
}

// Value returns a copy of the current record's value.
func (c *Cursor) Value() ([]byte, error) {
	_, v, err := c.current()
	return v, err
}

// Record returns copies of the current key and value.
func (c *Cursor) Record() (key, value []byte, err error) {
	return c.current()
}

func (c *Cursor) current() ([]byte, []byte, error) {
	if !c.valid {
		panic("btree: read of unpositioned cursor")
	}
	top := c.stack[len(c.stack)-1]
	p, err := c.t.page(top.pgno)
	if err != nil {
		return nil, nil, err
	}
	k, _ := p.leafCell(top.idx)
	kc := make([]byte, len(k))
	copy(kc, k)
	vc, err := c.t.cellValue(p, top.idx)
	if err != nil {
		return nil, nil, err
	}
	return kc, vc, nil
}

// Next advances to the following key. ok is false past the last record.
func (c *Cursor) Next() (bool, error) {
	if !c.valid {
		return false, nil
	}
	c.stack[len(c.stack)-1].idx++
	return c.settle()
}

// ScanRange visits records with start <= key < end (nil end = no upper
// bound) until fn returns false.
func (t *Tree) ScanRange(start, end []byte, fn func(key, val []byte) bool) error {
	c := t.NewCursor()
	ok, err := c.Seek(start)
	if err != nil {
		return err
	}
	for ok {
		k, v, err := c.Record()
		if err != nil {
			return err
		}
		if end != nil && bytes.Compare(k, end) >= 0 {
			return nil
		}
		if !fn(k, v) {
			return nil
		}
		ok, err = c.Next()
		if err != nil {
			return err
		}
	}
	return nil
}

// ScanPrefix visits records whose key begins with prefix, in order.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, val []byte) bool) error {
	return t.ScanRange(prefix, prefixEnd(prefix), func(k, v []byte) bool {
		return fn(k, v)
	})
}

// prefixEnd returns the smallest key greater than every key with the
// given prefix, or nil when no upper bound exists (all-0xFF prefix).
func prefixEnd(prefix []byte) []byte {
	end := make([]byte, len(prefix))
	copy(end, prefix)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
