package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pager"
)

// TestCommitsProceedDuringBackfill drives the tentpole property with
// real goroutines (so the race detector sees the interleaving): a
// writer commits transactions while the checkpoint's phase B writeback
// is in flight, and both the frozen generation and the overlapping
// commits survive into the post-checkpoint state.
func TestCommitsProceedDuringBackfill(t *testing.T) {
	e := newEnv(t)
	cfg := VariantUHLSDiff()
	w := e.open(t, cfg)

	expect := make(map[uint32][]byte)
	for i := 0; i < 4; i++ {
		pgno := uint32(2 + i)
		img := fullPage(byte(0x50 + i))
		commitPages(t, w, map[uint32][]byte{pgno: img})
		expect[pgno] = img
	}

	// The hook parks the checkpointer inside phase B (no lock held) and
	// waits for the writer goroutine to land a commit — a deterministic
	// overlap, not a sleep-and-hope race.
	entered := make(chan struct{})
	release := make(chan struct{})
	w.SetCrashHook(func(s string) {
		if s == StepCkptAfterPages {
			close(entered)
			<-release
		}
	})
	overlap2 := patchedPage(expect[2], 1000, 80, 0x66)
	overlap7 := fullPage(0x67)
	commitDone := make(chan error, 1)
	go func() {
		<-entered
		commitDone <- w.CommitTransaction([]pager.Frame{
			{Pgno: 2, Data: overlap2},
			{Pgno: 7, Data: overlap7},
		})
		close(release)
	}()
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	w.SetCrashHook(nil)
	if err := <-commitDone; err != nil {
		t.Fatalf("overlapping commit: %v", err)
	}
	expect[2] = overlap2
	expect[7] = overlap7

	// The overlapping frames were carried past the watermark: they are
	// still in the log, and every page reads back current.
	if w.FramesSinceCheckpoint() == 0 {
		t.Fatal("overlapping commit's frames were dropped by the checkpoint")
	}
	for pgno, img := range expect {
		v, ok := w.PageVersion(pgno)
		if !ok || !bytes.Equal(v, img) {
			t.Fatalf("page %d wrong after overlapped checkpoint", pgno)
		}
	}
	// A second round drains the carried-over frames.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := w.FramesSinceCheckpoint(); n != 0 {
		t.Fatalf("frames after second checkpoint = %d, want 0", n)
	}
	for pgno, img := range expect {
		buf := make([]byte, 4096)
		if err := e.db.ReadPage(pgno, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, img) {
			t.Fatalf("database file stale for page %d after full drain", pgno)
		}
	}
}

// TestReaderMarkSurvivesCheckpoint pins a snapshot mark taken while a
// checkpoint's phase B is parked, then verifies PageVersionAt at that
// mark still resolves after the round completes — the watermark
// carried the reader's frames.
func TestReaderMarkSurvivesCheckpoint(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	img1 := fullPage(0x11)
	commitPages(t, w, map[uint32][]byte{2: img1})

	entered := make(chan struct{})
	release := make(chan struct{})
	w.SetCrashHook(func(s string) {
		if s == StepCkptAfterPages {
			close(entered)
			<-release
		}
	})
	type markRead struct {
		mark int
		img  []byte
		ok   bool
	}
	got := make(chan markRead, 1)
	go func() {
		<-entered
		// Reader opens mid-checkpoint: its mark covers the frozen
		// generation's frames plus nothing new.
		mark := w.Mark()
		close(release)
		v, ok := w.PageVersionAt(2, mark)
		got <- markRead{mark, v, ok}
	}()
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w.SetCrashHook(nil)
	r := <-got
	if r.ok && !bytes.Equal(r.img, img1) {
		t.Fatal("mid-checkpoint read returned a wrong image")
	}
	// After the round, the same mark must still resolve correctly:
	// either from surviving frames, or as a miss whose database-file
	// fallback the backfill made exact.
	v, ok := w.PageVersionAt(2, r.mark)
	if !ok {
		v = make([]byte, 4096)
		if err := e.db.ReadPage(2, v); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(v, img1) {
		t.Fatal("reader's mark invalidated by the checkpoint round")
	}
}

// BenchmarkPageVersionAt shows the per-page index at work: resolving a
// page with a fixed number of its own frames costs the same whether the
// rest of the log holds 64 or 4096 unrelated frames. Before the index,
// PageVersionAt scanned the whole history and the large case was ~64x
// slower.
func BenchmarkPageVersionAt(b *testing.B) {
	for _, unrelated := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("unrelated=%d", unrelated), func(b *testing.B) {
			e := newEnv(b)
			w := e.open(b, VariantUHLSDiff())

			target := fullPage(0xAA)
			commitPages(b, w, map[uint32][]byte{2: target})
			for i := 0; i < 8; i++ {
				target = patchedPage(target, (i*97)%4000, 32, byte(i))
				commitPages(b, w, map[uint32][]byte{2: target})
			}
			// Unrelated churn on other pages, small diffs to keep the
			// log within the simulated device.
			base := fullPage(0xBB)
			commitPages(b, w, map[uint32][]byte{3: base})
			for i := 0; i < unrelated; i++ {
				base = patchedPage(base, (i*131)%4000, 24, byte(i))
				commitPages(b, w, map[uint32][]byte{3: base})
			}
			mark := w.Mark()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := w.PageVersionAt(2, mark); !ok {
					b.Fatal("target page missing")
				}
			}
		})
	}
}
