// Package core implements NVWAL, the paper's contribution: SQLite
// write-ahead logging kept directly in byte-addressable NVRAM, with
//
//   - byte-granularity differential logging (§3.2): only the dirty
//     portions of a B-tree page are logged, each contiguous dirty extent
//     becoming one WAL frame of (page number, in-page offset, size,
//     payload);
//   - a transaction-aware memory persistency guarantee (§4.1): the
//     expensive cache_line_flush / dmb / persist-barrier sequence is
//     enforced only between the logging phase and the commit-mark write
//     (lazy synchronization), or per log entry (eager synchronization,
//     the baseline of Figures 5 and 6), or only for the commit mark with
//     checksums validating the rest (asynchronous commit, §4.2);
//   - user-level NVRAM heap management (§3.3): large NVRAM blocks are
//     pre-allocated from the kernel heap manager (Heapo) with the
//     pending/in-use tri-state protocol and WAL frames are sub-allocated
//     at user level, saving one kernel crossing per frame.
package core

// Extent is one contiguous dirty byte range within a page.
type Extent struct {
	Off int
	Len int
}

// diffExtents compares two equal-length page images and returns the
// dirty extents of new relative to old. Extents separated by a clean gap
// smaller than gapMerge are coalesced — flushing is cache-line
// granular, so logging two extents within one line saves nothing
// (§3.2's "truncate the preceding and trailing clean regions" applied
// per dirty region).
func diffExtents(old, new []byte, gapMerge int) []Extent {
	return diffExtentsInto(nil, old, new, gapMerge)
}

// diffExtentsInto is diffExtents appending into out[:0], so a caller
// with a commit loop can reuse one backing array across transactions.
func diffExtentsInto(out []Extent, old, new []byte, gapMerge int) []Extent {
	if len(old) != len(new) {
		panic("core: diffExtents requires equal-length images")
	}
	out = out[:0]
	i := 0
	for i < len(new) {
		if old[i] == new[i] {
			i++
			continue
		}
		start := i
		for i < len(new) && old[i] != new[i] {
			i++
		}
		if n := len(out); n > 0 && start-(out[n-1].Off+out[n-1].Len) < gapMerge {
			out[n-1].Len = i - out[n-1].Off
		} else {
			out = append(out, Extent{Off: start, Len: i - start})
		}
	}
	return out
}

// applyExtent patches page with payload at off.
func applyExtent(page []byte, off int, payload []byte) {
	copy(page[off:], payload)
}

// extentBytes sums the payload volume of a set of extents.
func extentBytes(extents []Extent) int {
	n := 0
	for _, e := range extents {
		n += e.Len
	}
	return n
}

// trailingZeros counts the clean (zero) tail of a page image, the
// region §3.2 truncates from a full-page frame.
func trailingZeros(p []byte) int {
	n := 0
	for i := len(p) - 1; i >= 0 && p[i] == 0; i-- {
		n++
	}
	return n
}
