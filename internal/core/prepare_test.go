package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/memsim"
	"repro/internal/pager"
)

// resolverFor returns a PreparedResolver that commits exactly the ids
// in decided.
func resolverFor(decided ...uint64) func(uint64) bool {
	set := make(map[uint64]bool, len(decided))
	for _, g := range decided {
		set[g] = true
	}
	return func(g uint64) bool { return set[g] }
}

func prepareOne(t *testing.T, w *NVWAL, pgno uint32, fill byte, gtx uint64) {
	t.Helper()
	if err := w.PrepareTransaction([]pager.Frame{{Pgno: pgno, Data: fullPage(fill)}}, gtx); err != nil {
		t.Fatalf("PrepareTransaction(gtx=%d): %v", gtx, err)
	}
}

func TestPrepareCompletePublishes(t *testing.T) {
	for _, v := range allVariants() {
		t.Run(v.Cfg.Label(), func(t *testing.T) {
			e := newEnv(t)
			w := e.open(t, v.Cfg)
			commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
			prepareOne(t, w, 3, 0x22, 7)
			// Prepared but undecided: nothing is visible yet.
			if _, ok := w.PageVersion(3); ok {
				t.Fatal("prepared frames visible before CompletePrepared")
			}
			if got := w.PreparedGtx(); got != 7 {
				t.Fatalf("PreparedGtx = %d, want 7", got)
			}
			txnsBefore := e.m.Count("transactions")
			if err := w.CompletePrepared(7); err != nil {
				t.Fatal(err)
			}
			got, ok := w.PageVersion(3)
			if !ok || !bytes.Equal(got, fullPage(0x22)) {
				t.Fatalf("PageVersion(3) after complete wrong (ok=%v)", ok)
			}
			if w.PreparedGtx() != 0 {
				t.Fatal("PreparedGtx nonzero after complete")
			}
			if d := e.m.Count("transactions") - txnsBefore; d != 1 {
				t.Fatalf("complete counted %d transactions, want 1", d)
			}
			// The engine accepts ordinary commits again.
			commitPages(t, w, map[uint32][]byte{4: fullPage(0x33)})
		})
	}
}

func TestPrepareAbortUnwinds(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
	blocksBefore := w.Blocks()
	prepareOne(t, w, 3, 0x22, 9)
	if err := w.AbortPrepared(9); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.PageVersion(3); ok {
		t.Fatal("aborted prepared frames visible")
	}
	if got := w.Blocks(); got != blocksBefore {
		t.Fatalf("abort leaked blocks: %d, want %d", got, blocksBefore)
	}
	// The log is intact: commits proceed and survive a reboot.
	commitPages(t, w, map[uint32][]byte{4: fullPage(0x33)})
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 1)
	if got, ok := w2.PageVersion(4); !ok || !bytes.Equal(got, fullPage(0x33)) {
		t.Fatalf("post-abort commit lost across reboot (ok=%v)", ok)
	}
	if got, ok := w2.PageVersion(2); !ok || !bytes.Equal(got, fullPage(0x11)) {
		t.Fatalf("pre-abort commit lost across reboot (ok=%v)", ok)
	}
}

func TestPrepareBlocksOtherWork(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
	prepareOne(t, w, 3, 0x22, 5)
	if err := w.CommitTransaction([]pager.Frame{{Pgno: 4, Data: fullPage(0x44)}}); !errors.Is(err, ErrPreparedPending) {
		t.Fatalf("commit during pending prepare: %v, want ErrPreparedPending", err)
	}
	if err := w.PrepareTransaction([]pager.Frame{{Pgno: 5, Data: fullPage(0x55)}}, 6); !errors.Is(err, ErrPreparedPending) {
		t.Fatalf("second prepare: %v, want ErrPreparedPending", err)
	}
	if err := w.Checkpoint(); !errors.Is(err, pager.ErrCheckpointPending) {
		t.Fatalf("checkpoint during pending prepare: %v, want ErrCheckpointPending", err)
	}
	if err := w.CompletePrepared(99); !errors.Is(err, ErrNoPrepared) {
		t.Fatalf("complete of wrong gtx: %v, want ErrNoPrepared", err)
	}
	if err := w.CompletePrepared(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after complete: %v", err)
	}
	if err := w.AbortPrepared(5); !errors.Is(err, ErrNoPrepared) {
		t.Fatalf("abort with nothing pending: %v, want ErrNoPrepared", err)
	}
}

func TestPrepareRejectsBadGtx(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	if err := w.PrepareTransaction(nil, 0); err == nil {
		t.Fatal("gtx 0 accepted")
	}
	if err := w.PrepareTransaction(nil, 1<<63); err == nil {
		t.Fatal("gtx with top bit accepted")
	}
}

func TestEmptyPrepareIsTriviallyAtomic(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	if err := w.PrepareTransaction(nil, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.CompletePrepared(3); err != nil {
		t.Fatal(err)
	}
	// And the abort flavor.
	if err := w.PrepareTransaction(nil, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.AbortPrepared(4); err != nil {
		t.Fatal(err)
	}
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
}

// TestInDoubtRecovery is the heart of cross-shard crash atomicity: a
// crash after prepare leaves the decision to the resolver at recovery.
func TestInDoubtRecovery(t *testing.T) {
	for _, v := range allVariants() {
		t.Run(v.Cfg.Label(), func(t *testing.T) {
			for _, decided := range []bool{true, false} {
				e := newEnv(t)
				w := e.open(t, v.Cfg)
				commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
				prepareOne(t, w, 3, 0x22, 42)
				_ = w
				cfg := v.Cfg
				if decided {
					cfg.PreparedResolver = resolverFor(42)
				} else {
					cfg.PreparedResolver = resolverFor() // coordinator never decided
				}
				w2 := e.reopen(t, cfg, memsim.FailDropAll, 7)
				got, ok := w2.PageVersion(3)
				if decided {
					if v.Cfg.Sync == SyncChecksum {
						// Async commit may legally lose the un-flushed frames;
						// all-or-nothing still holds if they vanished.
						if ok && !bytes.Equal(got, fullPage(0x22)) {
							t.Fatalf("[%s decided] partial prepared state survived", v.Name)
						}
					} else if !ok || !bytes.Equal(got, fullPage(0x22)) {
						t.Fatalf("[%s] decided in-doubt transaction lost (ok=%v)", v.Name, ok)
					}
				} else if ok {
					t.Fatalf("[%s] undecided in-doubt transaction survived", v.Name)
				}
				// Async commit (SyncChecksum) may legally lose unflushed
				// committed frames at a power cut; every other scheme
				// guarantees the earlier commit survives.
				if v.Cfg.Sync != SyncChecksum {
					if got, ok := w2.PageVersion(2); !ok || !bytes.Equal(got, fullPage(0x11)) {
						t.Fatalf("[%s] earlier committed transaction lost (ok=%v)", v.Name, ok)
					}
				}
				// The recovered log keeps working either way.
				commitPages(t, w2, map[uint32][]byte{4: fullPage(0x44)})
				w3 := e.reopen(t, cfg, memsim.FailDropAll, 8)
				if v.Cfg.Sync != SyncChecksum {
					if got, ok := w3.PageVersion(4); !ok || !bytes.Equal(got, fullPage(0x44)) {
						t.Fatalf("[%s] commit after in-doubt recovery lost (ok=%v)", v.Name, ok)
					}
				}
			}
		})
	}
}

// TestInDoubtResolvedThenCheckpoint: a flipped in-doubt transaction is a
// first-class committed transaction — checkpointing and reopening after
// it must preserve it.
func TestInDoubtResolvedThenCheckpoint(t *testing.T) {
	e := newEnv(t)
	cfg := VariantUHLSDiff()
	w := e.open(t, cfg)
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
	prepareOne(t, w, 3, 0x22, 42)
	cfg.PreparedResolver = resolverFor(42)
	w2 := e.reopen(t, cfg, memsim.FailDropAll, 3)
	if got, ok := w2.PageVersion(3); !ok || !bytes.Equal(got, fullPage(0x22)) {
		t.Fatalf("resolved transaction not visible after recovery (ok=%v)", ok)
	}
	if err := w2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_ = e.reopen(t, cfg, memsim.FailDropAll, 4)
	// The checkpoint backfilled the resolved transaction into the
	// database file; the log is empty, so read the page from the file.
	img := make([]byte, 4096)
	if err := e.db.ReadPage(3, img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, fullPage(0x22)) {
		t.Fatal("resolved transaction lost after checkpoint+reboot")
	}
}

// TestRecycledBlockCannotResurrectPrepared pins down a resurrection
// found by the sharded fuzzer (seed 99, step 160): a prepared-but-
// undecided transaction is truncated at recovery and its block freed;
// the next append recycles that block and re-links it at the very
// chain position it was cut from; power fails before any new frame
// persists. The stale prepared frames are chain-valid again in the
// durable image, and once later transactions advance the coordinator's
// high-water mark, a subsequent recovery would flip them committed —
// resurrecting an aborted transaction. appendBlock's first-slot scrub
// must make that impossible.
func TestRecycledBlockCannotResurrectPrepared(t *testing.T) {
	e := newEnv(t)
	cfg := VariantE() // kernel heap: one block per frame group, so the
	// prepared transaction lands at the head of its own block
	w := e.open(t, cfg)
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
	prepareOne(t, w, 3, 0x22, 5)

	// Crash in doubt; the coordinator never decided, so recovery
	// truncates the prepared transaction and frees its block.
	undecided := cfg
	undecided.PreparedResolver = resolverFor()
	w2 := e.reopen(t, undecided, memsim.FailDropAll, 1)
	if _, ok := w2.PageVersion(3); ok {
		t.Fatal("undecided prepared transaction survived first recovery")
	}

	// A new commit recycles the freed block and persists the link to
	// it, then power fails before any frame lands in it.
	crashed, err := runUntil(w2, StepAfterLinkPersist, func() error {
		return w2.CommitTransaction([]pager.Frame{{Pgno: 4, Data: fullPage(0x33)}})
	})
	if !crashed {
		t.Fatalf("link-persist crash never fired (err=%v)", err)
	}

	// By now the coordinator has decided LATER transactions, so its
	// high-water mark covers gtx 5. The aborted transaction must not
	// come back.
	decided := cfg
	decided.PreparedResolver = func(gtx uint64) bool { return gtx <= 9 }
	w3 := e.reopen(t, decided, memsim.FailDropAll, 2)
	if _, ok := w3.PageVersion(3); ok {
		t.Fatal("aborted prepared transaction resurrected from a recycled block")
	}
	if got, ok := w3.PageVersion(2); !ok || !bytes.Equal(got, fullPage(0x11)) {
		t.Fatalf("earlier committed transaction lost (ok=%v)", ok)
	}
	commitPages(t, w3, map[uint32][]byte{4: fullPage(0x44)})
}

// TestPrepareCrashSteps drives the crash hook through every step of the
// prepare append and verifies all-or-nothing for each failure point
// under both resolver decisions.
func TestPrepareCrashSteps(t *testing.T) {
	for _, step := range WriteSteps() {
		for _, decided := range []bool{true, false} {
			e := newEnv(t)
			cfg := VariantUHLSDiff()
			w := e.open(t, cfg)
			commitPages(t, w, map[uint32][]byte{2: fullPage(0x11)})
			crashed, perr := runUntil(w, step, func() error {
				return w.PrepareTransaction([]pager.Frame{{Pgno: 3, Data: fullPage(0x22)}}, 42)
			})
			if !crashed && perr != nil {
				t.Fatalf("step %s: prepare failed without crashing: %v", step, perr)
			}
			if decided {
				cfg.PreparedResolver = resolverFor(42)
			} else {
				cfg.PreparedResolver = nil
			}
			w2 := e.reopen(t, cfg, memsim.FailDropAll, 11)
			got, ok := w2.PageVersion(3)
			if ok && !bytes.Equal(got, fullPage(0x22)) {
				t.Fatalf("step %s decided=%v: partial page state", step, decided)
			}
			// Before the provisional mark persists the transaction may
			// legally vanish even if decided; it must never survive
			// undecided with a flipped mark.
			if !decided && ok {
				// Only legal if the prepared mark never became durable AND
				// a commit mark appeared — impossible; fail hard.
				t.Fatalf("step %s: undecided prepared transaction survived", step)
			}
			if got, ok := w2.PageVersion(2); !ok || !bytes.Equal(got, fullPage(0x11)) {
				t.Fatalf("step %s decided=%v: earlier commit lost (ok=%v)", step, decided, ok)
			}
			commitPages(t, w2, map[uint32][]byte{4: fullPage(0x44)})
		}
	}
}
