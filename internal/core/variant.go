package core

// Variant presets matching the schemes evaluated in §5. The Figure 7
// legend names map to configurations as follows:
//
//	LS          lazy sync,      full-page frames, kernel nvmalloc/frame
//	LS+Diff     lazy sync,      differential,     kernel nvmalloc/frame
//	CS+Diff     checksum async, differential,     kernel nvmalloc/frame
//	UH+LS       lazy sync,      full-page frames, user-level heap
//	UH+LS+Diff  lazy sync,      differential,     user-level heap
//	UH+CS+Diff  checksum async, differential,     user-level heap
//
// Eager ("E" in Figures 5 and 6) is the per-entry synchronization
// baseline the ordering-constraint experiments compare against.

// VariantE is eager synchronization (Figure 4(b)).
func VariantE() Config { return Config{Sync: SyncEager} }

// VariantLS is NVWAL with lazy synchronization only.
func VariantLS() Config { return Config{Sync: SyncLazy} }

// VariantLSDiff adds byte-granularity differential logging.
func VariantLSDiff() Config { return Config{Sync: SyncLazy, Differential: true} }

// VariantCSDiff is asynchronous commit with differential logging.
func VariantCSDiff() Config { return Config{Sync: SyncChecksum, Differential: true} }

// VariantUHLS adds the user-level heap to lazy synchronization.
func VariantUHLS() Config { return Config{Sync: SyncLazy, UserHeap: true} }

// VariantUHLSDiff is the paper's recommended scheme: user heap, lazy
// synchronization, and differential logging.
func VariantUHLSDiff() Config {
	return Config{Sync: SyncLazy, Differential: true, UserHeap: true}
}

// VariantUHCSDiff is the fastest (but probabilistically unsafe)
// configuration: user heap, asynchronous commit, differential logging.
func VariantUHCSDiff() Config {
	return Config{Sync: SyncChecksum, Differential: true, UserHeap: true}
}

// VariantSP is the §4.4 strict-persistency ablation: no flush code at
// all, every log store's persist ordered by hardware.
func VariantSP() Config {
	return Config{Sync: SyncStrictPersistency, Differential: true, UserHeap: true}
}

// VariantEP is the §4.4 epoch (relaxed) persistency ablation: hardware
// epoch barriers instead of cache_line_flush syscalls.
func VariantEP() Config {
	return Config{Sync: SyncEpochPersistency, Differential: true, UserHeap: true}
}

// NamedConfig pairs a Figure 7 legend label with its configuration.
type NamedConfig struct {
	Name string
	Cfg  Config
}

// Figure7Variants returns the six NVWAL schemes of Figure 7, in the
// paper's legend order.
func Figure7Variants() []NamedConfig {
	return []NamedConfig{
		{"NVWAL LS", VariantLS()},
		{"NVWAL LS+Diff", VariantLSDiff()},
		{"NVWAL CS+Diff", VariantCSDiff()},
		{"NVWAL UH+LS", VariantUHLS()},
		{"NVWAL UH+LS+Diff", VariantUHLSDiff()},
		{"NVWAL UH+CS+Diff", VariantUHCSDiff()},
	}
}

// PersistencyVariants returns the §4.4 comparison set: the software
// schemes (eager, lazy) against the hardware persistency models the
// paper left as future work due to hardware unavailability.
func PersistencyVariants() []NamedConfig {
	return []NamedConfig{
		{"Eager (software)", Config{Sync: SyncEager, Differential: true, UserHeap: true}},
		{"Lazy (software)", VariantUHLSDiff()},
		{"Strict persistency", VariantSP()},
		{"Epoch persistency", VariantEP()},
	}
}
