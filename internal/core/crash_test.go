package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/heapo"
	"repro/internal/memsim"
	"repro/internal/pager"
)

// crashSignal aborts the operation in progress, standing in for the
// instant the power fails.
type crashSignal struct{ step string }

// runUntil executes fn with a hook that panics the first time step is
// reached. It reports whether the step fired (false: the operation
// completed without hitting it).
func runUntil(w *NVWAL, step string, fn func() error) (crashed bool, err error) {
	fired := false
	w.hook = func(s string) {
		if s == step && !fired {
			fired = true
			panic(crashSignal{step: s})
		}
	}
	defer func() {
		w.hook = nil
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	err = fn()
	return false, err
}

// writeSteps are the Algorithm 1 crash points (§4.3).
var writeSteps = []string{
	StepAfterPreMalloc,
	StepAfterLinkWrite,
	StepAfterLinkPersist,
	StepAfterSetUsed,
	StepAfterMemcpy,
	StepAfterLogFlush,
	StepAfterCommitWrite,
	StepAfterCommitFlush,
}

// TestCrashMatrixWriteFrames injects a power failure at every step of
// Algorithm 1, under every sync scheme and both conservative and
// adversarial line-survival policies, and verifies transaction
// atomicity: recovery yields either the complete second transaction or
// none of it, with the first transaction always intact.
func TestCrashMatrixWriteFrames(t *testing.T) {
	policies := []struct {
		name   string
		policy memsim.FailPolicy
	}{
		{"dropall", memsim.FailDropAll},
		{"adversarial", memsim.FailAdversarial},
	}
	for _, v := range allVariants() {
		for _, step := range writeSteps {
			for _, pol := range policies {
				for _, seed := range []int64{1, 7, 42} {
					name := fmt.Sprintf("%s/%s/%s/seed%d", v.Cfg.Label(), step, pol.name, seed)
					t.Run(name, func(t *testing.T) {
						runWriteCrashCase(t, v.Cfg, step, pol.policy, seed)
					})
				}
			}
		}
	}
}

func runWriteCrashCase(t *testing.T, cfg Config, step string, policy memsim.FailPolicy, seed int64) {
	e := newEnv(t)
	w := e.open(t, cfg)

	// Transaction 1: establish pages 2 and 3.
	t1p2 := fullPage(0xA1)
	t1p3 := fullPage(0xA2)
	commitPages(t, w, map[uint32][]byte{2: t1p2, 3: t1p3})

	// Transaction 2: modify both and add page 4, crashing at the step.
	t2p2 := patchedPage(t1p2, 100, 50, 0xB1)
	t2p3 := patchedPage(t1p3, 2000, 50, 0xB2)
	t2p4 := fullPage(0xB3)
	crashed, err := runUntil(w, step, func() error {
		return w.CommitTransaction([]pager.Frame{
			{Pgno: 2, Data: t2p2},
			{Pgno: 3, Data: t2p3},
			{Pgno: 4, Data: t2p4},
		})
	})
	if !crashed && err != nil {
		t.Fatalf("commit failed without crashing: %v", err)
	}

	w2 := e.reopen(t, cfg, policy, seed)

	v2, ok2 := w2.PageVersion(2)
	v3, ok3 := w2.PageVersion(3)
	v4, ok4 := w2.PageVersion(4)

	txn2 := ok4 && bytes.Equal(v4, t2p4)
	if txn2 {
		if !ok2 || !bytes.Equal(v2, t2p2) || !ok3 || !bytes.Equal(v3, t2p3) {
			t.Fatal("transaction 2 partially visible (page 4 committed, 2/3 stale)")
		}
	} else {
		if ok4 {
			t.Fatal("transaction 2 partially visible (page 4 present but wrong)")
		}
		// Checksum-async mode may legitimately lose even transaction 1
		// under a crash (its log entries are never explicitly flushed).
		// Every other scheme guarantees durability of committed work.
		if cfg.Sync != SyncChecksum {
			if !ok2 || !bytes.Equal(v2, t1p2) || !ok3 || !bytes.Equal(v3, t1p3) {
				t.Fatal("transaction 1 lost or corrupted")
			}
		} else if ok2 && !bytes.Equal(v2, t1p2) || ok3 && !bytes.Equal(v3, t1p3) {
			t.Fatal("checksum mode surfaced a corrupted page instead of dropping it")
		}
	}
	if !crashed && cfg.Sync != SyncChecksum && policy == memsim.FailDropAll {
		// The commit completed before the step was reached; under the
		// conservative policy it must be durable.
		if !txn2 {
			t.Fatalf("completed commit lost (step %s never fired)", step)
		}
	}

	// The log must remain writable after recovery.
	t3 := fullPage(0xC1)
	commitPages(t, w2, map[uint32][]byte{5: t3})
	w3 := e.reopen(t, cfg, memsim.FailDropAll, seed+100)
	if cfg.Sync != SyncChecksum {
		if v5, ok := w3.PageVersion(5); !ok || !bytes.Equal(v5, t3) {
			t.Fatal("post-recovery commit lost")
		}
	}
}

// TestCrashDuringCommitMarkPersistIsAtomic drives the §4.1 claim: the
// commit mark's 8-byte write either fully persists or not, so recovery
// never sees a half-committed transaction, across many adversarial
// seeds.
func TestCrashDuringCommitMarkPersistIsAtomic(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		e := newEnv(t)
		w := e.open(t, VariantUHLSDiff())
		base := fullPage(0xD0)
		commitPages(t, w, map[uint32][]byte{2: base})
		next := patchedPage(base, 500, 100, 0xD1)
		crashed, _ := runUntil(w, StepAfterCommitWrite, func() error {
			return w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: next}})
		})
		if !crashed {
			t.Fatal("commit-write step never fired")
		}
		w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailAdversarial, seed)
		v, ok := w2.PageVersion(2)
		if !ok {
			t.Fatalf("seed %d: transaction 1 lost", seed)
		}
		if !bytes.Equal(v, base) && !bytes.Equal(v, next) {
			t.Fatalf("seed %d: page 2 is neither pre- nor post-transaction image", seed)
		}
	}
}

// checkpointSteps are the §4.3 checkpoint crash points, in protocol
// order across the incremental pipeline's three phases.
var checkpointSteps = []string{
	StepCkptAfterRecord,
	StepCkptAfterSalt,
	StepCkptAfterPages,
	StepCkptAfterSync,
	StepCkptAfterState,
	StepCkptMidFree,
	StepCkptAfterFree,
}

// TestCrashMatrixCheckpoint injects failures throughout checkpointing
// and verifies no committed data is ever lost: every page is readable
// from the log or the database file with its last committed content.
func TestCrashMatrixCheckpoint(t *testing.T) {
	for _, step := range checkpointSteps {
		t.Run(step, func(t *testing.T) {
			e := newEnv(t)
			cfg := VariantUHLSDiff()
			w := e.open(t, cfg)

			expect := make(map[uint32][]byte)
			for i := 0; i < 6; i++ {
				pgno := uint32(2 + i)
				img := fullPage(byte(0x10 + i))
				commitPages(t, w, map[uint32][]byte{pgno: img})
				expect[pgno] = img
			}
			crashed, err := runUntil(w, step, func() error { return w.Checkpoint() })
			if !crashed && err != nil {
				t.Fatalf("checkpoint failed: %v", err)
			}
			if !crashed {
				t.Fatalf("step %s never fired", step)
			}
			w2 := e.reopen(t, cfg, memsim.FailDropAll, 5)
			for pgno, img := range expect {
				got, ok := w2.PageVersion(pgno)
				if !ok {
					got = make([]byte, 4096)
					if err := e.db.ReadPage(pgno, got); err != nil {
						t.Fatal(err)
					}
				}
				if !bytes.Equal(got, img) {
					t.Fatalf("page %d lost after checkpoint crash at %s", pgno, step)
				}
			}
			// Replay the checkpoint and keep going (§4.3: "simply replay
			// the checkpointing process").
			if w2.FramesSinceCheckpoint() > 0 {
				if err := w2.Checkpoint(); err != nil {
					t.Fatalf("checkpoint replay: %v", err)
				}
			}
			commitPages(t, w2, map[uint32][]byte{9: fullPage(0xEE)})
			if v, ok := w2.PageVersion(9); !ok || v[0] != 0xEE {
				t.Fatal("log unusable after checkpoint crash recovery")
			}
		})
	}
}

// TestCrashCheckpointWithConcurrentWriter exercises the incremental
// pipeline's defining property: commits proceed into the new generation
// while phase B's writeback runs outside the lock. At each lock-free
// step the crash hook injects a fresh commit before the power fails,
// and recovery must surface both the frozen generation's pages (via the
// backfilled database file or the ckpt record replay) and the injected
// commit (carried over past the in-flight round's watermark).
func TestCrashCheckpointWithConcurrentWriter(t *testing.T) {
	// Only phase B steps run without w.mu; injecting a commit from the
	// hook at a phase A/C step would self-deadlock rather than model a
	// concurrent writer.
	lockFree := []string{StepCkptAfterPages, StepCkptAfterSync}
	policies := []struct {
		name   string
		policy memsim.FailPolicy
	}{
		{"dropall", memsim.FailDropAll},
		{"adversarial", memsim.FailAdversarial},
	}
	for _, step := range lockFree {
		for _, pol := range policies {
			for _, seed := range []int64{3, 11} {
				name := fmt.Sprintf("%s/%s/seed%d", step, pol.name, seed)
				t.Run(name, func(t *testing.T) {
					runCkptWriterCrashCase(t, step, pol.policy, seed)
				})
			}
		}
	}
}

func runCkptWriterCrashCase(t *testing.T, step string, policy memsim.FailPolicy, seed int64) {
	e := newEnv(t)
	cfg := VariantUHLSDiff()
	w := e.open(t, cfg)

	expect := make(map[uint32][]byte)
	for i := 0; i < 5; i++ {
		pgno := uint32(2 + i)
		img := fullPage(byte(0x20 + i))
		commitPages(t, w, map[uint32][]byte{pgno: img})
		expect[pgno] = img
	}
	// The injected transaction: a diff on page 2 plus a brand-new page,
	// committed mid-checkpoint into the new generation.
	injected2 := patchedPage(expect[2], 300, 64, 0x77)
	injected8 := fullPage(0x78)
	var commitErr error
	fired := false
	w.hook = func(s string) {
		if s != step || fired {
			return
		}
		fired = true
		commitErr = w.CommitTransaction([]pager.Frame{
			{Pgno: 2, Data: injected2},
			{Pgno: 8, Data: injected8},
		})
		panic(crashSignal{step: s})
	}
	func() {
		defer func() {
			w.hook = nil
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
			}
		}()
		if err := w.Checkpoint(); err != nil {
			t.Errorf("checkpoint failed before crash: %v", err)
		}
	}()
	if !fired {
		t.Fatalf("step %s never fired", step)
	}
	if commitErr != nil {
		t.Fatalf("mid-checkpoint commit failed: %v", commitErr)
	}
	expect[2] = injected2
	expect[8] = injected8

	w2 := e.reopen(t, cfg, policy, seed)
	for pgno, img := range expect {
		got, ok := w2.PageVersion(pgno)
		if !ok {
			got = make([]byte, 4096)
			if err := e.db.ReadPage(pgno, got); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(got, img) {
			t.Fatalf("page %d wrong after crash at %s with concurrent commit", pgno, step)
		}
	}
	// The recovered log keeps accepting work.
	commitPages(t, w2, map[uint32][]byte{9: fullPage(0xEF)})
	if v, ok := w2.PageVersion(9); !ok || v[0] != 0xEF {
		t.Fatal("log unusable after concurrent-writer checkpoint crash")
	}
}

// TestPendingBlockReclaimedNotLeaked verifies the §3.3 leak-prevention
// story end to end: a crash right after nv_pre_malloc leaves a pending
// block that ReclaimPending returns to the free pool.
func TestPendingBlockReclaimedNotLeaked(t *testing.T) {
	e := newEnv(t)
	cfg := VariantUHLSDiff()
	cfg.BlockSize = 8192
	w := e.open(t, cfg)
	crashed, _ := runUntil(w, StepAfterPreMalloc, func() error {
		return w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: fullPage(1)}})
	})
	if !crashed {
		t.Fatal("pre-malloc step never fired")
	}
	e.dev.PowerFail(memsim.FailDropAll, 1)
	e.dev.Recover()
	h, err := heapo.Attach(e.dev)
	if err != nil {
		t.Fatal(err)
	}
	before := h.FreePages()
	if n := h.ReclaimPending(); n != 1 {
		t.Fatalf("reclaimed %d pending blocks, want 1", n)
	}
	if h.FreePages() != before+2 {
		t.Fatalf("free pages %d -> %d, want +2 (one 8 KB block)", before, h.FreePages())
	}
}

// TestDanglingLinkCleared covers the crash window between persisting the
// block reference and marking the block in-use: recovery must clear the
// dangling pointer and continue (§4.3 case 2).
func TestDanglingLinkCleared(t *testing.T) {
	e := newEnv(t)
	cfg := VariantUHLSDiff()
	w := e.open(t, cfg)
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x31)})
	// Fill the 8 KB block so the next commit allocates a second one and
	// crashes between link-persist and set-used.
	img := fullPage(0x31)
	for i := 0; i < 3; i++ {
		img = patchedPage(img, i*1000, 900, byte(0x40+i))
		commitPages(t, w, map[uint32][]byte{2: img})
	}
	crashed := false
	for i := 3; i < 40 && !crashed; i++ {
		img2 := patchedPage(img, (i*700)%3000, 900, byte(i))
		c, err := runUntil(w, StepAfterLinkPersist, func() error {
			return w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: img2}})
		})
		if err != nil {
			t.Fatal(err)
		}
		if c {
			crashed = true
		} else {
			img = img2
		}
	}
	if !crashed {
		t.Skip("workload never allocated a second block")
	}
	w2 := e.reopen(t, cfg, memsim.FailDropAll, 9)
	v, ok := w2.PageVersion(2)
	if !ok || !bytes.Equal(v, img) {
		t.Fatal("last committed image lost after dangling-link crash")
	}
	// The cleared link lets the log grow again.
	commitPages(t, w2, map[uint32][]byte{3: fullPage(0x99)})
	if _, ok := w2.PageVersion(3); !ok {
		t.Fatal("log unusable after dangling-link recovery")
	}
}
