package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/pager"
)

// The commit path is zero-copy (DESIGN.md §15): frames are encoded
// straight into reserved NVRAM and the plan/index bookkeeping lives in
// scratch reused across transactions. What remains per commit is only
// what outlives it — the history-payload arena, the replacement version
// image, and amortized map/slice growth. These tests pin that budget so
// a regression (an intermediate frame image creeping back in, a scratch
// buffer dropped) fails loudly.

// soloAllocBudget bounds steady-state allocations for a one-page
// differential commit: one history arena + one version image + slack
// for amortized growth of history/byPage/versions and simulator
// bookkeeping. The pre-audit commit path sat far above this.
const soloAllocBudget = 8.0

func TestSoloCommitAllocs(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	page := fullPage('a')
	commitPages(t, w, map[uint32][]byte{2: page})

	i := byte(0)
	avg := testing.AllocsPerRun(300, func() {
		i++
		page[100] = i
		page[200] = i ^ 0xFF
		if err := w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: page}}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("solo differential commit: %.2f allocs/op", avg)
	if avg > soloAllocBudget {
		t.Fatalf("solo commit allocates %.2f/op, budget %.1f — zero-copy path regressed", avg, soloAllocBudget)
	}
}

func TestGroupCommitAllocs(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	const members = 3
	pages := make([][]byte, members)
	groups := make([][]pager.Frame, members)
	for g := range pages {
		pages[g] = fullPage(byte('a' + g))
		groups[g] = []pager.Frame{{Pgno: uint32(2 + g), Data: pages[g]}}
	}
	if err := w.CommitGroup(groups); err != nil {
		t.Fatal(err)
	}

	// Budget: one arena + one version image per member + amortized
	// growth, with the coalescer's map and output reused across calls.
	const groupAllocBudget = 6.0 * members
	i := byte(0)
	avg := testing.AllocsPerRun(300, func() {
		i++
		for g := range pages {
			pages[g][64*g] = i
		}
		if err := w.CommitGroup(groups); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("group commit (%d members): %.2f allocs/op", members, avg)
	if avg > groupAllocBudget {
		t.Fatalf("group commit allocates %.2f/op, budget %.1f — coalescer or commit scratch regressed", avg, groupAllocBudget)
	}
}

func TestPageVersionIntoAllocs(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	img := fullPage(0x5A)
	commitPages(t, w, map[uint32][]byte{2: img})

	buf := make([]byte, 4096)
	avg := testing.AllocsPerRun(300, func() {
		if !w.PageVersionInto(2, buf) {
			t.Fatal("PageVersionInto lost page 2")
		}
	})
	if avg != 0 {
		t.Fatalf("PageVersionInto allocates %.2f/op, want 0", avg)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("PageVersionInto returned wrong image")
	}

	// Short buffer: the copy truncates to the caller's length — still
	// allocation-free, still the image's prefix.
	short := make([]byte, 100)
	avg = testing.AllocsPerRun(300, func() {
		if !w.PageVersionInto(2, short) {
			t.Fatal("PageVersionInto lost page 2")
		}
	})
	if avg != 0 {
		t.Fatalf("short-buffer PageVersionInto allocates %.2f/op, want 0", avg)
	}
	if !bytes.Equal(short, img[:100]) {
		t.Fatal("short-buffer PageVersionInto returned wrong prefix")
	}
}

// TestCommitStallOnlyWhenContended pins the CommitStallNanos fix: an
// uncontended writer-lock acquisition charges nothing (time.Since is
// positive on every acquisition, so charging unconditionally inflated
// the metric the incremental checkpoint is judged by), while a real
// contention charges the wait.
func TestCommitStallOnlyWhenContended(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	for i := byte(0); i < 10; i++ {
		commitPages(t, w, map[uint32][]byte{2: fullPage(i)})
	}
	if got := e.m.Count(metrics.CommitStallNanos); got != 0 {
		t.Fatalf("uncontended commits charged %dns of commit stall, want 0", got)
	}

	for attempt := 0; attempt < 20; attempt++ {
		w.mu.Lock()
		done := make(chan struct{})
		go func() {
			w.lockWriter()
			w.mu.Unlock()
			close(done)
		}()
		time.Sleep(20 * time.Millisecond)
		w.mu.Unlock()
		<-done
		if e.m.Count(metrics.CommitStallNanos) > 0 {
			return
		}
	}
	t.Fatal("contended lockWriter never charged the stall metric")
}

// TestScratchReuseConcurrentCommits hammers the reused commit scratch
// (plan items, written/hist slices, header buffer, coalescer) from
// concurrent committers and readers. Run under -race (the fuzz-smoke CI
// tier does) it proves the scratch never escapes the writer lock; the
// final images prove commits never bled into each other.
func TestScratchReuseConcurrentCommits(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	const (
		writers = 4
		rounds  = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for s := 0; s < writers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			pgno := uint32(10 + s)
			page := fullPage(byte('A' + s))
			buf := make([]byte, 4096)
			for i := 0; i < rounds; i++ {
				page[i*8] = byte(i)
				if err := w.CommitTransaction([]pager.Frame{{Pgno: pgno, Data: page}}); err != nil {
					errs <- err
					return
				}
				if !w.PageVersionInto(pgno, buf) || buf[i*8] != byte(i) {
					errs <- errReadback(pgno)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for s := 0; s < writers; s++ {
		want := fullPage(byte('A' + s))
		for i := 0; i < rounds; i++ {
			want[i*8] = byte(i)
		}
		got, ok := w.PageVersion(uint32(10 + s))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("writer %d's final image corrupted (ok=%v)", s, ok)
		}
	}
}

type errReadback uint32

func (e errReadback) Error() string { return "immediate readback of committed page failed" }
