package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/dbfile"
	"repro/internal/ext4"
	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/pager"
	"repro/internal/simclock"
)

// newTinyEnv builds an environment whose NVRAM heap holds exactly
// `pages` heap pages, for exhaustion tests.
func newTinyEnv(t testing.TB, pages int) *testEnv {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	dev := nvram.NewDevice(nvram.Config{Size: heapo.SizeForPages(pages)}, clock, m)
	h, err := heapo.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	bd := blockdev.New(blockdev.Config{Pages: 1 << 14}, clock, m, nil)
	fs := ext4.New(bd)
	f, err := fs.Create("test.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{clock: clock, m: m, dev: dev, heap: h, fs: fs, db: dbfile.New(f, 4096)}
}

// TestAbortUnwindsMidAppendExhaustion is the regression test for the
// pre-reservation failure mode: ErrNoSpace striking partway through a
// multi-page append used to leave linked blocks behind and latch the
// log broken forever. With reservation disabled (forcing the legacy
// race), the abort path must free the blocks it linked, restore the
// tail cursor, and leave the log fully usable.
func TestAbortUnwindsMidAppendExhaustion(t *testing.T) {
	e := newTinyEnv(t, 12)
	w := e.open(t, Config{UserHeap: true, Differential: true})
	w.disableReserve = true

	// Commit one page so there is committed state the abort must not
	// disturb.
	if err := w.CommitTransaction([]pager.Frame{{Pgno: 1, Data: fullPage(0x11)}}); err != nil {
		t.Fatalf("seed commit: %v", err)
	}
	freeBefore := e.heap.FreePages()

	// Burn space until a 3-page transaction cannot fit, so its append
	// dies partway through with some blocks already linked.
	var err error
	for i := 0; i < 20; i++ {
		frames := []pager.Frame{
			{Pgno: 10, Data: fullPage(byte(0x20 + i))},
			{Pgno: 11, Data: fullPage(byte(0x40 + i))},
			{Pgno: 12, Data: fullPage(byte(0x60 + i))},
		}
		blocksBefore := w.Blocks()
		freeBefore = e.heap.FreePages()
		if err = w.CommitTransaction(frames); err != nil {
			if !errors.Is(err, ErrLogFull) {
				t.Fatalf("commit error = %v, want ErrLogFull", err)
			}
			if got := w.Blocks(); got != blocksBefore {
				t.Fatalf("abort leaked %d linked blocks", got-blocksBefore)
			}
			if got := e.heap.FreePages(); got != freeBefore {
				t.Fatalf("abort leaked heap pages: free %d, was %d", got, freeBefore)
			}
			break
		}
	}
	if err == nil {
		t.Fatal("12-page heap absorbed 20 three-page transactions without exhausting")
	}

	// The log must NOT be latched broken: checkpoint frees the heap and
	// the same transaction then succeeds.
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after abort: %v", err)
	}
	if err := w.CommitTransaction([]pager.Frame{
		{Pgno: 10, Data: fullPage(0xAA)},
		{Pgno: 11, Data: fullPage(0xBB)},
	}); err != nil {
		t.Fatalf("commit after abort+checkpoint: %v", err)
	}
	img, ok := w.PageVersion(10)
	if !ok || !bytes.Equal(img, fullPage(0xAA)) {
		t.Fatal("page 10 content wrong after recovery from abort")
	}
}

// TestReservationPreventsMidAppendFailure drives a sustained workload
// against a heap sized for fewer than 10 transactions: every commit
// either succeeds or fails up front with ErrLogFull — never with a raw
// heapo.ErrNoSpace — and a checkpoint always unsticks it.
func TestReservationPreventsMidAppendFailure(t *testing.T) {
	e := newTinyEnv(t, 16)
	w := e.open(t, Config{UserHeap: true, Differential: true})

	commits, stalls := 0, 0
	for i := 0; i < 40; i++ {
		fill := byte(i)
		frames := []pager.Frame{{Pgno: uint32(2 + i%3), Data: fullPage(fill)}}
		err := w.CommitTransaction(frames)
		if err == nil {
			commits++
			continue
		}
		if !errors.Is(err, ErrLogFull) {
			t.Fatalf("commit %d: error = %v, want ErrLogFull", i, err)
		}
		if errors.Is(err, heapo.ErrNoSpace) {
			t.Fatalf("commit %d: raw heapo.ErrNoSpace escaped: %v", i, err)
		}
		stalls++
		if err := w.Checkpoint(); err != nil {
			t.Fatalf("checkpoint on full heap: %v", err)
		}
		if err := w.CommitTransaction(frames); err != nil {
			t.Fatalf("commit %d after checkpoint: %v", i, err)
		}
		commits++
	}
	if stalls == 0 {
		t.Fatal("16-page heap never filled over 40 commits; test proves nothing")
	}
	if commits != 40 {
		t.Fatalf("committed %d of 40", commits)
	}
}

// TestCheckpointRunsOnExhaustedHeap is the satellite-2 regression: the
// checkpoint is the only mechanism that frees log space, so it must
// run to completion on a heap with nothing left to allocate.
func TestCheckpointRunsOnExhaustedHeap(t *testing.T) {
	e := newTinyEnv(t, 14)
	w := e.open(t, Config{UserHeap: true, Differential: true})

	// Fill until admission refuses the next transaction.
	filled := false
	for i := 0; i < 30; i++ {
		err := w.CommitTransaction([]pager.Frame{{Pgno: uint32(2 + i), Data: fullPage(byte(i + 1))}})
		if errors.Is(err, ErrLogFull) {
			filled = true
			break
		}
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if !filled {
		t.Fatal("heap never filled")
	}
	before := w.FramesSinceCheckpoint()
	if before == 0 {
		t.Fatal("nothing to checkpoint")
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("checkpoint on exhausted heap: %v", err)
	}
	if got := w.FramesSinceCheckpoint(); got != 0 {
		t.Fatalf("FramesSinceCheckpoint = %d after checkpoint", got)
	}
	// Freed space must actually be allocatable again.
	if err := w.CommitTransaction([]pager.Frame{{Pgno: 99, Data: fullPage(0xEE)}}); err != nil {
		t.Fatalf("commit after checkpoint: %v", err)
	}
}

// TestOpenUsesHeadroomUnderReservation: creating a log needs a header
// block, and that allocation must ride the headroom carve-out so a
// heap fully promised to reservations can still open a log.
func TestOpenUsesHeadroomUnderReservation(t *testing.T) {
	e := newTinyEnv(t, 32)
	// First open sets the headroom carve-out.
	w := e.open(t, Config{UserHeap: true, Name: "first"})
	_ = w

	// Promise everything ordinary admission will give away.
	var held []*heapo.Reservation
	for {
		res, err := e.heap.Reserve(1, 8192)
		if err != nil {
			break
		}
		held = append(held, res)
	}
	if len(held) == 0 {
		t.Fatal("no reservations granted on a 32-page heap")
	}
	// Ordinary allocation is refused...
	if _, err := e.heap.NVMalloc(heapo.PageSize); !errors.Is(err, heapo.ErrNoSpace) {
		t.Fatalf("NVMalloc = %v, want ErrNoSpace", err)
	}
	// ...but a second log still opens: its header allocation is
	// headroom-privileged.
	if _, err := Open(e.heap, e.db, Config{UserHeap: true, Name: "second"}, e.m); err != nil {
		t.Fatalf("Open under full reservation: %v", err)
	}
	for _, r := range held {
		r.Release()
	}
}
