package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pager"
)

// Two-phase commit over commit marks (cross-shard transactions).
//
// A multi-shard transaction is made crash-atomic without any inter-shard
// ordering on the hot path, exploiting the same property Algorithm 1
// already relies on: a frame group is invisible to recovery until the
// 8-byte-atomic mark on its last frame says otherwise.
//
//   - Prepare (per shard): append the shard's frames exactly as a commit
//     would, but write preparedFlag|gtx instead of the commit value as
//     the mark and persist it. The frames are durable yet provisional.
//   - Decide (coordinator): persist gtx into the shared commit-sequence
//     record — one 8-byte-atomic store; this is the transaction's sole
//     commit point.
//   - Complete (per shard): flip the provisional mark to the commit
//     value in place (the mark word is outside the frame CRC chain, so
//     the flip never re-chains) and publish the frames to the volatile
//     index.
//
// Recovery on a shard that crashed between prepare and complete finds a
// prepared mark at its log tail and asks Config.PreparedResolver whether
// the coordinator decided: yes → flip the mark and keep the frames; no →
// truncate them like any uncommitted tail. Because the engine refuses
// ordinary commits and new checkpoint rounds while a prepare is pending,
// prepared frames are always the log tail and at most one transaction
// per shard is ever in doubt.

// PrepareTransaction appends frames under a provisional mark carrying
// the global transaction id gtx (phase one of 2PC). gtx must be nonzero
// and must not use the top bit. On success the transaction is pending:
// the engine accepts no other append until CompletePrepared or
// AbortPrepared resolves it. On failure the log is unwound and intact
// (ErrLogFull is retryable, as on the commit path).
func (w *NVWAL) PrepareTransaction(frames []pager.Frame, gtx uint64) error {
	if gtx == 0 || gtx&preparedFlag != 0 {
		return fmt.Errorf("nvwal: invalid global transaction id %#x", gtx)
	}
	w.lockWriter()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if w.pendingPrep != nil {
		return ErrPreparedPending
	}
	return w.writeFramesMode(frames, true, gtx)
}

// CompletePrepared commits the pending prepared transaction: the
// provisional mark is flipped to the commit value with the same 8-byte-
// atomic persist discipline as a commit mark, and the frames are
// published to the volatile index. Call only after the coordinator's
// decide record is durable.
func (w *NVWAL) CompletePrepared(gtx uint64) error {
	w.lockWriter()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	p := w.pendingPrep
	if p == nil || p.gtx != gtx {
		return fmt.Errorf("%w: gtx %d", ErrNoPrepared, gtx)
	}
	if len(p.written) > 0 {
		last := p.written[len(p.written)-1]
		w.dev.PutUint64(last.addr, commitValue)
		w.step(StepAfterCommitWrite)
		switch w.cfg.Sync {
		case SyncStrictPersistency, SyncEpochPersistency:
			w.dev.Domain().EpochBarrier()
		default:
			w.dev.MemoryBarrier()
			w.dev.Syscall()
			w.dev.Flush(last.addr, last.addr+8)
			w.dev.MemoryBarrier()
			w.dev.PersistBarrier()
		}
		w.step(StepAfterCommitFlush)
	}
	// Publish, exactly as writeFramesMode does for an ordinary commit.
	w.chain = p.chainAfter
	for _, f := range p.hist {
		if _, tracked := w.byPage[f.pgno]; !tracked && !f.full {
			w.base[f.pgno] = w.versions[f.pgno]
		}
		w.byPage[f.pgno] = append(w.byPage[f.pgno], w.histBase+len(w.history))
		w.history = append(w.history, f)
	}
	for pgno, img := range p.newVers {
		w.versions[pgno] = img
	}
	w.pendingPrep = nil
	w.m.Inc(metrics.WALFrames, int64(len(p.written)))
	w.m.Inc(metrics.Transactions, 1)
	return nil
}

// AbortPrepared rolls the pending prepared transaction back: its frames
// are unwound from the log (fresh blocks freed, tail cursor restored,
// first garbage slot scrubbed) exactly like a failed append. Call when
// the coordinator decides abort — the provisional mark was never a
// commit, so nothing was ever visible.
func (w *NVWAL) AbortPrepared(gtx uint64) error {
	w.lockWriter()
	defer w.mu.Unlock()
	p := w.pendingPrep
	if p == nil || p.gtx != gtx {
		return fmt.Errorf("%w: gtx %d", ErrNoPrepared, gtx)
	}
	w.pendingPrep = nil
	if len(p.written) == 0 {
		return nil
	}
	return w.abortAppend(p.undoBlocks, p.undoTail, nil)
}

// PreparedGtx returns the pending prepared transaction's global id, or
// zero when none is pending.
func (w *NVWAL) PreparedGtx() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.pendingPrep == nil {
		return 0
	}
	return w.pendingPrep.gtx
}
