package core

import (
	"bytes"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/dbfile"
	"repro/internal/ext4"
	"repro/internal/heapo"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/pager"
	"repro/internal/simclock"
)

// testEnv bundles the NVRAM heap and a flash-backed database file.
type testEnv struct {
	clock *simclock.Clock
	m     *metrics.Counters
	dev   *nvram.Device
	heap  *heapo.Manager
	fs    *ext4.FS
	db    pager.DBFile
}

func newEnv(t testing.TB) *testEnv {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	dev := nvram.NewDevice(nvram.Config{Size: 8 << 20}, clock, m)
	h, err := heapo.Format(dev)
	if err != nil {
		t.Fatal(err)
	}
	bd := blockdev.New(blockdev.Config{Pages: 1 << 14}, clock, m, nil)
	fs := ext4.New(bd)
	f, err := fs.Create("test.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{clock: clock, m: m, dev: dev, heap: h, fs: fs, db: dbfile.New(f, 4096)}
}

func (e *testEnv) open(t testing.TB, cfg Config) *NVWAL {
	t.Helper()
	w, err := Open(e.heap, e.db, cfg, e.m)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// reopen simulates a whole-system reboot: power-fail both the NVRAM
// domain and the flash file system, run the heap manager's pending-
// block reclamation, and reopen the log.
func (e *testEnv) reopen(t testing.TB, cfg Config, policy memsim.FailPolicy, seed int64) *NVWAL {
	t.Helper()
	e.dev.PowerFail(policy, seed)
	e.dev.Recover()
	e.fs.PowerFail()
	f, err := e.fs.OpenOrCreate("test.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	e.db = dbfile.New(f, 4096)
	h, err := heapo.Attach(e.dev)
	if err != nil {
		t.Fatal(err)
	}
	h.ReclaimPending()
	e.heap = h
	w, err := Open(e.heap, e.db, cfg, e.m)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func fullPage(fill byte) []byte {
	p := make([]byte, 4096)
	for i := range p {
		p[i] = fill
	}
	return p
}

// patchedPage returns base with [off, off+n) overwritten by fill.
func patchedPage(base []byte, off, n int, fill byte) []byte {
	p := make([]byte, len(base))
	copy(p, base)
	for i := off; i < off+n; i++ {
		p[i] = fill
	}
	return p
}

func commitPages(t testing.TB, w *NVWAL, pages map[uint32][]byte) {
	t.Helper()
	var frames []pager.Frame
	for pgno, data := range pages {
		frames = append(frames, pager.Frame{Pgno: pgno, Data: data})
	}
	if err := w.CommitTransaction(frames); err != nil {
		t.Fatal(err)
	}
}

func allVariants() []NamedConfig {
	vs := Figure7Variants()
	return append(vs,
		NamedConfig{"NVWAL E", VariantE()},
		NamedConfig{"NVWAL SP", VariantSP()},
		NamedConfig{"NVWAL EP", VariantEP()},
	)
}

func TestCommitAndPageVersionAllVariants(t *testing.T) {
	for _, v := range allVariants() {
		t.Run(v.Cfg.Label(), func(t *testing.T) {
			e := newEnv(t)
			w := e.open(t, v.Cfg)
			p2 := fullPage(0xAA)
			commitPages(t, w, map[uint32][]byte{2: p2})
			got, ok := w.PageVersion(2)
			if !ok || !bytes.Equal(got, p2) {
				t.Fatalf("PageVersion(2) wrong (ok=%v)", ok)
			}
			if _, ok := w.PageVersion(3); ok {
				t.Fatal("PageVersion invented a page")
			}
		})
	}
}

func TestDifferentialSecondCommitLogsLessData(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x10)
	commitPages(t, w, map[uint32][]byte{2: base})
	logged1 := e.m.Count(MetricLoggedBytes)
	commitPages(t, w, map[uint32][]byte{2: patchedPage(base, 100, 120, 0x20)})
	logged2 := e.m.Count(MetricLoggedBytes) - logged1
	if logged1 < 4096 {
		t.Fatalf("first commit logged %d bytes, want full page", logged1)
	}
	if logged2 > 400 {
		t.Fatalf("differential commit logged %d bytes, want a small frame", logged2)
	}
	// The reconstructed version is still exact.
	got, _ := w.PageVersion(2)
	if !bytes.Equal(got, patchedPage(base, 100, 120, 0x20)) {
		t.Fatal("differential reconstruction mismatch")
	}
}

func TestNonDifferentialLogsFullPages(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLS())
	base := fullPage(0x10)
	commitPages(t, w, map[uint32][]byte{2: base})
	before := e.m.Count(MetricLoggedBytes)
	commitPages(t, w, map[uint32][]byte{2: patchedPage(base, 0, 4, 0x22)})
	delta := e.m.Count(MetricLoggedBytes) - before
	if delta < 4096 {
		t.Fatalf("non-differential commit logged %d bytes, want full page", delta)
	}
}

func TestMultiExtentDiffProducesMultipleFrames(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0)
	commitPages(t, w, map[uint32][]byte{2: base})
	before := e.m.Count(metrics.WALFrames)
	// Two dirty regions far apart -> two frames.
	mod := patchedPage(patchedPage(base, 10, 20, 1), 3000, 20, 2)
	commitPages(t, w, map[uint32][]byte{2: mod})
	if got := e.m.Count(metrics.WALFrames) - before; got != 2 {
		t.Fatalf("logged %d frames, want 2 extents", got)
	}
	got, _ := w.PageVersion(2)
	if !bytes.Equal(got, mod) {
		t.Fatal("multi-extent reconstruction mismatch")
	}
}

func TestIdenticalRewriteLogsNothing(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x33)
	commitPages(t, w, map[uint32][]byte{2: base})
	before := e.m.Count(metrics.WALFrames)
	commitPages(t, w, map[uint32][]byte{2: base})
	if got := e.m.Count(metrics.WALFrames) - before; got != 0 {
		t.Fatalf("identical rewrite logged %d frames", got)
	}
}

func TestUserHeapBatchesAllocations(t *testing.T) {
	// UH allocates one 8 KB block for several frames; the legacy path
	// calls nvmalloc per frame (§3.3).
	allocs := func(cfg Config) int64 {
		e := newEnv(t)
		w := e.open(t, cfg)
		base := fullPage(1)
		commitPages(t, w, map[uint32][]byte{2: base})
		before := e.m.Count(metrics.HeapAlloc)
		for i := 0; i < 8; i++ {
			commitPages(t, w, map[uint32][]byte{2: patchedPage(base, 64*i, 32, byte(3+i))})
		}
		return e.m.Count(metrics.HeapAlloc) - before
	}
	uh, legacy := allocs(VariantUHLSDiff()), allocs(VariantLSDiff())
	if uh >= legacy {
		t.Fatalf("user heap made %d allocations vs legacy %d", uh, legacy)
	}
}

func TestRecoveryAfterCleanReboot(t *testing.T) {
	for _, v := range allVariants() {
		if v.Cfg.Sync == SyncChecksum {
			continue // checksum-async does not guarantee durability
		}
		t.Run(v.Cfg.Label(), func(t *testing.T) {
			e := newEnv(t)
			w := e.open(t, v.Cfg)
			base := fullPage(0x44)
			commitPages(t, w, map[uint32][]byte{2: base, 3: fullPage(0x55)})
			commitPages(t, w, map[uint32][]byte{2: patchedPage(base, 8, 16, 0x66)})
			w2 := e.reopen(t, v.Cfg, memsim.FailDropAll, 7)
			got, ok := w2.PageVersion(2)
			if !ok || !bytes.Equal(got, patchedPage(base, 8, 16, 0x66)) {
				t.Fatal("page 2 lost or stale after reboot")
			}
			got, ok = w2.PageVersion(3)
			if !ok || !bytes.Equal(got, fullPage(0x55)) {
				t.Fatal("page 3 lost after reboot")
			}
			if w2.FramesSinceCheckpoint() == 0 {
				t.Fatal("no frames recovered")
			}
		})
	}
}

func TestCheckpointWritesBackFreesBlocksAndFences(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x77)
	commitPages(t, w, map[uint32][]byte{2: base})
	freeBefore := e.heap.FreePages()
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w.FramesSinceCheckpoint() != 0 || w.Blocks() != 0 {
		t.Fatal("checkpoint left log state behind")
	}
	// Under UserHeap the freed blocks land in the recycle pool (still
	// released from the log, ready for the next pre-malloc without a
	// kernel round trip); without it they go back to the free list.
	if e.heap.FreePages() <= freeBefore && e.heap.RecycledPages() == 0 {
		t.Fatal("checkpoint did not release NVRAM blocks")
	}
	buf := make([]byte, 4096)
	if err := e.db.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, base) {
		t.Fatal("checkpoint did not materialize the page in the db file")
	}
	// Stale frames in recycled blocks must not resurrect.
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 3)
	if got := w2.FramesSinceCheckpoint(); got != 0 {
		t.Fatalf("stale frames resurrected after checkpoint: %d", got)
	}
	// And the log keeps working after a checkpoint.
	commitPages(t, w2, map[uint32][]byte{2: patchedPage(base, 0, 8, 0x88)})
	got, ok := w2.PageVersion(2)
	if !ok || got[0] != 0x88 {
		t.Fatal("post-checkpoint commit broken")
	}
}

func TestFirstFrameAfterCheckpointStaysDifferential(t *testing.T) {
	// The backfill-watermark protocol keeps page images across a
	// checkpoint, so the first post-checkpoint frame of a known page
	// stays differential — its replay base is the image the checkpoint
	// made durable in the database file. Recovery must reconstruct the
	// page from that base.
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x01)
	commitPages(t, w, map[uint32][]byte{2: base})
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := e.m.Count(MetricLoggedBytes)
	want := patchedPage(base, 5, 5, 0x02)
	commitPages(t, w, map[uint32][]byte{2: want})
	delta := e.m.Count(MetricLoggedBytes) - before
	if delta >= 4096 {
		t.Fatalf("first post-checkpoint frame logged %d bytes, want a small diff (backfill base)", delta)
	}
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 5)
	got, ok := w2.PageVersion(2)
	if !ok || !bytes.Equal(got, want) {
		t.Fatal("post-checkpoint differential frame did not replay over the backfilled base")
	}
}

func TestUncommittedBatchDiscardedOnRecovery(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x10)})
	// Write frames without a commit mark (multi-batch transaction
	// interrupted before commit).
	if err := w.WriteFrames([]pager.Frame{{Pgno: 3, Data: fullPage(0x20)}}, false); err != nil {
		t.Fatal(err)
	}
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 11)
	if _, ok := w2.PageVersion(3); ok {
		t.Fatal("uncommitted frame survived recovery")
	}
	if _, ok := w2.PageVersion(2); !ok {
		t.Fatal("committed frame lost")
	}
	// The log must continue correctly after truncating the torn tail.
	commitPages(t, w2, map[uint32][]byte{4: fullPage(0x30)})
	w3 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 12)
	if _, ok := w3.PageVersion(4); !ok {
		t.Fatal("commit after truncated tail lost")
	}
}

func TestLazyCheaperThanEagerEndToEnd(t *testing.T) {
	// The saving appears for multi-frame transactions: eager pays a
	// dmb+persist round per log entry, lazy one round per transaction
	// (§5.1 inserts several records per transaction).
	elapsed := func(cfg Config) int64 {
		e := newEnv(t)
		w := e.open(t, cfg)
		pages := make(map[uint32][]byte, 16)
		for i := 0; i < 16; i++ {
			pages[uint32(2+i)] = fullPage(0x42)
		}
		start := e.clock.Now()
		commitPages(t, w, pages)
		return int64(e.clock.Now() - start)
	}
	lazy, eager := elapsed(VariantLS()), elapsed(VariantE())
	if lazy >= eager {
		t.Fatalf("lazy (%d ns) not cheaper than eager (%d ns)", lazy, eager)
	}
}

func TestChecksumModeSkipsLogFlushes(t *testing.T) {
	// Measure a steady-state commit (the first commit also allocates a
	// block, whose link/metadata flushes are not part of the scheme
	// comparison).
	flushes := func(cfg Config) int64 {
		e := newEnv(t)
		w := e.open(t, cfg)
		base := fullPage(1)
		commitPages(t, w, map[uint32][]byte{2: base}) // warm-up: allocates the block
		before := e.m.Count(metrics.CacheLineFlush)
		commitPages(t, w, map[uint32][]byte{2: patchedPage(base, 50, 40, 2)})
		return e.m.Count(metrics.CacheLineFlush) - before
	}
	cs, ls := flushes(VariantUHCSDiff()), flushes(VariantUHLSDiff())
	if cs >= ls {
		t.Fatalf("checksum-async flushed %d lines, lazy %d", cs, ls)
	}
	if cs > 2 {
		t.Fatalf("checksum-async flushed %d lines, want only the commit mark's", cs)
	}
}

func TestFramesPerBlockStatistic(t *testing.T) {
	// §3.3: with 8 KB blocks and differential logging, several WAL
	// frames share one block (paper: 4.9 on average).
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x05)
	commitPages(t, w, map[uint32][]byte{2: base})
	cur := base
	for i := 0; i < 40; i++ {
		cur = patchedPage(cur, (i*97)%3800, 120, byte(i+1))
		commitPages(t, w, map[uint32][]byte{2: cur})
	}
	frames := float64(e.m.Count(metrics.WALFrames))
	blocks := float64(e.m.Count(MetricBlocks))
	if frames/blocks < 2 {
		t.Fatalf("frames per block = %.1f, want > 2 with differential logging", frames/blocks)
	}
}

func TestLogSurvivesHeapReattachWithoutCrash(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x61)})
	// Re-open the same log in the same process (no power failure).
	w2 := e.open(t, VariantUHLSDiff())
	if _, ok := w2.PageVersion(2); !ok {
		t.Fatal("log not found via the persistent namespace")
	}
}

func TestTooLargeFrameRejected(t *testing.T) {
	e := newEnv(t)
	if _, err := Open(e.heap, e.db, Config{BlockSize: 1024}, e.m); err == nil {
		t.Fatal("block size smaller than a full-page frame accepted")
	}
}

func TestWrongPageSizeRejected(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	err := w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: make([]byte, 100)}})
	if err == nil {
		t.Fatal("short page accepted")
	}
}

func TestEmptyCommitNoop(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	if err := w.CommitTransaction(nil); err != nil {
		t.Fatal(err)
	}
	if w.FramesSinceCheckpoint() != 0 {
		t.Fatal("empty commit logged frames")
	}
}

func TestPageVersionAtReplaysDiffs(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x10)
	m0 := w.Mark()
	commitPages(t, w, map[uint32][]byte{2: base})
	m1 := w.Mark()
	v2 := patchedPage(base, 100, 50, 0x20)
	commitPages(t, w, map[uint32][]byte{2: v2})
	m2 := w.Mark()
	v3 := patchedPage(v2, 3000, 50, 0x30)
	commitPages(t, w, map[uint32][]byte{2: v3})

	if _, ok := w.PageVersionAt(2, m0); ok {
		t.Fatal("mark 0 sees the page")
	}
	if got, ok := w.PageVersionAt(2, m1); !ok || !bytes.Equal(got, base) {
		t.Fatal("mark 1 reconstruction wrong")
	}
	if got, ok := w.PageVersionAt(2, m2); !ok || !bytes.Equal(got, v2) {
		t.Fatal("mark 2 diff replay wrong")
	}
	if got, ok := w.PageVersionAt(2, w.Mark()); !ok || !bytes.Equal(got, v3) {
		t.Fatal("latest replay wrong")
	}
}

func TestSnapshotHistorySurvivesRecovery(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	base := fullPage(0x41)
	commitPages(t, w, map[uint32][]byte{2: base})
	mod := patchedPage(base, 10, 10, 0x42)
	commitPages(t, w, map[uint32][]byte{2: mod})
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 6)
	// Marks within the recovered log reconstruct correctly.
	if got, ok := w2.PageVersionAt(2, w2.Mark()); !ok || !bytes.Equal(got, mod) {
		t.Fatal("history not rebuilt by recovery")
	}
	if got, ok := w2.PageVersionAt(2, 1); !ok || !bytes.Equal(got, base) {
		t.Fatal("early mark not reconstructible after recovery")
	}
}

func TestVariantLabels(t *testing.T) {
	want := map[string]string{
		"NVWAL LS":         "LS",
		"NVWAL LS+Diff":    "LS+Diff",
		"NVWAL CS+Diff":    "CS+Diff",
		"NVWAL UH+LS":      "UH+LS",
		"NVWAL UH+LS+Diff": "UH+LS+Diff",
		"NVWAL UH+CS+Diff": "UH+CS+Diff",
	}
	for _, v := range Figure7Variants() {
		if got := v.Cfg.Label(); got != want[v.Name] {
			t.Errorf("%s: Label() = %q, want %q", v.Name, got, want[v.Name])
		}
	}
	if got := VariantE().Label(); got != "E" {
		t.Errorf("eager label = %q", got)
	}
}
