package core

import (
	"bytes"
	"testing"

	"repro/internal/memsim"
	"repro/internal/metrics"
)

// salvageCfg is the configuration the salvage tests drive: user-heap
// blocks with full-page frames, so frame positions are predictable.
func salvageCfg() Config { return Config{Sync: SyncLazy, UserHeap: true} }

// corruptByte persistently flips one byte of NVRAM, modelling retention
// bit rot at that address.
func corruptByte(w *NVWAL, addr uint64) {
	var b [1]byte
	w.dev.Read(addr, b[:])
	b[0] ^= 0x5A
	w.dev.Write(addr, b[:])
	w.persistRange(addr, 1)
}

// lastFrameAddr returns the device address of the most recently
// appended frame's header (full-page frames only).
func lastFrameAddr(w *NVWAL) uint64 {
	tail := w.blocks[len(w.blocks)-1]
	return tail.Addr + uint64(w.tailUsed-align8(frameHdrSize+4096))
}

// runUntilStep runs fn with a crash hook that aborts execution at the
// named protocol step, modelling power failing at that instant without
// tearing down the process.
func runUntilStep(w *NVWAL, step string, fn func() error) {
	type stop struct{}
	w.SetCrashHook(func(s string) {
		if s == step {
			panic(stop{})
		}
	})
	defer w.SetCrashHook(nil)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stop); !ok {
				panic(r)
			}
		}
	}()
	_ = fn()
}

// TestSalvageTruncatesAtCorruptFrame: bit rot in a middle frame must
// truncate the log at the last whole transaction before it — keeping
// the earlier commit, dropping the damaged one and everything after,
// and leaving the log writable.
func TestSalvageTruncatesAtCorruptFrame(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, salvageCfg())
	imgA := fullPage(0x21)
	commitPages(t, w, map[uint32][]byte{2: imgA})
	commitPages(t, w, map[uint32][]byte{3: fullPage(0x22)})
	frameB := lastFrameAddr(w)
	commitPages(t, w, map[uint32][]byte{4: fullPage(0x23)})

	// Rot one payload byte of the second transaction's frame.
	corruptByte(w, frameB+frameHdrSize+10)

	w2 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 3)
	if got, ok := w2.PageVersion(2); !ok || !bytes.Equal(got, imgA) {
		t.Fatal("transaction before the corrupt frame did not survive")
	}
	if _, ok := w2.PageVersion(3); ok {
		t.Fatal("corrupt frame's transaction survived")
	}
	if _, ok := w2.PageVersion(4); ok {
		t.Fatal("transaction after the corrupt frame survived (non-prefix survivor)")
	}
	rep := w2.Salvage()
	if rep == nil {
		t.Fatal("no salvage report after recovery")
	}
	if rep.FramesKept != 1 || rep.FramesDropped != 2 {
		t.Fatalf("report kept=%d dropped=%d, want 1/2 (%s)", rep.FramesKept, rep.FramesDropped, rep)
	}

	// The truncated log must still accept and retain commits.
	imgD := fullPage(0x24)
	commitPages(t, w2, map[uint32][]byte{5: imgD})
	w3 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 4)
	if got, ok := w3.PageVersion(5); !ok || !bytes.Equal(got, imgD) {
		t.Fatal("commit after salvage did not survive the next crash")
	}
	if got, ok := w3.PageVersion(2); !ok || !bytes.Equal(got, imgA) {
		t.Fatal("kept prefix lost across the next crash")
	}
}

// TestSalvageRebuildsCorruptHeader: a rotten header magic must not
// refuse the open — the log is reinitialized (its content is lost) and
// the database file keeps the last completed checkpoint.
func TestSalvageRebuildsCorruptHeader(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, salvageCfg())
	imgA := fullPage(0x31)
	commitPages(t, w, map[uint32][]byte{2: imgA})
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitPages(t, w, map[uint32][]byte{3: fullPage(0x32)})
	corruptByte(w, w.headerAddr+2) // rot the magic

	w2 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 5)
	rep := w2.Salvage()
	if rep == nil || !rep.HeaderRebuilt || !rep.Damaged() {
		t.Fatalf("header rebuild not reported: %s", rep)
	}
	if _, ok := w2.PageVersion(3); ok {
		t.Fatal("log content survived a header rebuild")
	}
	buf := make([]byte, 4096)
	if err := e.db.ReadPage(2, buf); err != nil || !bytes.Equal(buf, imgA) {
		t.Fatalf("checkpointed page lost with the header (err %v)", err)
	}

	// The rebuilt log is a working log: commits survive the next crash,
	// and the fresh salt fences every leaked old frame.
	imgC := fullPage(0x33)
	commitPages(t, w2, map[uint32][]byte{4: imgC})
	w3 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 6)
	if got, ok := w3.PageVersion(4); !ok || !bytes.Equal(got, imgC) {
		t.Fatal("commit after header rebuild did not survive")
	}
	if w3.Salvage().Damaged() {
		t.Fatalf("clean crash after rebuild still reports damage: %s", w3.Salvage())
	}
}

// TestSalvageFrozenDamageDropsLiveGeneration: when an interrupted
// checkpoint's frozen generation fails its chain seal, committed frames
// older than the whole live generation are gone — salvage must drop the
// live generation too so survivors stay a prefix of commit order.
func TestSalvageFrozenDamageDropsLiveGeneration(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, salvageCfg())
	img1 := fullPage(0x41)
	commitPages(t, w, map[uint32][]byte{2: img1})
	commitPages(t, w, map[uint32][]byte{3: fullPage(0x42)})
	frame2 := lastFrameAddr(w)

	// Freeze the generation (phase A completes, backfill never runs),
	// then commit into the new live generation.
	runUntilStep(w, StepCkptAfterSalt, w.Checkpoint)
	commitPages(t, w, map[uint32][]byte{4: fullPage(0x43)})

	// Rot the second frozen frame: the frozen scan now ends early and
	// cannot reach the record's chain seal.
	corruptByte(w, frame2+frameHdrSize+20)

	w2 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 7)
	rep := w2.Salvage()
	if rep == nil || !rep.FrozenDamaged || !rep.LiveDropped || !rep.Damaged() {
		t.Fatalf("frozen damage not reported: %s", rep)
	}
	if got, ok := w2.PageVersion(2); !ok || !bytes.Equal(got, img1) {
		t.Fatal("whole transaction before the frozen damage did not survive")
	}
	if _, ok := w2.PageVersion(3); ok {
		t.Fatal("damaged frozen transaction survived")
	}
	if _, ok := w2.PageVersion(4); ok {
		t.Fatal("live generation survived ahead of lost frozen commits (non-prefix survivor)")
	}
	// Sealed frames were lost mid-round: the crashed backfill may have
	// already pushed their pages into the database file, so the file is
	// flagged and the round stays pending — the database layer opens
	// degraded read-only.
	if !rep.DBFileDamaged {
		t.Fatalf("lost sealed frames did not flag the database file: %s", rep)
	}

	// The verdict is sticky: the pending round and the damage are both
	// durable, so the next reboot reaches the same degraded state with
	// the same surviving prefix.
	w3 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 8)
	rep3 := w3.Salvage()
	if rep3 == nil || !rep3.FrozenDamaged || !rep3.DBFileDamaged {
		t.Fatalf("degraded verdict not sticky across reboots: %s", rep3)
	}
	if got, ok := w3.PageVersion(2); !ok || !bytes.Equal(got, img1) {
		t.Fatal("kept prefix lost on second recovery of the pending round")
	}
}

// TestSalvageMediaReadErrorQuarantinesBlock: an uncorrectable read
// error during the scan ends the log there, and the block lands in the
// heap's persistent quarantine instead of the free list.
func TestSalvageMediaReadErrorQuarantinesBlock(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, salvageCfg())
	imgA := fullPage(0x51)
	commitPages(t, w, map[uint32][]byte{2: imgA})
	commitPages(t, w, map[uint32][]byte{3: fullPage(0x52)})
	if len(w.blocks) < 2 {
		t.Fatalf("expected the second commit in a second block, have %d", len(w.blocks))
	}
	bad := w.blocks[1]
	e.dev.InjectFaults(memsim.FaultConfig{
		Seed:          9,
		ReadErrorRate: 1,
		Ranges:        []memsim.AddrRange{{Start: bad.Addr, End: bad.Addr + uint64(bad.Size())}},
	})

	w2 := e.reopen(t, salvageCfg(), memsim.FailDropAll, 8)
	rep := w2.Salvage()
	if rep == nil || rep.MediaReadErrors == 0 || !rep.Damaged() {
		t.Fatalf("media read error not reported: %s", rep)
	}
	if rep.BlocksQuarantined != 1 {
		t.Fatalf("BlocksQuarantined = %d, want 1 (%s)", rep.BlocksQuarantined, rep)
	}
	if got := e.heap.QuarantinedPages(); got == 0 {
		t.Fatal("no pages in the heap quarantine")
	}
	if got, ok := w2.PageVersion(2); !ok || !bytes.Equal(got, imgA) {
		t.Fatal("readable prefix did not survive")
	}
	if _, ok := w2.PageVersion(3); ok {
		t.Fatal("unreadable block's transaction survived")
	}
	if e.m.Count(metrics.BlocksQuarantined) == 0 {
		t.Fatal("blocks_quarantined metric not incremented")
	}
}

// TestSalvageBitFlipsNeverHardError is the acceptance property in
// miniature: with a 1e-4 per-line bit-flip rate confined to the heap's
// data pages, repeated crash/recover cycles must never fail to open —
// damage only shrinks what survives, and every recovery produces a
// salvage report.
func TestSalvageBitFlipsNeverHardError(t *testing.T) {
	e := newEnv(t)
	start, end := e.heap.HeapRange()
	e.dev.InjectFaults(memsim.FaultConfig{
		Seed:        1234,
		BitFlipRate: 1e-4,
		Ranges:      []memsim.AddrRange{{Start: start, End: end}},
	})
	cfg := salvageCfg()
	w := e.open(t, cfg)
	for round := 0; round < 25; round++ {
		for p := uint32(2); p < 5; p++ {
			commitPages(t, w, map[uint32][]byte{p: fullPage(byte(round)*3 + byte(p))})
		}
		// reopen fails the test on any hard recovery error.
		w = e.reopen(t, cfg, memsim.FailDropAll, int64(round))
		if w.Salvage() == nil {
			t.Fatalf("round %d: no salvage report", round)
		}
	}
	if e.m.Count(metrics.MediaBitFlips) == 0 {
		t.Fatal("fault model injected no flips — the test exercised nothing")
	}
}

// TestScrubDetectsSilentDurableCorruption: the durable image of a
// committed frame diverges from its (still pristine) volatile copy —
// the damage only a media scrub can see before the next crash. The
// scrub must flag it, and the following checkpoint must rewrite the
// page from DRAM and quarantine the implicated block.
func TestScrubDetectsSilentDurableCorruption(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, salvageCfg())
	img := fullPage(0x61)
	commitPages(t, w, map[uint32][]byte{2: img})
	frame := lastFrameAddr(w)

	// Corrupt the durable copy of one payload byte, then restore the
	// volatile copy without persisting: the cache still serves good
	// data, the media does not.
	addr := frame + frameHdrSize + 100
	var b [1]byte
	w.dev.Read(addr, b[:])
	good := b[0]
	b[0] ^= 0x5A
	w.dev.Write(addr, b[:])
	w.persistRange(addr, 1)
	b[0] = good
	w.dev.Write(addr, b[:])

	res := w.Scrub()
	if res.FramesChecked == 0 || res.BadFrames != 1 {
		t.Fatalf("scrub checked=%d bad=%d, want checked>0 bad=1 (err %v)", res.FramesChecked, res.BadFrames, res.FirstErr)
	}
	if len(res.BadBlocks) != 1 || res.BadBlocks[0] != w.blocks[0].Addr {
		t.Fatalf("scrub implicated %#v, want the first log block", res.BadBlocks)
	}
	if e.m.Count(metrics.ScrubFramesChecked) == 0 || e.m.Count(metrics.ScrubFramesBad) != 1 {
		t.Fatal("scrub metrics not recorded")
	}

	// Self-heal: checkpoint rewrites the page from DRAM and retires the
	// bad block into quarantine.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := e.heap.QuarantinedPages(); got == 0 {
		t.Fatal("bad block not quarantined by the checkpoint")
	}
	buf := make([]byte, 4096)
	if err := e.db.ReadPage(2, buf); err != nil || !bytes.Equal(buf, img) {
		t.Fatalf("page content wrong after self-healing checkpoint (err %v)", err)
	}
}

// TestScrubNoopForAsyncCommit: SyncChecksum never promises frames are
// durable before a crash, so there is nothing for a scrub to audit.
func TestScrubNoopForAsyncCommit(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, Config{Sync: SyncChecksum, UserHeap: true})
	commitPages(t, w, map[uint32][]byte{2: fullPage(0x71)})
	if res := w.Scrub(); res.FramesChecked != 0 {
		t.Fatalf("scrub under async commit checked %d frames, want 0", res.FramesChecked)
	}
}
