package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffExtentsIdentical(t *testing.T) {
	a := bytes.Repeat([]byte{7}, 256)
	if got := diffExtents(a, a, 32); got != nil {
		t.Fatalf("identical images produced extents: %v", got)
	}
}

func TestDiffExtentsSingleRegion(t *testing.T) {
	old := make([]byte, 256)
	new := make([]byte, 256)
	copy(new, old)
	new[100] = 1
	new[101] = 2
	got := diffExtents(old, new, 32)
	if len(got) != 1 || got[0].Off != 100 || got[0].Len != 2 {
		t.Fatalf("extents = %v, want [{100 2}]", got)
	}
}

func TestDiffExtentsGapMerge(t *testing.T) {
	old := make([]byte, 256)
	mk := func(offs ...int) []byte {
		n := make([]byte, 256)
		for _, o := range offs {
			n[o] = 0xFF
		}
		return n
	}
	// Two dirty bytes 10 apart: merged under gapMerge 32.
	if got := diffExtents(old, mk(50, 60), 32); len(got) != 1 || got[0].Off != 50 || got[0].Len != 11 {
		t.Fatalf("merge failed: %v", got)
	}
	// 100 apart: two extents under gapMerge 32.
	if got := diffExtents(old, mk(50, 150), 32); len(got) != 2 {
		t.Fatalf("over-merged: %v", got)
	}
	// 100 apart with gapMerge 128: merged.
	if got := diffExtents(old, mk(50, 150), 128); len(got) != 1 {
		t.Fatalf("under-merged: %v", got)
	}
}

func TestDiffExtentsBoundaries(t *testing.T) {
	old := make([]byte, 64)
	new := make([]byte, 64)
	new[0] = 1
	new[63] = 1
	got := diffExtents(old, new, 8)
	if len(got) != 2 || got[0].Off != 0 || got[1].Off+got[1].Len != 64 {
		t.Fatalf("boundary extents = %v", got)
	}
}

func TestDiffExtentsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	diffExtents(make([]byte, 10), make([]byte, 11), 8)
}

func TestTrailingZeros(t *testing.T) {
	if got := trailingZeros(make([]byte, 100)); got != 100 {
		t.Fatalf("all-zero page: %d", got)
	}
	p := make([]byte, 100)
	p[10] = 1
	if got := trailingZeros(p); got != 89 {
		t.Fatalf("trailingZeros = %d, want 89", got)
	}
	p[99] = 1
	if got := trailingZeros(p); got != 0 {
		t.Fatalf("trailingZeros = %d, want 0", got)
	}
}

// Property: applying the extents of diff(old, new) onto a copy of old
// reconstructs new exactly, for any images and any gap-merge setting.
func TestPropertyDiffApplyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128 + rng.Intn(4096)
		old := make([]byte, n)
		rng.Read(old)
		new := make([]byte, n)
		copy(new, old)
		for i := 0; i < rng.Intn(20); i++ {
			off := rng.Intn(n)
			ln := 1 + rng.Intn(n-off)
			if ln > 200 {
				ln = 200
			}
			rng.Read(new[off : off+ln])
		}
		gap := 1 + rng.Intn(256)
		extents := diffExtents(old, new, gap)
		got := make([]byte, n)
		copy(got, old)
		for _, e := range extents {
			applyExtent(got, e.Off, new[e.Off:e.Off+e.Len])
		}
		if !bytes.Equal(got, new) {
			return false
		}
		// Extents are sorted, non-overlapping, and non-empty.
		prevEnd := -1
		for _, e := range extents {
			if e.Len <= 0 || e.Off <= prevEnd {
				return false
			}
			prevEnd = e.Off + e.Len
		}
		// Every changed byte is covered.
		covered := make([]bool, n)
		for _, e := range extents {
			for i := e.Off; i < e.Off+e.Len; i++ {
				covered[i] = true
			}
		}
		for i := range old {
			if old[i] != new[i] && !covered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with gapMerge g, consecutive extents are separated by at
// least g clean bytes (otherwise they would have merged).
func TestPropertyGapMergeRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := make([]byte, 2048)
		new := make([]byte, 2048)
		for i := 0; i < 30; i++ {
			new[rng.Intn(2048)] = byte(1 + rng.Intn(255))
		}
		g := 1 + rng.Intn(128)
		extents := diffExtents(old, new, g)
		for i := 1; i < len(extents); i++ {
			gap := extents[i].Off - (extents[i-1].Off + extents[i-1].Len)
			if gap < g {
				return false
			}
		}
		return extentBytes(extents) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistencyModesDurable(t *testing.T) {
	// SP/EP must give the same durability as lazy sync.
	for _, cfg := range []Config{VariantSP(), VariantEP()} {
		t.Run(cfg.Label(), func(t *testing.T) {
			e := newEnv(t)
			w := e.open(t, cfg)
			base := fullPage(0x21)
			commitPages(t, w, map[uint32][]byte{2: base})
			w2 := e.reopen(t, cfg, 0 /* FailDropAll */, 3)
			got, ok := w2.PageVersion(2)
			if !ok || !bytes.Equal(got, base) {
				t.Fatal("committed page lost under hardware persistency model")
			}
		})
	}
}

func TestPersistencyModesSkipFlushInstructions(t *testing.T) {
	// §4.4: "no extra code is required to explicitly flush appropriate
	// cache lines" — the hardware models must not issue dccmvac.
	e := newEnv(t)
	w := e.open(t, VariantEP())
	before := e.m.Count("cache_line_flush")
	commitPages(t, w, map[uint32][]byte{2: fullPage(1)})
	commitPages(t, w, map[uint32][]byte{2: fullPage(2)})
	// Block-link persistence still flushes (the heap protocol is
	// software), but the log-write path itself must not.
	if got := e.m.Count("cache_line_flush") - before; got > 8 {
		t.Fatalf("epoch persistency issued %d dccmvac", got)
	}
}
