package core

import (
	"bytes"
	"testing"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// TestCommitGroup pins the GroupJournal contract: the member
// transactions' frames are coalesced to each page's final image, the
// whole group commits under one Algorithm 1 sequence, and the metrics
// credit every member transaction plus one batched flush.
func TestCommitGroup(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	before := e.m.Snapshot()
	groups := [][]pager.Frame{
		{{Pgno: 2, Data: fullPage('a')}, {Pgno: 3, Data: fullPage('b')}},
		{{Pgno: 2, Data: fullPage('c')}},
		{{Pgno: 4, Data: fullPage('d')}},
	}
	if err := w.CommitGroup(groups); err != nil {
		t.Fatal(err)
	}
	delta := e.m.Snapshot().Sub(before)
	if got := delta.Count(metrics.Transactions); got != 3 {
		t.Fatalf("Transactions delta = %d, want 3 (one per group member)", got)
	}
	if got := delta.Count(metrics.GroupCommits); got != 1 {
		t.Fatalf("GroupCommits delta = %d, want 1", got)
	}

	// Last image per page wins; earlier members' superseded images are
	// not retrievable (they were never logged — the group is atomic, so
	// intermediate versions can never be observed).
	for _, want := range []struct {
		pgno uint32
		fill byte
	}{{2, 'c'}, {3, 'b'}, {4, 'd'}} {
		img, ok := w.PageVersion(want.pgno)
		if !ok {
			t.Fatalf("page %d missing after group commit", want.pgno)
		}
		if !bytes.Equal(img, fullPage(want.fill)) {
			t.Fatalf("page %d = %q..., want fill %q", want.pgno, img[:4], want.fill)
		}
	}

	// A nil group (no member transactions) is a true no-op.
	mid := e.m.Snapshot()
	if err := w.CommitGroup(nil); err != nil {
		t.Fatal(err)
	}
	d2 := e.m.Snapshot().Sub(mid)
	if d2.Count(metrics.Transactions) != 0 || d2.Count(metrics.GroupCommits) != 0 {
		t.Fatalf("nil group moved metrics: %v", d2)
	}

	// A group whose members coalesce to zero frames still committed its
	// member transactions: nothing reaches NVRAM, but the txn and group
	// tallies (which throughput numbers and the torture oracle count)
	// must include them.
	mid = e.m.Snapshot()
	if err := w.CommitGroup([][]pager.Frame{{}, {}}); err != nil {
		t.Fatal(err)
	}
	d2 = e.m.Snapshot().Sub(mid)
	if got := d2.Count(metrics.Transactions); got != 2 {
		t.Fatalf("zero-frame group Transactions delta = %d, want 2", got)
	}
	if got := d2.Count(metrics.GroupCommits); got != 1 {
		t.Fatalf("zero-frame group GroupCommits delta = %d, want 1", got)
	}
	if got := d2.Count(metrics.WALFrames); got != 0 {
		t.Fatalf("zero-frame group wrote %d frames, want 0", got)
	}

	// The single commit mark covers the whole group across a crash.
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 21)
	for _, want := range []struct {
		pgno uint32
		fill byte
	}{{2, 'c'}, {3, 'b'}, {4, 'd'}} {
		img, ok := w2.PageVersion(want.pgno)
		if !ok {
			t.Fatalf("page %d lost across crash", want.pgno)
		}
		if !bytes.Equal(img, fullPage(want.fill)) {
			t.Fatalf("page %d corrupted across crash", want.pgno)
		}
	}
}

// TestCommitGroupAmortizesSync: a group of K single-page transactions
// must cost fewer persist barriers than K solo commits of the same
// frames.
func TestCommitGroupAmortizesSync(t *testing.T) {
	frames := make([][]pager.Frame, 8)
	for i := range frames {
		frames[i] = []pager.Frame{{Pgno: uint32(10 + i), Data: fullPage(byte('a' + i))}}
	}

	eSolo := newEnv(t)
	wSolo := eSolo.open(t, VariantUHLSDiff())
	before := eSolo.m.Snapshot()
	for _, fs := range frames {
		if err := wSolo.CommitTransaction(fs); err != nil {
			t.Fatal(err)
		}
	}
	solo := eSolo.m.Snapshot().Sub(before).Count(metrics.PersistBarrier)

	eGrp := newEnv(t)
	wGrp := eGrp.open(t, VariantUHLSDiff())
	before = eGrp.m.Snapshot()
	if err := wGrp.CommitGroup(frames); err != nil {
		t.Fatal(err)
	}
	grouped := eGrp.m.Snapshot().Sub(before).Count(metrics.PersistBarrier)

	if grouped >= solo {
		t.Fatalf("group commit did not amortize persist barriers: solo=%d grouped=%d", solo, grouped)
	}
	t.Logf("persist barriers for 8 txns: solo=%d grouped=%d", solo, grouped)
}

// TestBrokenLatch: the NVRAM log is append-only, so a failed frame
// write cannot be overwritten — the first error must poison the log and
// every later write must report it.
func TestBrokenLatch(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	w.SetCrashHook(func(step string) {
		if step == StepAfterCommitWrite {
			panic("injected")
		}
	})
	func() {
		defer func() { recover() }()
		w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: fullPage('x')}})
		t.Fatal("crash hook did not fire")
	}()
	w.SetCrashHook(nil)
	// The panic unwound through the defer-unlocked mutex; the log keeps
	// working (panic is a crash simulation, not an I/O error)...
	if err := w.CommitTransaction([]pager.Frame{{Pgno: 3, Data: fullPage('y')}}); err != nil {
		t.Fatalf("log unusable after simulated crash: %v", err)
	}
}
