package core

import (
	"fmt"

	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// Stream is one writer's private log stream. A writer stages its dirty
// pages into its stream fully in parallel with other writers — no NVWAL
// lock is held — because the expensive half of a commit's serial
// section is the differential-extent computation, not the NVRAM append.
// The stream carries precomputed extents plus the full new image of
// every staged page; CommitStreams later merges ready streams under one
// Algorithm 1 flush and a single commit mark.
//
// Staging against a base image is only sound if, at flush time, the
// log's current version of the page equals that base. The database
// layer guarantees it with first-committer-wins validation: a stream
// reaches CommitStreams only when no other commit has touched its
// pages since its snapshot, and the group queue flushes streams in
// commit (seq) order, so each diff lands exactly on the image it was
// computed from. An intervening checkpoint does not break this: the
// checkpointed database-file image is byte-identical to the version
// image the diff was computed against.
type Stream struct {
	id           uint32
	pageSize     int
	differential bool
	gapMerge     int

	pages        []stagedPage
	payloadBytes int
}

// stagedPage is one page's precomputed logging work inside a stream.
type stagedPage struct {
	pgno    uint32
	img     []byte // full new image; ownership passes to the stream
	full    bool
	extents []Extent
}

// NewStream hands out a per-writer stream. Tags cycle through the
// 12-bit space (0 is reserved for untagged frames); they are provenance
// for the on-NVRAM format and debugging, not identity — two live
// streams may share a tag after 4095 allocations without harm.
func (w *NVWAL) NewStream() *Stream {
	tag := w.streamTag.Add(1)%maxStreamTag + 1
	return &Stream{
		id:           tag,
		pageSize:     w.pageSize,
		differential: w.cfg.Differential,
		gapMerge:     w.cfg.GapMerge,
	}
}

// ID returns the stream's frame tag.
func (s *Stream) ID() uint32 { return s.id }

// Pages returns the number of staged pages.
func (s *Stream) Pages() int { return len(s.pages) }

// Reset empties the stream for reuse, keeping staged-page capacity.
func (s *Stream) Reset() {
	for i := range s.pages {
		s.pages[i].img = nil
	}
	s.pages = s.pages[:0]
	s.payloadBytes = 0
}

// StagePage stages one dirty page: img is the page's new full image
// (ownership passes to the stream — the caller must not mutate it
// afterwards) and base, when non-nil under differential logging, is the
// image the writer's snapshot read, against which the dirty extents are
// computed. A nil base stages a full frame (first touch, trailing clean
// bytes truncated per §3.2). Returns false when img is byte-identical
// to base — a no-op write that needs no frame, no conflict claim, and
// no version bump.
func (s *Stream) StagePage(pgno uint32, img, base []byte) (bool, error) {
	if len(img) != s.pageSize {
		return false, fmt.Errorf("nvwal: staged page %d has %d bytes, want %d", pgno, len(img), s.pageSize)
	}
	sp := stagedPage{pgno: pgno, img: img, full: true}
	if s.differential && base != nil {
		sp.full = false
		sp.extents = diffExtents(base, img, s.gapMerge)
		if len(sp.extents) == 0 {
			return false, nil
		}
	} else {
		sp.extents = fullExtents(img)
	}
	s.pages = append(s.pages, sp)
	s.payloadBytes += extentBytes(sp.extents)
	return true, nil
}

// fullExtents is the §3.2 full-frame shape: one extent from offset 0
// with the trailing clean (zero) region truncated.
func fullExtents(img []byte) []Extent {
	n := len(img) - trailingZeros(img)
	if n == 0 {
		n = 8 // all-zero page: log a minimal frame
	}
	return []Extent{{Off: 0, Len: n}}
}

// streamPlan is one stream's share of a merged append: the fresh blocks
// its frames force given the tail state the preceding streams leave
// behind, and the largest single allocation among them. Each stream
// gets its own heap reservation, so admission accounting stays
// per-writer even though the flush is shared.
type streamPlan struct {
	newBlocks int
	maxAlloc  int
	frames    int
}

// CommitStreams merges the ready streams into one Algorithm 1 commit:
// every staged frame of every stream is appended (frames of one stream
// stay consecutive and streams append in the given order — the commit
// order — so recovery's linear scan replays the interleaved streams
// correctly with no reordering), then one flush batch, one persist
// barrier, and a single commit mark on the final frame cover the whole
// group. txns is the number of logical transactions the group carries
// (streams with zero staged pages still committed).
//
// Space admission mirrors the solo path: each stream's block need is
// planned and reserved before any NVRAM mutation, so exhaustion is a
// clean, retryable ErrLogFull with nothing to unwind.
func (w *NVWAL) CommitStreams(streams []*Stream, txns int) error {
	w.lockWriter()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if w.pendingPrep != nil {
		return ErrPreparedPending
	}

	// A page staged differentially whose base came from the database
	// file (never logged, or checkpointed and dropped from the index)
	// would replay from zero under PageVersionAt unless the log knows
	// its base. If the log holds no version for it and no earlier
	// stream in this group stages it first, convert the frame to a full
	// one — same first-touch rule the solo path applies.
	seen := make(map[uint32]bool)
	totalFrames, totalPayload := 0, 0
	for _, s := range streams {
		if s.pageSize != w.pageSize {
			return fmt.Errorf("nvwal: stream page size %d, log %d", s.pageSize, w.pageSize)
		}
		for i := range s.pages {
			sp := &s.pages[i]
			if !sp.full {
				if _, ok := w.versions[sp.pgno]; !ok && !seen[sp.pgno] {
					sp.full = true
					sp.extents = fullExtents(sp.img)
				}
			}
			seen[sp.pgno] = true
			totalFrames += len(sp.extents)
			totalPayload += extentBytes(sp.extents)
		}
	}
	if totalFrames == 0 {
		// Every member coalesced to nothing: the transactions still
		// committed and must be tallied, but nothing reaches NVRAM.
		w.m.Inc(metrics.Transactions, int64(txns))
		if txns > 1 {
			w.m.Inc(metrics.GroupCommits, 1)
		}
		return nil
	}

	// Plan per stream against the running simulated tail, then reserve
	// per stream. A denial releases everything already promised and
	// fails before any mutation.
	plans := make([]streamPlan, len(streams))
	simBlocks, simTailCap, simTailUsed := len(w.blocks), w.tailCapacity(), w.tailUsed
	for i, s := range streams {
		p := &plans[i]
		for j := range s.pages {
			sp := &s.pages[j]
			groupTotal := 0
			for _, e := range sp.extents {
				groupTotal += align8(frameHdrSize + e.Len)
			}
			p.frames += len(sp.extents)
			if !w.cfg.UserHeap && simBlocks > 0 {
				simTailUsed = simTailCap // legacy: tail space not reused across frames
			}
			for _, e := range sp.extents {
				need := align8(frameHdrSize + e.Len)
				if w.cfg.UserHeap && need > w.cfg.BlockSize-blockLinkSize {
					return fmt.Errorf("%w: frame %d bytes, block %d", ErrBlockFull, need, w.cfg.BlockSize)
				}
				if simBlocks == 0 || simTailUsed+need > simTailCap {
					alloc := w.cfg.BlockSize
					if !w.cfg.UserHeap {
						alloc = need
						if groupTotal > alloc {
							alloc = groupTotal
						}
						alloc += blockLinkSize
					}
					simBlocks++
					p.newBlocks++
					if alloc > p.maxAlloc {
						p.maxAlloc = alloc
					}
					simTailCap = (alloc + heapo.PageSize - 1) / heapo.PageSize * heapo.PageSize
					simTailUsed = blockLinkSize
				}
				simTailUsed += need
			}
		}
	}
	resvs := make([]heapo.Reservation, len(streams))
	if !w.disableReserve {
		for i := range streams {
			if plans[i].newBlocks == 0 {
				continue
			}
			if err := w.heap.ReserveInto(&resvs[i], plans[i].newBlocks, plans[i].maxAlloc); err != nil {
				for j := 0; j < i; j++ {
					if plans[j].newBlocks > 0 {
						resvs[j].Release()
					}
				}
				return fmt.Errorf("%w: cannot promise %d blocks of %d bytes for stream %d: %v",
					ErrLogFull, plans[i].newBlocks, plans[i].maxAlloc, streams[i].id, err)
			}
		}
		defer func() {
			w.res = nil
			for i := range resvs {
				if plans[i].newBlocks > 0 {
					resvs[i].Release()
				}
			}
		}()
	}

	undoBlocks, undoTail := len(w.blocks), w.tailUsed
	written := w.written[:0]
	hist := w.newHist[:0]
	if w.newVers == nil {
		w.newVers = make(map[uint32][]byte)
	}
	newVersions := w.newVers
	clear(newVersions)
	chain := w.chain
	arena := make([]byte, totalPayload)

	for i, s := range streams {
		if !w.disableReserve && plans[i].newBlocks > 0 {
			w.res = &resvs[i]
		} else {
			w.res = nil
		}
		for j := range s.pages {
			sp := &s.pages[j]
			groupTotal := 0
			for _, e := range sp.extents {
				groupTotal += align8(frameHdrSize + e.Len)
			}
			if !w.cfg.UserHeap && len(w.blocks) > 0 {
				w.tailUsed = w.tailCapacity()
			}
			for _, e := range sp.extents {
				payload := sp.img[e.Off : e.Off+e.Len]
				size := frameHdrSize + len(payload)
				addr, err := w.allocFrameSpace(size, groupTotal)
				if err != nil {
					w.written, w.newHist = written[:0], hist[:0]
					return w.abortAppend(undoBlocks, undoTail, err)
				}
				chain = w.encodeFrameAt(addr, sp.pgno, e.Off, payload, chain, sp.full, s.id)
				w.step(StepAfterMemcpy)
				switch w.cfg.Sync {
				case SyncEager:
					w.dev.MemoryBarrier()
					w.dev.Syscall()
					w.dev.Flush(addr, addr+uint64(size))
					w.dev.MemoryBarrier()
					w.dev.PersistBarrier()
				case SyncStrictPersistency:
					w.dev.Domain().EpochBarrier()
				}
				written = append(written, frameRef{addr: addr, size: size, pgno: sp.pgno})
				pl := arena[:len(payload):len(payload)]
				arena = arena[len(payload):]
				copy(pl, payload)
				hist = append(hist, histFrame{pgno: sp.pgno, off: e.Off, full: sp.full, payload: pl})
				w.m.Inc(MetricLoggedBytes, int64(size))
			}
			newVersions[sp.pgno] = sp.img
		}
	}
	w.res = nil

	earlyMark := w.cfg.UnsafeEarlyCommitMark && w.cfg.Sync == SyncLazy
	if earlyMark {
		last := written[len(written)-1]
		w.dev.PutUint64(last.addr, commitValue)
		w.dev.MemoryBarrier()
		w.dev.Syscall()
		w.dev.Flush(last.addr, last.addr+8)
		w.dev.MemoryBarrier()
		w.dev.PersistBarrier()
	}

	switch {
	case w.cfg.Sync == SyncLazy:
		w.dev.MemoryBarrier()
		for _, f := range written {
			w.dev.Syscall()
			w.dev.Flush(f.addr, f.addr+uint64(f.size))
		}
		w.dev.MemoryBarrier()
		if !earlyMark {
			w.dev.PersistBarrier()
		}
	case w.cfg.Sync == SyncEpochPersistency:
		w.dev.Domain().EpochBarrier()
	}
	w.step(StepAfterLogFlush)

	if !earlyMark {
		last := written[len(written)-1]
		w.dev.PutUint64(last.addr, commitValue)
		w.step(StepAfterCommitWrite)
		switch w.cfg.Sync {
		case SyncStrictPersistency, SyncEpochPersistency:
			w.dev.Domain().EpochBarrier()
		default:
			w.dev.MemoryBarrier()
			w.dev.Syscall()
			w.dev.Flush(last.addr, last.addr+8)
			w.dev.MemoryBarrier()
			w.dev.PersistBarrier()
		}
		w.step(StepAfterCommitFlush)
	}

	w.chain = chain
	for _, f := range hist {
		if _, tracked := w.byPage[f.pgno]; !tracked && !f.full {
			w.base[f.pgno] = w.versions[f.pgno]
		}
		w.byPage[f.pgno] = append(w.byPage[f.pgno], w.histBase+len(w.history))
		w.history = append(w.history, f)
	}
	for pgno, img := range newVersions {
		w.versions[pgno] = img
	}
	w.written, w.newHist = written[:0], hist[:0]
	w.m.Inc(metrics.WALFrames, int64(len(written)))
	w.m.Inc(metrics.Transactions, int64(txns))
	if txns > 1 {
		w.m.Inc(metrics.GroupCommits, 1)
	}
	return nil
}

// StreamFrames converts a stream's staged pages into plain pager frames
// (each page's full new image), the fallback shape for journals that do
// not understand streams — fault-injection wrappers, the file WAL, or
// a group mixing stream and non-stream members.
func (s *Stream) StreamFrames() []pager.Frame {
	frames := make([]pager.Frame, 0, len(s.pages))
	for i := range s.pages {
		frames = append(frames, pager.Frame{Pgno: s.pages[i].pgno, Data: s.pages[i].img})
	}
	return frames
}
