// Generation export: the replication hook. A primary ships its log to
// replicas as ranges of committed frames addressed by the same mark
// space PageVersionAt and checkpoints use. The export stream re-chains
// the frames with the NVWAL frame-CRC construction (crc32-Castagnoli
// over the frame identity and payload, seeded from the previous
// frame's value), so a receiver verifies shipped ranges exactly the
// way salvage verifies a log tail: a torn or corrupted shipment breaks
// the chain and is rejected, and the §4.2 asynchronous-commit argument
// carries over the wire — a replica holding a chain-valid prefix can
// recover from it.
//
// The hook deliberately exposes only committed state. history gains
// frames solely in whole commit/group units under w.mu, so any mark
// range is a union of complete transactions; an exporter can never
// observe half a commit. Frames retired by a completed checkpoint
// (mark < histBase) are gone — ExportSince reports !ok and the
// subscriber must re-seed from a full snapshot.
package core

import (
	"encoding/binary"
	"hash/crc32"
)

// ExportFrame is one committed log frame in wire form: the page it
// patches, the byte extent, and whether the payload is a full-page
// image (Off is 0 and trailing zeros may be trimmed).
type ExportFrame struct {
	Pgno    uint32
	Off     uint32
	Full    bool
	Payload []byte
}

// ExportBatch is the contiguous committed mark range [From, To).
type ExportBatch struct {
	From, To int
	Frames   []ExportFrame
}

// ExportSince returns every committed frame in [from, Mark()). It
// reports ok=false when the range is gone: from precedes the retired
// checkpoint boundary (histBase) or lies beyond the current mark —
// either way the caller's cursor has an unhealable gap and must
// re-seed from a full snapshot. An empty batch (From==To) with ok=true
// means the caller is caught up.
//
// Payload slices alias the log's immutable history images; callers
// must not mutate them.
func (w *NVWAL) ExportSince(from int) (ExportBatch, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	mark := w.histBase + len(w.history)
	if from < w.histBase || from > mark {
		return ExportBatch{}, false
	}
	b := ExportBatch{From: from, To: mark}
	if from == mark {
		return b, true
	}
	b.Frames = make([]ExportFrame, 0, mark-from)
	for i := from - w.histBase; i < len(w.history); i++ {
		hf := w.history[i]
		b.Frames = append(b.Frames, ExportFrame{
			Pgno:    hf.pgno,
			Off:     uint32(hf.off),
			Full:    hf.full,
			Payload: hf.payload,
		})
	}
	return b, true
}

// ChainExport folds a batch into a running export-stream CRC chain,
// frame by frame, using the on-NVRAM frame checksum construction. Both
// ends of a replication stream run it independently; a divergence in
// the resulting value proves the streams saw different bytes.
func ChainExport(chain uint32, b ExportBatch) uint32 {
	var hdr [20]byte
	for _, fr := range b.Frames {
		binary.LittleEndian.PutUint32(hdr[0:], fr.Pgno)
		off := fr.Off
		if fr.Full {
			off |= 1 << 31
		}
		binary.LittleEndian.PutUint32(hdr[4:], off)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(fr.Payload)))
		chain = crc32.Update(chain, crcTab, hdr[:12])
		chain = crc32.Update(chain, crcTab, fr.Payload)
	}
	return chain
}

// ExportChainSeed derives the initial chain value for an export stream
// seeded at a snapshot: both ends fold the snapshot identity (mark) so
// streams rooted at different snapshots cannot be confused.
func ExportChainSeed(mark int) uint32 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(mark))
	return crc32.Checksum(b[:], crcTab)
}
