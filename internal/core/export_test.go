package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/memsim"
	"repro/internal/pager"
)

// applyExport patches one exported frame into a model page set, the
// way a replica reconstructs state from a shipped range.
func applyExport(model map[uint32][]byte, fr ExportFrame, pageSize int) {
	img, ok := model[fr.Pgno]
	if !ok || fr.Full {
		img = make([]byte, pageSize)
		model[fr.Pgno] = img
	}
	copy(img[fr.Off:], fr.Payload)
}

func TestExportSinceStreamsCommittedFrames(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	commitPages(t, w, map[uint32][]byte{2: fullPage(0x11), 3: fullPage(0x12)})
	commitPages(t, w, map[uint32][]byte{2: patchedPage(fullPage(0x11), 100, 40, 0x13)})

	b, ok := w.ExportSince(0)
	if !ok {
		t.Fatal("ExportSince(0) reported a gap on a fresh log")
	}
	if b.From != 0 || b.To != w.Mark() {
		t.Fatalf("batch range [%d,%d), want [0,%d)", b.From, b.To, w.Mark())
	}
	if len(b.Frames) != b.To-b.From {
		t.Fatalf("%d frames for range [%d,%d): marks and frames must be 1:1", len(b.Frames), b.From, b.To)
	}
	model := make(map[uint32][]byte)
	for _, fr := range b.Frames {
		applyExport(model, fr, 4096)
	}
	for _, pgno := range []uint32{2, 3} {
		want, _ := w.PageVersion(pgno)
		if !bytes.Equal(model[pgno], want) {
			t.Fatalf("replayed export diverges from page %d image", pgno)
		}
	}

	// Caught up: empty batch, still ok.
	b2, ok := w.ExportSince(b.To)
	if !ok || len(b2.Frames) != 0 || b2.From != b2.To {
		t.Fatalf("caught-up export = %+v ok=%v, want empty ok batch", b2, ok)
	}
	// Beyond the mark: a gap.
	if _, ok := w.ExportSince(b.To + 1); ok {
		t.Fatal("ExportSince past the mark must report a gap")
	}

	// The export chain is deterministic for the same range.
	c1 := ChainExport(ExportChainSeed(0), b)
	c2 := ChainExport(ExportChainSeed(0), b)
	if c1 != c2 {
		t.Fatalf("chain not deterministic: %#x vs %#x", c1, c2)
	}
	if c1 == ExportChainSeed(0) {
		t.Fatal("chain did not absorb the frames")
	}
}

// TestExportGapAfterCheckpointRetirement pins the re-seed contract: a
// cursor below histBase (its frames retired by a completed checkpoint)
// is an unhealable gap, not a silent empty batch.
func TestExportGapAfterCheckpointRetirement(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	commitPages(t, w, map[uint32][]byte{2: fullPage(0x21)})
	commitPages(t, w, map[uint32][]byte{3: fullPage(0x22)})
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.ExportSince(0); ok {
		t.Fatal("cursor 0 must be a gap after the checkpoint retired the frames")
	}
	if b, ok := w.ExportSince(w.Mark()); !ok || len(b.Frames) != 0 {
		t.Fatalf("cursor at the post-checkpoint mark must be a caught-up empty batch, got %+v ok=%v", b, ok)
	}
}

// TestExportGapAfterRecovery pins the incarnation contract: recovery
// rebases the mark space (histBase resets, live frames replay from 0),
// so a pre-crash cursor is meaningless and the exporter must observe
// either a gap or a range it can chain-verify — never silently wrong
// frames. Replication re-seeds on reconnect via the incarnation id;
// this test documents why.
func TestExportGapAfterRecovery(t *testing.T) {
	e := newEnv(t)
	cfg := VariantUHLSDiff()
	w := e.open(t, cfg)

	for i := 0; i < 6; i++ {
		commitPages(t, w, map[uint32][]byte{uint32(2 + i): fullPage(byte(0x30 + i))})
	}
	preMark := w.Mark()
	w2 := e.reopen(t, cfg, memsim.FailDropAll, 1)
	if w2.Mark() > preMark {
		t.Fatalf("recovered mark %d exceeds pre-crash mark %d", w2.Mark(), preMark)
	}
	// The recovered log replays live frames from mark 0; an old cursor
	// equal to the new mark is "caught up" only by coincidence of mark
	// arithmetic — the chain values diverge, which is what replication
	// keys re-seeding on.
	b, ok := w2.ExportSince(0)
	if !ok {
		t.Fatal("full re-export from 0 must succeed on the recovered log")
	}
	if len(b.Frames) != b.To {
		t.Fatalf("recovered export has %d frames for [0,%d)", len(b.Frames), b.To)
	}
}

// TestExportConcurrentWithCheckpointRounds is the torn-read pin for
// the satellite: an export stream runs while commits land and
// incremental checkpoint rounds freeze, backfill and retire the
// frozen generation (the same lifecycle salvage finishes after a
// crash). Run under -race this checks the locking; the model replay
// checks atomicity — every batch is a whole number of commits, and the
// replayed state converges to the log's own page images, so a torn
// (half-frozen, half-retired) read would be caught as divergence.
func TestExportConcurrentWithCheckpointRounds(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	const (
		writers   = 2
		commits   = 60
		pageRange = 8
	)
	var writerWG, ckptWG sync.WaitGroup
	writersDone := make(chan struct{})
	stopCkpt := make(chan struct{})

	// Writers: each owns a disjoint page range so final images are
	// deterministic per page.
	for wk := 0; wk < writers; wk++ {
		writerWG.Add(1)
		go func(wk int) {
			defer writerWG.Done()
			for i := 0; i < commits; i++ {
				pgno := uint32(2 + wk*pageRange + i%pageRange)
				img := fullPage(byte(wk*commits + i))
				if err := w.CommitTransaction([]pager.Frame{{Pgno: pgno, Data: img}}); err != nil {
					t.Errorf("writer %d: %v", wk, err)
					return
				}
			}
		}(wk)
	}
	go func() { writerWG.Wait(); close(writersDone) }()

	// Checkpointer: keeps freezing and retiring generations under the
	// exporter. ErrCheckpointPending and empty rounds are fine.
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			_ = w.CheckpointIncremental(nil)
		}
	}()

	// Exporter: follows the stream, re-seeding exactly as a replica
	// would when a checkpoint retires frames under its cursor. reseed
	// snapshots the committed page images and rebases the cursor under
	// the same lock the log uses, which is exactly what ExportPages
	// does one layer up.
	model := make(map[uint32][]byte)
	cursor := 0
	reseeds := 0
	reseed := func() {
		w.mu.RLock()
		cursor = w.histBase + len(w.history)
		for pgno, img := range w.versions {
			cp := make([]byte, len(img))
			copy(cp, img)
			model[pgno] = cp
		}
		w.mu.RUnlock()
		reseeds++
	}
	exportErr := func() error {
		for {
			b, ok := w.ExportSince(cursor)
			if !ok {
				reseed()
				continue
			}
			if b.From != cursor || len(b.Frames) != b.To-b.From {
				return fmt.Errorf("batch [%d,%d) with %d frames at cursor %d", b.From, b.To, len(b.Frames), cursor)
			}
			for _, fr := range b.Frames {
				applyExport(model, fr, 4096)
			}
			cursor = b.To
			if len(b.Frames) == 0 {
				// Caught up; stop once the writers have finished.
				select {
				case <-writersDone:
					return nil
				default:
				}
			}
		}
	}()
	close(stopCkpt)
	ckptWG.Wait()
	if exportErr != nil {
		t.Fatal(exportErr)
	}

	// Drain whatever landed after the exporter's last cursor, then the
	// replayed model must equal the log's own idea of every page.
	for {
		b, ok := w.ExportSince(cursor)
		if !ok {
			reseed()
			continue
		}
		for _, fr := range b.Frames {
			applyExport(model, fr, 4096)
		}
		cursor = b.To
		break
	}
	for wk := 0; wk < writers; wk++ {
		for p := 0; p < pageRange; p++ {
			pgno := uint32(2 + wk*pageRange + p)
			want, ok := w.PageVersion(pgno)
			if !ok {
				// Retired into the database file by a checkpoint; the
				// model must then match the backfilled file content.
				want = make([]byte, 4096)
				if err := e.db.ReadPage(pgno, want); err != nil {
					t.Fatalf("page %d: %v", pgno, err)
				}
			}
			if !bytes.Equal(model[pgno], want) {
				t.Fatalf("exported replay of page %d diverged (reseeds=%d)", pgno, reseeds)
			}
		}
	}
}
