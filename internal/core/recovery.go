package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/heapo"
)

// scannedFrame is one frame parsed out of NVRAM during recovery.
type scannedFrame struct {
	pgno    uint32
	off     int
	payload []byte
	commit  bool
	// position of the frame header, for locating the resume point
	blockIdx int
	blockOff int
}

// recover rebuilds the volatile log state after a restart or crash,
// implementing the §4.3 cases mechanically:
//
//   - the kernel heap manager has already reclaimed pending blocks, so a
//     block reference whose target is no longer in-use is a dangling
//     pointer from a crashed allocation — the reference is cleared and
//     the scan stops there;
//   - frames are validated by salt and chained checksum; the first
//     invalid frame ends the log;
//   - frames after the last commit mark belong to a transaction that
//     never committed and are discarded; blocks holding only such frames
//     are freed.
//
// Recovery is also what gives the asynchronous-commit mode (§4.2) its
// semantics: a commit mark whose transaction has a torn (checksum-
// mismatched) frame invalidates the whole transaction.
func (w *NVWAL) recover() error {
	if w.dev.Uint64(w.headerAddr) != headerMagic {
		return ErrCorruptHeader
	}
	if int(w.dev.Uint32(w.headerAddr+hdrPageSizeOff)) != w.pageSize {
		return fmt.Errorf("nvwal: page size mismatch (log %d, database %d)",
			w.dev.Uint32(w.headerAddr+hdrPageSizeOff), w.pageSize)
	}
	w.salt = w.dev.Uint64(w.headerAddr + hdrSaltOff)
	w.chain = chainSeed(w.salt)
	w.versions = make(map[uint32][]byte)
	w.blocks = nil
	w.frames = 0
	w.history = nil

	// Walk the block chain, collecting frames until the log ends.
	var scanned []scannedFrame
	chain := w.chain
	addr := w.dev.Uint64(w.headerAddr + hdrFirstBlkOff)
	prevLink := w.headerAddr + hdrFirstBlkOff
	for addr != 0 {
		blk, err := w.heap.BlockAt(addr)
		if err != nil || w.heapStateInUse(addr) != nil {
			// Dangling reference: the target was reclaimed as pending
			// after a crash between persisting the link and marking the
			// block in-use. Clear it (§4.3).
			w.clearLink(prevLink)
			break
		}
		w.blocks = append(w.blocks, blk)
		// Frames are packed within the block; a frame that would not
		// fit was placed at the start of the next block, so an invalid
		// region here just ends this block's frames. The chained
		// checksum makes a false continuation in the next block
		// impossible.
		off := blockLinkSize
		for off+frameHdrSize <= blk.Size() {
			fr, next, ok := w.readFrame(blk, off, chain)
			if !ok {
				break
			}
			fr.blockIdx = len(w.blocks) - 1
			fr.blockOff = off
			scanned = append(scanned, fr)
			chain = next
			off += align8(frameHdrSize + len(fr.payload))
		}
		prevLink = blk.Addr
		addr = w.dev.Uint64(blk.Addr)
	}

	// Keep only the committed prefix.
	lastCommit := -1
	for i, fr := range scanned {
		if fr.commit {
			lastCommit = i
		}
	}
	kept := scanned[:lastCommit+1]

	// Rebuild page versions; every page's first frame must be a full
	// frame (offset 0; its trailing clean region may be truncated, so
	// the zero-initialized image completes it).
	for _, fr := range kept {
		img, ok := w.versions[fr.pgno]
		if !ok {
			if fr.off != 0 {
				return fmt.Errorf("nvwal: page %d's first log frame is differential", fr.pgno)
			}
			img = make([]byte, w.pageSize)
			w.versions[fr.pgno] = img
		}
		applyExtent(img, fr.off, fr.payload)
		w.frames++
		w.history = append(w.history, histFrame{pgno: fr.pgno, off: fr.off, payload: fr.payload})
		w.chain = frameChain(w.chain, w.salt, fr)
	}

	// Resume point: right after the last committed frame. Blocks beyond
	// it held only discarded frames — free them and cut the chain.
	if lastCommit < 0 {
		w.truncateAfter(-1)
		w.tailUsed = blockLinkSize
		if len(w.blocks) == 0 {
			w.tailUsed = 0
		}
		return nil
	}
	last := kept[lastCommit]
	resumeOff := last.blockOff + align8(frameHdrSize+len(last.payload))
	w.truncateAfter(last.blockIdx)
	w.tailUsed = resumeOff
	// Discarded frames at the resume point are chain-valid continuations
	// of the kept log. If they were left in place and the next commit
	// happened to start in a fresh block, a later recovery would
	// resurrect them — so the torn frame slot is invalidated physically.
	tail := w.blocks[len(w.blocks)-1]
	if resumeOff+frameHdrSize <= tail.Size() {
		zero := make([]byte, frameHdrSize)
		a := tail.Addr + uint64(resumeOff)
		w.dev.Write(a, zero)
		w.persistRange(a, frameHdrSize)
	}
	return nil
}

// heapStateInUse verifies the block at addr is marked in-use.
func (w *NVWAL) heapStateInUse(addr uint64) error {
	st, err := w.heap.StateOf(addr)
	if err != nil {
		return err
	}
	if st != heapo.StateInUse {
		return fmt.Errorf("nvwal: block %#x in state %d", addr, st)
	}
	return nil
}

// clearLink persistently zeroes a dangling block reference.
func (w *NVWAL) clearLink(linkAddr uint64) {
	w.dev.PutUint64(linkAddr, 0)
	w.persistRange(linkAddr, 8)
}

// truncateAfter frees all blocks after index keepIdx (-1 frees all) and
// clears the tail link of the kept block.
func (w *NVWAL) truncateAfter(keepIdx int) {
	for i := len(w.blocks) - 1; i > keepIdx; i-- {
		// Best effort: a block that cannot be freed is leaked, never
		// corrupted.
		_ = w.heap.NVFree(w.blocks[i])
	}
	w.blocks = w.blocks[:keepIdx+1]
	w.clearLink(w.linkAddrForNext())
}

// readFrame parses and validates the frame at offset off of blk against
// the running checksum chain.
func (w *NVWAL) readFrame(blk heapo.Block, off int, prev uint32) (scannedFrame, uint32, bool) {
	if off+frameHdrSize > blk.Size() {
		return scannedFrame{}, 0, false
	}
	hdr := make([]byte, frameHdrSize)
	w.dev.Read(blk.Addr+uint64(off), hdr)
	mark := binary.LittleEndian.Uint64(hdr[0:])
	salt := binary.LittleEndian.Uint64(hdr[8:])
	pgno := binary.LittleEndian.Uint32(hdr[16:])
	inOff := int(binary.LittleEndian.Uint32(hdr[20:]))
	size := int(binary.LittleEndian.Uint32(hdr[24:]))
	stored := binary.LittleEndian.Uint32(hdr[28:])
	if salt != w.salt || pgno == 0 || (mark != 0 && mark != commitValue) {
		return scannedFrame{}, 0, false
	}
	if size <= 0 || size > w.pageSize || inOff < 0 || inOff+size > w.pageSize {
		return scannedFrame{}, 0, false
	}
	if off+frameHdrSize+size > blk.Size() {
		return scannedFrame{}, 0, false
	}
	payload := make([]byte, size)
	w.dev.Read(blk.Addr+uint64(off+frameHdrSize), payload)
	sum := crc32.Update(prev, crcTab, hdr[8:28])
	sum = crc32.Update(sum, crcTab, payload)
	if mask := w.cfg.effMask(); sum&mask != stored&mask {
		return scannedFrame{}, 0, false
	}
	return scannedFrame{
		pgno:    pgno,
		off:     inOff,
		payload: payload,
		commit:  mark == commitValue,
	}, sum, true
}

// frameChain recomputes the chain value a frame contributes (used to
// restore w.chain while replaying kept frames).
func frameChain(prev uint32, salt uint64, fr scannedFrame) uint32 {
	hdr := make([]byte, 20)
	binary.LittleEndian.PutUint64(hdr[0:], salt)
	binary.LittleEndian.PutUint32(hdr[8:], fr.pgno)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(fr.off))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(fr.payload)))
	sum := crc32.Update(prev, crcTab, hdr)
	return crc32.Update(sum, crcTab, fr.payload)
}
