package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/heapo"
	"repro/internal/metrics"
)

// scannedFrame is one frame parsed out of NVRAM during recovery.
type scannedFrame struct {
	pgno    uint32
	off     int
	full    bool
	payload []byte
	commit  bool
	// stream is the per-writer stream tag carried in the frame's offset
	// word (0 = untagged). Frames of concurrent streams interleave
	// physically; the append order — which the scan follows — is the
	// commit order, so replay needs no reordering, only the provenance.
	stream uint32
	// prepGtx is the global transaction id of a prepared (2PC) mark,
	// zero for ordinary frames. Prepared frames past the last commit are
	// in doubt: Config.PreparedResolver decides their fate.
	prepGtx uint64
	// chain value after this frame, for restoring w.chain at the
	// resume point.
	chainAfter uint32
	// position of the frame header, for locating the resume point
	blockIdx int
	blockOff int
}

// scanInfo reports what a generation scan ran into beyond the frames it
// validated.
type scanInfo struct {
	// mediaErrs counts uncorrectable read errors; each one ends the scan
	// and implicates the block it hit.
	mediaErrs int
	// ghosts counts structurally plausible frames past the first invalid
	// one — frames the chain break orphaned. Best-effort accounting for
	// the salvage report; a corrupt size field ends the count early.
	ghosts int
}

// recover rebuilds the volatile log state after a restart or crash. It
// is a *salvage* pass, not a fail-stop one: media damage to the log
// never returns an error, it shrinks what survives — always to a prefix
// of the committed transaction order — and files everything dropped in
// a SalvageReport. The §4.3 cases are handled mechanically:
//
//   - the kernel heap manager has already reclaimed pending blocks, so a
//     block reference whose target is no longer in-use is a dangling
//     pointer from a crashed allocation — the reference is cleared and
//     the scan stops there;
//   - frames are validated by salt and chained checksum; the first
//     invalid frame ends the log;
//   - frames after the last commit mark belong to a transaction that
//     never committed and are discarded; blocks holding only such frames
//     are freed.
//
// Media faults add three salvage rules on top:
//
//   - a header that fails validation is rebuilt: the log's contents are
//     lost, but the database file still holds the last completed
//     checkpoint, and recovery proceeds with an empty log instead of
//     refusing to open;
//   - an uncorrectable read error ends the affected generation's scan
//     and sends the block to the heap's persistent quarantine when the
//     generation retires;
//   - a frozen generation that does not scan back to the chain seal its
//     checkpoint record captured has lost *committed* frames — older
//     than everything in the live generation — so the live generation
//     is discarded too. Surviving transactions stay a prefix of the
//     commit order; re-applying newer transactions over a hole would
//     trade detected data loss for silent corruption.
//
// The header's checkpoint record drives the incremental checkpoint
// state machine:
//
//   - record salt == live salt: power failed between persisting the
//     record (A1) and opening the new generation (A2); nothing was
//     frozen, so the record is retired and recovery proceeds normally;
//   - phase "freeing": the frozen generation's pages are already durable
//     in the database file; recovery only finishes freeing its blocks;
//   - phase "backfilling": the frozen generation's committed frames are
//     replayed (they are all below the interrupted round's watermark),
//     then the live generation on top, and the round is completed
//     synchronously — backfill, free, retire. If media damage cost the
//     frozen generation sealed frames, completion is impossible: the
//     crashed backfill may already have written the lost frames' pages
//     into the database file, and no copy survives to either finish or
//     undo that. The round is left pending and the report flags the
//     database file so the database layer opens degraded read-only.
//
// Recovery is also what gives the asynchronous-commit mode (§4.2) its
// semantics: a commit mark whose transaction has a torn (checksum-
// mismatched) frame invalidates the whole transaction.
func (w *NVWAL) recover() error {
	rep := &SalvageReport{}
	w.salvage = rep
	w.versions = make(map[uint32][]byte)
	w.blocks = nil
	w.history = nil
	w.histBase = 0
	w.byPage = make(map[uint32][]int)
	w.base = make(map[uint32][]byte)

	hdr := make([]byte, 64)
	if err := w.dev.ReadChecked(w.headerAddr, hdr); err != nil {
		rep.MediaReadErrors++
		return w.rebuildHeader(rep, fmt.Errorf("%w: header unreadable at %#x: %v", ErrCorruptHeader, w.headerAddr, err))
	}
	if magic := binary.LittleEndian.Uint64(hdr[0:]); magic != headerMagic {
		return w.rebuildHeader(rep, fmt.Errorf("%w: bad magic %#x at %#x", ErrCorruptHeader, magic, w.headerAddr))
	}
	if ps := int(binary.LittleEndian.Uint32(hdr[hdrPageSizeOff:])); ps != w.pageSize {
		if plausiblePageSize(ps) {
			// A well-formed but different page size is a configuration
			// error, not media damage; refusing is the only safe answer.
			return fmt.Errorf("%w: page size mismatch (log %d, database %d)", ErrCorruptHeader, ps, w.pageSize)
		}
		return w.rebuildHeader(rep, fmt.Errorf("%w: implausible page size %d at %#x", ErrCorruptHeader, ps, w.headerAddr))
	}
	w.salt = binary.LittleEndian.Uint64(hdr[hdrSaltOff:])

	// The checkpoint record is read unconditionally: every log this
	// format creates writes one at birth, and gating it on the (equally
	// damageable) version field would let a single flipped bit silently
	// skip a frozen generation.
	ckBlk := binary.LittleEndian.Uint64(hdr[hdrCkptBlkOff:])
	ckSalt := binary.LittleEndian.Uint64(hdr[hdrCkptSaltOff:])
	ckPhase := binary.LittleEndian.Uint64(hdr[hdrCkptStateOff:])
	ckChain := binary.LittleEndian.Uint32(hdr[hdrCkptChainOff:])
	ckCount := binary.LittleEndian.Uint32(hdr[hdrCkptCountOff:])
	switch {
	case ckBlk == 0 || ckPhase == ckptNone:
		ckBlk = 0
	case ckSalt == w.salt:
		// Crash between A1 and A2: the record names the still-live
		// generation. Nothing was frozen; retire the record.
		w.writeCkptRecord(0, 0, ckptNone, 0, 0)
		ckBlk = 0
	case ckPhase == ckptFreeing:
		// The frozen pages are durable; only the frees remain.
		w.freeOldChain(ckBlk, ckSalt, rep)
		w.writeCkptRecord(0, 0, ckptNone, 0, 0)
		ckBlk = 0
	}

	// An interrupted backfill round: replay the frozen generation's
	// frames first — every one of them is below the round's watermark,
	// so they update page images without entering history. The chain
	// seal decides whether the scan got them all: a short or diverging
	// scan means committed frames are gone, which poisons the (newer)
	// live generation too.
	var frozenBlocks []heapo.Block
	frozenDamaged := false
	frozenLost := false
	if ckBlk != 0 {
		blocks, scanned, info := w.scanGeneration(ckBlk, ckSalt, w.headerAddr+hdrCkptBlkOff, false, rep)
		frozenBlocks = blocks
		kept := scanned
		endChain := chainSeed(ckSalt)
		if len(scanned) > 0 {
			endChain = scanned[len(scanned)-1].chainAfter
		}
		sealed := ckChain != 0 || ckCount != 0
		if info.mediaErrs > 0 || (sealed && endChain != ckChain) {
			frozenDamaged = true
			rep.FrozenDamaged = true
			rep.GenerationsSkipped++
			// Only whole transactions may survive a truncated scan.
			lastCommit := -1
			for i, fr := range scanned {
				if fr.commit {
					lastCommit = i
				}
			}
			kept = scanned[:lastCommit+1]
			if int(ckCount) > len(kept) {
				rep.FramesDropped += int(ckCount) - len(kept)
				frozenLost = true
			}
			rep.eventf("frozen generation (salt %d) damaged: scanned %d of %d sealed frames (chain %#x, want %#x), kept %d whole-transaction frames",
				ckSalt, len(scanned), ckCount, endChain, ckChain, len(kept))
		}
		rep.FramesKept += w.replayFrames(kept, false, ckSalt, rep)
	}

	// Live generation: scan, keep the committed prefix, replay it into
	// both the page images and the unbackfilled history index — unless a
	// damaged frozen generation already lost older committed frames, in
	// which case the whole live generation goes too.
	liveSalt := w.salt
	blocks, scanned, info := w.scanGeneration(
		binary.LittleEndian.Uint64(hdr[hdrFirstBlkOff:]), liveSalt,
		w.headerAddr+hdrFirstBlkOff, true, rep)
	w.blocks = blocks
	lastCommit := -1
	for i, fr := range scanned {
		if fr.commit {
			lastCommit = i
		}
	}
	// In-doubt 2PC resolution: frames past the last commit normally
	// belong to a transaction that never committed, but a prepared mark
	// means the decision lives elsewhere — in the coordinator's durable
	// commit-sequence record, consulted through the resolver. Decided
	// transactions get their mark flipped to a real commit in place (the
	// mark word is outside the CRC chain, so the kept log stays chain-
	// valid); undecided ones fall to the ordinary truncation below.
	// The engine admits no append behind a pending prepare, so at most
	// one group is ever in doubt: the frames between lastCommit and the
	// prepared mark are exactly that group's.
	if !frozenDamaged {
		for i := lastCommit + 1; i < len(scanned); i++ {
			fr := scanned[i]
			if fr.prepGtx == 0 {
				continue
			}
			if w.cfg.PreparedResolver == nil || !w.cfg.PreparedResolver(fr.prepGtx) {
				rep.eventf("in-doubt transaction %d resolved aborted (no coordinator decision); frames truncated", fr.prepGtx)
				break
			}
			a := blocks[fr.blockIdx].Addr + uint64(fr.blockOff)
			w.dev.PutUint64(a, commitValue)
			w.persistRange(a, 8)
			scanned[i].commit = true
			lastCommit = i
			rep.eventf("in-doubt transaction %d resolved committed from the coordinator record; provisional mark flipped at block %#x off %d",
				fr.prepGtx, blocks[fr.blockIdx].Addr, fr.blockOff)
		}
	}
	kept := scanned[:lastCommit+1]
	if frozenDamaged {
		rep.LiveDropped = true
		rep.FramesDropped += len(scanned) + info.ghosts
		rep.eventf("live generation (salt %d) dropped: %d frames discarded to keep survivors a prefix of commit order", liveSalt, len(scanned)+info.ghosts)
		kept = nil
		lastCommit = -1
	} else {
		rep.FramesDropped += len(scanned) - len(kept) + info.ghosts
	}
	rep.FramesKept += w.replayFrames(kept, true, liveSalt, rep)
	w.chain = chainSeed(liveSalt)
	if lastCommit >= 0 {
		w.chain = kept[lastCommit].chainAfter
	}

	// Resume point: right after the last committed frame. Blocks beyond
	// it held only discarded frames — free them (or quarantine the ones
	// media errors implicated) and cut the chain.
	if lastCommit < 0 {
		w.truncateAfter(-1)
		w.tailUsed = blockLinkSize
		if len(w.blocks) == 0 {
			w.tailUsed = 0
		}
	} else {
		last := kept[lastCommit]
		resumeOff := last.blockOff + align8(frameHdrSize+len(last.payload))
		w.truncateAfter(last.blockIdx)
		w.tailUsed = resumeOff
		// Discarded frames at the resume point are chain-valid continuations
		// of the kept log. If they were left in place and the next commit
		// happened to start in a fresh block, a later recovery would
		// resurrect them — so the torn frame slot is invalidated physically.
		tail := w.blocks[len(w.blocks)-1]
		if resumeOff+frameHdrSize <= tail.Size() {
			a := tail.Addr + uint64(resumeOff)
			w.dev.Write(a, zeroFrameHdr[:])
			w.persistRange(a, frameHdrSize)
		}
		if w.isBad(tail.Addr) {
			// The kept tail block took a media error past the resume
			// point: seal it so new frames land in a fresh block, and let
			// the next checkpoint quarantine it.
			w.tailUsed = tail.Size()
			rep.eventf("tail block %#x sealed after media error; new frames go to a fresh block", tail.Addr)
		}
	}

	w.m.Inc(metrics.FramesSalvaged, int64(rep.FramesKept))
	w.m.Inc(metrics.FramesDropped, int64(rep.FramesDropped))
	if ckBlk != 0 {
		if frozenLost {
			// Sealed frames of the interrupted round are gone, and the
			// crashed backfill may already have pushed their page images —
			// whole or torn — into the database file. Rewriting only the
			// kept prefix cannot undo that, and no copy of the lost frames
			// exists to finish the job, so the database file itself can no
			// longer be trusted to match any transaction boundary. The
			// round stays pending (the next recovery reaches the same
			// verdict from the same durable state) and the report is
			// flagged so the database layer opens degraded read-only.
			rep.DBFileDamaged = true
			rep.eventf("frozen generation (salt %d) lost sealed frames mid-backfill: database file may hold partially backfilled pages; round left pending, opening degraded", ckSalt)
			return nil
		}
		return w.finishRecoveredCheckpoint(ckBlk, ckSalt, frozenBlocks, rep)
	}
	return nil
}

// plausiblePageSize reports whether n could be a configured page size (a
// power of two in SQLite's range) as opposed to a bit-flipped one.
func plausiblePageSize(n int) bool {
	return n >= 512 && n <= 65536 && n&(n-1) == 0
}

// rebuildHeader reinitializes a header that failed validation: fresh
// salt (derived deterministically from the corrupt content, so a
// replayed crash rebuilds identically), empty log, retired checkpoint
// record. The old log blocks are unreachable — without a trustworthy
// header there is no safe way to tell them from live data — and are
// conservatively leaked to the heap; the database file still holds the
// last completed checkpoint.
func (w *NVWAL) rebuildHeader(rep *SalvageReport, cause error) error {
	rep.HeaderRebuilt = true
	rep.eventf("header rebuilt: %v", cause)
	rep.eventf("previous log blocks are unreachable (leaked); database file retains the last completed checkpoint")
	salt := mix64(w.dev.Uint64(w.headerAddr)^mix64(w.dev.Uint64(w.headerAddr+hdrSaltOff))) | 1
	w.salt = salt
	w.blocks = nil
	w.tailUsed = 0
	w.chain = chainSeed(salt)
	w.writeHeader()
	w.writeCkptRecord(0, 0, ckptNone, 0, 0)
	return nil
}

// scanGeneration walks one generation's block chain from firstAddr,
// collecting the frames that validate against its salt and checksum
// chain. clearDangling enables the §4.3 dangling-reference repair, which
// only the live generation needs: a frozen chain's links were all
// persisted long before it froze. An uncorrectable media error ends the
// scan and marks the block it hit for quarantine.
func (w *NVWAL) scanGeneration(firstAddr, salt uint64, prevLink uint64, clearDangling bool, rep *SalvageReport) ([]heapo.Block, []scannedFrame, scanInfo) {
	var blocks []heapo.Block
	var scanned []scannedFrame
	var info scanInfo
	chain := chainSeed(salt)
	addr := firstAddr
	for addr != 0 {
		blk, err := w.heap.BlockAt(addr)
		if err != nil || w.heapStateInUse(addr) != nil {
			// Dangling reference: the target was reclaimed as pending
			// after a crash between persisting the link and marking the
			// block in-use. Clear it (§4.3).
			if clearDangling {
				w.clearLink(prevLink)
			}
			break
		}
		blocks = append(blocks, blk)
		// Frames are packed within the block; a frame that would not
		// fit was placed at the start of the next block, so an invalid
		// region here just ends this block's frames. The chained
		// checksum makes a false continuation in the next block
		// impossible, so validation resumes in every block; the invalid
		// remainder of a block is probed structurally only to count the
		// frames a chain break orphaned.
		off := blockLinkSize
		probing := false
		for off+frameHdrSize <= blk.Size() {
			if probing {
				n, plausible := w.probeFrame(blk, off, salt)
				if !plausible {
					break
				}
				info.ghosts++
				off += n
				continue
			}
			fr, next, ok, err := w.readFrame(blk, off, chain, salt)
			if err != nil {
				info.mediaErrs++
				rep.MediaReadErrors++
				w.markBad(blk.Addr)
				rep.eventf("gen %d frame %d (block %#x off %d): %v — scan stopped, block marked for quarantine",
					salt, len(scanned), blk.Addr, off, err)
				return blocks, scanned, info
			}
			if !ok {
				probing = true
				continue
			}
			fr.blockIdx = len(blocks) - 1
			fr.blockOff = off
			scanned = append(scanned, fr)
			chain = next
			off += align8(frameHdrSize + len(fr.payload))
		}
		prevLink = blk.Addr
		var link [8]byte
		if err := w.dev.ReadChecked(blk.Addr, link[:]); err != nil {
			info.mediaErrs++
			rep.MediaReadErrors++
			w.markBad(blk.Addr)
			rep.eventf("gen %d: unreadable link word in block %#x: %v — scan stopped, block marked for quarantine",
				salt, blk.Addr, err)
			return blocks, scanned, info
		}
		addr = binary.LittleEndian.Uint64(link[:])
	}
	return blocks, scanned, info
}

// probeFrame structurally parses the frame at off without checksum
// validation: salt, page number, mark and size bounds only. It is used
// past a chain break to count the orphaned frames being dropped; a
// corrupt size field just ends the count early.
func (w *NVWAL) probeFrame(blk heapo.Block, off int, salt uint64) (int, bool) {
	if off+frameHdrSize > blk.Size() {
		return 0, false
	}
	hdr := make([]byte, frameHdrSize)
	if err := w.dev.ReadChecked(blk.Addr+uint64(off), hdr); err != nil {
		return 0, false
	}
	mark := binary.LittleEndian.Uint64(hdr[0:])
	frSalt := binary.LittleEndian.Uint64(hdr[8:])
	pgno := binary.LittleEndian.Uint32(hdr[16:])
	size := int(binary.LittleEndian.Uint32(hdr[24:]))
	if frSalt != salt || pgno == 0 || !validMark(mark) ||
		size <= 0 || size > w.pageSize || off+frameHdrSize+size > blk.Size() {
		return 0, false
	}
	return align8(frameHdrSize + size), true
}

// replayFrames applies kept frames to the page images, returning how
// many were applied. When record is true the frames are not yet
// backfilled: they also enter the history and the per-page index,
// capturing each page's replay base. A page whose first frame is
// differential was backfilled by an earlier checkpoint round, so its
// base comes from the database file — and when that read fails, the log
// cannot repair the database: the page's frames are dropped (its reads
// will surface honest errors rather than wrong data) and the report is
// flagged so the database layer opens degraded.
func (w *NVWAL) replayFrames(kept []scannedFrame, record bool, gen uint64, rep *SalvageReport) int {
	applied := 0
	for i, fr := range kept {
		img, ok := w.versions[fr.pgno]
		if !ok {
			img = make([]byte, w.pageSize)
			if !fr.full {
				if err := w.db.ReadPage(fr.pgno, img); err != nil {
					rep.DBFileDamaged = true
					rep.FramesDropped++
					rep.eventf("dropping frames for page %d: %v",
						fr.pgno, fmt.Errorf("nvwal: reading backfilled base of page %d: %w at gen %d frame %d", fr.pgno, err, gen, i))
					continue
				}
			}
			w.versions[fr.pgno] = img
		}
		if record {
			if _, tracked := w.byPage[fr.pgno]; !tracked && !fr.full {
				base := make([]byte, w.pageSize)
				copy(base, img)
				w.base[fr.pgno] = base
			}
			w.byPage[fr.pgno] = append(w.byPage[fr.pgno], w.histBase+len(w.history))
			w.history = append(w.history, histFrame{pgno: fr.pgno, off: fr.off, full: fr.full, payload: fr.payload})
		}
		if fr.full {
			for i := range img {
				img[i] = 0
			}
		}
		applyExtent(img, fr.off, fr.payload)
		applied++
	}
	return applied
}

// finishRecoveredCheckpoint completes a round that power failure caught
// in its backfill phase: make every recovered page image durable, then
// run phase C's record flip + frees. Backfilling the live generation's
// pages too is over-eager but harmless — replaying a differential frame
// onto an image that already includes it is idempotent, and no reader
// can hold a mark below the recovery point. A database-file failure
// does not fail the open: the record stays in its backfilling phase
// (the next recovery retries) and the report is flagged so the database
// layer opens degraded.
func (w *NVWAL) finishRecoveredCheckpoint(firstBlk, salt uint64, blocks []heapo.Block, rep *SalvageReport) error {
	for pgno, img := range w.versions {
		if err := w.db.WritePage(pgno, img); err != nil {
			rep.DBFileDamaged = true
			rep.eventf("recovered checkpoint: writing page %d: %v — round left pending, opening degraded", pgno, err)
			return nil
		}
	}
	if err := w.db.Sync(); err != nil {
		rep.DBFileDamaged = true
		rep.eventf("recovered checkpoint: sync: %v — round left pending, opening degraded", err)
		return nil
	}
	w.writeCkptRecord(firstBlk, salt, ckptFreeing, 0, 0)
	for i := len(blocks) - 1; i >= 0; i-- {
		// Best effort; the live-generation scan may already have freed a
		// block the interrupted round shared with a half-written header.
		if w.isBad(blocks[i].Addr) {
			w.quarantineNow(blocks[i], rep)
		} else {
			_ = w.heap.NVFree(blocks[i])
		}
	}
	w.writeCkptRecord(0, 0, ckptNone, 0, 0)
	w.m.Inc(metrics.Checkpoints, 1)
	return nil
}

// freeOldChain finishes freeing a frozen generation whose pages are
// already durable (phase "freeing"). Phase C frees tail-first, so the
// head-first walk sees the still-allocated prefix; it stops at the
// first block that is no longer in-use, or whose first frame does not
// carry the frozen generation's salt (the block was freed and already
// recycled into the new generation — freeing it again would corrupt the
// live log; a conservatively leaked block is reclaimable, a freed live
// block is not). An unreadable block is quarantined — its pages are
// durable, only the media is suspect — and ends the walk.
func (w *NVWAL) freeOldChain(firstAddr, salt uint64, rep *SalvageReport) {
	addr := firstAddr
	for addr != 0 {
		blk, err := w.heap.BlockAt(addr)
		if err != nil || w.heapStateInUse(addr) != nil {
			return
		}
		if blk.Size() >= blockLinkSize+frameHdrSize {
			var frSalt [8]byte
			if err := w.dev.ReadChecked(blk.Addr+blockLinkSize+8, frSalt[:]); err != nil {
				rep.MediaReadErrors++
				rep.eventf("freeing frozen chain: unreadable block %#x: %v — quarantined", blk.Addr, err)
				w.quarantineNow(blk, rep)
				return
			}
			if binary.LittleEndian.Uint64(frSalt[:]) != salt {
				return
			}
		}
		var link [8]byte
		if err := w.dev.ReadChecked(blk.Addr, link[:]); err != nil {
			rep.MediaReadErrors++
			rep.eventf("freeing frozen chain: unreadable link in block %#x: %v — quarantined", blk.Addr, err)
			w.quarantineNow(blk, rep)
			return
		}
		next := binary.LittleEndian.Uint64(link[:])
		if w.heap.NVFree(blk) != nil {
			return
		}
		addr = next
	}
}

// heapStateInUse verifies the block at addr is marked in-use.
func (w *NVWAL) heapStateInUse(addr uint64) error {
	st, err := w.heap.StateOf(addr)
	if err != nil {
		return err
	}
	if st != heapo.StateInUse {
		return fmt.Errorf("nvwal: block %#x in state %d", addr, st)
	}
	return nil
}

// clearLink persistently zeroes a dangling block reference.
func (w *NVWAL) clearLink(linkAddr uint64) {
	w.dev.PutUint64(linkAddr, 0)
	w.persistRange(linkAddr, 8)
}

// truncateAfter frees all blocks after index keepIdx (-1 frees all) and
// clears the tail link of the kept block. Blocks media errors
// implicated are quarantined instead of freed.
func (w *NVWAL) truncateAfter(keepIdx int) {
	for i := len(w.blocks) - 1; i > keepIdx; i-- {
		// Best effort: a block that cannot be freed is leaked, never
		// corrupted.
		if w.isBad(w.blocks[i].Addr) {
			w.quarantineNow(w.blocks[i], w.salvage)
		} else {
			_ = w.heap.NVFree(w.blocks[i])
		}
	}
	w.blocks = w.blocks[:keepIdx+1]
	w.clearLink(w.linkAddrForNext())
}

// readFrame parses and validates the frame at offset off of blk against
// the running checksum chain and the generation's salt. A non-nil error
// is an uncorrectable media read error; ok=false with a nil error means
// the bytes simply do not form a valid next frame (the ordinary end of
// a log).
func (w *NVWAL) readFrame(blk heapo.Block, off int, prev uint32, salt uint64) (scannedFrame, uint32, bool, error) {
	if off+frameHdrSize > blk.Size() {
		return scannedFrame{}, 0, false, nil
	}
	hdr := make([]byte, frameHdrSize)
	if err := w.dev.ReadChecked(blk.Addr+uint64(off), hdr); err != nil {
		return scannedFrame{}, 0, false, err
	}
	mark := binary.LittleEndian.Uint64(hdr[0:])
	frSalt := binary.LittleEndian.Uint64(hdr[8:])
	pgno := binary.LittleEndian.Uint32(hdr[16:])
	offWord := binary.LittleEndian.Uint32(hdr[20:])
	full := offWord&offFullFlag != 0
	inOff := int(offWord & offInOffMask)
	stream := (offWord &^ offFullFlag) >> offStreamShift
	size := int(binary.LittleEndian.Uint32(hdr[24:]))
	stored := binary.LittleEndian.Uint32(hdr[28:])
	if frSalt != salt || pgno == 0 || !validMark(mark) {
		return scannedFrame{}, 0, false, nil
	}
	if size <= 0 || size > w.pageSize || inOff < 0 || inOff+size > w.pageSize {
		return scannedFrame{}, 0, false, nil
	}
	if off+frameHdrSize+size > blk.Size() {
		return scannedFrame{}, 0, false, nil
	}
	payload := make([]byte, size)
	if err := w.dev.ReadChecked(blk.Addr+uint64(off+frameHdrSize), payload); err != nil {
		return scannedFrame{}, 0, false, err
	}
	sum := crc32.Update(prev, crcTab, hdr[8:28])
	sum = crc32.Update(sum, crcTab, payload)
	if mask := w.cfg.effMask(); sum&mask != stored&mask {
		return scannedFrame{}, 0, false, nil
	}
	fr := scannedFrame{
		pgno:       pgno,
		off:        inOff,
		full:       full,
		payload:    payload,
		commit:     mark == commitValue,
		stream:     stream,
		chainAfter: sum,
	}
	if mark&preparedFlag != 0 {
		fr.prepGtx = mark &^ preparedFlag
	}
	return fr, sum, true, nil
}

// validMark reports whether a frame's mark word is one the engine
// writes: clear (mid-group), committed, or prepared (2PC provisional).
func validMark(mark uint64) bool {
	return mark == 0 || mark == commitValue || (mark&preparedFlag != 0 && mark&^preparedFlag != 0)
}
