package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/heapo"
	"repro/internal/metrics"
)

// scannedFrame is one frame parsed out of NVRAM during recovery.
type scannedFrame struct {
	pgno    uint32
	off     int
	full    bool
	payload []byte
	commit  bool
	// chain value after this frame, for restoring w.chain at the
	// resume point.
	chainAfter uint32
	// position of the frame header, for locating the resume point
	blockIdx int
	blockOff int
}

// recover rebuilds the volatile log state after a restart or crash,
// implementing the §4.3 cases mechanically:
//
//   - the kernel heap manager has already reclaimed pending blocks, so a
//     block reference whose target is no longer in-use is a dangling
//     pointer from a crashed allocation — the reference is cleared and
//     the scan stops there;
//   - frames are validated by salt and chained checksum; the first
//     invalid frame ends the log;
//   - frames after the last commit mark belong to a transaction that
//     never committed and are discarded; blocks holding only such frames
//     are freed.
//
// On top of that, the header's checkpoint record drives the incremental
// checkpoint state machine:
//
//   - record salt == live salt: power failed between persisting the
//     record (A1) and opening the new generation (A2); nothing was
//     frozen, so the record is retired and recovery proceeds normally;
//   - phase "freeing": the frozen generation's pages are already durable
//     in the database file; recovery only finishes freeing its blocks;
//   - phase "backfilling": the frozen generation's committed frames are
//     replayed (they are all below the interrupted round's watermark),
//     then the live generation on top, and the round is completed
//     synchronously — backfill, free, retire.
//
// Recovery is also what gives the asynchronous-commit mode (§4.2) its
// semantics: a commit mark whose transaction has a torn (checksum-
// mismatched) frame invalidates the whole transaction.
func (w *NVWAL) recover() error {
	if w.dev.Uint64(w.headerAddr) != headerMagic {
		return ErrCorruptHeader
	}
	if int(w.dev.Uint32(w.headerAddr+hdrPageSizeOff)) != w.pageSize {
		return fmt.Errorf("nvwal: page size mismatch (log %d, database %d)",
			w.dev.Uint32(w.headerAddr+hdrPageSizeOff), w.pageSize)
	}
	w.salt = w.dev.Uint64(w.headerAddr + hdrSaltOff)
	w.versions = make(map[uint32][]byte)
	w.blocks = nil
	w.history = nil
	w.histBase = 0
	w.byPage = make(map[uint32][]int)
	w.base = make(map[uint32][]byte)

	// Version-1 headers predate the checkpoint record; their [32:56)
	// bytes are unwritten and must read as "no round in flight".
	var ckBlk, ckSalt, ckPhase uint64
	if w.dev.Uint32(w.headerAddr+hdrVersionOff) >= 2 {
		ckBlk = w.dev.Uint64(w.headerAddr + hdrCkptBlkOff)
		ckSalt = w.dev.Uint64(w.headerAddr + hdrCkptSaltOff)
		ckPhase = w.dev.Uint64(w.headerAddr + hdrCkptStateOff)
	}
	switch {
	case ckBlk == 0 || ckPhase == ckptNone:
		ckBlk = 0
	case ckSalt == w.salt:
		// Crash between A1 and A2: the record names the still-live
		// generation. Nothing was frozen; retire the record.
		w.writeCkptRecord(0, 0, ckptNone)
		ckBlk = 0
	case ckPhase == ckptFreeing:
		// The frozen pages are durable; only the frees remain.
		w.freeOldChain(ckBlk, ckSalt)
		w.writeCkptRecord(0, 0, ckptNone)
		ckBlk = 0
	}

	// An interrupted backfill round: replay the frozen generation's
	// committed frames first — every one of them is below the round's
	// watermark, so they update page images without entering history.
	var frozenBlocks []heapo.Block
	if ckBlk != 0 {
		var frozenKept []scannedFrame
		frozenBlocks, frozenKept = w.scanGeneration(ckBlk, ckSalt, w.headerAddr+hdrCkptBlkOff, false)
		if err := w.replayFrames(frozenKept, false); err != nil {
			return err
		}
	}

	// Live generation: scan, keep the committed prefix, replay it into
	// both the page images and the unbackfilled history index.
	blocks, scanned := w.scanGeneration(
		w.dev.Uint64(w.headerAddr+hdrFirstBlkOff), w.salt,
		w.headerAddr+hdrFirstBlkOff, true)
	w.blocks = blocks
	lastCommit := -1
	for i, fr := range scanned {
		if fr.commit {
			lastCommit = i
		}
	}
	kept := scanned[:lastCommit+1]
	if err := w.replayFrames(kept, true); err != nil {
		return err
	}
	w.chain = chainSeed(w.salt)
	if lastCommit >= 0 {
		w.chain = kept[lastCommit].chainAfter
	}

	// Resume point: right after the last committed frame. Blocks beyond
	// it held only discarded frames — free them and cut the chain.
	if lastCommit < 0 {
		w.truncateAfter(-1)
		w.tailUsed = blockLinkSize
		if len(w.blocks) == 0 {
			w.tailUsed = 0
		}
	} else {
		last := kept[lastCommit]
		resumeOff := last.blockOff + align8(frameHdrSize+len(last.payload))
		w.truncateAfter(last.blockIdx)
		w.tailUsed = resumeOff
		// Discarded frames at the resume point are chain-valid continuations
		// of the kept log. If they were left in place and the next commit
		// happened to start in a fresh block, a later recovery would
		// resurrect them — so the torn frame slot is invalidated physically.
		tail := w.blocks[len(w.blocks)-1]
		if resumeOff+frameHdrSize <= tail.Size() {
			zero := make([]byte, frameHdrSize)
			a := tail.Addr + uint64(resumeOff)
			w.dev.Write(a, zero)
			w.persistRange(a, frameHdrSize)
		}
	}

	if ckBlk != 0 {
		return w.finishRecoveredCheckpoint(ckBlk, ckSalt, frozenBlocks)
	}
	return nil
}

// scanGeneration walks one generation's block chain from firstAddr,
// collecting the frames that validate against its salt and checksum
// chain. clearDangling enables the §4.3 dangling-reference repair, which
// only the live generation needs: a frozen chain's links were all
// persisted long before it froze.
func (w *NVWAL) scanGeneration(firstAddr, salt uint64, prevLink uint64, clearDangling bool) ([]heapo.Block, []scannedFrame) {
	var blocks []heapo.Block
	var scanned []scannedFrame
	chain := chainSeed(salt)
	addr := firstAddr
	for addr != 0 {
		blk, err := w.heap.BlockAt(addr)
		if err != nil || w.heapStateInUse(addr) != nil {
			// Dangling reference: the target was reclaimed as pending
			// after a crash between persisting the link and marking the
			// block in-use. Clear it (§4.3).
			if clearDangling {
				w.clearLink(prevLink)
			}
			break
		}
		blocks = append(blocks, blk)
		// Frames are packed within the block; a frame that would not
		// fit was placed at the start of the next block, so an invalid
		// region here just ends this block's frames. The chained
		// checksum makes a false continuation in the next block
		// impossible.
		off := blockLinkSize
		for off+frameHdrSize <= blk.Size() {
			fr, next, ok := w.readFrame(blk, off, chain, salt)
			if !ok {
				break
			}
			fr.blockIdx = len(blocks) - 1
			fr.blockOff = off
			scanned = append(scanned, fr)
			chain = next
			off += align8(frameHdrSize + len(fr.payload))
		}
		prevLink = blk.Addr
		addr = w.dev.Uint64(blk.Addr)
	}
	return blocks, scanned
}

// replayFrames applies kept frames to the page images. When record is
// true the frames are not yet backfilled: they also enter the history
// and the per-page index, capturing each page's replay base. A page
// whose first frame is differential was backfilled by an earlier
// checkpoint round, so its base comes from the database file.
func (w *NVWAL) replayFrames(kept []scannedFrame, record bool) error {
	for _, fr := range kept {
		img, ok := w.versions[fr.pgno]
		if !ok {
			img = make([]byte, w.pageSize)
			if !fr.full {
				if err := w.db.ReadPage(fr.pgno, img); err != nil {
					return fmt.Errorf("nvwal: reading backfilled base of page %d: %w", fr.pgno, err)
				}
			}
			w.versions[fr.pgno] = img
		}
		if record {
			if _, tracked := w.byPage[fr.pgno]; !tracked && !fr.full {
				base := make([]byte, w.pageSize)
				copy(base, img)
				w.base[fr.pgno] = base
			}
			w.byPage[fr.pgno] = append(w.byPage[fr.pgno], w.histBase+len(w.history))
			w.history = append(w.history, histFrame{pgno: fr.pgno, off: fr.off, full: fr.full, payload: fr.payload})
		}
		if fr.full {
			for i := range img {
				img[i] = 0
			}
		}
		applyExtent(img, fr.off, fr.payload)
	}
	return nil
}

// finishRecoveredCheckpoint completes a round that power failure caught
// in its backfill phase: make every recovered page image durable, then
// run phase C's record flip + frees. Backfilling the live generation's
// pages too is over-eager but harmless — replaying a differential frame
// onto an image that already includes it is idempotent, and no reader
// can hold a mark below the recovery point.
func (w *NVWAL) finishRecoveredCheckpoint(firstBlk, salt uint64, blocks []heapo.Block) error {
	for pgno, img := range w.versions {
		if err := w.db.WritePage(pgno, img); err != nil {
			return err
		}
	}
	if err := w.db.Sync(); err != nil {
		return err
	}
	w.writeCkptRecord(firstBlk, salt, ckptFreeing)
	for i := len(blocks) - 1; i >= 0; i-- {
		// Best effort; the live-generation scan may already have freed a
		// block the interrupted round shared with a half-written header.
		_ = w.heap.NVFree(blocks[i])
	}
	w.writeCkptRecord(0, 0, ckptNone)
	w.m.Inc(metrics.Checkpoints, 1)
	return nil
}

// freeOldChain finishes freeing a frozen generation whose pages are
// already durable (phase "freeing"). Phase C frees tail-first, so the
// head-first walk sees the still-allocated prefix; it stops at the
// first block that is no longer in-use, or whose first frame does not
// carry the frozen generation's salt (the block was freed and already
// recycled into the new generation — freeing it again would corrupt the
// live log; a conservatively leaked block is reclaimable, a freed live
// block is not).
func (w *NVWAL) freeOldChain(firstAddr, salt uint64) {
	addr := firstAddr
	for addr != 0 {
		blk, err := w.heap.BlockAt(addr)
		if err != nil || w.heapStateInUse(addr) != nil {
			return
		}
		if blk.Size() >= blockLinkSize+frameHdrSize &&
			w.dev.Uint64(blk.Addr+blockLinkSize+8) != salt {
			return
		}
		next := w.dev.Uint64(blk.Addr)
		if w.heap.NVFree(blk) != nil {
			return
		}
		addr = next
	}
}

// heapStateInUse verifies the block at addr is marked in-use.
func (w *NVWAL) heapStateInUse(addr uint64) error {
	st, err := w.heap.StateOf(addr)
	if err != nil {
		return err
	}
	if st != heapo.StateInUse {
		return fmt.Errorf("nvwal: block %#x in state %d", addr, st)
	}
	return nil
}

// clearLink persistently zeroes a dangling block reference.
func (w *NVWAL) clearLink(linkAddr uint64) {
	w.dev.PutUint64(linkAddr, 0)
	w.persistRange(linkAddr, 8)
}

// truncateAfter frees all blocks after index keepIdx (-1 frees all) and
// clears the tail link of the kept block.
func (w *NVWAL) truncateAfter(keepIdx int) {
	for i := len(w.blocks) - 1; i > keepIdx; i-- {
		// Best effort: a block that cannot be freed is leaked, never
		// corrupted.
		_ = w.heap.NVFree(w.blocks[i])
	}
	w.blocks = w.blocks[:keepIdx+1]
	w.clearLink(w.linkAddrForNext())
}

// readFrame parses and validates the frame at offset off of blk against
// the running checksum chain and the generation's salt.
func (w *NVWAL) readFrame(blk heapo.Block, off int, prev uint32, salt uint64) (scannedFrame, uint32, bool) {
	if off+frameHdrSize > blk.Size() {
		return scannedFrame{}, 0, false
	}
	hdr := make([]byte, frameHdrSize)
	w.dev.Read(blk.Addr+uint64(off), hdr)
	mark := binary.LittleEndian.Uint64(hdr[0:])
	frSalt := binary.LittleEndian.Uint64(hdr[8:])
	pgno := binary.LittleEndian.Uint32(hdr[16:])
	offWord := binary.LittleEndian.Uint32(hdr[20:])
	full := offWord&offFullFlag != 0
	inOff := int(offWord &^ offFullFlag)
	size := int(binary.LittleEndian.Uint32(hdr[24:]))
	stored := binary.LittleEndian.Uint32(hdr[28:])
	if frSalt != salt || pgno == 0 || (mark != 0 && mark != commitValue) {
		return scannedFrame{}, 0, false
	}
	if size <= 0 || size > w.pageSize || inOff < 0 || inOff+size > w.pageSize {
		return scannedFrame{}, 0, false
	}
	if off+frameHdrSize+size > blk.Size() {
		return scannedFrame{}, 0, false
	}
	payload := make([]byte, size)
	w.dev.Read(blk.Addr+uint64(off+frameHdrSize), payload)
	sum := crc32.Update(prev, crcTab, hdr[8:28])
	sum = crc32.Update(sum, crcTab, payload)
	if mask := w.cfg.effMask(); sum&mask != stored&mask {
		return scannedFrame{}, 0, false
	}
	return scannedFrame{
		pgno:       pgno,
		off:        inOff,
		full:       full,
		payload:    payload,
		commit:     mark == commitValue,
		chainAfter: sum,
	}, sum, true
}
