package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/pager"
)

// SyncMode selects how NVWAL orders its NVRAM writes (§4.1, Figure 4).
type SyncMode int

const (
	// SyncLazy is transaction-aware lazy synchronization: one flush
	// batch plus one persist barrier between the logging phase and the
	// commit-mark write (Figure 4(c), Algorithm 1).
	SyncLazy SyncMode = iota
	// SyncEager flushes and persists after every log entry (Figure
	// 4(b)); the ordering-overhead baseline of Figures 5 and 6.
	SyncEager
	// SyncChecksum is asynchronous commit (§4.2, Figure 4(d)): log
	// entries are never explicitly flushed; only the commit mark and
	// checksum are. Recovery validates the per-frame checksums and
	// invalidates torn transactions — at a small probabilistic risk.
	SyncChecksum
	// SyncStrictPersistency models the §4.4 strict persistency
	// architecture: persist order matches volatile memory order, so no
	// cache-flush instructions or persist barriers appear in the code —
	// but the hardware orders every log store's persist, which the
	// paper conjectures "may significantly limit persist performance".
	SyncStrictPersistency
	// SyncEpochPersistency models §4.4 relaxed (epoch) persistency:
	// hardware persist barriers divide persists into epochs (one for
	// the log writes, one for the commit mark) and write dirty lines
	// back without explicit dccmvac instructions or kernel crossings.
	SyncEpochPersistency
)

func (s SyncMode) String() string {
	switch s {
	case SyncEager:
		return "eager"
	case SyncChecksum:
		return "checksum"
	case SyncStrictPersistency:
		return "strict-persistency"
	case SyncEpochPersistency:
		return "epoch-persistency"
	default:
		return "lazy"
	}
}

// Config parameterizes an NVWAL instance.
type Config struct {
	// Sync selects the persistency-guarantee scheme.
	Sync SyncMode
	// Differential enables byte-granularity differential logging
	// (§3.2). When off, every frame carries the full page.
	Differential bool
	// UserHeap enables user-level NVRAM heap management (§3.3):
	// nv_pre_malloc of BlockSize-byte blocks with the pending/in-use
	// protocol, instead of one Heapo nvmalloc per WAL frame.
	UserHeap bool
	// BlockSize is the user-heap block size in bytes (paper: 8 KB).
	BlockSize int
	// GapMerge coalesces dirty extents separated by fewer clean bytes
	// than this (default: the cache line size).
	GapMerge int
	// Name is the Heapo persistent-namespace key under which the log's
	// header block is registered, so it survives reboots.
	Name string
	// ChecksumMask weakens frame-checksum validation to the masked bits
	// (0 = full 32-bit CRC). It exists solely for the §4.2 collision
	// study: asynchronous commit is probabilistically safe, and
	// shrinking the checksum makes its failure mode observable.
	ChecksumMask uint32
	// PreparedResolver, when non-nil, resolves in-doubt prepared
	// transactions found at the log tail during recovery: it is called
	// with the global transaction id of each prepared-but-undecided
	// frame group and returns true if the cross-shard coordinator
	// decided commit (the id is covered by the persisted commit-sequence
	// record), in which case recovery flips the provisional mark to a
	// commit mark in place. False — or a nil resolver — aborts the
	// in-doubt transaction by truncating it like any uncommitted tail.
	PreparedResolver func(gtx uint64) bool
	// UnsafeEarlyCommitMark deliberately breaks Algorithm 1's ordering
	// for SyncLazy: the commit mark is written and persisted BEFORE the
	// frame batch is flushed, and the batch's persist barrier is
	// skipped, so Commit acknowledges transactions whose frames are
	// merely queued on the memory controller. TEST-ONLY: it exists to
	// prove the crash-consistency fuzzer detects ordering violations
	// (an acknowledged transaction vanishes after a crash). Never set
	// it outside a test or the fuzzer's -bug mode.
	UnsafeEarlyCommitMark bool
}

// effMask returns the effective validation mask.
func (c Config) effMask() uint32 {
	if c.ChecksumMask == 0 {
		return ^uint32(0)
	}
	return c.ChecksumMask
}

func (c Config) withDefaults(lineSize int) Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 8192
	}
	if c.GapMerge <= 0 {
		c.GapMerge = lineSize
	}
	if c.Name == "" {
		c.Name = "nvwal"
	}
	return c
}

// Label renders the configuration in the paper's Figure 7 naming.
func (c Config) Label() string {
	s := ""
	if c.UserHeap {
		s += "UH+"
	}
	switch c.Sync {
	case SyncEager:
		s += "E"
	case SyncChecksum:
		s += "CS"
	case SyncStrictPersistency:
		s += "SP"
	case SyncEpochPersistency:
		s += "EP"
	default:
		s += "LS"
	}
	if c.Differential {
		s += "+Diff"
	}
	return s
}

// Persistent layout.
//
// Header block (one 4 KB Heapo block, found via the persistent
// namespace):
//
//	[0:8)   magic
//	[8:12)  page size
//	[12:16) format version
//	[16:24) checkpoint id (salt) of the live generation — incremented by
//	        every checkpoint so stale frames in recycled blocks can
//	        never validate
//	[24:32) first log block address (0 = empty log)
//	[32:40) checkpoint record: first block of the generation frozen by
//	        an in-flight incremental checkpoint (0 = none)
//	[40:48) checkpoint record: the frozen generation's salt
//	[48:56) checkpoint record: phase — ckptBackfilling while its pages
//	        may not be durable in the database file yet (recovery must
//	        replay the frozen generation), ckptFreeing once they are
//	        (recovery only frees the frozen blocks)
//	[56:60) checkpoint record: the frozen generation's final chained
//	        CRC at freeze time (the chain seal). Salvage recovery
//	        recomputes the frozen scan's chain and compares: a mismatch
//	        means media damage ate committed frozen frames, so the
//	        (newer) live generation must be discarded too to keep the
//	        surviving transactions a prefix of the committed order
//	[60:64) checkpoint record: the frozen generation's frame count at
//	        freeze time, for salvage accounting
//
// Log block (BlockSize bytes from the user heap, or a per-frame block):
//
//	[0:8)   next block address (0 = tail)
//	[8:)    packed, 8-byte-aligned WAL frames
//
// WAL frame header (32 bytes, §3.2):
//
//	[0:8)   commit mark — written last, 8-byte-atomically (§4.1)
//	[8:16)  checkpoint id (salt)
//	[16:20) page number
//	[20:24) in-page offset; bit 31 flags a full frame (replay resets
//	        the page to zero before applying the payload, which has its
//	        trailing clean bytes truncated — without the flag, recovery
//	        over a database-file base could resurrect stale tail bytes)
//	[24:28) frame (payload) size
//	[28:32) chained CRC32 over [8:28) plus payload
const (
	headerMagic     = 0x4E56_5741_4C48_4452 // "NVWALHDR"
	formatVersion   = 3
	hdrPageSizeOff  = 8
	hdrVersionOff   = 12
	hdrSaltOff      = 16
	hdrFirstBlkOff  = 24
	hdrCkptBlkOff   = 32
	hdrCkptSaltOff  = 40
	hdrCkptStateOff = 48
	hdrCkptChainOff = 56
	hdrCkptCountOff = 60
	headerBlockSize = 4096

	blockLinkSize = 8
	frameHdrSize  = 32
	commitValue   = 1

	// preparedFlag marks a frame group as provisionally committed by a
	// cross-shard two-phase commit: mark = preparedFlag | gtx, written
	// with the same 8-byte-atomic discipline as a commit mark. The mark
	// word is outside the frame CRC, so recovery (or CompletePrepared)
	// can flip prepared → committed in place without re-chaining.
	preparedFlag = uint64(1) << 63

	offFullFlag = uint32(1) << 31

	// Per-writer stream tags live in offWord bits [16,28): in-page
	// offsets never exceed pageSize-1 ≤ 65535 (plausiblePageSize caps
	// pages at 64 KB), so the low 16 bits fully describe the offset and
	// the bits between it and offFullFlag are free. A tag is pure
	// provenance — frames from concurrent writers may interleave
	// physically, and the tag names which writer's chain each frame
	// belongs to. Tag 0 means "untagged" (solo commits, legacy logs);
	// decode masks the tag out unconditionally, so old logs read
	// identically.
	offStreamShift = 16
	maxStreamTag   = uint32(0xFFF)
	offInOffMask   = uint32(1)<<offStreamShift - 1
)

// Checkpoint record phases.
const (
	ckptNone        = 0
	ckptBackfilling = 1
	ckptFreeing     = 2
)

// RecommendedPageReserve is the per-page tail reserve the database
// should configure its B+tree with in NVWAL mode: frame header plus
// block link word. With it, a "full-page" frame (trailing clean bytes
// truncated, §3.2) occupies exactly pageSize bytes in the log, so an
// 8 KB user-heap block holds two full-page WAL frames — the §3.3
// configuration.
const RecommendedPageReserve = frameHdrSize + blockLinkSize

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// zeroFrameHdr is the shared all-zero frame-header image used to scrub
// a garbage frame slot (abort unwind, recovery's resume point); sharing
// it keeps the scrub off the commit path's allocation budget. Never
// written to.
var zeroFrameHdr [frameHdrSize]byte

// Metric keys specific to NVWAL.
const (
	// MetricLoggedBytes counts WAL payload + frame-header bytes written
	// into the log (the Table 2 "bytes written to NVRAM" accounting).
	MetricLoggedBytes = "nvwal_logged_bytes"
	// MetricBlocks counts NVRAM blocks allocated for the log.
	MetricBlocks = "nvwal_blocks"
)

// Errors.
var (
	ErrCorruptHeader = errors.New("nvwal: corrupt log header")
	ErrBlockFull     = errors.New("nvwal: frame larger than block capacity")
	// ErrLogFull reports that the NVRAM heap cannot promise the blocks
	// this transaction needs. It is returned before (or after cleanly
	// unwinding) any log mutation: the log stays intact, the transaction
	// may be retried once a checkpoint frees space, and the error never
	// latches the writer.
	ErrLogFull = errors.New("nvwal: NVRAM heap full")
	// ErrPreparedPending reports that a prepared (2PC) transaction is
	// awaiting its decision; ordinary commits and new checkpoint rounds
	// are refused until it completes or aborts, so the prepared frames
	// stay the log tail.
	ErrPreparedPending = errors.New("nvwal: prepared transaction pending")
	// ErrNoPrepared reports a Complete/Abort for a global transaction id
	// that is not the pending prepared transaction.
	ErrNoPrepared = errors.New("nvwal: no such prepared transaction")
)

// frameRef locates one physical frame in NVRAM.
type frameRef struct {
	addr uint64 // device address of the frame header
	size int    // header + payload bytes (unaligned)
	pgno uint32
}

// histFrame is the in-DRAM record of one logged frame, kept for
// snapshot reads. A full frame resets the page to zero before its
// payload applies; a differential frame patches the prior image.
type histFrame struct {
	pgno    uint32
	off     int
	full    bool
	payload []byte
}

// ckptState is one in-flight incremental checkpoint round: the frozen
// generation's identity and the page images at its watermark. It is
// built under w.mu in phase A and owned by the single checkpointer
// (serialized by w.ckptMu) afterwards.
type ckptState struct {
	watermark int               // absolute frame index the round covers
	pages     map[uint32][]byte // images at the watermark (shared, immutable)
	blocks    []heapo.Block     // the frozen generation's chain, head first
	salt      uint64            // the frozen generation's salt
	synced    bool              // phase B done: pages durable in the DB file
}

// preparedTxn is the volatile side of one prepared-but-undecided 2PC
// transaction: everything CompletePrepared needs to publish it, and
// everything AbortPrepared needs to unwind it. Unlike the commit path's
// reusable scratch, its buffers are freshly allocated — they outlive
// the append by an arbitrary coordinator round-trip.
type preparedTxn struct {
	gtx        uint64
	written    []frameRef
	hist       []histFrame
	newVers    map[uint32][]byte
	chainAfter uint32
	undoBlocks int
	undoTail   int
}

func (st *ckptState) firstAddr() uint64 {
	if len(st.blocks) == 0 {
		return 0
	}
	return st.blocks[0].Addr
}

// NVWAL is a write-ahead log in NVRAM. It implements pager.Journal,
// pager.SnapshotJournal and pager.GroupJournal.
//
// All methods are safe for concurrent use: a reader-writer lock lets
// snapshot readers reconstruct pages (PageVersionAt) concurrently with
// each other while serializing against the single writer's WriteFrames
// and Checkpoint — the wal-index reader/writer protocol of §2.
type NVWAL struct {
	heap *heapo.Manager
	dev  *nvram.Device
	db   pager.DBFile
	cfg  Config
	m    *metrics.Counters

	pageSize   int
	headerAddr uint64
	salt       uint64

	// mu guards the volatile state below. Writers (WriteFrames, the
	// checkpoint's short critical sections) take it exclusively; the
	// read-only views (PageVersion, PageVersionAt, Mark,
	// FramesSinceCheckpoint, Blocks) share it. The checkpoint's page
	// writeback and fsync run with mu RELEASED — that is the point of
	// the incremental protocol.
	mu sync.RWMutex
	// ckptMu serializes checkpointers against each other (background
	// goroutine vs. an explicit Checkpoint call) without ever blocking
	// writers. Order: ckptMu before mu; mu is never held while taking
	// ckptMu.
	ckptMu sync.Mutex
	// broken latches a WriteFrames failure that could NOT be cleanly
	// unwound. The NVRAM log is append-only — a half-written frame
	// cannot be overwritten like a file WAL slot — so continuing to
	// append after an un-unwound failure would break the recovery
	// checksum chain behind later commits. Every subsequent write
	// returns the latched error instead. Admission failures (ErrLogFull)
	// and aborts whose unwind succeeded never latch.
	broken error
	// res is the reservation backing the append in progress; appendBlock
	// debits it instead of racing the open heap. Guarded by w.mu.
	res *heapo.Reservation
	// disableReserve (tests only) skips commit-time reservation so the
	// mid-append ErrNoSpace unwind path can be exercised directly.
	disableReserve bool

	// Commit-path scratch, reused across transactions (guarded by w.mu)
	// so steady-state commits do not allocate per frame — the allocation
	// audit of DESIGN.md §15. Only the plan/index bookkeeping lives here;
	// payload and image bytes that outlive the commit (history, versions)
	// are freshly allocated each transaction and handed off.
	plan    writePlan
	written []frameRef
	newHist []histFrame
	newVers map[uint32][]byte
	hdrBuf  [frameHdrSize]byte
	coal    pager.Coalescer
	resv    heapo.Reservation

	// Volatile state, rebuilt by recovery (the wal-index analogue).
	blocks   []heapo.Block // live generation's block chain in order
	tailUsed int           // bytes used in the tail block (including link)
	chain    uint32        // running frame checksum
	versions map[uint32][]byte
	// history records the frames not yet backfilled into the database
	// file; history[i] is absolute frame histBase+i. histBase is the
	// backfill watermark (SQLite's nBackfill): marks below it are
	// invalid, which the database layer's reader gate guarantees.
	history  []histFrame
	histBase int
	// byPage indexes history by page: ascending absolute frame indices.
	// It is the per-page wal-index that makes PageVersionAt
	// O(frames-for-that-page) instead of O(total history).
	byPage map[uint32][]int
	// base holds, for pages whose first unbackfilled frame is
	// differential, the image that frame patches (the page's state at
	// the frame's append time). Pages whose first frame is full need no
	// base; replay starts from zero.
	base map[uint32][]byte
	// ckpt is the in-flight incremental checkpoint round, nil when none.
	ckpt *ckptState
	// pendingPrep is the in-flight prepared (2PC) transaction, nil when
	// none. Its frames are physically in the log under a provisional
	// mark but NOT in the volatile indexes — publish is deferred to
	// CompletePrepared so an abort can unwind the append untouched.
	pendingPrep *preparedTxn

	// salvage is the report of the last crash recovery's salvage pass,
	// nil for a freshly created log.
	salvage *SalvageReport
	// badMu guards badBlocks: log blocks a media read error or a scrub
	// CRC failure has implicated. They are quarantined instead of freed
	// when their generation retires. A separate mutex (not w.mu) lets the
	// scrubber mark blocks while holding only the read lock.
	badMu     sync.Mutex
	badBlocks map[uint64]bool

	// hook, when non-nil, is invoked at named protocol steps so the
	// crash-injection tests can fail power at every point of Algorithm 1
	// and of checkpointing (§4.3).
	hook func(step string)

	// streamTag hands out per-writer stream tags (NewStream); it is the
	// only NVWAL field writers touch without w.mu, which is the point:
	// stream staging runs fully in parallel.
	streamTag atomic.Uint32
}

// Crash-injection step names, in execution order.
const (
	StepAfterPreMalloc   = "after_pre_malloc"     // Algorithm 1 line 6
	StepAfterLinkWrite   = "after_link_write"     // line 7 (before persist)
	StepAfterLinkPersist = "after_link_persist"   // line 11
	StepAfterSetUsed     = "after_set_used"       // line 13
	StepAfterMemcpy      = "after_memcpy"         // line 17
	StepAfterLogFlush    = "after_log_flush"      // line 28
	StepAfterCommitWrite = "after_commit_write"   // line 31 (before flush)
	StepAfterCommitFlush = "after_commit_persist" // line 35
	StepCkptAfterRecord  = "ckpt_after_record"    // A1: record persisted, old generation still live
	StepCkptAfterSalt    = "ckpt_after_salt"      // A2: new generation open, commits proceed
	StepCkptAfterPages   = "ckpt_after_pages"     // B: pages written, not synced (no lock held)
	StepCkptAfterSync    = "ckpt_after_sync"      // B: db file durable (no lock held)
	StepCkptAfterState   = "ckpt_after_state"     // C1: record flipped to freeing
	StepCkptMidFree      = "ckpt_mid_free"        // C2: some frozen blocks freed
	StepCkptAfterFree    = "ckpt_after_free"      // C2: all frozen blocks freed, record stale
)

func (w *NVWAL) step(name string) {
	if w.hook != nil {
		w.hook(name)
	}
}

// SetCrashHook installs a callback invoked at every named protocol step
// (the Step* constants). Failure-injection drivers panic from the hook
// to model power failing at that instant; pass nil to remove it.
func (w *NVWAL) SetCrashHook(fn func(step string)) { w.hook = fn }

// WriteSteps lists the Algorithm 1 injection points in execution order.
func WriteSteps() []string {
	return []string{
		StepAfterPreMalloc, StepAfterLinkWrite, StepAfterLinkPersist,
		StepAfterSetUsed, StepAfterMemcpy, StepAfterLogFlush,
		StepAfterCommitWrite, StepAfterCommitFlush,
	}
}

// CheckpointSteps lists the checkpoint injection points in execution
// order (phase A record/handoff, phase B writeback, phase C free).
func CheckpointSteps() []string {
	return []string{
		StepCkptAfterRecord, StepCkptAfterSalt,
		StepCkptAfterPages, StepCkptAfterSync,
		StepCkptAfterState, StepCkptMidFree, StepCkptAfterFree,
	}
}

// Open attaches to (or creates) the NVWAL registered under cfg.Name in
// the heap manager's persistent namespace, running crash recovery on an
// existing log.
func Open(h *heapo.Manager, db pager.DBFile, cfg Config, m *metrics.Counters) (*NVWAL, error) {
	dev := h.Device()
	cfg = cfg.withDefaults(dev.LineSize())
	if m == nil {
		m = &metrics.Counters{}
	}
	if cfg.BlockSize < blockLinkSize+frameHdrSize+db.PageSize() {
		return nil, fmt.Errorf("nvwal: block size %d cannot hold a full-page frame", cfg.BlockSize)
	}
	// Carve out the checkpoint headroom before the first allocation: the
	// largest headroom-privileged allocation (a header block, or a log
	// block) must stay allocatable even on a heap that write traffic has
	// filled, or the one mechanism that frees space — opening a log and
	// checkpointing — can wedge. The carve-out is a single run: steady-
	// state recycling fragments the heap into block-sized runs, so a
	// longer contiguity demand could never be met. Headroom only grows;
	// several logs sharing a heap each raise it to their own block size.
	hr := (headerBlockSize + heapo.PageSize - 1) / heapo.PageSize
	if b := (cfg.BlockSize + heapo.PageSize - 1) / heapo.PageSize; b > hr {
		hr = b
	}
	h.EnsureHeadroom(hr)
	w := &NVWAL{
		heap:      h,
		dev:       dev,
		db:        db,
		cfg:       cfg,
		m:         m,
		pageSize:  db.PageSize(),
		versions:  make(map[uint32][]byte),
		byPage:    make(map[uint32][]int),
		base:      make(map[uint32][]byte),
		badBlocks: make(map[uint64]bool),
	}
	if addr, ok := h.GetRoot(cfg.Name); ok {
		w.headerAddr = addr
		if err := w.recover(); err != nil {
			return nil, err
		}
		return w, nil
	}
	// The header allocation rides the headroom carve-out: creating a log
	// must succeed even when outstanding reservations or watermark
	// pressure would deny an ordinary allocation.
	blk, err := h.NVMallocHeadroom(headerBlockSize)
	if err != nil {
		return nil, err
	}
	w.headerAddr = blk.Addr
	w.salt = 1
	w.writeHeader()
	// The freshly allocated header block may carry stale content from a
	// previous life; the checkpoint record must read as "none".
	w.writeCkptRecord(0, 0, ckptNone, 0, 0)
	if err := h.SetRoot(cfg.Name, blk.Addr); err != nil {
		return nil, err
	}
	w.chain = chainSeed(w.salt)
	return w, nil
}

func chainSeed(salt uint64) uint32 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], salt)
	return crc32.Checksum(b[:], crcTab)
}

// hardwarePersistency reports whether the configured model removes all
// explicit cache-flush code (§4.4).
func (w *NVWAL) hardwarePersistency() bool {
	return w.cfg.Sync == SyncStrictPersistency || w.cfg.Sync == SyncEpochPersistency
}

// persistRange makes [addr, addr+n) durable and ordered: the dmb +
// cache_line_flush + dmb + persist-barrier sequence of Algorithm 1
// under the software schemes, or a hardware epoch barrier under the
// §4.4 persistency models.
func (w *NVWAL) persistRange(addr uint64, n int) {
	if w.hardwarePersistency() {
		w.dev.Domain().EpochBarrier()
		return
	}
	w.dev.MemoryBarrier()
	w.dev.Syscall()
	w.dev.Flush(addr, addr+uint64(n))
	w.dev.MemoryBarrier()
	w.dev.PersistBarrier()
}

// writeHeader persists the header block's live-generation fields.
func (w *NVWAL) writeHeader() {
	w.dev.PutUint64(w.headerAddr, headerMagic)
	w.dev.PutUint32(w.headerAddr+hdrPageSizeOff, uint32(w.pageSize))
	w.dev.PutUint32(w.headerAddr+hdrVersionOff, formatVersion)
	w.dev.PutUint64(w.headerAddr+hdrSaltOff, w.salt)
	w.dev.PutUint64(w.headerAddr+hdrFirstBlkOff, w.firstBlockAddr())
	w.persistRange(w.headerAddr, 32)
}

// writeCkptRecord persists the checkpoint record atomically enough for
// the recovery state machine: the phase field is what recovery
// dispatches on, and every transition writes all the fields. chain and
// frames are the frozen generation's chain seal and frame count; only
// the backfilling transition carries meaningful values (salvage only
// consults them in that phase).
func (w *NVWAL) writeCkptRecord(firstBlk, salt, phase uint64, chain, frames uint32) {
	w.dev.PutUint64(w.headerAddr+hdrCkptBlkOff, firstBlk)
	w.dev.PutUint64(w.headerAddr+hdrCkptSaltOff, salt)
	w.dev.PutUint64(w.headerAddr+hdrCkptStateOff, phase)
	w.dev.PutUint32(w.headerAddr+hdrCkptChainOff, chain)
	w.dev.PutUint32(w.headerAddr+hdrCkptCountOff, frames)
	w.persistRange(w.headerAddr+hdrCkptBlkOff, 32)
}

func (w *NVWAL) firstBlockAddr() uint64 {
	if len(w.blocks) == 0 {
		return 0
	}
	return w.blocks[0].Addr
}

// tailCapacity reports the usable bytes of the tail block.
func (w *NVWAL) tailCapacity() int {
	if len(w.blocks) == 0 {
		return 0
	}
	return w.blocks[len(w.blocks)-1].Size()
}

func align8(n int) int { return (n + 7) &^ 7 }

// linkAddrForNext returns the NVRAM address holding the pointer to the
// next block: the header's first-block field for an empty chain, else
// the tail block's link word.
func (w *NVWAL) linkAddrForNext() uint64 {
	if len(w.blocks) == 0 {
		return w.headerAddr + hdrFirstBlkOff
	}
	return w.blocks[len(w.blocks)-1].Addr
}

// appendBlock links a fresh NVRAM block to the log, following the §3.3
// protocol: persist the reference before marking the block in-use, so a
// crash anywhere in between leaves either an unreferenced pending block
// (reclaimed by the heap manager) or a dangling reference to a freed
// block (cleared by SQLite recovery) — the §4.3 failure cases.
func (w *NVWAL) appendBlock(minSize int) error {
	size := w.cfg.BlockSize
	if !w.cfg.UserHeap {
		// Legacy path: one kernel allocation per WAL frame, sized for
		// the frame (Heapo rounds to pages).
		size = blockLinkSize + minSize
	}
	var blk heapo.Block
	var err error
	switch {
	case w.res != nil && w.cfg.UserHeap:
		blk, err = w.res.PreMalloc(size) // promised, pending
	case w.res != nil:
		blk, err = w.res.Malloc(size) // promised, in-use immediately
	case w.cfg.UserHeap:
		blk, err = w.heap.NVPreMalloc(size) // pending
	default:
		blk, err = w.heap.NVMalloc(size) // in-use immediately
	}
	if err != nil {
		return err
	}
	w.step(StepAfterPreMalloc)
	// Initialize the new block's link word before publishing it, and
	// scrub its first frame slot: a recycled block can still hold
	// chain-valid frames from a tail this same generation cut (crash-
	// recovery truncation, aborted 2PC prepare). If such a block were
	// re-linked at the very position it was cut from and power failed
	// before any new frame persisted, those frames would scan valid
	// again — and a prepared mark among them could resolve committed
	// under a coordinator record that has since moved on. The scrub
	// must be durable before the link is, hence it precedes the link
	// persist below.
	w.dev.PutUint64(blk.Addr, 0)
	scrubEnd := blk.Addr + blockLinkSize
	if blk.Size() >= blockLinkSize+frameHdrSize {
		w.dev.Write(blk.Addr+blockLinkSize, zeroFrameHdr[:])
		scrubEnd += frameHdrSize
	}
	if !w.hardwarePersistency() {
		w.dev.Flush(blk.Addr, scrubEnd)
	}

	linkAddr := w.linkAddrForNext()
	w.dev.PutUint64(linkAddr, blk.Addr)
	w.step(StepAfterLinkWrite)
	// Algorithm 1 lines 8–11: dmb; cache_line_flush(ptr); dmb; persist.
	w.persistRange(linkAddr, 8)
	w.step(StepAfterLinkPersist)
	if w.cfg.UserHeap {
		// Algorithm 1 line 13: mark in-use now that the reference is
		// persistent.
		if err := w.heap.NVMallocSetUsedFlag(blk); err != nil {
			// Unlink the pending block before failing, so the abort
			// leaves neither a dangling reference nor a leaked block.
			w.dev.PutUint64(linkAddr, 0)
			w.persistRange(linkAddr, 8)
			_ = w.heap.NVFree(blk)
			return err
		}
	}
	w.step(StepAfterSetUsed)
	w.blocks = append(w.blocks, blk)
	w.tailUsed = blockLinkSize
	w.m.Inc(MetricBlocks, 1)
	return nil
}

// allocFrameSpace returns the NVRAM address for a frame of size bytes,
// allocating a new block when the tail cannot hold it (Algorithm 1
// lines 4–14). groupTotal is the aligned size of the whole per-page
// frame group being written; the legacy (non-user-heap) path allocates
// one Heapo block per logical WAL frame — i.e. per dirty page — sized
// for the group, so differential logging does not multiply kernel
// allocations.
func (w *NVWAL) allocFrameSpace(size, groupTotal int) (uint64, error) {
	need := align8(size)
	if w.cfg.UserHeap && need > w.cfg.BlockSize-blockLinkSize {
		return 0, fmt.Errorf("%w: frame %d bytes, block %d", ErrBlockFull, need, w.cfg.BlockSize)
	}
	if len(w.blocks) == 0 || w.tailUsed+need > w.tailCapacity() {
		alloc := need
		if !w.cfg.UserHeap && groupTotal > need {
			alloc = groupTotal
		}
		if err := w.appendBlock(alloc); err != nil {
			return 0, err
		}
	}
	tail := w.blocks[len(w.blocks)-1]
	addr := tail.Addr + uint64(w.tailUsed)
	w.tailUsed += need
	return addr, nil
}

// encodeFrameAt encodes one frame — header plus differential payload —
// directly into the reserved NVRAM region at addr with the commit mark
// clear, and advances the checksum chain. Nothing is staged in DRAM
// beyond the 32-byte header scratch: the CRC runs over the header
// fields and the caller's payload bytes in place, and one gather write
// places both ranges (the zero-copy commit path). full marks a frame
// whose replay must reset the page to zero first (§3.2 truncated full
// page).
func (w *NVWAL) encodeFrameAt(addr uint64, pgno uint32, off int, payload []byte, prev uint32, full bool, stream uint32) uint32 {
	hdr := w.hdrBuf[:]
	binary.LittleEndian.PutUint64(hdr[0:], 0) // commit mark written later
	binary.LittleEndian.PutUint64(hdr[8:], w.salt)
	binary.LittleEndian.PutUint32(hdr[16:], pgno)
	offWord := uint32(off) | (stream&maxStreamTag)<<offStreamShift
	if full {
		offWord |= offFullFlag
	}
	binary.LittleEndian.PutUint32(hdr[20:], offWord)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(payload)))
	sum := crc32.Update(prev, crcTab, hdr[8:28])
	sum = crc32.Update(sum, crcTab, payload)
	binary.LittleEndian.PutUint32(hdr[28:], sum)
	w.dev.WriteV(addr, hdr, payload) // Algorithm 1 line 17: memcpy
	return sum
}

// lockWriter takes the exclusive writer lock, charging a contended wait
// to the commit-stall metric — the stall the incremental checkpoint
// exists to shrink (wall time, not virtual: the simulated clock does
// not advance while a goroutine merely waits on a mutex). An
// uncontended acquisition charges nothing.
func (w *NVWAL) lockWriter() {
	if w.mu.TryLock() {
		return
	}
	start := time.Now()
	w.mu.Lock()
	w.m.Inc(metrics.CommitStallNanos, time.Since(start).Nanoseconds())
}

// CommitTransaction implements pager.Journal.
func (w *NVWAL) CommitTransaction(frames []pager.Frame) error {
	return w.WriteFrames(frames, true)
}

// CommitGroup implements pager.GroupJournal: the groups' frames are
// coalesced page-wise (the group commits atomically under one mark, so
// only each page's final image needs logging) and written through a
// single Algorithm 1 sequence — one flush batch, one persist barrier,
// one commit-mark persist for the whole group.
func (w *NVWAL) CommitGroup(groups [][]pager.Frame) error {
	if len(groups) == 0 {
		return nil
	}
	w.lockWriter()
	defer w.mu.Unlock()
	coalesced := w.coal.Coalesce(groups)
	if len(coalesced) == 0 {
		// A group of no-op transactions still committed: its members were
		// acknowledged, so the transaction and group tallies must include
		// them even though nothing reaches NVRAM.
		w.m.Inc(metrics.Transactions, int64(len(groups)))
		w.m.Inc(metrics.GroupCommits, 1)
		return nil
	}
	if err := w.writeFrames(coalesced, true); err != nil {
		return err
	}
	// writeFrames counted one committed transaction; credit the rest of
	// the group.
	w.m.Inc(metrics.Transactions, int64(len(groups)-1))
	w.m.Inc(metrics.GroupCommits, 1)
	return nil
}

// WriteFrames is sqliteWriteWalFramesToNVRAM (Algorithm 1): log the
// dirty pages, enforce the transaction-aware persistency guarantee, and
// — when commit is set — write and persist the commit mark.
func (w *NVWAL) WriteFrames(frames []pager.Frame, commit bool) error {
	w.lockWriter()
	defer w.mu.Unlock()
	return w.writeFrames(frames, commit)
}

// writeFrames is WriteFrames with w.mu held.
func (w *NVWAL) writeFrames(frames []pager.Frame, commit bool) error {
	if w.broken != nil {
		return w.broken
	}
	if w.pendingPrep != nil {
		// A prepared transaction's frames must stay the log tail until
		// its decision: an append on top would make an abort-unwind (or
		// a recovery truncation) eat a committed transaction.
		return ErrPreparedPending
	}
	return w.writeFramesLog(frames, commit)
}

// planItem is one dirty page's precomputed logging work.
type planItem struct {
	fr      pager.Frame
	skip    bool // identical image under differential logging
	full    bool
	extents []Extent
}

// writePlan is the shape of one WriteFrames call, computed before any
// NVRAM mutation: what each page logs, how many fresh blocks the append
// needs, and the largest single allocation — exactly what Reserve must
// promise for the append to be incapable of running out of space. The
// frame and payload totals size the append's history arena up front.
// An NVWAL reuses one writePlan (and its items' extent arrays) across
// commits under w.mu.
type writePlan struct {
	items        []planItem
	newBlocks    int
	maxAlloc     int // largest single block allocation, bytes
	frames       int // physical frames the append will write
	payloadBytes int // differential payload bytes across all frames
}

// nextItem returns the plan's next item slot with its extent array
// emptied for reuse, growing the slice as needed.
func (p *writePlan) nextItem() *planItem {
	if len(p.items) < cap(p.items) {
		p.items = p.items[:len(p.items)+1]
	} else {
		p.items = append(p.items, planItem{})
	}
	it := &p.items[len(p.items)-1]
	it.extents = it.extents[:0]
	return it
}

// planFrames simulates the append — extent computation, tail packing,
// block allocation — without touching NVRAM, mirroring the rules of
// writeFramesLog/allocFrameSpace/appendBlock step for step. The
// returned plan is w.plan, reused across commits; it is only valid
// until the next call.
func (w *NVWAL) planFrames(frames []pager.Frame) (*writePlan, error) {
	p := &w.plan
	p.items = p.items[:0]
	p.newBlocks, p.maxAlloc, p.frames, p.payloadBytes = 0, 0, 0, 0
	simBlocks := len(w.blocks)
	simTailCap := w.tailCapacity()
	simTailUsed := w.tailUsed
	for _, fr := range frames {
		if len(fr.Data) != w.pageSize {
			return nil, fmt.Errorf("nvwal: frame for page %d has %d bytes, want %d", fr.Pgno, len(fr.Data), w.pageSize)
		}
		it := p.nextItem()
		it.fr, it.skip, it.full = fr, false, true
		if old, ok := w.versions[fr.Pgno]; ok && w.cfg.Differential {
			// §3.2: the page already has frames in the log, so only the
			// differences need to be logged.
			it.full = false
			it.extents = diffExtentsInto(it.extents, old, fr.Data, w.cfg.GapMerge)
			if len(it.extents) == 0 {
				// Identical image (e.g. a page dirtied and restored);
				// nothing to log for this page.
				it.skip = true
				continue
			}
		} else {
			// First-touch pages log a "full" frame; its trailing clean
			// (zero) region is truncated per §3.2 so early-split pages fit
			// the user-heap block layout. Replay of a full frame resets the
			// page to zero first, so the truncation can never resurrect
			// stale tail bytes from an older database-file image.
			n := w.pageSize - trailingZeros(fr.Data)
			if n == 0 {
				n = 8 // all-zero page: log a minimal frame
			}
			it.extents = append(it.extents, Extent{Off: 0, Len: n})
		}
		groupTotal := 0
		for _, e := range it.extents {
			groupTotal += align8(frameHdrSize + e.Len)
		}
		p.frames += len(it.extents)
		p.payloadBytes += extentBytes(it.extents)
		if !w.cfg.UserHeap && simBlocks > 0 {
			simTailUsed = simTailCap // legacy: tail space not reused across frames
		}
		for _, e := range it.extents {
			need := align8(frameHdrSize + e.Len)
			if w.cfg.UserHeap && need > w.cfg.BlockSize-blockLinkSize {
				return nil, fmt.Errorf("%w: frame %d bytes, block %d", ErrBlockFull, need, w.cfg.BlockSize)
			}
			if simBlocks == 0 || simTailUsed+need > simTailCap {
				alloc := w.cfg.BlockSize
				if !w.cfg.UserHeap {
					alloc = need
					if groupTotal > alloc {
						alloc = groupTotal
					}
					alloc += blockLinkSize
				}
				simBlocks++
				p.newBlocks++
				if alloc > p.maxAlloc {
					p.maxAlloc = alloc
				}
				// Heapo rounds allocations up to whole pages.
				simTailCap = (alloc + heapo.PageSize - 1) / heapo.PageSize * heapo.PageSize
				simTailUsed = blockLinkSize
			}
			simTailUsed += need
		}
	}
	return p, nil
}

// abortAppend unwinds a failed append back to the pre-transaction
// state: fresh blocks are returned to the heap, the tail cursor is
// restored, the dangling link is cleared, and the first garbage frame
// slot is invalidated (same no-resurrection discipline recovery
// applies at its resume point). Volatile indexes were not yet touched —
// writeFramesLog updates them only after all NVRAM writes succeed. An
// unwind that itself fails latches the writer.
func (w *NVWAL) abortAppend(nBlocks, tailUsed int, cause error) error {
	for i := len(w.blocks) - 1; i >= nBlocks; i-- {
		if err := w.heap.NVFree(w.blocks[i]); err != nil {
			w.blocks = w.blocks[:i+1]
			w.broken = fmt.Errorf("nvwal: append abort could not free block %#x: %v (aborting on: %v)",
				w.blocks[i].Addr, err, cause)
			return w.broken
		}
	}
	w.blocks = w.blocks[:nBlocks]
	w.tailUsed = tailUsed
	w.clearLink(w.linkAddrForNext())
	if len(w.blocks) > 0 {
		tail := w.blocks[len(w.blocks)-1]
		if tailUsed+frameHdrSize <= tail.Size() {
			a := tail.Addr + uint64(tailUsed)
			w.dev.Write(a, zeroFrameHdr[:])
			w.persistRange(a, frameHdrSize)
		}
	}
	if errors.Is(cause, heapo.ErrNoSpace) {
		return fmt.Errorf("%w: %v", ErrLogFull, cause)
	}
	return cause
}

func (w *NVWAL) writeFramesLog(frames []pager.Frame, commit bool) error {
	return w.writeFramesMode(frames, commit, 0)
}

// writeFramesMode is the shared append path. prepGtx == 0 is the
// ordinary Algorithm 1 commit; prepGtx != 0 appends the same physical
// frames but writes preparedFlag|prepGtx as the (provisional) mark and
// defers the volatile publish into w.pendingPrep — the 2PC prepare.
// Crash-injection hooks fire at the same steps in both modes.
func (w *NVWAL) writeFramesMode(frames []pager.Frame, commit bool, prepGtx uint64) error {
	if len(frames) == 0 && prepGtx == 0 {
		return nil
	}
	// Plan first, then reserve: after this point the append cannot run
	// out of NVRAM space mid-way — every block it will link is promised.
	plan, err := w.planFrames(frames)
	if err != nil {
		return err // read-only failure: nothing to latch
	}
	if plan.newBlocks > 0 && !w.disableReserve {
		if err := w.heap.ReserveInto(&w.resv, plan.newBlocks, plan.maxAlloc); err != nil {
			return fmt.Errorf("%w: cannot promise %d blocks of %d bytes: %v",
				ErrLogFull, plan.newBlocks, plan.maxAlloc, err)
		}
		w.res = &w.resv
		defer func() {
			w.res = nil
			w.resv.Release()
		}()
	}
	undoBlocks, undoTail := len(w.blocks), w.tailUsed

	var (
		written     []frameRef
		hist        []histFrame
		newVersions map[uint32][]byte
	)
	if prepGtx != 0 {
		// Prepared appends own their buffers: they outlive this call
		// (until the coordinator decides), so the reusable commit-path
		// scratch cannot back them.
		written = make([]frameRef, 0, plan.frames)
		hist = make([]histFrame, 0, plan.frames)
		newVersions = make(map[uint32][]byte, len(frames))
	} else {
		written = w.written[:0]
		hist = w.newHist[:0]
		if w.newVers == nil {
			w.newVers = make(map[uint32][]byte, len(frames))
		}
		newVersions = w.newVers
		clear(newVersions)
	}
	chain := w.chain
	// One arena holds every history payload of this append — the plan
	// already knows the total — so snapshot bookkeeping costs a single
	// allocation instead of one per frame. The arena is handed off to
	// w.history below and dropped wholesale when a checkpoint retires
	// these frames.
	arena := make([]byte, plan.payloadBytes)

	for i := range plan.items {
		it := &plan.items[i]
		fr := it.fr
		if it.skip {
			// Identical image: the version the log already holds is
			// byte-for-byte this one, so there is nothing to replace.
			continue
		}
		groupTotal := 0
		for _, e := range it.extents {
			groupTotal += align8(frameHdrSize + e.Len)
		}
		if !w.cfg.UserHeap && len(w.blocks) > 0 {
			// Legacy path: one Heapo allocation per dirty page's WAL
			// frame — leftover tail space is not reused across frames.
			w.tailUsed = w.tailCapacity()
		}
		for _, e := range it.extents {
			payload := fr.Data[e.Off : e.Off+e.Len]
			size := frameHdrSize + len(payload)
			addr, err := w.allocFrameSpace(size, groupTotal)
			if err != nil {
				if prepGtx == 0 {
					w.written, w.newHist = written[:0], hist[:0]
				}
				return w.abortAppend(undoBlocks, undoTail, err)
			}
			chain = w.encodeFrameAt(addr, fr.Pgno, e.Off, payload, chain, it.full, 0)
			w.step(StepAfterMemcpy)
			switch w.cfg.Sync {
			case SyncEager:
				// Figure 4(b): synchronize per log entry.
				w.dev.MemoryBarrier()
				w.dev.Syscall()
				w.dev.Flush(addr, addr+uint64(size))
				w.dev.MemoryBarrier()
				w.dev.PersistBarrier()
			case SyncStrictPersistency:
				// §4.4: the hardware orders every persist with the
				// volatile memory order — no instructions, but each log
				// write drains before the next may persist.
				w.dev.Domain().EpochBarrier()
			}
			written = append(written, frameRef{addr: addr, size: size, pgno: fr.Pgno})
			pl := arena[:len(payload):len(payload)]
			arena = arena[len(payload):]
			copy(pl, payload)
			hist = append(hist, histFrame{pgno: fr.Pgno, off: e.Off, full: it.full, payload: pl})
			w.m.Inc(MetricLoggedBytes, int64(size))
		}
		img := make([]byte, w.pageSize)
		copy(img, fr.Data)
		newVersions[fr.Pgno] = img
	}

	// The deliberate ordering bug (see Config.UnsafeEarlyCommitMark):
	// persist the commit mark while the frames it covers are still
	// dirty in cache, then let the batch flush queue them without a
	// persist barrier. The transaction is acknowledged durable while
	// its frames would not survive a power failure.
	markVal := uint64(commitValue)
	if prepGtx != 0 {
		markVal = preparedFlag | prepGtx
	}
	earlyMark := w.cfg.UnsafeEarlyCommitMark && w.cfg.Sync == SyncLazy
	if earlyMark && commit && len(written) > 0 {
		last := written[len(written)-1]
		w.dev.PutUint64(last.addr, markVal)
		w.dev.MemoryBarrier()
		w.dev.Syscall()
		w.dev.Flush(last.addr, last.addr+8)
		w.dev.MemoryBarrier()
		w.dev.PersistBarrier()
	}

	switch {
	case w.cfg.Sync == SyncLazy && len(written) > 0:
		// Algorithm 1 lines 21–28: one dmb, a batch of per-frame
		// cache_line_flush syscalls, a dmb, and one persist barrier.
		w.dev.MemoryBarrier()
		for _, f := range written {
			w.dev.Syscall()
			w.dev.Flush(f.addr, f.addr+uint64(f.size))
		}
		w.dev.MemoryBarrier()
		if !earlyMark {
			w.dev.PersistBarrier()
		}
	case w.cfg.Sync == SyncEpochPersistency && len(written) > 0:
		// §4.4 relaxed persistency: one hardware epoch boundary closes
		// the logging phase; no flush instructions, no kernel crossing.
		w.dev.Domain().EpochBarrier()
	}
	// SyncChecksum (Figure 4(d)) flushes nothing here: the per-frame
	// checksums written above let recovery detect torn log entries.
	w.step(StepAfterLogFlush)

	if commit && len(written) > 0 && !earlyMark {
		// Algorithm 1 lines 29–35: set the commit mark (or, for a 2PC
		// prepare, the provisional mark) in the last frame's header and
		// persist it with 8-byte atomicity.
		last := written[len(written)-1]
		w.dev.PutUint64(last.addr, markVal)
		w.step(StepAfterCommitWrite)
		switch w.cfg.Sync {
		case SyncStrictPersistency, SyncEpochPersistency:
			w.dev.Domain().EpochBarrier()
		default:
			w.dev.MemoryBarrier()
			w.dev.Syscall()
			w.dev.Flush(last.addr, last.addr+8)
			w.dev.MemoryBarrier()
			w.dev.PersistBarrier()
		}
		w.step(StepAfterCommitFlush)
	}

	if prepGtx != 0 {
		// Prepare stops here: the frames are durable under a provisional
		// mark, but none of the volatile state advances until the
		// coordinator's decision. writeFrames/beginCheckpoint refuse new
		// work meanwhile, so these frames remain the log tail.
		w.pendingPrep = &preparedTxn{
			gtx:        prepGtx,
			written:    written,
			hist:       hist,
			newVers:    newVersions,
			chainAfter: chain,
			undoBlocks: undoBlocks,
			undoTail:   undoTail,
		}
		return nil
	}

	w.chain = chain
	for _, f := range hist {
		if _, tracked := w.byPage[f.pgno]; !tracked && !f.full {
			// The page's first unbackfilled frame is differential: record
			// the image it patches (the pre-transaction version, which a
			// completed checkpoint round has made durable). Version images
			// are replaced wholesale, never mutated, so sharing is safe.
			w.base[f.pgno] = w.versions[f.pgno]
		}
		w.byPage[f.pgno] = append(w.byPage[f.pgno], w.histBase+len(w.history))
		w.history = append(w.history, f)
	}
	for pgno, img := range newVersions {
		w.versions[pgno] = img
	}
	// Hand the (possibly grown) scratch backing arrays back to the
	// writer so the next transaction reuses their capacity.
	w.written, w.newHist = written[:0], hist[:0]
	w.m.Inc(metrics.WALFrames, int64(len(written)))
	if commit {
		w.m.Inc(metrics.Transactions, 1)
	}
	return nil
}

// PageVersion implements pager.Journal.
func (w *NVWAL) PageVersion(pgno uint32) ([]byte, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	img, ok := w.versions[pgno]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(img))
	copy(out, img)
	return out, true
}

// PageVersionInto implements pager.PageVersionInto: like PageVersion,
// but copies the latest image straight into the caller's buffer,
// skipping the intermediate allocation on the pager's read path.
func (w *NVWAL) PageVersionInto(pgno uint32, buf []byte) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	img, ok := w.versions[pgno]
	if !ok {
		return false
	}
	copy(buf, img)
	return true
}

// FramesSinceCheckpoint implements pager.Journal: the count of frames
// not yet backfilled into the database file.
func (w *NVWAL) FramesSinceCheckpoint() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.history)
}

// Mark implements pager.SnapshotJournal. Marks are absolute frame
// indices and grow monotonically across checkpoints; the database
// layer's reader gate keeps every open mark at or above the backfill
// watermark, so the frames a mark needs are always still indexed.
func (w *NVWAL) Mark() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.histBase + len(w.history)
}

// PageVersionAt implements pager.SnapshotJournal: replay pgno's frames
// below the mark, found through the per-page index — O(frames for this
// page), independent of other pages' history. Replay starts from the
// recorded base image when the page's first unbackfilled frame is
// differential, or from zero otherwise; a full frame resets the image
// before its payload applies.
func (w *NVWAL) PageVersionAt(pgno uint32, mark int) ([]byte, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	idxs := w.byPage[pgno]
	n := sort.SearchInts(idxs, mark)
	if n == 0 {
		// No frame for this page below the mark: its image at the mark
		// is whatever the database file holds (the caller falls back).
		return nil, false
	}
	img := make([]byte, w.pageSize)
	if base, ok := w.base[pgno]; ok {
		copy(img, base)
	}
	for _, abs := range idxs[:n] {
		f := w.history[abs-w.histBase]
		if f.full {
			for i := range img {
				img[i] = 0
			}
		}
		applyExtent(img, f.off, f.payload)
	}
	return img, true
}

// Checkpoint implements pager.Journal as a blocking alias: one full
// incremental round with no reader gate.
func (w *NVWAL) Checkpoint() error { return w.CheckpointIncremental(nil) }

// CheckpointIncremental implements pager.IncrementalJournal: one round
// of the non-blocking checkpoint pipeline (§4.3 made incremental).
//
// Phase A (short w.mu critical section): persist a checkpoint record
// naming the current generation, then bump the salt and hand the block
// chain off to the round — commits proceed into the new generation
// immediately, and frames they log are carried over to the next round
// instead of lost (the backfill-watermark protocol, SQLite's nBackfill).
//
// Phase B (no lock): write the frozen images to the database file and
// fsync while the writer keeps appending.
//
// Phase C (short w.mu critical section): flip the record to "freeing",
// release the frozen NVRAM blocks (to the heap's recycle pool under
// UserHeap), retire the record, and drop the backfilled prefix from the
// volatile per-page index.
//
// gate, when non-nil, is consulted with the candidate watermark before
// the round freezes anything; returning false aborts the round with
// pager.ErrCheckpointPending. The database layer uses it to keep open
// snapshot readers' marks valid.
func (w *NVWAL) CheckpointIncremental(gate func(watermark int) bool) error {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	st, err := w.beginCheckpoint(gate)
	if err != nil || st == nil {
		return err
	}
	if err := w.backfill(st); err != nil {
		return err
	}
	return w.completeCheckpoint(st)
}

// beginCheckpoint runs phase A and returns the round's state, or
// (nil, nil) when the log has nothing to backfill. Called with w.ckptMu
// held.
func (w *NVWAL) beginCheckpoint(gate func(watermark int) bool) (*ckptState, error) {
	w.mu.Lock()
	if st := w.ckpt; st != nil {
		// Resume a round a previous call left half-done (a database-file
		// write error during backfill). Its watermark was gated when the
		// round froze it, and marks only grow, so no re-check is needed.
		w.mu.Unlock()
		return st, nil
	}
	if len(w.history) == 0 {
		w.mu.Unlock()
		return nil, nil
	}
	if w.pendingPrep != nil {
		// Freezing the generation now would seal prepared frames that are
		// not in history into the frozen chain — completing the round
		// would free them. Prepared windows are short (the writer slot is
		// held across the 2PC round-trip); let the caller retry.
		w.mu.Unlock()
		return nil, pager.ErrCheckpointPending
	}
	w.mu.Unlock()

	// Consult the gate without w.mu held — the database layer takes its
	// reader-registry lock inside, and readers hold that lock while
	// calling Mark. Re-validate under w.mu and retry if a commit slipped
	// in between: the snapshot below captures images at the CURRENT
	// mark, so the gated watermark must match it exactly.
	for attempt := 0; ; attempt++ {
		end := w.Mark()
		if gate != nil && !gate(end) {
			return nil, pager.ErrCheckpointPending
		}
		w.mu.Lock()
		if w.pendingPrep != nil {
			w.mu.Unlock()
			return nil, pager.ErrCheckpointPending
		}
		if w.histBase+len(w.history) == end {
			break
		}
		w.mu.Unlock()
		if attempt >= 8 {
			// A writer burst keeps moving the mark; let the caller retry.
			return nil, pager.ErrCheckpointPending
		}
	}
	defer w.mu.Unlock()

	st := &ckptState{
		watermark: w.histBase + len(w.history),
		pages:     make(map[uint32][]byte, len(w.byPage)),
		blocks:    w.blocks,
		salt:      w.salt,
	}
	for pgno := range w.byPage {
		// Images at the watermark; shared, not copied — version images
		// are replaced wholesale on commit, never mutated in place.
		st.pages[pgno] = w.versions[pgno]
	}
	// SyncChecksum acknowledges commits before their frames persist
	// (§4.2), so the chain/count about to be sealed describe volatile
	// state: a crash mid-backfill would legally lose sealed frames,
	// which salvage could not tell apart from media damage. Make the
	// log durable first — as SQLite fsyncs the WAL file before
	// backfilling it — so a sealed-scan shortfall only ever means
	// real damage.
	if w.cfg.Sync == SyncChecksum {
		for _, b := range w.blocks {
			w.dev.Flush(b.Addr, b.Addr+uint64(b.Size()))
		}
		w.dev.MemoryBarrier()
		w.dev.PersistBarrier()
	}
	// A1: persist the record naming the generation about to freeze,
	// sealed with its final chain value and frame count so salvage can
	// tell a truncated frozen scan from a complete one. A crash here is
	// detected by ckptSalt == live salt and ignored.
	w.writeCkptRecord(w.firstBlockAddr(), w.salt, ckptBackfilling, w.chain, uint32(len(w.history)))
	w.step(StepCkptAfterRecord)
	// A2: open the new generation. The salt bump fences every frozen
	// frame; commits proceed into the fresh chain immediately.
	w.salt++
	w.blocks = nil
	w.tailUsed = 0
	w.chain = chainSeed(w.salt)
	w.writeHeader()
	w.ckpt = st
	w.step(StepCkptAfterSalt)
	return st, nil
}

// backfill runs phase B — the expensive page writeback + fsync — with
// no lock held: commits and snapshot reads proceed concurrently.
func (w *NVWAL) backfill(st *ckptState) error {
	if st.synced {
		return nil
	}
	start := time.Now()
	for pgno, img := range st.pages {
		if err := w.db.WritePage(pgno, img); err != nil {
			return err
		}
	}
	w.step(StepCkptAfterPages)
	if err := w.db.Sync(); err != nil {
		return err
	}
	st.synced = true
	w.m.Inc(metrics.CheckpointPages, int64(len(st.pages)))
	w.m.Inc(metrics.CheckpointNanos, time.Since(start).Nanoseconds())
	w.step(StepCkptAfterSync)
	return nil
}

// completeCheckpoint runs phase C: free the frozen generation and drop
// the backfilled prefix from the volatile index. Frees are NVRAM
// metadata writes (no block I/O), so the critical section stays short.
func (w *NVWAL) completeCheckpoint(st *ckptState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// C1: the images are durable — recovery no longer needs the frozen
	// frames, only to finish freeing their blocks.
	w.writeCkptRecord(st.firstAddr(), st.salt, ckptFreeing, 0, 0)
	w.step(StepCkptAfterState)
	// C2: free tail-first so recovery's head-first walk always sees a
	// valid chain prefix; trim st.blocks as they go so an interrupted
	// round resumed later cannot double-free. Frees are best-effort —
	// a leaked block is reclaimable, a blocked checkpoint is not.
	half := len(st.blocks) / 2
	for i := len(st.blocks) - 1; i >= 0; i-- {
		w.releaseBlock(st.blocks[i], w.cfg.UserHeap)
		st.blocks = st.blocks[:i]
		if i == half && half > 0 {
			w.step(StepCkptMidFree)
		}
	}
	w.step(StepCkptAfterFree)
	// C3: retire the record, then advance the backfill watermark.
	w.writeCkptRecord(0, 0, ckptNone, 0, 0)
	w.history = append([]histFrame(nil), w.history[st.watermark-w.histBase:]...)
	w.histBase = st.watermark
	for pgno, idxs := range w.byPage {
		cut := sort.SearchInts(idxs, st.watermark)
		if cut == 0 {
			continue
		}
		if cut == len(idxs) {
			delete(w.byPage, pgno)
			delete(w.base, pgno)
			continue
		}
		w.byPage[pgno] = append([]int(nil), idxs[cut:]...)
		// The surviving frames now replay on top of the image this round
		// just made durable (the page's state at the watermark) — the
		// append-time base below the watermark is gone from history.
		if w.history[w.byPage[pgno][0]-w.histBase].full {
			delete(w.base, pgno)
		} else {
			w.base[pgno] = st.pages[pgno]
		}
	}
	w.ckpt = nil
	w.m.Inc(metrics.Checkpoints, 1)
	return nil
}

// Config returns the effective configuration.
func (w *NVWAL) Config() Config { return w.cfg }

// Blocks reports the number of live NVRAM log blocks, including a
// frozen generation an in-flight checkpoint round has not freed yet
// (for the §3.3 frames-per-block statistic).
func (w *NVWAL) Blocks() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	n := len(w.blocks)
	if w.ckpt != nil {
		n += len(w.ckpt.blocks)
	}
	return n
}
