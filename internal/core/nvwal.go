package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/pager"
)

// SyncMode selects how NVWAL orders its NVRAM writes (§4.1, Figure 4).
type SyncMode int

const (
	// SyncLazy is transaction-aware lazy synchronization: one flush
	// batch plus one persist barrier between the logging phase and the
	// commit-mark write (Figure 4(c), Algorithm 1).
	SyncLazy SyncMode = iota
	// SyncEager flushes and persists after every log entry (Figure
	// 4(b)); the ordering-overhead baseline of Figures 5 and 6.
	SyncEager
	// SyncChecksum is asynchronous commit (§4.2, Figure 4(d)): log
	// entries are never explicitly flushed; only the commit mark and
	// checksum are. Recovery validates the per-frame checksums and
	// invalidates torn transactions — at a small probabilistic risk.
	SyncChecksum
	// SyncStrictPersistency models the §4.4 strict persistency
	// architecture: persist order matches volatile memory order, so no
	// cache-flush instructions or persist barriers appear in the code —
	// but the hardware orders every log store's persist, which the
	// paper conjectures "may significantly limit persist performance".
	SyncStrictPersistency
	// SyncEpochPersistency models §4.4 relaxed (epoch) persistency:
	// hardware persist barriers divide persists into epochs (one for
	// the log writes, one for the commit mark) and write dirty lines
	// back without explicit dccmvac instructions or kernel crossings.
	SyncEpochPersistency
)

func (s SyncMode) String() string {
	switch s {
	case SyncEager:
		return "eager"
	case SyncChecksum:
		return "checksum"
	case SyncStrictPersistency:
		return "strict-persistency"
	case SyncEpochPersistency:
		return "epoch-persistency"
	default:
		return "lazy"
	}
}

// Config parameterizes an NVWAL instance.
type Config struct {
	// Sync selects the persistency-guarantee scheme.
	Sync SyncMode
	// Differential enables byte-granularity differential logging
	// (§3.2). When off, every frame carries the full page.
	Differential bool
	// UserHeap enables user-level NVRAM heap management (§3.3):
	// nv_pre_malloc of BlockSize-byte blocks with the pending/in-use
	// protocol, instead of one Heapo nvmalloc per WAL frame.
	UserHeap bool
	// BlockSize is the user-heap block size in bytes (paper: 8 KB).
	BlockSize int
	// GapMerge coalesces dirty extents separated by fewer clean bytes
	// than this (default: the cache line size).
	GapMerge int
	// Name is the Heapo persistent-namespace key under which the log's
	// header block is registered, so it survives reboots.
	Name string
	// ChecksumMask weakens frame-checksum validation to the masked bits
	// (0 = full 32-bit CRC). It exists solely for the §4.2 collision
	// study: asynchronous commit is probabilistically safe, and
	// shrinking the checksum makes its failure mode observable.
	ChecksumMask uint32
}

// effMask returns the effective validation mask.
func (c Config) effMask() uint32 {
	if c.ChecksumMask == 0 {
		return ^uint32(0)
	}
	return c.ChecksumMask
}

func (c Config) withDefaults(lineSize int) Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 8192
	}
	if c.GapMerge <= 0 {
		c.GapMerge = lineSize
	}
	if c.Name == "" {
		c.Name = "nvwal"
	}
	return c
}

// Label renders the configuration in the paper's Figure 7 naming.
func (c Config) Label() string {
	s := ""
	if c.UserHeap {
		s += "UH+"
	}
	switch c.Sync {
	case SyncEager:
		s += "E"
	case SyncChecksum:
		s += "CS"
	case SyncStrictPersistency:
		s += "SP"
	case SyncEpochPersistency:
		s += "EP"
	default:
		s += "LS"
	}
	if c.Differential {
		s += "+Diff"
	}
	return s
}

// Persistent layout.
//
// Header block (one 4 KB Heapo block, found via the persistent
// namespace):
//
//	[0:8)   magic
//	[8:12)  page size
//	[12:16) format version
//	[16:24) checkpoint id (salt) — incremented by every checkpoint so
//	        stale frames in recycled blocks can never validate
//	[24:32) first log block address (0 = empty log)
//
// Log block (BlockSize bytes from the user heap, or a per-frame block):
//
//	[0:8)   next block address (0 = tail)
//	[8:)    packed, 8-byte-aligned WAL frames
//
// WAL frame header (32 bytes, §3.2):
//
//	[0:8)   commit mark — written last, 8-byte-atomically (§4.1)
//	[8:16)  checkpoint id (salt)
//	[16:20) page number
//	[20:24) in-page offset
//	[24:28) frame (payload) size
//	[28:32) chained CRC32 over [8:28) plus payload
const (
	headerMagic     = 0x4E56_5741_4C48_4452 // "NVWALHDR"
	formatVersion   = 1
	hdrPageSizeOff  = 8
	hdrVersionOff   = 12
	hdrSaltOff      = 16
	hdrFirstBlkOff  = 24
	headerBlockSize = 4096

	blockLinkSize = 8
	frameHdrSize  = 32
	commitValue   = 1
)

// RecommendedPageReserve is the per-page tail reserve the database
// should configure its B+tree with in NVWAL mode: frame header plus
// block link word. With it, a "full-page" frame (trailing clean bytes
// truncated, §3.2) occupies exactly pageSize bytes in the log, so an
// 8 KB user-heap block holds two full-page WAL frames — the §3.3
// configuration.
const RecommendedPageReserve = frameHdrSize + blockLinkSize

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Metric keys specific to NVWAL.
const (
	// MetricLoggedBytes counts WAL payload + frame-header bytes written
	// into the log (the Table 2 "bytes written to NVRAM" accounting).
	MetricLoggedBytes = "nvwal_logged_bytes"
	// MetricBlocks counts NVRAM blocks allocated for the log.
	MetricBlocks = "nvwal_blocks"
)

// Errors.
var (
	ErrCorruptHeader = errors.New("nvwal: corrupt log header")
	ErrBlockFull     = errors.New("nvwal: frame larger than block capacity")
)

// frameRef locates one physical frame in NVRAM.
type frameRef struct {
	addr uint64 // device address of the frame header
	size int    // header + payload bytes (unaligned)
	pgno uint32
}

// histFrame is the in-DRAM record of one logged frame, kept for
// snapshot reads.
type histFrame struct {
	pgno    uint32
	off     int
	payload []byte
}

// NVWAL is a write-ahead log in NVRAM. It implements pager.Journal,
// pager.SnapshotJournal and pager.GroupJournal.
//
// All methods are safe for concurrent use: a reader-writer lock lets
// snapshot readers reconstruct pages (PageVersionAt) concurrently with
// each other while serializing against the single writer's WriteFrames
// and Checkpoint — the wal-index reader/writer protocol of §2.
type NVWAL struct {
	heap *heapo.Manager
	dev  *nvram.Device
	db   pager.DBFile
	cfg  Config
	m    *metrics.Counters

	pageSize   int
	headerAddr uint64
	salt       uint64

	// mu guards the volatile state below. Writers (WriteFrames,
	// Checkpoint) take it exclusively; the read-only views (PageVersion,
	// PageVersionAt, Mark, FramesSinceCheckpoint, Blocks) share it.
	mu sync.RWMutex
	// broken latches the first WriteFrames error. The NVRAM log is
	// append-only — a half-written frame cannot be overwritten like a
	// file WAL slot — so continuing to append after a failure would
	// break the recovery checksum chain behind later commits. Every
	// subsequent write returns the latched error instead.
	broken error

	// Volatile state, rebuilt by recovery (the wal-index analogue).
	blocks   []heapo.Block // log block chain in order
	tailUsed int           // bytes used in the tail block (including link)
	chain    uint32        // running frame checksum
	frames   int           // committed frames since checkpoint
	versions map[uint32][]byte
	// history records every logged frame (page, offset, payload) so
	// snapshot readers can reconstruct any page as of a frame mark.
	history []histFrame

	// hook, when non-nil, is invoked at named protocol steps so the
	// crash-injection tests can fail power at every point of Algorithm 1
	// and of checkpointing (§4.3).
	hook func(step string)
}

// Crash-injection step names, in execution order.
const (
	StepAfterPreMalloc   = "after_pre_malloc"     // Algorithm 1 line 6
	StepAfterLinkWrite   = "after_link_write"     // line 7 (before persist)
	StepAfterLinkPersist = "after_link_persist"   // line 11
	StepAfterSetUsed     = "after_set_used"       // line 13
	StepAfterMemcpy      = "after_memcpy"         // line 17
	StepAfterLogFlush    = "after_log_flush"      // line 28
	StepAfterCommitWrite = "after_commit_write"   // line 31 (before flush)
	StepAfterCommitFlush = "after_commit_persist" // line 35
	StepCkptAfterPages   = "ckpt_after_pages"     // pages written, not synced
	StepCkptAfterSync    = "ckpt_after_sync"      // db file durable
	StepCkptAfterSalt    = "ckpt_after_salt"      // log logically empty, blocks live
	StepCkptMidFree      = "ckpt_mid_free"        // some blocks freed
	StepCkptAfterFree    = "ckpt_after_free"      // all blocks freed, header stale
)

func (w *NVWAL) step(name string) {
	if w.hook != nil {
		w.hook(name)
	}
}

// SetCrashHook installs a callback invoked at every named protocol step
// (the Step* constants). Failure-injection drivers panic from the hook
// to model power failing at that instant; pass nil to remove it.
func (w *NVWAL) SetCrashHook(fn func(step string)) { w.hook = fn }

// WriteSteps lists the Algorithm 1 injection points in execution order.
func WriteSteps() []string {
	return []string{
		StepAfterPreMalloc, StepAfterLinkWrite, StepAfterLinkPersist,
		StepAfterSetUsed, StepAfterMemcpy, StepAfterLogFlush,
		StepAfterCommitWrite, StepAfterCommitFlush,
	}
}

// CheckpointSteps lists the checkpoint injection points.
func CheckpointSteps() []string {
	return []string{StepCkptAfterPages, StepCkptAfterSync, StepCkptAfterSalt, StepCkptMidFree, StepCkptAfterFree}
}

// Open attaches to (or creates) the NVWAL registered under cfg.Name in
// the heap manager's persistent namespace, running crash recovery on an
// existing log.
func Open(h *heapo.Manager, db pager.DBFile, cfg Config, m *metrics.Counters) (*NVWAL, error) {
	dev := h.Device()
	cfg = cfg.withDefaults(dev.LineSize())
	if m == nil {
		m = &metrics.Counters{}
	}
	if cfg.BlockSize < blockLinkSize+frameHdrSize+db.PageSize() {
		return nil, fmt.Errorf("nvwal: block size %d cannot hold a full-page frame", cfg.BlockSize)
	}
	w := &NVWAL{
		heap:     h,
		dev:      dev,
		db:       db,
		cfg:      cfg,
		m:        m,
		pageSize: db.PageSize(),
		versions: make(map[uint32][]byte),
	}
	if addr, ok := h.GetRoot(cfg.Name); ok {
		w.headerAddr = addr
		if err := w.recover(); err != nil {
			return nil, err
		}
		return w, nil
	}
	blk, err := h.NVMalloc(headerBlockSize)
	if err != nil {
		return nil, err
	}
	w.headerAddr = blk.Addr
	w.salt = 1
	w.writeHeader()
	if err := h.SetRoot(cfg.Name, blk.Addr); err != nil {
		return nil, err
	}
	w.chain = chainSeed(w.salt)
	return w, nil
}

func chainSeed(salt uint64) uint32 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], salt)
	return crc32.Checksum(b[:], crcTab)
}

// hardwarePersistency reports whether the configured model removes all
// explicit cache-flush code (§4.4).
func (w *NVWAL) hardwarePersistency() bool {
	return w.cfg.Sync == SyncStrictPersistency || w.cfg.Sync == SyncEpochPersistency
}

// persistRange makes [addr, addr+n) durable and ordered: the dmb +
// cache_line_flush + dmb + persist-barrier sequence of Algorithm 1
// under the software schemes, or a hardware epoch barrier under the
// §4.4 persistency models.
func (w *NVWAL) persistRange(addr uint64, n int) {
	if w.hardwarePersistency() {
		w.dev.Domain().EpochBarrier()
		return
	}
	w.dev.MemoryBarrier()
	w.dev.Syscall()
	w.dev.Flush(addr, addr+uint64(n))
	w.dev.MemoryBarrier()
	w.dev.PersistBarrier()
}

// writeHeader persists the header block fields.
func (w *NVWAL) writeHeader() {
	w.dev.PutUint64(w.headerAddr, headerMagic)
	w.dev.PutUint32(w.headerAddr+hdrPageSizeOff, uint32(w.pageSize))
	w.dev.PutUint32(w.headerAddr+hdrVersionOff, formatVersion)
	w.dev.PutUint64(w.headerAddr+hdrSaltOff, w.salt)
	w.dev.PutUint64(w.headerAddr+hdrFirstBlkOff, w.firstBlockAddr())
	w.persistRange(w.headerAddr, 32)
}

func (w *NVWAL) firstBlockAddr() uint64 {
	if len(w.blocks) == 0 {
		return 0
	}
	return w.blocks[0].Addr
}

// tailCapacity reports the usable bytes of the tail block.
func (w *NVWAL) tailCapacity() int {
	if len(w.blocks) == 0 {
		return 0
	}
	return w.blocks[len(w.blocks)-1].Size()
}

func align8(n int) int { return (n + 7) &^ 7 }

// linkAddrForNext returns the NVRAM address holding the pointer to the
// next block: the header's first-block field for an empty chain, else
// the tail block's link word.
func (w *NVWAL) linkAddrForNext() uint64 {
	if len(w.blocks) == 0 {
		return w.headerAddr + hdrFirstBlkOff
	}
	return w.blocks[len(w.blocks)-1].Addr
}

// appendBlock links a fresh NVRAM block to the log, following the §3.3
// protocol: persist the reference before marking the block in-use, so a
// crash anywhere in between leaves either an unreferenced pending block
// (reclaimed by the heap manager) or a dangling reference to a freed
// block (cleared by SQLite recovery) — the §4.3 failure cases.
func (w *NVWAL) appendBlock(minSize int) error {
	size := w.cfg.BlockSize
	if !w.cfg.UserHeap {
		// Legacy path: one kernel allocation per WAL frame, sized for
		// the frame (Heapo rounds to pages).
		size = blockLinkSize + minSize
	}
	var blk heapo.Block
	var err error
	if w.cfg.UserHeap {
		blk, err = w.heap.NVPreMalloc(size) // pending
	} else {
		blk, err = w.heap.NVMalloc(size) // in-use immediately
	}
	if err != nil {
		return err
	}
	w.step(StepAfterPreMalloc)
	// Initialize the new block's link word before publishing it.
	w.dev.PutUint64(blk.Addr, 0)
	if !w.hardwarePersistency() {
		w.dev.Flush(blk.Addr, blk.Addr+blockLinkSize)
	}

	linkAddr := w.linkAddrForNext()
	w.dev.PutUint64(linkAddr, blk.Addr)
	w.step(StepAfterLinkWrite)
	// Algorithm 1 lines 8–11: dmb; cache_line_flush(ptr); dmb; persist.
	w.persistRange(linkAddr, 8)
	w.step(StepAfterLinkPersist)
	if w.cfg.UserHeap {
		// Algorithm 1 line 13: mark in-use now that the reference is
		// persistent.
		if err := w.heap.NVMallocSetUsedFlag(blk); err != nil {
			return err
		}
	}
	w.step(StepAfterSetUsed)
	w.blocks = append(w.blocks, blk)
	w.tailUsed = blockLinkSize
	w.m.Inc(MetricBlocks, 1)
	return nil
}

// allocFrameSpace returns the NVRAM address for a frame of size bytes,
// allocating a new block when the tail cannot hold it (Algorithm 1
// lines 4–14). groupTotal is the aligned size of the whole per-page
// frame group being written; the legacy (non-user-heap) path allocates
// one Heapo block per logical WAL frame — i.e. per dirty page — sized
// for the group, so differential logging does not multiply kernel
// allocations.
func (w *NVWAL) allocFrameSpace(size, groupTotal int) (uint64, error) {
	need := align8(size)
	if w.cfg.UserHeap && need > w.cfg.BlockSize-blockLinkSize {
		return 0, fmt.Errorf("%w: frame %d bytes, block %d", ErrBlockFull, need, w.cfg.BlockSize)
	}
	if len(w.blocks) == 0 || w.tailUsed+need > w.tailCapacity() {
		alloc := need
		if !w.cfg.UserHeap && groupTotal > need {
			alloc = groupTotal
		}
		if err := w.appendBlock(alloc); err != nil {
			return 0, err
		}
	}
	tail := w.blocks[len(w.blocks)-1]
	addr := tail.Addr + uint64(w.tailUsed)
	w.tailUsed += need
	return addr, nil
}

// encodeFrame builds the frame image (header + payload) with the commit
// mark clear and advances the checksum chain.
func (w *NVWAL) encodeFrame(pgno uint32, off int, payload []byte, prev uint32) ([]byte, uint32) {
	buf := make([]byte, frameHdrSize+len(payload))
	binary.LittleEndian.PutUint64(buf[0:], 0) // commit mark written later
	binary.LittleEndian.PutUint64(buf[8:], w.salt)
	binary.LittleEndian.PutUint32(buf[16:], pgno)
	binary.LittleEndian.PutUint32(buf[20:], uint32(off))
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(payload)))
	copy(buf[frameHdrSize:], payload)
	sum := crc32.Update(prev, crcTab, buf[8:28])
	sum = crc32.Update(sum, crcTab, payload)
	binary.LittleEndian.PutUint32(buf[28:], sum)
	return buf, sum
}

// CommitTransaction implements pager.Journal.
func (w *NVWAL) CommitTransaction(frames []pager.Frame) error {
	return w.WriteFrames(frames, true)
}

// CommitGroup implements pager.GroupJournal: the groups' frames are
// coalesced page-wise (the group commits atomically under one mark, so
// only each page's final image needs logging) and written through a
// single Algorithm 1 sequence — one flush batch, one persist barrier,
// one commit-mark persist for the whole group.
func (w *NVWAL) CommitGroup(groups [][]pager.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	coalesced := pager.CoalesceGroups(groups)
	if len(coalesced) == 0 {
		return nil
	}
	if err := w.writeFrames(coalesced, true); err != nil {
		return err
	}
	// writeFrames counted one committed transaction; credit the rest of
	// the group.
	w.m.Inc(metrics.Transactions, int64(len(groups)-1))
	w.m.Inc(metrics.GroupCommits, 1)
	return nil
}

// WriteFrames is sqliteWriteWalFramesToNVRAM (Algorithm 1): log the
// dirty pages, enforce the transaction-aware persistency guarantee, and
// — when commit is set — write and persist the commit mark.
func (w *NVWAL) WriteFrames(frames []pager.Frame, commit bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeFrames(frames, commit)
}

// writeFrames is WriteFrames with w.mu held.
func (w *NVWAL) writeFrames(frames []pager.Frame, commit bool) error {
	if w.broken != nil {
		return w.broken
	}
	if err := w.writeFramesLog(frames, commit); err != nil {
		w.broken = err
		return err
	}
	return nil
}

func (w *NVWAL) writeFramesLog(frames []pager.Frame, commit bool) error {
	if len(frames) == 0 {
		return nil
	}
	var written []frameRef
	var hist []histFrame
	chain := w.chain
	newVersions := make(map[uint32][]byte, len(frames))

	for _, fr := range frames {
		if len(fr.Data) != w.pageSize {
			return fmt.Errorf("nvwal: frame for page %d has %d bytes, want %d", fr.Pgno, len(fr.Data), w.pageSize)
		}
		// First-touch pages log a "full" frame; its trailing clean
		// (zero) region is truncated per §3.2 so early-split pages fit
		// the user-heap block layout.
		extents := []Extent{{Off: 0, Len: w.pageSize - trailingZeros(fr.Data)}}
		if extents[0].Len == 0 {
			extents[0].Len = 8 // all-zero page: log a minimal frame
		}
		if old, ok := w.versions[fr.Pgno]; ok && w.cfg.Differential {
			// §3.2: the page already has frames in the log, so only the
			// differences need to be logged.
			extents = diffExtents(old, fr.Data, w.cfg.GapMerge)
			if len(extents) == 0 {
				// Identical image (e.g. a page dirtied and restored);
				// nothing to log for this page.
				img := make([]byte, w.pageSize)
				copy(img, fr.Data)
				newVersions[fr.Pgno] = img
				continue
			}
		}
		groupTotal := 0
		for _, e := range extents {
			groupTotal += align8(frameHdrSize + e.Len)
		}
		if !w.cfg.UserHeap && len(w.blocks) > 0 {
			// Legacy path: one Heapo allocation per dirty page's WAL
			// frame — leftover tail space is not reused across frames.
			w.tailUsed = w.tailCapacity()
		}
		for _, e := range extents {
			payload := fr.Data[e.Off : e.Off+e.Len]
			buf, next := w.encodeFrame(fr.Pgno, e.Off, payload, chain)
			addr, err := w.allocFrameSpace(len(buf), groupTotal)
			if err != nil {
				return err
			}
			w.dev.Write(addr, buf) // Algorithm 1 line 17: memcpy
			w.step(StepAfterMemcpy)
			switch w.cfg.Sync {
			case SyncEager:
				// Figure 4(b): synchronize per log entry.
				w.dev.MemoryBarrier()
				w.dev.Syscall()
				w.dev.Flush(addr, addr+uint64(len(buf)))
				w.dev.MemoryBarrier()
				w.dev.PersistBarrier()
			case SyncStrictPersistency:
				// §4.4: the hardware orders every persist with the
				// volatile memory order — no instructions, but each log
				// write drains before the next may persist.
				w.dev.Domain().EpochBarrier()
			}
			written = append(written, frameRef{addr: addr, size: len(buf), pgno: fr.Pgno})
			pl := make([]byte, len(payload))
			copy(pl, payload)
			hist = append(hist, histFrame{pgno: fr.Pgno, off: e.Off, payload: pl})
			chain = next
			w.m.Inc(MetricLoggedBytes, int64(len(buf)))
		}
		img := make([]byte, w.pageSize)
		copy(img, fr.Data)
		newVersions[fr.Pgno] = img
	}

	switch {
	case w.cfg.Sync == SyncLazy && len(written) > 0:
		// Algorithm 1 lines 21–28: one dmb, a batch of per-frame
		// cache_line_flush syscalls, a dmb, and one persist barrier.
		w.dev.MemoryBarrier()
		for _, f := range written {
			w.dev.Syscall()
			w.dev.Flush(f.addr, f.addr+uint64(f.size))
		}
		w.dev.MemoryBarrier()
		w.dev.PersistBarrier()
	case w.cfg.Sync == SyncEpochPersistency && len(written) > 0:
		// §4.4 relaxed persistency: one hardware epoch boundary closes
		// the logging phase; no flush instructions, no kernel crossing.
		w.dev.Domain().EpochBarrier()
	}
	// SyncChecksum (Figure 4(d)) flushes nothing here: the per-frame
	// checksums written above let recovery detect torn log entries.
	w.step(StepAfterLogFlush)

	if commit && len(written) > 0 {
		// Algorithm 1 lines 29–35: set the commit mark in the last
		// frame's header and persist it with 8-byte atomicity.
		last := written[len(written)-1]
		w.dev.PutUint64(last.addr, commitValue)
		w.step(StepAfterCommitWrite)
		switch w.cfg.Sync {
		case SyncStrictPersistency, SyncEpochPersistency:
			w.dev.Domain().EpochBarrier()
		default:
			w.dev.MemoryBarrier()
			w.dev.Syscall()
			w.dev.Flush(last.addr, last.addr+8)
			w.dev.MemoryBarrier()
			w.dev.PersistBarrier()
		}
		w.step(StepAfterCommitFlush)
	}

	w.chain = chain
	w.frames += len(written)
	w.history = append(w.history, hist...)
	for pgno, img := range newVersions {
		w.versions[pgno] = img
	}
	w.m.Inc(metrics.WALFrames, int64(len(written)))
	if commit {
		w.m.Inc(metrics.Transactions, 1)
	}
	return nil
}

// PageVersion implements pager.Journal.
func (w *NVWAL) PageVersion(pgno uint32) ([]byte, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	img, ok := w.versions[pgno]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(img))
	copy(out, img)
	return out, true
}

// FramesSinceCheckpoint implements pager.Journal.
func (w *NVWAL) FramesSinceCheckpoint() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.frames
}

// Mark implements pager.SnapshotJournal.
func (w *NVWAL) Mark() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.frames
}

// PageVersionAt implements pager.SnapshotJournal: replay pgno's frames
// up to the mark (the first one is always a full frame, §3.3 rule, so
// reconstruction starts from a zero image).
func (w *NVWAL) PageVersionAt(pgno uint32, mark int) ([]byte, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if mark > len(w.history) {
		mark = len(w.history)
	}
	var img []byte
	for i := 0; i < mark; i++ {
		f := w.history[i]
		if f.pgno != pgno {
			continue
		}
		if img == nil {
			img = make([]byte, w.pageSize)
		}
		applyExtent(img, f.off, f.payload)
	}
	if img == nil {
		return nil, false
	}
	return img, true
}

// Checkpoint implements pager.Journal: reconstructed dirty pages are
// flushed to the database file, then the log is emptied (§4.3). The
// crash-safe ordering is:
//
//  1. write every page's latest image to the database file and fsync —
//     a crash before this completes leaves the whole log intact, and
//     recovery replays it;
//  2. advance the checkpoint id (salt) in the header — every frame is
//     now logically invalid, so a later crash can never serve stale
//     log versions that would shadow the newer database file;
//  3. free the NVRAM blocks from the end of the list to the beginning —
//     a crash mid-way leaves a chain of in-use blocks with no valid
//     frames, which recovery walks and frees (no leak), or a dangling
//     reference to an already-freed block, which recovery clears.
func (w *NVWAL) Checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frames == 0 {
		return nil
	}
	for pgno, img := range w.versions {
		if err := w.db.WritePage(pgno, img); err != nil {
			return err
		}
	}
	w.step(StepCkptAfterPages)
	if err := w.db.Sync(); err != nil {
		return err
	}
	w.step(StepCkptAfterSync)
	// The header keeps referencing the chain so a post-crash recovery
	// can find and free the blocks; the new salt fences their frames.
	w.salt++
	w.writeHeader()
	w.step(StepCkptAfterSalt)
	for i := len(w.blocks) - 1; i >= 0; i-- {
		if err := w.heap.NVFree(w.blocks[i]); err != nil {
			return err
		}
		if i == len(w.blocks)/2 {
			w.step(StepCkptMidFree)
		}
	}
	w.step(StepCkptAfterFree)
	w.blocks = nil
	w.tailUsed = 0
	w.writeHeader() // clears the first-block pointer
	w.chain = chainSeed(w.salt)
	w.frames = 0
	w.versions = make(map[uint32][]byte)
	w.history = nil
	w.m.Inc(metrics.Checkpoints, 1)
	return nil
}

// Config returns the effective configuration.
func (w *NVWAL) Config() Config { return w.cfg }

// Blocks reports the number of live NVRAM log blocks (for the §3.3
// frames-per-block statistic).
func (w *NVWAL) Blocks() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.blocks)
}
