package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/heapo"
	"repro/internal/metrics"
)

// SalvageReport describes what crash recovery kept, dropped, and
// quarantined. Recovery always produces one for an existing log (a
// freshly created log has none); Damaged reports whether any of it was
// caused by media faults rather than an ordinary torn tail.
type SalvageReport struct {
	// FramesKept counts physical frames recovery replayed into the
	// volatile index (frozen generation plus live generation).
	FramesKept int
	// FramesDropped counts physical frames recovery discarded: the torn
	// or corrupt live tail, and frozen frames lost to media damage (from
	// the record's sealed frame count).
	FramesDropped int
	// GenerationsSkipped counts frozen generations that were unreadable
	// or failed their chain seal and were dropped (partially or wholly).
	GenerationsSkipped int
	// BlocksQuarantined / BytesQuarantined count log blocks retired into
	// the heap's persistent quarantine because a media read error or
	// scrub failure implicated them.
	BlocksQuarantined int
	BytesQuarantined  int
	// MediaReadErrors counts uncorrectable read errors hit while
	// scanning.
	MediaReadErrors int
	// HeaderRebuilt is set when the log header itself failed validation
	// and was reinitialized: the whole log is lost, but the database
	// file still holds the last completed checkpoint.
	HeaderRebuilt bool
	// FrozenDamaged is set when an interrupted checkpoint round's frozen
	// generation did not scan back to its recorded chain seal.
	FrozenDamaged bool
	// LiveDropped is set when the live generation was discarded wholesale
	// because older (frozen) transactions were already lost — keeping
	// newer ones would break the committed order's prefix property.
	LiveDropped bool
	// DBFileDamaged is set when the database file itself could not be
	// read or written during recovery: the log alone cannot repair that,
	// and the database layer opens in degraded read-only mode.
	DBFileDamaged bool
	// Events is a human-readable trail of everything salvage did.
	Events []string
}

// Damaged reports whether recovery observed media damage (as opposed to
// the ordinary torn tail of a clean power cut, which also drops frames
// but is not a fault). It is nil-safe.
func (r *SalvageReport) Damaged() bool {
	if r == nil {
		return false
	}
	return r.HeaderRebuilt || r.FrozenDamaged || r.LiveDropped ||
		r.DBFileDamaged || r.GenerationsSkipped > 0 ||
		r.BlocksQuarantined > 0 || r.MediaReadErrors > 0
}

// String renders a compact one-line summary.
func (r *SalvageReport) String() string {
	if r == nil {
		return "salvage: none"
	}
	return fmt.Sprintf(
		"salvage: kept=%d dropped=%d gens_skipped=%d quarantined=%d(%dB) media_errs=%d header_rebuilt=%v frozen_damaged=%v live_dropped=%v db_damaged=%v",
		r.FramesKept, r.FramesDropped, r.GenerationsSkipped,
		r.BlocksQuarantined, r.BytesQuarantined, r.MediaReadErrors,
		r.HeaderRebuilt, r.FrozenDamaged, r.LiveDropped, r.DBFileDamaged)
}

func (r *SalvageReport) eventf(format string, args ...any) {
	r.Events = append(r.Events, fmt.Sprintf(format, args...))
}

// Salvage returns the last recovery's salvage report, or nil when the
// log was freshly created (nothing to salvage).
func (w *NVWAL) Salvage() *SalvageReport { return w.salvage }

// markBad records a log block as media-suspect; it will be quarantined
// instead of freed when its generation retires.
func (w *NVWAL) markBad(addr uint64) {
	w.badMu.Lock()
	w.badBlocks[addr] = true
	w.badMu.Unlock()
}

func (w *NVWAL) isBad(addr uint64) bool {
	w.badMu.Lock()
	defer w.badMu.Unlock()
	return w.badBlocks[addr]
}

// releaseBlock retires a log block: media-suspect blocks go to the
// heap's persistent quarantine, healthy ones are recycled (user heap)
// or freed. Best effort, like every free on this path — a leaked block
// is reclaimable, a corrupted one is not.
func (w *NVWAL) releaseBlock(blk heapo.Block, recycle bool) {
	w.badMu.Lock()
	bad := w.badBlocks[blk.Addr]
	delete(w.badBlocks, blk.Addr)
	w.badMu.Unlock()
	if bad {
		if w.heap.Quarantine(blk) == nil {
			return
		}
	}
	if recycle {
		_ = w.heap.Recycle(blk)
	} else {
		_ = w.heap.NVFree(blk)
	}
}

// quarantineNow is releaseBlock for recovery paths that already know the
// block is bad and want the report updated.
func (w *NVWAL) quarantineNow(blk heapo.Block, rep *SalvageReport) {
	w.badMu.Lock()
	delete(w.badBlocks, blk.Addr)
	w.badMu.Unlock()
	if w.heap.Quarantine(blk) == nil {
		if rep != nil {
			rep.BlocksQuarantined++
			rep.BytesQuarantined += blk.Size()
			rep.eventf("quarantined block %#x (%d bytes)", blk.Addr, blk.Size())
		}
		return
	}
	_ = w.heap.NVFree(blk)
}

// mix64 is a splitmix64-style finalizer used to derive a fresh salt
// when a corrupt header is rebuilt — deterministic in the corrupt
// content, so a replayed crash rebuilds identically.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ScrubResult summarizes one scrub pass over the live log.
type ScrubResult struct {
	// FramesChecked counts frames whose durable image was re-verified.
	FramesChecked int
	// BadFrames counts frames whose durable image failed verification:
	// the volatile copy is still good, but a crash right now would lose
	// them. A checkpoint rewrites their pages from DRAM and retires the
	// implicated blocks into quarantine — the self-healing path.
	BadFrames int
	// BadBlocks lists the implicated block addresses.
	BadBlocks []uint64
	// FirstErr is the first verification failure, with frame context.
	FirstErr error
}

// Scrub audits the durable image of the live generation's committed
// frames: every frame at or below the last commit mark has been
// persisted by Algorithm 1's barriers, so its media content must match
// its volatile copy's chained CRC. A mismatch means the media lost it
// (a stuck line, rot) even though the cache still serves it — exactly
// the damage that is invisible until the next crash. Implicated blocks
// are marked for quarantine; the caller should checkpoint to rewrite
// the affected pages from DRAM and retire the blocks.
//
// Under SyncChecksum (asynchronous commit) and the deliberate ordering
// bug, frames are not promised durable before a crash, so there is
// nothing to audit: Scrub is a no-op.
func (w *NVWAL) Scrub() ScrubResult {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var res ScrubResult
	if w.cfg.Sync == SyncChecksum || w.cfg.UnsafeEarlyCommitMark {
		return res
	}

	// Walk the volatile view (always intact while running) to locate
	// each frame and the chain value it must extend.
	type frameLoc struct {
		blk    heapo.Block
		off    int
		size   int // header + payload, unaligned
		prev   uint32
		commit bool
	}
	var locs []frameLoc
	chain := chainSeed(w.salt)
	hdr := make([]byte, frameHdrSize)
	for _, blk := range w.blocks {
		off := blockLinkSize
		for off+frameHdrSize <= blk.Size() {
			w.dev.Read(blk.Addr+uint64(off), hdr)
			mark := binary.LittleEndian.Uint64(hdr[0:])
			frSalt := binary.LittleEndian.Uint64(hdr[8:])
			pgno := binary.LittleEndian.Uint32(hdr[16:])
			size := int(binary.LittleEndian.Uint32(hdr[24:]))
			if frSalt != w.salt || pgno == 0 || (mark != 0 && mark != commitValue) ||
				size <= 0 || size > w.pageSize || off+frameHdrSize+size > blk.Size() {
				break
			}
			payload := make([]byte, size)
			w.dev.Read(blk.Addr+uint64(off+frameHdrSize), payload)
			sum := crc32.Update(chain, crcTab, hdr[8:28])
			sum = crc32.Update(sum, crcTab, payload)
			locs = append(locs, frameLoc{blk: blk, off: off, size: frameHdrSize + size, prev: chain, commit: mark == commitValue})
			chain = sum
			off += align8(frameHdrSize + size)
		}
	}
	lastCommit := -1
	for i, l := range locs {
		if l.commit {
			lastCommit = i
		}
	}

	badBlocks := make(map[uint64]bool)
	mask := w.cfg.effMask()
	for i := 0; i <= lastCommit; i++ {
		l := locs[i]
		raw := make([]byte, l.size)
		var verr error
		if err := w.dev.ReadPersistedChecked(l.blk.Addr+uint64(l.off), raw); err != nil {
			verr = fmt.Errorf("nvwal: scrub: frame %d at block %#x off %d: %w", i, l.blk.Addr, l.off, err)
		} else {
			sum := crc32.Update(l.prev, crcTab, raw[8:28])
			sum = crc32.Update(sum, crcTab, raw[frameHdrSize:])
			stored := binary.LittleEndian.Uint32(raw[28:32])
			mark := binary.LittleEndian.Uint64(raw[0:8])
			switch {
			case sum&mask != stored&mask:
				verr = fmt.Errorf("nvwal: scrub: frame %d at block %#x off %d: durable checksum mismatch (got %#x, want %#x)",
					i, l.blk.Addr, l.off, sum&mask, stored&mask)
			case l.commit && mark != commitValue:
				verr = fmt.Errorf("nvwal: scrub: frame %d at block %#x off %d: durable commit mark lost", i, l.blk.Addr, l.off)
			case mark != 0 && mark != commitValue:
				verr = fmt.Errorf("nvwal: scrub: frame %d at block %#x off %d: durable commit mark corrupt (%#x)", i, l.blk.Addr, l.off, mark)
			}
		}
		res.FramesChecked++
		if verr != nil {
			res.BadFrames++
			if res.FirstErr == nil {
				res.FirstErr = verr
			}
			if !badBlocks[l.blk.Addr] {
				badBlocks[l.blk.Addr] = true
				res.BadBlocks = append(res.BadBlocks, l.blk.Addr)
				w.markBad(l.blk.Addr)
			}
		}
	}
	w.m.Inc(metrics.ScrubFramesChecked, int64(res.FramesChecked))
	w.m.Inc(metrics.ScrubFramesBad, int64(res.BadFrames))
	return res
}
