package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// stage is a test helper: stage one page into s, failing the test on a
// staging error or an unexpected no-op skip.
func stage(t *testing.T, s *Stream, pgno uint32, img, base []byte) {
	t.Helper()
	ok, err := s.StagePage(pgno, img, base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("page %d unexpectedly staged as a no-op", pgno)
	}
}

// TestStreamCommitAndRecovery merges two per-writer streams under one
// CommitStreams flush and checks the published versions, the metrics
// (one group, two transactions), and — the part the stream tags exist
// for — that recovery replays the interleaved streams correctly after
// a crash.
func TestStreamCommitAndRecovery(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	// Establish bases so the streams can stage differentials.
	base2, base3 := fullPage('a'), fullPage('b')
	if err := w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: base2}, {Pgno: 3, Data: base3}}); err != nil {
		t.Fatal(err)
	}

	s1, s2 := w.NewStream(), w.NewStream()
	if s1.ID() == 0 || s1.ID() == s2.ID() {
		t.Fatalf("stream tags not distinct/nonzero: %d %d", s1.ID(), s2.ID())
	}
	img2 := fullPage('a')
	copy(img2[100:], []byte("stream-one"))
	stage(t, s1, 2, img2, base2)
	img3 := fullPage('b')
	copy(img3[200:], []byte("stream-two"))
	stage(t, s2, 3, img3, base3)
	img4 := fullPage('d') // first touch: no base, full frame
	stage(t, s2, 4, img4, nil)

	before := e.m.Snapshot()
	if err := w.CommitStreams([]*Stream{s1, s2}, 2); err != nil {
		t.Fatal(err)
	}
	delta := e.m.Snapshot().Sub(before)
	if got := delta.Count(metrics.Transactions); got != 2 {
		t.Fatalf("Transactions delta = %d, want 2", got)
	}
	if got := delta.Count(metrics.GroupCommits); got != 1 {
		t.Fatalf("GroupCommits delta = %d, want 1", got)
	}

	check := func(w *NVWAL, when string) {
		t.Helper()
		for _, want := range []struct {
			pgno uint32
			img  []byte
		}{{2, img2}, {3, img3}, {4, img4}} {
			got, ok := w.PageVersion(want.pgno)
			if !ok {
				t.Fatalf("%s: page %d missing", when, want.pgno)
			}
			if !bytes.Equal(got, want.img) {
				t.Fatalf("%s: page %d image wrong", when, want.pgno)
			}
		}
	}
	check(w, "live")

	// Crash + recover: the stream-tagged frames must replay in commit
	// order under the single group commit mark.
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 7)
	check(w2, "recovered")
}

// TestStreamDiffConvertsToFullOnUnknownBase: a page staged
// differentially whose base the log no longer knows (never logged)
// must be converted to a full frame — replaying the diff over a zero
// base would corrupt the page.
func TestStreamDiffConvertsToFullOnUnknownBase(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	base := fullPage('x') // exists only in the "database file" world; never logged
	img := fullPage('x')
	copy(img[40:], []byte("delta"))
	s := w.NewStream()
	stage(t, s, 5, img, base)
	if err := w.CommitStreams([]*Stream{s}, 1); err != nil {
		t.Fatal(err)
	}
	got, ok := w.PageVersion(5)
	if !ok {
		t.Fatal("page 5 missing")
	}
	if !bytes.Equal(got, img) {
		t.Fatal("diff against unknown base replayed wrong (not converted to full)")
	}
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 9)
	got, ok = w2.PageVersion(5)
	if !ok || !bytes.Equal(got, img) {
		t.Fatalf("page 5 wrong after crash (ok=%v)", ok)
	}
}

// TestStreamEarlierStreamSuppliesBase: when an earlier stream in the
// same group stages the page's first-ever image, a later stream's diff
// against it may stay differential — the replay applies both in order.
func TestStreamEarlierStreamSuppliesBase(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())

	first := fullPage('m')
	second := fullPage('m')
	copy(second[300:], []byte("later"))
	s1, s2 := w.NewStream(), w.NewStream()
	stage(t, s1, 6, first, nil)    // full
	stage(t, s2, 6, second, first) // diff vs s1's image
	if err := w.CommitStreams([]*Stream{s1, s2}, 2); err != nil {
		t.Fatal(err)
	}
	got, ok := w.PageVersion(6)
	if !ok || !bytes.Equal(got, second) {
		t.Fatalf("later stream's diff lost (ok=%v)", ok)
	}
	w2 := e.reopen(t, VariantUHLSDiff(), memsim.FailDropAll, 13)
	got, ok = w2.PageVersion(6)
	if !ok || !bytes.Equal(got, second) {
		t.Fatalf("page 6 wrong after crash (ok=%v)", ok)
	}
}

// TestStreamNoopSkip: byte-identical images stage nothing.
func TestStreamNoopSkip(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, VariantUHLSDiff())
	img := fullPage('z')
	s := w.NewStream()
	ok, err := s.StagePage(7, img, img)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("identical image staged a frame")
	}
	if s.Pages() != 0 {
		t.Fatal("no-op left staged pages behind")
	}
	// A group of only no-op streams still counts its transactions.
	before := e.m.Snapshot()
	if err := w.CommitStreams([]*Stream{s}, 1); err != nil {
		t.Fatal(err)
	}
	delta := e.m.Snapshot().Sub(before)
	if delta.Count(metrics.Transactions) != 1 || delta.Count(metrics.WALFrames) != 0 {
		t.Fatalf("no-op stream commit: %d txns, %d frames", delta.Count(metrics.Transactions), delta.Count(metrics.WALFrames))
	}
}

// TestStreamLogFullIsPreMutation: a stream group the heap cannot admit
// fails with ErrLogFull before touching NVRAM — retryable after a
// checkpoint, with no linked blocks or heap pages leaked.
func TestStreamLogFullIsPreMutation(t *testing.T) {
	e := newTinyEnv(t, 16)
	w := e.open(t, Config{UserHeap: true, Differential: true})

	var err error
	for i := 0; i < 60; i++ {
		s := w.NewStream()
		if _, serr := s.StagePage(uint32(2+i%3), fullPage(byte(i+1)), nil); serr != nil {
			t.Fatal(serr)
		}
		blocksBefore, freeBefore, markBefore := w.Blocks(), e.heap.FreePages(), w.Mark()
		if err = w.CommitStreams([]*Stream{s}, 1); err != nil {
			if !errors.Is(err, ErrLogFull) {
				t.Fatalf("commit %d: error = %v, want ErrLogFull", i, err)
			}
			if w.Blocks() != blocksBefore || e.heap.FreePages() != freeBefore || w.Mark() != markBefore {
				t.Fatal("ErrLogFull mutated the log or leaked heap pages")
			}
			// Retryable: checkpoint frees space, the same stream commits.
			if cerr := w.Checkpoint(); cerr != nil {
				t.Fatalf("checkpoint on full heap: %v", cerr)
			}
			if rerr := w.CommitStreams([]*Stream{s}, 1); rerr != nil {
				t.Fatalf("retry after checkpoint: %v", rerr)
			}
			return
		}
	}
	t.Fatal("16-page heap never filled over 60 stream commits; test proves nothing")
}
