// Slow-fault (gray-failure) tests for the block device: seeded
// intermittent op stalls and fsync hangs must be deterministic and
// must never fail the operation.
package blockdev

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSlowFaultsDeterministicForSeed(t *testing.T) {
	run := func() (int64, int64, time.Duration) {
		d, clock, m, _ := newDev(t)
		d.InjectFaults(FaultConfig{
			Seed:           11,
			SlowOpRate:     0.3,
			SlowOpDelay:    20 * time.Microsecond,
			SyncStallRate:  0.5,
			SyncStallDelay: 200 * time.Microsecond,
		})
		buf := bytes.Repeat([]byte{0x5A}, 64)
		for i := 0; i < 200; i++ {
			if err := d.WritePage(i%512, buf, "db"); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			if i%8 == 0 {
				if err := d.Sync(); err != nil {
					t.Fatalf("sync %d: %v", i, err)
				}
			}
		}
		return m.Count(metrics.SlowFaultStalls), m.Count(metrics.SlowFaultStallNs), clock.Now()
	}
	s1, ns1, t1 := run()
	s2, ns2, t2 := run()
	if s1 == 0 {
		t.Fatal("no slow-fault stalls fired; the config should bite at this op count")
	}
	if s1 != s2 || ns1 != ns2 || t1 != t2 {
		t.Fatalf("slow faults not deterministic: %d/%dns/%v vs %d/%dns/%v",
			s1, ns1, t1, s2, ns2, t2)
	}
}

func TestSlowFaultsPreserveData(t *testing.T) {
	d, _, m, _ := newDev(t)
	d.InjectFaults(FaultConfig{Seed: 1, SlowOpRate: 1, SlowOpDelay: time.Millisecond})
	data := bytes.Repeat([]byte{0xC3}, 128)
	if err := d.WritePage(7, data, "db"); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := d.ReadPage(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("slow fault corrupted page content")
	}
	if m.Count(metrics.SlowFaultStalls) == 0 {
		t.Fatal("stalls did not fire at rate 1")
	}
}
