// Package blockdev simulates the eMMC flash storage of the paper's
// Nexus 5 platform: a page-granularity block device with a volatile
// write buffer that only becomes durable at a cache-flush (the device
// half of fsync). Program and flush latencies are charged to the shared
// virtual clock, calibrated so the optimized SQLite WAL lands near the
// paper's 541 inserts/second anchor.
//
// The device also models media faults: transient EIO (the controller
// hiccuped; a retry succeeds), permanent EIO (a page went bad), torn
// sector writes (power failed while a sector was programming — a
// prefix of the new content landed), and short writes (the program
// silently truncated but reported success). Faults are seeded and
// rate-configurable via InjectFaults, or forced deterministically via
// the FailNext*/MarkBad test hooks.
package blockdev

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// ErrIO is the sentinel every device I/O error wraps; match with
// errors.Is(err, ErrIO).
var ErrIO = errors.New("blockdev: I/O error")

// IOError is one failed device operation. Transient errors model
// controller hiccups that a bounded retry absorbs; permanent errors
// model media that has gone bad and will keep failing.
type IOError struct {
	Op        string // "read", "write", "sync"
	Page      int    // -1 when not attributable to one page
	Transient bool
}

func (e *IOError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	if e.Page < 0 {
		return fmt.Sprintf("blockdev: %s %s error", kind, e.Op)
	}
	return fmt.Sprintf("blockdev: %s %s error on page %d", kind, e.Op, e.Page)
}

func (e *IOError) Unwrap() error { return ErrIO }

// IsTransient reports whether err is a device error a retry may clear.
func IsTransient(err error) bool {
	var ioe *IOError
	return errors.As(err, &ioe) && ioe.Transient
}

// FaultConfig parameterizes randomized fault injection. All rates are
// probabilities in [0, 1]; zero disables that fault class.
type FaultConfig struct {
	// Seed drives every fault decision.
	Seed int64
	// ReadEIORate / WriteEIORate / SyncEIORate are per-operation
	// probabilities of a transient EIO.
	ReadEIORate  float64
	WriteEIORate float64
	SyncEIORate  float64
	// TornWriteRate is the per-page probability that a sector in flight
	// at a power failure tears: a prefix of the new content lands, the
	// rest keeps the old content.
	TornWriteRate float64
	// ShortWriteRate is the per-write probability that only a prefix of
	// the page programs while the device reports success.
	ShortWriteRate float64

	// Slow faults model gray failures: the device keeps answering, but
	// slowly. SlowOpRate is the per-read/write probability of an extra
	// SlowOpDelay stall (internal garbage collection, a marginal block
	// needing program retries). SyncStallRate is the per-Sync
	// probability of a SyncStallDelay stall — the intermittent fsync
	// hang that real eMMC parts exhibit near end of life. All delays
	// are charged to the virtual clock; the operation still succeeds.
	SlowOpRate     float64
	SlowOpDelay    time.Duration
	SyncStallRate  float64
	SyncStallDelay time.Duration
}

func (c FaultConfig) enabled() bool {
	return c.ReadEIORate > 0 || c.WriteEIORate > 0 || c.SyncEIORate > 0 ||
		c.TornWriteRate > 0 || c.ShortWriteRate > 0 ||
		(c.SlowOpRate > 0 && c.SlowOpDelay > 0) ||
		(c.SyncStallRate > 0 && c.SyncStallDelay > 0)
}

// Config parameterizes a Device. Zero fields take defaults.
type Config struct {
	// PageSize is the device write granule (4 KB, matching both the
	// SQLite page and the EXT4 block size — §3.2).
	PageSize int
	// Pages is the device capacity in pages.
	Pages int
	// ProgramLatency is charged per page write.
	ProgramLatency time.Duration
	// ReadLatency is charged per page read.
	ReadLatency time.Duration
	// FlushLatency is the device cache-flush cost charged per Sync, on
	// top of any outstanding page programs.
	FlushLatency time.Duration
}

// Defaults calibrated against the paper's eMMC anchors (§7 of DESIGN.md).
const (
	DefaultPageSize       = 4096
	DefaultPages          = 1 << 18 // 1 GiB
	DefaultProgramLatency = 180 * time.Microsecond
	DefaultReadLatency    = 60 * time.Microsecond
	DefaultFlushLatency   = 470 * time.Microsecond
)

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = DefaultPageSize
	}
	if c.Pages <= 0 {
		c.Pages = DefaultPages
	}
	if c.ProgramLatency <= 0 {
		c.ProgramLatency = DefaultProgramLatency
	}
	if c.ReadLatency <= 0 {
		c.ReadLatency = DefaultReadLatency
	}
	if c.FlushLatency <= 0 {
		c.FlushLatency = DefaultFlushLatency
	}
	return c
}

// Device is one simulated flash device. Safe for concurrent use.
type Device struct {
	mu      sync.Mutex
	cfg     Config
	clock   *simclock.Clock
	m       *metrics.Counters
	rec     *trace.Recorder
	durable map[int][]byte // page -> content surviving power failure
	pending map[int][]byte // written, not yet flushed
	frozen  map[int][]byte // durable image captured by Freeze, restored by PowerFail
	// frozenPending snapshots the in-flight writes at the Freeze
	// instant: the candidates for torn-sector application at PowerFail.
	frozenPending map[int][]byte

	faults  *FaultConfig
	rng     *rand.Rand
	badPage map[int]bool
	// One-shot transient failure injectors for deterministic tests.
	failNextRead, failNextWrite, failNextSync int
}

// New creates a device. rec may be nil to disable tracing.
func New(cfg Config, clock *simclock.Clock, m *metrics.Counters, rec *trace.Recorder) *Device {
	cfg = cfg.withDefaults()
	return &Device{
		cfg:     cfg,
		clock:   clock,
		m:       m,
		rec:     rec,
		durable: make(map[int][]byte),
		pending: make(map[int][]byte),
		badPage: make(map[int]bool),
	}
}

// PageSize returns the device write granule in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// Pages returns the device capacity in pages.
func (d *Device) Pages() int { return d.cfg.Pages }

// InjectFaults installs (or removes, with a zero config) randomized
// fault injection.
func (d *Device) InjectFaults(cfg FaultConfig) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !cfg.enabled() {
		d.faults = nil
		d.rng = nil
		return
	}
	c := cfg
	d.faults = &c
	d.rng = rand.New(rand.NewSource(cfg.Seed))
}

// Stall charges an externally injected delay to the device clock and
// the slow-fault counters. Layers above the device (ext4's fsync-stall
// model) route their own gray-failure delays here so every injected
// stall lands in one pair of counters.
func (d *Device) Stall(delay time.Duration) {
	if delay <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock.Advance(delay)
	d.m.AddTime(metrics.TimeBlockIO, delay)
	d.m.Inc(metrics.SlowFaultStalls, 1)
	d.m.Inc(metrics.SlowFaultStallNs, delay.Nanoseconds())
}

// slowStallLocked samples one slow-fault decision and, when it bites,
// charges the stall to the virtual clock. Caller holds d.mu.
func (d *Device) slowStallLocked(rate float64, delay time.Duration) {
	if rate <= 0 || delay <= 0 || d.rng.Float64() >= rate {
		return
	}
	d.clock.Advance(delay)
	d.m.AddTime(metrics.TimeBlockIO, delay)
	d.m.Inc(metrics.SlowFaultStalls, 1)
	d.m.Inc(metrics.SlowFaultStallNs, delay.Nanoseconds())
}

// MarkBad retires a page: every read or write of it fails permanently
// until ClearBad. A pending (unsynced) write to the page is discarded —
// it will never program.
func (d *Device) MarkBad(page int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(page)
	d.badPage[page] = true
	delete(d.pending, page)
}

// ClearBad un-retires a page.
func (d *Device) ClearBad(page int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.badPage[page] = false
}

// FailNextReads makes the next n reads fail with a transient EIO.
func (d *Device) FailNextReads(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failNextRead = n
}

// FailNextWrites makes the next n writes fail with a transient EIO.
func (d *Device) FailNextWrites(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failNextWrite = n
}

// FailNextSyncs makes the next n syncs fail with a transient EIO.
func (d *Device) FailNextSyncs(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failNextSync = n
}

func (d *Device) checkPage(page int) {
	if page < 0 || page >= d.cfg.Pages {
		panic(fmt.Sprintf("blockdev: page %d out of range [0,%d)", page, d.cfg.Pages))
	}
}

// ioError builds, counts, and returns one failed operation. Caller
// holds d.mu.
func (d *Device) ioError(op string, page int, transient bool) error {
	d.m.Inc(metrics.BlockIOErrors, 1)
	return &IOError{Op: op, Page: page, Transient: transient}
}

// WritePage programs one page. tag labels the I/O stream for tracing
// ("db", "db-wal", "journal"). The write is buffered in the device cache
// until Sync. A failed write buffers nothing; a short write silently
// buffers only a prefix of p over the page's previous content.
func (d *Device) WritePage(page int, p []byte, tag string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(page)
	if len(p) > d.cfg.PageSize {
		panic(fmt.Sprintf("blockdev: write of %d bytes exceeds page size %d", len(p), d.cfg.PageSize))
	}
	d.clock.Advance(d.cfg.ProgramLatency)
	d.m.AddTime(metrics.TimeBlockIO, d.cfg.ProgramLatency)
	if f := d.faults; f != nil {
		d.slowStallLocked(f.SlowOpRate, f.SlowOpDelay)
	}
	if d.badPage[page] {
		return d.ioError("write", page, false)
	}
	if d.failNextWrite > 0 {
		d.failNextWrite--
		return d.ioError("write", page, true)
	}
	if f := d.faults; f != nil && f.WriteEIORate > 0 && d.rng.Float64() < f.WriteEIORate {
		return d.ioError("write", page, true)
	}
	buf := make([]byte, d.cfg.PageSize)
	if f := d.faults; f != nil && f.ShortWriteRate > 0 && d.rng.Float64() < f.ShortWriteRate {
		// Short write: the old content shows through past the cut.
		if old, ok := d.pending[page]; ok {
			copy(buf, old)
		} else if old, ok := d.durable[page]; ok {
			copy(buf, old)
		}
		cut := 1 + d.rng.Intn(d.cfg.PageSize-1)
		if cut > len(p) {
			cut = len(p)
		}
		copy(buf[:cut], p[:cut])
		d.m.Inc(metrics.BlockShortWrites, 1)
	} else {
		copy(buf, p)
	}
	d.pending[page] = buf
	d.m.Inc(metrics.BlockWrite, 1)
	d.rec.Record(trace.Event{T: d.clock.Now(), Block: page, Tag: tag, Bytes: d.cfg.PageSize})
	return nil
}

// ReadPage loads one page into p (zero-filled if never written).
func (d *Device) ReadPage(page int, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(page)
	d.clock.Advance(d.cfg.ReadLatency)
	d.m.AddTime(metrics.TimeBlockIO, d.cfg.ReadLatency)
	if f := d.faults; f != nil {
		d.slowStallLocked(f.SlowOpRate, f.SlowOpDelay)
	}
	if d.badPage[page] {
		return d.ioError("read", page, false)
	}
	if d.failNextRead > 0 {
		d.failNextRead--
		return d.ioError("read", page, true)
	}
	if f := d.faults; f != nil && f.ReadEIORate > 0 && d.rng.Float64() < f.ReadEIORate {
		return d.ioError("read", page, true)
	}
	src, ok := d.pending[page]
	if !ok {
		src = d.durable[page]
	}
	for i := range p {
		p[i] = 0
	}
	if src != nil {
		copy(p, src)
	}
	d.m.Inc(metrics.BlockRead, 1)
	return nil
}

// Sync flushes the device write cache, making all buffered pages
// durable. This is the device half of fsync. On a transient sync error
// the buffered pages stay pending; a retry flushes them.
func (d *Device) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock.Advance(d.cfg.FlushLatency)
	d.m.AddTime(metrics.TimeBlockIO, d.cfg.FlushLatency)
	if f := d.faults; f != nil {
		d.slowStallLocked(f.SyncStallRate, f.SyncStallDelay)
	}
	if d.failNextSync > 0 {
		d.failNextSync--
		return d.ioError("sync", -1, true)
	}
	if f := d.faults; f != nil && f.SyncEIORate > 0 && d.rng.Float64() < f.SyncEIORate {
		return d.ioError("sync", -1, true)
	}
	for page, buf := range d.pending {
		if d.badPage[page] {
			// The page went bad while its write sat in the cache: the
			// program fails and the data is lost.
			delete(d.pending, page)
			continue
		}
		d.durable[page] = buf
		delete(d.pending, page)
	}
	d.m.Inc(metrics.Fsync, 1)
	return nil
}

// Freeze captures the current durable image as what the next PowerFail
// restores, regardless of Syncs that complete in between. It is the
// block-device half of a coordinated crash instant: a crash-injection
// harness freezes every device at the same moment, lets the doomed
// execution run on, and then fails power. A shallow copy of the durable
// map suffices because page buffers are replaced, never mutated. The
// in-flight (pending) writes at the freeze instant are also captured:
// they are the sectors that may tear when power actually fails.
func (d *Device) Freeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = make(map[int][]byte, len(d.durable))
	for page, buf := range d.durable {
		d.frozen[page] = buf
	}
	d.frozenPending = make(map[int][]byte, len(d.pending))
	for page, buf := range d.pending {
		d.frozenPending[page] = buf
	}
}

// Unfreeze discards a captured image so the next PowerFail resolves the
// then-current state normally.
func (d *Device) Unfreeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = nil
	d.frozenPending = nil
}

// PowerFail drops the volatile write buffer: unsynced writes are lost.
// If Freeze captured an image, the durable state rolls back to it. With
// fault injection enabled, each sector in flight at the crash instant
// may tear: a seeded prefix of the new content lands over the old.
func (d *Device) PowerFail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	inflight := d.pending
	if d.frozen != nil {
		d.durable = d.frozen
		d.frozen = nil
		inflight = d.frozenPending
		d.frozenPending = nil
	}
	if f := d.faults; f != nil && f.TornWriteRate > 0 {
		for page, buf := range inflight {
			if d.rng.Float64() >= f.TornWriteRate {
				continue
			}
			torn := make([]byte, d.cfg.PageSize)
			if old, ok := d.durable[page]; ok {
				copy(torn, old)
			}
			cut := 1 + d.rng.Intn(d.cfg.PageSize-1)
			copy(torn[:cut], buf[:cut])
			d.durable[page] = torn
			d.m.Inc(metrics.BlockTornWrites, 1)
		}
	}
	d.pending = make(map[int][]byte)
	d.frozenPending = nil
}

// PendingPages reports how many pages sit in the volatile write buffer.
func (d *Device) PendingPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}
