// Package blockdev simulates the eMMC flash storage of the paper's
// Nexus 5 platform: a page-granularity block device with a volatile
// write buffer that only becomes durable at a cache-flush (the device
// half of fsync). Program and flush latencies are charged to the shared
// virtual clock, calibrated so the optimized SQLite WAL lands near the
// paper's 541 inserts/second anchor.
package blockdev

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Config parameterizes a Device. Zero fields take defaults.
type Config struct {
	// PageSize is the device write granule (4 KB, matching both the
	// SQLite page and the EXT4 block size — §3.2).
	PageSize int
	// Pages is the device capacity in pages.
	Pages int
	// ProgramLatency is charged per page write.
	ProgramLatency time.Duration
	// ReadLatency is charged per page read.
	ReadLatency time.Duration
	// FlushLatency is the device cache-flush cost charged per Sync, on
	// top of any outstanding page programs.
	FlushLatency time.Duration
}

// Defaults calibrated against the paper's eMMC anchors (§7 of DESIGN.md).
const (
	DefaultPageSize       = 4096
	DefaultPages          = 1 << 18 // 1 GiB
	DefaultProgramLatency = 180 * time.Microsecond
	DefaultReadLatency    = 60 * time.Microsecond
	DefaultFlushLatency   = 470 * time.Microsecond
)

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = DefaultPageSize
	}
	if c.Pages <= 0 {
		c.Pages = DefaultPages
	}
	if c.ProgramLatency <= 0 {
		c.ProgramLatency = DefaultProgramLatency
	}
	if c.ReadLatency <= 0 {
		c.ReadLatency = DefaultReadLatency
	}
	if c.FlushLatency <= 0 {
		c.FlushLatency = DefaultFlushLatency
	}
	return c
}

// Device is one simulated flash device. Safe for concurrent use.
type Device struct {
	mu      sync.Mutex
	cfg     Config
	clock   *simclock.Clock
	m       *metrics.Counters
	rec     *trace.Recorder
	durable map[int][]byte // page -> content surviving power failure
	pending map[int][]byte // written, not yet flushed
	frozen  map[int][]byte // durable image captured by Freeze, restored by PowerFail
}

// New creates a device. rec may be nil to disable tracing.
func New(cfg Config, clock *simclock.Clock, m *metrics.Counters, rec *trace.Recorder) *Device {
	cfg = cfg.withDefaults()
	return &Device{
		cfg:     cfg,
		clock:   clock,
		m:       m,
		rec:     rec,
		durable: make(map[int][]byte),
		pending: make(map[int][]byte),
	}
}

// PageSize returns the device write granule in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// Pages returns the device capacity in pages.
func (d *Device) Pages() int { return d.cfg.Pages }

func (d *Device) checkPage(page int) {
	if page < 0 || page >= d.cfg.Pages {
		panic(fmt.Sprintf("blockdev: page %d out of range [0,%d)", page, d.cfg.Pages))
	}
}

// WritePage programs one page. tag labels the I/O stream for tracing
// ("db", "db-wal", "journal"). The write is buffered in the device cache
// until Sync.
func (d *Device) WritePage(page int, p []byte, tag string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(page)
	if len(p) > d.cfg.PageSize {
		panic(fmt.Sprintf("blockdev: write of %d bytes exceeds page size %d", len(p), d.cfg.PageSize))
	}
	buf := make([]byte, d.cfg.PageSize)
	copy(buf, p)
	d.pending[page] = buf
	d.clock.Advance(d.cfg.ProgramLatency)
	d.m.AddTime(metrics.TimeBlockIO, d.cfg.ProgramLatency)
	d.m.Inc(metrics.BlockWrite, 1)
	d.rec.Record(trace.Event{T: d.clock.Now(), Block: page, Tag: tag, Bytes: d.cfg.PageSize})
}

// ReadPage loads one page into p (zero-filled if never written).
func (d *Device) ReadPage(page int, p []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkPage(page)
	src, ok := d.pending[page]
	if !ok {
		src = d.durable[page]
	}
	for i := range p {
		p[i] = 0
	}
	if src != nil {
		copy(p, src)
	}
	d.clock.Advance(d.cfg.ReadLatency)
	d.m.AddTime(metrics.TimeBlockIO, d.cfg.ReadLatency)
	d.m.Inc(metrics.BlockRead, 1)
}

// Sync flushes the device write cache, making all buffered pages
// durable. This is the device half of fsync.
func (d *Device) Sync() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for page, buf := range d.pending {
		d.durable[page] = buf
		delete(d.pending, page)
	}
	d.clock.Advance(d.cfg.FlushLatency)
	d.m.AddTime(metrics.TimeBlockIO, d.cfg.FlushLatency)
	d.m.Inc(metrics.Fsync, 1)
}

// Freeze captures the current durable image as what the next PowerFail
// restores, regardless of Syncs that complete in between. It is the
// block-device half of a coordinated crash instant: a crash-injection
// harness freezes every device at the same moment, lets the doomed
// execution run on, and then fails power. A shallow copy of the durable
// map suffices because page buffers are replaced, never mutated.
func (d *Device) Freeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = make(map[int][]byte, len(d.durable))
	for page, buf := range d.durable {
		d.frozen[page] = buf
	}
}

// Unfreeze discards a captured image so the next PowerFail resolves the
// then-current state normally.
func (d *Device) Unfreeze() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = nil
}

// PowerFail drops the volatile write buffer: unsynced writes are lost.
// If Freeze captured an image, the durable state rolls back to it.
func (d *Device) PowerFail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen != nil {
		d.durable = d.frozen
		d.frozen = nil
	}
	d.pending = make(map[int][]byte)
}

// PendingPages reports how many pages sit in the volatile write buffer.
func (d *Device) PendingPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}
