package blockdev

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func newDev(t testing.TB) (*Device, *simclock.Clock, *metrics.Counters, *trace.Recorder) {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	rec := trace.New()
	return New(Config{Pages: 1024}, clock, m, rec), clock, m, rec
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, _, _, _ := newDev(t)
	data := bytes.Repeat([]byte{0xAA}, 100)
	d.WritePage(5, data, "db")
	got := make([]byte, 100)
	d.ReadPage(5, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("ReadPage = %x, want %x", got[:8], data[:8])
	}
}

func TestUnwrittenPageReadsZero(t *testing.T) {
	d, _, _, _ := newDev(t)
	got := bytes.Repeat([]byte{0xFF}, 16)
	d.ReadPage(9, got)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("unwritten page = %x, want zeros", got)
	}
}

func TestUnsyncedWritesLostOnPowerFail(t *testing.T) {
	d, _, _, _ := newDev(t)
	d.WritePage(1, []byte("gone"), "db")
	d.PowerFail()
	got := make([]byte, 4)
	d.ReadPage(1, got)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatalf("unsynced write survived: %q", got)
	}
}

func TestSyncedWritesSurvivePowerFail(t *testing.T) {
	d, _, _, _ := newDev(t)
	d.WritePage(1, []byte("kept"), "db")
	d.Sync()
	d.WritePage(2, []byte("gone"), "db")
	d.PowerFail()
	got := make([]byte, 4)
	d.ReadPage(1, got)
	if !bytes.Equal(got, []byte("kept")) {
		t.Fatalf("synced write lost: %q", got)
	}
	d.ReadPage(2, got)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatalf("unsynced write survived: %q", got)
	}
}

func TestLatencyAccounting(t *testing.T) {
	d, clock, m, _ := newDev(t)
	t0 := clock.Now()
	d.WritePage(0, []byte("x"), "db")
	if clock.Now()-t0 != DefaultProgramLatency {
		t.Fatalf("program charged %v, want %v", clock.Now()-t0, DefaultProgramLatency)
	}
	t0 = clock.Now()
	d.Sync()
	if clock.Now()-t0 != DefaultFlushLatency {
		t.Fatalf("sync charged %v, want %v", clock.Now()-t0, DefaultFlushLatency)
	}
	if m.Count(metrics.BlockWrite) != 1 || m.Count(metrics.Fsync) != 1 {
		t.Fatalf("counters: writes=%d fsyncs=%d", m.Count(metrics.BlockWrite), m.Count(metrics.Fsync))
	}
	if m.Time(metrics.TimeBlockIO) == 0 {
		t.Fatal("no block I/O time attributed")
	}
}

func TestTraceRecordsTaggedWrites(t *testing.T) {
	d, _, _, rec := newDev(t)
	d.WritePage(7, []byte("x"), "db-wal")
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Block != 7 || evs[0].Tag != "db-wal" {
		t.Fatalf("trace = %+v", evs)
	}
	if evs[0].Bytes != DefaultPageSize {
		t.Fatalf("trace bytes = %d, want %d", evs[0].Bytes, DefaultPageSize)
	}
}

func TestNilRecorderOK(t *testing.T) {
	d := New(Config{Pages: 16}, simclock.New(), &metrics.Counters{}, nil)
	d.WritePage(0, []byte("x"), "db")
	d.Sync()
}

func TestOutOfRangePanics(t *testing.T) {
	d, _, _, _ := newDev(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range page write did not panic")
		}
	}()
	d.WritePage(4096, []byte("x"), "db")
}

func TestOversizeWritePanics(t *testing.T) {
	d, _, _, _ := newDev(t)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize page write did not panic")
		}
	}()
	d.WritePage(0, make([]byte, DefaultPageSize+1), "db")
}

func TestPendingPages(t *testing.T) {
	d, _, _, _ := newDev(t)
	d.WritePage(0, []byte("a"), "db")
	d.WritePage(1, []byte("b"), "db")
	if got := d.PendingPages(); got != 2 {
		t.Fatalf("PendingPages = %d, want 2", got)
	}
	d.Sync()
	if got := d.PendingPages(); got != 0 {
		t.Fatalf("PendingPages after sync = %d, want 0", got)
	}
}

func TestConfigOverrides(t *testing.T) {
	clock := simclock.New()
	d := New(Config{PageSize: 512, Pages: 8, ProgramLatency: time.Millisecond}, clock, &metrics.Counters{}, nil)
	if d.PageSize() != 512 || d.Pages() != 8 {
		t.Fatalf("config not applied: %d/%d", d.PageSize(), d.Pages())
	}
	d.WritePage(0, []byte("x"), "db")
	if clock.Now() != time.Millisecond {
		t.Fatalf("custom program latency not charged: %v", clock.Now())
	}
}
