// Client: the retrying half of the admission-control contract. Busy
// responses are retried after the server's advised backoff (jittered,
// exponential, capped), Fenced responses adopt the newer epoch and
// re-discover the primary via STATUS, and a bounded retry budget
// keeps a dead cluster from wedging callers forever. Every failed
// write reports whether its outcome is determinate: an attempt that
// was sent but never definitively answered leaves the op
// "indeterminate" (maybe applied) — the distinction the torture
// oracle's lost-ack rule depends on.
package server

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Dialer opens a conn to a named endpoint (netsim or TCP).
type Dialer func(addr string) (netsim.Conn, error)

// ClientOptions tunes retry behaviour.
type ClientOptions struct {
	// RetryBudget is the max attempts per operation (default 8).
	RetryBudget int
	// RecvTimeout bounds each attempt's real-time wait for a response
	// (default 250ms). On a silently-dropped message this is the only
	// signal to retry.
	RecvTimeout time.Duration
	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between attempts (defaults 100µs / 5ms). A Busy response's
	// advised backoff overrides the exponential term.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Deadline is the server-side execution deadline attached to every
	// request (0 = none).
	Deadline time.Duration
	// ReadAnywhere lets Get/Status use any reachable endpoint instead
	// of requiring the primary (replica-read clients).
	ReadAnywhere bool
	// Seed drives the backoff jitter.
	Seed int64
	// Metrics receives client counters (nil = discarded).
	Metrics *metrics.Counters
}

// OpError is a failed operation's outcome. Indeterminate reports
// whether any attempt may have been applied: false means the write
// definitely did not happen; true means the cluster may or may not
// hold it (the caller must treat both as possible).
type OpError struct {
	Indeterminate bool
	Err           error
}

func (e *OpError) Error() string {
	if e.Indeterminate {
		return fmt.Sprintf("indeterminate: %v", e.Err)
	}
	return e.Err.Error()
}

func (e *OpError) Unwrap() error { return e.Err }

// Client is a sequential (NOT goroutine-safe) protocol client: one
// outstanding request at a time, which is what makes request-id
// deduplication on the server a complete at-most-once story.
type Client struct {
	dial  Dialer
	addrs []string
	opts  ClientOptions
	m     *metrics.Counters
	rng   *rand.Rand

	conn   netsim.Conn
	epoch  uint64
	nextID uint64
}

// NewClient builds a client over the given endpoints. The first
// request dials and, for writes, discovers the primary via STATUS.
func NewClient(dial Dialer, addrs []string, opts ClientOptions) *Client {
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 8
	}
	if opts.RecvTimeout <= 0 {
		opts.RecvTimeout = 250 * time.Millisecond
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Microsecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Millisecond
	}
	m := opts.Metrics
	if m == nil {
		m = &metrics.Counters{}
	}
	return &Client{
		dial:   dial,
		addrs:  addrs,
		opts:   opts,
		m:      m,
		rng:    rand.New(rand.NewSource(opts.Seed ^ 0x5eed)),
		nextID: 1,
	}
}

// Epoch returns the highest fencing epoch the client has observed.
func (c *Client) Epoch() uint64 { return c.epoch }

// SetEpoch force-adopts an epoch (tests and failover drivers).
func (c *Client) SetEpoch(e uint64) {
	if e > c.epoch {
		c.epoch = e
	}
}

// Close drops the connection.
func (c *Client) Close() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Get reads key. A nil error with found=false is a definitive miss.
func (c *Client) Get(table string, key []byte) ([]byte, bool, error) {
	resp, err := c.do(request{verb: verbGet, table: table, key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.value, resp.found, nil
}

// Put writes key=value, returning the commit sequence.
func (c *Client) Put(table string, key, value []byte) (uint64, error) {
	resp, err := c.do(request{verb: verbPut, table: table, key: key, value: value})
	if err != nil {
		return 0, err
	}
	return resp.seq, nil
}

// Delete removes key, returning the commit sequence.
func (c *Client) Delete(table string, key []byte) (uint64, error) {
	resp, err := c.do(request{verb: verbDelete, table: table, key: key})
	if err != nil {
		return 0, err
	}
	return resp.seq, nil
}

// Batch applies ops atomically, returning the commit sequence.
func (c *Client) Batch(table string, ops []Op) (uint64, error) {
	resp, err := c.do(request{verb: verbBatch, table: table, ops: ops})
	if err != nil {
		return 0, err
	}
	return resp.seq, nil
}

// Status queries the connected (or any reachable) endpoint.
func (c *Client) Status() (Status, error) {
	resp, err := c.do(request{verb: verbStatus})
	if err != nil {
		return Status{}, err
	}
	return resp.stat, nil
}

func isWrite(verb byte) bool {
	return verb == verbPut || verb == verbDelete || verb == verbBatch
}

// do runs one operation through the retry loop. On failure the error
// is always an *OpError.
func (c *Client) do(req request) (response, *OpError) {
	req.id = c.nextID
	c.nextID++
	req.deadline = c.opts.Deadline
	write := isWrite(req.verb)
	indeterminate := false
	var lastErr error

	for attempt := 0; attempt < c.opts.RetryBudget; attempt++ {
		if attempt > 0 {
			c.m.Inc(metrics.ClientRetries, 1)
		}
		if c.conn == nil {
			if err := c.connect(write || !c.opts.ReadAnywhere); err != nil {
				lastErr = err
				c.backoff(attempt, 0)
				continue
			}
		}
		req.epoch = c.epoch
		if err := c.conn.Send(encodeRequest(req)); err != nil {
			// A failed send never reached the server whole: the frame
			// dies with the connection. Determinate.
			c.dropConn()
			lastErr = err
			c.backoff(attempt, 0)
			continue
		}
		resp, err := c.recvMatching(req.id, req.verb)
		if err != nil {
			if write {
				// The request may have been executed and only the
				// response lost — sticky until a definitive answer.
				indeterminate = true
			}
			if !errors.Is(err, netsim.ErrTimeout) {
				c.dropConn()
			}
			lastErr = err
			c.backoff(attempt, 0)
			continue
		}
		switch resp.status {
		case stOK:
			return resp, nil
		case stBusy:
			// Definitively not applied; retry after the advised backoff.
			lastErr = fmt.Errorf("busy (%s): %d/%d pages", resp.busy.Watermark, resp.busy.Avail, resp.busy.Hard)
			c.backoff(attempt, resp.busy.Backoff)
		case stFenced:
			c.SetEpoch(resp.epoch)
			c.dropConn() // re-discover: the primary may have moved
			lastErr = fmt.Errorf("fenced: server epoch %d", resp.epoch)
			c.backoff(attempt, 0)
		case stReadOnly:
			c.dropConn() // wrong endpoint for writes — re-discover
			lastErr = fmt.Errorf("read-only endpoint: %s", resp.msg)
			c.backoff(attempt, 0)
		case stIndeterminate:
			indeterminate = true
			lastErr = fmt.Errorf("indeterminate: %s", resp.msg)
			c.backoff(attempt, 0)
		default: // stErr: a hard, determinate refusal — no retry
			return response{}, &OpError{Indeterminate: indeterminate, Err: errors.New(resp.msg)}
		}
	}
	return response{}, &OpError{
		Indeterminate: indeterminate,
		Err:           fmt.Errorf("retry budget exhausted after %d attempts: %w", c.opts.RetryBudget, lastErr),
	}
}

// recvMatching reads responses until one matches id (stale responses
// from timed-out attempts of EARLIER ops are discarded).
func (c *Client) recvMatching(id uint64, verb byte) (response, error) {
	for i := 0; i < 4; i++ {
		msg, err := c.conn.Recv(c.opts.RecvTimeout)
		if err != nil {
			return response{}, err
		}
		resp, err := decodeResponse(msg, verb)
		if err != nil {
			return response{}, err
		}
		if resp.id == id {
			return resp, nil
		}
	}
	return response{}, fmt.Errorf("no response matching request %d", id)
}

// connect dials endpoints and (for writes) selects the primary with
// the highest epoch via STATUS probes.
func (c *Client) connect(needPrimary bool) error {
	if len(c.addrs) == 1 && !needPrimary {
		conn, err := c.dial(c.addrs[0])
		if err != nil {
			return err
		}
		c.conn = conn
		return nil
	}
	bestAddr := ""
	var bestStat Status
	for _, addr := range c.addrs {
		conn, err := c.dial(addr)
		if err != nil {
			continue
		}
		st, err := c.statusOn(conn)
		_ = conn.Close()
		if err != nil {
			continue
		}
		c.SetEpoch(st.Epoch)
		if needPrimary && (st.Role != "primary" || st.Degraded) {
			continue
		}
		if bestAddr == "" || st.Epoch > bestStat.Epoch {
			bestAddr, bestStat = addr, st
		}
	}
	if bestAddr == "" {
		return fmt.Errorf("server: no %s reachable", map[bool]string{true: "primary", false: "endpoint"}[needPrimary])
	}
	if needPrimary && bestStat.Epoch < c.epoch {
		return fmt.Errorf("server: reachable primary at stale epoch %d < %d", bestStat.Epoch, c.epoch)
	}
	conn, err := c.dial(bestAddr)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

// statusOn runs one STATUS round-trip on a probe conn.
func (c *Client) statusOn(conn netsim.Conn) (Status, error) {
	id := c.nextID
	c.nextID++
	if err := conn.Send(encodeRequest(request{verb: verbStatus, id: id})); err != nil {
		return Status{}, err
	}
	msg, err := conn.Recv(c.opts.RecvTimeout)
	if err != nil {
		return Status{}, err
	}
	resp, err := decodeResponse(msg, verbStatus)
	if err != nil {
		return Status{}, err
	}
	return resp.stat, nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// backoff sleeps a jittered exponential delay; a server-advised delay
// replaces the exponential term.
func (c *Client) backoff(attempt int, advised time.Duration) {
	d := c.opts.BackoffBase << uint(attempt)
	if advised > 0 {
		d = advised
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	// Full jitter in [d/2, d).
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}
