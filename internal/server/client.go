// Client: the retrying half of the admission-control contract. Busy
// responses are retried after the server's advised backoff (jittered,
// exponential, capped), Fenced responses adopt the newer epoch and
// re-discover the primary via STATUS, and a bounded retry budget
// keeps a dead cluster from wedging callers forever. Every failed
// write reports whether its outcome is determinate: an attempt that
// was sent but never definitively answered leaves the op
// "indeterminate" (maybe applied) — the distinction the torture
// oracle's lost-ack rule depends on.
package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// Dialer opens a conn to a named endpoint (netsim or TCP).
type Dialer func(addr string) (netsim.Conn, error)

// ClientOptions tunes retry behaviour.
type ClientOptions struct {
	// RetryBudget is the max attempts per operation (default 8).
	RetryBudget int
	// RecvTimeout bounds each attempt's real-time wait for a response
	// (default 250ms). On a silently-dropped message this is the only
	// signal to retry.
	RecvTimeout time.Duration
	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between attempts (defaults 100µs / 5ms). A Busy response's
	// advised backoff overrides the exponential term.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Deadline is the server-side execution deadline attached to every
	// request (0 = none).
	Deadline time.Duration
	// ReadAnywhere lets Get/Status use any reachable endpoint instead
	// of requiring the primary (replica-read clients).
	ReadAnywhere bool
	// HedgeDelay enables hedged reads (requires ReadAnywhere and at
	// least two endpoints): when the first replica's answer would land
	// later than the hedge delay, the read is duplicated to a second
	// replica and the earlier answer wins. The delay adapts upward to
	// 2× the chosen replica's observed latency EWMA, so healthy-but-
	// merely-ordinary responses are not hedged. 0 disables hedging.
	HedgeDelay time.Duration
	// Clock is the client's virtual-time lane, required for hedged
	// reads over netsim: hedge outcomes are decided by virtual delivery
	// time, not real arrival order. Nil restricts hedging to the
	// first-response-wins degenerate form on real transports.
	Clock *simclock.Clock
	// Seed drives the backoff jitter.
	Seed int64
	// Metrics receives client counters (nil = discarded).
	Metrics *metrics.Counters
}

// Circuit-breaker policy: after breakerFailThreshold consecutive
// dial/probe failures an endpoint is skipped for breakerOpenFor (real
// time); the first attempt after that window is the half-open probe —
// success closes the breaker, failure re-opens it. When every endpoint
// is open the client probes them all anyway: a breaker sheds work from
// a sick endpoint, it must never lock the client out of a sick cluster.
const (
	breakerFailThreshold = 3
	breakerOpenFor       = 250 * time.Millisecond
)

type breakerState struct {
	fails     int
	openUntil time.Time
}

// OpError is a failed operation's outcome. Indeterminate reports
// whether any attempt may have been applied: false means the write
// definitely did not happen; true means the cluster may or may not
// hold it (the caller must treat both as possible).
type OpError struct {
	Indeterminate bool
	Err           error
}

func (e *OpError) Error() string {
	if e.Indeterminate {
		return fmt.Sprintf("indeterminate: %v", e.Err)
	}
	return e.Err.Error()
}

func (e *OpError) Unwrap() error { return e.Err }

// Client is a sequential (NOT goroutine-safe) protocol client: one
// outstanding request at a time, which is what makes request-id
// deduplication on the server a complete at-most-once story.
type Client struct {
	dial  Dialer
	addrs []string
	opts  ClientOptions
	m     *metrics.Counters
	rng   *rand.Rand

	conn   netsim.Conn
	epoch  uint64
	nextID uint64

	// Gray-failure machinery: per-endpoint circuit breakers, cached
	// hedge connections, and per-endpoint virtual-latency EWMAs that
	// order read targets and inform the hedge delay.
	brk    map[string]*breakerState
	hconns map[string]netsim.Conn
	lat    map[string]time.Duration
}

// NewClient builds a client over the given endpoints. The first
// request dials and, for writes, discovers the primary via STATUS.
func NewClient(dial Dialer, addrs []string, opts ClientOptions) *Client {
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 8
	}
	if opts.RecvTimeout <= 0 {
		opts.RecvTimeout = 250 * time.Millisecond
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Microsecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Millisecond
	}
	m := opts.Metrics
	if m == nil {
		m = &metrics.Counters{}
	}
	return &Client{
		dial:   dial,
		addrs:  addrs,
		opts:   opts,
		m:      m,
		rng:    rand.New(rand.NewSource(opts.Seed ^ 0x5eed)),
		nextID: 1,
		brk:    make(map[string]*breakerState),
		hconns: make(map[string]netsim.Conn),
		lat:    make(map[string]time.Duration),
	}
}

// Epoch returns the highest fencing epoch the client has observed.
func (c *Client) Epoch() uint64 { return c.epoch }

// SetEpoch force-adopts an epoch (tests and failover drivers).
func (c *Client) SetEpoch(e uint64) {
	if e > c.epoch {
		c.epoch = e
	}
}

// Close drops the connection and any cached hedge connections.
func (c *Client) Close() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	for addr, conn := range c.hconns {
		_ = conn.Close()
		delete(c.hconns, addr)
	}
}

// Get reads key. A nil error with found=false is a definitive miss.
// With hedging configured, a read whose first answer would arrive
// later than the hedge delay is duplicated to a second replica and the
// earlier (virtual-time) answer wins; any complication falls back to
// the plain retry loop.
func (c *Client) Get(table string, key []byte) ([]byte, bool, error) {
	if c.opts.HedgeDelay > 0 && c.opts.ReadAnywhere && len(c.addrs) > 1 {
		if resp, ok := c.hedgedGet(request{verb: verbGet, table: table, key: key}); ok {
			return resp.value, resp.found, nil
		}
	}
	resp, err := c.do(request{verb: verbGet, table: table, key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.value, resp.found, nil
}

// Put writes key=value, returning the commit sequence.
func (c *Client) Put(table string, key, value []byte) (uint64, error) {
	resp, err := c.do(request{verb: verbPut, table: table, key: key, value: value})
	if err != nil {
		return 0, err
	}
	return resp.seq, nil
}

// Delete removes key, returning the commit sequence.
func (c *Client) Delete(table string, key []byte) (uint64, error) {
	resp, err := c.do(request{verb: verbDelete, table: table, key: key})
	if err != nil {
		return 0, err
	}
	return resp.seq, nil
}

// Batch applies ops atomically, returning the commit sequence.
func (c *Client) Batch(table string, ops []Op) (uint64, error) {
	resp, err := c.do(request{verb: verbBatch, table: table, ops: ops})
	if err != nil {
		return 0, err
	}
	return resp.seq, nil
}

// Status queries the connected (or any reachable) endpoint.
func (c *Client) Status() (Status, error) {
	resp, err := c.do(request{verb: verbStatus})
	if err != nil {
		return Status{}, err
	}
	return resp.stat, nil
}

func isWrite(verb byte) bool {
	return verb == verbPut || verb == verbDelete || verb == verbBatch
}

// do runs one operation through the retry loop. On failure the error
// is always an *OpError.
func (c *Client) do(req request) (response, *OpError) {
	req.id = c.nextID
	c.nextID++
	req.deadline = c.opts.Deadline
	write := isWrite(req.verb)
	indeterminate := false
	var lastErr error

	for attempt := 0; attempt < c.opts.RetryBudget; attempt++ {
		if attempt > 0 {
			c.m.Inc(metrics.ClientRetries, 1)
		}
		if c.conn == nil {
			if err := c.connect(write || !c.opts.ReadAnywhere); err != nil {
				lastErr = err
				c.backoff(attempt, 0, 0)
				continue
			}
		}
		req.epoch = c.epoch
		if err := c.conn.Send(encodeRequest(req)); err != nil {
			// A failed send never reached the server whole: the frame
			// dies with the connection. Determinate.
			c.dropConn()
			lastErr = err
			c.backoff(attempt, 0, 0)
			continue
		}
		resp, err := c.recvMatching(req.id, req.verb)
		if err != nil {
			if write {
				// The request may have been executed and only the
				// response lost — sticky until a definitive answer.
				indeterminate = true
			}
			if !errors.Is(err, netsim.ErrTimeout) {
				c.dropConn()
			}
			lastErr = err
			c.backoff(attempt, 0, 0)
			continue
		}
		switch resp.status {
		case stOK:
			return resp, nil
		case stBusy:
			// Definitively not applied; retry after the advised backoff.
			lastErr = fmt.Errorf("busy (%s): %d/%d pages", resp.busy.Watermark, resp.busy.Avail, resp.busy.Hard)
			c.backoff(attempt, resp.busy.Backoff, resp.busy.RetryAfter)
		case stFenced:
			c.SetEpoch(resp.epoch)
			c.dropConn() // re-discover: the primary may have moved
			lastErr = fmt.Errorf("fenced: server epoch %d", resp.epoch)
			c.backoff(attempt, 0, 0)
		case stReadOnly:
			c.dropConn() // wrong endpoint for writes — re-discover
			lastErr = fmt.Errorf("read-only endpoint: %s", resp.msg)
			c.backoff(attempt, 0, 0)
		case stIndeterminate:
			indeterminate = true
			lastErr = fmt.Errorf("indeterminate: %s", resp.msg)
			c.backoff(attempt, 0, 0)
		default: // stErr: a hard, determinate refusal — no retry
			return response{}, &OpError{Indeterminate: indeterminate, Err: errors.New(resp.msg)}
		}
	}
	return response{}, &OpError{
		Indeterminate: indeterminate,
		Err:           fmt.Errorf("retry budget exhausted after %d attempts: %w", c.opts.RetryBudget, lastErr),
	}
}

// recvMatching reads responses until one matches id (stale responses
// from timed-out attempts of EARLIER ops are discarded).
func (c *Client) recvMatching(id uint64, verb byte) (response, error) {
	for i := 0; i < 4; i++ {
		msg, err := c.conn.Recv(c.opts.RecvTimeout)
		if err != nil {
			return response{}, err
		}
		resp, err := decodeResponse(msg, verb)
		if err != nil {
			return response{}, err
		}
		if resp.id == id {
			return resp, nil
		}
	}
	return response{}, fmt.Errorf("no response matching request %d", id)
}

// connect dials endpoints and (for writes) selects the primary with
// the highest epoch via STATUS probes.
func (c *Client) connect(needPrimary bool) error {
	if len(c.addrs) == 1 && !needPrimary {
		conn, err := c.dial(c.addrs[0])
		if err != nil {
			return err
		}
		c.conn = conn
		return nil
	}
	bestAddr := ""
	var bestStat Status
	for _, addr := range c.candidateAddrs() {
		conn, err := c.dial(addr)
		if err != nil {
			c.noteAddrFailure(addr)
			continue
		}
		st, err := c.statusOn(conn)
		_ = conn.Close()
		if err != nil {
			c.noteAddrFailure(addr)
			continue
		}
		c.noteAddrOK(addr)
		c.SetEpoch(st.Epoch)
		if needPrimary && (st.Role != "primary" || st.Degraded) {
			continue
		}
		if bestAddr == "" || st.Epoch > bestStat.Epoch {
			bestAddr, bestStat = addr, st
		}
	}
	if bestAddr == "" {
		return fmt.Errorf("server: no %s reachable", map[bool]string{true: "primary", false: "endpoint"}[needPrimary])
	}
	if needPrimary && bestStat.Epoch < c.epoch {
		return fmt.Errorf("server: reachable primary at stale epoch %d < %d", bestStat.Epoch, c.epoch)
	}
	conn, err := c.dial(bestAddr)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

// statusOn runs one STATUS round-trip on a probe conn.
func (c *Client) statusOn(conn netsim.Conn) (Status, error) {
	id := c.nextID
	c.nextID++
	if err := conn.Send(encodeRequest(request{verb: verbStatus, id: id})); err != nil {
		return Status{}, err
	}
	msg, err := conn.Recv(c.opts.RecvTimeout)
	if err != nil {
		return Status{}, err
	}
	resp, err := decodeResponse(msg, verbStatus)
	if err != nil {
		return Status{}, err
	}
	return resp.stat, nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// backoff sleeps a jittered exponential delay; a server-advised delay
// replaces the exponential term (capped at BackoffMax), and an
// explicit retryAfter hint — a server promise that earlier retries are
// pointless — is honored uncapped, with additive jitter so a shed herd
// does not return in lockstep.
func (c *Client) backoff(attempt int, advised, retryAfter time.Duration) {
	d := c.opts.BackoffBase << uint(attempt)
	if advised > 0 {
		d = advised
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	// Full jitter in [d/2, d).
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	if retryAfter > 0 && d < retryAfter {
		d = retryAfter + time.Duration(c.rng.Int63n(int64(retryAfter/8)+1))
	}
	if c.opts.Clock != nil {
		// Virtual-time deployment: charge the full (uncapped) wait to
		// the client's lane and keep the real sleep bounded, like every
		// other virtual stall in the simulation.
		c.opts.Clock.Advance(d)
		if d > 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
	} else if d > time.Second {
		// No virtual clock to charge: a server hint denominated in
		// virtual time can be astronomically large — cap the real sleep
		// so a retry-after can never wedge the caller.
		d = time.Second
	}
	time.Sleep(d)
}

// --- circuit breaker -------------------------------------------------

// addrAllowed reports whether the endpoint's breaker admits an attempt
// (closed, or open past its window — the half-open probe).
func (c *Client) addrAllowed(addr string) bool {
	b := c.brk[addr]
	return b == nil || b.fails < breakerFailThreshold || time.Now().After(b.openUntil)
}

// noteAddrFailure records a dial/probe failure; crossing the threshold
// (re-)opens the breaker.
func (c *Client) noteAddrFailure(addr string) {
	b := c.brk[addr]
	if b == nil {
		b = &breakerState{}
		c.brk[addr] = b
	}
	b.fails++
	if b.fails >= breakerFailThreshold {
		b.openUntil = time.Now().Add(breakerOpenFor)
		c.m.Inc(metrics.BreakerOpen, 1)
	}
}

// noteAddrOK closes the endpoint's breaker.
func (c *Client) noteAddrOK(addr string) {
	if b := c.brk[addr]; b != nil {
		b.fails = 0
	}
}

// candidateAddrs is the endpoint list with open breakers filtered out.
// When every breaker is open the full list comes back: the breaker
// sheds work from a sick endpoint, it never locks the client out of a
// sick cluster.
func (c *Client) candidateAddrs() []string {
	open := make([]string, 0, len(c.addrs))
	for _, a := range c.addrs {
		if c.addrAllowed(a) {
			open = append(open, a)
		}
	}
	if len(open) == 0 {
		return c.addrs
	}
	return open
}

// --- hedged reads ----------------------------------------------------

// observeLat folds one virtual-latency sample into the endpoint's EWMA.
func (c *Client) observeLat(addr string, d time.Duration) {
	if prev, ok := c.lat[addr]; ok {
		c.lat[addr] = prev + (d-prev)*3/10
	} else {
		c.lat[addr] = d
	}
}

// readOrder returns breaker-admitted endpoints sorted fastest-first by
// latency EWMA (unknown endpoints sort first so they get measured).
// A degrading replica's EWMA inflates until it loses the front spot —
// hedge target selection self-corrects without explicit health pings.
func (c *Client) readOrder() []string {
	addrs := append([]string(nil), c.candidateAddrs()...)
	sort.SliceStable(addrs, func(i, j int) bool {
		return c.lat[addrs[i]] < c.lat[addrs[j]]
	})
	return addrs
}

// hedgeDelayFor is the health-informed hedge delay: the configured
// floor, raised to 2× the target's latency EWMA so ordinary responses
// from a healthy replica are never hedged.
func (c *Client) hedgeDelayFor(addr string) time.Duration {
	d := c.opts.HedgeDelay
	if ewma := c.lat[addr]; ewma*2 > d {
		d = ewma * 2
	}
	return d
}

// hconn returns a cached hedge connection to addr, dialing on first
// use. Hedge conns are separate from the primary conn so hedged reads
// never perturb the write path's request stream.
func (c *Client) hconn(addr string) netsim.Conn {
	if conn, ok := c.hconns[addr]; ok {
		return conn
	}
	conn, err := c.dial(addr)
	if err != nil {
		c.noteAddrFailure(addr)
		return nil
	}
	c.hconns[addr] = conn
	return conn
}

func (c *Client) dropHconn(addr string) {
	if conn, ok := c.hconns[addr]; ok {
		_ = conn.Close()
		delete(c.hconns, addr)
	}
}

// recvAtMatching reads responses off a hedge conn until one matches id,
// WITHOUT advancing the client's clock: it returns the decoded response
// together with its virtual delivery time, leaving the AdvanceTo to the
// hedge arbiter. virt is false on transports without virtual timing.
func (c *Client) recvAtMatching(conn netsim.Conn, id uint64, verb byte) (response, time.Duration, bool, error) {
	for i := 0; i < 4; i++ {
		msg, at, virt, err := netsim.RecvAt(conn, c.opts.RecvTimeout)
		if err != nil {
			return response{}, 0, virt, err
		}
		resp, err := decodeResponse(msg, verb)
		if err != nil {
			return response{}, 0, virt, err
		}
		if resp.id == id {
			return resp, at, virt, nil
		}
	}
	return response{}, 0, true, fmt.Errorf("no response matching request %d", id)
}

// hedgedGet runs one read with hedging. ok=false means the caller must
// fall back to the plain retry loop (no usable OK answer came back —
// the read was NOT applied anywhere in a way that matters; reads are
// idempotent, so re-running is always safe).
//
// The hedge is decided in VIRTUAL time: over netsim every response is
// available in real time almost immediately, carrying the virtual
// delivery timestamp its simulated latency implies. The client sends to
// the fastest-EWMA replica, inspects the response's virtual arrival
// WITHOUT advancing its clock, and only if that arrival exceeds the
// hedge delay does it charge the delay, duplicate the read to the
// second replica, and take whichever answer bears the earlier virtual
// timestamp. A plain Recv on the slow response would drag the client's
// lane clock past the fast one and erase the win.
func (c *Client) hedgedGet(req request) (response, bool) {
	order := c.readOrder()
	if len(order) < 2 {
		return response{}, false
	}
	first, second := order[0], order[1]
	ca := c.hconn(first)
	if ca == nil {
		return response{}, false
	}
	req.id = c.nextID
	c.nextID++
	req.epoch = c.epoch
	req.deadline = c.opts.Deadline
	var t0 time.Duration
	if c.opts.Clock != nil {
		t0 = c.opts.Clock.Now()
	}
	if err := ca.Send(encodeRequest(req)); err != nil {
		c.dropHconn(first)
		c.noteAddrFailure(first)
		return response{}, false
	}
	respA, atA, virt, errA := c.recvAtMatching(ca, req.id, req.verb)
	if errA != nil {
		c.dropHconn(first)
		c.noteAddrFailure(first)
	} else {
		c.noteAddrOK(first)
	}
	if errA == nil && (!virt || c.opts.Clock == nil) {
		// Real transport: arrival order is the only order there is.
		return respA, respA.status == stOK
	}
	if c.opts.Clock == nil || (errA != nil && !virt) {
		// No virtual clock to arbitrate the hedge (or a recv failure on
		// a real transport): fall back to the plain retry loop, which
		// already walks the replica order. Reads are idempotent.
		return response{}, false
	}
	deadline := t0 + c.hedgeDelayFor(first)
	if errA == nil && atA <= deadline {
		c.opts.Clock.AdvanceTo(atA)
		c.observeLat(first, atA-t0)
		return respA, respA.status == stOK
	}

	// First answer is virtually late (or lost) — hedge.
	c.m.Inc(metrics.HedgedReads, 1)
	c.opts.Clock.AdvanceTo(deadline)
	type answer struct {
		resp   response
		at     time.Duration
		addr   string
		sentAt time.Duration
	}
	var answers []answer
	if errA == nil {
		answers = append(answers, answer{respA, atA, first, t0})
	}
	if cb := c.hconn(second); cb != nil {
		reqB := req
		reqB.id = c.nextID
		c.nextID++
		if err := cb.Send(encodeRequest(reqB)); err != nil {
			c.dropHconn(second)
			c.noteAddrFailure(second)
		} else if respB, atB, _, errB := c.recvAtMatching(cb, reqB.id, reqB.verb); errB != nil {
			c.dropHconn(second)
			c.noteAddrFailure(second)
		} else {
			c.noteAddrOK(second)
			if atB < deadline {
				// The duplicate cannot have answered before it was sent.
				atB = deadline
			}
			answers = append(answers, answer{respB, atB, second, deadline})
		}
	}
	if len(answers) == 0 {
		return response{}, false
	}
	win := answers[0]
	for _, a := range answers[1:] {
		if a.at < win.at {
			win = a
		}
	}
	c.opts.Clock.AdvanceTo(win.at)
	for _, a := range answers {
		// Charge each replica from the time its copy of the read was
		// actually sent — the duplicate went out at the hedge deadline,
		// not t0, and billing it the hedge delay would inflate a healthy
		// hedge target's EWMA on every hedge.
		c.observeLat(a.addr, a.at-a.sentAt)
	}
	if win.addr == second {
		c.m.Inc(metrics.HedgeWins, 1)
	}
	return win.resp, win.resp.status == stOK
}
