package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// openDB builds a small NVWAL-journaled database with a kv table.
func openDB(t *testing.T) *db.DB {
	t.Helper()
	plat, err := platform.NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Open(plat, "srv.db", db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	if err := d.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	return d
}

// startSim serves engine on a netsim endpoint and returns the network
// plus a dialer.
func startSim(t *testing.T, eng Engine, opts Options) (*netsim.Network, Dialer) {
	t.Helper()
	clock := simclock.New()
	n := netsim.New(clock, netsim.Config{Latency: 10 * time.Microsecond}, 7, nil)
	l, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Clock == nil {
		opts.Clock = clock
	}
	s := New(eng, opts)
	go s.Serve(l)
	t.Cleanup(s.Close)
	dial := func(addr string) (netsim.Conn, error) {
		return n.Dial("cli", addr)
	}
	return n, dial
}

func TestServerRoundTripSim(t *testing.T) {
	d := openDB(t)
	eng := NewDBEngine(d, 0)
	_, dial := startSim(t, eng, Options{Pressure: d.Pressure})
	cli := NewClient(dial, []string{"srv"}, ClientOptions{})
	defer cli.Close()

	if _, err := cli.Put("kv", []byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	seq, err := cli.Batch("kv", []Op{
		{Key: []byte("beta"), Value: []byte("2")},
		{Key: []byte("gamma"), Value: []byte("3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 {
		t.Fatal("batch commit returned seq 0")
	}
	v, found, err := cli.Get("kv", []byte("beta"))
	if err != nil || !found || string(v) != "2" {
		t.Fatalf("Get beta = %q found=%v err=%v", v, found, err)
	}
	if _, err := cli.Delete("kv", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cli.Get("kv", []byte("alpha")); found {
		t.Fatal("alpha survived delete")
	}
	st, err := cli.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || st.Mark <= 0 || st.Applied != st.Mark {
		t.Fatalf("status = %+v", st)
	}
}

func TestServerShedsAtWriteRate(t *testing.T) {
	d := openDB(t)
	eng := NewDBEngine(d, 0)
	m := &metrics.Counters{}
	// Virtually zero refill: burst of 2, then every write sheds (the
	// virtual clock advances far too little to mint new tokens).
	_, dial := startSim(t, eng, Options{WriteRate: 1e-6, WriteBurst: 2, Metrics: m})
	cli := NewClient(dial, []string{"srv"}, ClientOptions{RetryBudget: 2, BackoffMax: time.Millisecond})
	defer cli.Close()

	for i := 0; i < 2; i++ {
		if _, err := cli.Put("kv", []byte{byte(i)}, []byte("x")); err != nil {
			t.Fatalf("burst write %d: %v", i, err)
		}
	}
	_, err := cli.Put("kv", []byte("over"), []byte("x"))
	var oe *OpError
	if !errors.As(err, &oe) || oe.Indeterminate {
		t.Fatalf("rate-limited write = %v, want determinate OpError", err)
	}
	if m.Count(metrics.ServerShed) == 0 {
		t.Fatal("shed counter did not move")
	}
	// A shed write definitively did not apply.
	if _, found, _ := cli.Get("kv", []byte("over")); found {
		t.Fatal("shed write was applied")
	}
}

func TestServerFencesStaleEpoch(t *testing.T) {
	d := openDB(t)
	eng := NewDBEngine(d, 3)
	m := &metrics.Counters{}
	_, dial := startSim(t, eng, Options{Epoch: 3, Metrics: m})
	cli := NewClient(dial, []string{"srv"}, ClientOptions{})
	defer cli.Close()

	// The client starts at epoch 0; discovery via STATUS adopts epoch 3
	// and the write then lands.
	if _, err := cli.Put("kv", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if cli.Epoch() != 3 {
		t.Fatalf("client did not adopt epoch: %d", cli.Epoch())
	}

	// A raw stale-epoch request is fenced.
	conn, err := dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encodeRequest(request{verb: verbPut, id: 99, epoch: 1, table: "kv", key: []byte("z"), value: []byte("z")})); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(msg, verbPut)
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != stFenced || resp.epoch != 3 {
		t.Fatalf("stale write = status %d epoch %d, want fenced at 3", resp.status, resp.epoch)
	}
	if m.Count(metrics.ServerFenced) == 0 {
		t.Fatal("fence counter did not move")
	}
	if _, found, _ := d.Get("kv", []byte("z")); found {
		t.Fatal("fenced write was applied")
	}
}

func TestServerDedupResendsWithoutReexecuting(t *testing.T) {
	d := openDB(t)
	eng := NewDBEngine(d, 0)
	_, dial := startSim(t, eng, Options{})
	conn, err := dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := request{verb: verbPut, id: 42, table: "kv", key: []byte("dup"), value: []byte("v")}
	if err := conn.Send(encodeRequest(req)); err != nil {
		t.Fatal(err)
	}
	first, err := conn.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Model a lost response: the client retries the same request id.
	if err := conn.Send(encodeRequest(req)); err != nil {
		t.Fatal(err)
	}
	second, err := conn.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := decodeResponse(first, verbPut)
	r2, _ := decodeResponse(second, verbPut)
	if r1.status != stOK || r2.status != stOK {
		t.Fatalf("statuses %d, %d", r1.status, r2.status)
	}
	if r1.seq != r2.seq {
		t.Fatalf("duplicate was re-executed: seq %d then %d", r1.seq, r2.seq)
	}
}

func TestClientRetriesThroughDrops(t *testing.T) {
	d := openDB(t)
	eng := NewDBEngine(d, 0)
	n, dial := startSim(t, eng, Options{})
	m := &metrics.Counters{}
	cli := NewClient(dial, []string{"srv"}, ClientOptions{
		RecvTimeout: 30 * time.Millisecond,
		Metrics:     m,
	})
	defer cli.Close()
	// Establish the conn with a clean write, then make the link lossy
	// enough that some attempt times out.
	if _, err := cli.Put("kv", []byte("warm"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	drops := 0
	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		// Every other write, drop all traffic briefly so the first
		// attempt is lost and the retry (after the link heals) lands.
		if i%2 == 0 {
			n.SetLink("cli", "srv", netsim.Config{DropRate: 1})
			go func() {
				time.Sleep(40 * time.Millisecond)
				n.SetLink("cli", "srv", netsim.Config{})
			}()
			drops++
		}
		if _, err := cli.Put("kv", key, []byte("v")); err != nil {
			t.Fatalf("write %d through drops: %v", i, err)
		}
	}
	if drops > 0 && m.Count(metrics.ClientRetries) == 0 {
		t.Fatal("no retries recorded despite forced drops")
	}
	for i := 0; i < 10; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if _, found, err := cli.Get("kv", key); err != nil || !found {
			t.Fatalf("acked write k%d missing: found=%v err=%v", i, found, err)
		}
	}
}

func TestServerEngineBusySurfacesAdvice(t *testing.T) {
	eng := &stubEngine{err: &db.BusyError{
		Watermark: "begin-admission",
		Avail:     3,
		Hard:      8,
		Shard:     2,
		Backoff:   db.SuggestedBusyBackoff,
	}}
	_, dial := startSim(t, eng, Options{})
	conn, err := dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(encodeRequest(request{verb: verbPut, id: 1, table: "kv", key: []byte("k"), value: []byte("v")})); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(msg, verbPut)
	if err != nil {
		t.Fatal(err)
	}
	if resp.status != stBusy {
		t.Fatalf("status = %d, want busy", resp.status)
	}
	adv := resp.busy
	if adv.Watermark != "begin-admission" || adv.Avail != 3 || adv.Hard != 8 || adv.Shard != 2 || adv.Backoff != db.SuggestedBusyBackoff {
		t.Fatalf("advice did not survive the wire: %+v", adv)
	}
}

// stubEngine fails every Apply with a fixed error.
type stubEngine struct{ err error }

func (s *stubEngine) Get(string, []byte) ([]byte, bool, error) { return nil, false, nil }
func (s *stubEngine) Apply(context.Context, string, []Op) (uint64, error) {
	return 0, s.err
}
func (s *stubEngine) Status() Status { return Status{Role: "primary"} }

// TestServerRoundTripTCP drives the same protocol over real sockets —
// the push-tier CI smoke for cmd/nvwal-server's transport.
func TestServerRoundTripTCP(t *testing.T) {
	d := openDB(t)
	eng := NewDBEngine(d, 0)
	l, err := netsim.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback: %v", err)
	}
	s := New(eng, Options{Pressure: d.Pressure})
	go s.Serve(l)
	defer s.Close()

	cli := NewClient(netsim.DialTCP, []string{l.Addr()}, ClientOptions{RecvTimeout: 2 * time.Second})
	defer cli.Close()
	if _, err := cli.Put("kv", []byte("tcp"), []byte("works")); err != nil {
		t.Fatal(err)
	}
	v, found, err := cli.Get("kv", []byte("tcp"))
	if err != nil || !found || string(v) != "works" {
		t.Fatalf("Get over TCP = %q found=%v err=%v", v, found, err)
	}
	st, err := cli.Status()
	if err != nil || st.Role != "primary" {
		t.Fatalf("Status over TCP = %+v, %v", st, err)
	}
}

// recvErrConn is a real-transport-shaped Conn (no RecvAt method, so no
// virtual timing) whose reads always time out — the gray-failure shape
// hedging targets on TCP.
type recvErrConn struct{}

func (recvErrConn) Send([]byte) error                  { return nil }
func (recvErrConn) Recv(time.Duration) ([]byte, error) { return nil, netsim.ErrTimeout }
func (recvErrConn) Close() error                       { return nil }
func (recvErrConn) LocalName() string                  { return "cli" }
func (recvErrConn) RemoteName() string                 { return "srv" }

func TestHedgedGetNilClockRecvFailureFallsBack(t *testing.T) {
	// Regression: with a nil Clock (real-transport first-response-wins
	// hedging), a recv failure on the first replica must fall back to
	// the plain retry loop instead of dereferencing the nil clock.
	dial := func(string) (netsim.Conn, error) { return recvErrConn{}, nil }
	cli := NewClient(dial, []string{"a", "b"}, ClientOptions{
		RetryBudget:  2,
		RecvTimeout:  5 * time.Millisecond,
		ReadAnywhere: true,
		HedgeDelay:   time.Millisecond,
	})
	defer cli.Close()
	if _, _, err := cli.Get("kv", []byte("k")); err == nil {
		t.Fatal("expected an error from a cluster that never answers")
	}
}
