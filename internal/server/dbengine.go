// DBEngine adapts a local db.DB to the Engine interface: the
// single-node serving path, and the building block repl.Primary and
// repl.Replica wrap. Writes are serialized through a context-aware
// queue slot so a stalled commit sheds waiters as Busy instead of
// piling goroutines onto the journal lock.
package server

import (
	"context"

	"repro/internal/core"
	"repro/internal/db"
)

// DBEngine serves requests from a local database.
type DBEngine struct {
	d     *db.DB
	epoch uint64
	slot  chan struct{}
}

// NewDBEngine wraps d. epoch is reported in Status (fencing is
// enforced by the Server, which carries its own epoch).
func NewDBEngine(d *db.DB, epoch uint64) *DBEngine {
	e := &DBEngine{d: d, epoch: epoch, slot: make(chan struct{}, 1)}
	e.slot <- struct{}{}
	return e
}

// DB exposes the wrapped database (replication hooks need it).
func (e *DBEngine) DB() *db.DB { return e.d }

// Get reads the latest committed version.
func (e *DBEngine) Get(table string, key []byte) ([]byte, bool, error) {
	return e.d.Get(table, key)
}

// Apply runs ops as one transaction. A failure after Begin rolls the
// transaction back, so a non-nil error (other than ErrIndeterminate,
// which DBEngine never returns) means "not applied".
func (e *DBEngine) Apply(ctx context.Context, table string, ops []Op) (uint64, error) {
	select {
	case <-e.slot:
	case <-ctx.Done():
		return 0, &db.BusyError{
			Watermark: "engine-queue",
			Shard:     -1,
			Backoff:   db.SuggestedBusyBackoff,
			Cause:     ctx.Err(),
		}
	}
	defer func() { e.slot <- struct{}{} }()

	tx, err := e.d.BeginCtx(ctx)
	if err != nil {
		return 0, err
	}
	for _, op := range ops {
		if op.Delete {
			_, err = tx.Delete(table, op.Key)
		} else {
			err = tx.Insert(table, op.Key, op.Value)
		}
		if err != nil {
			tx.Rollback()
			return 0, err
		}
	}
	if err := tx.CommitCtx(ctx); err != nil {
		return 0, err
	}
	return tx.Seq(), nil
}

// Status reports the primary view of a standalone database.
func (e *DBEngine) Status() Status {
	mark := 0
	if w, ok := e.d.Journal().(*core.NVWAL); ok {
		mark = w.Mark()
	}
	return Status{
		Role:     "primary",
		Epoch:    e.epoch,
		Mark:     mark,
		Applied:  mark,
		Degraded: e.d.Degraded() != nil,
	}
}
