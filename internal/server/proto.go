// Wire protocol: length-prefixed KV verbs over a netsim message
// stream (the length prefix itself is the transport framing; one
// message = one request or response). Every request carries a client
// request id (at-most-once dedup per connection), the client's fencing
// epoch, and an optional execution deadline. Responses lead with a
// status byte; the Busy status carries machine-readable retry advice
// lifted straight from the engine's structured BusyError.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Verbs.
const (
	verbGet byte = iota + 1
	verbPut
	verbDelete
	verbBatch
	verbStatus
)

// Response statuses.
const (
	stOK byte = iota + 1
	// stBusy: the write was shed or timed out BEFORE anything reached
	// the journal — definitely not applied, safe to retry after the
	// advised backoff.
	stBusy
	// stFenced: the request's epoch does not match the server's; the
	// payload carries the server's epoch.
	stFenced
	// stReadOnly: the endpoint cannot execute writes (replica, or a
	// degraded primary).
	stReadOnly
	// stIndeterminate: the commit may or may not be durable/replicated
	// (e.g. a replica-ack wait expired after the local commit). A
	// retry is idempotent at the KV level but the caller must treat
	// the op as possibly applied.
	stIndeterminate
	stErr
)

// Op is one mutation in a batch.
type Op struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// Status is the STATUS verb's payload, also used for primary
// discovery and replication-lag reporting.
type Status struct {
	Role     string // "primary" or "replica"
	Epoch    uint64
	Mark     int // end of the committed log (primary) / shipped mark known (replica)
	Applied  int // mark applied and readable (primary: == Mark)
	Lag      int // Mark - Applied, as last known
	Degraded bool
}

// request is one decoded client request.
type request struct {
	verb     byte
	id       uint64
	epoch    uint64
	deadline time.Duration // 0 = none
	table    string
	key      []byte
	value    []byte
	ops      []Op
}

// errShort rejects truncated messages.
var errShort = errors.New("server: truncated message")

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.err = errShort
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = errShort
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// encodeRequest serializes one request.
func encodeRequest(req request) []byte {
	b := make([]byte, 0, 32+len(req.key)+len(req.value))
	b = append(b, req.verb)
	b = appendU64(b, req.id)
	b = appendU64(b, req.epoch)
	b = appendU32(b, uint32(req.deadline/time.Millisecond))
	switch req.verb {
	case verbGet, verbDelete:
		b = append(b, byte(len(req.table)))
		b = append(b, req.table...)
		b = appendU16(b, uint16(len(req.key)))
		b = append(b, req.key...)
	case verbPut:
		b = append(b, byte(len(req.table)))
		b = append(b, req.table...)
		b = appendU16(b, uint16(len(req.key)))
		b = append(b, req.key...)
		b = appendU32(b, uint32(len(req.value)))
		b = append(b, req.value...)
	case verbBatch:
		b = append(b, byte(len(req.table)))
		b = append(b, req.table...)
		b = appendU16(b, uint16(len(req.ops)))
		for _, op := range req.ops {
			kind := byte(0)
			if op.Delete {
				kind = 1
			}
			b = append(b, kind)
			b = appendU16(b, uint16(len(op.Key)))
			b = append(b, op.Key...)
			if !op.Delete {
				b = appendU32(b, uint32(len(op.Value)))
				b = append(b, op.Value...)
			}
		}
	case verbStatus:
	}
	return b
}

// decodeRequest parses one request message.
func decodeRequest(msg []byte) (request, error) {
	r := &reader{b: msg}
	req := request{
		verb:     r.u8(),
		id:       r.u64(),
		epoch:    r.u64(),
		deadline: time.Duration(r.u32()) * time.Millisecond,
	}
	switch req.verb {
	case verbGet, verbDelete:
		req.table = string(r.bytes(int(r.u8())))
		req.key = r.bytes(int(r.u16()))
	case verbPut:
		req.table = string(r.bytes(int(r.u8())))
		req.key = r.bytes(int(r.u16()))
		req.value = r.bytes(int(r.u32()))
	case verbBatch:
		req.table = string(r.bytes(int(r.u8())))
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			var op Op
			op.Delete = r.u8() == 1
			op.Key = r.bytes(int(r.u16()))
			if !op.Delete {
				op.Value = r.bytes(int(r.u32()))
			}
			req.ops = append(req.ops, op)
		}
	case verbStatus:
	default:
		return req, fmt.Errorf("server: unknown verb %d", req.verb)
	}
	return req, r.err
}

// response building helpers. Every response leads [status u8][id u64].
func respHeader(st byte, id uint64) []byte {
	b := make([]byte, 0, 64)
	b = append(b, st)
	return appendU64(b, id)
}

func respOKGet(id uint64, value []byte, found bool) []byte {
	b := respHeader(stOK, id)
	if found {
		b = append(b, 1)
		b = appendU32(b, uint32(len(value)))
		b = append(b, value...)
	} else {
		b = append(b, 0)
	}
	return b
}

func respOKWrite(id, seq uint64) []byte {
	return appendU64(respHeader(stOK, id), seq)
}

func respOKStatus(id uint64, s Status) []byte {
	b := respHeader(stOK, id)
	role := byte(0)
	if s.Role == "primary" {
		role = 1
	}
	b = append(b, role)
	b = appendU64(b, s.Epoch)
	b = appendU64(b, uint64(s.Mark))
	b = appendU64(b, uint64(s.Applied))
	b = appendU64(b, uint64(s.Lag))
	if s.Degraded {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

// BusyAdvice is the decoded retry advice of a Busy response.
type BusyAdvice struct {
	Backoff time.Duration
	// RetryAfter, when non-zero, is an explicit server promise: retrying
	// before this much time has passed is pointless (the rate limiter's
	// next token, a checkpoint round in flight). Unlike Backoff — a
	// suggestion the client folds into its capped exponential schedule —
	// RetryAfter is honored uncapped.
	RetryAfter time.Duration
	Shard      int
	Avail      int
	Hard       int
	Watermark  string
}

func respBusy(id uint64, adv BusyAdvice) []byte {
	b := respHeader(stBusy, id)
	b = appendU64(b, uint64(adv.Backoff))
	b = appendU64(b, uint64(adv.RetryAfter))
	b = appendU32(b, uint32(int32(adv.Shard)))
	b = appendU32(b, uint32(adv.Avail))
	b = appendU32(b, uint32(adv.Hard))
	b = appendU16(b, uint16(len(adv.Watermark)))
	return append(b, adv.Watermark...)
}

func respFenced(id, epoch uint64) []byte {
	return appendU64(respHeader(stFenced, id), epoch)
}

func respMsg(st byte, id uint64, msg string) []byte {
	b := respHeader(st, id)
	b = appendU16(b, uint16(len(msg)))
	return append(b, msg...)
}

// response is one decoded server response.
type response struct {
	status byte
	id     uint64

	found bool
	value []byte
	seq   uint64
	stat  Status
	busy  BusyAdvice
	epoch uint64
	msg   string
}

// decodeResponse parses a response for the verb the request carried.
func decodeResponse(msg []byte, verb byte) (response, error) {
	r := &reader{b: msg}
	resp := response{status: r.u8(), id: r.u64()}
	switch resp.status {
	case stOK:
		switch verb {
		case verbGet:
			resp.found = r.u8() == 1
			if resp.found {
				resp.value = r.bytes(int(r.u32()))
			}
		case verbPut, verbDelete, verbBatch:
			resp.seq = r.u64()
		case verbStatus:
			if r.u8() == 1 {
				resp.stat.Role = "primary"
			} else {
				resp.stat.Role = "replica"
			}
			resp.stat.Epoch = r.u64()
			resp.stat.Mark = int(r.u64())
			resp.stat.Applied = int(r.u64())
			resp.stat.Lag = int(r.u64())
			resp.stat.Degraded = r.u8() == 1
		}
	case stBusy:
		resp.busy.Backoff = time.Duration(r.u64())
		resp.busy.RetryAfter = time.Duration(r.u64())
		resp.busy.Shard = int(int32(r.u32()))
		resp.busy.Avail = int(r.u32())
		resp.busy.Hard = int(r.u32())
		resp.busy.Watermark = string(r.bytes(int(r.u16())))
	case stFenced:
		resp.epoch = r.u64()
	case stReadOnly, stIndeterminate, stErr:
		resp.msg = string(r.bytes(int(r.u16())))
	default:
		return resp, fmt.Errorf("server: unknown response status %d", resp.status)
	}
	return resp, r.err
}
