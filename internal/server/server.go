// Server: per-connection sessions over netsim conns (simulated or
// real TCP), feeding an Engine. Admission control sheds writes BEFORE
// backpressure stalls compound: a virtual-clock token bucket bounds
// the sustained write rate, and a pressure probe refuses writes
// outright once the NVRAM heap is below its hard watermark — both
// return a retryable Busy with machine-readable backoff advice rather
// than letting the request queue up behind a stalled commit. Requests
// carry a fencing epoch; writes with a stale epoch are refused so a
// deposed primary's clients cannot write history the promoted replica
// no longer honours.
package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// ErrIndeterminate marks a commit whose outcome is unknown at the
// time the error is raised (e.g. a replica-ack wait expired after the
// local commit). Engines wrap it; the server maps it to the
// Indeterminate wire status.
var ErrIndeterminate = errors.New("server: commit outcome indeterminate")

// ErrReadOnly marks an engine that cannot execute writes (a replica,
// or a primary latched degraded).
var ErrReadOnly = errors.New("server: endpoint is read-only")

// Engine executes requests for a Server. Implementations: DBEngine
// (a local db.DB), repl.Primary (local commit + log shipping),
// repl.Replica (snapshot reads at the applied mark).
type Engine interface {
	// Get reads the latest readable version of key.
	Get(table string, key []byte) ([]byte, bool, error)
	// Apply atomically applies ops as one transaction and returns its
	// commit sequence. ctx bounds backpressure stalls and ack waits.
	Apply(ctx context.Context, table string, ops []Op) (uint64, error)
	// Status reports role, fencing epoch and replication marks.
	Status() Status
}

// Options configures a Server.
type Options struct {
	// Epoch is the server's fencing epoch; write requests carrying a
	// different epoch are refused with the Fenced status.
	Epoch uint64
	// ReadOnly refuses all writes (replica endpoints).
	ReadOnly bool
	// WriteRate bounds sustained writes/sec against virtual time via a
	// token bucket (0 = unlimited). WriteBurst is the bucket depth
	// (default 8 when WriteRate > 0).
	WriteRate  float64
	WriteBurst int
	// Clock times the token bucket (required when WriteRate > 0).
	Clock *simclock.Clock
	// Pressure, when set, is probed before every write; if the heap is
	// below the hard watermark the write is shed immediately with
	// Busy advice instead of queueing behind a stall. Wire it to
	// db.DB.Pressure.
	Pressure func() (avail, soft, hard int, ok bool)
	// Metrics receives server counters (nil = discarded).
	Metrics *metrics.Counters
}

// Server accepts conns and runs one session per conn.
type Server struct {
	eng  Engine
	opts Options
	m    *metrics.Counters

	mu       sync.Mutex
	lis      netsim.Listener
	conns    map[netsim.Conn]struct{}
	closed   bool
	tokens   float64
	lastFill time.Duration

	wg sync.WaitGroup
}

// New builds a server over engine. Call Serve to start accepting.
func New(engine Engine, opts Options) *Server {
	m := opts.Metrics
	if m == nil {
		m = &metrics.Counters{}
	}
	if opts.WriteRate > 0 && opts.WriteBurst <= 0 {
		opts.WriteBurst = 8
	}
	s := &Server{
		eng:    engine,
		opts:   opts,
		m:      m,
		conns:  make(map[netsim.Conn]struct{}),
		tokens: float64(opts.WriteBurst),
	}
	if opts.Clock != nil {
		s.lastFill = opts.Clock.Now()
	}
	return s
}

// Serve accepts conns on l until l or the server closes. Run it in a
// goroutine; it returns after the accept loop exits.
func (s *Server) Serve(l netsim.Listener) {
	s.mu.Lock()
	s.lis = l
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	for {
		c, err := l.Accept(0)
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.session(c)
	}
}

// Close stops accepting, tears down all conns and waits for sessions.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]netsim.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

// session serves one connection: a strict request/response loop with
// at-most-once execution per request id. The client sends one request
// at a time and retries with the SAME id after a timeout; if the
// original response was computed but lost, the cached copy is resent
// without re-executing the write.
func (s *Server) session(c netsim.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
		s.wg.Done()
	}()
	var lastID uint64
	var lastResp []byte
	for {
		msg, err := c.Recv(0)
		if err != nil {
			return
		}
		req, err := decodeRequest(msg)
		if err != nil {
			_ = c.Send(respMsg(stErr, req.id, err.Error()))
			continue
		}
		var resp []byte
		if lastResp != nil && req.id == lastID {
			resp = lastResp // duplicate: resend, never re-execute
		} else {
			resp = s.handle(req)
			lastID, lastResp = req.id, resp
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// handle executes one decoded request.
func (s *Server) handle(req request) []byte {
	s.m.Inc(metrics.ServerRequests, 1)
	switch req.verb {
	case verbStatus:
		return respOKStatus(req.id, s.eng.Status())
	case verbGet:
		v, found, err := s.eng.Get(req.table, req.key)
		if err != nil {
			return s.errResp(req.id, err)
		}
		return respOKGet(req.id, v, found)
	case verbPut, verbDelete, verbBatch:
		return s.handleWrite(req)
	default:
		return respMsg(stErr, req.id, "server: unknown verb")
	}
}

func (s *Server) handleWrite(req request) []byte {
	if req.epoch != s.opts.Epoch {
		s.m.Inc(metrics.ServerFenced, 1)
		return respFenced(req.id, s.opts.Epoch)
	}
	if s.opts.ReadOnly {
		return respMsg(stReadOnly, req.id, ErrReadOnly.Error())
	}
	if wait, ok := s.takeToken(); !ok {
		s.m.Inc(metrics.ServerShed, 1)
		// The rate limiter knows exactly when the next token arrives, so
		// it ships an explicit RetryAfter: the client honors it uncapped
		// instead of clamping it into its backoff schedule and hammering
		// the bucket early.
		return respBusy(req.id, BusyAdvice{
			Backoff:    wait,
			RetryAfter: wait,
			Shard:      -1,
			Watermark:  "server-rate",
		})
	}
	if s.opts.Pressure != nil {
		if avail, _, hard, ok := s.opts.Pressure(); ok && avail < hard {
			// Shed up front: admitting this write would stall it behind
			// an urgent checkpoint; refusing with advice keeps the
			// session (and the group committer) live.
			s.m.Inc(metrics.ServerShed, 1)
			return respBusy(req.id, BusyAdvice{
				Backoff:   db.SuggestedBusyBackoff,
				Shard:     -1,
				Avail:     avail,
				Hard:      hard,
				Watermark: "server-admission",
			})
		}
	}

	ctx := context.Background()
	if req.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.deadline)
		defer cancel()
	}
	var ops []Op
	switch req.verb {
	case verbPut:
		ops = []Op{{Key: req.key, Value: req.value}}
	case verbDelete:
		ops = []Op{{Key: req.key, Delete: true}}
	case verbBatch:
		ops = req.ops
	}
	seq, err := s.eng.Apply(ctx, req.table, ops)
	if err != nil {
		if req.deadline > 0 &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			// A client-propagated deadline reached the engine and aborted
			// the stall cleanly — the deadline did its job end to end.
			s.m.Inc(metrics.DeadlineAborts, 1)
		}
		return s.errResp(req.id, err)
	}
	return respOKWrite(req.id, seq)
}

// takeToken draws from the write-rate bucket; on refusal it returns
// the virtual time until the next token.
func (s *Server) takeToken() (time.Duration, bool) {
	if s.opts.WriteRate <= 0 || s.opts.Clock == nil {
		return 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Clock.Now()
	if now > s.lastFill {
		s.tokens += float64(now-s.lastFill) / float64(time.Second) * s.opts.WriteRate
		if max := float64(s.opts.WriteBurst); s.tokens > max {
			s.tokens = max
		}
		s.lastFill = now
	}
	if s.tokens >= 1 {
		s.tokens--
		return 0, true
	}
	wait := time.Duration((1 - s.tokens) / s.opts.WriteRate * float64(time.Second))
	return wait, false
}

// errResp maps engine errors onto wire statuses. Busy and ReadOnly
// mean "definitely not applied"; Indeterminate means "maybe applied".
func (s *Server) errResp(id uint64, err error) []byte {
	var be *db.BusyError
	switch {
	case errors.As(err, &be):
		s.m.Inc(metrics.ServerShed, 1)
		return respBusy(id, BusyAdvice{
			Backoff:   be.Backoff,
			Shard:     be.Shard,
			Avail:     be.Avail,
			Hard:      be.Hard,
			Watermark: be.Watermark,
		})
	case errors.Is(err, db.ErrBusy),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		s.m.Inc(metrics.ServerShed, 1)
		return respBusy(id, BusyAdvice{
			Backoff:   db.SuggestedBusyBackoff,
			Shard:     -1,
			Watermark: "engine-busy",
		})
	case errors.Is(err, ErrIndeterminate):
		return respMsg(stIndeterminate, id, err.Error())
	case errors.Is(err, ErrReadOnly), errors.Is(err, db.ErrDegraded):
		return respMsg(stReadOnly, id, err.Error())
	default:
		return respMsg(stErr, id, err.Error())
	}
}
