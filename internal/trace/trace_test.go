package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndEvents(t *testing.T) {
	r := New()
	r.Record(Event{T: time.Microsecond, Block: 3, Tag: "db", Bytes: 4096})
	r.Record(Event{T: 2 * time.Microsecond, Block: 4, Tag: "journal", Bytes: 4096})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Block != 3 || evs[1].Tag != "journal" {
		t.Fatalf("Events = %+v", evs)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{})
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
	r.Reset()
}

func TestBytesByTag(t *testing.T) {
	r := New()
	r.Record(Event{Tag: "db-wal", Bytes: 4096})
	r.Record(Event{Tag: "db-wal", Bytes: 4096})
	r.Record(Event{Tag: "journal", Bytes: 4096})
	by := r.BytesByTag()
	if by["db-wal"] != 8192 || by["journal"] != 4096 {
		t.Fatalf("BytesByTag = %v", by)
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Record(Event{Block: 1})
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestStringSortedByTime(t *testing.T) {
	r := New()
	r.Record(Event{T: 5 * time.Microsecond, Block: 2, Tag: "b"})
	r.Record(Event{T: time.Microsecond, Block: 1, Tag: "a"})
	s := r.String()
	ia, ib := strings.Index(s, "a"), strings.Index(s, "b")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("String not time-sorted:\n%s", s)
	}
}

func TestEventsCopyIsolated(t *testing.T) {
	r := New()
	r.Record(Event{Block: 1})
	evs := r.Events()
	evs[0].Block = 99
	if r.Events()[0].Block != 1 {
		t.Fatal("Events copy aliases internal storage")
	}
}
