// Package trace records block-level I/O events so the Figure 8 block
// trace of the paper (block address over time, split by EXT4 journal /
// .db-wal / .db traffic) can be regenerated.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one block write: which device page, when (virtual time), and
// which stream it belongs to ("db", "db-wal", "journal", ...).
type Event struct {
	T     time.Duration
	Block int
	Tag   string
	Bytes int
}

// Recorder accumulates events. A nil *Recorder is valid and discards
// everything, so devices can be wired unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record appends one event. No-op on a nil recorder.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of all recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// BytesByTag sums written bytes per stream tag.
func (r *Recorder) BytesByTag() map[string]int {
	out := make(map[string]int)
	for _, e := range r.Events() {
		out[e.Tag] += e.Bytes
	}
	return out
}

// String renders the trace as "time_us block tag" lines sorted by time,
// the format the Figure 8 harness prints.
func (r *Recorder) String() string {
	evs := r.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "%10.1f %8d %s\n", float64(e.T.Microseconds()), e.Block, e.Tag)
	}
	return b.String()
}
