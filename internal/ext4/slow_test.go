// Slow-fault (gray-failure) tests for the file system: seeded
// intermittent fsync stalls must be deterministic, charge the shared
// slow-fault counters, and leave the fsync's durability intact.
package ext4

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestFsyncStallsDeterministicForSeed(t *testing.T) {
	run := func() (int64, int64, time.Duration) {
		fs, _, m, clock := newFS(t)
		fs.InjectSlowFaults(SlowConfig{
			Seed:            23,
			FsyncStallRate:  0.4,
			FsyncStallDelay: 3 * time.Millisecond,
		})
		f, err := fs.Create("wal", "wal")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 512)
		for i := 0; i < 100; i++ {
			if _, err := f.WriteAt(buf, int64(i*512)); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			if err := f.Fsync(); err != nil {
				t.Fatalf("fsync %d: %v", i, err)
			}
		}
		return m.Count(metrics.SlowFaultStalls), m.Count(metrics.SlowFaultStallNs), clock.Now()
	}
	s1, ns1, t1 := run()
	s2, ns2, t2 := run()
	if s1 == 0 {
		t.Fatal("no fsync stalls fired; the config should bite over 100 fsyncs")
	}
	if s1 != s2 || ns1 != ns2 || t1 != t2 {
		t.Fatalf("fsync stalls not deterministic: %d/%dns/%v vs %d/%dns/%v",
			s1, ns1, t1, s2, ns2, t2)
	}
}

func TestInjectSlowFaultsZeroConfigDisarms(t *testing.T) {
	fs, _, m, _ := newFS(t)
	fs.InjectSlowFaults(SlowConfig{Seed: 1, FsyncStallRate: 1, FsyncStallDelay: time.Millisecond})
	f, err := fs.Create("a", "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	armed := m.Count(metrics.SlowFaultStalls)
	if armed == 0 {
		t.Fatal("stall did not fire at rate 1")
	}
	fs.InjectSlowFaults(SlowConfig{})
	if _, err := f.WriteAt(make([]byte, 64), 64); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(); err != nil {
		t.Fatal(err)
	}
	if got := m.Count(metrics.SlowFaultStalls); got != armed {
		t.Fatalf("stalls fired after disarm: %d -> %d", armed, got)
	}
}
