// Package ext4 simulates the EXT4 ordered-mode journaling file system
// the paper's flash-based WAL baseline runs on. It reproduces the I/O
// amplification §1 and §5.4 measure:
//
//   - fsync of appended data writes the dirty data pages first (ordered
//     mode), then commits a journal transaction for the metadata update:
//     descriptor + inode blocks, a device flush, a commit block, and a
//     second device flush;
//   - growing a file (block allocation) additionally journals the block
//     bitmap and group descriptor — the 16 KB + 4 KB journal pattern of
//     Figure 8;
//   - fallocate-style pre-allocation (WALDIO, §5.4) extends the file
//     once so subsequent appends journal only the inode update.
//
// Metadata is made durable by the journal commit: a power failure
// reverts the file system to its last committed metadata snapshot and
// discards unsynced data pages, matching ordered-mode guarantees.
package ext4

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/blockdev"
)

// Journal page accounting per commit (in device pages).
const (
	journalDescriptorPages = 1 // journal descriptor block
	journalInodePages      = 1 // inode table block (mtime/size update)
	journalAllocPages      = 2 // block bitmap + group descriptor
	journalCommitPages     = 1 // commit record
	journalRegionPages     = 4096
)

// TagJournal labels journal traffic in block traces.
const TagJournal = "journal"

// Errors.
var (
	ErrExists   = errors.New("ext4: file exists")
	ErrNotExist = errors.New("ext4: file does not exist")
)

type inode struct {
	name    string
	tag     string
	size    int64
	extents []int // file page index -> device page
}

func (in *inode) clone() *inode {
	c := *in
	c.extents = append([]int(nil), in.extents...)
	return &c
}

// FS is one mounted file system over a block device.
type FS struct {
	mu  sync.Mutex
	dev *blockdev.Device

	files map[string]*inode
	// Volatile page cache: dirty data pages not yet written to the
	// device, keyed by device page.
	cache map[int][]byte
	dirty map[int]string // device page -> trace tag
	// unwritten marks allocated-but-never-written pages (fallocate's
	// unwritten extents): they read as zeros and never expose a
	// previous owner's content.
	unwritten map[int]bool

	// allocator state
	nextDataPage int
	freePages    []int
	journalBase  int
	journalHead  int

	// durable metadata snapshot, refreshed at each journal commit
	durableFiles     map[string]*inode
	durableNextPage  int
	durableFree      []int
	durableUnwritten map[int]bool

	metaDirty  bool // inode update pending
	allocDirty bool // block allocation pending

	// frozen, when non-nil, is the durable state captured by Freeze; the
	// next PowerFail reverts to it instead of the latest journal commit.
	frozen *frozenMeta

	// slow-fault model (gray failures): seeded intermittent fsync
	// stalls on top of whatever the device itself injects.
	slow    SlowConfig
	slowRng *rand.Rand
}

// SlowConfig parameterizes file-system-level gray-failure injection:
// each Fsync independently stalls for FsyncStallDelay with probability
// FsyncStallRate — the journal thread blocked behind a slow flush, the
// writeback path wedged on a marginal block. Delays are charged to the
// device's virtual clock; the fsync still succeeds. Configured like the
// storage FaultConfigs so fuzz chains arm it deterministically.
type SlowConfig struct {
	Seed            int64
	FsyncStallRate  float64
	FsyncStallDelay time.Duration
}

func (c SlowConfig) enabled() bool {
	return c.FsyncStallRate > 0 && c.FsyncStallDelay > 0
}

// InjectSlowFaults installs (or, with a zero config, removes) the
// file-system slow-fault model.
func (fs *FS) InjectSlowFaults(cfg SlowConfig) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !cfg.enabled() {
		fs.slow, fs.slowRng = SlowConfig{}, nil
		return
	}
	fs.slow = cfg
	fs.slowRng = rand.New(rand.NewSource(cfg.Seed))
}

// slowFsyncStallLocked samples one fsync-stall decision. Caller holds
// fs.mu; the delay is charged through the device so all injected
// stalls share one counter pair.
func (fs *FS) slowFsyncStallLocked() {
	if fs.slowRng == nil {
		return
	}
	if fs.slowRng.Float64() < fs.slow.FsyncStallRate {
		fs.dev.Stall(fs.slow.FsyncStallDelay)
	}
}

// frozenMeta is a point-in-time reference to the durable metadata
// snapshot. References suffice: snapshotMeta rebuilds these structures
// wholesale at each journal commit and never mutates them in place.
type frozenMeta struct {
	files     map[string]*inode
	nextPage  int
	free      []int
	unwritten map[int]bool
}

// New mounts a fresh file system on dev.
func New(dev *blockdev.Device) *FS {
	fs := &FS{
		dev:          dev,
		files:        make(map[string]*inode),
		cache:        make(map[int][]byte),
		dirty:        make(map[int]string),
		unwritten:    make(map[int]bool),
		nextDataPage: 1, // page 0 reserved (superblock)
		journalBase:  dev.Pages() - journalRegionPages,
	}
	fs.snapshotMeta()
	return fs
}

// Device returns the underlying block device.
func (fs *FS) Device() *blockdev.Device { return fs.dev }

// PageSize returns the file system block size.
func (fs *FS) PageSize() int { return fs.dev.PageSize() }

// Create creates a new empty file. tag labels its I/O in block traces.
func (fs *FS) Create(name, tag string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	in := &inode{name: name, tag: tag}
	fs.files[name] = in
	fs.metaDirty = true
	return &File{fs: fs, in: in}, nil
}

// Open opens an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &File{fs: fs, in: in}, nil
}

// OpenOrCreate opens name, creating it when absent.
func (fs *FS) OpenOrCreate(name, tag string) (*File, error) {
	if f, err := fs.Open(name); err == nil {
		return f, nil
	}
	return fs.Create(name, tag)
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file, releasing its pages.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	for _, pg := range in.extents {
		delete(fs.cache, pg)
		delete(fs.dirty, pg)
		fs.freePages = append(fs.freePages, pg)
	}
	delete(fs.files, name)
	fs.metaDirty = true
	fs.allocDirty = true
	return nil
}

// allocPage hands out one device data page as an unwritten extent.
// Caller holds fs.mu.
func (fs *FS) allocPage() int {
	var pg int
	if n := len(fs.freePages); n > 0 {
		pg = fs.freePages[n-1]
		fs.freePages = fs.freePages[:n-1]
	} else {
		pg = fs.nextDataPage
		if pg >= fs.journalBase {
			panic("ext4: device full")
		}
		fs.nextDataPage++
	}
	fs.unwritten[pg] = true
	return pg
}

// snapshotMeta captures the current metadata as the durable state.
// Caller holds fs.mu.
func (fs *FS) snapshotMeta() {
	fs.durableFiles = make(map[string]*inode, len(fs.files))
	for name, in := range fs.files {
		fs.durableFiles[name] = in.clone()
	}
	fs.durableNextPage = fs.nextDataPage
	fs.durableFree = append([]int(nil), fs.freePages...)
	fs.durableUnwritten = make(map[int]bool, len(fs.unwritten))
	for pg := range fs.unwritten {
		fs.durableUnwritten[pg] = true
	}
}

// Freeze captures the current durable state (file-system metadata and
// the device's synced pages) as what the next PowerFail reverts to,
// regardless of journal commits that complete in between. Used by the
// crash-injection harness to pin the crash instant while doomed
// execution continues.
func (fs *FS) Freeze() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.frozen = &frozenMeta{
		files:     fs.durableFiles,
		nextPage:  fs.durableNextPage,
		free:      fs.durableFree,
		unwritten: fs.durableUnwritten,
	}
	fs.dev.Freeze()
}

// Unfreeze discards a captured state so the next PowerFail reverts to
// the latest journal commit as usual.
func (fs *FS) Unfreeze() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.frozen = nil
	fs.dev.Unfreeze()
}

// PowerFail models a crash: unsynced data pages are dropped and the
// metadata reverts to the last journal commit — or to the Freeze point,
// if one was captured.
func (fs *FS) PowerFail() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fr := fs.frozen; fr != nil {
		fs.durableFiles = fr.files
		fs.durableNextPage = fr.nextPage
		fs.durableFree = fr.free
		fs.durableUnwritten = fr.unwritten
		fs.frozen = nil
	}
	fs.dev.PowerFail()
	fs.cache = make(map[int][]byte)
	fs.dirty = make(map[int]string)
	fs.files = make(map[string]*inode, len(fs.durableFiles))
	for name, in := range fs.durableFiles {
		fs.files[name] = in.clone()
	}
	fs.nextDataPage = fs.durableNextPage
	fs.freePages = append([]int(nil), fs.durableFree...)
	fs.unwritten = make(map[int]bool, len(fs.durableUnwritten))
	for pg := range fs.durableUnwritten {
		fs.unwritten[pg] = true
	}
	fs.metaDirty = false
	fs.allocDirty = false
}

// File is an open file handle.
type File struct {
	fs *FS
	in *inode
}

// Name returns the file name.
func (f *File) Name() string { return f.in.name }

// Size returns the current file size in bytes.
func (f *File) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.in.size
}

// ensurePage returns the device page backing file page idx, allocating
// it if needed. Caller holds fs.mu.
func (f *File) ensurePage(idx int) int {
	for len(f.in.extents) <= idx {
		f.in.extents = append(f.in.extents, f.fs.allocPage())
		f.fs.metaDirty = true
		f.fs.allocDirty = true
	}
	return f.in.extents[idx]
}

// pageContent returns a mutable cached copy of the device page. Caller
// holds fs.mu. Unwritten extents read as zeros, never the previous
// owner's device content. A device read error propagates without
// populating the cache, so a retry re-reads the device.
func (f *File) pageContent(devPage int) ([]byte, error) {
	if buf, ok := f.fs.cache[devPage]; ok {
		return buf, nil
	}
	buf := make([]byte, f.fs.dev.PageSize())
	if !f.fs.unwritten[devPage] {
		if err := f.fs.dev.ReadPage(devPage, buf); err != nil {
			return nil, fmt.Errorf("ext4: %s: %w", f.in.name, err)
		}
	}
	f.fs.cache[devPage] = buf
	return buf, nil
}

// WriteAt writes p at byte offset off, extending the file as needed.
// Data is buffered in the page cache until Fsync.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ext4: negative offset %d", off)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ps := int64(f.fs.dev.PageSize())
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		idx := int(pos / ps)
		inPage := int(pos % ps)
		devPage := f.ensurePage(idx)
		buf, err := f.pageContent(devPage)
		if err != nil {
			return n, err
		}
		c := copy(buf[inPage:], p[n:])
		n += c
		f.fs.dirty[devPage] = f.in.tag
	}
	if off+int64(len(p)) > f.in.size {
		f.in.size = off + int64(len(p))
	}
	// Every write dirties the inode (mtime/size), so the next fsync
	// commits a journal transaction; pre-allocation only avoids the
	// block-allocation metadata (bitmap + group descriptor), which is
	// exactly the ~40% journal-traffic saving of §5.4.
	f.fs.metaDirty = true
	return n, nil
}

// ReadAt reads into p from byte offset off. Short reads at EOF return
// io.EOF like os.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ext4: negative offset %d", off)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ps := int64(f.fs.dev.PageSize())
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		if pos >= f.in.size {
			return n, io.EOF
		}
		idx := int(pos / ps)
		inPage := int(pos % ps)
		avail := f.in.size - pos
		if idx >= len(f.in.extents) {
			// Hole (pre-allocated but never written): zero fill.
			c := int64(len(p) - n)
			if c > avail {
				c = avail
			}
			rem := ps - int64(inPage)
			if c > rem {
				c = rem
			}
			for i := int64(0); i < c; i++ {
				p[n+int(i)] = 0
			}
			n += int(c)
			continue
		}
		buf, err := f.pageContent(f.in.extents[idx])
		if err != nil {
			return n, err
		}
		c := len(p) - n
		if int64(c) > avail {
			c = int(avail)
		}
		if c > len(buf)-inPage {
			c = len(buf) - inPage
		}
		copy(p[n:n+c], buf[inPage:])
		n += c
	}
	return n, nil
}

// Preallocate extends the file by pages device pages in one metadata
// transaction (fallocate), so subsequent in-range appends journal only
// the inode — the WALDIO optimization of §5.4.
func (f *File) Preallocate(pages int) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	cur := len(f.in.extents)
	for i := 0; i < pages; i++ {
		f.in.extents = append(f.in.extents, f.fs.allocPage())
	}
	newSize := int64((cur + pages) * f.fs.dev.PageSize())
	if newSize > f.in.size {
		f.in.size = newSize
	}
	f.fs.metaDirty = true
	f.fs.allocDirty = true
}

// AllocatedPages reports how many device pages back the file.
func (f *File) AllocatedPages() int {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return len(f.in.extents)
}

// Truncate resizes the file to size bytes, freeing whole pages beyond
// it.
func (f *File) Truncate(size int64) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ps := int64(f.fs.dev.PageSize())
	keep := int((size + ps - 1) / ps)
	for i := keep; i < len(f.in.extents); i++ {
		pg := f.in.extents[i]
		delete(f.fs.cache, pg)
		delete(f.fs.dirty, pg)
		f.fs.freePages = append(f.fs.freePages, pg)
	}
	if keep < len(f.in.extents) {
		f.in.extents = f.in.extents[:keep]
		f.fs.allocDirty = true
	}
	f.in.size = size
	f.fs.metaDirty = true
}

// Fsync makes the file durable: ordered-mode data write-out followed by
// a journal commit when metadata changed. On error the affected pages
// stay dirty and the metadata stays pending, so a retried Fsync resumes
// where the failed one stopped.
func (f *File) Fsync() error {
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()

	fs.slowFsyncStallLocked()

	// Ordered mode: data pages reach the device before the journal
	// commits the metadata that references them.
	wrote := false
	for _, devPage := range f.in.extents {
		if tag, ok := fs.dirty[devPage]; ok {
			if err := fs.dev.WritePage(devPage, fs.cache[devPage], tag); err != nil {
				return fmt.Errorf("ext4: fsync %s: %w", f.in.name, err)
			}
			delete(fs.dirty, devPage)
			delete(fs.unwritten, devPage) // the extent now holds real data
			wrote = true
		}
	}

	if fs.metaDirty || fs.allocDirty {
		if err := fs.journalCommit(); err != nil {
			return fmt.Errorf("ext4: fsync %s: %w", f.in.name, err)
		}
	} else if wrote {
		if err := fs.dev.Sync(); err != nil {
			return fmt.Errorf("ext4: fsync %s: %w", f.in.name, err)
		}
	}
	return nil
}

// Extents returns the device pages backing the file, in file order.
// Fault-injection harnesses use this to aim media damage at a specific
// file.
func (f *File) Extents() []int {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return append([]int(nil), f.in.extents...)
}

// journalCommit writes the journal transaction for the pending metadata
// update and snapshots durable metadata. Caller holds fs.mu. On error
// the metadata stays pending and the next commit retries it.
func (fs *FS) journalCommit() error {
	metaPages := journalDescriptorPages + journalInodePages
	if fs.allocDirty {
		metaPages += journalAllocPages
	}
	for i := 0; i < metaPages; i++ {
		if err := fs.dev.WritePage(fs.journalPage(), nil, TagJournal); err != nil {
			return err
		}
	}
	if err := fs.dev.Sync(); err != nil {
		return err
	}
	for i := 0; i < journalCommitPages; i++ {
		if err := fs.dev.WritePage(fs.journalPage(), nil, TagJournal); err != nil {
			return err
		}
	}
	if err := fs.dev.Sync(); err != nil {
		return err
	}
	fs.metaDirty = false
	fs.allocDirty = false
	fs.snapshotMeta()
	return nil
}

// journalPage returns the next cyclic page in the journal region.
// Caller holds fs.mu.
func (fs *FS) journalPage() int {
	pg := fs.journalBase + fs.journalHead
	fs.journalHead = (fs.journalHead + 1) % journalRegionPages
	return pg
}
