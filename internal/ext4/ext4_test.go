package ext4

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func newFS(t testing.TB) (*FS, *trace.Recorder, *metrics.Counters, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	rec := trace.New()
	dev := blockdev.New(blockdev.Config{Pages: 8192 + journalRegionPages}, clock, m, rec)
	return New(dev), rec, m, clock
}

func TestCreateOpenRemove(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, err := fs.Create("a.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "a.db" {
		t.Fatalf("Name = %q", f.Name())
	}
	if _, err := fs.Create("a.db", "db"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := fs.Open("a.db"); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := fs.Remove("a.db"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a.db"); err == nil {
		t.Fatal("open of removed file succeeded")
	}
	if err := fs.Remove("a.db"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestOpenOrCreate(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f1, err := fs.OpenOrCreate("x", "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.WriteAt([]byte("hi"), 0); err != nil {
		t.Fatal(err)
	}
	f2, err := fs.OpenOrCreate("x", "db")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := f2.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("hi")) {
		t.Fatalf("second handle read %q", buf)
	}
}

func TestWriteReadAcrossPages(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("big", "db")
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := f.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10100 {
		t.Fatalf("Size = %d, want 10100", f.Size())
	}
	got := make([]byte, 10000)
	if _, err := f.ReadAt(got, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page read mismatch")
	}
}

func TestReadAtEOF(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("s", "db")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("ReadAt = (%d, %v), want (3, EOF)", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if n != 0 || err != io.EOF {
		t.Fatalf("ReadAt past EOF = (%d, %v)", n, err)
	}
}

func TestFsyncMakesDataDurable(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("d", "db")
	f.WriteAt([]byte("durable"), 0)
	f.Fsync()
	fs.PowerFail()
	f2, err := fs.Open("d")
	if err != nil {
		t.Fatalf("file lost after fsync+crash: %v", err)
	}
	buf := make([]byte, 7)
	f2.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte("durable")) {
		t.Fatalf("post-crash content = %q", buf)
	}
}

func TestUnsyncedDataLostOnCrash(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("d", "db")
	f.WriteAt([]byte("first"), 0)
	f.Fsync()
	f.WriteAt([]byte("SECON"), 0)
	fs.PowerFail()
	f2, _ := fs.Open("d")
	buf := make([]byte, 5)
	f2.ReadAt(buf, 0)
	if !bytes.Equal(buf, []byte("first")) {
		t.Fatalf("post-crash content = %q, want %q", buf, "first")
	}
}

func TestUncommittedFileLostOnCrash(t *testing.T) {
	fs, _, _, _ := newFS(t)
	fs.Create("never-synced", "db")
	fs.PowerFail()
	if fs.Exists("never-synced") {
		t.Fatal("uncommitted file survived crash")
	}
}

func TestAppendJournalsAllocation(t *testing.T) {
	fs, rec, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.WriteAt(make([]byte, 4096), 0) // allocates a fresh page
	f.Fsync()
	by := rec.BytesByTag()
	// descriptor + inode + bitmap + group desc + commit = 5 pages = 20 KB,
	// the 16 KB + 4 KB pattern of Figure 8.
	want := (journalDescriptorPages + journalInodePages + journalAllocPages + journalCommitPages) * 4096
	if by[TagJournal] != want {
		t.Fatalf("journal bytes = %d, want %d", by[TagJournal], want)
	}
	if by["db-wal"] != 4096 {
		t.Fatalf("data bytes = %d, want 4096", by["db-wal"])
	}
}

func TestOverwriteJournalsOnlyInode(t *testing.T) {
	fs, rec, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.Preallocate(8)
	f.Fsync()
	rec.Reset()
	// Overwrite within the pre-allocated range: no block allocation, but
	// the inode (mtime) still commits.
	f.WriteAt(make([]byte, 4096), 0)
	f.Fsync()
	by := rec.BytesByTag()
	want := (journalDescriptorPages + journalInodePages + journalCommitPages) * 4096
	if by[TagJournal] != want {
		t.Fatalf("journal bytes after prealloc = %d, want %d", by[TagJournal], want)
	}
}

func TestPreallocationReducesJournalTraffic(t *testing.T) {
	// The §5.4 claim: pre-allocating log pages cuts EXT4 journal traffic
	// substantially (paper: ~40%).
	run := func(prealloc bool) int {
		fs, rec, _, _ := newFS(t)
		f, _ := fs.Create("w", "db-wal")
		if prealloc {
			f.Preallocate(16)
		}
		for i := 0; i < 10; i++ {
			f.WriteAt(make([]byte, 4096), int64(i*4096))
			f.Fsync()
		}
		return rec.BytesByTag()[TagJournal]
	}
	stock, opt := run(false), run(true)
	if opt >= stock {
		t.Fatalf("pre-allocation did not reduce journal traffic: %d vs %d", opt, stock)
	}
	reduction := 1 - float64(opt)/float64(stock)
	if reduction < 0.25 || reduction > 0.55 {
		t.Fatalf("journal reduction = %.0f%%, want roughly 40%%", reduction*100)
	}
}

func TestPreallocateExtendsSizeAndReadsZero(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.Preallocate(2)
	if f.Size() != 8192 {
		t.Fatalf("Size after prealloc = %d, want 8192", f.Size())
	}
	if f.AllocatedPages() != 2 {
		t.Fatalf("AllocatedPages = %d, want 2", f.AllocatedPages())
	}
	buf := make([]byte, 16)
	if _, err := f.ReadAt(buf, 4096); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatalf("preallocated region = %x, want zeros", buf)
	}
}

func TestTruncateFreesPages(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.WriteAt(make([]byte, 8*4096), 0)
	f.Fsync()
	f.Truncate(0)
	f.Fsync()
	if f.Size() != 0 || f.AllocatedPages() != 0 {
		t.Fatalf("after truncate: size=%d pages=%d", f.Size(), f.AllocatedPages())
	}
	// Freed pages are recycled.
	g, _ := fs.Create("other", "db")
	g.WriteAt(make([]byte, 4096), 0)
	g.Fsync()
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != io.EOF {
		t.Fatalf("read from truncated file: %v", err)
	}
}

func TestFsyncWithoutChangesIsCheap(t *testing.T) {
	fs, _, m, _ := newFS(t)
	f, _ := fs.Create("w", "db")
	f.WriteAt([]byte("x"), 0)
	f.Fsync()
	before := m.Count(metrics.Fsync)
	f.Fsync() // nothing dirty
	if got := m.Count(metrics.Fsync) - before; got != 0 {
		t.Fatalf("no-op fsync issued %d device syncs", got)
	}
}

func TestMisalignedFrameTouchesTwoPages(t *testing.T) {
	// Stock SQLite WAL frames are 24+4096 bytes, so a frame write
	// straddles two device pages (§5.4). Verify the device sees both.
	fs, rec, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.WriteAt(make([]byte, 24+4096), 32) // WAL header is 32 bytes in SQLite
	f.Fsync()
	if got := rec.BytesByTag()["db-wal"]; got != 2*4096 {
		t.Fatalf("misaligned frame wrote %d data bytes, want %d", got, 2*4096)
	}
}

func TestPreallocationSurvivesCrashAfterFsync(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.Preallocate(8)
	f.WriteAt([]byte("x"), 0)
	f.Fsync()
	fs.PowerFail()
	f2, err := fs.Open("w")
	if err != nil {
		t.Fatal(err)
	}
	if f2.AllocatedPages() != 8 {
		t.Fatalf("pre-allocation lost: %d pages", f2.AllocatedPages())
	}
	if f2.Size() != 8*4096 {
		t.Fatalf("pre-allocated size lost: %d", f2.Size())
	}
}

func TestPreallocationLostWithoutFsync(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.Fsync() // make the file itself durable, empty
	f.Preallocate(8)
	fs.PowerFail() // allocation metadata never journaled
	f2, err := fs.Open("w")
	if err != nil {
		t.Fatal(err)
	}
	if f2.AllocatedPages() != 0 {
		t.Fatalf("unjournaled pre-allocation survived: %d pages", f2.AllocatedPages())
	}
}

func TestTruncateSurvivesCrashAfterFsync(t *testing.T) {
	fs, _, _, _ := newFS(t)
	f, _ := fs.Create("w", "db-wal")
	f.WriteAt(make([]byte, 5*4096), 0)
	f.Fsync()
	f.Truncate(4096)
	f.Fsync()
	fs.PowerFail()
	f2, _ := fs.Open("w")
	if f2.Size() != 4096 {
		t.Fatalf("truncate lost across crash: size %d", f2.Size())
	}
}

func TestFreedPagesNotSharedAcrossFiles(t *testing.T) {
	// Pages freed by one file and reused by another must not leak stale
	// content: allocation hands out unwritten extents that read as
	// zeros even though the device page still holds the old bytes.
	fs, _, _, _ := newFS(t)
	a, _ := fs.Create("a", "db")
	a.WriteAt(bytes.Repeat([]byte{0xAA}, 4096), 0)
	a.Fsync()
	a.Truncate(0)
	a.Fsync()
	b, _ := fs.Create("b", "db")
	// Sparse write: bytes 5..4000 of the recycled page are never
	// written by b, yet become readable once the size covers them.
	b.WriteAt([]byte("fresh"), 0)
	b.WriteAt([]byte("tail"), 4000)
	buf := make([]byte, 64)
	if _, err := b.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatalf("recycled page leaked stale content: %x", buf[:8])
	}
	// And after a crash, the durable view also reads zeros there.
	b.Fsync()
	fs.PowerFail()
	b2, _ := fs.Open("b")
	if _, err := b2.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatalf("stale content resurfaced after crash: %x", buf[:8])
	}
}

// Property: the file behaves like an in-memory byte slice under random
// WriteAt/ReadAt sequences.
func TestPropertyFileMatchesByteSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs, _, _, _ := newFS(t)
		file, _ := fs.Create("m", "db")
		model := make([]byte, 0)
		for op := 0; op < 60; op++ {
			off := rng.Intn(20000)
			n := 1 + rng.Intn(3000)
			p := make([]byte, n)
			rng.Read(p)
			file.WriteAt(p, int64(off))
			if off+n > len(model) {
				model = append(model, make([]byte, off+n-len(model))...)
			}
			copy(model[off:], p)
			if rng.Intn(4) == 0 {
				file.Fsync()
			}
		}
		if file.Size() != int64(len(model)) {
			return false
		}
		got := make([]byte, len(model))
		file.ReadAt(got, 0)
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
