package sql

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/db"
)

// catalogTable stores one schema blob per user table.
const catalogTable = "__schema"

// Result is the outcome of one statement.
type Result struct {
	// Columns and Rows are set for SELECT.
	Columns []string
	Rows    [][]Value
	// RowsAffected is set for INSERT/UPDATE/DELETE.
	RowsAffected int
}

// Errors.
var (
	ErrNoTable    = errors.New("sql: no such table")
	ErrConstraint = errors.New("sql: UNIQUE constraint failed")
	ErrTxnState   = errors.New("sql: invalid transaction state")
)

// Conn is one SQL session over the embedded database. Like SQLite, one
// write transaction may be open at a time.
type Conn struct {
	d       *db.DB
	tx      *db.Tx
	schemas map[string]*Schema
}

// Open attaches a SQL session, creating the schema catalog on first
// use.
func Open(d *db.DB) (*Conn, error) {
	if !d.HasTable(catalogTable) {
		if err := d.CreateTable(catalogTable); err != nil {
			return nil, err
		}
	}
	return &Conn{d: d, schemas: make(map[string]*Schema)}, nil
}

// InTransaction reports whether an explicit transaction is open.
func (c *Conn) InTransaction() bool { return c.tx != nil }

// Exec parses and executes one statement.
func (c *Conn) Exec(query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case CreateTableStmt:
		return c.execCreate(st)
	case DropTableStmt:
		return c.execDrop(st)
	case InsertStmt:
		return c.execInsert(st)
	case SelectStmt:
		return c.execSelect(st)
	case UpdateStmt:
		return c.execUpdate(st)
	case DeleteStmt:
		return c.execDelete(st)
	case BeginStmt:
		if c.tx != nil {
			return nil, fmt.Errorf("%w: transaction already open", ErrTxnState)
		}
		tx, err := c.d.Begin()
		if err != nil {
			return nil, err
		}
		c.tx = tx
		return &Result{}, nil
	case CommitStmt:
		if c.tx == nil {
			return nil, fmt.Errorf("%w: no open transaction", ErrTxnState)
		}
		err := c.tx.Commit()
		c.tx = nil
		return &Result{}, err
	case RollbackStmt:
		if c.tx == nil {
			return nil, fmt.Errorf("%w: no open transaction", ErrTxnState)
		}
		c.tx.Rollback()
		c.tx = nil
		return &Result{}, nil
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
}

// withTx runs fn in the open transaction, or an auto-commit one.
func (c *Conn) withTx(fn func(tx *db.Tx) error) error {
	if c.tx != nil {
		return fn(c.tx)
	}
	tx, err := c.d.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// schema resolves a table's schema through the cache.
func (c *Conn) schema(table string) (*Schema, error) {
	if s, ok := c.schemas[table]; ok {
		return s, nil
	}
	var blob []byte
	var found bool
	read := func() error {
		var err error
		if c.tx != nil {
			blob, found, err = c.tx.Get(catalogTable, []byte(table))
		} else {
			blob, found, err = c.d.Get(catalogTable, []byte(table))
		}
		return err
	}
	if err := read(); err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	s, err := decodeSchema(table, blob)
	if err != nil {
		return nil, err
	}
	c.schemas[table] = s
	return s, nil
}

func (c *Conn) execCreate(st CreateTableStmt) (*Result, error) {
	if c.tx != nil {
		return nil, fmt.Errorf("%w: CREATE TABLE inside a transaction is not supported", ErrTxnState)
	}
	if st.Schema.Table == catalogTable {
		return nil, fmt.Errorf("sql: reserved table name %q", catalogTable)
	}
	if c.d.HasTable(st.Schema.Table) {
		return nil, fmt.Errorf("sql: table %q already exists", st.Schema.Table)
	}
	if err := c.d.CreateTable(st.Schema.Table); err != nil {
		return nil, err
	}
	s := st.Schema
	err := c.withTx(func(tx *db.Tx) error {
		return tx.Insert(catalogTable, []byte(s.Table), encodeSchema(&s))
	})
	if err != nil {
		return nil, err
	}
	c.schemas[s.Table] = &s
	return &Result{}, nil
}

func (c *Conn) execDrop(st DropTableStmt) (*Result, error) {
	if c.tx != nil {
		return nil, fmt.Errorf("%w: DROP TABLE inside a transaction is not supported", ErrTxnState)
	}
	if _, err := c.schema(st.Table); err != nil {
		return nil, err
	}
	if err := c.d.DropTable(st.Table); err != nil {
		return nil, err
	}
	err := c.withTx(func(tx *db.Tx) error {
		_, err := tx.Delete(catalogTable, []byte(st.Table))
		return err
	})
	if err != nil {
		return nil, err
	}
	delete(c.schemas, st.Table)
	return &Result{}, nil
}

func (c *Conn) execInsert(st InsertStmt) (*Result, error) {
	s, err := c.schema(st.Table)
	if err != nil {
		return nil, err
	}
	// Map the statement's column order onto schema positions.
	order := make([]int, 0, len(s.Columns))
	if st.Columns == nil {
		for i := range s.Columns {
			order = append(order, i)
		}
	} else {
		seen := map[int]bool{}
		for _, name := range st.Columns {
			i := s.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("sql: table %q has no column %q", st.Table, name)
			}
			if seen[i] {
				return nil, fmt.Errorf("sql: duplicate column %q", name)
			}
			seen[i] = true
			order = append(order, i)
		}
		if len(order) != len(s.Columns) {
			return nil, fmt.Errorf("sql: INSERT must provide every column (no NULLs in this subset)")
		}
	}
	affected := 0
	err = c.withTx(func(tx *db.Tx) error {
		for _, vals := range st.Rows {
			if len(vals) != len(order) {
				return fmt.Errorf("sql: %d values for %d columns", len(vals), len(order))
			}
			row := make([]Value, len(s.Columns))
			for j, v := range vals {
				i := order[j]
				if v.Type != s.Columns[i].Type {
					return fmt.Errorf("sql: column %q expects %s, got %s",
						s.Columns[i].Name, s.Columns[i].Type, v.Type)
				}
				row[i] = v
			}
			key := encodeKey(row[s.PKIndex])
			if _, exists, err := tx.Get(st.Table, key); err != nil {
				return err
			} else if exists {
				return fmt.Errorf("%w: %s.%s", ErrConstraint, st.Table, s.Columns[s.PKIndex].Name)
			}
			if err := tx.Insert(st.Table, key, encodeRow(s, row)); err != nil {
				return err
			}
			affected++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

// planRange splits a WHERE conjunction into a primary-key scan range
// plus residual predicates evaluated per row.
func planRange(s *Schema, preds []Pred) (start, end []byte, residual []Pred, err error) {
	pkName := s.Columns[s.PKIndex].Name
	for _, p := range preds {
		i := s.ColumnIndex(p.Column)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("sql: table %q has no column %q", s.Table, p.Column)
		}
		if p.Value.Type != s.Columns[i].Type {
			return nil, nil, nil, fmt.Errorf("sql: column %q expects %s, got %s",
				p.Column, s.Columns[i].Type, p.Value.Type)
		}
		if p.Column != pkName || p.Op == "!=" {
			residual = append(residual, p)
			continue
		}
		k := encodeKey(p.Value)
		switch p.Op {
		case "=":
			start = maxKey(start, k)
			end = minKey(end, next(k))
		case ">":
			start = maxKey(start, next(k))
		case ">=":
			start = maxKey(start, k)
		case "<":
			end = minKey(end, k)
		case "<=":
			end = minKey(end, next(k))
		}
	}
	return start, end, residual, nil
}

// next returns the immediate bytewise successor of k.
func next(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	return out
}

func maxKey(a, b []byte) []byte {
	if a == nil || bytes.Compare(b, a) > 0 {
		return b
	}
	return a
}

func minKey(a, b []byte) []byte {
	if a == nil || bytes.Compare(b, a) < 0 {
		return b
	}
	return a
}

// scanMatches walks the planned range and yields decoded rows passing
// the residual predicates.
func (c *Conn) scanMatches(s *Schema, preds []Pred, fn func(key []byte, row []Value) bool) error {
	start, end, residual, err := planRange(s, preds)
	if err != nil {
		return err
	}
	var inner error
	// Route through the open transaction when there is one: it sees its
	// own uncommitted writes, and in Concurrent mode a connection-level
	// scan would wait on the writer slot the transaction itself holds.
	scan := c.d.ScanRange
	if c.tx != nil {
		scan = c.tx.ScanRange
	}
	err = scan(s.Table, start, end, func(k, v []byte) bool {
		row, derr := decodeRow(s, k, v)
		if derr != nil {
			inner = derr
			return false
		}
		for _, p := range residual {
			if !p.Matches(row[s.ColumnIndex(p.Column)]) {
				return true
			}
		}
		kc := make([]byte, len(k))
		copy(kc, k)
		return fn(kc, row)
	})
	if inner != nil {
		return inner
	}
	return err
}

func (c *Conn) execSelect(st SelectStmt) (*Result, error) {
	s, err := c.schema(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Count {
		n := 0
		err := c.scanMatches(s, st.Where, func(_ []byte, _ []Value) bool {
			n++
			return st.Limit < 0 || n < st.Limit
		})
		if err != nil {
			return nil, err
		}
		return &Result{Columns: []string{"count(*)"}, Rows: [][]Value{{IntValue(int64(n))}}}, nil
	}
	proj := make([]int, 0, len(s.Columns))
	res := &Result{}
	if st.Columns == nil {
		for i, col := range s.Columns {
			proj = append(proj, i)
			res.Columns = append(res.Columns, col.Name)
		}
	} else {
		for _, name := range st.Columns {
			i := s.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("sql: table %q has no column %q", st.Table, name)
			}
			proj = append(proj, i)
			res.Columns = append(res.Columns, name)
		}
	}
	err = c.scanMatches(s, st.Where, func(_ []byte, row []Value) bool {
		out := make([]Value, len(proj))
		for j, i := range proj {
			out[j] = row[i]
		}
		res.Rows = append(res.Rows, out)
		return st.Limit < 0 || len(res.Rows) < st.Limit
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (c *Conn) execUpdate(st UpdateStmt) (*Result, error) {
	s, err := c.schema(st.Table)
	if err != nil {
		return nil, err
	}
	for name, v := range st.Set {
		i := s.ColumnIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("sql: table %q has no column %q", st.Table, name)
		}
		if v.Type != s.Columns[i].Type {
			return nil, fmt.Errorf("sql: column %q expects %s, got %s", name, s.Columns[i].Type, v.Type)
		}
	}
	type match struct {
		key []byte
		row []Value
	}
	var matches []match
	if err := c.scanMatches(s, st.Where, func(k []byte, row []Value) bool {
		matches = append(matches, match{k, row})
		return true
	}); err != nil {
		return nil, err
	}
	err = c.withTx(func(tx *db.Tx) error {
		for _, m := range matches {
			row := m.row
			for name, v := range st.Set {
				row[s.ColumnIndex(name)] = v
			}
			newKey := encodeKey(row[s.PKIndex])
			if !bytes.Equal(newKey, m.key) {
				// Primary key changed: move the record.
				if _, exists, err := tx.Get(st.Table, newKey); err != nil {
					return err
				} else if exists {
					return fmt.Errorf("%w: %s.%s", ErrConstraint, st.Table, s.Columns[s.PKIndex].Name)
				}
				if _, err := tx.Delete(st.Table, m.key); err != nil {
					return err
				}
			}
			if err := tx.Insert(st.Table, newKey, encodeRow(s, row)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(matches)}, nil
}

func (c *Conn) execDelete(st DeleteStmt) (*Result, error) {
	s, err := c.schema(st.Table)
	if err != nil {
		return nil, err
	}
	var keys [][]byte
	if err := c.scanMatches(s, st.Where, func(k []byte, _ []Value) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		return nil, err
	}
	err = c.withTx(func(tx *db.Tx) error {
		for _, k := range keys {
			if _, err := tx.Delete(st.Table, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(keys)}, nil
}
