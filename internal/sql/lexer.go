package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , * = != < <= > >=
)

type token struct {
	kind tokKind
	text string // identifiers lower-cased; strings unquoted
	pos  int
}

// lex tokenizes a statement. SQL keywords are returned as tokIdent and
// matched case-insensitively by the parser.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c == '-' && i+1 < len(src) && isDigit(src[i+1]), isDigit(c):
			j := i + 1
			for j < len(src) && isDigit(src[j]) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(src[i:j]), i})
			i = j
		case strings.ContainsRune("(),*;", rune(c)):
			if c == ';' { // statement terminator: ignore
				i++
				continue
			}
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c == '=' || c == '<' || c == '>' || c == '!':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("sql: stray '!' at %d", i)
			}
			toks = append(toks, token{tokPunct, op, i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
