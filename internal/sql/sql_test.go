package sql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

func newConn(t testing.TB) (*Conn, *platform.Platform) {
	t.Helper()
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Open(plat, "sql.db", db.Options{
		Journal: db.JournalNVWAL,
		NVWAL:   core.VariantUHLSDiff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	return c, plat
}

func mustExec(t testing.TB, c *Conn, q string) *Result {
	t.Helper()
	r, err := c.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return r
}

func TestCreateInsertSelect(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)")
	r := mustExec(t, c, "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25)")
	if r.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", r.RowsAffected)
	}
	r = mustExec(t, c, "SELECT * FROM users")
	if len(r.Rows) != 2 || r.Columns[1] != "name" {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].Str != "alice" || r.Rows[1][2].Int != 25 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestSelectProjectionAndWhere(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)")
	mustExec(t, c, "INSERT INTO t VALUES (1,'a',10),(2,'b',20),(3,'c',30),(4,'d',40)")
	r := mustExec(t, c, "SELECT name FROM t WHERE age >= 20 AND age < 40")
	if len(r.Rows) != 2 || r.Rows[0][0].Str != "b" || r.Rows[1][0].Str != "c" {
		t.Fatalf("rows = %v", r.Rows)
	}
	if len(r.Columns) != 1 || r.Columns[0] != "name" {
		t.Fatalf("columns = %v", r.Columns)
	}
}

func TestPrimaryKeyRangeScan(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	for i := -5; i <= 5; i++ {
		mustExec(t, c, fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i, i))
	}
	// Negative integers order correctly under the key encoding.
	r := mustExec(t, c, "SELECT id FROM t WHERE id >= -3 AND id <= 2")
	if len(r.Rows) != 6 || r.Rows[0][0].Int != -3 || r.Rows[5][0].Int != 2 {
		t.Fatalf("range = %v", r.Rows)
	}
	r = mustExec(t, c, "SELECT v FROM t WHERE id = 0")
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "v0" {
		t.Fatalf("point = %v", r.Rows)
	}
	r = mustExec(t, c, "SELECT * FROM t WHERE id > 100")
	if len(r.Rows) != 0 {
		t.Fatalf("empty range = %v", r.Rows)
	}
}

func TestTextPrimaryKey(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE kv (k TEXT PRIMARY KEY, v INTEGER)")
	mustExec(t, c, "INSERT INTO kv VALUES ('banana', 2), ('apple', 1), ('cherry', 3)")
	r := mustExec(t, c, "SELECT k FROM kv")
	if r.Rows[0][0].Str != "apple" || r.Rows[2][0].Str != "cherry" {
		t.Fatalf("text PK order = %v", r.Rows)
	}
	r = mustExec(t, c, "SELECT v FROM kv WHERE k >= 'b'")
	if len(r.Rows) != 2 {
		t.Fatalf("text range = %v", r.Rows)
	}
}

func TestInsertColumnSubsetOrder(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c INTEGER)")
	mustExec(t, c, "INSERT INTO t (c, a, b) VALUES (30, 1, 'x')")
	r := mustExec(t, c, "SELECT a, b, c FROM t")
	if r.Rows[0][0].Int != 1 || r.Rows[0][1].Str != "x" || r.Rows[0][2].Int != 30 {
		t.Fatalf("reordered insert = %v", r.Rows)
	}
	if _, err := c.Exec("INSERT INTO t (a, b) VALUES (2, 'y')"); err == nil {
		t.Fatal("partial insert accepted (no NULL support)")
	}
}

func TestUniqueConstraint(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, c, "INSERT INTO t VALUES (1, 'a')")
	if _, err := c.Exec("INSERT INTO t VALUES (1, 'b')"); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	// The failed auto-commit transaction must not leave partial state.
	if _, err := c.Exec("INSERT INTO t VALUES (2, 'c'), (1, 'dup')"); err == nil {
		t.Fatal("batch with duplicate accepted")
	}
	r := mustExec(t, c, "SELECT * FROM t")
	if len(r.Rows) != 1 {
		t.Fatalf("failed batch left %d rows", len(r.Rows))
	}
}

func TestUpdate(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)")
	mustExec(t, c, "INSERT INTO t VALUES (1,'a',10),(2,'b',20),(3,'c',30)")
	r := mustExec(t, c, "UPDATE t SET age = 99 WHERE id >= 2")
	if r.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", r.RowsAffected)
	}
	res := mustExec(t, c, "SELECT age FROM t WHERE id = 3")
	if res.Rows[0][0].Int != 99 {
		t.Fatalf("update missed: %v", res.Rows)
	}
	// PK-changing update moves the row.
	mustExec(t, c, "UPDATE t SET id = 10 WHERE id = 1")
	if r := mustExec(t, c, "SELECT * FROM t WHERE id = 1"); len(r.Rows) != 0 {
		t.Fatal("old PK still present")
	}
	if r := mustExec(t, c, "SELECT name FROM t WHERE id = 10"); len(r.Rows) != 1 || r.Rows[0][0].Str != "a" {
		t.Fatal("moved row lost")
	}
	// PK collision on update is rejected.
	if _, err := c.Exec("UPDATE t SET id = 2 WHERE id = 3"); err == nil {
		t.Fatal("PK-colliding update accepted")
	}
}

func TestDelete(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, c, "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c')")
	r := mustExec(t, c, "DELETE FROM t WHERE id != 2")
	if r.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", r.RowsAffected)
	}
	res := mustExec(t, c, "SELECT * FROM t")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Fatalf("remaining = %v", res.Rows)
	}
}

func TestLimit(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 20; i++ {
		mustExec(t, c, fmt.Sprintf("INSERT INTO t VALUES (%d, 'x')", i))
	}
	r := mustExec(t, c, "SELECT id FROM t LIMIT 5")
	if len(r.Rows) != 5 || r.Rows[4][0].Int != 4 {
		t.Fatalf("limit = %v", r.Rows)
	}
}

func TestExplicitTransactions(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, c, "BEGIN")
	mustExec(t, c, "INSERT INTO t VALUES (1, 'inside')")
	// Visible within the transaction.
	if r := mustExec(t, c, "SELECT * FROM t"); len(r.Rows) != 1 {
		t.Fatal("own write invisible in txn")
	}
	mustExec(t, c, "ROLLBACK")
	if r := mustExec(t, c, "SELECT * FROM t"); len(r.Rows) != 0 {
		t.Fatal("rolled-back row visible")
	}
	mustExec(t, c, "BEGIN")
	mustExec(t, c, "INSERT INTO t VALUES (2, 'kept')")
	mustExec(t, c, "COMMIT")
	if r := mustExec(t, c, "SELECT * FROM t"); len(r.Rows) != 1 {
		t.Fatal("committed row lost")
	}
	if _, err := c.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT without BEGIN accepted")
	}
	if _, err := c.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("BEGIN"); err == nil {
		t.Fatal("nested BEGIN accepted")
	}
	mustExec(t, c, "ROLLBACK")
}

func TestErrors(t *testing.T) {
	c, _ := newConn(t)
	cases := []string{
		"SELECT * FROM missing",
		"CREATE TABLE __schema (a INTEGER)",
		"INSERT INTO missing VALUES (1)",
		"SELECT nope FROM missing",
		"FROB THE KNOB",
		"SELECT * FROM",
		"CREATE TABLE t (a WIBBLE)",
		"INSERT INTO t VALUES (1",
	}
	for _, q := range cases {
		if _, err := c.Exec(q); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
	mustExec(t, c, "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)")
	typeCases := []string{
		"INSERT INTO t VALUES ('text-for-int', 'x')",
		"SELECT * FROM t WHERE a = 'text'",
		"UPDATE t SET b = 5",
		"SELECT * FROM t WHERE nosuch = 1",
	}
	for _, q := range typeCases {
		if _, err := c.Exec(q); err == nil {
			t.Errorf("%q: expected type/column error", q)
		}
	}
	if _, err := c.Exec("CREATE TABLE t (a INTEGER)"); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestStringEscapes(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, c, "INSERT INTO t VALUES (1, 'it''s quoted')")
	r := mustExec(t, c, "SELECT v FROM t WHERE id = 1")
	if r.Rows[0][0].Str != "it's quoted" {
		t.Fatalf("escaped string = %q", r.Rows[0][0].Str)
	}
}

func TestSchemaPersistsAcrossReopen(t *testing.T) {
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	opts := db.Options{Journal: db.JournalNVWAL, NVWAL: core.VariantUHLSDiff()}
	d, err := db.Open(plat, "p.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, "CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
	mustExec(t, c, "INSERT INTO notes VALUES (7, 'survives')")

	plat.PowerFail(memsim.FailDropAll, 3)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	d2, err := db.Open(plat, "p.db", opts)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(d2)
	if err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, c2, "SELECT body FROM notes WHERE id = 7")
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "survives" {
		t.Fatalf("post-crash SQL = %v", r.Rows)
	}
}

// Property: SQL execution over the engine matches an in-memory model
// under random insert/update/delete/select sequences.
func TestPropertySQLMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := newConn(t)
		if _, err := c.Exec("CREATE TABLE m (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
			return false
		}
		model := map[int64]string{}
		for op := 0; op < 150; op++ {
			id := int64(rng.Intn(40))
			switch rng.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d", op)
				_, err := c.Exec(fmt.Sprintf("INSERT INTO m VALUES (%d, '%s')", id, v))
				if _, exists := model[id]; exists {
					if err == nil {
						return false // duplicate must fail
					}
				} else {
					if err != nil {
						return false
					}
					model[id] = v
				}
			case 2:
				v := fmt.Sprintf("u%d", op)
				r, err := c.Exec(fmt.Sprintf("UPDATE m SET v = '%s' WHERE id = %d", v, id))
				if err != nil {
					return false
				}
				if _, exists := model[id]; exists {
					if r.RowsAffected != 1 {
						return false
					}
					model[id] = v
				} else if r.RowsAffected != 0 {
					return false
				}
			case 3:
				r, err := c.Exec(fmt.Sprintf("DELETE FROM m WHERE id = %d", id))
				if err != nil {
					return false
				}
				_, exists := model[id]
				if (r.RowsAffected == 1) != exists {
					return false
				}
				delete(model, id)
			}
		}
		r, err := c.Exec("SELECT id, v FROM m")
		if err != nil || len(r.Rows) != len(model) {
			return false
		}
		prev := int64(-1)
		for _, row := range r.Rows {
			id, v := row[0].Int, row[1].Str
			if id <= prev || model[id] != v {
				return false
			}
			prev = id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCountStar(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, age INTEGER)")
	mustExec(t, c, "INSERT INTO t VALUES (1,10),(2,20),(3,30)")
	r := mustExec(t, c, "SELECT COUNT(*) FROM t")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 3 {
		t.Fatalf("count = %v", r.Rows)
	}
	r = mustExec(t, c, "SELECT COUNT(*) FROM t WHERE age > 10")
	if r.Rows[0][0].Int != 2 {
		t.Fatalf("filtered count = %v", r.Rows)
	}
	// A column genuinely named count still selects.
	mustExec(t, c, "CREATE TABLE c (count INTEGER PRIMARY KEY)")
	mustExec(t, c, "INSERT INTO c VALUES (9)")
	r = mustExec(t, c, "SELECT count FROM c")
	if r.Rows[0][0].Int != 9 {
		t.Fatalf("count column = %v", r.Rows)
	}
}

func TestDropTable(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, c, "INSERT INTO t VALUES (1,'x')")
	mustExec(t, c, "DROP TABLE t")
	if _, err := c.Exec("SELECT * FROM t"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	// The name can be reused with a different schema.
	mustExec(t, c, "CREATE TABLE t (name TEXT PRIMARY KEY, n INTEGER)")
	mustExec(t, c, "INSERT INTO t VALUES ('a', 1)")
	r := mustExec(t, c, "SELECT n FROM t WHERE name = 'a'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 1 {
		t.Fatalf("recreated table = %v", r.Rows)
	}
	if _, err := c.Exec("DROP TABLE missing"); err == nil {
		t.Fatal("dropping a missing table succeeded")
	}
}

func TestDropTableRecyclesPages(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "CREATE TABLE big (id INTEGER PRIMARY KEY, v TEXT)")
	// Fill enough to split across several pages.
	for i := 0; i < 200; i++ {
		mustExec(t, c, fmt.Sprintf("INSERT INTO big VALUES (%d, '%s')", i, strings.Repeat("x", 200)))
	}
	mustExec(t, c, "DROP TABLE big")
	// The freed pages feed subsequent allocations; a new table fits
	// without growing the database (observable indirectly: creating and
	// filling works).
	mustExec(t, c, "CREATE TABLE again (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 50; i++ {
		mustExec(t, c, fmt.Sprintf("INSERT INTO again VALUES (%d, 'y')", i))
	}
	r := mustExec(t, c, "SELECT COUNT(*) FROM again")
	if r.Rows[0][0].Int != 50 {
		t.Fatalf("count = %v", r.Rows)
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	c, _ := newConn(t)
	mustExec(t, c, "create table T (Id integer primary key, V text)")
	mustExec(t, c, "insert into t values (1, 'x')")
	r := mustExec(t, c, "SeLeCt v FrOm T wHeRe iD = 1")
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "x" {
		t.Fatalf("case-insensitive query failed: %v", r.Rows)
	}
}

func TestResultStringRendering(t *testing.T) {
	if IntValue(-5).String() != "-5" || TextValue("hi").String() != "hi" {
		t.Fatal("Value.String broken")
	}
	if !strings.Contains(TypeInteger.String(), "INTEGER") {
		t.Fatal("Type.String broken")
	}
}

// TestExplicitTxnOnConcurrentDB runs statements inside BEGIN/COMMIT on
// a Concurrent-mode engine. SELECT while the transaction holds the
// writer slot must route scans through the transaction (db.Tx methods)
// — going through DB.ScanRange would block on the slot the transaction
// itself holds.
func TestExplicitTxnOnConcurrentDB(t *testing.T) {
	plat, err := platform.NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Open(plat, "csql.db", db.Options{
		Journal:     db.JournalNVWAL,
		NVWAL:       core.VariantUHLSDiff(),
		Concurrent:  true,
		GroupCommit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(d)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
	mustExec(t, c, "BEGIN")
	mustExec(t, c, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
	r := mustExec(t, c, "SELECT name FROM t WHERE id = 2") // would deadlock pre-fix
	if len(r.Rows) != 1 || r.Rows[0][0].Str != "b" {
		t.Fatalf("rows = %v", r.Rows)
	}
	mustExec(t, c, "UPDATE t SET name = 'bee' WHERE id = 2")
	r = mustExec(t, c, "SELECT name FROM t")
	if len(r.Rows) != 2 || r.Rows[1][0].Str != "bee" {
		t.Fatalf("rows = %v", r.Rows)
	}
	mustExec(t, c, "COMMIT")
	r = mustExec(t, c, "SELECT COUNT(*) FROM t")
	if r.Rows[0][0].Int != 2 {
		t.Fatalf("count = %v", r.Rows)
	}
}
