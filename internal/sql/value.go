// Package sql is a minimal SQL front-end over the embedded database —
// the role SQLite's query layer plays above its B-tree. It supports the
// statements the paper's workloads consist of:
//
//	CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, ...)
//	INSERT INTO t [(cols)] VALUES (v, ...) [, (...)]
//	SELECT cols|* FROM t [WHERE conj] [LIMIT n]
//	UPDATE t SET col = v [, ...] [WHERE conj]
//	DELETE FROM t [WHERE conj]
//	BEGIN / COMMIT / ROLLBACK
//
// WHERE clauses are conjunctions of <column> <op> <literal> comparisons;
// predicates on the primary key become B-tree range scans, everything
// else filters a full scan. Rows are stored with an order-preserving
// primary-key encoding so ranges and ORDER-BY-PK come straight off the
// tree.
package sql

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// Type is a column type.
type Type int

const (
	// TypeInteger is a 64-bit signed integer.
	TypeInteger Type = iota
	// TypeText is a byte string.
	TypeText
)

func (t Type) String() string {
	if t == TypeText {
		return "TEXT"
	}
	return "INTEGER"
}

// Value is one SQL value.
type Value struct {
	Type Type
	Int  int64
	Str  string
}

// IntValue builds an INTEGER value.
func IntValue(v int64) Value { return Value{Type: TypeInteger, Int: v} }

// TextValue builds a TEXT value.
func TextValue(s string) Value { return Value{Type: TypeText, Str: s} }

// String renders the value as SQL output.
func (v Value) String() string {
	if v.Type == TypeText {
		return v.Str
	}
	return strconv.FormatInt(v.Int, 10)
}

// Compare orders two values of the same type: -1, 0, +1.
func (v Value) Compare(o Value) int {
	if v.Type == TypeInteger {
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	}
	switch {
	case v.Str < o.Str:
		return -1
	case v.Str > o.Str:
		return 1
	}
	return 0
}

// Column is one column definition.
type Column struct {
	Name string
	Type Type
}

// Schema describes a table: its columns and which one is the primary
// key (always exactly one; it defaults to the first column).
type Schema struct {
	Table   string
	Columns []Column
	PKIndex int
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// encodeKey produces the order-preserving B-tree key for a primary-key
// value: integers as sign-flipped big-endian (so byte order equals
// numeric order), text as its raw bytes.
func encodeKey(v Value) []byte {
	if v.Type == TypeInteger {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.Int)^(1<<63))
		return b[:]
	}
	return []byte(v.Str)
}

// decodeKey inverts encodeKey for the schema's primary-key type.
func decodeKey(t Type, key []byte) (Value, error) {
	if t == TypeInteger {
		if len(key) != 8 {
			return Value{}, fmt.Errorf("sql: malformed integer key of %d bytes", len(key))
		}
		return IntValue(int64(binary.BigEndian.Uint64(key) ^ (1 << 63))), nil
	}
	return TextValue(string(key)), nil
}

// Row payload encoding: for each non-PK column in schema order, a type
// tag byte, then for integers 8 bytes little-endian, for text a uvarint
// length + bytes.

// encodeRow serializes the non-PK columns of row (full, schema order).
func encodeRow(s *Schema, row []Value) []byte {
	var out []byte
	var scratch [binary.MaxVarintLen64]byte
	for i, v := range row {
		if i == s.PKIndex {
			continue
		}
		out = append(out, byte(v.Type))
		if v.Type == TypeInteger {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.Int))
			out = append(out, b[:]...)
		} else {
			n := binary.PutUvarint(scratch[:], uint64(len(v.Str)))
			out = append(out, scratch[:n]...)
			out = append(out, v.Str...)
		}
	}
	return out
}

// errCorruptRow reports an undecodable stored row.
var errCorruptRow = errors.New("sql: corrupt row payload")

// decodeRow reassembles the full row (schema order) from a stored key
// and payload.
func decodeRow(s *Schema, key, payload []byte) ([]Value, error) {
	pk, err := decodeKey(s.Columns[s.PKIndex].Type, key)
	if err != nil {
		return nil, err
	}
	row := make([]Value, len(s.Columns))
	row[s.PKIndex] = pk
	pos := 0
	for i := range s.Columns {
		if i == s.PKIndex {
			continue
		}
		if pos >= len(payload) {
			return nil, errCorruptRow
		}
		t := Type(payload[pos])
		pos++
		switch t {
		case TypeInteger:
			if pos+8 > len(payload) {
				return nil, errCorruptRow
			}
			row[i] = IntValue(int64(binary.LittleEndian.Uint64(payload[pos:])))
			pos += 8
		case TypeText:
			n, used := binary.Uvarint(payload[pos:])
			// Bound n before converting: a huge varint would overflow
			// int and slip past the range check as a negative bound.
			if used <= 0 || n > uint64(len(payload)) || pos+used+int(n) > len(payload) {
				return nil, errCorruptRow
			}
			pos += used
			row[i] = TextValue(string(payload[pos : pos+int(n)]))
			pos += int(n)
		default:
			return nil, errCorruptRow
		}
	}
	return row, nil
}

// encodeSchema serializes a schema for the catalog table.
func encodeSchema(s *Schema) []byte {
	var out []byte
	out = append(out, byte(s.PKIndex))
	for _, c := range s.Columns {
		out = append(out, byte(c.Type), byte(len(c.Name)))
		out = append(out, c.Name...)
	}
	return out
}

// decodeSchema inverts encodeSchema.
func decodeSchema(table string, b []byte) (*Schema, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("sql: corrupt schema for %q", table)
	}
	s := &Schema{Table: table, PKIndex: int(b[0])}
	pos := 1
	for pos < len(b) {
		if pos+2 > len(b) {
			return nil, fmt.Errorf("sql: corrupt schema for %q", table)
		}
		t := Type(b[pos])
		n := int(b[pos+1])
		pos += 2
		if pos+n > len(b) {
			return nil, fmt.Errorf("sql: corrupt schema for %q", table)
		}
		s.Columns = append(s.Columns, Column{Name: string(b[pos : pos+n]), Type: t})
		pos += n
	}
	if s.PKIndex < 0 || s.PKIndex >= len(s.Columns) {
		return nil, fmt.Errorf("sql: corrupt schema for %q", table)
	}
	return s, nil
}
