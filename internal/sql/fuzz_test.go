package sql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the SQL parser never panics, whatever the input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, '')",
		"SELECT a, b FROM t WHERE a >= 10 AND b != 'q' LIMIT 3",
		"SELECT COUNT(*) FROM t",
		"UPDATE t SET b = 'y', a = -9 WHERE a = 1",
		"DELETE FROM t WHERE b <= 'zz'",
		"DROP TABLE t", "BEGIN", "COMMIT", "ROLLBACK",
		"select * from t where a = 'it''s'",
		"((((", "'", "1e9", "INSERT INTO", "CREATE TABLE t (",
		"SELECT FROM WHERE", "\x00\xff", strings.Repeat("(", 500),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must return cleanly: either a statement or an error.
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatal("nil statement with nil error")
		}
	})
}

// FuzzDecodeRow asserts stored-row decoding never panics on corrupt
// payloads (recovery can hand it arbitrary bytes).
func FuzzDecodeRow(f *testing.F) {
	s := &Schema{Table: "t", PKIndex: 0, Columns: []Column{
		{Name: "id", Type: TypeInteger},
		{Name: "a", Type: TypeText},
		{Name: "b", Type: TypeInteger},
	}}
	good := encodeRow(s, []Value{IntValue(7), TextValue("hello"), IntValue(-1)})
	f.Add(encodeKey(IntValue(7)), good)
	f.Add([]byte{1}, []byte{0xFF})
	f.Add([]byte{}, []byte{})
	// Regression: a text-length varint large enough to overflow int
	// slipped past the bounds check as a negative slice bound.
	f.Add([]byte("00000000"), []byte{0x01, 0xca, 0xd3, 0xfd, 0xc4, 0xc4, 0xc4, 0xc5, 0xc4, 0xc4, 0x01})
	f.Fuzz(func(t *testing.T, key, payload []byte) {
		row, err := decodeRow(s, key, payload)
		if err == nil && len(row) != len(s.Columns) {
			t.Fatal("decoded row with wrong arity")
		}
	})
}

// FuzzDecodeSchema asserts schema decoding never panics.
func FuzzDecodeSchema(f *testing.F) {
	f.Add(encodeSchema(&Schema{Table: "t", PKIndex: 0, Columns: []Column{{Name: "a", Type: TypeInteger}}}))
	f.Add([]byte{0})
	f.Add([]byte{7, 1, 200})
	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := decodeSchema("t", blob)
		if err == nil && (s == nil || s.PKIndex >= len(s.Columns)) {
			t.Fatal("invalid schema accepted")
		}
	})
}
