package sql

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: the integer key encoding preserves numeric order bytewise —
// the invariant primary-key range scans depend on.
func TestPropertyIntKeyOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := encodeKey(IntValue(a)), encodeKey(IntValue(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: key encoding round-trips for both types.
func TestPropertyKeyRoundTrip(t *testing.T) {
	fInt := func(v int64) bool {
		got, err := decodeKey(TypeInteger, encodeKey(IntValue(v)))
		return err == nil && got.Int == v
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Fatal(err)
	}
	fText := func(s string) bool {
		got, err := decodeKey(TypeText, encodeKey(TextValue(s)))
		return err == nil && got.Str == s
	}
	if err := quick.Check(fText, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: row encoding round-trips for arbitrary schemas and rows.
func TestPropertyRowRoundTrip(t *testing.T) {
	f := func(pk uint8, texts []string, ints []int64) bool {
		s := &Schema{Table: "t"}
		// Interleave text and integer columns.
		for i := range texts {
			s.Columns = append(s.Columns, Column{Name: string(rune('a' + len(s.Columns))), Type: TypeText})
			_ = i
		}
		for i := range ints {
			s.Columns = append(s.Columns, Column{Name: string(rune('a' + len(s.Columns))), Type: TypeInteger})
			_ = i
		}
		if len(s.Columns) == 0 {
			return true
		}
		s.PKIndex = int(pk) % len(s.Columns)
		row := make([]Value, len(s.Columns))
		for i := range texts {
			row[i] = TextValue(texts[i])
		}
		for i := range ints {
			row[len(texts)+i] = IntValue(ints[i])
		}
		// Text PKs cannot round-trip arbitrary... they can: raw bytes.
		key := encodeKey(row[s.PKIndex])
		payload := encodeRow(s, row)
		got, err := decodeRow(s, key, payload)
		if err != nil {
			return false
		}
		for i := range row {
			if got[i].Type != row[i].Type || got[i].Int != row[i].Int || got[i].Str != row[i].Str {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowCorruption(t *testing.T) {
	s := &Schema{Table: "t", Columns: []Column{
		{Name: "a", Type: TypeInteger}, {Name: "b", Type: TypeText},
	}, PKIndex: 0}
	key := encodeKey(IntValue(1))
	if _, err := decodeRow(s, key, []byte{0xFF, 0x01}); err == nil {
		t.Fatal("bad type tag accepted")
	}
	if _, err := decodeRow(s, key, []byte{byte(TypeText), 0xFF}); err == nil {
		t.Fatal("truncated varint/bytes accepted")
	}
	if _, err := decodeRow(s, []byte{1, 2}, nil); err == nil {
		t.Fatal("malformed integer key accepted")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := &Schema{Table: "t", PKIndex: 1, Columns: []Column{
		{Name: "alpha", Type: TypeText},
		{Name: "beta", Type: TypeInteger},
	}}
	got, err := decodeSchema("t", encodeSchema(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.PKIndex != 1 || len(got.Columns) != 2 || got.Columns[0].Name != "alpha" ||
		got.Columns[1].Type != TypeInteger {
		t.Fatalf("schema round trip = %+v", got)
	}
	if _, err := decodeSchema("t", []byte{9}); err == nil {
		t.Fatal("corrupt schema accepted")
	}
	if _, err := decodeSchema("t", nil); err == nil {
		t.Fatal("empty schema accepted")
	}
}
