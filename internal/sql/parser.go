package sql

import (
	"fmt"
	"strconv"
)

// Statement AST.
type (
	// CreateTableStmt is CREATE TABLE.
	CreateTableStmt struct {
		Schema Schema
	}
	// InsertStmt is INSERT INTO ... VALUES.
	InsertStmt struct {
		Table   string
		Columns []string // nil = all columns in schema order
		Rows    [][]Value
	}
	// SelectStmt is SELECT ... FROM ... [WHERE] [LIMIT].
	SelectStmt struct {
		Table   string
		Columns []string // nil = *
		Count   bool     // SELECT COUNT(*)
		Where   []Pred
		Limit   int // -1 = none
	}
	// DropTableStmt is DROP TABLE.
	DropTableStmt struct {
		Table string
	}
	// UpdateStmt is UPDATE ... SET ... [WHERE].
	UpdateStmt struct {
		Table string
		Set   map[string]Value
		Where []Pred
	}
	// DeleteStmt is DELETE FROM ... [WHERE].
	DeleteStmt struct {
		Table string
		Where []Pred
	}
	// BeginStmt, CommitStmt, RollbackStmt control transactions.
	BeginStmt    struct{}
	CommitStmt   struct{}
	RollbackStmt struct{}
)

// Pred is one comparison in a WHERE conjunction.
type Pred struct {
	Column string
	Op     string // = != < <= > >=
	Value  Value
}

// Matches evaluates the predicate against a value.
func (p Pred) Matches(v Value) bool {
	c := v.Compare(p.Value)
	switch p.Op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// Parse parses one SQL statement.
func Parse(src string) (any, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (any, error) {
	switch {
	case p.accept(tokIdent, "create"):
		return p.createTable()
	case p.accept(tokIdent, "drop"):
		if _, err := p.expect(tokIdent, "table"); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return DropTableStmt{Table: name.text}, nil
	case p.accept(tokIdent, "insert"):
		return p.insert()
	case p.accept(tokIdent, "select"):
		return p.selectStmt()
	case p.accept(tokIdent, "update"):
		return p.update()
	case p.accept(tokIdent, "delete"):
		return p.delete()
	case p.accept(tokIdent, "begin"):
		return BeginStmt{}, nil
	case p.accept(tokIdent, "commit"):
		return CommitStmt{}, nil
	case p.accept(tokIdent, "rollback"):
		return RollbackStmt{}, nil
	}
	return nil, p.errf("unknown statement %q", p.cur().text)
}

func (p *parser) createTable() (any, error) {
	if _, err := p.expect(tokIdent, "table"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	s := Schema{Table: name.text, PKIndex: -1}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typTok, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var typ Type
		switch typTok.text {
		case "integer", "int":
			typ = TypeInteger
		case "text", "varchar", "blob":
			typ = TypeText
		default:
			return nil, p.errf("unknown type %q", typTok.text)
		}
		if s.ColumnIndex(col.text) >= 0 {
			return nil, p.errf("duplicate column %q", col.text)
		}
		s.Columns = append(s.Columns, Column{Name: col.text, Type: typ})
		if p.accept(tokIdent, "primary") {
			if _, err := p.expect(tokIdent, "key"); err != nil {
				return nil, err
			}
			if s.PKIndex >= 0 {
				return nil, p.errf("multiple primary keys")
			}
			s.PKIndex = len(s.Columns) - 1
		}
		if p.accept(tokPunct, ",") {
			continue
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		break
	}
	if s.PKIndex < 0 {
		s.PKIndex = 0 // first column by default
	}
	return CreateTableStmt{Schema: s}, nil
}

func (p *parser) insert() (any, error) {
	if _, err := p.expect(tokIdent, "into"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := InsertStmt{Table: name.text}
	if p.accept(tokPunct, "(") {
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col.text)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(tokIdent, "values"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) selectStmt() (any, error) {
	st := SelectStmt{Limit: -1}
	switch {
	case p.accept(tokPunct, "*"):
		// all columns
	case p.at(tokIdent, "count") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "(":
		p.pos++ // count
		p.pos++ // (
		if _, err := p.expect(tokPunct, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		st.Count = true
	default:
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st.Table = name.text
	if st.Where, err = p.where(); err != nil {
		return nil, err
	}
	if p.accept(tokIdent, "limit") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		st.Limit, err = strconv.Atoi(n.text)
		if err != nil || st.Limit < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
	}
	return st, nil
}

func (p *parser) update() (any, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "set"); err != nil {
		return nil, err
	}
	st := UpdateStmt{Table: name.text, Set: map[string]Value{}}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Set[col.text] = v
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if st.Where, err = p.where(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) delete() (any, error) {
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	st := DeleteStmt{Table: name.text}
	var err2 error
	if st.Where, err2 = p.where(); err2 != nil {
		return nil, err2
	}
	return st, nil
}

// where parses an optional WHERE conjunction.
func (p *parser) where() ([]Pred, error) {
	if !p.accept(tokIdent, "where") {
		return nil, nil
	}
	var preds []Pred
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		opTok := p.cur()
		if opTok.kind != tokPunct {
			return nil, p.errf("expected comparison operator, found %q", opTok.text)
		}
		switch opTok.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
		default:
			return nil, p.errf("unsupported operator %q", opTok.text)
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		preds = append(preds, Pred{Column: col.text, Op: opTok.text, Value: v})
		if !p.accept(tokIdent, "and") {
			break
		}
	}
	return preds, nil
}

func (p *parser) literal() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, p.errf("bad number %q", t.text)
		}
		return IntValue(n), nil
	case tokString:
		p.pos++
		return TextValue(t.text), nil
	}
	return Value{}, p.errf("expected literal, found %q", t.text)
}
