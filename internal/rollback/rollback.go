// Package rollback implements SQLite's classic rollback-journal mode
// (DELETE journaling), the pre-WAL scheme §1 and §2 contrast
// write-ahead logging against: before a transaction modifies the
// database file in place, the original content of every page it will
// touch is saved to a separate <db>-journal file; commit deletes the
// journal, and crash recovery replays it to undo a torn transaction.
//
// The mode exists here as a baseline: it journals *two* files (the
// database and the rollback journal) and needs more fsyncs per commit
// than WAL — "WAL needs fewer fsync() calls as it modifies a single log
// file instead of two" (§1) — which the baselines experiment
// quantifies.
package rollback

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"repro/internal/ext4"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// On-file journal layout:
//
//	header: magic(8) | pageSize(4) | count(4)
//	record: pgno(4) | original page | crc64(8) over pgno+page
const (
	headerSize    = 16
	recordExtra   = 12
	journalSuffix = "-journal"
)

var (
	journalMagic = []byte("SQLTRJN1")
	crcTable     = crc64.MakeTable(crc64.ISO)
)

// ErrJournal reports an unusable journal during recovery.
var ErrJournal = errors.New("rollback: corrupt journal")

// Journal is a rollback-journal "journal" in the pager.Journal sense:
// commits write the database file in place under journal protection.
type Journal struct {
	fs       *ext4.FS
	db       pager.DBFile
	name     string // journal file name
	pageSize int
	m        *metrics.Counters
}

// Open attaches rollback journaling for the database file dbName. A hot
// journal left by a crash is rolled back immediately.
func Open(fs *ext4.FS, dbName string, db pager.DBFile, m *metrics.Counters) (*Journal, error) {
	if m == nil {
		m = &metrics.Counters{}
	}
	j := &Journal{fs: fs, db: db, name: dbName + journalSuffix, pageSize: db.PageSize(), m: m}
	if fs.Exists(j.name) {
		if err := j.rollbackHot(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// CommitTransaction implements pager.Journal:
//
//  1. save the original images of all pages to the journal and fsync it
//     (the undo log must be durable before the database is touched);
//  2. write the new pages into the database file and fsync it;
//  3. delete the journal — the commit point — and make the deletion
//     durable.
func (j *Journal) CommitTransaction(frames []pager.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	if err := j.writeUndoLog(frames); err != nil {
		return err
	}

	for _, fr := range frames {
		if err := j.db.WritePage(fr.Pgno, fr.Data); err != nil {
			return err
		}
	}
	if err := j.db.Sync(); err != nil { // fsync #2: database durable
		return err
	}

	// Commit point: remove the journal and persist the metadata change
	// (the directory-fsync of DELETE mode).
	if err := j.fs.Remove(j.name); err != nil {
		return err
	}
	if err := j.db.Sync(); err != nil { // fsync #3: journal deletion durable
		return err
	}
	j.m.Inc(metrics.Transactions, 1)
	return nil
}

// writeUndoLog saves the original images of the pages frames will
// overwrite into the journal file and fsyncs it (commit step 1).
func (j *Journal) writeUndoLog(frames []pager.Frame) error {
	jf, err := j.fs.OpenOrCreate(j.name, "journal-file")
	if err != nil {
		return err
	}
	jf.Truncate(0)
	hdr := make([]byte, headerSize)
	copy(hdr, journalMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(j.pageSize))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(frames)))
	if _, err := jf.WriteAt(hdr, 0); err != nil {
		return err
	}
	off := int64(headerSize)
	orig := make([]byte, j.pageSize)
	for _, fr := range frames {
		if err := j.db.ReadPage(fr.Pgno, orig); err != nil {
			return err
		}
		rec := make([]byte, recordExtra+j.pageSize)
		binary.LittleEndian.PutUint32(rec, fr.Pgno)
		copy(rec[4:], orig)
		sum := crc64.Checksum(rec[:4+j.pageSize], crcTable)
		binary.LittleEndian.PutUint64(rec[4+j.pageSize:], sum)
		if _, err := jf.WriteAt(rec, off); err != nil {
			return err
		}
		off += int64(len(rec))
	}
	if err := jf.Fsync(); err != nil { // fsync #1: undo log durable
		return err
	}
	return nil
}

// rollbackHot undoes a torn transaction found at open: every journaled
// original page is restored. A journal that fails validation was never
// fsynced (the database is untouched) and is simply discarded.
func (j *Journal) rollbackHot() error {
	jf, err := j.fs.Open(j.name)
	if err != nil {
		return err
	}
	restore, err := j.readJournal(jf)
	if err == nil {
		for _, r := range restore {
			if err := j.db.WritePage(r.pgno, r.data); err != nil {
				return err
			}
		}
		if err := j.db.Sync(); err != nil {
			return err
		}
	}
	if err := j.fs.Remove(j.name); err != nil {
		return err
	}
	return j.db.Sync()
}

type undoRecord struct {
	pgno uint32
	data []byte
}

// readJournal parses and validates the journal, returning the undo
// records, or ErrJournal when the journal is torn (not fully fsynced).
func (j *Journal) readJournal(jf *ext4.File) ([]undoRecord, error) {
	hdr := make([]byte, headerSize)
	if n, err := jf.ReadAt(hdr, 0); err != nil && n < headerSize {
		return nil, ErrJournal
	}
	if string(hdr[:8]) != string(journalMagic) {
		return nil, ErrJournal
	}
	if int(binary.LittleEndian.Uint32(hdr[8:])) != j.pageSize {
		return nil, fmt.Errorf("%w: page size mismatch", ErrJournal)
	}
	count := int(binary.LittleEndian.Uint32(hdr[12:]))
	recSize := recordExtra + j.pageSize
	out := make([]undoRecord, 0, count)
	for i := 0; i < count; i++ {
		rec := make([]byte, recSize)
		off := int64(headerSize + i*recSize)
		if n, err := jf.ReadAt(rec, off); err != nil && n < recSize {
			return nil, ErrJournal
		}
		sum := crc64.Checksum(rec[:4+j.pageSize], crcTable)
		if sum != binary.LittleEndian.Uint64(rec[4+j.pageSize:]) {
			return nil, ErrJournal
		}
		data := make([]byte, j.pageSize)
		copy(data, rec[4:])
		out = append(out, undoRecord{pgno: binary.LittleEndian.Uint32(rec), data: data})
	}
	return out, nil
}

// PageVersion implements pager.Journal: the database file always holds
// the latest committed content in rollback mode.
func (j *Journal) PageVersion(uint32) ([]byte, bool) { return nil, false }

// FramesSinceCheckpoint implements pager.Journal: rollback mode has no
// log to truncate.
func (j *Journal) FramesSinceCheckpoint() int { return 0 }

// Checkpoint implements pager.Journal as a no-op.
func (j *Journal) Checkpoint() error { return nil }
