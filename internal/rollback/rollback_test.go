package rollback

import (
	"bytes"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/dbfile"
	"repro/internal/ext4"
	"repro/internal/metrics"
	"repro/internal/pager"
	"repro/internal/simclock"
	"repro/internal/trace"
)

type env struct {
	fs  *ext4.FS
	db  pager.DBFile
	m   *metrics.Counters
	rec *trace.Recorder
}

func newEnv(t testing.TB) *env {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	rec := trace.New()
	dev := blockdev.New(blockdev.Config{Pages: 1 << 15}, clock, m, rec)
	fs := ext4.New(dev)
	f, err := fs.Create("r.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	return &env{fs: fs, db: dbfile.New(f, 4096), m: m, rec: rec}
}

func (e *env) open(t testing.TB) *Journal {
	t.Helper()
	j, err := Open(e.fs, "r.db", e.db, e.m)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func page(fill byte) []byte {
	p := make([]byte, 4096)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestCommitWritesDatabaseInPlace(t *testing.T) {
	e := newEnv(t)
	j := e.open(t)
	if err := j.CommitTransaction([]pager.Frame{{Pgno: 2, Data: page(0xAA)}}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := e.db.ReadPage(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0xAA)) {
		t.Fatal("page not written to the database file")
	}
	if _, ok := j.PageVersion(2); ok {
		t.Fatal("rollback mode has no log versions")
	}
	if e.fs.Exists("r.db-journal") {
		t.Fatal("journal not deleted at commit")
	}
}

func TestThreeFsyncsPerCommit(t *testing.T) {
	// The §1 comparison point: rollback journaling syncs the journal,
	// the database, and the journal deletion — WAL syncs once.
	e := newEnv(t)
	j := e.open(t)
	before := e.m.Count(metrics.Fsync)
	if err := j.CommitTransaction([]pager.Frame{{Pgno: 2, Data: page(1)}}); err != nil {
		t.Fatal(err)
	}
	got := e.m.Count(metrics.Fsync) - before
	// Each file-level fsync may issue up to 2 device syncs (EXT4
	// journal commit); at least 3 file-level syncs must appear.
	if got < 3 {
		t.Fatalf("commit issued %d device syncs, want >= 3", got)
	}
}

func TestCrashBeforeJournalSyncLeavesDBUntouched(t *testing.T) {
	e := newEnv(t)
	j := e.open(t)
	j.CommitTransaction([]pager.Frame{{Pgno: 2, Data: page(0x11)}})

	// Hand-craft a torn journal: header written, never fsynced, crash.
	jf, err := e.fs.Create("r.db-journal", "journal-file")
	if err != nil {
		t.Fatal(err)
	}
	jf.WriteAt([]byte("garbage-that-never-synced"), 0)
	e.fs.PowerFail()

	f, _ := e.fs.Open("r.db")
	e.db = dbfile.New(f, 4096)
	j2, err := Open(e.fs, "r.db", e.db, e.m)
	if err != nil {
		t.Fatal(err)
	}
	_ = j2
	got := make([]byte, 4096)
	e.db.ReadPage(2, got)
	if !bytes.Equal(got, page(0x11)) {
		t.Fatal("committed page lost")
	}
}

func TestHotJournalRollsBackTornCommit(t *testing.T) {
	e := newEnv(t)
	j := e.open(t)
	j.CommitTransaction([]pager.Frame{{Pgno: 2, Data: page(0x11)}})

	// Simulate a crash after the journal fsync but before the database
	// write completes durably: write the journal for a new transaction,
	// fsync it, scribble the database without syncing, crash.
	jf, err := e.fs.Create("r.db-journal", "journal-file")
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the production encoding by invoking the commit path up to
	// the database write: easiest is to build the journal by hand using
	// the same helpers.
	j3 := &Journal{fs: e.fs, db: e.db, name: "r.db-journal", pageSize: 4096, m: e.m}
	_ = jf
	e.fs.Remove("r.db-journal")
	// Do a full commit but power-fail before its final sync by driving
	// the steps manually: journal the old page, sync, overwrite db,
	// crash (no sync).
	if err := j3.writeUndoLog([]pager.Frame{{Pgno: 2, Data: page(0x22)}}); err != nil {
		t.Fatal(err)
	}
	e.db.WritePage(2, page(0x22))
	e.fs.PowerFail() // db write was unsynced; journal was synced

	f, _ := e.fs.Open("r.db")
	e.db = dbfile.New(f, 4096)
	if _, err := Open(e.fs, "r.db", e.db, e.m); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	e.db.ReadPage(2, got)
	if !bytes.Equal(got, page(0x11)) {
		t.Fatalf("torn transaction not rolled back: %x", got[0])
	}
	if e.fs.Exists("r.db-journal") {
		t.Fatal("hot journal not removed after rollback")
	}
}

func TestHotJournalRollsBackAfterPartialDurableWrite(t *testing.T) {
	// The stronger case: the database write WAS durable but the journal
	// deletion was not — recovery must still undo (the commit point is
	// the journal deletion).
	e := newEnv(t)
	j := e.open(t)
	j.CommitTransaction([]pager.Frame{{Pgno: 2, Data: page(0x11)}})

	j3 := &Journal{fs: e.fs, db: e.db, name: "r.db-journal", pageSize: 4096, m: e.m}
	if err := j3.writeUndoLog([]pager.Frame{{Pgno: 2, Data: page(0x33)}}); err != nil {
		t.Fatal(err)
	}
	e.db.WritePage(2, page(0x33))
	e.db.Sync() // database durable
	e.fs.PowerFail()

	f, _ := e.fs.Open("r.db")
	e.db = dbfile.New(f, 4096)
	if _, err := Open(e.fs, "r.db", e.db, e.m); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	e.db.ReadPage(2, got)
	if !bytes.Equal(got, page(0x11)) {
		t.Fatal("uncommitted (journal not deleted) transaction survived")
	}
}

func TestEmptyCommitNoop(t *testing.T) {
	e := newEnv(t)
	j := e.open(t)
	if err := j.CommitTransaction(nil); err != nil {
		t.Fatal(err)
	}
	if e.fs.Exists("r.db-journal") {
		t.Fatal("empty commit created a journal")
	}
}

func TestCheckpointNoop(t *testing.T) {
	e := newEnv(t)
	j := e.open(t)
	if j.FramesSinceCheckpoint() != 0 {
		t.Fatal("rollback mode reported frames")
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
