package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/platform"
)

// MVCC chain mode (Options.MVCC): every worker writes the SAME shared
// keyspace through BeginConcurrent sessions (with a fraction of legacy
// Begin transactions mixed in, since both paths maintain the page
// version vector). Conflicts are a legal, expected outcome — the driver
// retries them a few times and otherwise drops the attempt, and only
// transactions whose commit actually succeeded (seq assigned) enter the
// oracle history.
//
// Per-worker prefix matching — the plain-mode oracle — is UNSOUND here:
// with overlapping keyspaces a worker's keys are rewritten by everyone,
// so no per-worker model exists. The MVCC oracle instead replays the
// committed transactions in global commit-sequence order over the
// round's base state. That is sound because (a) the final value of
// every key is whatever its last writer in seq order put there —
// snapshot-isolation anomalies are read anomalies, never write-state
// ones — and (b) the journal flushes groups in seq order under atomic
// commit marks, so a crash preserves exactly a seq-prefix of the
// history. Every committed transaction writes its per-worker counter
// key, which makes all prefix states pairwise distinct, so the survivor
// matches at most one prefix.

// MVCCSharedKeys is the size of the overlapping keyspace all workers
// contend on. Small enough that btree leaves are shared (real page
// conflicts), large enough that the tree splits past one leaf.
const MVCCSharedKeys = 24

// MVCCSharedKey returns the i'th key of the shared keyspace.
func MVCCSharedKey(i int) string { return fmt.Sprintf("s/k%02d", i) }

// MVCCCounterKey is the per-worker key every committed transaction
// stamps with its round and per-worker commit index, making every
// seq-prefix state distinct (the same role CounterKey plays for the
// disjoint-keyspace oracle).
func MVCCCounterKey(worker int) string { return fmt.Sprintf("c/w%02d", worker) }

// genMVCCOps builds one transaction's mutations over the shared
// keyspace, ending with the worker's counter stamp.
func genMVCCOps(rng *rand.Rand, worker, round, idx int) []Op {
	n := 1 + rng.Intn(4)
	ops := make([]Op, 0, n+1)
	for i := 0; i < n; i++ {
		k := MVCCSharedKey(rng.Intn(MVCCSharedKeys))
		if rng.Intn(5) == 0 {
			ops = append(ops, Op{Key: k, Delete: true})
		} else {
			val := fmt.Sprintf("v%d.%d.%d.%d.%x", worker, round, idx, i, rng.Int63())
			for len(val) < 24+rng.Intn(80) {
				val += "."
			}
			ops = append(ops, Op{Key: k, Value: val})
		}
	}
	ops = append(ops, Op{Key: MVCCCounterKey(worker), Value: fmt.Sprintf("%d.%d", round, idx)})
	return ops
}

// VerifyMVCC checks a recovered survivor against an overlapping-
// keyspace history: the survivor must equal the base state plus some
// prefix of the committed transactions in global commit-sequence order,
// and (unless WeakDurability) that prefix must cover every acknowledged
// commit. Only transactions with an assigned seq may appear — a commit
// that failed cleanly (conflict, backpressure) never reached the log
// and belongs outside the history.
func VerifyMVCC(h History, survivor map[string]string) []Violation {
	var out []Violation

	for k := range survivor {
		if strings.HasPrefix(k, "s/") {
			continue
		}
		owned := false
		for w := 0; w < h.Workers; w++ {
			if k == MVCCCounterKey(w) {
				owned = true
				break
			}
		}
		if !owned {
			out = append(out, Violation{Kind: "resurrection", Worker: -1,
				Detail: fmt.Sprintf("survivor holds key %q outside the shared keyspace", k)})
		}
	}

	txns := append([]Txn(nil), h.Txns...)
	sort.Slice(txns, func(i, j int) bool { return txns[i].Seq < txns[j].Seq })
	lastIdx := make(map[int]int)
	for i, t := range txns {
		if t.Seq == 0 {
			out = append(out, Violation{Kind: "error", Worker: t.Worker,
				Detail: "MVCC history holds a transaction without a commit seq"})
			return out
		}
		if i > 0 && t.Seq == txns[i-1].Seq {
			out = append(out, Violation{Kind: "error", Worker: t.Worker,
				Detail: fmt.Sprintf("two transactions share commit seq %d", t.Seq)})
			return out
		}
		// A worker issues its transactions sequentially, so its commits
		// must appear in issue order within the global seq order.
		if t.Index <= lastIdx[t.Worker] {
			out = append(out, Violation{Kind: "order", Worker: t.Worker,
				Detail: fmt.Sprintf("txn %d (seq %d) committed after txn %d of the same worker",
					t.Index, t.Seq, lastIdx[t.Worker])})
			return out
		}
		lastIdx[t.Worker] = t.Index
	}

	state := make(map[string]string, len(h.Base))
	for k, v := range h.Base {
		state[k] = v
	}
	m, ackedPos := -1, 0
	if sameState(state, survivor) {
		m = 0
	}
	for i, t := range txns {
		applyTxn(state, t)
		if sameState(state, survivor) {
			m = i + 1 // counter stamps make prefix states distinct
		}
		if t.Acked {
			ackedPos = i + 1
		}
	}
	switch {
	case m < 0:
		out = append(out, Violation{Kind: "atomicity", Worker: -1,
			Detail: fmt.Sprintf("survivor matches no seq-order prefix (0..%d); vs full state: %s",
				len(txns), diffState(state, survivor))})
	case m < ackedPos && !h.WeakDurability:
		out = append(out, Violation{Kind: "durability", Worker: -1,
			Detail: fmt.Sprintf("acknowledged commit at seq position %d lost: survivor reflects only %d/%d commits",
				ackedPos, m, len(txns))})
	}
	return out
}

// sampleMVCCChain draws an overlapping-keyspace chain configuration:
// always ≥ 2 writers (one writer cannot conflict with itself), the
// strict-durability variant rotation, and the usual auxiliary load.
func sampleMVCCChain(rng *rand.Rand, opts Options) chainCfg {
	variants := []core.NamedConfig{
		{Name: "E", Cfg: core.VariantE()},
		{Name: "LS", Cfg: core.VariantLS()},
		{Name: "LS+Diff", Cfg: core.VariantLSDiff()},
		{Name: "UH+LS", Cfg: core.VariantUHLS()},
		{Name: "UH+LS+Diff", Cfg: core.VariantUHLSDiff()},
		{Name: "SP", Cfg: core.VariantSP()},
		{Name: "EP", Cfg: core.VariantEP()},
	}
	v := variants[rng.Intn(len(variants))]
	cfg := chainCfg{
		label:   "MVCC/" + v.Name,
		variant: v.Cfg,
		rounds:  3 + rng.Intn(4),
	}
	if opts.Workers > 1 {
		cfg.workers = opts.Workers
	} else {
		cfg.workers = 2 + rng.Intn(4)
	}
	switch rng.Intn(3) {
	case 0:
		cfg.groupCommit = 1
	case 1:
		cfg.groupCommit = 2
	default:
		cfg.groupCommit = cfg.workers
	}
	cfg.bgCkpt = rng.Intn(2) == 0
	cfg.churn = rng.Intn(2) == 0
	cfg.reader = rng.Intn(2) == 0
	cfg.ckptLimit = 24 + rng.Intn(120)
	if opts.HeapPages > 0 {
		cfg.ckptLimit = 4 + rng.Intn(12)
	}
	cfg.policies = []memsim.FailPolicy{
		memsim.FailDropAll, memsim.FailKeepCompleted, memsim.FailAdversarial,
	}
	return cfg
}

// runMVCCChain runs one overlapping-keyspace crash chain: the same
// (workload with armed crash → power fail → reboot → recover → oracle)
// loop as runChain, with the MVCC workload and the seq-order oracle.
func runMVCCChain(opts Options, step int) chainResult {
	seed := mix(opts.Seed, step)
	rng := rand.New(rand.NewSource(seed))
	cfg := sampleMVCCChain(rng, opts)
	res := chainResult{}

	repro := fmt.Sprintf("nvwal-fuzz -mvcc -seed %d -step %d", opts.Seed, step)
	if opts.MaxRounds > 0 {
		repro += fmt.Sprintf(" -max-rounds %d", opts.MaxRounds)
	}
	if opts.MaxTxns > 0 {
		repro += fmt.Sprintf(" -max-txns %d", opts.MaxTxns)
	}
	if opts.HeapPages > 0 {
		repro += fmt.Sprintf(" -heap-pages %d", opts.HeapPages)
	}
	fail := func(round int, v Violation) {
		res.violations = append(res.violations, ViolationReport{
			Step: step, Seed: opts.Seed, Round: round, Chain: cfg.String(),
			Kind: v.Kind, Worker: v.Worker, Detail: v.Detail, Repro: repro,
		})
	}

	if opts.MaxRounds > 0 && cfg.rounds > opts.MaxRounds {
		cfg.rounds = opts.MaxRounds
	}

	plat, err := newChainPlatform(opts)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "platform: " + err.Error()})
		return res
	}
	dbOpts := db.Options{
		Journal:              db.JournalNVWAL,
		NVWAL:                cfg.variant,
		Concurrent:           true,
		GroupCommit:          cfg.groupCommit,
		BackgroundCheckpoint: cfg.bgCkpt,
		CheckpointLimit:      cfg.ckptLimit,
	}
	if opts.HeapPages > 0 {
		dbOpts.CommitTimeout = 250 * time.Millisecond
	}
	d, err := db.Open(plat, "fuzz", dbOpts)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "open: " + err.Error()})
		return res
	}
	if err := d.CreateTable("t"); err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "create table: " + err.Error()})
		return res
	}

	base := map[string]string{}
	window := int64(2500)
	opts.logf("chain %d (seed %d): %s", step, seed, cfg)

	for round := 0; round < cfg.rounds; round++ {
		policy := cfg.policies[rng.Intn(len(cfg.policies))]
		armAfter := 1 + rng.Int63n(window)
		pfSeed := rng.Int63()
		txnsPer := 3 + rng.Intn(8)
		if opts.MaxTxns > 0 && txnsPer > opts.MaxTxns {
			txnsPer = opts.MaxTxns
		}
		opStart := plat.OpCount()

		plat.ArmCrash(armAfter, policy, pfSeed)
		hist, wvs, indeterminate := runMVCCWorkload(d, plat, cfg, base, seed, round, txnsPer)
		res.txns += len(hist.Txns)

		if d.Degraded() != nil && opts.HeapPages > 0 {
			res.degraded = true
		}
		d.Abandon()
		plat.PowerFail(policy, pfSeed)
		if err := plat.Reboot(); err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "reboot: " + err.Error()})
			return res
		}
		d, err = db.Open(plat, "fuzz", dbOpts)
		if err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "recovery open: " + err.Error()})
			return res
		}
		if !d.HasTable("t") {
			fail(round, Violation{Kind: "durability", Worker: -1,
				Detail: "table created before the crash window vanished"})
			return res
		}
		survivor := map[string]string{}
		err = d.Scan("t", func(k, v []byte) bool {
			survivor[string(k)] = string(v)
			return true
		})
		if err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "survivor scan: " + err.Error()})
			return res
		}
		if err := d.Check(); err != nil {
			fail(round, Violation{Kind: "atomicity", Worker: -1, Detail: "btree check: " + err.Error()})
			return res
		}

		for _, v := range wvs {
			fail(round, v)
		}
		if indeterminate {
			// A commit failed with a hard error after the crash instant:
			// whether it reached the log is unknowable from outside, so no
			// seq-order prefix claim is sound. Structural checks above
			// still ran; the chain continues from whatever survived.
			opts.logf("chain %d round %d (%s): indeterminate commit outcome, oracle skipped",
				step, round, policyName(policy))
		} else {
			hist.WeakDurability = cfg.variant.Sync == core.SyncChecksum
			for _, v := range VerifyMVCC(hist, survivor) {
				fail(round, v)
			}
		}
		res.rounds++
		if len(res.violations) > 0 {
			if os.Getenv("TORTURE_DEBUG") != "" {
				for _, t := range hist.Txns {
					opts.logf("DBG txn w=%d idx=%d seq=%d acked=%v ops=%d", t.Worker, t.Index, t.Seq, t.Acked, len(t.Ops))
				}
				keys := make([]string, 0, len(survivor))
				for k := range survivor {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					opts.logf("DBG surv %q=%q", k, clip(survivor[k]))
				}
			}
			opts.logf("chain %d round %d (%s): VIOLATION", step, round, policyName(policy))
			d.Abandon()
			return res
		}

		base = survivor
		if used := plat.OpCount() - opStart; used > 300 {
			window = used
		}
	}
	_ = d.Close()
	return res
}

// mvccRetries bounds the per-transaction conflict retry budget: enough
// that the workload makes progress under heavy contention, small enough
// that a pathological livelock shows up as dropped (never-recorded)
// transactions rather than a hang.
const mvccRetries = 8

// runMVCCWorkload drives one round with the crash trigger armed:
// cfg.workers writers over ONE shared keyspace, each transaction run as
// an MVCC session (or, one time in four, a legacy slot transaction —
// both paths feed the same version vector). Conflicted and cleanly
// backpressured attempts stay out of the history; only commits with an
// assigned seq enter it. The returned indeterminate flag is set when a
// commit failed with a hard error after the crash instant, leaving its
// durability unknowable.
func runMVCCWorkload(d *db.DB, plat *platform.Platform, cfg chainCfg,
	base map[string]string, seed int64, round, txnsPer int) (History, []Violation, bool) {

	hist := History{Base: base, Workers: cfg.workers}
	var mu sync.Mutex // guards hist.Txns, violations, indeterminate
	var violations []Violation
	indeterminate := false
	var wg sync.WaitGroup

	stop := make(chan struct{})
	if cfg.churn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(mix(seed, round*1000+901)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				blk, err := plat.Heap.NVPreMalloc(4096 * (1 + crng.Intn(2)))
				if err != nil {
					continue
				}
				_ = plat.Heap.NVFree(blk)
			}
		}()
	}
	if cfg.reader {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx, err := d.BeginRead()
				if err != nil {
					continue
				}
				_ = rtx.Scan("t", func(k, v []byte) bool { return true })
				rtx.Close()
			}
		}()
	}

	// record appends one committed transaction under the lock.
	record := func(w, idx int, seq uint64, acked bool, ops []Op) {
		mu.Lock()
		hist.Txns = append(hist.Txns, Txn{Worker: w, Index: idx, Seq: seq, Acked: acked, Ops: ops})
		mu.Unlock()
	}
	violate := func(w int, kind, detail string) {
		mu.Lock()
		violations = append(violations, Violation{Kind: kind, Worker: w, Detail: detail})
		mu.Unlock()
	}

	var writers sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(mix(seed, round*1000+w)))
			committed := 0
			for i := 0; i < txnsPer; i++ {
				rollback := wrng.Intn(100) < 15
				idx := committed + 1
				ops := genMVCCOps(wrng, w, round, idx)
				legacy := wrng.Intn(4) == 0

				var seq uint64
				var err error
				if legacy {
					seq, err = runMVCCLegacyTxn(d, ops, rollback)
				} else {
					seq, err = runMVCCSessionTxn(d, plat, w, ops, rollback, violate)
				}
				switch {
				case err == nil && seq == 0:
					// Clean non-commit: rollback, conflict budget exhausted,
					// or backpressure — legal, stays out of the history.
					continue
				case err == nil:
					record(w, idx, seq, !plat.CrashTriggered(), ops)
					committed = idx
				case errors.Is(err, db.ErrBusy):
					continue
				case errors.Is(err, db.ErrDegraded):
					return
				default:
					if plat.CrashTriggered() {
						mu.Lock()
						indeterminate = true
						mu.Unlock()
					} else {
						violate(w, "error", "txn: "+err.Error())
					}
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	return hist, violations, indeterminate
}

// runMVCCSessionTxn runs one transaction as an MVCC session, retrying
// conflicts up to mvccRetries. Returns the commit seq (0 = cleanly not
// committed) or a hard error.
func runMVCCSessionTxn(d *db.DB, plat *platform.Platform, w int, ops []Op,
	rollback bool, violate func(w int, kind, detail string)) (uint64, error) {

	for try := 0; try <= mvccRetries; try++ {
		tx, err := d.BeginConcurrent()
		if err != nil {
			if errors.Is(err, db.ErrBusy) {
				return 0, nil
			}
			return 0, err
		}
		bad := false
		for _, op := range ops {
			if op.Delete {
				_, err = tx.Delete("t", []byte(op.Key))
			} else {
				err = tx.Insert("t", []byte(op.Key), []byte(op.Value))
			}
			if err != nil {
				bad = true
				break
			}
		}
		if bad {
			tx.Rollback()
			return 0, err
		}
		// Read-your-writes inside the session: the last op on a key this
		// transaction wrote must be what the session reads back.
		op := ops[len(ops)-1]
		got, ok, gerr := tx.Get("t", []byte(op.Key))
		if gerr == nil {
			if op.Delete && ok {
				if !plat.CrashTriggered() {
					violate(w, "error", fmt.Sprintf("session read-your-writes: deleted %q still present", op.Key))
				}
			} else if !op.Delete && (!ok || string(got) != op.Value) {
				if !plat.CrashTriggered() {
					violate(w, "error", fmt.Sprintf("session read-your-writes mismatch on %q", op.Key))
				}
			}
		}
		if rollback {
			tx.Rollback()
			return 0, nil
		}
		err = tx.Commit()
		switch {
		case err == nil || errors.Is(err, db.ErrCheckpointDeferred):
			return tx.Seq(), nil
		case errors.Is(err, db.ErrConflict):
			continue
		default:
			return 0, err
		}
	}
	return 0, nil // conflict budget exhausted: cleanly dropped
}

// runMVCCLegacyTxn runs one transaction through the legacy slot path,
// which can never conflict (it holds the writer slot throughout).
func runMVCCLegacyTxn(d *db.DB, ops []Op, rollback bool) (uint64, error) {
	tx, err := d.Begin()
	if err != nil {
		if errors.Is(err, db.ErrBusy) {
			return 0, nil
		}
		return 0, err
	}
	for _, op := range ops {
		if op.Delete {
			_, err = tx.Delete("t", []byte(op.Key))
		} else {
			err = tx.Insert("t", []byte(op.Key), []byte(op.Value))
		}
		if err != nil {
			tx.Rollback()
			return 0, err
		}
	}
	if rollback {
		tx.Rollback()
		return 0, nil
	}
	err = tx.Commit()
	if err != nil && !errors.Is(err, db.ErrCheckpointDeferred) {
		return 0, err
	}
	return tx.Seq(), nil
}
