// Shrinking: once a chain violates, grow a smaller deterministic
// repro out of it. Chains are prefix-closed along two axes — crash
// rounds (each round's draws come after the previous round's on the
// chain rng) and per-worker transactions (each worker generates its
// stream sequentially from its own rng) — so clamping either axis
// replays an exact prefix of the same chain. The shrinker exploits
// that: clamp the rounds to the violating one, then binary-search the
// per-round transaction budget down, keeping every clamp that still
// violates.
package torture

// maxTxnsPerRound is the largest value runChain ever samples for a
// round's per-worker transaction budget — the shrinker's search
// ceiling.
const maxTxnsPerRound = 10

// Minimize shrinks the chain behind a violation to a smaller repro,
// returning the violation observed under the tightest clamps that
// still fire (its Repro carries the -max-rounds/-max-txns flags).
// The second result is false when the original violation could not be
// reproduced even unclamped — a racy multi-worker finding that needs
// re-runs rather than shrinking — in which case the input is returned
// unchanged.
func Minimize(opts Options, v ViolationReport) (ViolationReport, bool) {
	if v.Round < 0 || opts.Repl {
		// Replication chains are concurrent by construction (real client
		// goroutines over a faulty network): no exact replay, no shrink.
		return v, false
	}
	opts.Step = v.Step
	opts.Steps = 1
	opts.Duration = 0

	check := func(maxRounds, maxTxns int) (ViolationReport, bool) {
		o := opts
		o.MaxRounds, o.MaxTxns = maxRounds, maxTxns
		res := runChain(o, v.Step)
		if len(res.violations) > 0 {
			return res.violations[0], true
		}
		return ViolationReport{}, false
	}

	// Rounds before the violating one only built up state; clamping to
	// it is sound for deterministic chains. If even that does not
	// re-fire, the chain is racy — report it unshrunk.
	best, ok := check(v.Round+1, 0)
	if !ok {
		return v, false
	}
	rounds := best.Round + 1

	// Binary-search the transaction budget. The predicate is not truly
	// monotone (a smaller budget shifts the crash point), so this is a
	// heuristic descent: every still-violating clamp is kept.
	lo, hi := 1, maxTxnsPerRound
	for lo <= hi {
		mid := (lo + hi) / 2
		if nv, ok := check(rounds, mid); ok {
			best = nv
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, true
}
