// Replication chain mode: a 3-node cluster (primary + 2 WAL-shipping
// replicas) serving client workloads through the simulated network
// while the chain injects link faults and kills primaries. Each round
// is one primary era: workers write through server.Client (retries,
// rediscovery and backoff included — the client under test IS part of
// the system under test), the chain partitions replica links and
// degrades client links mid-era, then crash-fails the primary
// (isolate + power fail), promotes the most-caught-up replica under a
// new fencing epoch, and reboots the old primary back in as a replica
// (which re-seeds by incarnation mismatch).
//
// The oracle is outcome-based rather than history-replay-based,
// because concurrent clients over a faulty network have no single
// authoritative interleaving:
//
//   - Durability: a client-acked write (semi-sync, quorum 1) must be
//     present with its exact value after every failover.
//   - Indeterminacy: a write whose outcome the client reported as
//     indeterminate may be present or absent — but nothing ELSE: the
//     surviving value must be one the client actually attempted or
//     the last acked value.
//   - Atomicity: an indeterminate BATCH (one transaction) whose keys
//     were never rewritten must be fully present or fully absent.
//   - Replica consistency: once writes stop and replicas catch up,
//     every replica serves exactly the primary's values, its applied
//     mark never exceeds the primary's mark, and reliable-link
//     shipping never latches divergence.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memsim"
	"repro/internal/netsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/server"
)

// replChainCfg is one replication chain's sampled configuration.
type replChainCfg struct {
	workers  int
	rounds   int // primary eras (each ends in a crash+failover)
	opsPer   int // client ops per worker per era
	dropMax  float64
	policies []memsim.FailPolicy
}

func (c replChainCfg) String() string {
	return fmt.Sprintf("repl w=%d eras=%d ops=%d drop<=%.2f",
		c.workers, c.rounds, c.opsPer, c.dropMax)
}

func sampleReplChain(rng *rand.Rand, opts Options) replChainCfg {
	cfg := replChainCfg{
		workers: 2 + rng.Intn(2),
		rounds:  2 + rng.Intn(2),
		opsPer:  15 + rng.Intn(16),
		dropMax: 0.1 + 0.3*rng.Float64(),
		policies: []memsim.FailPolicy{
			memsim.FailDropAll, memsim.FailKeepCompleted, memsim.FailAdversarial,
		},
	}
	if opts.Workers > 0 {
		cfg.workers = opts.Workers
	}
	if opts.MaxRounds > 0 && cfg.rounds > opts.MaxRounds {
		cfg.rounds = opts.MaxRounds
	}
	if opts.MaxTxns > 0 && cfg.opsPer > opts.MaxTxns {
		cfg.opsPer = opts.MaxTxns
	}
	return cfg
}

// replOracle accumulates per-key allowed outcomes across the whole
// chain. "" stands for absent.
type replOracle struct {
	mu      sync.Mutex
	allowed map[string]map[string]bool
	version map[string]int
	batches []replBatch
	acked   int
}

// replBatch is one indeterminate batch write: all-or-nothing unless a
// key was rewritten afterwards (vers records the write versions this
// batch installed).
type replBatch struct {
	keys []string
	vals []string
	vers []int
}

func newReplOracle() *replOracle {
	return &replOracle{
		allowed: make(map[string]map[string]bool),
		version: make(map[string]int),
	}
}

func (o *replOracle) ensure(k string) map[string]bool {
	set := o.allowed[k]
	if set == nil {
		set = map[string]bool{"": true} // never written = absent
		o.allowed[k] = set
	}
	return set
}

// ackedWrite collapses the key to exactly one legal value.
func (o *replOracle) ackedWrite(k, v string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.allowed[k] = map[string]bool{v: true}
	o.version[k]++
	o.acked++
}

// indeterminateWrite widens the key's legal set by the attempted value.
func (o *replOracle) indeterminateWrite(k, v string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ensure(k)[v] = true
	o.version[k]++
}

func (o *replOracle) ackedBatch(keys, vals []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, k := range keys {
		o.allowed[k] = map[string]bool{vals[i]: true}
		o.version[k]++
	}
	o.acked++
}

func (o *replOracle) indeterminateBatch(keys, vals []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	b := replBatch{keys: keys, vals: vals, vers: make([]int, len(keys))}
	for i, k := range keys {
		o.ensure(k)[vals[i]] = true
		o.version[k]++
		b.vers[i] = o.version[k]
	}
	o.batches = append(o.batches, b)
}

// verify checks the oracle against reads of the current primary.
func (o *replOracle) verify(get func(key string) (string, bool, error)) []Violation {
	o.mu.Lock()
	defer o.mu.Unlock()
	var vs []Violation
	for k, set := range o.allowed {
		v, found, err := get(k)
		if err != nil {
			vs = append(vs, Violation{Kind: "error", Worker: -1,
				Detail: fmt.Sprintf("verify read %q: %v", k, err)})
			continue
		}
		got := ""
		if found {
			got = v
		}
		if !set[got] {
			kind := "resurrection"
			if len(set) == 1 {
				kind = "durability"
			}
			vs = append(vs, Violation{Kind: kind, Worker: -1,
				Detail: fmt.Sprintf("key %q = %q after failover, legal outcomes %v", k, got, keysOf(set))})
		}
	}
	for _, b := range o.batches {
		current := true
		for i, k := range b.keys {
			if o.version[k] != b.vers[i] {
				current = false // rewritten since; all-or-nothing no longer decidable
				break
			}
		}
		if !current {
			continue
		}
		present := 0
		for i, k := range b.keys {
			v, found, err := get(k)
			if err == nil && found && v == b.vals[i] {
				present++
			}
		}
		if present != 0 && present != len(b.keys) {
			vs = append(vs, Violation{Kind: "atomicity", Worker: -1,
				Detail: fmt.Sprintf("indeterminate batch %v torn: %d/%d keys present", b.keys, present, len(b.keys))})
		}
	}
	return vs
}

func keysOf(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, fmt.Sprintf("%q", k))
	}
	return out
}

// replTopology is the chain's live cluster view, mutated by failovers.
type replTopology struct {
	c        *repl.Cluster
	pn       *repl.PrimaryNode
	replicas map[string]*repl.ReplicaNode
	epoch    uint64
}

const replKeysPerWorker = 4

// runReplChain runs one replication chain.
func runReplChain(opts Options, step int) chainResult {
	seed := mix(opts.Seed, step)
	rng := rand.New(rand.NewSource(seed))
	cfg := sampleReplChain(rng, opts)
	res := chainResult{}

	repro := fmt.Sprintf("nvwal-fuzz -seed %d -step %d -repl", opts.Seed, step)
	if opts.MaxRounds > 0 {
		repro += fmt.Sprintf(" -max-rounds %d", opts.MaxRounds)
	}
	if opts.MaxTxns > 0 {
		repro += fmt.Sprintf(" -max-txns %d", opts.MaxTxns)
	}
	fail := func(round int, v Violation) {
		res.violations = append(res.violations, ViolationReport{
			Step: step, Seed: opts.Seed, Round: round, Chain: cfg.String(),
			Kind: v.Kind, Worker: v.Worker, Detail: v.Detail, Repro: repro,
		})
	}

	names := []string{"n0", "n1", "n2"}
	pcfg := platform.Config{NVRAM: nvram.Config{
		Size:              16 << 20,
		CacheLineSize:     32,
		NVRAMWriteLatency: 500 * time.Nanosecond,
	}}
	cluster, err := repl.NewCluster(pcfg, netsim.Config{
		Latency: 20 * time.Microsecond,
		Jitter:  10 * time.Microsecond,
	}, seed, names...)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "cluster: " + err.Error()})
		return res
	}
	popts := repl.PrimaryOptions{Epoch: 1, AckReplicas: 1, AckTimeout: 150 * time.Millisecond}
	topo := &replTopology{c: cluster, replicas: map[string]*repl.ReplicaNode{}, epoch: 1}
	topo.pn, err = cluster.StartPrimary(names[0], repl.DefaultDBOptions(), popts, server.Options{})
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "start primary: " + err.Error()})
		return res
	}
	if err := topo.pn.DB.CreateTable("kv"); err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "create table: " + err.Error()})
		return res
	}
	for _, name := range names[1:] {
		rn, err := cluster.StartReplica(name, repl.ReplicaOptions{Epoch: 1}, server.Options{})
		if err != nil {
			fail(-1, Violation{Kind: "error", Worker: -1, Detail: "start replica: " + err.Error()})
			return res
		}
		topo.replicas[name] = rn
		topo.pn.Attach(cluster, name)
	}
	defer func() {
		topo.pn.Stop(false)
		for _, rn := range topo.replicas {
			rn.Stop()
		}
	}()

	oracle := newReplOracle()
	opts.logf("chain %d (seed %d): %s", step, seed, cfg)

	for round := 0; round < cfg.rounds; round++ {
		ackedBefore := oracle.acked
		var done atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runReplWorker(cluster, names, oracle, &done, mix(seed, round*1000+w), w, cfg.opsPer)
			}(w)
		}

		// Era phase A: link chaos while the workers write. The crash
		// fires mid-workload — once a sampled fraction of the era's ops
		// have resolved — so in-flight requests straddle the failover.
		chaos := startReplChaos(cluster, names, topo, mix(seed, round*1000+777), cfg.dropMax)
		crashAt := int64(float64(cfg.workers*cfg.opsPer) * (0.2 + 0.4*rng.Float64()))
		deadline := time.Now().Add(2 * time.Second)
		for done.Load() < crashAt && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		chaos.stop()

		// Crash the primary and fail over.
		policy := cfg.policies[rng.Intn(len(cfg.policies))]
		if v, ok := failOver(cluster, topo, policy, rng.Int63()); !ok {
			fail(round, v)
			break
		}

		// Era phase B: more chaos against the NEW primary, workers still
		// running (they rediscover through fencing).
		chaos = startReplChaos(cluster, names, topo, mix(seed, round*1000+888), cfg.dropMax)
		wg.Wait()
		chaos.stop()

		// Quiesce: heal everything, let replicas catch up, then check
		// every invariant against the current primary.
		cluster.Net.HealAll()
		res.txns += oracle.acked - ackedBefore
		target := topo.pn.Repl.Status().Mark
		for name, rn := range topo.replicas {
			if !rn.WaitCaughtUp(target, 10*time.Second) {
				fail(round, Violation{Kind: "liveness", Worker: -1,
					Detail: fmt.Sprintf("replica %s stuck at %d, primary mark %d", name, rn.R.Applied(), target)})
			}
		}
		if len(res.violations) > 0 {
			break
		}
		for _, v := range oracle.verify(func(key string) (string, bool, error) {
			v, found, err := topo.pn.Repl.Get("kv", []byte(key))
			return string(v), found, err
		}) {
			fail(round, v)
		}
		for name, rn := range topo.replicas {
			if derr := rn.R.Degraded(); derr != nil {
				fail(round, Violation{Kind: "divergence", Worker: -1,
					Detail: fmt.Sprintf("replica %s degraded on reliable links: %v", name, derr)})
			}
			if rn.R.Applied() > topo.pn.Repl.Status().Mark {
				fail(round, Violation{Kind: "staleness", Worker: -1,
					Detail: fmt.Sprintf("replica %s applied %d beyond primary mark %d", name, rn.R.Applied(), topo.pn.Repl.Status().Mark)})
			}
			for k := range oracle.allowed {
				pv, pfound, _ := topo.pn.Repl.Get("kv", []byte(k))
				rv, rfound, rerr := rn.R.Get("kv", []byte(k))
				if rerr != nil || rfound != pfound || string(rv) != string(pv) {
					fail(round, Violation{Kind: "staleness", Worker: -1,
						Detail: fmt.Sprintf("replica %s key %q = %q/%v, primary %q/%v (err %v)",
							name, k, rv, rfound, pv, pfound, rerr)})
					break
				}
			}
		}
		res.rounds++
		if len(res.violations) > 0 {
			opts.logf("chain %d era %d: VIOLATION", step, round)
			break
		}
		opts.logf("chain %d era %d: ok (primary %s, epoch %d, %d acked)",
			step, round, topo.pn.Node.Name, topo.epoch, oracle.acked-ackedBefore)
	}
	return res
}

// failOver crash-fails the current primary, promotes the most-caught-up
// replica under the next epoch, and reboots the old primary back in as
// a replica. Returns ok=false with a violation on infrastructure error.
func failOver(c *repl.Cluster, topo *replTopology, policy memsim.FailPolicy, pfSeed int64) (Violation, bool) {
	oldName := topo.pn.Node.Name
	c.IsolateNode(oldName)
	topo.pn.Node.Plat.PowerFail(policy, pfSeed)
	topo.pn.Stop(true)

	var best *repl.ReplicaNode
	for _, rn := range topo.replicas {
		if best == nil || rn.R.Applied() > best.R.Applied() {
			best = rn
		}
	}
	bestName := best.Node.Name
	delete(topo.replicas, bestName)
	best.Stop()
	topo.epoch++
	d, err := best.R.Promote(repl.DefaultDBOptions())
	if err != nil {
		return Violation{Kind: "error", Worker: -1, Detail: "promote: " + err.Error()}, false
	}
	pn, err := c.ServePromoted(bestName, d,
		repl.PrimaryOptions{Epoch: topo.epoch, AckReplicas: 1, AckTimeout: 150 * time.Millisecond},
		server.Options{})
	if err != nil {
		return Violation{Kind: "error", Worker: -1, Detail: "serve promoted: " + err.Error()}, false
	}
	topo.pn = pn
	for name := range topo.replicas {
		pn.Attach(c, name)
	}

	// The old primary reboots and rejoins as a replica: its cursor roots
	// are absent and its incarnation is stale, so it re-seeds from the
	// new primary by construction.
	if err := c.Node(oldName).Plat.Reboot(); err != nil {
		return Violation{Kind: "error", Worker: -1, Detail: "reboot: " + err.Error()}, false
	}
	c.RejoinNode(oldName)
	rn, err := c.StartReplica(oldName, repl.ReplicaOptions{Epoch: topo.epoch}, server.Options{})
	if err != nil {
		return Violation{Kind: "error", Worker: -1, Detail: "rejoin replica: " + err.Error()}, false
	}
	topo.replicas[oldName] = rn
	pn.Attach(c, oldName)
	return Violation{}, true
}

// runReplWorker drives one client through its era budget. Keyspaces are
// per-worker, so the oracle's per-key version bookkeeping is exact.
func runReplWorker(c *repl.Cluster, addrs []string, oracle *replOracle, done *atomic.Int64, seed int64, w, ops int) {
	rng := rand.New(rand.NewSource(seed))
	cli := server.NewClient(c.Dialer(fmt.Sprintf("w%d", w)), addrs, server.ClientOptions{
		RetryBudget: 10,
		RecvTimeout: 30 * time.Millisecond,
		BackoffBase: 200 * time.Microsecond,
		BackoffMax:  3 * time.Millisecond,
		Deadline:    50 * time.Millisecond,
		Seed:        seed,
	})
	defer cli.Close()

	key := func() string {
		return fmt.Sprintf("w%dk%d", w, rng.Intn(replKeysPerWorker))
	}
	for i := 0; i < ops; i++ {
		// A short think time keeps the era open long enough for the
		// chain's mid-workload crash to land between (and inside) ops.
		time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
		val := fmt.Sprintf("w%d.%d.%x", w, i, rng.Int63())
		switch r := rng.Intn(100); {
		case r < 20: // batch: 2-3 distinct keys, one transaction
			perm := rng.Perm(replKeysPerWorker)
			n := 2 + rng.Intn(2)
			keys := make([]string, n)
			vals := make([]string, n)
			bops := make([]server.Op, n)
			for j := 0; j < n; j++ {
				keys[j] = fmt.Sprintf("w%dk%d", w, perm[j])
				vals[j] = fmt.Sprintf("%s.b%d", val, j)
				bops[j] = server.Op{Key: []byte(keys[j]), Value: []byte(vals[j])}
			}
			_, err := cli.Batch("kv", bops)
			recordOutcome(err,
				func() { oracle.ackedBatch(keys, vals) },
				func() { oracle.indeterminateBatch(keys, vals) })
			done.Add(1)
		case r < 35: // delete
			k := key()
			_, err := cli.Delete("kv", []byte(k))
			recordOutcome(err,
				func() { oracle.ackedWrite(k, "") },
				func() { oracle.indeterminateWrite(k, "") })
			done.Add(1)
		default: // put
			k := key()
			_, err := cli.Put("kv", []byte(k), []byte(val))
			recordOutcome(err,
				func() { oracle.ackedWrite(k, val) },
				func() { oracle.indeterminateWrite(k, val) })
			done.Add(1)
		}
	}
}

// recordOutcome maps a client result onto the oracle: success is an
// acked write, an indeterminate error widens the legal set, and a
// determinate error means no attempt was applied (the client only
// reports determinate failure when every attempt was refused before
// execution or cleanly rolled back).
func recordOutcome(err error, acked, indeterminate func()) {
	if err == nil {
		acked()
		return
	}
	var oe *server.OpError
	if errors.As(err, &oe) && oe.Indeterminate {
		indeterminate()
	}
}

// replChaos injects link faults until stopped, then heals exactly what
// it broke (never the chain's own isolations).
type replChaos struct {
	quit chan struct{}
	done chan struct{}
}

func (rc *replChaos) stop() {
	close(rc.quit)
	<-rc.done
}

func startReplChaos(c *repl.Cluster, names []string, topo *replTopology, seed int64, dropMax float64) *replChaos {
	rc := &replChaos{quit: make(chan struct{}), done: make(chan struct{})}
	rng := rand.New(rand.NewSource(seed))
	base := netsim.Config{Latency: 20 * time.Microsecond, Jitter: 10 * time.Microsecond}
	primary := topo.pn.Node.Name
	go func() {
		defer close(rc.done)
		type cut struct{ a, b string }
		var degraded []cut
		var parted []cut
		defer func() {
			for _, l := range degraded {
				c.Net.SetLink(l.a, l.b, base)
			}
			for _, p := range parted {
				c.Net.Heal(p.a, p.b)
			}
		}()
		for {
			select {
			case <-rc.quit:
				return
			case <-time.After(time.Duration(2+rng.Intn(6)) * time.Millisecond):
			}
			switch rng.Intn(3) {
			case 0: // degrade a client link (drops + reordering + latency)
				w := fmt.Sprintf("w%d", rng.Intn(4))
				n := names[rng.Intn(len(names))]
				bad := netsim.Config{
					Latency:     time.Duration(50+rng.Intn(400)) * time.Microsecond,
					Jitter:      100 * time.Microsecond,
					DropRate:    dropMax * rng.Float64(),
					ReorderRate: 0.2 * rng.Float64(),
					CutRate:     0.02 * rng.Float64(),
				}
				c.Net.SetLink(w, n, bad)
				c.Net.SetLink(n, w, bad)
				degraded = append(degraded, cut{w, n}, cut{n, w})
			case 1: // partition one replica's shipping link for a moment
				n := names[rng.Intn(len(names))]
				if n == primary {
					break
				}
				c.Net.Partition(primary, repl.ReplAddr(n))
				parted = append(parted, cut{primary, repl.ReplAddr(n)})
			case 2: // heal one of our partitions early
				if len(parted) > 0 {
					p := parted[len(parted)-1]
					parted = parted[:len(parted)-1]
					c.Net.Heal(p.a, p.b)
				}
			}
		}
	}()
	return rc
}
