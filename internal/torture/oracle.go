// Package torture is a property-based crash-consistency fuzzer for the
// full db/NVWAL stack. It drives randomized workloads — mixed
// read/write transactions, concurrent writers, group-commit batches,
// background checkpoints, heap alloc/free churn — on a simulated
// platform, injects power failures at random operation boundaries and
// mid-operation (via the memsim op-count crash trigger), recovers, and
// checks the survivor against a pure in-memory model oracle.
//
// The oracle enforces three invariants over each crash round:
//
//   - Durability: every transaction whose Commit was acknowledged
//     before the crash instant must be present in the survivor.
//   - Atomicity: the survivor must equal the model state after some
//     whole number of transactions per worker — a torn transaction
//     (some of its writes present, some absent) matches no prefix.
//   - No resurrection: nothing absent from every model prefix —
//     rolled-back transactions, never-written keys — may appear.
//
// A fourth, global check ties the per-worker prefixes together: the
// journal is a single totally-ordered log, so the set of surviving
// transactions must be a prefix of the global commit-sequence order,
// never "transaction 7 survived but transaction 5 (earlier in the log)
// did not".
//
// The media-fault chain mode (Options.Faults) and the asynchronous-
// commit variants (SyncChecksum, §4.2) weaken exactly one invariant:
// durability. Salvage recovery legally truncates the log at the first
// damaged frame, and async commit legally loses acknowledged
// transactions, so History.WeakDurability waives the "acked must
// survive" check. Atomicity, no-resurrection and order stay absolute —
// every salvage path (torn-tail truncation, frozen-damage live drop,
// header rebuild) keeps the survivors a whole-transaction prefix of
// commit order, and anything else is a real bug.
package torture

import (
	"fmt"
	"sort"
	"strings"
)

// Op is one mutation inside a transaction.
type Op struct {
	Key    string
	Value  string // ignored when Delete is set
	Delete bool
}

// Txn is one committed (or commit-attempted) transaction in a round's
// history, as observed by the workload driver.
type Txn struct {
	Worker int
	Index  int    // 1-based per-worker issue order
	Seq    uint64 // global commit sequence (journal order); 0 = unknown
	Acked  bool   // Commit acknowledged before the crash instant
	Ops    []Op
}

// History is everything the oracle knows about one crash round: the
// committed state the round started from and every transaction the
// workers attempted, in per-worker issue order.
type History struct {
	Base    map[string]string
	Txns    []Txn
	Workers int
	// WeakDurability waives the durability invariant: acknowledged
	// transactions may legally be lost (media-fault salvage truncation,
	// SyncChecksum's async commit). Atomicity, no-resurrection and the
	// global order prefix are still enforced.
	WeakDurability bool
}

// Violation is one oracle invariant breach.
type Violation struct {
	Kind   string // "durability", "atomicity", "resurrection", "order", "error"
	Worker int    // -1 when not attributable to one worker
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (worker %d): %s", v.Kind, v.Worker, v.Detail)
}

// WorkerPrefix returns the key prefix owned by a worker. Workers write
// only inside their own keyspace, which is what makes per-worker
// prefix matching sound: restricted to one worker, the totally-ordered
// journal's survivors are a prefix of that worker's issue order.
func WorkerPrefix(worker int) string { return fmt.Sprintf("w%02d/", worker) }

// CounterKey is the per-worker key every committed transaction writes
// its round-stamped index into, making each model prefix state distinct
// (so the survivor matches at most one prefix). The round stamp matters:
// an index-only counter collides with the round's base state whenever a
// transaction's other ops are no-ops against it (deletes of absent
// keys) and the previous round ended on the same index, which would
// count never-durable transactions as survived.
func CounterKey(worker int) string { return WorkerPrefix(worker) + "#" }

// restrict returns the subset of state within a worker's keyspace.
func restrict(state map[string]string, worker int) map[string]string {
	p := WorkerPrefix(worker)
	out := make(map[string]string)
	for k, v := range state {
		if strings.HasPrefix(k, p) {
			out[k] = v
		}
	}
	return out
}

func sameState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// diffState renders a compact difference between two states for
// violation reports.
func diffState(want, got map[string]string) string {
	var parts []string
	keys := make(map[string]bool)
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		w, wok := want[k]
		g, gok := got[k]
		switch {
		case wok && !gok:
			parts = append(parts, fmt.Sprintf("missing %q=%q", k, clip(w)))
		case !wok && gok:
			parts = append(parts, fmt.Sprintf("extra %q=%q", k, clip(g)))
		case w != g:
			parts = append(parts, fmt.Sprintf("%q=%q want %q", k, clip(g), clip(w)))
		}
		if len(parts) >= 4 {
			parts = append(parts, "...")
			break
		}
	}
	return strings.Join(parts, ", ")
}

func clip(s string) string {
	if len(s) > 16 {
		return s[:16] + "…"
	}
	return s
}

// applyTxn applies one transaction's ops to a state in place.
func applyTxn(state map[string]string, t Txn) {
	for _, op := range t.Ops {
		if op.Delete {
			delete(state, op.Key)
		} else {
			state[op.Key] = op.Value
		}
	}
}

// Verify checks a recovered survivor state against the round's history
// and returns every invariant violation found (empty = consistent).
func Verify(h History, survivor map[string]string) []Violation {
	out, _ := verifyMatched(h, survivor)
	return out
}

// verifyMatched is Verify plus the per-worker survived prefix lengths
// (-1 = matched no prefix), which the sharded oracle needs to tie the
// halves of a cross-shard transaction together.
func verifyMatched(h History, survivor map[string]string) ([]Violation, []int) {
	var out []Violation

	// Resurrection of foreign keys: everything in the survivor must lie
	// in some worker's keyspace (the workload writes nowhere else).
	for k := range survivor {
		owned := false
		for w := 0; w < h.Workers; w++ {
			if strings.HasPrefix(k, WorkerPrefix(w)) {
				owned = true
				break
			}
		}
		if !owned {
			out = append(out, Violation{Kind: "resurrection", Worker: -1,
				Detail: fmt.Sprintf("survivor holds key %q outside every worker keyspace", k)})
		}
	}

	// Per-worker prefix matching.
	perWorker := make([][]Txn, h.Workers)
	for _, t := range h.Txns {
		if t.Worker < 0 || t.Worker >= h.Workers {
			out = append(out, Violation{Kind: "error", Worker: t.Worker,
				Detail: fmt.Sprintf("history names worker %d outside [0,%d)", t.Worker, h.Workers)})
			continue
		}
		perWorker[t.Worker] = append(perWorker[t.Worker], t)
	}
	matched := make([]int, h.Workers) // survived prefix length per worker
	for w := 0; w < h.Workers; w++ {
		txns := perWorker[w]
		for i, t := range txns {
			if t.Index != i+1 {
				out = append(out, Violation{Kind: "error", Worker: w,
					Detail: fmt.Sprintf("history gap: txn %d found at position %d", t.Index, i+1)})
				return out, matched
			}
		}
		got := restrict(survivor, w)
		state := restrict(h.Base, w)
		acked := 0
		m := -1
		if sameState(state, got) {
			m = 0
		}
		for i, t := range txns {
			applyTxn(state, t)
			if sameState(state, got) {
				m = i + 1 // counter key makes prefix states distinct
			}
			if t.Acked {
				acked = i + 1
			}
		}
		switch {
		case m < 0:
			// The survivor matches no whole-transaction prefix: a torn
			// transaction or corrupted replay. Report against the full
			// model (all txns applied) for the clearest diff.
			out = append(out, Violation{Kind: "atomicity", Worker: w,
				Detail: fmt.Sprintf("survivor matches no txn prefix (0..%d); vs full state: %s",
					len(txns), diffState(state, got))})
		case m < acked && !h.WeakDurability:
			out = append(out, Violation{Kind: "durability", Worker: w,
				Detail: fmt.Sprintf("acknowledged txn %d lost: survivor reflects only %d/%d txns",
					acked, m, len(txns))})
		}
		matched[w] = m
	}

	// Global prefix: the surviving transactions must form a prefix of
	// the journal's commit-sequence order.
	var maxSurvived uint64
	for w := 0; w < h.Workers; w++ {
		for i := 0; i < matched[w] && i < len(perWorker[w]); i++ {
			if s := perWorker[w][i].Seq; s > maxSurvived {
				maxSurvived = s
			}
		}
	}
	for w := 0; w < h.Workers; w++ {
		if matched[w] < 0 {
			continue
		}
		for i := matched[w]; i < len(perWorker[w]); i++ {
			t := perWorker[w][i]
			if t.Seq != 0 && t.Seq < maxSurvived {
				out = append(out, Violation{Kind: "order", Worker: w,
					Detail: fmt.Sprintf("txn %d (seq %d) lost although a later commit (seq %d) survived",
						t.Index, t.Seq, maxSurvived)})
			}
		}
	}
	return out, matched
}
