package torture

import "testing"

// TestFuzzSlowShortRun drives a few gray-failure chains: a 3-node
// replicated cluster where every storage layer and every link runs
// seeded slow faults but nothing ever fail-stops. Because no write can
// be legally lost, the oracle is strict (acked writes survive exactly)
// and adds the liveness bounds: no client op may exceed the real-time
// bound, and the cluster must converge after HealAll.
func TestFuzzSlowShortRun(t *testing.T) {
	rep := Run(Options{Seed: 21, Steps: 3, Step: -1, Slow: true, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("slow fuzzer committed no transactions")
	}
	t.Logf("chains=%d txns=%d elapsed=%s", rep.Chains, rep.Txns, rep.Elapsed)
}
