package torture

import (
	"strings"
	"testing"
)

// mkState builds a state map from alternating key/value pairs.
func mkState(kv ...string) map[string]string {
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// txn builds a committed-transaction record whose ops set the given
// key/value pairs plus the mandatory per-worker counter write.
func txn(worker, index int, seq uint64, acked bool, kv ...string) Txn {
	t := Txn{Worker: worker, Index: index, Seq: seq, Acked: acked}
	for i := 0; i+1 < len(kv); i += 2 {
		t.Ops = append(t.Ops, Op{Key: kv[i], Value: kv[i+1]})
	}
	t.Ops = append(t.Ops, Op{Key: CounterKey(worker), Value: string(rune('0' + index))})
	return t
}

// applyAll replays txns over a copy of base (test helper for building
// expected survivor states).
func applyAll(base map[string]string, txns ...Txn) map[string]string {
	out := make(map[string]string, len(base))
	for k, v := range base {
		out[k] = v
	}
	for _, t := range txns {
		applyTxn(out, t)
	}
	return out
}

func TestOracleTable(t *testing.T) {
	t1 := txn(0, 1, 1, true, "w00/a", "1")
	t2 := txn(0, 2, 2, true, "w00/b", "2")
	t3 := txn(0, 3, 3, false, "w00/a", "3") // in-flight at the crash
	u1 := txn(1, 1, 4, true, "w01/x", "9")

	cases := []struct {
		name     string
		hist     History
		survivor map[string]string
		wantKind string // "" = must pass
	}{
		{
			name:     "empty history empty survivor",
			hist:     History{Base: mkState(), Workers: 1},
			survivor: mkState(),
		},
		{
			name:     "all acked survived",
			hist:     History{Base: mkState(), Workers: 1, Txns: []Txn{t1, t2}},
			survivor: applyAll(mkState(), t1, t2),
		},
		{
			name:     "in-flight txn may be present",
			hist:     History{Base: mkState(), Workers: 1, Txns: []Txn{t1, t2, t3}},
			survivor: applyAll(mkState(), t1, t2, t3),
		},
		{
			name:     "in-flight txn may be absent",
			hist:     History{Base: mkState(), Workers: 1, Txns: []Txn{t1, t2, t3}},
			survivor: applyAll(mkState(), t1, t2),
		},
		{
			name:     "acked txn lost",
			hist:     History{Base: mkState(), Workers: 1, Txns: []Txn{t1, t2}},
			survivor: applyAll(mkState(), t1),
			wantKind: "durability",
		},
		{
			name: "torn transaction",
			hist: History{Base: mkState(), Workers: 1, Txns: []Txn{t1, t2}},
			// t2's data write survived without its counter write.
			survivor: mkState("w00/a", "1", "w00/b", "2", CounterKey(0), "1"),
			wantKind: "atomicity",
		},
		{
			name:     "foreign key resurrected",
			hist:     History{Base: mkState(), Workers: 1, Txns: []Txn{t1}},
			survivor: applyAll(mkState("zz/rogue", "boo"), t1),
			wantKind: "resurrection",
		},
		{
			name: "rolled-back write leaked",
			hist: History{Base: mkState(), Workers: 1, Txns: []Txn{t1}},
			// A key the model never committed appears alongside t1.
			survivor: applyAll(mkState("w00/leak", "oops"), t1),
			wantKind: "atomicity",
		},
		{
			name: "global prefix broken",
			hist: History{Base: mkState(), Workers: 2, Txns: []Txn{t1, u1}},
			// u1 (seq 4) survived while t1 (seq 1, acked) was lost:
			// both a durability loss and an ordering violation.
			survivor: applyAll(mkState(), u1),
			wantKind: "order",
		},
		{
			name:     "two workers consistent",
			hist:     History{Base: mkState(), Workers: 2, Txns: []Txn{t1, t2, u1}},
			survivor: applyAll(mkState(), t1, t2, u1),
		},
		{
			name: "base carries forward untouched",
			hist: History{Base: mkState("w00/old", "keep", CounterKey(0), "0"), Workers: 1,
				Txns: []Txn{txn(0, 1, 1, true, "w00/new", "n")}},
			survivor: mkState("w00/old", "keep", "w00/new", "n", CounterKey(0), "1"),
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := Verify(tc.hist, tc.survivor)
			if tc.wantKind == "" {
				if len(vs) != 0 {
					t.Fatalf("expected clean verification, got %v", vs)
				}
				return
			}
			found := false
			for _, v := range vs {
				if v.Kind == tc.wantKind {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected a %q violation, got %v", tc.wantKind, vs)
			}
		})
	}
}

func TestOracleCounterMakesPrefixesUnique(t *testing.T) {
	// Two txns writing the same key to the same value are still
	// distinguishable via the counter, so a lost second txn is caught.
	a := txn(0, 1, 1, true, "w00/k", "same")
	b := txn(0, 2, 2, true, "w00/k", "same")
	hist := History{Base: mkState(), Workers: 1, Txns: []Txn{a, b}}
	vs := Verify(hist, applyAll(mkState(), a))
	if len(vs) == 0 || vs[0].Kind != "durability" {
		t.Fatalf("expected durability violation for lost idempotent txn, got %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "durability", Worker: 3, Detail: "gone"}
	if !strings.Contains(v.String(), "durability") || !strings.Contains(v.String(), "gone") {
		t.Fatalf("unexpected rendering: %s", v.String())
	}
}
