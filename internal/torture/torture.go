package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/heapo"
	"repro/internal/memsim"
	"repro/internal/nvram"
	"repro/internal/platform"
)

// Options configures a fuzzing run.
type Options struct {
	// Seed is the master seed; every chain derives its own seed from it.
	Seed int64
	// Steps bounds the number of chains (0 = until Duration expires).
	Steps int
	// Step, when >= 0, replays exactly one chain — the deterministic
	// repro mode printed with every violation.
	Step int
	// Duration is the wall-clock budget (0 = until Steps chains ran).
	Duration time.Duration
	// Workers forces the writer count per chain (0 = randomized).
	Workers int
	// Bug enables the deliberately broken commit-mark ordering
	// (core.Config.UnsafeEarlyCommitMark) to prove the fuzzer catches
	// ordering violations.
	Bug bool
	// Faults enables the media-fault chain mode: randomized NVRAM
	// damage (bit flips at power failure, stuck lines, uncorrectable
	// reads) confined to the heap's data pages, plus transient EIO and
	// torn in-flight sectors on the block device under the database
	// file. Salvage recovery may legally drop acknowledged
	// transactions, so the durability invariant is waived
	// (History.WeakDurability); atomicity, no-resurrection and order
	// stay absolute, recovery must never hard-fail the open, and the
	// SyncChecksum variants join the rotation.
	Faults bool
	// MaxRounds, when > 0, clamps every chain's sampled crash-round
	// count. Rounds are a deterministic prefix of the chain, so the
	// clamp is the shrinker's coarse handle (see Minimize).
	MaxRounds int
	// MaxTxns, when > 0, clamps the per-round transaction budget of
	// every worker — a prefix of each worker's deterministic
	// transaction stream, the shrinker's fine handle.
	MaxTxns int
	// Shards, when > 1, runs sharded chains instead: the workload drives
	// a shard.DB (N engines over one shared persistence domain) with a
	// mix of shard-local and cross-shard transactions, random crash
	// windows that can land mid-2PC, and deterministic coordinator
	// crashes at protocol stages. Incompatible with Bug, Faults and
	// HeapPages (see sharded.go).
	Shards int
	// MVCC runs overlapping-keyspace chains instead: every worker writes
	// the SAME shared keyspace through BeginConcurrent sessions (plus a
	// fraction of legacy transactions), ErrConflict is a legal retried
	// outcome, and recovery is checked by the seq-order oracle
	// (VerifyMVCC) rather than per-worker prefix matching, which is
	// unsound when keyspaces overlap. Incompatible with Bug, Faults and
	// Shards; composes with HeapPages (backpressure outcomes stay legal).
	MVCC bool
	// Repl runs replication chains instead: a 3-node cluster (primary +
	// two WAL-shipping replicas) serving concurrent clients through the
	// simulated network while the chain degrades links, partitions the
	// shipping stream, crash-fails primaries and promotes replicas under
	// new fencing epochs. Outcome-based oracle (see repl.go): acked
	// writes survive failover, indeterminate writes are all-or-nothing,
	// quiesced replicas converge exactly. Incompatible with every other
	// mode; chains are concurrent by construction, so Minimize reports
	// violations unshrunk.
	Repl bool
	// Slow runs gray-failure chains instead: the -repl 3-node topology
	// with every layer's slow-fault injection armed (NVRAM remap
	// stalls, device GC pauses, fsync hangs, link bufferbloat) and the
	// primary's ack-latency quarantine active — but nothing
	// fail-stops. The oracle adds LIVENESS to -repl's safety checks:
	// every client op must resolve within a bounded real time, and the
	// healed cluster must converge (quarantined replicas must resync
	// and re-admit). Incompatible with every other mode (see slow.go).
	Slow bool
	// HeapPages, when > 0, shrinks the platform's NVRAM heap to that
	// many pages — small enough that ordinary rounds exhaust it — and
	// arms the backpressure machinery: chains get a short CommitTimeout
	// and a tight checkpoint limit, and workers treat ErrBusy (clean
	// rolled-back stall) as a legal outcome that never enters the
	// oracle history. A raw heapo.ErrNoSpace remains a violation.
	HeapPages int
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// Report summarizes a run.
type Report struct {
	Chains     int               `json:"chains"`
	Rounds     int               `json:"rounds"`
	Txns       int               `json:"txns"`
	Violations []ViolationReport `json:"violations"`
	Elapsed    time.Duration     `json:"elapsed_ns"`
	// Damaged counts rounds whose salvage report observed media damage
	// (faults mode); Degraded counts chains that ended early because
	// recovery flagged the database file and opened read-only.
	Damaged  int `json:"damaged_rounds,omitempty"`
	Degraded int `json:"degraded_chains,omitempty"`
	// Minimized is the shrunken repro for the first violation, when the
	// caller ran Minimize.
	Minimized *ViolationReport `json:"minimized,omitempty"`
}

// ViolationReport is one oracle violation with its replay coordinates.
type ViolationReport struct {
	Step   int    `json:"step"`
	Seed   int64  `json:"seed"`
	Round  int    `json:"round"`
	Chain  string `json:"chain"`
	Kind   string `json:"kind"`
	Worker int    `json:"worker"`
	Detail string `json:"detail"`
	Repro  string `json:"repro"`
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// mix derives a chain seed from the master seed and step index
// (splitmix64 finalizer, so adjacent steps decorrelate).
func mix(seed int64, step int) int64 {
	z := uint64(seed) + uint64(step)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes chains until the step/duration budget is exhausted and
// returns the aggregate report. A violation stops the run immediately:
// every failure is a real finding with a printed repro.
func Run(opts Options) Report {
	start := time.Now()
	rep := Report{}
	step := 0
	if opts.Step >= 0 && opts.Steps == 0 && opts.Duration == 0 {
		opts.Steps = 1
	}
	if opts.Step >= 0 {
		step = opts.Step
	}
	for n := 0; ; n++ {
		if opts.Steps > 0 && n >= opts.Steps {
			break
		}
		if opts.Duration > 0 && time.Since(start) >= opts.Duration {
			break
		}
		var res chainResult
		switch {
		case opts.Slow:
			res = runSlowChain(opts, step+n)
		case opts.Repl:
			res = runReplChain(opts, step+n)
		case opts.Shards > 1:
			res = runShardedChain(opts, step+n)
		case opts.MVCC:
			res = runMVCCChain(opts, step+n)
		default:
			res = runChain(opts, step+n)
		}
		rep.Chains++
		rep.Rounds += res.rounds
		rep.Txns += res.txns
		rep.Damaged += res.damaged
		if res.degraded {
			rep.Degraded++
		}
		if len(res.violations) > 0 {
			rep.Violations = append(rep.Violations, res.violations...)
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// newChainPlatform builds a chain's platform: the Tuna profile, or —
// in tiny-heap mode — a default platform whose NVRAM holds exactly
// Options.HeapPages heap pages.
func newChainPlatform(opts Options) (*platform.Platform, error) {
	if opts.HeapPages > 0 {
		return platform.New(platform.Config{
			NVRAM: nvram.Config{Size: heapo.SizeForPages(opts.HeapPages)},
		})
	}
	return platform.NewTuna()
}

// chainCfg is one chain's sampled configuration.
type chainCfg struct {
	label       string
	variant     core.Config
	workers     int
	groupCommit int
	bgCkpt      bool
	churn       bool
	reader      bool
	rounds      int
	ckptLimit   int
	policies    []memsim.FailPolicy
	// Faults mode: sampled media-fault configs (Ranges filled in by
	// runChain once the platform's heap range is known) and the
	// background scrubber cadence (0 = off).
	nvFaults   memsim.FaultConfig
	devFaults  blockdev.FaultConfig
	scrubEvery int
}

// sampleChain draws a chain configuration. Chains with one worker and
// no auxiliary goroutines are fully deterministic (single goroutine on
// a virtual clock), so they replay exactly; concurrent chains trade
// exact replay for interleaving coverage.
func sampleChain(rng *rand.Rand, opts Options) chainCfg {
	var variants []core.NamedConfig
	if opts.Bug {
		// The planted bug only affects lazy-sync commit ordering.
		variants = []core.NamedConfig{
			{Name: "LS", Cfg: core.VariantLS()},
			{Name: "LS+Diff", Cfg: core.VariantLSDiff()},
			{Name: "UH+LS", Cfg: core.VariantUHLS()},
			{Name: "UH+LS+Diff", Cfg: core.VariantUHLSDiff()},
		}
	} else {
		// SyncChecksum variants are excluded from the strict rotation:
		// asynchronous commit may legally lose acknowledged transactions
		// (§4.2), which the durability invariant would misreport. Faults
		// mode waives durability anyway, so there they join in.
		variants = []core.NamedConfig{
			{Name: "E", Cfg: core.VariantE()},
			{Name: "LS", Cfg: core.VariantLS()},
			{Name: "LS+Diff", Cfg: core.VariantLSDiff()},
			{Name: "UH+LS", Cfg: core.VariantUHLS()},
			{Name: "UH+LS+Diff", Cfg: core.VariantUHLSDiff()},
			{Name: "SP", Cfg: core.VariantSP()},
			{Name: "EP", Cfg: core.VariantEP()},
		}
		if opts.Faults {
			variants = append(variants,
				core.NamedConfig{Name: "CS+Diff", Cfg: core.VariantCSDiff()},
				core.NamedConfig{Name: "UH+CS+Diff", Cfg: core.VariantUHCSDiff()},
			)
		}
	}
	v := variants[rng.Intn(len(variants))]

	cfg := chainCfg{
		label:   v.Name,
		variant: v.Cfg,
		rounds:  3 + rng.Intn(4),
	}
	cfg.variant.UnsafeEarlyCommitMark = opts.Bug

	if opts.Workers > 0 {
		cfg.workers = opts.Workers
	} else if rng.Intn(10) < 4 {
		cfg.workers = 1 // deterministic-replay chains
	} else {
		cfg.workers = 2 + rng.Intn(3)
	}
	if cfg.workers > 1 {
		switch rng.Intn(3) {
		case 0:
			cfg.groupCommit = 1
		case 1:
			cfg.groupCommit = 2
		default:
			cfg.groupCommit = cfg.workers
		}
		cfg.bgCkpt = rng.Intn(2) == 0
		cfg.churn = rng.Intn(2) == 0
		cfg.reader = rng.Intn(2) == 0
	} else {
		cfg.groupCommit = 1
	}

	if opts.Bug {
		// Keep crash windows open: background checkpoints and heap
		// churn issue persist barriers that would legally re-persist
		// the queued-but-unpersisted frames the bug leaves behind.
		cfg.bgCkpt = false
		cfg.churn = false
		cfg.ckptLimit = 1 << 20
		cfg.policies = []memsim.FailPolicy{memsim.FailDropAll, memsim.FailAdversarial}
	} else {
		cfg.ckptLimit = 24 + rng.Intn(120)
		cfg.policies = []memsim.FailPolicy{
			memsim.FailDropAll, memsim.FailKeepCompleted, memsim.FailAdversarial,
		}
	}
	if opts.HeapPages > 0 {
		// A tiny heap cannot hold a hundred log frames: keep the limit
		// tight so routine rounds checkpoint, and let the watermarks and
		// commit-side retries carry the overload.
		cfg.ckptLimit = 4 + rng.Intn(12)
	}

	if opts.Faults {
		// NVRAM damage lands only on the heap's data pages (log blocks
		// and header), sparing allocator metadata — the fault model's
		// scope (DESIGN.md §13). The bit-flip rate is the acceptance
		// anchor; stuck lines and read errors rotate in.
		cfg.nvFaults = memsim.FaultConfig{Seed: rng.Int63(), BitFlipRate: 1e-4}
		if rng.Intn(3) == 0 {
			cfg.nvFaults.StuckLineRate = 1e-3
		}
		if rng.Intn(3) == 0 {
			cfg.nvFaults.ReadErrorRate = 1e-3
		}
		// Block-device faults stay detectable: transient EIO (absorbed
		// by the db layer's bounded retry) and torn in-flight sectors
		// (always rewritten by checkpoint recovery). Short writes are
		// deliberately excluded — silently acknowledged partial programs
		// are undetectable without page checksums the format doesn't
		// have, so no oracle could pass against them.
		cfg.devFaults = blockdev.FaultConfig{
			Seed:         rng.Int63(),
			ReadEIORate:  0.002,
			WriteEIORate: 0.002,
			SyncEIORate:  0.001,
		}
		if rng.Intn(2) == 0 {
			cfg.devFaults.TornWriteRate = 0.2
		}
		// The scrubber only on concurrent chains: its goroutine's NVRAM
		// reads would cost single-worker chains their exact replay.
		if cfg.workers > 1 && rng.Intn(2) == 0 {
			cfg.scrubEvery = 4 + rng.Intn(12)
		}
	}
	if opts.MaxRounds > 0 && cfg.rounds > opts.MaxRounds {
		cfg.rounds = opts.MaxRounds
	}
	return cfg
}

func (c chainCfg) String() string {
	s := fmt.Sprintf("%s w=%d gc=%d bg=%t churn=%t rd=%t rounds=%d ckpt=%d",
		c.label, c.workers, c.groupCommit, c.bgCkpt, c.churn, c.reader, c.rounds, c.ckptLimit)
	if c.nvFaults.BitFlipRate > 0 || c.devFaults.ReadEIORate > 0 {
		s += fmt.Sprintf(" flip=%g stuck=%g rerr=%g torn=%g scrub=%d",
			c.nvFaults.BitFlipRate, c.nvFaults.StuckLineRate, c.nvFaults.ReadErrorRate,
			c.devFaults.TornWriteRate, c.scrubEvery)
	}
	return s
}

type chainResult struct {
	rounds     int
	txns       int
	damaged    int  // rounds whose salvage report observed media damage
	degraded   bool // chain ended in degraded read-only mode
	violations []ViolationReport
}

func policyName(p memsim.FailPolicy) string {
	switch p {
	case memsim.FailDropAll:
		return "drop-all"
	case memsim.FailKeepCompleted:
		return "keep-completed"
	default:
		return "adversarial"
	}
}

// runChain runs one crash chain: open a fresh platform, then repeat
// (workload with an armed crash → power fail → reboot → recover →
// oracle check) for the configured number of rounds, carrying the
// survivor forward as the next round's base state.
func runChain(opts Options, step int) chainResult {
	seed := mix(opts.Seed, step)
	rng := rand.New(rand.NewSource(seed))
	cfg := sampleChain(rng, opts)
	res := chainResult{}

	repro := fmt.Sprintf("nvwal-fuzz -seed %d -step %d", opts.Seed, step)
	if opts.Bug {
		repro += " -bug"
	}
	if opts.Faults {
		repro += " -faults"
	}
	if opts.MaxRounds > 0 {
		repro += fmt.Sprintf(" -max-rounds %d", opts.MaxRounds)
	}
	if opts.MaxTxns > 0 {
		repro += fmt.Sprintf(" -max-txns %d", opts.MaxTxns)
	}
	if opts.HeapPages > 0 {
		repro += fmt.Sprintf(" -heap-pages %d", opts.HeapPages)
	}
	fail := func(round int, v Violation) {
		res.violations = append(res.violations, ViolationReport{
			Step: step, Seed: opts.Seed, Round: round, Chain: cfg.String(),
			Kind: v.Kind, Worker: v.Worker, Detail: v.Detail, Repro: repro,
		})
	}

	plat, err := newChainPlatform(opts)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "platform: " + err.Error()})
		return res
	}
	if opts.Faults {
		// Damage scope: the heap's data pages (log blocks and the NVWAL
		// header) for NVRAM faults, the whole device for block faults.
		// Both persist across every PowerFail/Reboot of the chain.
		start, end := plat.Heap.HeapRange()
		nf := cfg.nvFaults
		nf.Ranges = []memsim.AddrRange{{Start: start, End: end}}
		plat.NVRAM.InjectFaults(nf)
		plat.Flash.InjectFaults(cfg.devFaults)
	}
	dbOpts := db.Options{
		Journal:              db.JournalNVWAL,
		NVWAL:                cfg.variant,
		Concurrent:           true,
		GroupCommit:          cfg.groupCommit,
		BackgroundCheckpoint: cfg.bgCkpt,
		CheckpointLimit:      cfg.ckptLimit,
		ScrubEvery:           cfg.scrubEvery,
	}
	if opts.HeapPages > 0 {
		// Tiny-heap chains stall under backpressure; the deadline keeps a
		// saturated chain from hanging a fuzz run (ErrBusy is a legal
		// worker outcome, see runWorkload).
		dbOpts.CommitTimeout = 250 * time.Millisecond
	}
	d, err := db.Open(plat, "fuzz", dbOpts)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "open: " + err.Error()})
		return res
	}
	if err := d.CreateTable("t"); err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "create table: " + err.Error()})
		return res
	}

	base := map[string]string{}
	window := int64(2500)
	opts.logf("chain %d (seed %d): %s", step, seed, cfg)

	for round := 0; round < cfg.rounds; round++ {
		if opts.Faults {
			// Anchor the oracle's floor. The live log carries prior
			// rounds' frames across crashes, and a bit flip in one of
			// those legally truncates salvage below this round's base
			// state — a loss the per-round oracle would misread as an
			// atomicity violation. Checkpointing at the round boundary
			// moves the base into the database file, which NVRAM faults
			// cannot reach, so truncation can only drop current-round
			// transactions and "base keys missing" stays a real finding.
			if err := d.Checkpoint(); err != nil {
				if errors.Is(err, db.ErrDegraded) {
					opts.logf("chain %d round %d: anchor checkpoint hit degraded mode (%v)",
						step, round, err)
					res.degraded = true
					d.Abandon()
					return res
				}
				fail(round, Violation{Kind: "error", Worker: -1,
					Detail: "anchor checkpoint: " + err.Error()})
				return res
			}
		}
		policy := cfg.policies[rng.Intn(len(cfg.policies))]
		armAfter := 1 + rng.Int63n(window)
		pfSeed := rng.Int63()
		txnsPer := 3 + rng.Intn(8)
		if opts.MaxTxns > 0 && txnsPer > opts.MaxTxns {
			txnsPer = opts.MaxTxns
		}
		opStart := plat.OpCount()

		plat.ArmCrash(armAfter, policy, pfSeed)
		hist, wvs := runWorkload(d, plat, cfg, base, seed, round, txnsPer)
		res.txns += len(hist.Txns)

		if d.Degraded() != nil && opts.HeapPages > 0 {
			// Provable exhaustion latched the engine read-only mid-round.
			// That is a sanctioned tiny-heap outcome, and the crash/reboot
			// below clears the latch — committed state must still survive,
			// which the oracle checks as usual.
			res.degraded = true
		}
		d.Abandon()
		plat.PowerFail(policy, pfSeed)
		if err := plat.Reboot(); err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "reboot: " + err.Error()})
			return res
		}
		d, err = db.Open(plat, "fuzz", dbOpts)
		if err != nil {
			// Media faults may legally damage the database file beyond
			// the log's ability to repair it — recovery then still opens,
			// read-only, with a salvage report saying why. Anything else,
			// and any hard error at all, is a real finding.
			if opts.Faults && errors.Is(err, db.ErrDegraded) && d != nil {
				if rep := d.Salvage(); rep == nil || !rep.DBFileDamaged {
					fail(round, Violation{Kind: "error", Worker: -1,
						Detail: fmt.Sprintf("degraded open without a db-damage salvage report: %s", rep)})
				}
				opts.logf("chain %d round %d (%s): degraded read-only (%s)",
					step, round, policyName(policy), d.Salvage())
				res.degraded = true
				d.Abandon()
				return res
			}
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "recovery open: " + err.Error()})
			return res
		}
		if opts.Faults {
			rep := d.Salvage()
			if rep == nil {
				fail(round, Violation{Kind: "error", Worker: -1,
					Detail: "recovery of an existing log produced no salvage report"})
				return res
			}
			if rep.Damaged() {
				res.damaged++
			}
			opts.logf("chain %d round %d (%s): %s", step, round, policyName(policy), rep)
		}
		if !d.HasTable("t") {
			// Sound even under waived durability: the round-boundary
			// anchor checkpoint put the table in the database file,
			// which NVRAM faults cannot reach.
			fail(round, Violation{Kind: "durability", Worker: -1,
				Detail: "table created before the crash window vanished"})
			return res
		}
		survivor := map[string]string{}
		err = d.Scan("t", func(k, v []byte) bool {
			survivor[string(k)] = string(v)
			return true
		})
		if err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "survivor scan: " + err.Error()})
			return res
		}
		if err := d.Check(); err != nil {
			fail(round, Violation{Kind: "atomicity", Worker: -1, Detail: "btree check: " + err.Error()})
			return res
		}

		for _, v := range wvs {
			fail(round, v)
		}
		// Salvage truncation (faults mode) and async commit (SyncChecksum)
		// legally lose acked transactions; the other three invariants
		// stay absolute.
		hist.WeakDurability = opts.Faults || cfg.variant.Sync == core.SyncChecksum
		for _, v := range Verify(hist, survivor) {
			fail(round, v)
		}
		res.rounds++
		if len(res.violations) > 0 {
			// TORTURE_DEBUG dumps the evidence a violation verdict rests
			// on — salvage events, the full history with seq/acked, and
			// the survivor vs base states — enough to separate a real
			// invariant breach from an oracle soundness gap without
			// re-instrumenting (both past oracle bugs were found this way).
			if os.Getenv("TORTURE_DEBUG") != "" {
				if rep := d.Salvage(); rep != nil {
					for _, ev := range rep.Events {
						opts.logf("DBG salvage event: %s", ev)
					}
				}
				for _, t := range hist.Txns {
					opts.logf("DBG txn w=%d idx=%d seq=%d acked=%v ops=%d", t.Worker, t.Index, t.Seq, t.Acked, len(t.Ops))
				}
				keys := make([]string, 0, len(survivor))
				for k := range survivor {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					opts.logf("DBG surv %q=%q", k, clip(survivor[k]))
				}
				bkeys := make([]string, 0, len(base))
				for k := range base {
					bkeys = append(bkeys, k)
				}
				sort.Strings(bkeys)
				for _, k := range bkeys {
					opts.logf("DBG base %q=%q", k, clip(base[k]))
				}
			}
			opts.logf("chain %d round %d (%s): VIOLATION", step, round, policyName(policy))
			d.Abandon()
			return res
		}

		base = survivor
		if used := plat.OpCount() - opStart; used > 300 {
			window = used
		}
	}
	_ = d.Close()
	return res
}

// runWorkload drives one round's workload with the crash trigger armed:
// cfg.workers writer goroutines over disjoint keyspaces, plus optional
// heap churn and snapshot readers. It returns when every goroutine has
// finished — mid-operation crash semantics come from the armed trigger
// freezing the durable image while execution continues.
func runWorkload(d *db.DB, plat *platform.Platform, cfg chainCfg,
	base map[string]string, seed int64, round, txnsPer int) (History, []Violation) {

	hist := History{Base: base, Workers: cfg.workers}
	var mu sync.Mutex // guards hist.Txns and violations
	var violations []Violation
	var wg sync.WaitGroup

	stop := make(chan struct{})
	if cfg.churn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(mix(seed, round*1000+901)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				blk, err := plat.Heap.NVPreMalloc(4096 * (1 + crng.Intn(2)))
				if err != nil {
					continue
				}
				if crng.Intn(2) == 0 {
					if err := plat.Heap.NVMallocSetUsedFlag(blk); err == nil {
						_ = plat.Heap.NVFree(blk)
					}
				} else {
					_ = plat.Heap.NVFree(blk)
				}
			}
		}()
	}
	if cfg.reader {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rtx, err := d.BeginRead()
				if err != nil {
					continue
				}
				_ = rtx.Scan("t", func(k, v []byte) bool { return true })
				rtx.Close()
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(mix(seed, round*1000+w)))
			// The worker's private model of its own keyspace: base plus
			// every transaction it has issued (journal total order means
			// its own writes are visible to it after commit).
			model := restrict(base, w)
			committed := 0
			for i := 0; i < txnsPer; i++ {
				rollback := wrng.Intn(100) < 15
				idx := committed + 1
				ops := genOps(wrng, w, round, idx)
				tx, err := d.Begin()
				if err != nil {
					// Backpressure outcomes are legal on a tiny heap: ErrBusy
					// means the admission stall hit its deadline (nothing
					// started — try the next transaction), ErrDegraded means
					// the engine latched read-only (stop writing). A raw
					// heapo.ErrNoSpace still falls through to the violation.
					if errors.Is(err, db.ErrBusy) {
						continue
					}
					if errors.Is(err, db.ErrDegraded) {
						return
					}
					mu.Lock()
					if !plat.CrashTriggered() {
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "begin: " + err.Error()})
					}
					mu.Unlock()
					return
				}
				bad := false
				for _, op := range ops {
					if op.Delete {
						_, err = tx.Delete("t", []byte(op.Key))
					} else {
						err = tx.Insert("t", []byte(op.Key), []byte(op.Value))
					}
					if err != nil {
						bad = true
						break
					}
				}
				if !bad && wrng.Intn(2) == 0 {
					// Read-your-writes check inside the transaction.
					k := randKey(wrng, w)
					want, wantOK := expect(model, ops, k)
					got, gotOK, gerr := tx.Get("t", []byte(k))
					if gerr == nil && (gotOK != wantOK || (wantOK && string(got) != want)) {
						if !plat.CrashTriggered() {
							mu.Lock()
							violations = append(violations, Violation{Kind: "error", Worker: w,
								Detail: fmt.Sprintf("read-your-writes mismatch on %q", k)})
							mu.Unlock()
						}
					}
				}
				if bad || rollback {
					tx.Rollback()
					if bad && !plat.CrashTriggered() {
						mu.Lock()
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "txn op: " + err.Error()})
						mu.Unlock()
						return
					}
					continue
				}
				err = tx.Commit()
				if err != nil && (errors.Is(err, db.ErrBusy) || errors.Is(err, db.ErrDegraded)) {
					// Clean backpressure failure: ErrLogFull is pre-mutation,
					// so nothing of this transaction reached the journal —
					// it is a rollback, not a ghost, and stays out of the
					// oracle history. ErrBusy retries; ErrDegraded ends the
					// worker (the engine is read-only until the next reboot).
					if errors.Is(err, db.ErrDegraded) {
						return
					}
					continue
				}
				if err != nil && !errors.Is(err, db.ErrCheckpointDeferred) {
					if !plat.CrashTriggered() {
						mu.Lock()
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "commit: " + err.Error()})
						mu.Unlock()
					}
					// Post-crash ghost failure: the outcome is uncertain;
					// record the txn as unacknowledged so the oracle treats
					// it as may-be-either.
					mu.Lock()
					hist.Txns = append(hist.Txns, Txn{Worker: w, Index: idx, Ops: ops})
					mu.Unlock()
					return
				}
				// Acked iff the commit completed before the crash instant
				// froze the durable image; checking after Commit returns
				// can only under-claim (safe direction).
				acked := !plat.CrashTriggered()
				committed = idx
				for _, op := range ops {
					if op.Delete {
						delete(model, op.Key)
					} else {
						model[op.Key] = op.Value
					}
				}
				mu.Lock()
				hist.Txns = append(hist.Txns, Txn{
					Worker: w, Index: idx, Seq: tx.Seq(), Acked: acked, Ops: ops,
				})
				mu.Unlock()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	return hist, violations
}

const keysPerWorker = 10

func randKey(rng *rand.Rand, worker int) string {
	return fmt.Sprintf("%sk%02d", WorkerPrefix(worker), rng.Intn(keysPerWorker))
}

// genOps builds one transaction's mutations inside the worker keyspace,
// always ending with the counter write that makes prefix states unique.
// The counter value is stamped with the round as well as the index:
// without the round, a delete-heavy transaction whose other ops are all
// no-ops against the round's base (deletes of absent keys) can land the
// model back on the base state exactly when the previous round also
// ended on the same index — and the oracle would then count transactions
// as survived that never became durable, turning legal weak-durability
// losses elsewhere into phantom order violations.
func genOps(rng *rand.Rand, worker, round, idx int) []Op {
	n := 1 + rng.Intn(4)
	ops := make([]Op, 0, n+1)
	for i := 0; i < n; i++ {
		k := randKey(rng, worker)
		if rng.Intn(5) == 0 {
			ops = append(ops, Op{Key: k, Delete: true})
		} else {
			val := fmt.Sprintf("v%d.%d.%d.%x", worker, idx, i, rng.Int63())
			for len(val) < 8+rng.Intn(96) {
				val += "."
			}
			ops = append(ops, Op{Key: k, Value: val})
		}
	}
	ops = append(ops, Op{Key: CounterKey(worker), Value: fmt.Sprintf("%d.%d", round, idx)})
	return ops
}

// expect resolves a key through pending in-txn ops over the worker's
// committed model (later ops shadow earlier ones).
func expect(model map[string]string, ops []Op, key string) (string, bool) {
	val, ok := model[key]
	for _, op := range ops {
		if op.Key != key {
			continue
		}
		if op.Delete {
			val, ok = "", false
		} else {
			val, ok = op.Value, true
		}
	}
	return val, ok
}
