// Sharded crash chains: the fuzzer's workload over a shard.DB instead
// of a single engine. All shards share one persistence domain, so the
// op-count crash trigger freezes every shard's durable state at the
// same instant — including mid-2PC, which is the point: a random crash
// window that lands between a participant's prepare and the
// coordinator's decide leaves a genuinely in-doubt transaction for
// recovery to resolve. On top of the random windows, some rounds crash
// the coordinator deterministically at a protocol stage (after prepare:
// the transaction must vanish everywhere; after decide: it must land
// everywhere).
//
// The oracle reuses the single-engine machinery by treating each
// (worker, shard) pair as a virtual worker with its own keyspace: every
// key a worker writes on shard s is drawn from a per-(w,s) pool
// pre-routed to s, so per-virtual-worker prefix matching stays sound
// per shard journal. Cross-shard transactions enter the history as one
// half per participant; after per-shard verification, the halves'
// survived/lost fates must agree — all-or-nothing across shards.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/shard"
)

// vwOf flattens (worker, shard) into the virtual worker id the oracle
// sees; the shard is recovered as vw % nshards.
func vwOf(worker, s, nshards int) int { return worker*nshards + s }

// shardKeys is one virtual worker's pre-routed keyspace: data keys plus
// the counter key every transaction stamps, all hashing to the same
// shard under the router.
type shardKeys struct {
	counter string
	data    []string
}

// routePools builds the per-(worker, shard) key pools. Router stability
// makes this deterministic per chain.
func routePools(s *shard.DB, workers, nshards int) [][]shardKeys {
	pools := make([][]shardKeys, workers)
	for w := 0; w < workers; w++ {
		pools[w] = make([]shardKeys, nshards)
		for sh := 0; sh < nshards; sh++ {
			prefix := WorkerPrefix(vwOf(w, sh, nshards))
			pick := func(stem string) string {
				for i := 0; ; i++ {
					k := fmt.Sprintf("%s%s%d", prefix, stem, i)
					if s.ShardOf([]byte(k)) == sh {
						return k
					}
				}
			}
			p := shardKeys{counter: pick("#")}
			for j := 0; j < 6; j++ {
				p.data = append(p.data, pick(fmt.Sprintf("k%d-", j)))
			}
			pools[w][sh] = p
		}
	}
	return pools
}

// crossRec ties the two history halves of one cross-shard transaction
// together for the all-or-nothing check. expect, when non-nil, pins the
// outcome (deterministic coordinator-stage crashes).
type crossRec struct {
	vwA, idxA int
	vwB, idxB int
	expect    *bool
}

// stageSignal is the panic the staged coordinator crash unwinds with.
type stageSignal struct{ stage shard.Stage }

// runShardedChain is runChain for a sharded database: rounds of
// (workload under an armed crash OR a deterministic coordinator-stage
// crash) → power fail → reboot → per-shard oracle + cross-shard
// all-or-nothing.
func runShardedChain(opts Options, step int) chainResult {
	seed := mix(opts.Seed, step)
	rng := rand.New(rand.NewSource(seed))
	nshards := opts.Shards
	res := chainResult{}

	// Sampled chain configuration. SyncChecksum stays out: the sharded
	// oracle keeps durability absolute.
	variants := []core.NamedConfig{
		{Name: "E", Cfg: core.VariantE()},
		{Name: "LS", Cfg: core.VariantLS()},
		{Name: "LS+Diff", Cfg: core.VariantLSDiff()},
		{Name: "UH+LS", Cfg: core.VariantUHLS()},
		{Name: "UH+LS+Diff", Cfg: core.VariantUHLSDiff()},
		{Name: "SP", Cfg: core.VariantSP()},
		{Name: "EP", Cfg: core.VariantEP()},
	}
	v := variants[rng.Intn(len(variants))]
	workers := 1 + rng.Intn(3)
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	rounds := 3 + rng.Intn(3)
	if opts.MaxRounds > 0 && rounds > opts.MaxRounds {
		rounds = opts.MaxRounds
	}
	ckptLimit := 24 + rng.Intn(120)
	policies := []memsim.FailPolicy{
		memsim.FailDropAll, memsim.FailKeepCompleted, memsim.FailAdversarial,
	}
	label := fmt.Sprintf("%s shards=%d w=%d rounds=%d ckpt=%d", v.Name, nshards, workers, rounds, ckptLimit)

	repro := fmt.Sprintf("nvwal-fuzz -seed %d -step %d -shards %d", opts.Seed, step, nshards)
	if opts.MaxRounds > 0 {
		repro += fmt.Sprintf(" -max-rounds %d", opts.MaxRounds)
	}
	if opts.MaxTxns > 0 {
		repro += fmt.Sprintf(" -max-txns %d", opts.MaxTxns)
	}
	fail := func(round int, viol Violation) {
		res.violations = append(res.violations, ViolationReport{
			Step: step, Seed: opts.Seed, Round: round, Chain: label,
			Kind: viol.Kind, Worker: viol.Worker, Detail: viol.Detail, Repro: repro,
		})
	}

	plat, err := shard.NewShared(platform.Config{
		NVRAM: nvram.Config{
			Size:              64 << 20,
			CacheLineSize:     32,
			NVRAMWriteLatency: 500 * time.Nanosecond,
		},
	}, nshards)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "platform: " + err.Error()})
		return res
	}
	sopts := shard.Options{DB: db.Options{
		NVWAL:           v.Cfg,
		Concurrent:      true,
		GroupCommit:     1,
		CheckpointLimit: ckptLimit,
	}}
	s, err := shard.Open(plat, "fuzz", sopts)
	if err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "open: " + err.Error()})
		return res
	}
	if err := s.CreateTable("t"); err != nil {
		fail(-1, Violation{Kind: "error", Worker: -1, Detail: "create table: " + err.Error()})
		return res
	}
	pools := routePools(s, workers, nshards)

	base := map[string]string{}
	window := int64(2500)
	opts.logf("chain %d (seed %d): %s", step, seed, label)

	for round := 0; round < rounds; round++ {
		policy := policies[rng.Intn(len(policies))]
		pfSeed := rng.Int63()
		txnsPer := 3 + rng.Intn(6)
		if opts.MaxTxns > 0 && txnsPer > opts.MaxTxns {
			txnsPer = opts.MaxTxns
		}
		// A third of multi-shard rounds crash the coordinator at a fixed
		// protocol stage instead of a random op window.
		var stage *shard.Stage
		if nshards > 1 && rng.Intn(3) == 0 {
			st := shard.StageAfterPrepare
			if rng.Intn(2) == 0 {
				st = shard.StageAfterDecide
			}
			stage = &st
		}
		opStart := plat.OpCount()
		if stage == nil {
			plat.ArmCrash(1+rng.Int63n(window), policy, pfSeed)
		}
		hist, crosses, committed, wvs := runShardedWorkload(s, plat, pools, workers, nshards, base, seed, round, txnsPer, stage == nil)
		res.txns += len(hist.Txns)

		if stage != nil {
			// The deterministic coordinator crash: one cross-shard
			// transaction from worker 0, panicking out of the commit hook
			// at the target stage. Nothing runs between the panic and the
			// power failure, so the durable image is exactly the stage
			// boundary.
			a := rng.Intn(nshards)
			b := (a + 1 + rng.Intn(nshards-1)) % nshards
			idxA, idxB := committed[0][a]+1, committed[0][b]+1
			ops, sops := genCrossOps(rng, pools[0], a, b, nshards, round, idxA, idxB)
			s.SetCommitHook(func(st shard.Stage, gtx uint64) {
				if st == *stage {
					panic(stageSignal{st})
				}
			})
			fired := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(stageSignal); !ok {
							panic(r)
						}
						fired = true
					}
				}()
				_ = s.Apply(sops)
			}()
			s.SetCommitHook(nil)
			if !fired {
				fail(round, Violation{Kind: "error", Worker: 0, Detail: "stage hook never fired"})
				return res
			}
			want := *stage == shard.StageAfterDecide
			hist.Txns = append(hist.Txns,
				Txn{Worker: vwOf(0, a, nshards), Index: idxA, Ops: ops[0]},
				Txn{Worker: vwOf(0, b, nshards), Index: idxB, Ops: ops[1]})
			crosses = append(crosses, crossRec{
				vwA: vwOf(0, a, nshards), idxA: idxA,
				vwB: vwOf(0, b, nshards), idxB: idxB,
				expect: &want,
			})
			res.txns++
		}

		s.Abandon()
		plat.PowerFail(policy, pfSeed)
		if err := plat.Reboot(); err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "reboot: " + err.Error()})
			return res
		}
		s, err = shard.Open(plat, "fuzz", sopts)
		if err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "recovery open: " + err.Error()})
			return res
		}
		if os.Getenv("TORTURE_DEBUG") != "" {
			for sh := 0; sh < nshards; sh++ {
				if rep := s.Shard(sh).Salvage(); rep != nil {
					for _, ev := range rep.Events {
						opts.logf("DBG round %d shard %d salvage: %s", round, sh, ev)
					}
				}
			}
		}
		if !s.HasTable("t") {
			fail(round, Violation{Kind: "durability", Worker: -1,
				Detail: "table created before the crash window vanished"})
			return res
		}
		survivor := map[string]string{}
		err = s.Scan("t", func(k, v []byte) bool {
			survivor[string(k)] = string(v)
			return true
		})
		if err != nil {
			fail(round, Violation{Kind: "error", Worker: -1, Detail: "survivor scan: " + err.Error()})
			return res
		}
		if err := s.Check(); err != nil {
			fail(round, Violation{Kind: "atomicity", Worker: -1, Detail: "btree check: " + err.Error()})
			return res
		}

		for _, viol := range wvs {
			fail(round, viol)
		}
		// Per-shard oracle runs: each shard journal is its own total
		// order, so prefix/durability/order verify shard by shard; the
		// matched prefixes then feed the cross-shard check.
		matched := make([]int, hist.Workers)
		for sh := 0; sh < nshards; sh++ {
			hs := History{Base: restrictShard(base, sh, nshards), Workers: hist.Workers}
			for _, t := range hist.Txns {
				if t.Worker%nshards == sh {
					hs.Txns = append(hs.Txns, t)
				}
			}
			vs, m := verifyMatched(hs, restrictShard(survivor, sh, nshards))
			for _, viol := range vs {
				fail(round, viol)
			}
			for vw := sh; vw < hist.Workers; vw += nshards {
				matched[vw] = m[vw]
			}
		}
		for _, c := range crosses {
			appliedA := matched[c.vwA] >= c.idxA
			appliedB := matched[c.vwB] >= c.idxB
			if appliedA != appliedB {
				fail(round, Violation{Kind: "atomicity", Worker: c.vwA,
					Detail: fmt.Sprintf("cross-shard txn torn: shard %d applied=%v, shard %d applied=%v",
						c.vwA%nshards, appliedA, c.vwB%nshards, appliedB)})
			}
			if c.expect != nil && appliedA == appliedB && appliedA != *c.expect {
				fail(round, Violation{Kind: "atomicity", Worker: c.vwA,
					Detail: fmt.Sprintf("staged coordinator crash: applied=%v, protocol requires %v", appliedA, *c.expect)})
			}
		}
		res.rounds++
		if len(res.violations) > 0 {
			opts.logf("chain %d round %d (%s): VIOLATION", step, round, policyName(policy))
			if os.Getenv("TORTURE_DEBUG") != "" {
				for _, t := range hist.Txns {
					opts.logf("DBG txn vw=%d idx=%d seq=%d acked=%v ops=%v", t.Worker, t.Index, t.Seq, t.Acked, t.Ops)
				}
				for _, c := range crosses {
					opts.logf("DBG cross vwA=%d idxA=%d vwB=%d idxB=%d expect=%v", c.vwA, c.idxA, c.vwB, c.idxB, c.expect)
				}
				keys := make([]string, 0, len(survivor))
				for k := range survivor {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					opts.logf("DBG surv %q=%q", k, clip(survivor[k]))
				}
				bkeys := make([]string, 0, len(base))
				for k := range base {
					bkeys = append(bkeys, k)
				}
				sort.Strings(bkeys)
				for _, k := range bkeys {
					opts.logf("DBG base %q=%q", k, clip(base[k]))
				}
			}
			s.Abandon()
			return res
		}
		base = survivor
		if used := plat.OpCount() - opStart; used > 300 {
			window = used
		}
	}
	_ = s.Close()
	return res
}

// restrictShard filters a state map down to the keys owned by one
// shard's virtual workers.
func restrictShard(state map[string]string, sh, nshards int) map[string]string {
	out := make(map[string]string)
	for k, v := range state {
		var vw int
		if _, err := fmt.Sscanf(k, "w%d/", &vw); err == nil && vw%nshards == sh {
			out[k] = v
		}
	}
	return out
}

// genShardOps builds one shard-local transaction's ops from a pool:
// 1-2 data writes plus the counter stamp.
func genShardOps(rng *rand.Rand, pool shardKeys, round, idx int) []Op {
	n := 1 + rng.Intn(2)
	ops := make([]Op, 0, n+1)
	for i := 0; i < n; i++ {
		k := pool.data[rng.Intn(len(pool.data))]
		if rng.Intn(6) == 0 {
			ops = append(ops, Op{Key: k, Delete: true})
		} else {
			ops = append(ops, Op{Key: k, Value: fmt.Sprintf("v%d.%d.%x", round, idx, rng.Int63())})
		}
	}
	ops = append(ops, Op{Key: pool.counter, Value: fmt.Sprintf("%d.%d", round, idx)})
	return ops
}

// genCrossOps builds one cross-shard transaction: a shard-local op set
// on each participant (returned per half for the oracle) plus the flat
// shard.Op list Apply takes.
func genCrossOps(rng *rand.Rand, pools []shardKeys, a, b, nshards, round, idxA, idxB int) ([2][]Op, []shard.Op) {
	halves := [2][]Op{
		genShardOps(rng, pools[a], round, idxA),
		genShardOps(rng, pools[b], round, idxB),
	}
	var sops []shard.Op
	for _, half := range halves {
		for _, op := range half {
			sops = append(sops, shard.Op{Table: "t", Key: []byte(op.Key), Value: []byte(op.Value), Delete: op.Delete})
		}
	}
	return halves, sops
}

// runShardedWorkload drives one round's workers. Each worker mixes
// shard-local transactions (80%) with cross-shard Apply batches (20%,
// two participants). Returns the oracle history (virtual workers), the
// cross-transaction records, the per-(worker, shard) committed counts
// (the staged crash continues from them), and any live violations.
func runShardedWorkload(s *shard.DB, plat *shard.Platform, pools [][]shardKeys,
	workers, nshards int, base map[string]string, seed int64, round, txnsPer int,
	armed bool) (History, []crossRec, [][]int, []Violation) {

	hist := History{Base: base, Workers: workers * nshards}
	var mu sync.Mutex
	var crosses []crossRec
	var violations []Violation
	committed := make([][]int, workers)

	crashed := func() bool { return armed && plat.CrashTriggered() }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		committed[w] = make([]int, nshards)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(mix(seed, round*1000+w)))
			for i := 0; i < txnsPer; i++ {
				if nshards > 1 && wrng.Intn(5) == 0 {
					// Cross-shard transaction over two participants.
					a := wrng.Intn(nshards)
					b := (a + 1 + wrng.Intn(nshards-1)) % nshards
					idxA, idxB := committed[w][a]+1, committed[w][b]+1
					ops, sops := genCrossOps(wrng, pools[w], a, b, nshards, round, idxA, idxB)
					err := s.Apply(sops)
					if err != nil && !crashed() {
						mu.Lock()
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "apply: " + err.Error()})
						mu.Unlock()
						return
					}
					// Success, or a post-crash ghost failure (outcome frozen
					// mid-protocol): both halves enter the history; acked only
					// when the commit finished before the crash instant.
					acked := err == nil && !crashed()
					committed[w][a], committed[w][b] = idxA, idxB
					mu.Lock()
					hist.Txns = append(hist.Txns,
						Txn{Worker: vwOf(w, a, nshards), Index: idxA, Acked: acked, Ops: ops[0]},
						Txn{Worker: vwOf(w, b, nshards), Index: idxB, Acked: acked, Ops: ops[1]})
					crosses = append(crosses, crossRec{
						vwA: vwOf(w, a, nshards), idxA: idxA,
						vwB: vwOf(w, b, nshards), idxB: idxB,
					})
					mu.Unlock()
					continue
				}
				sh := wrng.Intn(nshards)
				idx := committed[w][sh] + 1
				ops := genShardOps(wrng, pools[w][sh], round, idx)
				d := s.Shard(sh)
				tx, err := d.Begin()
				if err != nil {
					if errors.Is(err, db.ErrBusy) {
						continue
					}
					if !crashed() {
						mu.Lock()
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "begin: " + err.Error()})
						mu.Unlock()
					}
					return
				}
				bad := false
				for _, op := range ops {
					if op.Delete {
						_, err = tx.Delete("t", []byte(op.Key))
					} else {
						err = tx.Insert("t", []byte(op.Key), []byte(op.Value))
					}
					if err != nil {
						bad = true
						break
					}
				}
				if bad {
					tx.Rollback()
					if !crashed() {
						mu.Lock()
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "txn op: " + err.Error()})
						mu.Unlock()
						return
					}
					continue
				}
				err = tx.Commit()
				if err != nil && errors.Is(err, db.ErrBusy) {
					continue
				}
				if err != nil && !errors.Is(err, db.ErrCheckpointDeferred) {
					if !crashed() {
						mu.Lock()
						violations = append(violations, Violation{Kind: "error", Worker: w,
							Detail: "commit: " + err.Error()})
						mu.Unlock()
						return
					}
					// Ghost failure: outcome uncertain, record unacked.
					mu.Lock()
					hist.Txns = append(hist.Txns, Txn{Worker: vwOf(w, sh, nshards), Index: idx, Ops: ops})
					mu.Unlock()
					committed[w][sh] = idx
					continue
				}
				acked := !crashed()
				committed[w][sh] = idx
				mu.Lock()
				hist.Txns = append(hist.Txns, Txn{
					Worker: vwOf(w, sh, nshards), Index: idx, Seq: tx.Seq(), Acked: acked, Ops: ops,
				})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return hist, crosses, committed, violations
}
