package torture

import (
	"testing"
	"time"
)

// TestFuzzShortRun drives a handful of chains across variants, worker
// counts and fail policies; any oracle violation is a real bug.
func TestFuzzShortRun(t *testing.T) {
	rep := Run(Options{Seed: 1, Steps: 4, Step: -1, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("fuzzer committed no transactions")
	}
	t.Logf("chains=%d rounds=%d txns=%d elapsed=%s", rep.Chains, rep.Rounds, rep.Txns, rep.Elapsed)
}

// TestFuzzCatchesPlantedBug proves the oracle detects an ordering
// violation: with UnsafeEarlyCommitMark the commit mark persists before
// the frames it covers, so an acknowledged transaction can vanish. The
// acceptance bar is detection within 10 seconds of fuzzing.
func TestFuzzCatchesPlantedBug(t *testing.T) {
	rep := Run(Options{Seed: 7, Step: -1, Duration: 10 * time.Second, Bug: true, Logf: t.Logf})
	if len(rep.Violations) == 0 {
		t.Fatalf("planted commit-ordering bug not detected in %s (%d chains, %d rounds, %d txns)",
			rep.Elapsed, rep.Chains, rep.Rounds, rep.Txns)
	}
	v := rep.Violations[0]
	t.Logf("caught in %s after %d chains: %s (%s)", rep.Elapsed, rep.Chains, v.Kind, v.Detail)
	if v.Repro == "" {
		t.Fatal("violation carries no repro command")
	}
}

// TestSingleStepReplay runs one specific chain twice and expects the
// same transaction count — the deterministic-replay property repro
// commands rely on (exact for single-worker chains).
func TestSingleStepReplay(t *testing.T) {
	a := Run(Options{Seed: 42, Step: 0, Steps: 1, Workers: 1})
	b := Run(Options{Seed: 42, Step: 0, Steps: 1, Workers: 1})
	if a.Txns != b.Txns || a.Rounds != b.Rounds || len(a.Violations) != len(b.Violations) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}
