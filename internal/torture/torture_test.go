package torture

import (
	"strings"
	"testing"
	"time"
)

// TestFuzzShortRun drives a handful of chains across variants, worker
// counts and fail policies; any oracle violation is a real bug.
func TestFuzzShortRun(t *testing.T) {
	rep := Run(Options{Seed: 1, Steps: 4, Step: -1, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("fuzzer committed no transactions")
	}
	t.Logf("chains=%d rounds=%d txns=%d elapsed=%s", rep.Chains, rep.Rounds, rep.Txns, rep.Elapsed)
}

// TestFuzzCatchesPlantedBug proves the oracle detects an ordering
// violation: with UnsafeEarlyCommitMark the commit mark persists before
// the frames it covers, so an acknowledged transaction can vanish. The
// acceptance bar is detection within 10 seconds of fuzzing.
func TestFuzzCatchesPlantedBug(t *testing.T) {
	rep := Run(Options{Seed: 7, Step: -1, Duration: 10 * time.Second, Bug: true, Logf: t.Logf})
	if len(rep.Violations) == 0 {
		t.Fatalf("planted commit-ordering bug not detected in %s (%d chains, %d rounds, %d txns)",
			rep.Elapsed, rep.Chains, rep.Rounds, rep.Txns)
	}
	v := rep.Violations[0]
	t.Logf("caught in %s after %d chains: %s (%s)", rep.Elapsed, rep.Chains, v.Kind, v.Detail)
	if v.Repro == "" {
		t.Fatal("violation carries no repro command")
	}
}

// TestFuzzFaultsShortRun drives media-fault chains — NVRAM bit flips,
// stuck lines, read errors, device EIO and torn sectors — under the
// weakened oracle (durability waived, atomicity/no-resurrection/order
// absolute). Any violation is a real bug in salvage recovery.
func TestFuzzFaultsShortRun(t *testing.T) {
	rep := Run(Options{Seed: 3, Steps: 6, Step: -1, Faults: true, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("fault fuzzer committed no transactions")
	}
	t.Logf("chains=%d rounds=%d txns=%d damaged=%d degraded=%d",
		rep.Chains, rep.Rounds, rep.Txns, rep.Damaged, rep.Degraded)
}

// TestFuzzTinyHeapShortRun drives crash chains on a 24-page heap: the
// backpressure machinery (urgent checkpoints, admission stalls, the
// commit deadline) absorbs routine exhaustion, and workers may legally
// see ErrBusy/ErrDegraded — any oracle violation or raw allocation
// error escaping to a worker is a real bug.
func TestFuzzTinyHeapShortRun(t *testing.T) {
	rep := Run(Options{Seed: 5, Steps: 6, Step: -1, HeapPages: 24, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("tiny-heap fuzzer committed no transactions")
	}
	t.Logf("chains=%d rounds=%d txns=%d degraded=%d", rep.Chains, rep.Rounds, rep.Txns, rep.Degraded)
}

// TestFuzzShardedShortRun drives sharded chains: per-shard single-key
// workloads plus cross-shard 2PC transactions over a shared-domain
// shard.DB, with power cuts at random persistence ops (including
// between a participant's prepare and the coordinator's decide) and
// staged coordinator crashes. The oracle verifies each shard's history
// independently and checks cross-shard rounds all-or-nothing; any
// violation is a real bug in the commit protocol or its recovery.
func TestFuzzShardedShortRun(t *testing.T) {
	rep := Run(Options{Seed: 9, Steps: 6, Step: -1, Shards: 4, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("sharded fuzzer committed no transactions")
	}
	t.Logf("chains=%d rounds=%d txns=%d", rep.Chains, rep.Rounds, rep.Txns)
}

// TestMinimizeShrinksPlantedBug finds the planted-bug violation on a
// single-worker chain (bit-deterministic, so replay under clamps is
// exact) and expects the shrinker to reproduce it under a bounded
// round/transaction clamp with a repro command carrying the flags.
func TestMinimizeShrinksPlantedBug(t *testing.T) {
	opts := Options{Seed: 7, Step: -1, Duration: 10 * time.Second, Bug: true, Workers: 1}
	rep := Run(opts)
	if len(rep.Violations) == 0 {
		t.Skip("planted bug not hit on a single-worker chain within the budget")
	}
	mv, ok := Minimize(opts, rep.Violations[0])
	if !ok {
		t.Fatalf("single-worker finding did not reproduce under clamps: %+v", rep.Violations[0])
	}
	if mv.Round > rep.Violations[0].Round {
		t.Errorf("shrinker raised the violating round: %d > %d", mv.Round, rep.Violations[0].Round)
	}
	if !strings.Contains(mv.Repro, "-max-rounds") {
		t.Errorf("minimized repro lacks the round clamp: %s", mv.Repro)
	}
	t.Logf("shrunk to round=%d repro: %s", mv.Round, mv.Repro)
}

// TestSingleStepReplay runs one specific chain twice and expects the
// same transaction count — the deterministic-replay property repro
// commands rely on (exact for single-worker chains).
func TestSingleStepReplay(t *testing.T) {
	a := Run(Options{Seed: 42, Step: 0, Steps: 1, Workers: 1})
	b := Run(Options{Seed: 42, Step: 0, Steps: 1, Workers: 1})
	if a.Txns != b.Txns || a.Rounds != b.Rounds || len(a.Violations) != len(b.Violations) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

// TestFuzzMVCCShortRun drives overlapping-keyspace MVCC chains: every
// worker hammers the same shared keys through concurrent sessions
// (mixed with legacy slot transactions), ErrConflict is a legal retried
// outcome, and the oracle replays committed transactions in global
// commit-seq order. Any violation is a real bug in first-committer-wins
// validation, the group stream merge, or recovery.
func TestFuzzMVCCShortRun(t *testing.T) {
	rep := Run(Options{Seed: 13, Steps: 6, Step: -1, MVCC: true, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	if rep.Txns == 0 {
		t.Fatal("MVCC fuzzer committed no transactions")
	}
	t.Logf("chains=%d rounds=%d txns=%d", rep.Chains, rep.Rounds, rep.Txns)
}

// TestFuzzMVCCTinyHeapShortRun composes the MVCC mode with a tiny heap:
// sessions must absorb exhaustion through the same backpressure
// machinery as slot writers (ErrBusy/ErrDegraded legal, raw allocation
// errors are not).
func TestFuzzMVCCTinyHeapShortRun(t *testing.T) {
	rep := Run(Options{Seed: 17, Steps: 4, Step: -1, MVCC: true, HeapPages: 24, Logf: t.Logf})
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s worker=%d %s\n  repro: %s", v.Kind, v.Worker, v.Detail, v.Repro)
		}
	}
	t.Logf("chains=%d rounds=%d txns=%d degraded=%d", rep.Chains, rep.Rounds, rep.Txns, rep.Degraded)
}
