// Slow-fault (gray-failure) chain mode: the same 3-node replication
// topology as -repl, but nothing fail-stops — everything gets SLOW.
// Each node's NVRAM, block device and file system run with seeded
// slow-fault injection, a chaos goroutine degrades links with latency
// and bufferbloat stalls (no drops: gray, not partitioned), and the
// primary runs an ack-latency budget so slow replicas are quarantined
// and re-admitted while the chain watches.
//
// The oracle differs from -repl's in one dimension: LIVENESS. A gray
// failure's signature harm is the operation that neither completes nor
// fails — so every client op must resolve (success, clean refusal or
// determinate error) within a bounded real time, and the quiesced
// cluster must still converge within a bound. Safety is checked the
// same way as -repl: acked writes are durable, indeterminate writes
// are all-or-nothing, replicas converge exactly — slowness must never
// corrupt, only delay.
package torture

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockdev"
	"repro/internal/ext4"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/repl"
	"repro/internal/server"
)

// slowOpBound is the real-time budget one client operation gets before
// the chain calls it a liveness violation. Generous against the worst
// legal stack-up (retry budget × recv timeout × injected stalls), so a
// trip means a genuine hang, not an unlucky schedule.
const slowOpBound = 10 * time.Second

// slowChainCfg is one gray-failure chain's sampled configuration.
type slowChainCfg struct {
	workers   int
	opsPer    int
	ackBudget time.Duration
	nvSlow    memsim.FaultConfig
	devSlow   blockdev.FaultConfig
	fsSlow    ext4.SlowConfig
	// stallRate/stallDelay parameterize the link chaos.
	stallRate  float64
	stallDelay time.Duration
}

func (c slowChainCfg) String() string {
	return fmt.Sprintf("slow w=%d ops=%d ackBudget=%v nv=%g dev=%g fsync=%g stall=%g/%v",
		c.workers, c.opsPer, c.ackBudget, c.nvSlow.SlowOpRate, c.devSlow.SlowOpRate,
		c.fsSlow.FsyncStallRate, c.stallRate, c.stallDelay)
}

func sampleSlowChain(rng *rand.Rand, opts Options) slowChainCfg {
	cfg := slowChainCfg{
		workers:   2 + rng.Intn(2),
		opsPer:    20 + rng.Intn(21),
		ackBudget: time.Duration(2+rng.Intn(7)) * time.Millisecond,
		nvSlow: memsim.FaultConfig{
			Seed:        rng.Int63(),
			SlowOpRate:  0.005 * rng.Float64(),
			SlowOpDelay: time.Duration(10+rng.Intn(190)) * time.Microsecond,
		},
		devSlow: blockdev.FaultConfig{
			Seed:           rng.Int63(),
			SlowOpRate:     0.01 * rng.Float64(),
			SlowOpDelay:    time.Duration(50+rng.Intn(450)) * time.Microsecond,
			SyncStallRate:  0.05 * rng.Float64(),
			SyncStallDelay: time.Duration(1+rng.Intn(5)) * time.Millisecond,
		},
		fsSlow: ext4.SlowConfig{
			Seed:            rng.Int63(),
			FsyncStallRate:  0.05 * rng.Float64(),
			FsyncStallDelay: time.Duration(1+rng.Intn(5)) * time.Millisecond,
		},
		stallRate:  0.05 + 0.15*rng.Float64(),
		stallDelay: time.Duration(1+rng.Intn(10)) * time.Millisecond,
	}
	if opts.Workers > 0 {
		cfg.workers = opts.Workers
	}
	if opts.MaxTxns > 0 && cfg.opsPer > opts.MaxTxns {
		cfg.opsPer = opts.MaxTxns
	}
	return cfg
}

// runSlowChain runs one gray-failure chain.
func runSlowChain(opts Options, step int) chainResult {
	seed := mix(opts.Seed, step)
	rng := rand.New(rand.NewSource(seed))
	cfg := sampleSlowChain(rng, opts)
	res := chainResult{}

	repro := fmt.Sprintf("nvwal-fuzz -seed %d -step %d -slow", opts.Seed, step)
	if opts.MaxTxns > 0 {
		repro += fmt.Sprintf(" -max-txns %d", opts.MaxTxns)
	}
	var vmu sync.Mutex
	fail := func(v Violation) {
		vmu.Lock()
		res.violations = append(res.violations, ViolationReport{
			Step: step, Seed: opts.Seed, Round: 0, Chain: cfg.String(),
			Kind: v.Kind, Worker: v.Worker, Detail: v.Detail, Repro: repro,
		})
		vmu.Unlock()
	}

	names := []string{"n0", "n1", "n2"}
	pcfg := platform.Config{NVRAM: nvram.Config{
		Size:              16 << 20,
		CacheLineSize:     32,
		NVRAMWriteLatency: 500 * time.Nanosecond,
	}}
	cluster, err := repl.NewCluster(pcfg, netsim.Config{
		Latency: 20 * time.Microsecond,
		Jitter:  10 * time.Microsecond,
	}, seed, names...)
	if err != nil {
		fail(Violation{Kind: "error", Worker: -1, Detail: "cluster: " + err.Error()})
		return res
	}
	// Arm the storage-stack gray faults on every node; each node gets
	// its own derived seed so the fleet does not stall in lockstep.
	for i, name := range names {
		plat := cluster.Node(name).Plat
		nf := cfg.nvSlow
		nf.Seed = mix(nf.Seed, i)
		plat.NVRAM.InjectFaults(nf)
		df := cfg.devSlow
		df.Seed = mix(df.Seed, i)
		plat.Flash.InjectFaults(df)
		ff := cfg.fsSlow
		ff.Seed = mix(ff.Seed, i)
		plat.FS.InjectSlowFaults(ff)
	}

	popts := repl.PrimaryOptions{
		Epoch: 1, AckReplicas: 1, AckTimeout: 150 * time.Millisecond,
		AckBudget: cfg.ackBudget,
	}
	pn, err := cluster.StartPrimary(names[0], repl.DefaultDBOptions(), popts, server.Options{})
	if err != nil {
		fail(Violation{Kind: "error", Worker: -1, Detail: "start primary: " + err.Error()})
		return res
	}
	if err := pn.DB.CreateTable("kv"); err != nil {
		fail(Violation{Kind: "error", Worker: -1, Detail: "create table: " + err.Error()})
		return res
	}
	replicas := map[string]*repl.ReplicaNode{}
	for _, name := range names[1:] {
		rn, err := cluster.StartReplica(name, repl.ReplicaOptions{Epoch: 1}, server.Options{})
		if err != nil {
			fail(Violation{Kind: "error", Worker: -1, Detail: "start replica: " + err.Error()})
			return res
		}
		replicas[name] = rn
		pn.Attach(cluster, name)
	}
	defer func() {
		pn.Stop(false)
		for _, rn := range replicas {
			rn.Stop()
		}
	}()

	oracle := newReplOracle()
	opts.logf("chain %d (seed %d): %s", step, seed, cfg)

	// Writers (liveness-bounded) plus one hedged reader on its own
	// clock lane, all under link chaos.
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runSlowWorker(cluster, names, oracle, fail, &done, mix(seed, 1000+w), w, cfg.opsPer)
		}(w)
	}
	readerStop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		runSlowReader(cluster, names, fail, mix(seed, 2000), readerStop)
	}()

	chaos := startSlowChaos(cluster, names, mix(seed, 777), cfg.stallRate, cfg.stallDelay)
	// Wait for the writers only; the reader runs until they are done.
	waitDone := make(chan struct{})
	go func() {
		defer close(waitDone)
		for done.Load() < int64(cfg.workers*cfg.opsPer) {
			time.Sleep(time.Millisecond)
			vmu.Lock()
			n := len(res.violations)
			vmu.Unlock()
			if n > 0 {
				return
			}
		}
	}()
	<-waitDone
	close(readerStop)
	wg.Wait()
	chaos.stop()

	// Quiesce: heal every link, then the cluster must CONVERGE within a
	// bound — a quarantined replica that never resyncs is the exact
	// gray-failure end state this mode exists to catch.
	cluster.Net.HealAll()
	res.txns = oracle.acked
	res.rounds = 1
	target := pn.Repl.Status().Mark
	for name, rn := range replicas {
		if !rn.WaitCaughtUp(target, 15*time.Second) {
			fail(Violation{Kind: "liveness", Worker: -1,
				Detail: fmt.Sprintf("replica %s stuck at %d after heal, primary mark %d (quarantined=%v)",
					name, rn.R.Applied(), target, pn.Repl.Quarantined())})
		}
	}
	if len(res.violations) > 0 {
		return res
	}
	for _, v := range oracle.verify(func(key string) (string, bool, error) {
		v, found, err := pn.Repl.Get("kv", []byte(key))
		return string(v), found, err
	}) {
		fail(v)
	}
	for name, rn := range replicas {
		for k := range oracle.allowed {
			pv, pfound, _ := pn.Repl.Get("kv", []byte(k))
			rv, rfound, rerr := rn.R.Get("kv", []byte(k))
			if rerr != nil || rfound != pfound || string(rv) != string(pv) {
				fail(Violation{Kind: "staleness", Worker: -1,
					Detail: fmt.Sprintf("replica %s key %q = %q/%v, primary %q/%v (err %v)",
						name, k, rv, rfound, pv, pfound, rerr)})
				break
			}
		}
	}
	if len(res.violations) > 0 {
		opts.logf("chain %d: VIOLATION", step)
	} else {
		opts.logf("chain %d: ok (%d acked, quarantines=%d readmits=%d hedged=%d)",
			step, oracle.acked,
			pn.Node.M.Count(metrics.ReplicaQuarantines),
			pn.Node.M.Count(metrics.ReplicaReadmits),
			cluster.Registry.Counters("rd").Count(metrics.HedgedReads))
	}
	return res
}

// runSlowWorker is runReplWorker with the liveness stopwatch: every op
// must resolve within slowOpBound of real time.
func runSlowWorker(c *repl.Cluster, addrs []string, oracle *replOracle,
	fail func(Violation), done *atomic.Int64, seed int64, w, ops int) {
	rng := rand.New(rand.NewSource(seed))
	cli := server.NewClient(c.Dialer(fmt.Sprintf("w%d", w)), addrs, server.ClientOptions{
		RetryBudget: 10,
		RecvTimeout: 30 * time.Millisecond,
		BackoffBase: 200 * time.Microsecond,
		BackoffMax:  3 * time.Millisecond,
		Deadline:    50 * time.Millisecond,
		Seed:        seed,
	})
	defer cli.Close()

	for i := 0; i < ops; i++ {
		time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
		k := fmt.Sprintf("w%dk%d", w, rng.Intn(replKeysPerWorker))
		val := fmt.Sprintf("w%d.%d.%x", w, i, rng.Int63())
		start := time.Now()
		var err error
		if rng.Intn(100) < 25 {
			_, err = cli.Delete("kv", []byte(k))
			recordOutcome(err,
				func() { oracle.ackedWrite(k, "") },
				func() { oracle.indeterminateWrite(k, "") })
		} else {
			_, err = cli.Put("kv", []byte(k), []byte(val))
			recordOutcome(err,
				func() { oracle.ackedWrite(k, val) },
				func() { oracle.indeterminateWrite(k, val) })
		}
		if took := time.Since(start); took > slowOpBound {
			fail(Violation{Kind: "liveness", Worker: w,
				Detail: fmt.Sprintf("op %d on %q took %v of real time (err %v)", i, k, took, err)})
			return
		}
		done.Add(1)
	}
}

// runSlowReader hammers hedged reads across all three nodes from its
// own clock lane until stopped. Values are not checked (replica reads
// are legally stale); the oracle here is liveness — a hedged read must
// never hang past the bound — plus the usual absence of client errors
// that indicate protocol damage.
func runSlowReader(c *repl.Cluster, addrs []string, fail func(Violation), seed int64, stop <-chan struct{}) {
	lane := c.Clock.NewLane()
	c.Net.Register("rd", lane)
	cli := server.NewClient(c.Dialer("rd"), addrs, server.ClientOptions{
		Metrics:      c.Registry.Counters("rd"),
		RetryBudget:  10,
		RecvTimeout:  30 * time.Millisecond,
		BackoffBase:  200 * time.Microsecond,
		BackoffMax:   3 * time.Millisecond,
		ReadAnywhere: true,
		HedgeDelay:   200 * time.Microsecond,
		Clock:        lane,
		Seed:         seed,
	})
	defer cli.Close()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		k := fmt.Sprintf("w%dk%d", rng.Intn(4), rng.Intn(replKeysPerWorker))
		start := time.Now()
		_, _, err := cli.Get("kv", []byte(k))
		if took := time.Since(start); took > slowOpBound {
			fail(Violation{Kind: "liveness", Worker: -1,
				Detail: fmt.Sprintf("hedged read %d of %q took %v of real time (err %v)", i, k, took, err)})
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// startSlowChaos degrades links with latency and bufferbloat stalls —
// never drops or partitions; gray failures deliver everything, late.
func startSlowChaos(c *repl.Cluster, names []string, seed int64, stallRate float64, stallDelay time.Duration) *replChaos {
	rc := &replChaos{quit: make(chan struct{}), done: make(chan struct{})}
	rng := rand.New(rand.NewSource(seed))
	base := netsim.Config{Latency: 20 * time.Microsecond, Jitter: 10 * time.Microsecond}
	go func() {
		defer close(rc.done)
		type link struct{ a, b string }
		var degraded []link
		defer func() {
			for _, l := range degraded {
				c.Net.SetLink(l.a, l.b, base)
			}
		}()
		for {
			select {
			case <-rc.quit:
				return
			case <-time.After(time.Duration(2+rng.Intn(6)) * time.Millisecond):
			}
			switch rng.Intn(3) {
			case 0: // gray-degrade a replica ack path (drives quarantine)
				n := names[1+rng.Intn(len(names)-1)]
				bad := netsim.Config{
					Latency:    time.Duration(1+rng.Intn(20)) * time.Millisecond,
					Jitter:     500 * time.Microsecond,
					StallRate:  stallRate,
					StallDelay: stallDelay,
				}
				c.Net.SetLink(repl.ReplAddr(n), names[0], bad)
				degraded = append(degraded, link{repl.ReplAddr(n), names[0]})
			case 1: // bufferbloat a client or reader link
				from := fmt.Sprintf("w%d", rng.Intn(4))
				if rng.Intn(3) == 0 {
					from = "rd"
				}
				n := names[rng.Intn(len(names))]
				bad := netsim.Config{
					Latency:    time.Duration(100+rng.Intn(900)) * time.Microsecond,
					Jitter:     200 * time.Microsecond,
					StallRate:  stallRate,
					StallDelay: stallDelay,
				}
				c.Net.SetLink(from, n, bad)
				c.Net.SetLink(n, from, bad)
				degraded = append(degraded, link{from, n}, link{n, from})
			case 2: // heal the oldest degradation
				if len(degraded) > 0 {
					l := degraded[0]
					degraded = degraded[1:]
					c.Net.SetLink(l.a, l.b, base)
				}
			}
		}
	}()
	return rc
}
