package dbfile

import (
	"bytes"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/ext4"
	"repro/internal/metrics"
	"repro/internal/simclock"
)

func newFile(t testing.TB) *File {
	t.Helper()
	dev := blockdev.New(blockdev.Config{Pages: 1 << 14}, simclock.New(), &metrics.Counters{}, nil)
	fs := ext4.New(dev)
	f, err := fs.Create("x.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	return New(f, 4096)
}

func TestWriteReadPage(t *testing.T) {
	d := newFile(t)
	img := bytes.Repeat([]byte{0x5C}, 4096)
	if err := d.WritePage(3, img); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := d.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("round trip mismatch")
	}
	if d.PageSize() != 4096 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
}

func TestReadBeyondEOFZeroFills(t *testing.T) {
	d := newFile(t)
	got := bytes.Repeat([]byte{0xFF}, 4096)
	if err := d.ReadPage(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("beyond-EOF read not zero-filled")
	}
}

func TestReadPartialPageAtEOF(t *testing.T) {
	d := newFile(t)
	// Write page 1 only partially via the underlying file: page 2 read
	// must zero-fill its tail.
	if err := d.WritePage(1, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	got := bytes.Repeat([]byte{0xEE}, 4096)
	if err := d.ReadPage(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("partial EOF read not zero-filled")
	}
}

func TestSyncAndSize(t *testing.T) {
	d := newFile(t)
	d.WritePage(1, make([]byte, 4096))
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4096 {
		t.Fatalf("Size = %d", d.Size())
	}
}
