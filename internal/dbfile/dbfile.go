// Package dbfile adapts an EXT4 file to the pager.DBFile interface: the
// main database file that checkpointing writes back into and page-cache
// misses read from.
package dbfile

import (
	"io"

	"repro/internal/ext4"
)

// File is a page-addressed view of a database file. Page numbers are
// 1-based, following SQLite.
type File struct {
	f        *ext4.File
	pageSize int
}

// New wraps f as a page-addressed database file.
func New(f *ext4.File, pageSize int) *File {
	return &File{f: f, pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (d *File) PageSize() int { return d.pageSize }

// ReadPage fills buf with page pgno's content, zero-filling any part
// beyond the file's current size.
func (d *File) ReadPage(pgno uint32, buf []byte) error {
	off := int64(pgno-1) * int64(d.pageSize)
	n, err := d.f.ReadAt(buf[:d.pageSize], off)
	if err == io.EOF {
		for i := n; i < d.pageSize; i++ {
			buf[i] = 0
		}
		return nil
	}
	return err
}

// WritePage stores data as page pgno.
func (d *File) WritePage(pgno uint32, data []byte) error {
	off := int64(pgno-1) * int64(d.pageSize)
	_, err := d.f.WriteAt(data[:d.pageSize], off)
	return err
}

// Sync flushes the file durably (fsync).
func (d *File) Sync() error {
	return d.f.Fsync()
}

// Size returns the file size in bytes.
func (d *File) Size() int64 { return d.f.Size() }
