// Package shard scales the single-writer NVWAL engine out sideways: N
// independent engine shards — each with its own log generation, heap
// arena, group-commit queue, checkpointer and pressure watermarks — sit
// behind a deterministic hash router, so single-key transactions run
// entirely shard-local and scale with the shard count. Multi-key
// transactions spanning shards are made crash-atomic by two-phase
// commit over the journal's prepared marks, coordinated by one shared
// commit-sequence record in NVRAM (see db.go in this package).
package shard

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/ext4"
	"repro/internal/heapo"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/simclock"
)

// Platform is an N-shard machine. Two assembly modes exist, one per
// consumer:
//
//   - Shared domain (NewShared): ONE NVRAM persistence domain carved
//     into N windows, one heap arena per window, one flash device and
//     file system. All shards crash at the same instant under a single
//     op counter, which is what the crash-consistency torturer needs.
//     The shared clock serializes shard time (commits on different
//     shards cost wall time additively), so this mode measures
//     correctness, not scaling.
//   - Laned domains (NewLaned): one full domain/heap/flash/FS per
//     shard, each on its own lane of a parent clock. Lanes advance
//     independently and the parent tracks their maximum, modeling N
//     cores driving N shards in parallel — the mode the scaling bench
//     runs in. PowerFail is unsupported here (the domains would freeze
//     at unrelated instants).
//
// Either way, shard i sees an ordinary *platform.Platform view — the
// db layer runs unmodified — and counts its traffic into a per-shard
// labeled sink of one metrics Registry ("shard0", "shard1", ...).
// Device-level counters of shared hardware land under the "device"
// label; Registry.Aggregate() reassembles the whole-machine view.
type Platform struct {
	Clock    *simclock.Clock // shared clock (or lane parent)
	Registry *metrics.Registry

	views  []*platform.Platform
	shared bool

	// Shared-domain internals (nil in laned mode).
	dev     *nvram.Device // whole-domain device
	windows []*nvram.Device
	fs      *ext4.FS
}

// DeviceLabel is the Registry label of counters charged by shared
// hardware (the NVRAM domain, flash, file system) rather than by one
// shard's engine. Heap traffic also lands here in shared-domain mode:
// heapo charges its device's sink, and all windows share the device.
const DeviceLabel = "device"

func shardLabel(i int) string { return fmt.Sprintf("shard%d", i) }

// NewShared assembles an n-shard platform over one persistence domain:
// the device is split into n equal page-aligned windows, each formatted
// as an independent heap arena. cfg sizes the whole device; every shard
// gets roughly 1/n of it.
func NewShared(cfg platform.Config, n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	p := &Platform{
		Clock:    simclock.New(),
		Registry: metrics.NewRegistry(),
		shared:   true,
	}
	devMetrics := p.Registry.Counters(DeviceLabel)
	p.dev = nvram.NewDevice(cfg.NVRAM, p.Clock, devMetrics)
	flash := blockdev.New(cfg.Flash, p.Clock, devMetrics, nil)
	p.fs = ext4.New(flash)
	win := (uint64(p.dev.Size()) / uint64(n)) &^ (heapo.PageSize - 1)
	if win < 8*heapo.PageSize {
		return nil, fmt.Errorf("shard: device too small for %d shards", n)
	}
	for i := 0; i < n; i++ {
		w := p.dev.Window(uint64(i)*win, int(win))
		h, err := heapo.Format(w)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		p.windows = append(p.windows, w)
		p.views = append(p.views, &platform.Platform{
			Clock:   p.Clock,
			Metrics: p.Registry.Counters(shardLabel(i)),
			NVRAM:   w,
			Heap:    h,
			Flash:   flash,
			FS:      p.fs,
		})
	}
	return p, nil
}

// NewLaned assembles an n-shard platform with one full machine per
// shard, each on its own clock lane. cfg sizes ONE shard's hardware
// (every shard gets a device of cfg.NVRAM.Size), so throughput
// comparisons against a single-engine run on the same cfg are
// apples-to-apples per shard.
func NewLaned(cfg platform.Config, n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	p := &Platform{
		Clock:    simclock.New(),
		Registry: metrics.NewRegistry(),
	}
	for i := 0; i < n; i++ {
		lane := p.Clock.NewLane()
		m := p.Registry.Counters(shardLabel(i))
		dev := nvram.NewDevice(cfg.NVRAM, lane, m)
		h, err := heapo.Format(dev)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		flash := blockdev.New(cfg.Flash, lane, m, nil)
		p.views = append(p.views, &platform.Platform{
			Clock:   lane,
			Metrics: m,
			NVRAM:   dev,
			Heap:    h,
			Flash:   flash,
			FS:      ext4.New(flash),
		})
	}
	return p, nil
}

// Shards returns the shard count.
func (p *Platform) Shards() int { return len(p.views) }

// View returns shard i's platform view.
func (p *Platform) View(i int) *platform.Platform { return p.views[i] }

// PowerFail crashes the machine (shared-domain mode only): the one
// domain loses its volatile lines under the policy, the file system
// its unsynced writes.
func (p *Platform) PowerFail(policy memsim.FailPolicy, seed int64) {
	if !p.shared {
		panic("shard: PowerFail requires a shared-domain platform")
	}
	p.dev.PowerFail(policy, seed)
	p.fs.PowerFail()
}

// ArmCrash installs a one-shot machine-wide crash trigger counted in
// the shared domain's persistence ops (shared-domain mode only).
func (p *Platform) ArmCrash(afterOps int64, policy memsim.FailPolicy, seed int64) {
	if !p.shared {
		panic("shard: ArmCrash requires a shared-domain platform")
	}
	p.dev.Domain().ArmCrash(afterOps, policy, seed, p.fs.Freeze)
}

// CrashTriggered reports whether an armed trigger has fired.
func (p *Platform) CrashTriggered() bool { return p.dev.Domain().CrashTriggered() }

// DisarmCrash removes an armed trigger and any frozen device images.
func (p *Platform) DisarmCrash() {
	p.dev.Domain().DisarmCrash()
	p.fs.Unfreeze()
}

// OpCount returns the shared domain's persistence-operation counter.
func (p *Platform) OpCount() int64 { return p.dev.Domain().OpCount() }

// Reboot recovers the machine after PowerFail: the domain comes back
// serving persisted content and every shard's heap arena reattaches
// and reclaims pending blocks. Re-open the sharded database afterwards.
func (p *Platform) Reboot() error {
	if !p.shared {
		panic("shard: Reboot requires a shared-domain platform")
	}
	p.dev.Recover()
	for i, w := range p.windows {
		h, err := heapo.Attach(w)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		h.ReclaimPending()
		p.views[i].Heap = h
	}
	return nil
}
