package shard

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/memsim"
	"repro/internal/nvram"
	"repro/internal/platform"
)

func testConfig() platform.Config {
	return platform.Config{
		NVRAM: nvram.Config{
			Size:              32 << 20,
			CacheLineSize:     64,
			NVRAMWriteLatency: 500 * time.Nanosecond,
		},
	}
}

func testOpts() Options {
	return Options{DB: db.Options{NVWAL: core.VariantUHLSDiff()}}
}

func newSharded(t *testing.T, n int) (*Platform, *DB) {
	t.Helper()
	plat, err := NewShared(testConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(plat, "test.db", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	return plat, s
}

// keyOn fabricates a key routed to the wanted shard by appending a
// counter until the hash lands there.
func keyOn(s *DB, shard int, stem string) []byte {
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("%s-%d", stem, i))
		if s.ShardOf(k) == shard {
			return k
		}
	}
}

func TestRouterIsStableAndCovering(t *testing.T) {
	_, s := newSharded(t, 4)
	seen := make(map[int]int)
	for i := 0; i < 256; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		a, b := s.ShardOf(k), s.ShardOf(k)
		if a != b {
			t.Fatalf("router unstable for %q: %d vs %d", k, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("router out of range: %d", a)
		}
		seen[a]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("shard %d got no keys out of 256", i)
		}
	}
}

func TestPutGetDeleteAndScan(t *testing.T) {
	_, s := newSharded(t, 4)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%03d", i)
		if err := s.Put("t", []byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.Get("t", []byte("k007"))
	if err != nil || !ok || string(v) != "v7" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if n, _ := s.Count("t"); n != 64 {
		t.Fatalf("Count = %d", n)
	}
	// Scan is globally key-ordered despite sharding.
	var last string
	n := 0
	err = s.Scan("t", func(k, v []byte) bool {
		if string(k) <= last {
			t.Fatalf("scan out of order: %q after %q", k, last)
		}
		last = string(k)
		n++
		return true
	})
	if err != nil || n != 64 {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
	if ok, err := s.Delete("t", []byte("k007")); err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get("t", []byte("k007")); ok {
		t.Fatal("deleted key visible")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestShardLocalCommitsSurviveReboot(t *testing.T) {
	plat, s := newSharded(t, 2)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := s.Put("t", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon()
	plat.PowerFail(memsim.FailDropAll, 3)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(plat, "test.db", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, ok, _ := s2.Get("t", []byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost across reboot", i)
		}
	}
	if err := s2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsShardCountChange(t *testing.T) {
	plat, s := newSharded(t, 2)
	_ = s
	// Reopening the same device with a different count must refuse, not
	// misroute. Simulate by reopening the ctl with the wrong count.
	if _, err := openCtl(plat.View(0).Heap, 3); err == nil {
		t.Fatal("shard-count change accepted")
	}
}

func TestApplyCrossShardAtomicCommit(t *testing.T) {
	_, s := newSharded(t, 4)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ka, kb := keyOn(s, 0, "a"), keyOn(s, 3, "b")
	err := s.Apply([]Op{
		{Table: "t", Key: ka, Value: []byte("va")},
		{Table: "t", Key: kb, Value: []byte("vb")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range [][]byte{ka, kb} {
		if _, ok, _ := s.Get("t", k); !ok {
			t.Fatalf("cross-shard key %q missing", k)
		}
	}
	// Single-shard Apply takes the local path and works too.
	if err := s.Apply([]Op{{Table: "t", Key: keyOn(s, 1, "c"), Value: []byte("vc")}}); err != nil {
		t.Fatal(err)
	}
	// Deletes participate in cross-shard batches.
	if err := s.Apply([]Op{{Table: "t", Key: ka, Delete: true}, {Table: "t", Key: kb, Delete: true}}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("t", ka); ok {
		t.Fatal("cross-shard delete lost")
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

type stageCrash struct{ stage Stage }

// TestCrossShardCrashAtStages is the protocol's crash matrix: power
// fails exactly between phases of a two-shard commit. Before the decide
// record persists the transaction must vanish everywhere; after, it
// must land everywhere.
func TestCrossShardCrashAtStages(t *testing.T) {
	for _, tc := range []struct {
		stage Stage
		want  bool // both keys present after recovery
	}{
		{StageAfterPrepare, false},
		{StageAfterDecide, true},
		{StageAfterComplete, true},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			plat, s := newSharded(t, 2)
			if err := s.CreateTable("t"); err != nil {
				t.Fatal(err)
			}
			ka, kb := keyOn(s, 0, "a"), keyOn(s, 1, "b")
			if err := s.Put("t", []byte("base"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			s.SetCommitHook(func(stage Stage, gtx uint64) {
				if stage == tc.stage {
					panic(stageCrash{stage})
				}
			})
			func() {
				defer func() {
					if r := recover(); r == nil {
						t.Fatalf("stage %d: hook never fired", tc.stage)
					} else if _, ok := r.(stageCrash); !ok {
						panic(r)
					}
				}()
				_ = s.Apply([]Op{
					{Table: "t", Key: ka, Value: []byte("va")},
					{Table: "t", Key: kb, Value: []byte("vb")},
				})
			}()
			// Power fails at the stage boundary: nothing else persisted.
			s.Abandon()
			plat.PowerFail(memsim.FailDropAll, seed)
			if err := plat.Reboot(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(plat, "test.db", testOpts())
			if err != nil {
				t.Fatalf("stage %d: reopen: %v", tc.stage, err)
			}
			_, okA, _ := s2.Get("t", ka)
			_, okB, _ := s2.Get("t", kb)
			if okA != okB {
				t.Fatalf("stage %d seed %d: atomicity broken: shard0=%v shard1=%v", tc.stage, seed, okA, okB)
			}
			if okA != tc.want {
				t.Fatalf("stage %d seed %d: present=%v, want %v", tc.stage, seed, okA, tc.want)
			}
			if _, ok, _ := s2.Get("t", []byte("base")); !ok {
				t.Fatalf("stage %d: earlier commit lost", tc.stage)
			}
			// The recovered system keeps working, including another 2PC.
			if err := s2.Apply([]Op{
				{Table: "t", Key: keyOn(s2, 0, "post"), Value: []byte("x")},
				{Table: "t", Key: keyOn(s2, 1, "post"), Value: []byte("y")},
			}); err != nil {
				t.Fatalf("stage %d: post-recovery 2PC: %v", tc.stage, err)
			}
			if err := s2.Check(); err != nil {
				t.Fatalf("stage %d: %v", tc.stage, err)
			}
		}
	}
}

func TestPerShardMetricsAndAggregate(t *testing.T) {
	plat, s := newSharded(t, 2)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	k0, k1 := keyOn(s, 0, "m"), keyOn(s, 1, "m")
	for i := 0; i < 4; i++ {
		if err := s.Put("t", append(k0, byte('0'+i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("t", append(k1, 'z'), []byte("v")); err != nil {
		t.Fatal(err)
	}
	m0 := s.MetricsFor(0).Count("transactions")
	m1 := s.MetricsFor(1).Count("transactions")
	if m0 == 0 || m1 == 0 {
		t.Fatalf("per-shard transactions: shard0=%d shard1=%d", m0, m1)
	}
	agg := s.Metrics().Count("transactions")
	if agg < m0+m1 {
		t.Fatalf("aggregate %d < %d+%d", agg, m0, m1)
	}
	labels := plat.Registry.Labels()
	if len(labels) < 3 { // device + 2 shards
		t.Fatalf("labels = %v", labels)
	}
}

func TestLanedPlatformParallelTime(t *testing.T) {
	plat, err := NewLaned(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(plat, "test.db", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	// Commit the same work on every shard; on lanes, the parent clock
	// advances by the max over shards, not the sum.
	parentStart := plat.Clock.Now()
	var per [4]time.Duration
	for i := 0; i < 4; i++ {
		start := plat.View(i).Clock.Now()
		for j := 0; j < 8; j++ {
			k := keyOn(s, i, fmt.Sprintf("w%d-%d", i, j))
			if err := s.Put("t", k, bytes.Repeat([]byte("v"), 32)); err != nil {
				t.Fatal(err)
			}
		}
		per[i] = plat.View(i).Clock.Now() - start
	}
	var total time.Duration
	for _, d := range per {
		total += d
	}
	if parentDelta := plat.Clock.Now() - parentStart; parentDelta >= total {
		t.Fatalf("parent clock advanced %v, serial sum is %v: lanes are not parallel", parentDelta, total)
	}
	for i := 0; i < 4; i++ {
		if plat.Clock.Now() < plat.View(i).Clock.Now() {
			t.Fatalf("parent clock behind lane %d", i)
		}
	}
	// Cross-shard 2PC still works on laned platforms.
	if err := s.Apply([]Op{
		{Table: "t", Key: keyOn(s, 0, "x"), Value: []byte("1")},
		{Table: "t", Key: keyOn(s, 2, "x"), Value: []byte("2")},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestArmedCrashAndLifecycle covers the whole-machine surfaces the
// torturer drives — the op-counted crash trigger, disarm, power fail,
// reboot — plus the lifecycle accessors: per-shard views, table
// existence, a manual whole-machine checkpoint and a clean
// close/reopen.
func TestArmedCrashAndLifecycle(t *testing.T) {
	plat, s := newSharded(t, 2)
	if s.Shards() != 2 || plat.Shards() != 2 {
		t.Fatalf("shard count: db=%d plat=%d, want 2", s.Shards(), plat.Shards())
	}
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if !s.HasTable("t") || s.HasTable("missing") {
		t.Fatal("HasTable misreports")
	}
	ka, kb := keyOn(s, 0, "a"), keyOn(s, 1, "b")
	if err := s.Put("t", ka, []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("t", kb, []byte("vb")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Shards(); i++ {
		if s.Shard(i) == nil {
			t.Fatalf("Shard(%d) view is nil", i)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(plat, "test.db", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get("t", ka); !ok || !bytes.Equal(v, []byte("va")) {
		t.Fatal("checkpointed key lost across close/reopen")
	}

	// Armed then disarmed: the trigger must never fire.
	plat.ArmCrash(1, memsim.FailDropAll, 1)
	plat.DisarmCrash()
	if err := s2.Put("t", ka, []byte("va2")); err != nil {
		t.Fatal(err)
	}
	if plat.CrashTriggered() {
		t.Fatal("disarmed trigger fired")
	}

	// Armed for real: the machine freezes after 5 more persistence ops,
	// mid-commit somewhere, exactly like a torture round.
	start := plat.OpCount()
	plat.ArmCrash(5, memsim.FailDropAll, 2)
	for i := 0; !plat.CrashTriggered(); i++ {
		if i > 1000 {
			t.Fatal("armed trigger never fired")
		}
		_ = s2.Put("t", kb, []byte{byte(i)})
	}
	if got := plat.OpCount(); got < start+5 {
		t.Fatalf("trigger fired after %d ops, armed for 5", got-start)
	}
	s2.Abandon()
	plat.PowerFail(memsim.FailDropAll, 2)
	if err := plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(plat, "test.db", testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s3.Get("t", ka); !ok || !bytes.Equal(v, []byte("va2")) {
		t.Fatal("pre-crash committed key lost")
	}
	if err := s3.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestLanedPlatformRefusesCrashAPI pins the laned mode's contract: N
// independent domains cannot crash coherently, so the whole-machine
// crash surface panics rather than producing a meaningless fault.
func TestLanedPlatformRefusesCrashAPI(t *testing.T) {
	plat, err := NewLaned(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"PowerFail": func() { plat.PowerFail(memsim.FailDropAll, 1) },
		"ArmCrash":  func() { plat.ArmCrash(1, memsim.FailDropAll, 1) },
		"Reboot":    func() { _ = plat.Reboot() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic in laned mode", name)
				}
			}()
			fn()
		}()
	}
}

// TestSingleKeyErrorPaths covers the auto-commit wrappers' error
// branches: a missing table rolls the implicit transaction back and the
// engine stays healthy.
func TestSingleKeyErrorPaths(t *testing.T) {
	_, s := newSharded(t, 2)
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("missing", []byte("k"), []byte("v")); err == nil {
		t.Fatal("Put into a missing table succeeded")
	}
	if _, err := s.Delete("missing", []byte("k")); err == nil {
		t.Fatal("Delete from a missing table succeeded")
	}
	if ok, err := s.Delete("t", []byte("absent")); err != nil || ok {
		t.Fatalf("Delete of an absent key = (%v, %v)", ok, err)
	}
	if err := s.Apply([]Op{{Table: "missing", Key: keyOn(s, 0, "x"), Value: []byte("v")}}); err == nil {
		t.Fatal("single-shard Apply into a missing table succeeded")
	}
	if err := s.Apply([]Op{
		{Table: "missing", Key: keyOn(s, 0, "x"), Value: []byte("v")},
		{Table: "missing", Key: keyOn(s, 1, "y"), Value: []byte("v")},
	}); err == nil {
		t.Fatal("cross-shard Apply into a missing table succeeded")
	}
	// The failed rounds left nothing behind and the engine still works.
	if err := s.Put("t", []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}
