package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/db"
	"repro/internal/metrics"
)

// Options configures every shard's engine. DB.Journal is forced to
// JournalNVWAL: prepared transactions exist only there, and a sharded
// deployment without cross-shard atomicity would be a different (and
// broken) system.
type Options struct {
	DB db.Options
}

// DB is the sharded front-end: N independent engines behind a
// deterministic hash router and a 2PC coordinator. Single-key
// operations touch exactly one shard — no shared lock, no shared log,
// no shared checkpointer — which is the entire scaling story.
type DB struct {
	plat   *Platform
	shards []*db.DB
	ctl    *ctlRecord

	// mu serializes cross-shard transactions. One round at a time is
	// what makes the ctl record's "gtx ≤ lastCommitted" resolver sound
	// (see ctl.go); single-key traffic never takes it.
	mu   sync.Mutex
	hook func(stage Stage, gtx uint64)
}

// Stage identifies a point in the cross-shard commit protocol, for
// crash-injection hooks.
type Stage int

const (
	// StageAfterPrepare: every participant holds durable provisional
	// frames; the decide record has not moved. A crash here must abort
	// the transaction everywhere.
	StageAfterPrepare Stage = iota
	// StageAfterDecide: the commit sequence record is durable. A crash
	// here must commit the transaction everywhere.
	StageAfterDecide
	// StageAfterComplete: every provisional mark has flipped.
	StageAfterComplete
)

// Open opens (or creates) a sharded database over plat, one engine per
// shard view. Recovery is two-layered: each shard's journal recovers
// independently, and any prepared frames it finds at its log tail are
// resolved against the coordinator's commit sequence record, read
// before the first engine opens.
func Open(plat *Platform, name string, opts Options) (*DB, error) {
	ctl, err := openCtl(plat.View(0).Heap, plat.Shards())
	if err != nil {
		return nil, err
	}
	// Snapshot the decide record once: every shard recovers against the
	// same coordinator state, no matter what later rounds do.
	decided := ctl.lastCommitted()
	s := &DB{plat: plat, ctl: ctl}
	for i := 0; i < plat.Shards(); i++ {
		o := opts.DB
		o.Journal = db.JournalNVWAL
		o.NVWAL.PreparedResolver = func(gtx uint64) bool { return gtx != 0 && gtx <= decided }
		d, err := db.Open(plat.View(i), fmt.Sprintf("%s.s%d", name, i), o)
		if err != nil {
			for _, prev := range s.shards {
				prev.Abandon()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards = append(s.shards, d)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *DB) Shards() int { return len(s.shards) }

// Shard returns shard i's engine, for shard-local transaction loops
// (route keys with ShardOf first).
func (s *DB) Shard(i int) *db.DB { return s.shards[i] }

// ShardOf routes a key: FNV-1a over the key, reduced mod N. The hash is
// part of the on-device layout contract — reopening with the same shard
// count routes every key to the shard that holds it.
func (s *DB) ShardOf(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// SetCommitHook installs a callback fired between phases of every
// cross-shard commit — the torture and crash harnesses panic out of it
// to model a coordinator dying mid-protocol.
func (s *DB) SetCommitHook(fn func(stage Stage, gtx uint64)) { s.hook = fn }

func (s *DB) fire(stage Stage, gtx uint64) {
	if s.hook != nil {
		s.hook(stage, gtx)
	}
}

// CreateTable creates the table on every shard.
func (s *DB) CreateTable(table string) error {
	for i, d := range s.shards {
		if err := d.CreateTable(table); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// HasTable reports whether the table exists (on shard 0; CreateTable
// keeps the catalog identical everywhere).
func (s *DB) HasTable(table string) bool { return s.shards[0].HasTable(table) }

// Put stores key/value in one auto-committed shard-local transaction.
func (s *DB) Put(table string, key, value []byte) error {
	i := s.ShardOf(key)
	d := s.shards[i]
	tx, err := d.Begin()
	if err != nil {
		return db.WithShard(err, i)
	}
	if err := tx.Insert(table, key, value); err != nil {
		tx.Rollback()
		return db.WithShard(err, i)
	}
	return db.WithShard(tx.Commit(), i)
}

// Get reads a key from its shard.
func (s *DB) Get(table string, key []byte) ([]byte, bool, error) {
	return s.shards[s.ShardOf(key)].Get(table, key)
}

// Delete removes a key in one auto-committed shard-local transaction.
func (s *DB) Delete(table string, key []byte) (bool, error) {
	i := s.ShardOf(key)
	d := s.shards[i]
	tx, err := d.Begin()
	if err != nil {
		return false, db.WithShard(err, i)
	}
	ok, err := tx.Delete(table, key)
	if err != nil {
		tx.Rollback()
		return false, db.WithShard(err, i)
	}
	return ok, db.WithShard(tx.Commit(), i)
}

// Op is one mutation in a cross-shard batch.
type Op struct {
	Table  string
	Key    []byte
	Value  []byte
	Delete bool
}

// Apply commits ops atomically across however many shards they touch.
// One shard: a plain local transaction, indistinguishable from Put.
// Several: two-phase commit — prepare provisional frames on every
// participant (ascending shard order), persist the decide record, flip
// the marks. All-or-nothing holds across any crash: recovery resolves
// in-doubt shards against the decide record.
func (s *DB) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	byShard := make(map[int][]Op)
	for _, op := range ops {
		i := s.ShardOf(op.Key)
		byShard[i] = append(byShard[i], op)
	}
	if len(byShard) == 1 {
		for i := range byShard {
			return s.applyLocal(i, byShard[i])
		}
	}
	order := make([]int, 0, len(byShard))
	for i := range byShard {
		order = append(order, i)
	}
	sort.Ints(order)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLanes(order)
	gtx := s.ctl.allocate()
	prepared := make([]*db.Tx, 0, len(order))
	abort := func() {
		for _, tx := range prepared {
			_ = tx.AbortPrepared()
		}
	}
	for _, i := range order {
		tx, err := s.shards[i].Begin()
		if err != nil {
			abort()
			return fmt.Errorf("shard %d: %w", i, db.WithShard(err, i))
		}
		if err := applyOps(tx, byShard[i]); err != nil {
			tx.Rollback()
			abort()
			return fmt.Errorf("shard %d: %w", i, db.WithShard(err, i))
		}
		if err := tx.Prepare(gtx); err != nil {
			// A failed Prepare rolled its own transaction back.
			abort()
			return fmt.Errorf("shard %d: %w", i, db.WithShard(err, i))
		}
		prepared = append(prepared, tx)
	}
	s.fire(StageAfterPrepare, gtx)
	s.ctl.commit(gtx)
	s.fire(StageAfterDecide, gtx)
	for _, tx := range prepared {
		if err := tx.CompletePrepared(); err != nil {
			// The decide record is durable: the transaction IS committed
			// and recovery will finish the flip. Surface the fault.
			return fmt.Errorf("completing gtx %d: %w", gtx, err)
		}
	}
	s.fire(StageAfterComplete, gtx)
	s.syncLanes(order)
	return nil
}

func (s *DB) applyLocal(i int, ops []Op) error {
	tx, err := s.shards[i].Begin()
	if err != nil {
		return err
	}
	if err := applyOps(tx, ops); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func applyOps(tx *db.Tx, ops []Op) error {
	for _, op := range ops {
		if op.Delete {
			if _, err := tx.Delete(op.Table, op.Key); err != nil {
				return err
			}
		} else if err := tx.Insert(op.Table, op.Key, op.Value); err != nil {
			return err
		}
	}
	return nil
}

// syncLanes models the real cost of cross-shard coordination: the
// participating shards' clock lanes meet at the current global maximum
// before and after the round, so a 2PC transaction cannot finish
// earlier than the busiest participant. No-op on a shared clock.
func (s *DB) syncLanes(shards []int) {
	now := s.plat.Clock.Now()
	for _, i := range shards {
		c := s.plat.View(i).Clock
		if c != s.plat.Clock {
			c.AdvanceTo(now)
		}
	}
}

// Scan iterates the whole keyspace in key order by merging the shards'
// sorted streams.
func (s *DB) Scan(table string, fn func(key, value []byte) bool) error {
	type kv struct{ k, v []byte }
	var all []kv
	for i, d := range s.shards {
		err := d.Scan(table, func(k, v []byte) bool {
			all = append(all, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
			return true
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	sort.Slice(all, func(a, b int) bool { return string(all[a].k) < string(all[b].k) })
	for _, e := range all {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Count sums the table's record count over all shards.
func (s *DB) Count(table string) (int, error) {
	total := 0
	for i, d := range s.shards {
		n, err := d.Count(table)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

// Checkpoint checkpoints every shard.
func (s *DB) Checkpoint() error {
	for i, d := range s.shards {
		if err := d.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Check runs every shard's structural invariant check.
func (s *DB) Check() error {
	for i, d := range s.shards {
		if err := d.Check(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Metrics returns the aggregate whole-machine snapshot; use
// MetricsFor for one shard's view.
func (s *DB) Metrics() metrics.Snapshot { return s.plat.Registry.Aggregate() }

// MetricsFor returns one shard's labeled snapshot.
func (s *DB) MetricsFor(i int) metrics.Snapshot {
	return s.plat.Registry.Snapshot(shardLabel(i))
}

// Close closes every shard cleanly.
func (s *DB) Close() error {
	var first error
	for i, d := range s.shards {
		if err := d.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}

// Abandon stops every shard's background goroutines without touching
// the (possibly crashed) platform — the PowerFail-path counterpart of
// Close.
func (s *DB) Abandon() {
	for _, d := range s.shards {
		d.Abandon()
	}
}
