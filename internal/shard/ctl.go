package shard

import (
	"fmt"
	"sync"

	"repro/internal/heapo"
	"repro/internal/nvram"
)

// The shardctl record is the coordinator's only persistent state: one
// NVRAM block in shard 0's heap, found through the heap's namespace
// table, holding
//
//	[0:8)   magic
//	[8:16)  shard count (layout guard: reopening with a different N
//	        would silently misroute keys)
//	[16:24) lastAlloc — the high-water mark of issued global
//	        transaction ids; persisted BEFORE any prepare uses a new id,
//	        so an id is never reused even if its transaction dies
//	[24:32) lastCommitted — the commit sequence record. Cross-shard 2PC
//	        rounds are serialized and allocate ascending ids, so one
//	        8-byte-atomic durable store of gtx here is the whole decide
//	        phase: a global transaction is committed iff gtx ≤
//	        lastCommitted. Recovery's PreparedResolver is exactly that
//	        predicate.
//
// The soundness of "≤" rests on two invariants the front-end enforces:
// rounds run one at a time under s.mu (so a later round cannot commit
// while an earlier round's marks are still provisional), and an aborted
// round physically unwinds its prepared marks before the mutex is
// released (so no frame carrying a skipped id survives to be resolved).
const (
	ctlMagic        = 0x4e56574153484431 // "NVWASHD1"
	ctlNShardsOff   = 8
	ctlAllocOff     = 16
	ctlCommittedOff = 24
	ctlSize         = 32
	ctlRootName     = "shardctl"
)

type ctlRecord struct {
	mu   sync.Mutex
	dev  *nvram.Device // shard 0's window
	addr uint64
}

// openCtl finds the shardctl record in shard 0's heap, creating and
// formatting it on first open. The create follows heapo's pending-
// block discipline: a crash before the namespace binding persists
// leaves only a pending block, which recovery reclaims.
func openCtl(h *heapo.Manager, nshards int) (*ctlRecord, error) {
	dev := h.Device()
	if addr, ok := h.GetRoot(ctlRootName); ok {
		c := &ctlRecord{dev: dev, addr: addr}
		if got := dev.Uint64(addr); got != ctlMagic {
			return nil, fmt.Errorf("shard: bad shardctl magic %#x", got)
		}
		if got := int(dev.Uint64(addr + ctlNShardsOff)); got != nshards {
			return nil, fmt.Errorf("shard: database has %d shards, opened with %d", got, nshards)
		}
		return c, nil
	}
	b, err := h.NVPreMalloc(ctlSize)
	if err != nil {
		return nil, fmt.Errorf("shard: allocating shardctl: %w", err)
	}
	dev.PutUint64(b.Addr, ctlMagic)
	dev.PutUint64(b.Addr+ctlNShardsOff, uint64(nshards))
	dev.PutUint64(b.Addr+ctlAllocOff, 0)
	dev.PutUint64(b.Addr+ctlCommittedOff, 0)
	persist(dev, b.Addr, b.Addr+ctlSize)
	if err := h.SetRoot(ctlRootName, b.Addr); err != nil {
		return nil, err
	}
	if err := h.NVMallocSetUsedFlag(b); err != nil {
		return nil, err
	}
	return &ctlRecord{dev: dev, addr: b.Addr}, nil
}

// persist makes [start,end) durable with the standard store discipline.
func persist(dev *nvram.Device, start, end uint64) {
	dev.MemoryBarrier()
	dev.Flush(start, end)
	dev.MemoryBarrier()
	dev.PersistBarrier()
}

// allocate issues the next global transaction id, durably, before the
// caller may use it in a prepare.
func (c *ctlRecord) allocate() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	gtx := c.dev.Uint64(c.addr+ctlAllocOff) + 1
	c.dev.PutUint64(c.addr+ctlAllocOff, gtx)
	persist(c.dev, c.addr+ctlAllocOff, c.addr+ctlAllocOff+8)
	return gtx
}

// commit is the decide phase: one durable 8-byte-atomic store of gtx
// into the commit sequence record. After it returns, the global
// transaction is committed no matter what crashes next.
func (c *ctlRecord) commit(gtx uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dev.PutUint64(c.addr+ctlCommittedOff, gtx)
	persist(c.dev, c.addr+ctlCommittedOff, c.addr+ctlCommittedOff+8)
}

// lastCommitted reads the commit sequence record.
func (c *ctlRecord) lastCommitted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dev.Uint64(c.addr + ctlCommittedOff)
}
