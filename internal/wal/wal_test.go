package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
	"repro/internal/dbfile"
	"repro/internal/ext4"
	"repro/internal/metrics"
	"repro/internal/pager"
	"repro/internal/simclock"
	"repro/internal/trace"
)

type env struct {
	fs  *ext4.FS
	db  pager.DBFile
	m   *metrics.Counters
	rec *trace.Recorder
}

func newEnv(t testing.TB) *env {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	rec := trace.New()
	dev := blockdev.New(blockdev.Config{Pages: 1 << 16}, clock, m, rec)
	fs := ext4.New(dev)
	f, err := fs.Create("test.db", "db")
	if err != nil {
		t.Fatal(err)
	}
	return &env{fs: fs, db: dbfile.New(f, 4096), m: m, rec: rec}
}

func (e *env) open(t testing.TB, mode Mode) *WAL {
	t.Helper()
	w, err := Open(e.fs, "test.db-wal", e.db, Options{Mode: mode}, e.m)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// mkPage builds a page image whose tail 24 bytes stay zero (compatible
// with both modes) and whose body carries a recognizable fill.
func mkPage(fill byte) []byte {
	p := make([]byte, 4096)
	for i := 0; i < 4096-24; i++ {
		p[i] = fill
	}
	return p
}

func commit(t testing.TB, w *WAL, pages map[uint32]byte) {
	t.Helper()
	var frames []pager.Frame
	for pgno, fill := range pages {
		frames = append(frames, pager.Frame{Pgno: pgno, Data: mkPage(fill)})
	}
	if err := w.CommitTransaction(frames); err != nil {
		t.Fatal(err)
	}
}

func TestCommitAndPageVersion(t *testing.T) {
	for _, mode := range []Mode{ModeStock, ModeOptimized} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t)
			w := e.open(t, mode)
			commit(t, w, map[uint32]byte{2: 0xAA})
			v, ok := w.PageVersion(2)
			if !ok || !bytes.Equal(v, mkPage(0xAA)) {
				t.Fatalf("PageVersion(2) ok=%v", ok)
			}
			if _, ok := w.PageVersion(3); ok {
				t.Fatal("PageVersion returned a page never logged")
			}
			if got := w.FramesSinceCheckpoint(); got != 1 {
				t.Fatalf("FramesSinceCheckpoint = %d", got)
			}
		})
	}
}

func TestLatestVersionWins(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	commit(t, w, map[uint32]byte{2: 0x01})
	commit(t, w, map[uint32]byte{2: 0x02})
	v, _ := w.PageVersion(2)
	if v[0] != 0x02 {
		t.Fatalf("PageVersion returned stale frame: %x", v[0])
	}
}

func TestRecoveryKeepsCommittedFrames(t *testing.T) {
	for _, mode := range []Mode{ModeStock, ModeOptimized} {
		t.Run(mode.String(), func(t *testing.T) {
			e := newEnv(t)
			w := e.open(t, mode)
			commit(t, w, map[uint32]byte{2: 0x11, 3: 0x22})
			commit(t, w, map[uint32]byte{4: 0x33})
			// Reopen (fresh in-memory state, same files).
			w2 := e.open(t, mode)
			if got := w2.FramesSinceCheckpoint(); got != 3 {
				t.Fatalf("recovered %d frames, want 3", got)
			}
			for pgno, fill := range map[uint32]byte{2: 0x11, 3: 0x22, 4: 0x33} {
				v, ok := w2.PageVersion(pgno)
				if !ok || v[0] != fill {
					t.Fatalf("page %d lost across reopen", pgno)
				}
			}
		})
	}
}

func TestRecoveryDiscardsTornTransaction(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeStock)
	commit(t, w, map[uint32]byte{2: 0x11})
	// Simulate a torn transaction: write a frame without a commit flag
	// directly (as if the crash hit between frame writes and fsync).
	buf, _, err := w.encodeFrame(9, mkPage(0x99), false, w.chain)
	if err != nil {
		t.Fatal(err)
	}
	w.file.WriteAt(buf, w.frameSlot(1))
	w.file.Fsync()

	w2 := e.open(t, ModeStock)
	if got := w2.FramesSinceCheckpoint(); got != 1 {
		t.Fatalf("recovered %d frames, want 1 (torn txn must be dropped)", got)
	}
	if _, ok := w2.PageVersion(9); ok {
		t.Fatal("uncommitted frame visible after recovery")
	}
}

func TestRecoveryAfterDevicePowerFail(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	commit(t, w, map[uint32]byte{2: 0x11})
	commit(t, w, map[uint32]byte{3: 0x22})
	e.fs.PowerFail()
	w2 := e.open(t, ModeOptimized)
	if got := w2.FramesSinceCheckpoint(); got != 2 {
		t.Fatalf("recovered %d frames after power fail, want 2", got)
	}
}

func TestCheckpointWritesBackAndTruncates(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	commit(t, w, map[uint32]byte{2: 0xAB, 3: 0xCD})
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w.FramesSinceCheckpoint() != 0 {
		t.Fatal("frames remain after checkpoint")
	}
	if _, ok := w.PageVersion(2); ok {
		t.Fatal("PageVersion served from a truncated log")
	}
	buf := make([]byte, 4096)
	if err := e.db.ReadPage(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, mkPage(0xAB)) {
		t.Fatal("checkpoint did not materialize page 2 in the db file")
	}
	// Frames after a checkpoint use the new salt and recover cleanly.
	commit(t, w, map[uint32]byte{5: 0x55})
	w2 := e.open(t, ModeOptimized)
	if got := w2.FramesSinceCheckpoint(); got != 1 {
		t.Fatalf("post-checkpoint recovery found %d frames, want 1", got)
	}
}

func TestStaleFramesFencedAfterCheckpoint(t *testing.T) {
	// A crash immediately after checkpoint must not resurrect old
	// frames: the salt changed.
	e := newEnv(t)
	w := e.open(t, ModeStock)
	commit(t, w, map[uint32]byte{2: 0x11, 3: 0x22, 4: 0x33})
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w2 := e.open(t, ModeStock)
	if got := w2.FramesSinceCheckpoint(); got != 0 {
		t.Fatalf("stale frames resurrected: %d", got)
	}
}

func TestEmptyCommitIsNoop(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeStock)
	if err := w.CommitTransaction(nil); err != nil {
		t.Fatal(err)
	}
	if w.FramesSinceCheckpoint() != 0 {
		t.Fatal("empty commit logged frames")
	}
}

func TestOptimizedRejectsNonZeroTail(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	bad := make([]byte, 4096)
	bad[4095] = 1
	err := w.CommitTransaction([]pager.Frame{{Pgno: 2, Data: bad}})
	if err == nil {
		t.Fatal("optimized mode accepted a page with a non-zero tail")
	}
}

func TestStockFrameMisalignmentDoublesDataWrites(t *testing.T) {
	// §5.4: a stock single-frame commit touches two device blocks; the
	// optimized layout touches one.
	dataBlocks := func(mode Mode) int {
		e := newEnv(t)
		w := e.open(t, mode)
		e.rec.Reset()
		commit(t, w, map[uint32]byte{2: 0xEE})
		n := 0
		for _, ev := range e.rec.Events() {
			if ev.Tag == TagWAL {
				n++
			}
		}
		return n
	}
	stock, opt := dataBlocks(ModeStock), dataBlocks(ModeOptimized)
	if stock < 2 {
		t.Fatalf("stock commit wrote %d wal blocks, want >= 2 (misaligned frame)", stock)
	}
	if opt != 1 {
		t.Fatalf("optimized commit wrote %d wal blocks, want 1", opt)
	}
}

func TestOptimizedJournalTrafficLower(t *testing.T) {
	journalBytes := func(mode Mode) int {
		e := newEnv(t)
		w := e.open(t, mode)
		e.rec.Reset()
		for i := 0; i < 10; i++ {
			commit(t, w, map[uint32]byte{uint32(2 + i): byte(i + 1)})
		}
		return e.rec.BytesByTag()[ext4.TagJournal]
	}
	stock, opt := journalBytes(ModeStock), journalBytes(ModeOptimized)
	if opt >= stock {
		t.Fatalf("optimized journal traffic %d not below stock %d", opt, stock)
	}
	red := 1 - float64(opt)/float64(stock)
	if red < 0.2 {
		t.Fatalf("journal reduction %.0f%%, expected substantial (paper ~40%%)", red*100)
	}
}

func TestMetricsCounts(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	commit(t, w, map[uint32]byte{2: 1, 3: 2})
	if got := e.m.Count(metrics.WALFrames); got != 2 {
		t.Fatalf("WALFrames = %d", got)
	}
	if got := e.m.Count(metrics.Transactions); got != 1 {
		t.Fatalf("Transactions = %d", got)
	}
	w.Checkpoint()
	if got := e.m.Count(metrics.Checkpoints); got != 1 {
		t.Fatalf("Checkpoints = %d", got)
	}
}

func TestPageVersionAtMarks(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	m0 := w.Mark()
	commit(t, w, map[uint32]byte{2: 0x01})
	m1 := w.Mark()
	commit(t, w, map[uint32]byte{2: 0x02, 3: 0x03})
	m2 := w.Mark()
	commit(t, w, map[uint32]byte{2: 0x04})

	if _, ok := w.PageVersionAt(2, m0); ok {
		t.Fatal("mark 0 sees a later frame")
	}
	if v, ok := w.PageVersionAt(2, m1); !ok || v[0] != 0x01 {
		t.Fatalf("mark 1 page 2 = %x (ok=%v)", v[0], ok)
	}
	if v, ok := w.PageVersionAt(2, m2); !ok || v[0] != 0x02 {
		t.Fatalf("mark 2 page 2 = %x", v[0])
	}
	if _, ok := w.PageVersionAt(3, m1); ok {
		t.Fatal("mark 1 sees page 3")
	}
	if v, ok := w.PageVersionAt(3, m2); !ok || v[0] != 0x03 {
		t.Fatalf("mark 2 page 3 = %x", v[0])
	}
	// The latest view agrees with PageVersion.
	if v, ok := w.PageVersionAt(2, w.Mark()); !ok || v[0] != 0x04 {
		t.Fatalf("latest mark page 2 = %x", v[0])
	}
	// Out-of-range marks clamp.
	if v, ok := w.PageVersionAt(2, w.Mark()+100); !ok || v[0] != 0x04 {
		t.Fatalf("clamped mark = %x", v[0])
	}
}

// Property: after random committed transactions and a crash at an
// arbitrary point (possibly mid-write), recovery yields exactly the
// durably committed prefix, for both modes.
func TestPropertyCrashRecoveryYieldsCommittedPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mode := ModeStock
		if seed%2 == 0 {
			mode = ModeOptimized
		}
		e := newEnv(t)
		w, err := Open(e.fs, "test.db-wal", e.db, Options{Mode: mode}, e.m)
		if err != nil {
			return false
		}
		// Model of committed page contents.
		model := map[uint32]byte{}
		txns := 3 + rng.Intn(12)
		for i := 0; i < txns; i++ {
			var frames []pager.Frame
			n := 1 + rng.Intn(3)
			tx := map[uint32]byte{}
			for j := 0; j < n; j++ {
				pgno := uint32(2 + rng.Intn(8))
				fill := byte(1 + rng.Intn(255))
				tx[pgno] = fill
			}
			for pgno, fill := range tx {
				frames = append(frames, pager.Frame{Pgno: pgno, Data: mkPage(fill)})
			}
			if err := w.CommitTransaction(frames); err != nil {
				return false
			}
			for pgno, fill := range tx {
				model[pgno] = fill
			}
		}
		// Possibly leave torn bytes: write garbage at the next frame slot
		// without fsync, then crash.
		if rng.Intn(2) == 0 {
			garbage := make([]byte, w.frameBytes())
			rng.Read(garbage)
			w.file.WriteAt(garbage, w.frameSlot(len(w.frames)))
		}
		e.fs.PowerFail()

		w2, err := Open(e.fs, "test.db-wal", e.db, Options{Mode: mode}, e.m)
		if err != nil {
			return false
		}
		for pgno, fill := range model {
			v, ok := w2.PageVersion(pgno)
			if !ok || v[0] != fill {
				return false
			}
		}
		return w2.FramesSinceCheckpoint() <= len(w.frames)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestManyTransactionsThenRecovery(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeOptimized)
	for i := 0; i < 200; i++ {
		commit(t, w, map[uint32]byte{uint32(2 + i%50): byte(i)})
	}
	w2 := e.open(t, ModeOptimized)
	if got := w2.FramesSinceCheckpoint(); got != 200 {
		t.Fatalf("recovered %d frames, want 200", got)
	}
	for i := 150; i < 200; i++ {
		pgno := uint32(2 + i%50)
		v, ok := w2.PageVersion(pgno)
		if !ok || v[0] != byte(i) {
			t.Fatalf("page %d: got fill %x, want %x", pgno, v[0], byte(i))
		}
	}
}
