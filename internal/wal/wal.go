// Package wal implements SQLite-style write-ahead logging on a file
// system over flash storage — the baseline NVWAL is compared against in
// Figures 8 and 9. Two modes are provided:
//
//   - ModeStock: the SQLite 3.8 layout, where every frame is a 24-byte
//     header followed by the full page; frames are therefore misaligned
//     with file-system blocks and a single-page commit writes two device
//     blocks (§5.4).
//   - ModeOptimized: the paper's two ad-hoc improvements — frames merged
//     into one aligned block (paired with the B+tree's 24-byte reserved
//     tail from the early-split algorithm) and WALDIO-style
//     pre-allocation with doubling, which avoids most EXT4
//     block-allocation journaling.
//
// Commit durability follows SQLite: all frames plus the commit mark in
// the last frame's header are flushed by a single fsync (§2). Frame
// checksums are chained so recovery stops at the first frame that does
// not continue the sequence, which also fences stale frames left over
// from before a crash.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
	"sync"
	"time"

	"repro/internal/ext4"
	"repro/internal/metrics"
	"repro/internal/pager"
)

// Mode selects the stock or optimized on-disk layout.
type Mode int

const (
	// ModeStock is the misaligned SQLite 3.8 layout.
	ModeStock Mode = iota
	// ModeOptimized aligns frames to file-system blocks and
	// pre-allocates log pages.
	ModeOptimized
)

func (m Mode) String() string {
	if m == ModeOptimized {
		return "optimized"
	}
	return "stock"
}

// On-file sizes.
const (
	headerSize      = 32
	frameHeaderSize = 24
	// TagWAL labels WAL traffic in block traces (Figure 8).
	TagWAL = "db-wal"
)

// Options configures a WAL.
type Options struct {
	Mode Mode
	// InitialPrealloc is the page count of the first pre-allocation in
	// optimized mode (the paper pre-allocates 8 pages, doubling each
	// time the pre-allocated region fills, §5.4).
	InitialPrealloc int
}

var walMagic = []byte("SQLTWAL1")

// ErrCorrupt reports an unrecoverable WAL header.
var ErrCorrupt = errors.New("wal: corrupt log header")

var crcTable = crc64.MakeTable(crc64.ECMA)

type frameInfo struct {
	pgno   uint32
	commit bool
}

// WAL is one write-ahead log file. It implements pager.Journal,
// pager.SnapshotJournal and pager.GroupJournal. All methods are safe
// for concurrent use: snapshot readers share a reader-writer lock that
// CommitTransaction, CommitGroup and Checkpoint take exclusively.
type WAL struct {
	file     *ext4.File
	db       pager.DBFile
	pageSize int
	opts     Options
	m        *metrics.Counters

	// mu guards the volatile log index below.
	mu       sync.RWMutex
	salt     uint64
	frames   []frameInfo
	index    map[uint32]int   // pgno -> latest committed frame
	byPage   map[uint32][]int // pgno -> ascending frame indices (wal-index)
	chain    uint64           // running checksum of the last frame
	prealloc int              // next pre-allocation size in pages
	// nBackfill is the backfill watermark: frames below it are already
	// durable in the database file (SQLite's nBackfill). The log only
	// resets (truncate + fresh salt) when fully backfilled and no
	// snapshot reader is open; otherwise a checkpoint just advances the
	// watermark and commits keep appending.
	nBackfill int
	// epoch counts log resets. Marks encode it in their high bits so a
	// mark taken before a reset can never index frames appended after
	// it — such readers fall back to the (fully backfilled) database
	// file instead.
	epoch int
	// encBuf and coal are commit-path scratch, reused across
	// transactions (guarded by w.mu; ext4.WriteAt copies into the page
	// cache, so the buffer is free again as soon as the write returns).
	encBuf []byte
	coal   pager.Coalescer
	// ckptMu serializes checkpointers; never held by commits or reads.
	ckptMu sync.Mutex
}

// markBits is the width of the frame-index part of an encoded mark.
const markBits = 32

func (w *WAL) encodeMark(frame int) int { return w.epoch<<markBits | frame }

// Open attaches to (or creates) the write-ahead log file name on fs.
// Existing committed frames are recovered; a trailing uncommitted or
// torn transaction is discarded, as in SQLite's recovery (§4.3).
func Open(fs *ext4.FS, name string, db pager.DBFile, opts Options, m *metrics.Counters) (*WAL, error) {
	if opts.InitialPrealloc <= 0 {
		opts.InitialPrealloc = 8
	}
	if m == nil {
		m = &metrics.Counters{}
	}
	f, err := fs.OpenOrCreate(name, TagWAL)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		file:     f,
		db:       db,
		pageSize: db.PageSize(),
		opts:     opts,
		m:        m,
		index:    make(map[uint32]int),
		byPage:   make(map[uint32][]int),
		prealloc: opts.InitialPrealloc,
	}
	if f.Size() == 0 {
		w.salt = 1
		if err := w.writeHeader(); err != nil {
			return nil, err
		}
		if err := f.Fsync(); err != nil {
			return nil, err
		}
		return w, nil
	}
	if err := w.recover(); err != nil {
		return nil, err
	}
	return w, nil
}

// headerBytes encodes the WAL header.
func (w *WAL) headerBytes() []byte {
	h := make([]byte, headerSize)
	copy(h, walMagic)
	binary.LittleEndian.PutUint32(h[8:], 1) // format version
	binary.LittleEndian.PutUint32(h[12:], uint32(w.pageSize))
	binary.LittleEndian.PutUint64(h[16:], w.salt)
	binary.LittleEndian.PutUint64(h[24:], crc64.Checksum(h[:24], crcTable))
	return h
}

func (w *WAL) writeHeader() error {
	if _, err := w.file.WriteAt(w.headerBytes(), 0); err != nil {
		return err
	}
	w.chain = w.salt
	return nil
}

// frameSlot returns the file offset of frame i.
func (w *WAL) frameSlot(i int) int64 {
	if w.opts.Mode == ModeOptimized {
		// Header occupies the first block; each frame is one aligned
		// block merging the 24-byte header with the page content (the
		// page's reserved tail makes room).
		return int64(w.pageSize) * int64(1+i)
	}
	return headerSize + int64(i)*int64(frameHeaderSize+w.pageSize)
}

// frameBytes returns the on-file size of one frame.
func (w *WAL) frameBytes() int {
	if w.opts.Mode == ModeOptimized {
		return w.pageSize
	}
	return frameHeaderSize + w.pageSize
}

// encodeFrame builds one frame image in the reusable w.encBuf scratch
// (valid until the next encodeFrame call; w.mu serializes callers). The
// checksum chains from the previous frame so recovery can detect where
// a valid sequence ends.
func (w *WAL) encodeFrame(pgno uint32, data []byte, commit bool, prevChain uint64) ([]byte, uint64, error) {
	payload := data
	if w.opts.Mode == ModeOptimized {
		// The early-split B+tree keeps the last frameHeaderSize bytes of
		// every page zero; refusing non-zero tails catches a
		// misconfigured pairing instead of corrupting data.
		for _, b := range data[w.pageSize-frameHeaderSize:] {
			if b != 0 {
				return nil, 0, fmt.Errorf("wal: optimized mode requires pages with a zero %d-byte tail (pair with the early-split btree)", frameHeaderSize)
			}
		}
		payload = data[:w.pageSize-frameHeaderSize]
	}
	if cap(w.encBuf) < frameHeaderSize+len(payload) {
		w.encBuf = make([]byte, frameHeaderSize+len(payload))
	}
	buf := w.encBuf[:frameHeaderSize+len(payload)]
	binary.LittleEndian.PutUint32(buf[0:], pgno)
	// The commit word is written unconditionally: the scratch may hold a
	// stale commit mark from the previous transaction's last frame.
	commitWord := uint32(0)
	if commit {
		commitWord = 1
	}
	binary.LittleEndian.PutUint32(buf[4:], commitWord)
	binary.LittleEndian.PutUint64(buf[8:], w.salt)
	copy(buf[frameHeaderSize:], payload)
	sum := crc64.Update(prevChain, crcTable, buf[:16])
	sum = crc64.Update(sum, crcTable, payload)
	binary.LittleEndian.PutUint64(buf[16:], sum)
	return buf, sum, nil
}

// decodeFrame validates frame i against the running chain and returns
// its header info.
func (w *WAL) decodeFrame(i int, prevChain uint64) (frameInfo, uint64, bool) {
	buf := make([]byte, w.frameBytes())
	if n, err := w.file.ReadAt(buf, w.frameSlot(i)); err != nil || n < len(buf) {
		return frameInfo{}, 0, false
	}
	pgno := binary.LittleEndian.Uint32(buf[0:])
	commit := binary.LittleEndian.Uint32(buf[4:]) == 1
	salt := binary.LittleEndian.Uint64(buf[8:])
	stored := binary.LittleEndian.Uint64(buf[16:])
	if pgno == 0 || salt != w.salt {
		return frameInfo{}, 0, false
	}
	sum := crc64.Update(prevChain, crcTable, buf[:16])
	sum = crc64.Update(sum, crcTable, buf[frameHeaderSize:])
	if sum != stored {
		return frameInfo{}, 0, false
	}
	return frameInfo{pgno: pgno, commit: commit}, sum, true
}

// recover scans the log, keeping the longest checksum-chained prefix
// ending at a commit frame.
func (w *WAL) recover() error {
	hdr := make([]byte, headerSize)
	if n, err := w.file.ReadAt(hdr, 0); err != nil && n < headerSize {
		return ErrCorrupt
	}
	if string(hdr[:8]) != string(walMagic) {
		return ErrCorrupt
	}
	if binary.LittleEndian.Uint64(hdr[24:]) != crc64.Checksum(hdr[:24], crcTable) {
		return ErrCorrupt
	}
	if int(binary.LittleEndian.Uint32(hdr[12:])) != w.pageSize {
		return fmt.Errorf("wal: page size mismatch")
	}
	w.salt = binary.LittleEndian.Uint64(hdr[16:])
	w.chain = w.salt

	var scanned []frameInfo
	chain := w.salt
	lastCommit := -1
	for i := 0; ; i++ {
		fi, next, ok := w.decodeFrame(i, chain)
		if !ok {
			break
		}
		scanned = append(scanned, fi)
		chain = next
		if fi.commit {
			lastCommit = i
			w.chain = chain
		}
	}
	// Keep only frames up to the last commit; later frames belong to a
	// transaction that never committed.
	w.frames = scanned[:lastCommit+1]
	for i, fi := range w.frames {
		w.index[fi.pgno] = i
		w.byPage[fi.pgno] = append(w.byPage[fi.pgno], i)
	}
	return nil
}

// lockWriter takes the exclusive writer lock, charging a contended
// wait to the commit-stall metric (wall time: the simulated clock does
// not advance while a goroutine waits on a mutex). An uncontended
// acquisition charges nothing.
func (w *WAL) lockWriter() {
	if w.mu.TryLock() {
		return
	}
	start := time.Now()
	w.mu.Lock()
	w.m.Inc(metrics.CommitStallNanos, time.Since(start).Nanoseconds())
}

// CommitTransaction implements pager.Journal: append one frame per
// dirty page, the last carrying the commit mark, then fsync once.
func (w *WAL) CommitTransaction(frames []pager.Frame) error {
	w.lockWriter()
	defer w.mu.Unlock()
	return w.commitFrames(frames)
}

// CommitGroup implements pager.GroupJournal: the groups' frames are
// coalesced page-wise and appended under a single commit mark, so the
// whole group shares one fsync. A mid-append failure leaves the frame
// slots unreferenced (w.frames never advanced); they are simply
// overwritten by the next commit.
func (w *WAL) CommitGroup(groups [][]pager.Frame) error {
	if len(groups) == 0 {
		return nil
	}
	w.lockWriter()
	defer w.mu.Unlock()
	coalesced := w.coal.Coalesce(groups)
	if len(coalesced) == 0 {
		// A group of no-op transactions still committed: its members were
		// acknowledged, so the transaction and group tallies must include
		// them even though nothing reaches the log file.
		w.m.Inc(metrics.Transactions, int64(len(groups)))
		w.m.Inc(metrics.GroupCommits, 1)
		return nil
	}
	if err := w.commitFrames(coalesced); err != nil {
		return err
	}
	// commitFrames counted one committed transaction; credit the rest.
	w.m.Inc(metrics.Transactions, int64(len(groups)-1))
	w.m.Inc(metrics.GroupCommits, 1)
	return nil
}

// commitFrames is CommitTransaction with w.mu held.
func (w *WAL) commitFrames(frames []pager.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	base := len(w.frames)
	if w.opts.Mode == ModeOptimized {
		w.ensurePrealloc(base + len(frames))
	}
	chain := w.chain
	for i, fr := range frames {
		buf, next, err := w.encodeFrame(fr.Pgno, fr.Data, i == len(frames)-1, chain)
		if err != nil {
			return err
		}
		if _, err := w.file.WriteAt(buf, w.frameSlot(base+i)); err != nil {
			return err
		}
		chain = next
	}
	if err := w.file.Fsync(); err != nil {
		return err
	}
	w.chain = chain
	for i, fr := range frames {
		w.frames = append(w.frames, frameInfo{pgno: fr.Pgno, commit: i == len(frames)-1})
		w.index[fr.Pgno] = base + i
		w.byPage[fr.Pgno] = append(w.byPage[fr.Pgno], base+i)
	}
	w.m.Inc(metrics.WALFrames, int64(len(frames)))
	w.m.Inc(metrics.Transactions, 1)
	return nil
}

// ensurePrealloc extends the file allocation to cover frame count
// frames, doubling the pre-allocation each time it fills (§5.4).
func (w *WAL) ensurePrealloc(frameCount int) {
	needPages := int(w.frameSlot(frameCount-1))/w.pageSize + 1
	for w.file.AllocatedPages() < needPages {
		w.file.Preallocate(w.prealloc)
		w.prealloc *= 2
	}
}

// PageVersion implements pager.Journal: reconstruct the latest committed
// image of pgno from its newest frame.
func (w *WAL) PageVersion(pgno uint32) ([]byte, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.pageVersionLocked(pgno)
}

func (w *WAL) pageVersionLocked(pgno uint32) ([]byte, bool) {
	i, ok := w.index[pgno]
	if !ok {
		return nil, false
	}
	page := make([]byte, w.pageSize)
	if !w.readPayloadInto(i, page) {
		return nil, false
	}
	return page, true
}

// PageVersionInto implements pager.PageVersionInto: read the newest
// committed image of pgno straight into the caller's buffer, skipping
// the intermediate allocation.
func (w *WAL) PageVersionInto(pgno uint32, buf []byte) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	i, ok := w.index[pgno]
	if !ok {
		return false
	}
	return w.readPayloadInto(i, buf)
}

// readPayloadInto reads frame i's payload into buf (a full page). In
// optimized mode the payload omits the page's zero tail, which is
// restored here.
func (w *WAL) readPayloadInto(i int, buf []byte) bool {
	payload := w.frameBytes() - frameHeaderSize
	if n, err := w.file.ReadAt(buf[:payload], w.frameSlot(i)+frameHeaderSize); err != nil || n < payload {
		return false
	}
	for j := payload; j < len(buf); j++ {
		buf[j] = 0
	}
	return true
}

// FramesSinceCheckpoint implements pager.Journal: frames not yet
// backfilled into the database file.
func (w *WAL) FramesSinceCheckpoint() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.frames) - w.nBackfill
}

// Mark implements pager.SnapshotJournal: the end of the committed log,
// tagged with the reset epoch so marks stay monotone across log resets.
func (w *WAL) Mark() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.encodeMark(len(w.frames))
}

// PageVersionAt implements pager.SnapshotJournal: the newest frame for
// pgno below the mark wins (every file-WAL frame is a full page image),
// found by binary search in the per-page index. A mark from an earlier
// epoch predates a log reset — a reset requires the log fully
// backfilled, so the database file serves that snapshot exactly.
func (w *WAL) PageVersionAt(pgno uint32, mark int) ([]byte, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if mark>>markBits != w.epoch {
		return nil, false
	}
	idxs := w.byPage[pgno]
	n := sort.SearchInts(idxs, mark&(1<<markBits-1))
	if n == 0 {
		return nil, false
	}
	page := make([]byte, w.pageSize)
	if !w.readPayloadInto(idxs[n-1], page) {
		return nil, false
	}
	return page, true
}

// Checkpoint implements pager.Journal as a blocking alias: one
// incremental round with no reader gate.
func (w *WAL) Checkpoint() error { return w.CheckpointIncremental(nil) }

// CheckpointIncremental implements pager.IncrementalJournal: write the
// unbackfilled frames' pages to the database file and fsync with no
// lock held — commits keep appending, since frame slots below the
// watermark are never rewritten — then advance the backfill watermark.
// The log file itself only resets (truncate + fresh salt, invalidating
// frame indices) when it is fully backfilled and the gate confirms no
// snapshot reader is open at all; a growing log between resets is the
// price of not blocking, exactly as in SQLite.
//
// gate, when non-nil, is consulted with the candidate watermark before
// any page is written back; returning false aborts the round with
// pager.ErrCheckpointPending.
func (w *WAL) CheckpointIncremental(gate func(watermark int) bool) error {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()

	// Snapshot the dirty region under the lock. index[pgno] is the
	// page's newest frame; it is below the watermark by construction.
	w.mu.RLock()
	watermark := len(w.frames)
	dirty := make(map[uint32]int)
	for i := w.nBackfill; i < watermark; i++ {
		pgno := w.frames[i].pgno
		dirty[pgno] = w.index[pgno]
	}
	frames := len(w.frames)
	w.mu.RUnlock()
	if watermark == w.nBackfill && frames == 0 {
		return nil
	}

	// The writeback below makes images newer than some marks visible in
	// the database file; the gate guarantees no open reader would see
	// them through its fallback path.
	if gate != nil && !gate(w.encodeMark(watermark)) {
		return pager.ErrCheckpointPending
	}

	if len(dirty) > 0 {
		start := time.Now()
		page := make([]byte, w.pageSize)
		for pgno, i := range dirty {
			if !w.readPayloadInto(i, page) {
				return fmt.Errorf("wal: lost frame for page %d during checkpoint", pgno)
			}
			if err := w.db.WritePage(pgno, page); err != nil {
				return err
			}
		}
		if err := w.db.Sync(); err != nil {
			return err
		}
		w.m.Inc(metrics.CheckpointPages, int64(len(dirty)))
		w.m.Inc(metrics.CheckpointNanos, time.Since(start).Nanoseconds())
	}

	// Resetting the log invalidates frame indices, so it needs the log
	// fully backfilled and no reader open at any mark (every open mark
	// is at most the current end): probe the gate one past the end.
	// Checked before re-taking w.mu — the gate takes the database
	// layer's reader-registry lock, which readers hold while calling
	// Mark. A reader slipping in after the probe still reads correctly:
	// its epoch-tagged mark falls back to the database file, which the
	// reset just made exact.
	allowReset := gate == nil || gate(w.encodeMark(watermark)+1)

	w.mu.Lock()
	defer w.mu.Unlock()
	w.nBackfill = watermark
	didReset := false
	if allowReset && len(w.frames) == watermark && watermark > 0 {
		// A new salt fences any stale frames left in the file.
		w.salt++
		w.file.Truncate(0)
		if err := w.writeHeader(); err != nil {
			return err
		}
		if err := w.file.Fsync(); err != nil {
			return err
		}
		w.frames = nil
		w.index = make(map[uint32]int)
		w.byPage = make(map[uint32][]int)
		w.nBackfill = 0
		w.epoch++
		w.prealloc = w.opts.InitialPrealloc
		didReset = true
	}
	if len(dirty) > 0 || didReset {
		w.m.Inc(metrics.Checkpoints, 1)
	}
	return nil
}

// Mode reports the WAL layout mode.
func (w *WAL) Mode() Mode { return w.opts.Mode }
