package wal

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/pager"
)

// TestGroupCommitAccounting pins the GroupJournal metric contract the
// file WAL shares with NVWAL: every member transaction is counted, one
// group commit per batch — including a group whose members coalesce to
// zero frames (those transactions were acknowledged; they must not
// vanish from the txn count throughput numbers divide by).
func TestGroupCommitAccounting(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeStock)

	before := e.m.Snapshot()
	groups := [][]pager.Frame{
		{{Pgno: 2, Data: mkPage('a')}},
		{{Pgno: 2, Data: mkPage('b')}},
		{{Pgno: 3, Data: mkPage('c')}},
	}
	if err := w.CommitGroup(groups); err != nil {
		t.Fatal(err)
	}
	delta := e.m.Snapshot().Sub(before)
	if got := delta.Count(metrics.Transactions); got != 3 {
		t.Fatalf("Transactions delta = %d, want 3", got)
	}
	if got := delta.Count(metrics.GroupCommits); got != 1 {
		t.Fatalf("GroupCommits delta = %d, want 1", got)
	}
	if img, ok := w.PageVersion(2); !ok || !bytes.Equal(img, mkPage('b')) {
		t.Fatal("coalesced group lost page 2's final image")
	}

	// Nil group: true no-op.
	mid := e.m.Snapshot()
	if err := w.CommitGroup(nil); err != nil {
		t.Fatal(err)
	}
	d2 := e.m.Snapshot().Sub(mid)
	if d2.Count(metrics.Transactions) != 0 || d2.Count(metrics.GroupCommits) != 0 {
		t.Fatalf("nil group moved metrics: %v", d2)
	}

	// Zero-frame members still count as committed transactions.
	mid = e.m.Snapshot()
	if err := w.CommitGroup([][]pager.Frame{{}, {}}); err != nil {
		t.Fatal(err)
	}
	d2 = e.m.Snapshot().Sub(mid)
	if got := d2.Count(metrics.Transactions); got != 2 {
		t.Fatalf("zero-frame group Transactions delta = %d, want 2", got)
	}
	if got := d2.Count(metrics.GroupCommits); got != 1 {
		t.Fatalf("zero-frame group GroupCommits delta = %d, want 1", got)
	}
	if got := d2.Count(metrics.WALFrames); got != 0 {
		t.Fatalf("zero-frame group wrote %d frames, want 0", got)
	}
}

// TestCommitStallOnlyWhenContended mirrors the NVWAL fix on the file
// WAL: uncontended commits charge nothing to CommitStallNanos.
func TestCommitStallOnlyWhenContended(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeStock)
	for i := byte(0); i < 10; i++ {
		commit(t, w, map[uint32]byte{2: i})
	}
	if got := e.m.Count(metrics.CommitStallNanos); got != 0 {
		t.Fatalf("uncontended commits charged %dns of commit stall, want 0", got)
	}

	for attempt := 0; attempt < 20; attempt++ {
		w.mu.Lock()
		done := make(chan struct{})
		go func() {
			w.lockWriter()
			w.mu.Unlock()
			close(done)
		}()
		time.Sleep(20 * time.Millisecond)
		w.mu.Unlock()
		<-done
		if e.m.Count(metrics.CommitStallNanos) > 0 {
			return
		}
	}
	t.Fatal("contended lockWriter never charged the stall metric")
}

// TestCommitFrameEncodeScratchReuse pins the reused frame-encode
// buffer: a commit frame followed by a non-commit frame in the same
// buffer must not leak the stale commit word, or recovery would end a
// transaction early.
func TestCommitFrameEncodeScratchReuse(t *testing.T) {
	e := newEnv(t)
	w := e.open(t, ModeStock)
	// Transaction 1 ends with a commit frame (sets the commit word in
	// the scratch); transaction 2's first frame reuses the scratch and
	// must clear it.
	commit(t, w, map[uint32]byte{2: 'a'})
	if err := w.CommitTransaction([]pager.Frame{
		{Pgno: 3, Data: mkPage('b')},
		{Pgno: 4, Data: mkPage('c')},
	}); err != nil {
		t.Fatal(err)
	}
	// Recovery decodes the on-file bytes, so a leaked commit word in
	// frame 1's slot shows up here even though the in-memory index was
	// built without re-reading the file.
	w2, err := Open(e.fs, "test.db-wal", e.db, Options{Mode: ModeStock}, e.m)
	if err != nil {
		t.Fatal(err)
	}
	var commits []bool
	for _, fi := range w2.frames {
		commits = append(commits, fi.commit)
	}
	want := []bool{true, false, true}
	if len(commits) != len(want) {
		t.Fatalf("frame count = %d, want %d", len(commits), len(want))
	}
	for i := range want {
		if commits[i] != want[i] {
			t.Fatalf("frame %d commit flag = %v, want %v (stale commit word leaked from encode scratch)", i, commits[i], want[i])
		}
	}
}
