// Primary: local commits plus log shipping. One sender goroutine per
// replica runs a strict send/ack loop — resume from the replica's
// HELLO cursor when the mark range is still exportable, full-snapshot
// re-seed when it is not (checkpoint-retired gap, incarnation change,
// chain nack). Commits optionally wait for a quorum of replica acks
// (semi-sync): a client-acked write is then guaranteed present on the
// most-caught-up replica, which is exactly the durability the
// failover oracle checks. An ack wait that exhausts its deadline
// AFTER the local commit surfaces server.ErrIndeterminate — the write
// may or may not survive a failover, and the client is told so.
package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/simclock"
)

// PrimaryOptions configures replication on a primary.
type PrimaryOptions struct {
	// Epoch is the fencing epoch AND the log incarnation shipped to
	// replicas. A new primary (initial boot or promotion) must use a
	// fresh epoch: marks are meaningless across primaries.
	Epoch uint64
	// AckReplicas is the replica-ack quorum a commit waits for
	// (semi-sync). 0 = fully asynchronous shipping.
	AckReplicas int
	// AckTimeout bounds the ack wait in real time (default 2s) on top
	// of the request context. Expiry after the local commit returns
	// an error wrapping server.ErrIndeterminate.
	AckTimeout time.Duration
	// PollEvery is the sender's fallback poll interval for new frames
	// when no commit kick arrives (default 2ms, real time).
	PollEvery time.Duration
	// AckBudget enables automatic quarantine (0 = disabled): a replica
	// whose send→ack latency EWMA breaches the budget is dropped from
	// the semi-sync quorum — shipping continues, but commits stop
	// waiting on it. Hysteresis re-admits it once the EWMA falls below
	// half the budget. When every quorum-eligible replica is
	// quarantined, commits degrade to asynchronous acks (the MySQL
	// semi-sync wait-no-slave=off behaviour) rather than timing out
	// one by one behind replicas known to be sick.
	AckBudget time.Duration
	// Clock is the primary node's virtual-time lane. With it, ack
	// latency is measured in virtual time — over netsim every ack
	// arrives real-time-fast no matter how slow the replica is
	// virtually, so a real-time EWMA would be blind to exactly the
	// gray slowness quarantine exists to catch. Nil falls back to real
	// time (TCP deployments).
	Clock *simclock.Clock
	// Metrics receives replication counters (default: the DB's sink).
	Metrics *metrics.Counters
}

// Primary wraps a local database as a replicating server.Engine.
type Primary struct {
	eng  *server.DBEngine
	d    *db.DB
	wal  *core.NVWAL
	opts PrimaryOptions
	m    *metrics.Counters

	mu       sync.Mutex
	ackCond  *sync.Cond
	replicas []*replicaLink
	closed   bool

	// fenced holds a newer epoch this primary learned it was superseded
	// by (failover drivers call Fence on the old primary when promoting
	// a new one). Senders stop shipping and any in-flight re-seed
	// aborts: a seed stamped with a stale incarnation would only be
	// thrown away by the replica's next hello.
	fenced atomic.Uint64
}

// replicaLink is one replica's shipping state.
type replicaLink struct {
	p    *Primary
	addr string
	dial server.Dialer
	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	mu      sync.Mutex
	applied int // highest acked applied mark
	// ackEwma is the rolling send→ack latency estimate (virtual time
	// when PrimaryOptions.Clock is set); quarantined drops the link
	// from the semi-sync quorum while it breaches AckBudget.
	ackEwma     time.Duration
	quarantined bool
}

// NewPrimary wraps d. The caller keeps ownership of d (Close order:
// Primary first, then the DB).
func NewPrimary(d *db.DB, opts PrimaryOptions) (*Primary, error) {
	wal, ok := d.Journal().(*core.NVWAL)
	if !ok {
		return nil, fmt.Errorf("repl: primary requires JournalNVWAL")
	}
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 2 * time.Second
	}
	if opts.PollEvery <= 0 {
		opts.PollEvery = 2 * time.Millisecond
	}
	if opts.Metrics == nil {
		opts.Metrics = d.Metrics()
	}
	p := &Primary{
		eng:  server.NewDBEngine(d, opts.Epoch),
		d:    d,
		wal:  wal,
		opts: opts,
		m:    opts.Metrics,
	}
	p.ackCond = sync.NewCond(&p.mu)
	return p, nil
}

// AddReplica starts shipping to the replica reachable at addr via
// dial. The sender reconnects with backoff for as long as the primary
// lives; a replica that is down just lags.
func (p *Primary) AddReplica(addr string, dial server.Dialer) {
	rl := &replicaLink{
		p:    p,
		addr: addr,
		dial: dial,
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.mu.Lock()
	p.replicas = append(p.replicas, rl)
	p.mu.Unlock()
	go rl.run()
}

// Close stops all senders. The wrapped DB stays open.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	reps := append([]*replicaLink(nil), p.replicas...)
	p.ackCond.Broadcast()
	p.mu.Unlock()
	for _, rl := range reps {
		close(rl.quit)
	}
	for _, rl := range reps {
		<-rl.done
	}
}

// DB exposes the wrapped database.
func (p *Primary) DB() *db.DB { return p.d }

// Get serves reads from the local (fully applied) state.
func (p *Primary) Get(table string, key []byte) ([]byte, bool, error) {
	return p.eng.Get(table, key)
}

// Apply commits locally, kicks shipping, and (semi-sync) waits for
// the ack quorum. The quorum guarantee: on success, every byte of
// this commit is applied on at least AckReplicas replicas.
func (p *Primary) Apply(ctx context.Context, table string, ops []server.Op) (uint64, error) {
	seq, err := p.eng.Apply(ctx, table, ops)
	if err != nil {
		return 0, err
	}
	// The commit is durable locally at (at least) the current mark.
	target := p.wal.Mark()
	p.kickAll()
	if p.opts.AckReplicas <= 0 {
		return seq, nil
	}
	p.m.Inc(metrics.ReplAckWaits, 1)
	if err := p.waitAcks(ctx, target); err != nil {
		return seq, err
	}
	return seq, nil
}

// waitAcks blocks until AckReplicas replicas acked applied >= target.
func (p *Primary) waitAcks(ctx context.Context, target int) error {
	deadline := time.After(p.opts.AckTimeout)
	expired := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(expired) }) }
	go func() {
		select {
		case <-ctx.Done():
		case <-deadline:
		case <-expired:
			return
		}
		stop()
		p.mu.Lock()
		p.ackCond.Broadcast()
		p.mu.Unlock()
	}()
	defer stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.ackedAtLocked(target) >= p.opts.AckReplicas {
			return nil
		}
		if p.opts.AckBudget > 0 && p.eligibleLocked() < p.opts.AckReplicas {
			// Not enough healthy replicas to ever satisfy the quorum:
			// degrade this commit to asynchronous acknowledgement
			// instead of burning its full timeout against replicas the
			// watchdog already knows are sick. Shipping continues; the
			// quorum guarantee resumes the moment a re-admit restores
			// eligibility.
			return nil
		}
		if p.closed {
			return fmt.Errorf("repl: primary closed during ack wait: %w", server.ErrIndeterminate)
		}
		select {
		case <-expired:
			return fmt.Errorf("repl: %d/%d replica acks for mark %d: %w",
				p.ackedAtLocked(target), p.opts.AckReplicas, target, server.ErrIndeterminate)
		default:
		}
		p.ackCond.Wait()
	}
}

// ackedAtLocked counts quorum-eligible replicas whose acked applied
// mark covers target. Quarantined replicas do not count: their acks
// still advance the cursor (shipping never stops) but a commit must
// not treat a known-sick replica as its durability copy. Caller holds
// p.mu.
func (p *Primary) ackedAtLocked(target int) int {
	n := 0
	for _, rl := range p.replicas {
		rl.mu.Lock()
		if rl.applied >= target && !rl.quarantined {
			n++
		}
		rl.mu.Unlock()
	}
	return n
}

// eligibleLocked counts replicas currently admitted to the semi-sync
// quorum. Caller holds p.mu.
func (p *Primary) eligibleLocked() int {
	n := 0
	for _, rl := range p.replicas {
		rl.mu.Lock()
		if !rl.quarantined {
			n++
		}
		rl.mu.Unlock()
	}
	return n
}

// Quarantined returns the addresses of currently quarantined replicas.
func (p *Primary) Quarantined() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, rl := range p.replicas {
		rl.mu.Lock()
		if rl.quarantined {
			out = append(out, rl.addr)
		}
		rl.mu.Unlock()
	}
	return out
}

// Fence informs the primary it has been superseded by a newer epoch.
// Senders stop shipping (frames and seeds stamped with the old
// incarnation would be rejected by replicas that saw the new primary)
// and an in-flight re-seed aborts at its next stage boundary.
func (p *Primary) Fence(epoch uint64) {
	if epoch <= p.opts.Epoch {
		return
	}
	for {
		cur := p.fenced.Load()
		if epoch <= cur {
			return
		}
		if p.fenced.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// superseded reports whether Fence recorded a newer epoch.
func (p *Primary) superseded() bool { return p.fenced.Load() > p.opts.Epoch }

// Status reports the primary view plus replication lag.
func (p *Primary) Status() server.Status {
	st := p.eng.Status()
	st.Epoch = p.opts.Epoch
	p.mu.Lock()
	minApplied := st.Mark
	for _, rl := range p.replicas {
		rl.mu.Lock()
		if rl.applied < minApplied {
			minApplied = rl.applied
		}
		rl.mu.Unlock()
	}
	p.mu.Unlock()
	st.Lag = st.Mark - minApplied
	return st
}

// MinAppliedReplica returns the lowest acked replica mark (shipping
// health probes).
func (p *Primary) MinAppliedReplica() int {
	st := p.Status()
	return st.Mark - st.Lag
}

func (p *Primary) kickAll() {
	p.mu.Lock()
	reps := p.replicas
	p.mu.Unlock()
	for _, rl := range reps {
		select {
		case rl.kick <- struct{}{}:
		default:
		}
	}
}

// run is one replica's sender loop: connect, resume or re-seed, ship.
func (rl *replicaLink) run() {
	defer close(rl.done)
	for {
		select {
		case <-rl.quit:
			return
		default:
		}
		if rl.p.superseded() {
			return
		}
		if !rl.serveConn() {
			return
		}
		// Reconnect backoff (real time; the conn may be refused while
		// the replica reboots or the link is partitioned).
		select {
		case <-rl.quit:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// serveConn runs one connection lifetime. Returns false to stop the
// sender for good.
func (rl *replicaLink) serveConn() bool {
	p := rl.p
	conn, err := rl.dial(rl.addr)
	if err != nil {
		return true
	}
	defer conn.Close()
	msg, err := conn.Recv(time.Second)
	if err != nil {
		return true
	}
	h, err := decodeHello(msg)
	if err != nil {
		return true
	}

	cursor, chain := int(h.applied), h.chain
	needSeed := h.needSeed || h.incarnation != p.opts.Epoch
	if !needSeed {
		// The replica's cursor must still be exportable.
		if _, ok, err := p.d.ExportSince(cursor); err != nil || !ok {
			needSeed = true
		} else {
			rl.noteApplied(cursor)
		}
	}

	for {
		if needSeed {
			// A re-seed is the longest transfer the sender makes, so it
			// re-checks its preconditions at every stage boundary: a
			// fenced primary must not ship a stale-incarnation snapshot
			// (abort for good — the sender is done), and a source that
			// degraded mid-copy must abort and re-schedule rather than
			// seed the replica from a handle that may stop serving
			// snapshot reads at any moment.
			if p.superseded() {
				p.m.Inc(metrics.ReplReseedAborts, 1)
				return false
			}
			if p.d.Degraded() != nil {
				p.m.Inc(metrics.ReplReseedAborts, 1)
				return true
			}
			snap, err := p.d.ExportPages()
			if err != nil {
				return true
			}
			if p.superseded() {
				p.m.Inc(metrics.ReplReseedAborts, 1)
				return false
			}
			if p.d.Degraded() != nil {
				p.m.Inc(metrics.ReplReseedAborts, 1)
				return true
			}
			p.m.Inc(metrics.ReplReseeds, 1)
			if err := conn.Send(encodeSeed(p.opts.Epoch, snap)); err != nil {
				return true
			}
			a, _, _, ok := rl.awaitAck(conn)
			if !ok || !a.ok {
				return true
			}
			cursor, chain = snap.Mark, core.ExportChainSeed(snap.Mark)
			needSeed = false
			rl.noteApplied(cursor)
			continue
		}

		batch, ok, err := p.d.ExportSince(cursor)
		if err != nil {
			return true
		}
		if !ok {
			// Checkpoint retired frames under the cursor: unhealable
			// gap, re-seed.
			needSeed = true
			continue
		}
		if batch.From == batch.To {
			// Caught up: wait for a commit kick (or poll — commits via
			// paths that do not kick, e.g. direct db use, still ship).
			select {
			case <-rl.quit:
				return false
			case <-rl.kick:
			case <-time.After(p.opts.PollEvery):
			}
			continue
		}
		endChain := core.ChainExport(chain, batch)
		var t0Virt time.Duration
		t0Real := time.Now()
		if p.opts.Clock != nil {
			t0Virt = p.opts.Clock.Now()
		}
		if err := conn.Send(encodeFrames(p.opts.Epoch, batch, endChain)); err != nil {
			return true
		}
		p.m.Inc(metrics.ReplBatchesShipped, 1)
		p.m.Inc(metrics.ReplFramesShipped, int64(len(batch.Frames)))
		for _, fr := range batch.Frames {
			p.m.Inc(metrics.ReplBytesShipped, int64(len(fr.Payload)))
		}
		a, ackAt, virt, ok := rl.awaitAck(conn)
		if !ok {
			return true
		}
		// Latency is measured against the ack's own virtual delivery
		// time, not the lane's Now() after Recv: the lane is shared by
		// every replica link, so another replica's slow ack advancing
		// it mid-wait would bleed into this link's sample and
		// quarantine a healthy replica. Real time is the fallback
		// off-simulation.
		switch {
		case p.opts.Clock != nil && virt:
			rl.observeAck(ackAt - t0Virt)
		case p.opts.Clock != nil:
			rl.observeAck(p.opts.Clock.Now() - t0Virt)
		default:
			rl.observeAck(time.Since(t0Real))
		}
		if !a.ok {
			needSeed = true
			continue
		}
		cursor, chain = batch.To, endChain
		rl.noteApplied(int(a.applied))
	}
}

// observeAck folds one send→ack latency sample into the link's EWMA
// and applies the quarantine policy: breach the AckBudget and the link
// leaves the semi-sync quorum; decay below half the budget and it is
// re-admitted. Both transitions wake semi-sync waiters — a quarantine
// can unblock a commit (quorum degradation), a re-admit restores the
// guarantee for the next one.
func (rl *replicaLink) observeAck(d time.Duration) {
	p := rl.p
	rl.mu.Lock()
	if rl.ackEwma == 0 {
		rl.ackEwma = d
	} else {
		rl.ackEwma += (d - rl.ackEwma) * 3 / 10
	}
	changed, nowQuarantined := false, false
	if budget := p.opts.AckBudget; budget > 0 {
		switch {
		case !rl.quarantined && rl.ackEwma > budget:
			rl.quarantined, changed = true, true
		case rl.quarantined && rl.ackEwma < budget/2:
			rl.quarantined, changed = false, true
		}
		nowQuarantined = rl.quarantined
	}
	rl.mu.Unlock()
	if !changed {
		return
	}
	if nowQuarantined {
		p.m.Inc(metrics.ReplicaQuarantines, 1)
	} else {
		p.m.Inc(metrics.ReplicaReadmits, 1)
	}
	p.mu.Lock()
	p.ackCond.Broadcast()
	p.mu.Unlock()
}

// AckLatencies reports each replica's send→ack latency EWMA keyed by
// address (tests and status probes).
func (p *Primary) AckLatencies() map[string]time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]time.Duration, len(p.replicas))
	for _, rl := range p.replicas {
		rl.mu.Lock()
		out[rl.addr] = rl.ackEwma
		rl.mu.Unlock()
	}
	return out
}

// awaitAck reads the replica's ack for the last message, honouring
// quit. ok=false means the conn died, went silent, or the sender is
// stopping. The silence bound matters for liveness: a partition drops
// messages silently, so an unacked send on a zombie conn would
// otherwise block the strict send/ack loop forever — giving up forces
// a redial, and the reconnect hello resumes from the replica's real
// cursor.
// On simulated transports it reports the ack's own virtual delivery
// time (virt=true) and advances the primary's lane to it — the same
// advance Recv would have done — so the caller can measure per-link
// latency without cross-talk from other links sharing the lane.
func (rl *replicaLink) awaitAck(conn netsim.Conn) (a ack, at time.Duration, virt, ok bool) {
	for tries := 0; tries < 4; tries++ {
		select {
		case <-rl.quit:
			return ack{}, 0, false, false
		default:
		}
		var msg []byte
		var err error
		if clk := rl.p.opts.Clock; clk != nil {
			msg, at, virt, err = netsim.RecvAt(conn, 250*time.Millisecond)
			if err == nil && virt {
				clk.AdvanceTo(at)
			}
		} else {
			msg, err = conn.Recv(250 * time.Millisecond)
		}
		if err == nil {
			a, derr := decodeAck(msg)
			if derr != nil {
				return ack{}, 0, virt, false
			}
			rl.p.m.Inc(metrics.ReplAcks, 1)
			return a, at, virt, true
		}
		if !errors.Is(err, netsim.ErrTimeout) {
			return ack{}, 0, virt, false
		}
	}
	return ack{}, 0, virt, false
}

// noteApplied records a replica ack and wakes semi-sync waiters.
func (rl *replicaLink) noteApplied(applied int) {
	rl.mu.Lock()
	if applied > rl.applied {
		rl.applied = applied
	}
	rl.mu.Unlock()
	rl.p.mu.Lock()
	rl.p.ackCond.Broadcast()
	rl.p.mu.Unlock()
}
