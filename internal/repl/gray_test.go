// Gray-failure resilience tests: automatic replica quarantine on
// ack-latency budget breach, hysteresis re-admit, semi-sync quorum
// degradation, and re-seed abort under staged double faults.
package repl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/server"
)

// waitFor polls cond until it holds or the real-time deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestReplicaQuarantineAndReadmit(t *testing.T) {
	c := newTestCluster(t, "n0", "n1", "n2")
	pn, err := c.StartPrimary("n0", DefaultDBOptions(),
		PrimaryOptions{Epoch: 1, AckReplicas: 1, AckBudget: 5 * time.Millisecond},
		server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pn.Stop(false)
	if err := pn.DB.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	var replicas []*ReplicaNode
	for _, name := range []string{"n1", "n2"} {
		rn, err := c.StartReplica(name, ReplicaOptions{Epoch: 1}, server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer rn.Stop()
		replicas = append(replicas, rn)
		pn.Attach(c, name)
	}

	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("w%03d", i)), []byte("v")); err != nil {
			t.Fatalf("warm write %d: %v", i, err)
		}
	}

	// Gray-degrade n1's ack path: 20ms of virtual latency per ack, four
	// times the budget. The replica still works — it is merely slow.
	c.Net.SetLink(ReplAddr("n1"), "n0", netsim.Config{Latency: 20 * time.Millisecond})
	quarantined := func() bool {
		q := pn.Repl.Quarantined()
		return len(q) == 1 && q[0] == ReplAddr("n1")
	}
	for i := 0; i < 40 && !quarantined(); i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("s%03d", i)), []byte("v")); err != nil {
			t.Fatalf("write under slow replica: %v", err)
		}
	}
	if !waitFor(t, 2*time.Second, quarantined) {
		t.Fatalf("slow replica not quarantined; quarantined=%v ewma=%v",
			pn.Repl.Quarantined(), pn.Repl.AckLatencies())
	}
	if got := pn.Repl.DB().Metrics().Count(metrics.ReplicaQuarantines); got < 1 {
		t.Fatalf("replica_quarantines = %d, want >= 1", got)
	}

	// Shipping must continue to a quarantined replica: it keeps
	// receiving frames even while excluded from the quorum.
	mark := pn.Repl.Status().Mark
	if !replicas[0].WaitCaughtUp(mark, 5*time.Second) {
		t.Fatal("quarantined replica stopped receiving frames")
	}

	// Heal the link; good samples decay the EWMA below half the budget
	// and the replica is re-admitted.
	c.Net.SetLink(ReplAddr("n1"), "n0", netsim.Config{Latency: 20 * time.Microsecond})
	readmitted := func() bool { return len(pn.Repl.Quarantined()) == 0 }
	for i := 0; i < 60 && !readmitted(); i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("h%03d", i)), []byte("v")); err != nil {
			t.Fatalf("write during heal: %v", err)
		}
	}
	if !waitFor(t, 2*time.Second, readmitted) {
		t.Fatalf("healed replica not re-admitted; ewma=%v", pn.Repl.AckLatencies())
	}
	if got := pn.Repl.DB().Metrics().Count(metrics.ReplicaReadmits); got < 1 {
		t.Fatalf("replica_readmits = %d, want >= 1", got)
	}
}

func TestSemiSyncDegradesToAsyncWhenAllQuarantined(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn, err := c.StartPrimary("n0", DefaultDBOptions(),
		PrimaryOptions{Epoch: 1, AckReplicas: 1, AckBudget: 5 * time.Millisecond,
			AckTimeout: 10 * time.Second},
		server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pn.Stop(false)
	if err := pn.DB.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Stop()
	pn.Attach(c, "n1")

	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	if _, err := cli.Put("kv", []byte("warm"), []byte("v")); err != nil {
		t.Fatalf("warm write: %v", err)
	}

	c.Net.SetLink(ReplAddr("n1"), "n0", netsim.Config{Latency: 50 * time.Millisecond})
	for i := 0; i < 40 && len(pn.Repl.Quarantined()) == 0; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("s%03d", i)), []byte("v")); err != nil {
			t.Fatalf("write %d while degrading: %v", i, err)
		}
	}
	if !waitFor(t, 2*time.Second, func() bool { return len(pn.Repl.Quarantined()) == 1 }) {
		t.Fatalf("only replica not quarantined; ewma=%v", pn.Repl.AckLatencies())
	}

	// Every quorum candidate is quarantined: commits must degrade to
	// async acks promptly instead of burning the 10s AckTimeout each.
	start := time.Now()
	if _, err := cli.Put("kv", []byte("degraded"), []byte("v")); err != nil {
		t.Fatalf("write with all replicas quarantined: %v", err)
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("degraded-quorum write took %v of real time — did it wait the full AckTimeout?", real)
	}
}

// TestReseedAbortsOnStagedDoubleFault stages the double fault the
// re-seed abort protects against: fault 1 opens an unhealable cursor
// gap (checkpoint retires frames while the replica is away), forcing a
// full re-seed; fault 2 degrades the source before the copy. The
// sender must abort and re-schedule the seed — never ship a snapshot
// from a source that may stop serving snapshot reads mid-copy.
func TestReseedAbortsOnStagedDoubleFault(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn := startPrimaryWithTable(t, c, "n0", 1, 0)
	defer pn.Stop(false)
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pn.Attach(c, "n1")

	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 20; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("a%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !rn.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("replica never caught up before the staged faults")
	}
	rn.Stop()

	// Fault 1: while the replica is away, write and checkpoint — the
	// frames behind its cursor retire, leaving an unhealable gap that
	// forces a full re-seed on reconnect.
	for i := 0; i < 20; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("b%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pn.DB.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := pn.DB.ExportSince(0); ok {
		t.Fatal("staging failed: cursor 0 still exportable, no re-seed would be needed")
	}

	// Fault 2: the source degrades. Then the replica comes back.
	pn.DB.ForceDegrade(errors.New("staged gray fault"))
	rn2, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn2.Stop()

	// The sender must abort the re-seed (metric) and never deliver it.
	m := pn.Repl.DB().Metrics()
	if !waitFor(t, 5*time.Second, func() bool { return m.Count(metrics.ReplReseedAborts) >= 1 }) {
		t.Fatalf("repl_reseed_aborts = %d, want >= 1", m.Count(metrics.ReplReseedAborts))
	}
	if rn2.WaitCaughtUp(pn.Repl.Status().Mark, 100*time.Millisecond) {
		t.Fatal("replica was seeded from a degraded source")
	}
}

// TestReseedAbortsWhenPrimaryFenced: a sender whose primary has been
// superseded by a newer epoch must stop shipping instead of seeding
// replicas with a stale incarnation.
func TestReseedAbortsWhenPrimaryFenced(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn := startPrimaryWithTable(t, c, "n0", 1, 0)
	defer pn.Stop(false)
	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Attach before the replica exists: the sender spins on dial
	// failures. Fencing during that window must stop it for good.
	pn.Attach(c, "n1")
	pn.Repl.Fence(2)

	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 2}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Stop()

	if rn.WaitCaughtUp(pn.Repl.Status().Mark, 200*time.Millisecond) {
		t.Fatal("fenced primary still seeded the replica")
	}
}
