// Cluster assembly: N machines (one full platform per node, each on
// its own clock lane) joined by a simulated network, with per-node
// labeled metrics in one Registry — the shard.NewLaned idiom lifted
// to replication topology. Torture rounds, benchmarks and tests build
// clusters here so node naming, lane registration and listener layout
// stay consistent: node NAME serves clients, NAME+"/repl" serves the
// shipping stream.
package repl

import (
	"fmt"
	"time"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/ext4"
	"repro/internal/heapo"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/simclock"
)

// Node is one machine in a cluster.
type Node struct {
	Name string
	Plat *platform.Platform
	M    *metrics.Counters
}

// Cluster is the shared fabric: parent clock, network, metrics.
type Cluster struct {
	Clock    *simclock.Clock
	Net      *netsim.Network
	Registry *metrics.Registry
	Nodes    []*Node
	byName   map[string]*Node
}

// ReplAddr is the shipping listener's address for a node name.
func ReplAddr(name string) string { return name + "/repl" }

// NewCluster builds one platform per name, each on its own lane of a
// shared parent clock, registered with the network under its name
// (and its repl address) so wire latency charges the node's lane. cfg
// sizes ONE node's hardware; netCfg is the default link fault model.
func NewCluster(cfg platform.Config, netCfg netsim.Config, seed int64, names ...string) (*Cluster, error) {
	c := &Cluster{
		Clock:    simclock.New(),
		Registry: metrics.NewRegistry(),
		byName:   make(map[string]*Node),
	}
	c.Net = netsim.New(c.Clock, netCfg, seed, c.Registry.Counters("net"))
	for _, name := range names {
		lane := c.Clock.NewLane()
		m := c.Registry.Counters(name)
		dev := nvram.NewDevice(cfg.NVRAM, lane, m)
		h, err := heapo.Format(dev)
		if err != nil {
			return nil, fmt.Errorf("node %s: %w", name, err)
		}
		flash := blockdev.New(cfg.Flash, lane, m, nil)
		plat := &platform.Platform{
			Clock:   lane,
			Metrics: m,
			NVRAM:   dev,
			Heap:    h,
			Flash:   flash,
			FS:      ext4.New(flash),
		}
		node := &Node{Name: name, Plat: plat, M: m}
		c.Nodes = append(c.Nodes, node)
		c.byName[name] = node
		c.Net.Register(name, lane)
		c.Net.Register(ReplAddr(name), lane)
	}
	return c, nil
}

// Node returns the named node.
func (c *Cluster) Node(name string) *Node { return c.byName[name] }

// IsolateNode black-holes BOTH of a node's endpoints (client + repl) —
// the whole machine drops off the network, not just one port.
func (c *Cluster) IsolateNode(name string) {
	c.Net.Isolate(name)
	c.Net.Isolate(ReplAddr(name))
}

// RejoinNode reverses IsolateNode.
func (c *Cluster) RejoinNode(name string) {
	c.Net.Rejoin(name)
	c.Net.Rejoin(ReplAddr(name))
}

// Dialer returns a dialer whose sends originate from the given
// endpoint name (clients register no lane; the network clock times
// their messages unless Register'd).
func (c *Cluster) Dialer(from string) server.Dialer {
	return func(addr string) (netsim.Conn, error) {
		return c.Net.Dial(from, addr)
	}
}

// DefaultDBOptions is the database configuration cluster nodes run:
// NVWAL journaling with the paper's recommended variant, concurrent
// writers for the serving layer's sessions.
func DefaultDBOptions() db.Options {
	return db.Options{
		Journal:    db.JournalNVWAL,
		NVWAL:      core.VariantUHLSDiff(),
		Concurrent: true,
	}
}

// PrimaryNode bundles a serving primary: database, replication,
// front-end server.
type PrimaryNode struct {
	Node *Node
	DB   *db.DB
	Repl *Primary
	Srv  *server.Server
}

// StartPrimary opens the node's database (creating or recovering it)
// and serves it as a replicating primary at the node's name.
func (c *Cluster) StartPrimary(name string, dbOpts db.Options, popts PrimaryOptions, sopts server.Options) (*PrimaryNode, error) {
	node := c.byName[name]
	if node == nil {
		return nil, fmt.Errorf("repl: unknown node %q", name)
	}
	d, err := db.Open(node.Plat, name+".db", dbOpts)
	if err != nil {
		return nil, err
	}
	return c.serveAsPrimary(node, d, popts, sopts)
}

// ServePromoted serves an already-promoted database (from
// Replica.Promote) as the new primary on its node.
func (c *Cluster) ServePromoted(name string, d *db.DB, popts PrimaryOptions, sopts server.Options) (*PrimaryNode, error) {
	node := c.byName[name]
	if node == nil {
		return nil, fmt.Errorf("repl: unknown node %q", name)
	}
	return c.serveAsPrimary(node, d, popts, sopts)
}

func (c *Cluster) serveAsPrimary(node *Node, d *db.DB, popts PrimaryOptions, sopts server.Options) (*PrimaryNode, error) {
	if popts.Metrics == nil {
		popts.Metrics = node.M
	}
	if popts.Clock == nil {
		// Quarantine's ack-latency EWMA must run on virtual time: over
		// netsim a virtually-slow replica still acks real-time-fast.
		popts.Clock = node.Plat.Clock
	}
	p, err := NewPrimary(d, popts)
	if err != nil {
		_ = d.Close()
		return nil, err
	}
	l, err := c.Net.Listen(node.Name)
	if err != nil {
		p.Close()
		_ = d.Close()
		return nil, err
	}
	sopts.Epoch = popts.Epoch
	if sopts.Clock == nil {
		sopts.Clock = node.Plat.Clock
	}
	if sopts.Pressure == nil {
		sopts.Pressure = d.Pressure
	}
	if sopts.Metrics == nil {
		sopts.Metrics = node.M
	}
	srv := server.New(p, sopts)
	go srv.Serve(l)
	return &PrimaryNode{Node: node, DB: d, Repl: p, Srv: srv}, nil
}

// Attach starts shipping from the primary to the named replica.
func (pn *PrimaryNode) Attach(c *Cluster, replicaName string) {
	pn.Repl.AddReplica(ReplAddr(replicaName), c.Dialer(pn.Node.Name))
}

// Stop tears the primary down. abandon skips the closing checkpoint —
// the right call when the node's platform has power-failed.
func (pn *PrimaryNode) Stop(abandon bool) {
	pn.Srv.Close()
	pn.Repl.Close()
	if abandon {
		pn.DB.Abandon()
	} else {
		_ = pn.DB.Close()
	}
}

// ReplicaNode bundles a following replica: state, shipping listener,
// read-only front-end.
type ReplicaNode struct {
	Node *Node
	R    *Replica
	Srv  *server.Server
}

// StartReplica opens (or re-opens) replica state on the node and
// serves reads at its name, shipping at its repl address.
func (c *Cluster) StartReplica(name string, ropts ReplicaOptions, sopts server.Options) (*ReplicaNode, error) {
	node := c.byName[name]
	if node == nil {
		return nil, fmt.Errorf("repl: unknown node %q", name)
	}
	if ropts.Metrics == nil {
		ropts.Metrics = node.M
	}
	r, err := NewReplica(node.Plat, name+".db", ropts)
	if err != nil {
		return nil, err
	}
	rl, err := c.Net.Listen(ReplAddr(name))
	if err != nil {
		return nil, err
	}
	go r.Serve(rl)
	l, err := c.Net.Listen(name)
	if err != nil {
		r.Close()
		return nil, err
	}
	sopts.Epoch = ropts.Epoch
	sopts.ReadOnly = true
	if sopts.Clock == nil {
		sopts.Clock = node.Plat.Clock
	}
	if sopts.Metrics == nil {
		sopts.Metrics = node.M
	}
	srv := server.New(r, sopts)
	go srv.Serve(l)
	return &ReplicaNode{Node: node, R: r, Srv: srv}, nil
}

// Stop tears the replica down, leaving its state for a later
// StartReplica or Promote.
func (rn *ReplicaNode) Stop() {
	rn.Srv.Close()
	rn.R.Close()
}

// WaitCaughtUp polls (real time) until the replica's applied mark
// reaches at least target, or the timeout expires.
func (rn *ReplicaNode) WaitCaughtUp(target int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if rn.R.Applied() >= target {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return rn.R.Applied() >= target
}
