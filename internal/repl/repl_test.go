package repl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nvram"
	"repro/internal/platform"
	"repro/internal/server"
)

func testClusterConfig() platform.Config {
	return platform.Config{
		NVRAM: nvram.Config{
			Size:              16 << 20,
			CacheLineSize:     32,
			NVRAMWriteLatency: 500 * time.Nanosecond,
		},
	}
}

func newTestCluster(t *testing.T, names ...string) *Cluster {
	t.Helper()
	c, err := NewCluster(testClusterConfig(), netsim.Config{Latency: 20 * time.Microsecond}, 11, names...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startPrimaryWithTable(t *testing.T, c *Cluster, name string, epoch uint64, acks int) *PrimaryNode {
	t.Helper()
	pn, err := c.StartPrimary(name, DefaultDBOptions(), PrimaryOptions{Epoch: epoch, AckReplicas: acks}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pn.DB.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	return pn
}

func TestReplicaFollowsAndServesReads(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn := startPrimaryWithTable(t, c, "n0", 1, 1)
	defer pn.Stop(false)
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Stop()
	pn.Attach(c, "n1")

	cli := server.NewClient(c.Dialer("cli"), []string{"n0", "n1"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 30; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Semi-sync with AckReplicas=1: every acked write is already on
	// the replica — read it back directly.
	for i := 0; i < 30; i++ {
		v, found, err := rn.R.Get("kv", []byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("replica read k%03d = %q found=%v err=%v", i, v, found, err)
		}
	}
	// And through the replica's read-only front-end.
	rcli := server.NewClient(c.Dialer("cli2"), []string{"n1"}, server.ClientOptions{ReadAnywhere: true})
	defer rcli.Close()
	v, found, err := rcli.Get("kv", []byte("k007"))
	if err != nil || !found || string(v) != "v7" {
		t.Fatalf("front-end replica read = %q found=%v err=%v", v, found, err)
	}
	// Writes to the replica endpoint are refused as read-only.
	wcli := server.NewClient(c.Dialer("cli3"), []string{"n1"}, server.ClientOptions{ReadAnywhere: true, RetryBudget: 2, BackoffMax: time.Millisecond})
	defer wcli.Close()
	if _, err := wcli.Put("kv", []byte("x"), []byte("y")); err == nil {
		t.Fatal("write accepted by a replica endpoint")
	}
	st := pn.Repl.Status()
	if st.Role != "primary" || st.Lag != 0 {
		t.Fatalf("primary status after semi-sync writes: %+v", st)
	}
}

func TestReplicaResumesFromCursorAfterRestart(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn := startPrimaryWithTable(t, c, "n0", 1, 0)
	defer pn.Stop(false)
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pn.Attach(c, "n1")
	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("a%d", i)), []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	if !rn.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("replica never caught up before restart")
	}
	seedsBefore := pn.Node.M.Count(metrics.ReplReseeds)
	rn.Stop()

	// Writes continue while the replica is down.
	for i := 0; i < 10; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("b%d", i)), []byte("2")); err != nil {
			t.Fatal(err)
		}
	}
	rn2, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn2.Stop()
	if !rn2.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("restarted replica never caught up")
	}
	if v, found, err := rn2.R.Get("kv", []byte("b9")); err != nil || !found || string(v) != "2" {
		t.Fatalf("post-restart read = %q found=%v err=%v", v, found, err)
	}
	if got := pn.Node.M.Count(metrics.ReplReseeds); got != seedsBefore {
		t.Fatalf("restart with a valid cursor re-seeded: %d -> %d", seedsBefore, got)
	}
}

func TestReplicaReseedsAfterCheckpointGap(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn := startPrimaryWithTable(t, c, "n0", 1, 0)
	defer pn.Stop(false)
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pn.Attach(c, "n1")
	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	if _, err := cli.Put("kv", []byte("early"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if !rn.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("replica never caught up")
	}
	seedsBefore := pn.Node.M.Count(metrics.ReplReseeds)
	rn.Stop()

	// While the replica is away, write and CHECKPOINT: the frames its
	// cursor points at retire, leaving an unhealable gap.
	for i := 0; i < 20; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pn.DB.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rn2, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn2.Stop()
	if !rn2.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("replica never re-seeded after the gap")
	}
	if got := pn.Node.M.Count(metrics.ReplReseeds); got <= seedsBefore {
		t.Fatalf("gap did not force a re-seed: %d -> %d", seedsBefore, got)
	}
	if v, found, err := rn2.R.Get("kv", []byte("k19")); err != nil || !found || string(v) != "v" {
		t.Fatalf("post-reseed read = %q found=%v err=%v", v, found, err)
	}
}

func TestDivergenceLatchesDegradedUntilReseed(t *testing.T) {
	c := newTestCluster(t, "n1")
	node := c.Node("n1")
	r, err := NewReplica(node.Plat, "n1.db", ReplicaOptions{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Seed a minimal state directly.
	seed := seedMsg{
		incarnation: 1,
		mark:        3,
		pageSize:    4096,
		pages:       []seedPage{{pgno: 1, data: make([]byte, 4096)}},
	}
	if a := r.applySeed(seed); !a.ok {
		t.Fatal("seed refused")
	}
	// A batch whose declared chain does not match what the replica
	// folds is divergence: latch + nack.
	batch := core.ExportBatch{From: 3, To: 4, Frames: []core.ExportFrame{
		{Pgno: 2, Full: true, Payload: []byte("payload")},
	}}
	f := framesMsg{incarnation: 1, batch: batch, endChain: 0xdeadbeef}
	if a := r.applyFrames(f); a.ok {
		t.Fatal("diverged batch accepted")
	}
	if r.Degraded() == nil {
		t.Fatal("divergence did not latch degraded")
	}
	if node.M.Count(metrics.ReplDivergences) != 1 {
		t.Fatalf("divergence counter = %d", node.M.Count(metrics.ReplDivergences))
	}
	if !r.Status().Degraded {
		t.Fatal("status does not report degraded")
	}
	// Degraded still serves reads at the applied mark, but refuses
	// further frame batches.
	good := framesMsg{incarnation: 1, batch: batch, endChain: core.ChainExport(r.chain, batch)}
	if a := r.applyFrames(good); a.ok {
		t.Fatal("degraded replica accepted frames")
	}
	// Only a full re-seed heals the latch.
	seed.mark = 10
	if a := r.applySeed(seed); !a.ok {
		t.Fatal("healing seed refused")
	}
	if r.Degraded() != nil || r.Applied() != 10 {
		t.Fatalf("re-seed did not heal: degraded=%v applied=%d", r.Degraded(), r.Applied())
	}
}

func TestFailoverPreservesAckedWrites(t *testing.T) {
	c := newTestCluster(t, "n0", "n1", "n2")
	pn := startPrimaryWithTable(t, c, "n0", 1, 1)
	r1, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.StartReplica("n2", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pn.Attach(c, "n1")
	pn.Attach(c, "n2")

	cli := server.NewClient(c.Dialer("cli"), []string{"n0", "n1", "n2"}, server.ClientOptions{})
	defer cli.Close()
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("acked write %d failed: %v", i, err)
		}
	}

	// Crash the primary: black-hole its links (the externally visible
	// instant), power-fail the machine, tear down its processes.
	c.IsolateNode("n0")
	pn.Node.Plat.PowerFail(memsim.FailDropAll, 99)
	pn.Stop(true)

	// Promote the most-caught-up replica; fence with a new epoch.
	best, loser := r1, r2
	if r2.R.Applied() > r1.R.Applied() {
		best, loser = r2, r1
	}
	bestName := best.Node.Name
	best.Stop()
	d2, err := best.R.Promote(DefaultDBOptions())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	pn2, err := c.ServePromoted(bestName, d2, PrimaryOptions{Epoch: 2, AckReplicas: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pn2.Stop(false)
	pn2.Attach(c, loser.Node.Name)

	// Every client-acked write survived onto the new primary.
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		v, found, err := pn2.Repl.Get("kv", key)
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write k%03d lost in failover: %q found=%v err=%v", i, v, found, err)
		}
	}
	// The new primary accepts writes at the new epoch; the client
	// adopts it transparently.
	if _, err := cli.Put("kv", []byte("post-failover"), []byte("ok")); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if cli.Epoch() != 2 {
		t.Fatalf("client did not adopt the promotion epoch: %d", cli.Epoch())
	}
	// The surviving replica re-seeds under the new incarnation and
	// catches up.
	if !loser.WaitCaughtUp(pn2.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("surviving replica never caught up with the new primary")
	}
	v, found, err := loser.R.Get("kv", []byte("post-failover"))
	if err != nil || !found || string(v) != "ok" {
		t.Fatalf("replica under new primary: %q found=%v err=%v", v, found, err)
	}
}

func TestReplicaSurvivesPowerFailure(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn := startPrimaryWithTable(t, c, "n0", 1, 1)
	defer pn.Stop(false)
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pn.Attach(c, "n1")
	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 15; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Power-fail the REPLICA mid-life and reboot it.
	rn.Stop()
	rn.Node.Plat.PowerFail(memsim.FailDropAll, 7)
	if err := rn.Node.Plat.Reboot(); err != nil {
		t.Fatal(err)
	}
	rn2, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatalf("replica reopen after power failure: %v", err)
	}
	defer rn2.Stop()

	// More writes, then the replica must converge (resume or re-seed —
	// either is correct; the data is what matters).
	for i := 15; i < 30; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !rn2.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("rebooted replica never caught up")
	}
	for i := 0; i < 30; i++ {
		if _, found, err := rn2.R.Get("kv", []byte(fmt.Sprintf("k%d", i))); err != nil || !found {
			t.Fatalf("k%d missing after replica power failure: found=%v err=%v", i, found, err)
		}
	}
}

func TestClusterMetricsAggregateAcrossNodeLabels(t *testing.T) {
	c := newTestCluster(t, "n0", "n1", "n2")
	pn := startPrimaryWithTable(t, c, "n0", 1, 1)
	defer pn.Stop(false)
	r1, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Stop()
	r2, err := c.StartReplica("n2", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Stop()
	pn.Attach(c, "n1")
	pn.Attach(c, "n2")

	cli := server.NewClient(c.Dialer("cli"), []string{"n0"}, server.ClientOptions{})
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if _, err := cli.Put("kv", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if !r1.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) || !r2.WaitCaughtUp(pn.Repl.Status().Mark, 5*time.Second) {
		t.Fatal("replicas never caught up")
	}

	labels := c.Registry.Labels()
	want := map[string]bool{"n0": false, "n1": false, "n2": false, "net": false}
	for _, l := range labels {
		if _, ok := want[l]; ok {
			want[l] = true
		}
	}
	for l, seen := range want {
		if !seen {
			t.Fatalf("label %q missing from registry (have %v)", l, labels)
		}
	}

	// Per-label: shipping counters live on the primary's label,
	// apply counters on the replicas'.
	if c.Registry.Snapshot("n0").Count(metrics.ReplBatchesShipped) == 0 {
		t.Fatal("primary label has no shipped batches")
	}
	if c.Registry.Snapshot("n1").Count(metrics.ReplBatchesApplied) == 0 ||
		c.Registry.Snapshot("n2").Count(metrics.ReplBatchesApplied) == 0 {
		t.Fatal("replica labels have no applied batches")
	}
	if c.Registry.Snapshot("net").Count(metrics.NetMessages) == 0 {
		t.Fatal("net label has no messages")
	}

	// Aggregate reassembles the whole-cluster view: each counter is
	// the sum over labels.
	agg := c.Registry.Aggregate()
	for _, key := range []string{
		metrics.ReplBatchesShipped, metrics.ReplBatchesApplied,
		metrics.ReplAcks, metrics.ServerRequests, metrics.NetMessages,
	} {
		var sum int64
		for _, l := range labels {
			sum += c.Registry.Snapshot(l).Count(key)
		}
		if agg.Count(key) != sum || sum == 0 {
			t.Fatalf("aggregate %s = %d, want non-zero sum %d", key, agg.Count(key), sum)
		}
	}
}

func TestPrimaryApplyIndeterminateWhenReplicasUnreachable(t *testing.T) {
	c := newTestCluster(t, "n0", "n1")
	pn, err := c.StartPrimary("n0", DefaultDBOptions(),
		PrimaryOptions{Epoch: 1, AckReplicas: 1, AckTimeout: 50 * time.Millisecond},
		server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pn.Stop(false)
	if err := pn.DB.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	// Replica attached but the node is isolated: commits succeed
	// locally but the ack quorum cannot form.
	rn, err := c.StartReplica("n1", ReplicaOptions{Epoch: 1}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Stop()
	pn.Attach(c, "n1")
	c.IsolateNode("n1")

	_, aerr := pn.Repl.Apply(t.Context(), "kv", []server.Op{{Key: []byte("k"), Value: []byte("v")}})
	if !errors.Is(aerr, server.ErrIndeterminate) {
		t.Fatalf("ack-starved apply = %v, want ErrIndeterminate", aerr)
	}
	// The write IS durable locally — indeterminate, not lost.
	if v, found, _ := pn.Repl.Get("kv", []byte("k")); !found || string(v) != "v" {
		t.Fatal("locally committed write missing")
	}
}
