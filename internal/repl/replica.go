// Replica: a full NVWAL node following a primary's log. Shipped frame
// ranges are chain-verified, reconstructed into full-page images
// against the replica's current state, and committed through the
// replica's OWN NVWAL (WriteFrames with a commit mark) — so a replica
// survives its own power failures by the same recovery path as a
// primary, and re-applied ranges after a crash are idempotent. The
// applied primary mark, stream chain and primary incarnation persist
// as CRC-guarded roots in the NVRAM namespace, written only AFTER the
// corresponding frames are durable (a crash between the two leaves
// the cursor stale-low, which resumes by harmless re-apply). Reads
// serve a btree view at exactly the applied mark under an RWMutex —
// a replica can never serve state newer than what it acked.
package repl

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dbfile"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pager"
	"repro/internal/platform"
	"repro/internal/server"
)

// Persistent cursor roots in the NVRAM namespace.
const (
	rootInc     = "repl:inc"
	rootApplied = "repl:applied"
	rootChain   = "repl:chain"
	rootSum     = "repl:sum"
)

var replCRC = crc32.MakeTable(crc32.Castagnoli)

// ReplicaOptions configures a replica node.
type ReplicaOptions struct {
	// Epoch the replica reports in Status (the fencing epoch of the
	// primary it expects to follow).
	Epoch uint64
	// NVWAL configures the replica's own journal (default
	// core.VariantUHLSDiff with a name derived from the file name).
	NVWAL *core.Config
	// PageSize must match the primary's (default 4096).
	PageSize int
	// CheckpointEvery compacts the replica journal into its database
	// file every N applied batches (default 16).
	CheckpointEvery int
	// Reserved is the btree per-page reserve of the primary's pages
	// (default core.RecommendedPageReserve — the NVWAL layout).
	Reserved int
	// Metrics receives replica counters (default: the platform sink).
	Metrics *metrics.Counters
}

// Replica follows a primary and serves snapshot reads.
type Replica struct {
	plat *platform.Platform
	name string
	opts ReplicaOptions
	m    *metrics.Counters
	dbf  *dbfile.File
	wal  *core.NVWAL

	// rw orders applies (write lock) against reads (read lock): a read
	// observes exactly the applied mark, never a half-applied batch.
	rw          sync.RWMutex
	incarnation uint64
	applied     int
	chain       uint32
	seeded      bool
	degradedErr error
	batches     int

	mu     sync.Mutex
	lis    netsim.Listener
	cur    netsim.Conn
	closed bool
}

// NewReplica opens (or re-opens after a crash) replica state for the
// database file name on plat. Recovery of the replica's own journal
// runs inside core.Open; the persisted cursor then says which primary
// mark that state corresponds to. An invalid or missing cursor leaves
// the replica unseeded — it will request a full generation transfer.
func NewReplica(plat *platform.Platform, name string, opts ReplicaOptions) (*Replica, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = 4096
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 16
	}
	if opts.Reserved == 0 {
		opts.Reserved = core.RecommendedPageReserve
	}
	if opts.Metrics == nil {
		opts.Metrics = plat.Metrics
	}
	cfg := core.VariantUHLSDiff()
	if opts.NVWAL != nil {
		cfg = *opts.NVWAL
	}
	if cfg.Name == "" {
		cfg.Name = "nvwal:" + name
	}
	f, err := plat.FS.OpenOrCreate(name, "db")
	if err != nil {
		return nil, err
	}
	r := &Replica{
		plat: plat,
		name: name,
		opts: opts,
		m:    opts.Metrics,
		dbf:  dbfile.New(f, opts.PageSize),
	}
	r.wal, err = core.Open(plat.Heap, r.dbf, cfg, r.m)
	if err != nil {
		return nil, err
	}
	r.loadCursor()
	return r, nil
}

// loadCursor restores the persisted (incarnation, applied, chain)
// triple when its checksum verifies; anything else means re-seed.
func (r *Replica) loadCursor() {
	h := r.plat.Heap
	inc, ok1 := h.GetRoot(rootInc)
	applied, ok2 := h.GetRoot(rootApplied)
	chain, ok3 := h.GetRoot(rootChain)
	sum, ok4 := h.GetRoot(rootSum)
	if !(ok1 && ok2 && ok3 && ok4) || sum != cursorSum(inc, applied, chain) {
		return
	}
	r.incarnation = inc
	r.applied = int(applied)
	r.chain = uint32(chain)
	r.seeded = true
}

// saveCursor persists the cursor AFTER the frames it covers are
// durable in the replica's journal.
func (r *Replica) saveCursor() {
	h := r.plat.Heap
	inc, applied, chain := r.incarnation, uint64(r.applied), uint64(r.chain)
	_ = h.SetRoot(rootInc, inc)
	_ = h.SetRoot(rootApplied, applied)
	_ = h.SetRoot(rootChain, chain)
	_ = h.SetRoot(rootSum, cursorSum(inc, applied, chain))
}

func cursorSum(inc, applied, chain uint64) uint64 {
	var b [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			b[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, inc)
	put(8, applied)
	put(16, chain)
	return uint64(crc32.Checksum(b[:], replCRC))
}

// Serve accepts primary connections on l until Close. Newest conn
// wins: accepting closes the previous conn, so a primary redialing
// past a partition (whose old conn is a silent zombie — partitions
// drop messages without closing anything) is served immediately and
// the stale handler unblocks on its closed conn. Handlers serialize
// on r.rw, so overlap during the switch cannot interleave applies.
func (r *Replica) Serve(l netsim.Listener) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = l.Close()
		return
	}
	r.lis = l
	r.mu.Unlock()
	for {
		conn, err := l.Accept(0)
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = conn.Close()
			return
		}
		if r.cur != nil {
			_ = r.cur.Close()
		}
		r.cur = conn
		r.mu.Unlock()
		go func() {
			r.handleConn(conn)
			_ = conn.Close()
		}()
	}
}

// Close stops following. Replica state stays on the platform — reopen
// with NewReplica, or promote with Promote.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	lis, cur := r.lis, r.cur
	r.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	if cur != nil {
		_ = cur.Close()
	}
}

// Promote ends replication and re-opens the replica's state as a full
// database: recovery replays the replica's own journal, and the
// caller serves writes from the returned handle under a NEW fencing
// epoch. The replication cursor is deleted — the new primary starts a
// new mark space, and its followers re-seed by construction.
func (r *Replica) Promote(opts db.Options) (*db.DB, error) {
	r.Close()
	r.rw.Lock()
	defer r.rw.Unlock()
	h := r.plat.Heap
	h.DeleteRoot(rootInc)
	h.DeleteRoot(rootApplied)
	h.DeleteRoot(rootChain)
	h.DeleteRoot(rootSum)
	return db.Open(r.plat, r.name, opts)
}

// handleConn runs one primary connection: hello, then apply/ack.
func (r *Replica) handleConn(conn netsim.Conn) {
	r.rw.RLock()
	h := hello{
		incarnation: r.incarnation,
		applied:     uint64(r.applied),
		chain:       r.chain,
		needSeed:    !r.seeded || r.degradedErr != nil,
	}
	r.rw.RUnlock()
	if err := conn.Send(encodeHello(h)); err != nil {
		return
	}
	for {
		msg, err := conn.Recv(0)
		if err != nil {
			return
		}
		if len(msg) == 0 {
			return
		}
		var a ack
		switch msg[0] {
		case mtSeed:
			s, derr := decodeSeed(msg)
			if derr != nil {
				return
			}
			a = r.applySeed(s)
		case mtFrames:
			f, derr := decodeFrames(msg)
			if derr != nil {
				return
			}
			a = r.applyFrames(f)
		default:
			return
		}
		if err := conn.Send(encodeAck(a)); err != nil {
			return
		}
	}
}

// applySeed installs a full generation transfer: every page as a
// full-image frame through the replica's journal, then a checkpoint
// to compact. Clears the degraded latch — a re-seed heals divergence.
func (r *Replica) applySeed(s seedMsg) ack {
	r.rw.Lock()
	defer r.rw.Unlock()
	frames := make([]pager.Frame, 0, len(s.pages))
	for _, pg := range s.pages {
		data := pg.data
		if len(data) < r.opts.PageSize {
			padded := make([]byte, r.opts.PageSize)
			copy(padded, data)
			data = padded
		}
		frames = append(frames, pager.Frame{Pgno: pg.pgno, Data: data})
	}
	if err := r.wal.WriteFrames(frames, true); err != nil {
		return ack{incarnation: s.incarnation, applied: uint64(r.applied), ok: false}
	}
	_ = r.wal.CheckpointIncremental(nil)
	r.incarnation = s.incarnation
	r.applied = s.mark
	r.chain = core.ExportChainSeed(s.mark)
	r.seeded = true
	r.degradedErr = nil
	r.saveCursor()
	r.m.Inc(metrics.ReplBatchesApplied, 1)
	return ack{incarnation: r.incarnation, applied: uint64(r.applied), ok: true}
}

// applyFrames verifies and applies one shipped mark range.
func (r *Replica) applyFrames(f framesMsg) ack {
	r.rw.Lock()
	defer r.rw.Unlock()
	nack := func() ack {
		return ack{incarnation: r.incarnation, applied: uint64(r.applied), ok: false}
	}
	if !r.seeded || r.degradedErr != nil {
		return nack()
	}
	if f.incarnation != r.incarnation {
		return nack()
	}
	if f.batch.From != r.applied {
		// A range not anchored at the cursor is a gap (or an overlap
		// from a confused sender) — unhealable in place.
		return nack()
	}
	end := core.ChainExport(r.chain, f.batch)
	if end != f.endChain {
		// The stream diverged from what the primary computed: latch
		// read-only-degraded; only a full re-seed clears it.
		r.degradedErr = fmt.Errorf("repl: export chain diverged at mark %d (%08x != %08x)",
			f.batch.To, end, f.endChain)
		r.m.Inc(metrics.ReplDivergences, 1)
		return nack()
	}

	// Reconstruct full-page images in frame order (later frames patch
	// earlier ones within the batch).
	images := make(map[uint32][]byte)
	order := make([]uint32, 0, len(f.batch.Frames))
	for _, fr := range f.batch.Frames {
		img, ok := images[fr.Pgno]
		if !ok {
			img = r.pageImage(fr.Pgno)
			order = append(order, fr.Pgno)
		}
		if fr.Full {
			for i := range img {
				img[i] = 0
			}
		}
		if int(fr.Off)+len(fr.Payload) > len(img) {
			return nack()
		}
		copy(img[fr.Off:], fr.Payload)
		images[fr.Pgno] = img
	}
	frames := make([]pager.Frame, 0, len(images))
	for _, pgno := range order {
		frames = append(frames, pager.Frame{Pgno: pgno, Data: images[pgno]})
	}
	if err := r.wal.WriteFrames(frames, true); err != nil {
		return nack()
	}
	r.applied = f.batch.To
	r.chain = end
	r.saveCursor()
	r.m.Inc(metrics.ReplBatchesApplied, 1)
	r.batches++
	if r.batches%r.opts.CheckpointEvery == 0 {
		_ = r.wal.CheckpointIncremental(nil)
	}
	return ack{incarnation: r.incarnation, applied: uint64(r.applied), ok: true}
}

// pageImage returns a mutable copy of the replica's current image of
// pgno (journal version, else database file, else zeros). Caller
// holds r.rw.
func (r *Replica) pageImage(pgno uint32) []byte {
	img := make([]byte, r.opts.PageSize)
	if buf, ok := r.wal.PageVersion(pgno); ok {
		copy(img, buf)
		return img
	}
	if err := r.dbf.ReadPage(pgno, img); err != nil {
		for i := range img {
			img[i] = 0
		}
	}
	return img
}

// --- server.Engine: snapshot reads at the applied mark -------------

// ErrNotSeeded is returned for reads before the first seed/resume.
var ErrNotSeeded = errors.New("repl: replica holds no seeded state")

// Get serves a read at exactly the applied mark.
func (r *Replica) Get(table string, key []byte) ([]byte, bool, error) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	if !r.seeded {
		return nil, false, ErrNotSeeded
	}
	t, err := r.tree(table)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// Scan visits the applied state's records in ascending key order.
func (r *Replica) Scan(table string, fn func(key, value []byte) bool) error {
	r.rw.RLock()
	defer r.rw.RUnlock()
	if !r.seeded {
		return ErrNotSeeded
	}
	t, err := r.tree(table)
	if err != nil {
		return err
	}
	return t.Scan(fn)
}

// tree builds a read-only btree over the applied state. Caller holds
// r.rw (read or write).
func (r *Replica) tree(table string) (*btree.Tree, error) {
	store := &replStore{r: r, pages: make(map[uint32][]byte)}
	hdr, err := store.Get(1)
	if err != nil {
		return nil, err
	}
	cat := db.ParseCatalog(hdr)
	root, ok := cat[table]
	if !ok {
		return nil, fmt.Errorf("repl: no table %q in applied catalog", table)
	}
	return btree.New(store, root, btree.Config{Reserved: r.opts.Reserved}), nil
}

// Apply refuses writes: replicas are read-only until promoted.
func (r *Replica) Apply(context.Context, string, []server.Op) (uint64, error) {
	return 0, server.ErrReadOnly
}

// Status reports the replica's applied position.
func (r *Replica) Status() server.Status {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return server.Status{
		Role:     "replica",
		Epoch:    r.opts.Epoch,
		Mark:     r.applied,
		Applied:  r.applied,
		Degraded: r.degradedErr != nil || !r.seeded,
	}
}

// Applied returns the applied primary mark (failover drivers pick the
// most-caught-up replica by this value).
func (r *Replica) Applied() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.applied
}

// Degraded returns the latched divergence error, if any.
func (r *Replica) Degraded() error {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.degradedErr
}

// replStore adapts the replica's applied state to btree.PageStore
// (read-only, per-call page cache).
type replStore struct {
	r     *Replica
	pages map[uint32][]byte
}

func (s *replStore) PageSize() int { return s.r.opts.PageSize }

func (s *replStore) Get(pgno uint32) ([]byte, error) {
	if buf, ok := s.pages[pgno]; ok {
		return buf, nil
	}
	if buf, ok := s.r.wal.PageVersion(pgno); ok {
		s.pages[pgno] = buf
		return buf, nil
	}
	buf := make([]byte, s.r.opts.PageSize)
	if err := s.r.dbf.ReadPage(pgno, buf); err != nil {
		return nil, err
	}
	s.pages[pgno] = buf
	return buf, nil
}

func (s *replStore) Allocate() (uint32, []byte, error) {
	return 0, nil, errors.New("repl: replica store is read-only")
}

func (s *replStore) Free(uint32) error {
	return errors.New("repl: replica store is read-only")
}

func (s *replStore) MarkDirty(uint32) {
	panic("repl: write through a replica read")
}
