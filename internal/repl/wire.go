// Package repl is WAL-shipping replication over the serving wire: a
// primary exports committed NVWAL frame ranges (core.ExportSince) and
// ships them to N replicas, which verify the export CRC chain, apply
// the frames through their OWN NVWAL (so replica durability is the
// same §4.2 story as primary durability), persist the applied primary
// mark in the NVRAM namespace, and serve snapshot reads at exactly
// that mark. The protocol is strict request/response per conn:
//
//	replica → HELLO (incarnation, applied mark, chain)   on connect
//	primary → SEED   (full page snapshot)  |  FRAMES (mark range)
//	replica → ACK    (incarnation, applied, ok)          per message
//
// A chain mismatch, mark gap, or incarnation change is unhealable in
// place: the replica latches read-only-degraded, nacks, and the
// primary re-seeds it with a full generation transfer. Incarnation is
// the primary's fencing epoch — a promoted replica starts a new mark
// space, so every follower of a new primary re-seeds by construction.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/db"
)

// Message types.
const (
	mtHello byte = iota + 1
	mtSeed
	mtFrames
	mtAck
)

var errShort = errors.New("repl: truncated message")

// hello is the replica's opening statement on every conn.
type hello struct {
	incarnation uint64
	applied     uint64
	chain       uint32
	needSeed    bool
}

// ack acknowledges one SEED or FRAMES message. ok=false is a nack:
// the replica could not verify/apply and needs a re-seed.
type ack struct {
	incarnation uint64
	applied     uint64
	ok          bool
}

func encodeHello(h hello) []byte {
	b := make([]byte, 0, 22)
	b = append(b, mtHello)
	b = binary.LittleEndian.AppendUint64(b, h.incarnation)
	b = binary.LittleEndian.AppendUint64(b, h.applied)
	b = binary.LittleEndian.AppendUint32(b, h.chain)
	if h.needSeed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeHello(msg []byte) (hello, error) {
	if len(msg) < 22 || msg[0] != mtHello {
		return hello{}, fmt.Errorf("repl: bad hello (%d bytes)", len(msg))
	}
	return hello{
		incarnation: binary.LittleEndian.Uint64(msg[1:]),
		applied:     binary.LittleEndian.Uint64(msg[9:]),
		chain:       binary.LittleEndian.Uint32(msg[17:]),
		needSeed:    msg[21] == 1,
	}, nil
}

func encodeAck(a ack) []byte {
	b := make([]byte, 0, 18)
	b = append(b, mtAck)
	b = binary.LittleEndian.AppendUint64(b, a.incarnation)
	b = binary.LittleEndian.AppendUint64(b, a.applied)
	if a.ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func decodeAck(msg []byte) (ack, error) {
	if len(msg) < 18 || msg[0] != mtAck {
		return ack{}, fmt.Errorf("repl: bad ack (%d bytes)", len(msg))
	}
	return ack{
		incarnation: binary.LittleEndian.Uint64(msg[1:]),
		applied:     binary.LittleEndian.Uint64(msg[9:]),
		ok:          msg[17] == 1,
	}, nil
}

// encodeSeed serializes a full-generation transfer.
func encodeSeed(incarnation uint64, snap *db.PageSnapshot) []byte {
	size := 1 + 8 + 8 + 4 + 4
	for _, pg := range snap.Pages {
		size += 8 + len(pg.Data)
	}
	b := make([]byte, 0, size)
	b = append(b, mtSeed)
	b = binary.LittleEndian.AppendUint64(b, incarnation)
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.Mark))
	b = binary.LittleEndian.AppendUint32(b, uint32(snap.PageSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(snap.Pages)))
	for _, pg := range snap.Pages {
		b = binary.LittleEndian.AppendUint32(b, pg.Pgno)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(pg.Data)))
		b = append(b, pg.Data...)
	}
	return b
}

type seedMsg struct {
	incarnation uint64
	mark        int
	pageSize    int
	pages       []seedPage
}

type seedPage struct {
	pgno uint32
	data []byte
}

func decodeSeed(msg []byte) (seedMsg, error) {
	if len(msg) < 25 || msg[0] != mtSeed {
		return seedMsg{}, fmt.Errorf("repl: bad seed (%d bytes)", len(msg))
	}
	s := seedMsg{
		incarnation: binary.LittleEndian.Uint64(msg[1:]),
		mark:        int(binary.LittleEndian.Uint64(msg[9:])),
		pageSize:    int(binary.LittleEndian.Uint32(msg[17:])),
	}
	n := int(binary.LittleEndian.Uint32(msg[21:]))
	off := 25
	for i := 0; i < n; i++ {
		if off+8 > len(msg) {
			return s, errShort
		}
		pgno := binary.LittleEndian.Uint32(msg[off:])
		dl := int(binary.LittleEndian.Uint32(msg[off+4:]))
		off += 8
		if off+dl > len(msg) {
			return s, errShort
		}
		s.pages = append(s.pages, seedPage{pgno: pgno, data: msg[off : off+dl]})
		off += dl
	}
	return s, nil
}

// encodeFrames serializes one exported mark range plus the CRC chain
// value AFTER folding it, as computed by the primary.
func encodeFrames(incarnation uint64, b core.ExportBatch, endChain uint32) []byte {
	size := 1 + 8 + 8 + 8 + 4 + 4
	for _, fr := range b.Frames {
		size += 12 + len(fr.Payload)
	}
	out := make([]byte, 0, size)
	out = append(out, mtFrames)
	out = binary.LittleEndian.AppendUint64(out, incarnation)
	out = binary.LittleEndian.AppendUint64(out, uint64(b.From))
	out = binary.LittleEndian.AppendUint64(out, uint64(b.To))
	out = binary.LittleEndian.AppendUint32(out, endChain)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Frames)))
	for _, fr := range b.Frames {
		out = binary.LittleEndian.AppendUint32(out, fr.Pgno)
		off := fr.Off
		if fr.Full {
			off |= 1 << 31
		}
		out = binary.LittleEndian.AppendUint32(out, off)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(fr.Payload)))
		out = append(out, fr.Payload...)
	}
	return out
}

type framesMsg struct {
	incarnation uint64
	batch       core.ExportBatch
	endChain    uint32
}

func decodeFrames(msg []byte) (framesMsg, error) {
	if len(msg) < 33 || msg[0] != mtFrames {
		return framesMsg{}, fmt.Errorf("repl: bad frames message (%d bytes)", len(msg))
	}
	f := framesMsg{
		incarnation: binary.LittleEndian.Uint64(msg[1:]),
		batch: core.ExportBatch{
			From: int(binary.LittleEndian.Uint64(msg[9:])),
			To:   int(binary.LittleEndian.Uint64(msg[17:])),
		},
		endChain: binary.LittleEndian.Uint32(msg[25:]),
	}
	n := int(binary.LittleEndian.Uint32(msg[29:]))
	off := 33
	for i := 0; i < n; i++ {
		if off+12 > len(msg) {
			return f, errShort
		}
		pgno := binary.LittleEndian.Uint32(msg[off:])
		rawOff := binary.LittleEndian.Uint32(msg[off+4:])
		dl := int(binary.LittleEndian.Uint32(msg[off+8:]))
		off += 12
		if off+dl > len(msg) {
			return f, errShort
		}
		f.batch.Frames = append(f.batch.Frames, core.ExportFrame{
			Pgno:    pgno,
			Off:     rawOff &^ (1 << 31),
			Full:    rawOff&(1<<31) != 0,
			Payload: msg[off : off+dl],
		})
		off += dl
	}
	return f, nil
}
