package memsim

import (
	"bytes"
	"sync"
	"testing"
)

// writePersist stores p at addr and drives it all the way to durable
// NVRAM cells (flush, dmb, persist barrier).
func writePersist(d *Domain, addr uint64, p []byte) {
	d.Write(addr, p)
	d.CacheLineFlush(addr, addr+uint64(len(p)))
	d.MemoryBarrier()
	d.PersistBarrier()
}

func TestArmCrashFreezesDurableImage(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	writePersist(d, 0, []byte("AAAA"))

	// Arm: the very next persistence operation is the crash instant.
	// Everything the ghost execution persists afterwards must vanish.
	d.ArmCrash(1, FailDropAll, 1, nil)
	writePersist(d, 0, []byte("BBBB"))
	if !d.CrashTriggered() {
		t.Fatal("trigger did not fire")
	}

	d.PowerFail(FailDropAll, 1)
	d.Recover()
	buf := make([]byte, 4)
	d.Read(0, buf)
	if !bytes.Equal(buf, []byte("AAAA")) {
		t.Fatalf("ghost persist survived the frozen crash: got %q, want AAAA", buf)
	}
}

func TestArmCrashAfterPersistKeepsData(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	// The store is op 1, the flush op 2, the barrier op 3, the persist
	// barrier op 4. Arming past the persist barrier means the commit
	// completed before the crash and must survive.
	d.ArmCrash(4, FailDropAll, 1, nil)
	writePersist(d, 0, []byte("CCCC"))
	if !d.CrashTriggered() {
		t.Fatal("trigger did not fire")
	}
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	buf := make([]byte, 4)
	d.Read(0, buf)
	if !bytes.Equal(buf, []byte("CCCC")) {
		t.Fatalf("persisted data lost across frozen crash: got %q, want CCCC", buf)
	}
}

func TestArmCrashOnTriggerCallback(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	fired := false
	d.ArmCrash(2, FailDropAll, 1, func() { fired = true })
	d.Write(0, []byte("x")) // op 1
	if fired {
		t.Fatal("callback fired before target op")
	}
	d.Write(32, []byte("y")) // op 2 → trigger
	if !fired {
		t.Fatal("callback did not fire at target op")
	}
}

func TestDisarmCrashRestoresNormalPowerFail(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	d.ArmCrash(1, FailDropAll, 1, nil)
	writePersist(d, 0, []byte("DDDD"))
	if !d.CrashTriggered() {
		t.Fatal("trigger did not fire")
	}
	d.DisarmCrash()
	// With the frozen image discarded, PowerFail resolves current state:
	// DDDD was fully persisted by writePersist, so it survives.
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	buf := make([]byte, 4)
	d.Read(0, buf)
	if !bytes.Equal(buf, []byte("DDDD")) {
		t.Fatalf("disarmed PowerFail lost persisted data: got %q, want DDDD", buf)
	}
}

// TestArmCrashAdversarialDeterministic runs the same scripted workload
// twice with the same arm target and seed and demands bit-identical
// survivor images — the property the fuzzer's repro command depends on.
func TestArmCrashAdversarialDeterministic(t *testing.T) {
	run := func() []byte {
		d, _, _ := newDomain(t, Config{Size: 1 << 16})
		for i := 0; i < 64; i++ {
			d.Write(uint64(i*32), bytes.Repeat([]byte{byte(i)}, 32))
		}
		d.CacheLineFlush(0, 32*32) // half queued, half still dirty
		d.ArmCrash(5, FailAdversarial, 42, nil)
		for i := 0; i < 16; i++ {
			d.Write(uint64(i*32), bytes.Repeat([]byte{0xEE}, 32))
		}
		d.PowerFail(FailAdversarial, 42)
		img := make([]byte, 1<<16)
		d.ReadPersisted(0, img)
		return img
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("adversarial frozen crash is not deterministic for a fixed seed")
	}
}

// TestPowerFailConcurrentWithStores hammers the domain from several
// goroutines while power fails and recovers repeatedly. Run under
// -race; the assertion is simply the absence of races and panics —
// the satellite bugfix the fuzzer's mid-operation crashes rely on.
func TestPowerFailConcurrentWithStores(t *testing.T) {
	d, _, _ := newDomain(t, Config{Size: 1 << 16})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * 4096)
			buf := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addr := base + uint64(i%64)*64
				d.Write(addr, buf)
				d.CacheLineFlush(addr, addr+64)
				d.MemoryBarrier()
				d.PersistBarrier()
				d.Read(addr, buf)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		policy := FailPolicy(i % 3)
		d.ArmCrash(int64(1+i%7), policy, int64(i), nil)
		d.PowerFail(policy, int64(i))
		d.Recover()
	}
	close(stop)
	wg.Wait()
	if d.Failed() {
		t.Fatal("domain left in failed state after final Recover")
	}
}
