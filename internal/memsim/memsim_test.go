package memsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

func newDomain(t testing.TB, cfg Config) (*Domain, *simclock.Clock, *metrics.Counters) {
	t.Helper()
	clock := simclock.New()
	m := &metrics.Counters{}
	if cfg.Size == 0 {
		cfg.Size = 1 << 20
	}
	return New(cfg, clock, m), clock, m
}

func TestReadYourWrites(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	data := []byte("hello nvram")
	d.Write(100, data)
	got := make([]byte, len(data))
	d.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
}

func TestUnpersistedDataLostOnPowerFail(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	d.Write(0, []byte("volatile"))
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	got := make([]byte, 8)
	d.Read(0, got)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unflushed write survived power failure: %q", got)
	}
}

func TestFlushAloneDoesNotPersist(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	d.Write(0, []byte("flushed"))
	d.CacheLineFlush(0, 8)
	// No persist barrier: the line sits in the controller queue.
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	got := make([]byte, 8)
	d.Read(0, got)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("flushed-but-unpersisted write survived FailDropAll: %q", got)
	}
}

func TestFlushPlusPersistSurvives(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	data := []byte("durable!")
	d.Write(64, data)
	d.CacheLineFlush(64, 64+uint64(len(data)))
	d.MemoryBarrier()
	d.PersistBarrier()
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	got := make([]byte, len(data))
	d.Read(64, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("persisted write lost: got %q, want %q", got, data)
	}
}

func TestFailKeepCompletedKeepsDrainedLines(t *testing.T) {
	d, clock, _ := newDomain(t, Config{NVRAMWriteLatency: 100 * time.Nanosecond})
	d.Write(0, []byte("aaaa"))
	d.CacheLineFlush(0, 4)
	// Give the controller time to drain the write-back.
	clock.Advance(time.Millisecond)
	d.PowerFail(FailKeepCompleted, 1)
	d.Recover()
	got := make([]byte, 4)
	d.Read(0, got)
	if !bytes.Equal(got, []byte("aaaa")) {
		t.Fatalf("completed write-back lost under FailKeepCompleted: %q", got)
	}
}

func TestFailKeepCompletedDropsInFlightLines(t *testing.T) {
	d, _, _ := newDomain(t, Config{NVRAMWriteLatency: time.Hour})
	d.Write(0, []byte("aaaa"))
	d.CacheLineFlush(0, 4)
	// Controller needs an hour; crash immediately.
	d.PowerFail(FailKeepCompleted, 1)
	d.Recover()
	got := make([]byte, 4)
	d.Read(0, got)
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Fatalf("in-flight write-back survived: %q", got)
	}
}

func TestPersistedViewTracksOnlyDurableBytes(t *testing.T) {
	d, _, _ := newDomain(t, Config{})
	d.Write(0, []byte("first"))
	d.CacheLineFlush(0, 5)
	d.MemoryBarrier()
	d.PersistBarrier()
	d.Write(0, []byte("second"))
	got := make([]byte, 6)
	d.ReadPersisted(0, got)
	if !bytes.Equal(got[:5], []byte("first")) {
		t.Fatalf("persisted view = %q, want prefix %q", got, "first")
	}
	d.Read(0, got)
	if !bytes.Equal(got, []byte("second")) {
		t.Fatalf("volatile view = %q, want %q", got, "second")
	}
}

func TestRewriteAfterFlushKeepsSnapshot(t *testing.T) {
	// A line flushed and then re-dirtied must persist the flushed
	// snapshot, not the newer content, if only the old flush is persisted.
	d, _, _ := newDomain(t, Config{})
	d.Write(0, []byte("AAAA"))
	d.CacheLineFlush(0, 4)
	d.Write(0, []byte("BBBB")) // re-dirty the same line
	d.MemoryBarrier()
	d.PersistBarrier()
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	got := make([]byte, 4)
	d.Read(0, got)
	if !bytes.Equal(got, []byte("AAAA")) {
		t.Fatalf("persisted content = %q, want snapshot %q", got, "AAAA")
	}
}

func TestEvictionWritesBackAndSurvivesPersist(t *testing.T) {
	// A tiny cache forces LRU eviction; evicted lines reach the
	// controller queue and persist at the next persist barrier.
	d, _, m := newDomain(t, Config{CacheCapacityLines: 2, CacheLineSize: 32})
	for i := 0; i < 8; i++ {
		d.Write(uint64(i*32), []byte{byte('a' + i)})
	}
	if got := d.DirtyLines(); got > 2 {
		t.Fatalf("dirty lines = %d, want <= 2", got)
	}
	if got := m.Count(metrics.NVRAMLineWrites); got < 6 {
		t.Fatalf("evictions wrote back %d lines, want >= 6", got)
	}
	d.PersistBarrier()
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	buf := make([]byte, 1)
	for i := 0; i < 6; i++ {
		d.Read(uint64(i*32), buf)
		if buf[0] != byte('a'+i) {
			t.Fatalf("evicted line %d lost: got %q", i, buf)
		}
	}
}

func TestMetricsCountsFlushesAndBarriers(t *testing.T) {
	d, _, m := newDomain(t, Config{CacheLineSize: 32})
	d.Write(0, make([]byte, 100)) // touches 4 lines
	d.CacheLineFlush(0, 100)
	d.MemoryBarrier()
	d.PersistBarrier()
	if got := m.Count(metrics.CacheLineFlush); got != 4 {
		t.Fatalf("flush count = %d, want 4", got)
	}
	if got := m.Count(metrics.MemoryBarrier); got != 1 {
		t.Fatalf("dmb count = %d, want 1", got)
	}
	if got := m.Count(metrics.PersistBarrier); got != 1 {
		t.Fatalf("persist count = %d, want 1", got)
	}
	if got := m.Count(metrics.NVRAMBytes); got != 4*32 {
		t.Fatalf("nvram bytes = %d, want %d", got, 4*32)
	}
}

func TestLazyBatchingCheaperThanEagerPerLine(t *testing.T) {
	// The §5.1 experiment in miniature: flushing N lines then issuing one
	// dmb must cost less virtual time than flush+dmb per line, because
	// issue overlaps the controller drain.
	run := func(eager bool) time.Duration {
		d, clock, _ := newDomain(t, Config{NVRAMWriteLatency: 500 * time.Nanosecond})
		const lines = 64
		for i := 0; i < lines; i++ {
			d.Write(uint64(i*32), make([]byte, 32))
		}
		start := clock.Now()
		if eager {
			for i := 0; i < lines; i++ {
				d.CacheLineFlush(uint64(i*32), uint64(i*32+32))
				d.MemoryBarrier()
			}
		} else {
			for i := 0; i < lines; i++ {
				d.CacheLineFlush(uint64(i*32), uint64(i*32+32))
			}
			d.MemoryBarrier()
		}
		d.PersistBarrier()
		return clock.Now() - start
	}
	lazy, eager := run(false), run(true)
	if lazy >= eager {
		t.Fatalf("lazy sync (%v) not cheaper than eager (%v)", lazy, eager)
	}
	// The gap should be meaningful (paper: dccmvac+dmb up to 23% slower
	// eager), not a rounding artifact.
	if float64(eager) < 1.10*float64(lazy) {
		t.Fatalf("eager/lazy ratio too small: %v vs %v", eager, lazy)
	}
}

func TestSetWriteLatencyScalesFlushTime(t *testing.T) {
	run := func(w time.Duration) time.Duration {
		d, clock, _ := newDomain(t, Config{NVRAMWriteLatency: w})
		for i := 0; i < 16; i++ {
			d.Write(uint64(i*32), make([]byte, 32))
		}
		start := clock.Now()
		d.CacheLineFlush(0, 16*32)
		d.MemoryBarrier()
		d.PersistBarrier()
		return clock.Now() - start
	}
	slow, fast := run(2000*time.Nanosecond), run(400*time.Nanosecond)
	if slow <= fast {
		t.Fatalf("higher NVRAM latency did not increase flush time: %v vs %v", slow, fast)
	}
}

func TestWriteToFailedDomainIsDropped(t *testing.T) {
	// The power is off: a straggler store from a goroutine that has not
	// noticed the crash yet must vanish without taking the process down.
	d, _, _ := newDomain(t, Config{})
	d.Write(0, []byte("x"))
	d.CacheLineFlush(0, 1)
	d.MemoryBarrier()
	d.PersistBarrier()
	d.PowerFail(FailDropAll, 1)
	d.Write(0, []byte("y"))
	d.CacheLineFlush(0, 1)
	d.MemoryBarrier()
	d.PersistBarrier()
	buf := make([]byte, 1)
	d.Read(0, buf)
	if buf[0] != 'x' {
		t.Fatalf("store to failed domain took effect: got %q, want %q", buf, "x")
	}
	d.Recover()
	d.Read(0, buf)
	if buf[0] != 'x' {
		t.Fatalf("post-recover content = %q, want %q", buf, "x")
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	d, _, _ := newDomain(t, Config{Size: 4096})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range write did not panic")
		}
	}()
	d.Write(4090, make([]byte, 100))
}

func TestSyscallChargesTimeAndCount(t *testing.T) {
	d, clock, m := newDomain(t, Config{})
	before := clock.Now()
	d.Syscall()
	if got := m.Count(metrics.Syscall); got != 1 {
		t.Fatalf("syscall count = %d, want 1", got)
	}
	if clock.Now() == before {
		t.Fatal("syscall charged no time")
	}
}

func TestAdversarialFailureRespectsLineGranularity(t *testing.T) {
	// Under adversarial failure each line independently survives or not,
	// but never partially.
	d, _, _ := newDomain(t, Config{CacheLineSize: 32})
	line := bytes.Repeat([]byte{0xAB}, 32)
	for i := 0; i < 32; i++ {
		d.Write(uint64(i*32), line)
	}
	d.CacheLineFlush(0, 32*32)
	d.PowerFail(FailAdversarial, 42)
	d.Recover()
	buf := make([]byte, 32)
	for i := 0; i < 32; i++ {
		d.Read(uint64(i*32), buf)
		allSet := bytes.Equal(buf, line)
		allZero := bytes.Equal(buf, make([]byte, 32))
		if !allSet && !allZero {
			t.Fatalf("line %d partially persisted: %x", i, buf)
		}
	}
}

func TestAdversarialCanPersistUnflushedDirtyLines(t *testing.T) {
	// Dirty cache lines may be evicted by hardware at any moment, so an
	// adversarial crash may persist them even without a flush. Verify
	// that at least one seed does so — this is what forces the
	// commit-mark protocol to be order-robust.
	persisted := false
	for seed := int64(0); seed < 64 && !persisted; seed++ {
		d, _, _ := newDomain(t, Config{CacheLineSize: 32})
		d.Write(0, []byte("dirty"))
		d.PowerFail(FailAdversarial, seed)
		d.Recover()
		buf := make([]byte, 5)
		d.Read(0, buf)
		if bytes.Equal(buf, []byte("dirty")) {
			persisted = true
		}
	}
	if !persisted {
		t.Fatal("no adversarial seed ever persisted an unflushed dirty line")
	}
}

// Property: after arbitrary writes, flush-all + barrier + persist makes
// the volatile and persisted views identical.
func TestPropertyFlushAllPersistsEverything(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, _, _ := newDomain(t, Config{Size: 1 << 16})
		for i := 0; i < 50; i++ {
			addr := uint64(rng.Intn(1<<16 - 256))
			n := 1 + rng.Intn(255)
			p := make([]byte, n)
			rng.Read(p)
			d.Write(addr, p)
		}
		d.CacheLineFlush(0, 1<<16)
		d.MemoryBarrier()
		d.PersistBarrier()
		vol := make([]byte, 1<<16)
		per := make([]byte, 1<<16)
		d.Read(0, vol)
		d.ReadPersisted(0, per)
		return bytes.Equal(vol, per)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a power failure never invents bytes — the persisted view is
// always explainable as a mix of old persisted content and whole lines
// of written content.
func TestPropertyCrashNeverTearsWithinLine(t *testing.T) {
	f := func(seed int64) bool {
		d, _, _ := newDomain(t, Config{Size: 1 << 14, CacheLineSize: 32})
		pattern := bytes.Repeat([]byte{0x5A}, 32)
		rng := rand.New(rand.NewSource(seed))
		var flushed []uint64
		for i := 0; i < 64; i++ {
			addr := uint64(rng.Intn(1<<14/32)) * 32
			d.Write(addr, pattern)
			if rng.Intn(2) == 0 {
				d.CacheLineFlush(addr, addr+32)
				flushed = append(flushed, addr)
			}
		}
		d.PowerFail(FailAdversarial, seed)
		d.Recover()
		buf := make([]byte, 32)
		for a := uint64(0); a < 1<<14; a += 32 {
			d.Read(a, buf)
			if !bytes.Equal(buf, pattern) && !bytes.Equal(buf, make([]byte, 32)) {
				return false
			}
		}
		_ = flushed
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochBarrierPersistsAllDirtyLines(t *testing.T) {
	d, _, m := newDomain(t, Config{})
	d.Write(0, []byte("epoch-a"))
	d.Write(4096, []byte("epoch-b"))
	flushesBefore := m.Count(metrics.CacheLineFlush)
	d.EpochBarrier()
	// No dccmvac instructions were executed — hardware did the work.
	if got := m.Count(metrics.CacheLineFlush) - flushesBefore; got != 0 {
		t.Fatalf("epoch barrier issued %d flush instructions", got)
	}
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	buf := make([]byte, 7)
	d.Read(0, buf)
	if !bytes.Equal(buf, []byte("epoch-a")) {
		t.Fatal("epoch barrier did not persist line A")
	}
	d.Read(4096, buf)
	if !bytes.Equal(buf, []byte("epoch-b")) {
		t.Fatal("epoch barrier did not persist line B")
	}
	if d.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after epoch barrier")
	}
}

func TestEpochBarrierChargesDrainTime(t *testing.T) {
	d, clock, _ := newDomain(t, Config{NVRAMWriteLatency: time.Microsecond, NVRAMBanks: 2})
	for i := 0; i < 16; i++ {
		d.Write(uint64(i*32), make([]byte, 32))
	}
	before := clock.Now()
	d.EpochBarrier()
	elapsed := clock.Now() - before
	// 16 lines over 2 banks at 1 µs each: at least 8 µs of drain.
	if elapsed < 8*time.Microsecond {
		t.Fatalf("epoch barrier charged only %v", elapsed)
	}
}

func TestEpochBarrierOnCleanDomainIsCheap(t *testing.T) {
	d, clock, _ := newDomain(t, Config{})
	before := clock.Now()
	d.EpochBarrier()
	if got := clock.Now() - before; got > 2*DefaultPersistBarrierCost {
		t.Fatalf("empty epoch barrier cost %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(Config{}, simclock.New(), &metrics.Counters{})
	if d.Size() != DefaultSize {
		t.Fatalf("default size = %d, want %d", d.Size(), DefaultSize)
	}
	if d.LineSize() != DefaultCacheLineSize {
		t.Fatalf("default line size = %d, want %d", d.LineSize(), DefaultCacheLineSize)
	}
	if d.WriteLatency() != DefaultNVRAMWriteLatency {
		t.Fatalf("default write latency = %v, want %v", d.WriteLatency(), DefaultNVRAMWriteLatency)
	}
}
