// Media-fault model for the NVRAM domain. Real NVRAM exhibits failure
// modes a clean power-cut model never exercises: retention bit rot,
// cells stuck at stale content, and uncorrectable read errors (the ECC
// gave up). The fault layer injects all three with seeded, configurable
// rates so the salvage-recovery path can be driven deterministically:
//
//   - Bit flips are applied to the durable image at each PowerFail
//     (rot is observed at the reboot that follows an outage), at most
//     one flipped bit per affected cache line.
//   - Stuck lines are chosen deterministically by address: once the
//     fault bites, the line's durable content never changes again,
//     no matter how many persist barriers drain over it.
//   - Read errors surface only through ReadChecked; the unchecked Read
//     path models plain loads, which on real hardware would machine-
//     check — recovery and scrubbing code must use the checked path.
//
// Faults can be confined to address ranges so a harness can target the
// log region while leaving allocator metadata intact ("WAL-only
// damage").
package memsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
)

// ErrMediaRead is the sentinel wrapped by uncorrectable NVRAM read
// errors returned from ReadChecked.
var ErrMediaRead = errors.New("memsim: uncorrectable media read error")

// AddrRange is a half-open [Start, End) address interval.
type AddrRange struct {
	Start, End uint64
}

// FaultConfig parameterizes injected media faults. All rates are
// per-line (bit flips, stuck lines) or per-call (read errors)
// probabilities in [0, 1]; zero disables that fault class.
type FaultConfig struct {
	// Seed drives every fault decision; the same seed and operation
	// sequence reproduces the same damage.
	Seed int64
	// BitFlipRate is the per-line probability that a line of the durable
	// image takes a single-bit flip at each PowerFail.
	BitFlipRate float64
	// StuckLineRate is the per-line probability that a line is stuck:
	// its durable content freezes at the value it held when first
	// persisted after injection.
	StuckLineRate float64
	// ReadErrorRate is the per-call probability that ReadChecked reports
	// an uncorrectable media error instead of returning data.
	ReadErrorRate float64
	// Ranges confines faults to the given address intervals. Empty means
	// the whole domain.
	Ranges []AddrRange

	// Slow faults model gray failures: the medium keeps working but
	// gets slow. SlowOpRate is the per-store probability of an extra
	// virtual-clock stall of SlowOpDelay (an internal remap, a wear-
	// leveling pause). SlowRanges marks degraded regions — stores
	// touching them pay SlowFactor× the normal per-line store cost,
	// modelling a bank whose cells respond at retirement latency.
	// All delays are charged to the virtual clock; nothing corrupts.
	SlowOpRate  float64
	SlowOpDelay time.Duration
	SlowRanges  []AddrRange
	SlowFactor  int
}

func (c FaultConfig) enabled() bool {
	return c.BitFlipRate > 0 || c.StuckLineRate > 0 || c.ReadErrorRate > 0 ||
		c.slowEnabled()
}

func (c FaultConfig) slowEnabled() bool {
	return (c.SlowOpRate > 0 && c.SlowOpDelay > 0) ||
		(c.SlowFactor > 1 && len(c.SlowRanges) > 0)
}

type faultState struct {
	cfg     FaultConfig
	readRng *rand.Rand
	slowRng *rand.Rand
	stuck   map[uint64][]byte // line addr -> frozen durable content
}

// splitmix64 is the standard 64-bit mix used for address-keyed fault
// decisions; deterministic and stateless.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (f *faultState) inRange(addr uint64) bool {
	if len(f.cfg.Ranges) == 0 {
		return true
	}
	for _, r := range f.cfg.Ranges {
		if addr >= r.Start && addr < r.End {
			return true
		}
	}
	return false
}

// isStuck decides, deterministically by address, whether a line carries
// the stuck-at fault.
func (f *faultState) isStuck(la uint64) bool {
	if f.cfg.StuckLineRate <= 0 || !f.inRange(la) {
		return false
	}
	h := splitmix64(la ^ uint64(f.cfg.Seed)*0x9e3779b97f4a7c15)
	return float64(h>>11)/(1<<53) < f.cfg.StuckLineRate
}

// InjectFaults installs (or, with a zero config, removes) the media-
// fault model. Injection may happen at any time; stuck lines freeze at
// the durable content they hold when first re-persisted afterwards.
func (d *Domain) InjectFaults(cfg FaultConfig) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !cfg.enabled() {
		d.faults = nil
		return
	}
	d.faults = &faultState{
		cfg:     cfg,
		readRng: rand.New(rand.NewSource(cfg.Seed)),
		slowRng: rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed) ^ 0x510Afa17)))),
		stuck:   make(map[uint64][]byte),
	}
}

// applySlowFaultLocked charges gray-failure latency for a store covering
// lines [first, last] (nLines of them): the degraded-region multiplier
// plus a seeded per-op stall. Purely a virtual-clock cost — the store
// itself is untouched, which is what makes slow faults gray rather than
// fail-stop. Caller holds d.mu.
func (d *Domain) applySlowFaultLocked(first, last uint64, nLines int) {
	f := d.faults
	if f == nil || !f.cfg.slowEnabled() {
		return
	}
	var extra time.Duration
	if f.cfg.SlowFactor > 1 {
		for _, r := range f.cfg.SlowRanges {
			if first < r.End && last >= r.Start {
				extra += time.Duration(nLines) * d.cfg.StoreCostPerLine *
					time.Duration(f.cfg.SlowFactor-1)
				break
			}
		}
	}
	if f.cfg.SlowOpRate > 0 && f.slowRng.Float64() < f.cfg.SlowOpRate {
		extra += f.cfg.SlowOpDelay
	}
	if extra > 0 {
		d.clock.Advance(extra)
		d.m.Inc(metrics.SlowFaultStalls, 1)
		d.m.Inc(metrics.SlowFaultStallNs, extra.Nanoseconds())
	}
}

// FaultsEnabled reports whether a media-fault model is installed.
func (d *Domain) FaultsEnabled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults != nil
}

// persistLineLocked writes one line's worth of durable content into dst
// at la, honouring stuck-at faults: a stuck line keeps the content it
// held when the fault first bit. Caller holds d.mu.
func (d *Domain) persistLineLocked(dst []byte, la uint64, src []byte) {
	if f := d.faults; f != nil && f.isStuck(la) {
		frozen, ok := f.stuck[la]
		if !ok {
			frozen = make([]byte, d.cfg.CacheLineSize)
			copy(frozen, dst[la:])
			f.stuck[la] = frozen
			d.m.Inc(metrics.MediaStuckLines, 1)
		}
		copy(dst[la:], frozen)
		return
	}
	copy(dst[la:], src)
}

// applyCrashFaultsLocked damages the finalized durable image the way an
// outage-plus-retention-loss would: each line inside the fault ranges
// independently takes a single-bit flip with BitFlipRate probability.
// The flip choices derive from the fault seed and the PowerFail seed,
// so a replayed crash reproduces identical damage regardless of
// goroutine interleavings. Caller holds d.mu.
func (d *Domain) applyCrashFaultsLocked(crashSeed int64) {
	f := d.faults
	if f == nil || f.cfg.BitFlipRate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(f.cfg.Seed) ^ uint64(crashSeed)))))
	ls := uint64(d.cfg.CacheLineSize)
	ranges := f.cfg.Ranges
	if len(ranges) == 0 {
		ranges = []AddrRange{{0, uint64(d.cfg.Size)}}
	}
	for _, r := range ranges {
		end := r.End
		if end > uint64(d.cfg.Size) {
			end = uint64(d.cfg.Size)
		}
		for la := d.lineAddr(r.Start); la < end; la += ls {
			if rng.Float64() >= f.cfg.BitFlipRate {
				continue
			}
			bit := rng.Intn(d.cfg.CacheLineSize * 8)
			d.persisted[la+uint64(bit/8)] ^= 1 << (bit % 8)
			d.m.Inc(metrics.MediaBitFlips, 1)
		}
	}
}

// ReadChecked copies the current logical content at addr into p like
// Read, but models an ECC-checked load: with an installed fault model
// it may return an uncorrectable media error instead. Recovery and
// scrub paths must use this entry point so injected read faults surface
// as errors rather than silent garbage.
func (d *Domain) ReadChecked(addr uint64, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(addr, len(p))
	if f := d.faults; f != nil && f.cfg.ReadErrorRate > 0 && f.inRange(addr) {
		if f.readRng.Float64() < f.cfg.ReadErrorRate {
			d.m.Inc(metrics.MediaReadErrors, 1)
			return fmt.Errorf("%w at addr 0x%x", ErrMediaRead, addr)
		}
	}
	src := d.volatileMem
	if d.failed {
		src = d.persisted
	}
	copy(p, src[addr:])
	return nil
}

// ReadPersistedChecked is the ECC-checked counterpart of ReadPersisted:
// it reads the durable image (what a crash right now would leave), not
// the volatile view, and may return an uncorrectable media error under
// an installed fault model. Scrubbers use it to audit the media behind
// content whose volatile cache copy is still pristine — the only way a
// stuck-at line is observable before the crash that makes it matter.
func (d *Domain) ReadPersistedChecked(addr uint64, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(addr, len(p))
	if f := d.faults; f != nil && f.cfg.ReadErrorRate > 0 && f.inRange(addr) {
		if f.readRng.Float64() < f.cfg.ReadErrorRate {
			d.m.Inc(metrics.MediaReadErrors, 1)
			return fmt.Errorf("%w at addr 0x%x", ErrMediaRead, addr)
		}
	}
	copy(p, d.persisted[addr:])
	return nil
}
