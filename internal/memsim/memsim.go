// Package memsim simulates the memory hierarchy the paper's NVRAM
// experiments depend on: a write-back CPU cache in front of byte-
// addressable NVRAM, with explicit cache-line flush (ARM dccmvac), data
// memory barrier (dmb) and persist-barrier operations, and a power-failure
// switch.
//
// Go offers no control over real cache lines (the repro gate called out
// for this paper), so the simulator is *functional*: writes land in a
// simulated cache overlay and only reach the simulated NVRAM cells when
// they are flushed and a persist barrier drains the memory-controller
// queue. A crash (PowerFail) discards everything that has not been
// persisted, which lets the test suite mechanically verify the paper's
// §4.3 recovery arguments instead of hand-waving them.
//
// # Cost model
//
// Every operation charges virtual time to a shared simclock.Clock:
//
//   - Stores charge a per-line CPU cost (TimeMemcpy). If the cache
//     capacity overflows, the LRU dirty line is written back: its
//     completion is enqueued on the memory controller, masking later
//     flush cost exactly as §5.1 describes.
//   - dccmvac on a dirty line charges a fixed issue cost and enqueues the
//     write-back on the (serial) memory controller. The instruction is
//     non-blocking, as on ARMv7.
//   - dmb blocks until all outstanding write-backs complete. The waiting
//     time is attributed to the flush phase (it is flush completion), the
//     barrier's own fixed cost to the barrier phase — matching how
//     Figure 5 presents the breakdown.
//   - The persist barrier also blocks, then marks the queued lines
//     durable. Its cost defaults to the 1 µs nop-loop emulation of §5.3.
//
// Eager versus lazy synchronization therefore differ exactly as in the
// paper: an eager scheme pays (issue + write latency) per line because a
// dmb follows every log entry, while a lazy scheme issues the whole batch
// back-to-back and overlaps issue with the controller's drain, paying
// roughly the write latency alone.
package memsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Config parameterizes a Domain. Zero fields are replaced by defaults
// matching the Tuna board used in §5 (32 B cache lines, 500 ns NVRAM
// write latency, 1 µs persist barrier).
type Config struct {
	// Size is the size of the NVRAM address space in bytes.
	Size int
	// CacheLineSize is the cache line size in bytes (Tuna: 32, Nexus 5: 64).
	CacheLineSize int
	// CacheCapacityLines bounds the number of dirty lines held in the
	// simulated cache before LRU write-back eviction. 0 selects the
	// default (a 512 KB L2 worth of lines).
	CacheCapacityLines int
	// NVRAMWriteLatency is the memory controller's per-line write-back
	// service time into NVRAM cells.
	NVRAMWriteLatency time.Duration
	// NVRAMBanks is the number of memory banks the controller services
	// concurrently. Lines map to banks by address, so a batch of lazy
	// flushes drains up to NVRAMBanks lines per write latency — the
	// §4.1 motivation ("so that the processors can better utilize
	// caches and memory banks").
	NVRAMBanks int
	// FlushIssueCost is the CPU cost of issuing one dccmvac instruction.
	FlushIssueCost time.Duration
	// BarrierCost is the fixed cost of a dmb instruction (excluding any
	// waiting for outstanding write-backs).
	BarrierCost time.Duration
	// PersistBarrierCost is the fixed cost of the persist barrier, on top
	// of draining the controller queue (§5.3 emulates it with a 1 µs
	// delay).
	PersistBarrierCost time.Duration
	// StoreCostPerLine is the CPU cost of storing one cache line's worth
	// of data (the memcpy component of Figure 5).
	StoreCostPerLine time.Duration
}

// Defaults for Config fields; exported so experiments can reference the
// calibration in one place.
const (
	DefaultSize               = 64 << 20
	DefaultCacheLineSize      = 32
	DefaultCacheCapacityLines = (512 << 10) / 32
	DefaultNVRAMWriteLatency  = 500 * time.Nanosecond
	DefaultNVRAMBanks         = 4
	DefaultFlushIssueCost     = 115 * time.Nanosecond
	DefaultBarrierCost        = 20 * time.Nanosecond
	DefaultPersistBarrierCost = 1 * time.Microsecond
	DefaultStoreCostPerLine   = 18 * time.Nanosecond
)

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = DefaultSize
	}
	if c.CacheLineSize <= 0 {
		c.CacheLineSize = DefaultCacheLineSize
	}
	if c.CacheCapacityLines <= 0 {
		c.CacheCapacityLines = (512 << 10) / c.CacheLineSize
	}
	if c.NVRAMWriteLatency <= 0 {
		c.NVRAMWriteLatency = DefaultNVRAMWriteLatency
	}
	if c.NVRAMBanks <= 0 {
		c.NVRAMBanks = DefaultNVRAMBanks
	}
	if c.FlushIssueCost <= 0 {
		c.FlushIssueCost = DefaultFlushIssueCost
	}
	if c.BarrierCost <= 0 {
		c.BarrierCost = DefaultBarrierCost
	}
	if c.PersistBarrierCost <= 0 {
		c.PersistBarrierCost = DefaultPersistBarrierCost
	}
	if c.StoreCostPerLine <= 0 {
		c.StoreCostPerLine = DefaultStoreCostPerLine
	}
	return c
}

// FailPolicy selects what survives a PowerFail.
type FailPolicy int

const (
	// FailDropAll loses every line that has not been persisted by a
	// persist barrier: the conservative model the paper's recovery
	// argument assumes.
	FailDropAll FailPolicy = iota
	// FailKeepCompleted keeps queued write-backs whose controller
	// completion time has already passed; in-cache dirty lines are lost.
	FailKeepCompleted
	// FailAdversarial persists an arbitrary (seeded) subset of both
	// queued write-backs and still-dirty cache lines, at whole-line
	// granularity. Dirty cache lines may persist because real hardware
	// may evict them at any time; this is the strongest test of the
	// commit-mark ordering protocol.
	FailAdversarial
)

type lineState struct {
	dirty      bool // in cache, not yet flushed/evicted
	lruElem    *lruNode
	queued     bool          // write-back accepted by the memory controller
	queuedData []byte        // content snapshot at flush/eviction time
	completion time.Duration // virtual time the controller finishes the write-back
	// node is the LRU list element backing lruElem, embedded so a
	// clean→dirty transition costs no allocation. queuedData is likewise
	// kept (not nil-ed) after a persist as a reusable snapshot buffer —
	// persistLineLocked copies out of it immediately, so no consumer
	// ever retains it.
	node lruNode
}

type lruNode struct {
	addr       uint64
	prev, next *lruNode
}

// maxStatePool bounds the lineState recycle pool (host memory only).
const maxStatePool = 1 << 14

// snapBuf returns the line's snapshot scratch sized to one cache line,
// reusing the previous snapshot's backing array when possible.
func (st *lineState) snapBuf(lineSize int) []byte {
	if cap(st.queuedData) < lineSize {
		return make([]byte, lineSize)
	}
	return st.queuedData[:lineSize]
}

// crashArm is a one-shot power-failure trigger: when the domain's
// persistence-operation counter reaches target, the durable image that
// would survive a PowerFail at that exact instant is frozen. Execution
// continues afterwards (the still-running goroutines are ghosts of a
// machine whose power already failed), and the next PowerFail call
// restores the frozen image instead of resolving the then-current state.
// This is what lets a crash-consistency fuzzer fail power in the middle
// of an operation — after the Nth flush or barrier — without having to
// stop every goroutine at that instant.
type crashArm struct {
	target    int64
	policy    FailPolicy
	seed      int64
	onTrigger func()
	triggered bool
}

// Domain is one NVRAM persistence domain: an address space, the cache
// overlay in front of it, and the memory-controller queue between them.
// Domain is safe for concurrent use, though the simulated database is
// single-writer (SQLite allows one write transaction at a time, §4.1).
type Domain struct {
	mu    sync.Mutex
	cfg   Config
	clock *simclock.Clock
	m     *metrics.Counters

	volatileMem []byte // current logical content (read-your-writes view)
	persisted   []byte // content guaranteed to survive PowerFail

	lines map[uint64]*lineState // keyed by line-aligned address
	// statePool recycles lineStates (and their snapshot buffers) that
	// the persist-barrier cleanup evicted from the map, so steady-state
	// store traffic does not allocate per touched line. Host memory
	// only; simulated cost is unaffected.
	statePool []*lineState
	// LRU list of dirty lines; head = most recent.
	lruHead, lruTail *lruNode
	dirtyCount       int

	// bankFree[i] is the time bank i finishes its queued write-backs;
	// lastCompletion is the max across banks (what barriers wait for).
	bankFree       []time.Duration
	lastCompletion time.Duration

	// ops counts persistence operations (stores, per-line flushes,
	// barriers) for the ArmCrash trigger.
	ops    int64
	arm    *crashArm
	frozen []byte // durable image captured when the armed trigger fired

	faults *faultState // media-fault model; nil when not injected

	failed bool
}

// New creates a Domain with the given configuration, clock and metrics
// sink. clock and m must not be nil.
func New(cfg Config, clock *simclock.Clock, m *metrics.Counters) *Domain {
	cfg = cfg.withDefaults()
	return &Domain{
		cfg:         cfg,
		clock:       clock,
		m:           m,
		volatileMem: make([]byte, cfg.Size),
		persisted:   make([]byte, cfg.Size),
		lines:       make(map[uint64]*lineState),
		bankFree:    make([]time.Duration, cfg.NVRAMBanks),
	}
}

// Size returns the domain's address-space size in bytes.
func (d *Domain) Size() int { return d.cfg.Size }

// Metrics returns the counters this domain charges its events to, so
// components layered on the domain (e.g. the heap manager) can share
// the same sink.
func (d *Domain) Metrics() *metrics.Counters { return d.m }

// Clock returns the virtual clock this domain charges latency to.
func (d *Domain) Clock() *simclock.Clock { return d.clock }

// LineSize returns the cache line size in bytes.
func (d *Domain) LineSize() int { return d.cfg.CacheLineSize }

// WriteLatency returns the configured per-line NVRAM write latency.
func (d *Domain) WriteLatency() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.NVRAMWriteLatency
}

// SetWriteLatency changes the NVRAM write latency, mirroring the Tuna
// board's adjustable latency knob used by Figures 7 and 9.
func (d *Domain) SetWriteLatency(w time.Duration) {
	d.mu.Lock()
	d.cfg.NVRAMWriteLatency = w
	d.mu.Unlock()
}

func (d *Domain) lineAddr(addr uint64) uint64 {
	return addr &^ (uint64(d.cfg.CacheLineSize) - 1)
}

func (d *Domain) checkRange(addr uint64, n int) {
	if int(addr)+n > d.cfg.Size || int(addr) < 0 {
		panic(fmt.Sprintf("memsim: access [%d,%d) outside domain of %d bytes", addr, int(addr)+n, d.cfg.Size))
	}
}

// Write stores p at addr through the cache. The data becomes visible to
// Read immediately but is not durable until flushed and persisted.
//
// A store to a failed domain is silently dropped: the power is off, so
// the write never happens. (It used to panic, but a crash-injection
// harness may fail power while other goroutines still have stores in
// flight, and those stragglers must not take the process down.)
func (d *Domain) Write(addr uint64, p []byte) {
	if len(p) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(addr, len(p))
	if d.failed {
		return
	}
	copy(d.volatileMem[addr:], p)

	first := d.lineAddr(addr)
	last := d.lineAddr(addr + uint64(len(p)) - 1)
	nLines := int((last-first)/uint64(d.cfg.CacheLineSize)) + 1
	d.clock.Advance(time.Duration(nLines) * d.cfg.StoreCostPerLine)
	d.m.AddTime(metrics.TimeMemcpy, time.Duration(nLines)*d.cfg.StoreCostPerLine)
	d.applySlowFaultLocked(first, last, nLines)

	for la := first; la <= last; la += uint64(d.cfg.CacheLineSize) {
		d.touchDirty(la)
	}
	d.countOpLocked()
}

// WriteV stores the concatenation of parts contiguously at addr, with
// the exact cost model of a single Write over the combined range: one
// lock acquisition, one store-burst charge over the spanned lines, one
// op count. It exists so a caller can place a frame header and its
// payload into adjacent NVRAM without first gluing them together in an
// intermediate DRAM buffer (the zero-copy commit path).
func (d *Domain) WriteV(addr uint64, parts ...[]byte) {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(addr, n)
	if d.failed {
		return
	}
	pos := addr
	for _, p := range parts {
		copy(d.volatileMem[pos:], p)
		pos += uint64(len(p))
	}

	first := d.lineAddr(addr)
	last := d.lineAddr(addr + uint64(n) - 1)
	nLines := int((last-first)/uint64(d.cfg.CacheLineSize)) + 1
	d.clock.Advance(time.Duration(nLines) * d.cfg.StoreCostPerLine)
	d.m.AddTime(metrics.TimeMemcpy, time.Duration(nLines)*d.cfg.StoreCostPerLine)
	d.applySlowFaultLocked(first, last, nLines)

	for la := first; la <= last; la += uint64(d.cfg.CacheLineSize) {
		d.touchDirty(la)
	}
	d.countOpLocked()
}

// touchDirty marks line la dirty and most-recently-used, evicting the LRU
// dirty line if the cache is over capacity. Caller holds d.mu.
func (d *Domain) touchDirty(la uint64) {
	st := d.lines[la]
	if st == nil {
		if n := len(d.statePool); n > 0 {
			st = d.statePool[n-1]
			d.statePool = d.statePool[:n-1]
		} else {
			st = &lineState{}
		}
		d.lines[la] = st
	}
	if st.dirty {
		d.lruMoveFront(st.lruElem)
		return
	}
	st.dirty = true
	st.node = lruNode{addr: la}
	st.lruElem = &st.node
	d.lruPushFront(st.lruElem)
	d.dirtyCount++
	for d.dirtyCount > d.cfg.CacheCapacityLines {
		victim := d.lruTail
		if victim == nil {
			break
		}
		// Hardware eviction: the write-back is enqueued on the controller
		// and its cost is absorbed by the ongoing memcpy phase — this is
		// the "masking" of flush overhead §5.1 observes under lazy
		// synchronization.
		d.writeBackLocked(victim.addr, metrics.TimeMemcpy)
	}
}

// writeBackLocked moves line la from the cache to the controller queue,
// snapshotting its content. timeKey receives the issue cost attribution.
// Caller holds d.mu.
func (d *Domain) writeBackLocked(la uint64, timeKey string) {
	st := d.lines[la]
	if st == nil || !st.dirty {
		return
	}
	st.dirty = false
	d.lruRemove(st.lruElem)
	st.lruElem = nil
	d.dirtyCount--

	snap := st.snapBuf(d.cfg.CacheLineSize)
	copy(snap, d.volatileMem[la:la+uint64(d.cfg.CacheLineSize)])
	st.queued = true
	st.queuedData = snap

	// The memory controller receives the write-back when the dccmvac
	// instruction completes, so the issue cost is charged first; the
	// line's bank then services it after its queued predecessors.
	d.clock.Advance(d.cfg.FlushIssueCost)
	d.m.AddTime(timeKey, d.cfg.FlushIssueCost)

	bank := int(la/uint64(d.cfg.CacheLineSize)) % d.cfg.NVRAMBanks
	start := d.clock.Now()
	if d.bankFree[bank] > start {
		start = d.bankFree[bank]
	}
	st.completion = start + d.cfg.NVRAMWriteLatency
	d.bankFree[bank] = st.completion
	if st.completion > d.lastCompletion {
		d.lastCompletion = st.completion
	}
	d.m.Inc(metrics.NVRAMLineWrites, 1)
	d.m.Inc(metrics.NVRAMBytes, int64(d.cfg.CacheLineSize))
}

// Read copies the current logical content at addr into p (read-your-
// writes through the cache overlay). Reads are charged no latency: the
// experiments measure the write path, and NVRAM read latency is within
// DRAM's order of magnitude (§3).
func (d *Domain) Read(addr uint64, p []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(addr, len(p))
	src := d.volatileMem
	if d.failed {
		src = d.persisted
	}
	copy(p, src[addr:])
}

// ReadPersisted copies the durable content at addr into p: what a crash
// at this instant would preserve under FailDropAll.
func (d *Domain) ReadPersisted(addr uint64, p []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(addr, len(p))
	copy(p, d.persisted[addr:])
}

// CacheLineFlush issues dccmvac for every cache line overlapping
// [start, end), the loop body of the cache_line_flush() syscall of
// Algorithm 2. The flushes are non-blocking; call MemoryBarrier to wait
// for their completion. The kernel-mode-switch cost is charged
// separately via Syscall — dccmvac needs privileged register access on
// ARMv7, so user code pays one Syscall per flush batch while kernel
// components (the Heapo heap manager) flush for free.
func (d *Domain) CacheLineFlush(start, end uint64) {
	if end <= start {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(start, int(end-start))
	if d.failed {
		return
	}
	first := d.lineAddr(start)
	last := d.lineAddr(end - 1)
	for la := first; la <= last; la += uint64(d.cfg.CacheLineSize) {
		d.m.Inc(metrics.CacheLineFlush, 1)
		st := d.lines[la]
		if st != nil && st.dirty {
			d.writeBackLocked(la, metrics.TimeFlush)
		} else {
			// Clean or already-evicted line: dccmvac still executes but
			// finds nothing to write back.
			d.clock.Advance(d.cfg.FlushIssueCost)
			d.m.AddTime(metrics.TimeFlush, d.cfg.FlushIssueCost)
		}
		d.countOpLocked()
	}
}

// SyscallCost is the simulated kernel-mode switch overhead per system
// call (§4: "System call is expensive. It crosses the protection
// boundary and the parameters are copied.").
const SyscallCost = 800 * time.Nanosecond

// Syscall charges one kernel-mode switch. Components that cross the
// user/kernel boundary (cache_line_flush batches, Heapo heap calls) call
// this once per crossing.
func (d *Domain) Syscall() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock.Advance(SyscallCost)
	d.m.Inc(metrics.Syscall, 1)
	d.m.AddTime(metrics.TimeSyscall, SyscallCost)
}

// MemoryBarrier models dmb: it blocks until every outstanding write-back
// has been serviced by the memory controller. The waiting time is
// attributed to the flush phase; the barrier's fixed cost to the barrier
// phase.
func (d *Domain) MemoryBarrier() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return
	}
	d.m.Inc(metrics.MemoryBarrier, 1)
	now := d.clock.Now()
	if d.lastCompletion > now {
		wait := d.lastCompletion - now
		d.clock.Advance(wait)
		d.m.AddTime(metrics.TimeFlush, wait)
	}
	d.clock.Advance(d.cfg.BarrierCost)
	d.m.AddTime(metrics.TimeBarrier, d.cfg.BarrierCost)
	d.countOpLocked()
}

// PersistBarrier drains the memory-controller queue into NVRAM cells and
// guarantees durability of everything flushed before it, at the fixed
// persist-barrier cost (§5.3 emulates it as a 1 µs delay).
func (d *Domain) PersistBarrier() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return
	}
	d.m.Inc(metrics.PersistBarrier, 1)
	now := d.clock.Now()
	if d.lastCompletion > now {
		wait := d.lastCompletion - now
		d.clock.Advance(wait)
		d.m.AddTime(metrics.TimeFlush, wait)
	}
	d.clock.Advance(d.cfg.PersistBarrierCost)
	d.m.AddTime(metrics.TimePersist, d.cfg.PersistBarrierCost)
	for la, st := range d.lines {
		if st.queued {
			d.persistLineLocked(d.persisted, la, st.queuedData)
			st.queued = false
			// queuedData is kept as the line's snapshot scratch; the
			// persist above copied it into the durable image.
		}
		if !st.dirty && !st.queued {
			delete(d.lines, la)
			if len(d.statePool) < maxStatePool {
				d.statePool = append(d.statePool, st)
			}
		}
	}
	// Counted after the queue drains, so a crash armed at this op index
	// observes the barrier's durability effect (a crash "at" a persist
	// barrier means the barrier completed; crashes inside the drain are
	// exercised by arming on the flushes that precede it).
	d.countOpLocked()
}

// EpochBarrier models the persist barrier of an epoch-persistency
// architecture (§4.4, following BPFS): the hardware itself writes back
// every dirty line and guarantees all persists before the barrier occur
// before any after it. No explicit dccmvac instructions (and no
// kernel-mode switches for them) are needed — the programming-
// simplicity argument of relaxed persistency.
func (d *Domain) EpochBarrier() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return
	}
	d.m.Inc(metrics.PersistBarrier, 1)
	// Hardware write-back of all dirty lines: enqueue without per-line
	// issue cost (no instructions are executed for them).
	for la, st := range d.lines {
		if !st.dirty {
			continue
		}
		st.dirty = false
		d.lruRemove(st.lruElem)
		st.lruElem = nil
		d.dirtyCount--
		snap := st.snapBuf(d.cfg.CacheLineSize)
		copy(snap, d.volatileMem[la:la+uint64(d.cfg.CacheLineSize)])
		st.queued = true
		st.queuedData = snap
		bank := int(la/uint64(d.cfg.CacheLineSize)) % d.cfg.NVRAMBanks
		start := d.clock.Now()
		if d.bankFree[bank] > start {
			start = d.bankFree[bank]
		}
		st.completion = start + d.cfg.NVRAMWriteLatency
		d.bankFree[bank] = st.completion
		if st.completion > d.lastCompletion {
			d.lastCompletion = st.completion
		}
		d.m.Inc(metrics.NVRAMLineWrites, 1)
		d.m.Inc(metrics.NVRAMBytes, int64(d.cfg.CacheLineSize))
	}
	now := d.clock.Now()
	if d.lastCompletion > now {
		wait := d.lastCompletion - now
		d.clock.Advance(wait)
		d.m.AddTime(metrics.TimeFlush, wait)
	}
	d.clock.Advance(d.cfg.PersistBarrierCost)
	d.m.AddTime(metrics.TimePersist, d.cfg.PersistBarrierCost)
	for la, st := range d.lines {
		if st.queued {
			d.persistLineLocked(d.persisted, la, st.queuedData)
			st.queued = false
			// queuedData is kept as the line's snapshot scratch; the
			// persist above copied it into the durable image.
		}
		if !st.dirty && !st.queued {
			delete(d.lines, la)
			if len(d.statePool) < maxStatePool {
				d.statePool = append(d.statePool, st)
			}
		}
	}
}

// PowerFail simulates pulling the power. Everything not yet persisted is
// resolved according to the policy; afterwards the domain serves only
// persisted content until Recover is called. seed drives the adversarial
// policy's line-survival choices.
//
// If an ArmCrash trigger has fired, the durable image frozen at the
// trigger instant is restored instead: the machine's power failed back
// then, and everything executed since was a ghost. PowerFail is safe to
// call concurrently with in-flight stores, flushes and barriers from
// other goroutines — they serialize on the domain mutex and become
// no-ops once failed is set.
func (d *Domain) PowerFail(policy FailPolicy, seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen != nil {
		copy(d.persisted, d.frozen)
		d.frozen = nil
	} else {
		d.resolveSurvivorsLocked(d.persisted, policy, seed)
	}
	// Retention bit rot is observed at the reboot following an outage:
	// damage the finalized durable image, seeded by this crash.
	d.applyCrashFaultsLocked(seed)
	d.arm = nil
	for la := range d.lines {
		delete(d.lines, la)
	}
	d.lruHead, d.lruTail = nil, nil
	d.dirtyCount = 0
	d.lastCompletion = 0
	for i := range d.bankFree {
		d.bankFree[i] = 0
	}
	copy(d.volatileMem, d.persisted)
	d.failed = true
}

// resolveSurvivorsLocked applies a fail policy to the current cache and
// controller-queue state, writing surviving lines into dst. Lines are
// visited in ascending address order so the adversarial policy's seeded
// choices are deterministic (map iteration order is not). Caller holds
// d.mu.
func (d *Domain) resolveSurvivorsLocked(dst []byte, policy FailPolicy, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	now := d.clock.Now()
	addrs := make([]uint64, 0, len(d.lines))
	for la := range d.lines {
		addrs = append(addrs, la)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, la := range addrs {
		st := d.lines[la]
		switch policy {
		case FailDropAll:
			// nothing survives
		case FailKeepCompleted:
			if st.queued && st.completion <= now {
				d.persistLineLocked(dst, la, st.queuedData)
			}
		case FailAdversarial:
			if st.queued && rng.Intn(2) == 0 {
				d.persistLineLocked(dst, la, st.queuedData)
			}
			if st.dirty && rng.Intn(4) == 0 {
				// Spontaneous hardware eviction made this line durable
				// even though it was never explicitly flushed.
				d.persistLineLocked(dst, la, d.volatileMem[la:la+uint64(d.cfg.CacheLineSize)])
			}
		}
	}
}

// countOpLocked advances the persistence-operation counter and fires the
// armed crash trigger when the counter reaches its target: the durable
// image a PowerFail at this instant would leave behind is captured into
// d.frozen under the same mutex hold, so no concurrent store can slip
// into it. Caller holds d.mu.
func (d *Domain) countOpLocked() {
	d.ops++
	if d.arm == nil || d.arm.triggered || d.ops < d.arm.target {
		return
	}
	d.arm.triggered = true
	d.frozen = make([]byte, len(d.persisted))
	copy(d.frozen, d.persisted)
	d.resolveSurvivorsLocked(d.frozen, d.arm.policy, d.arm.seed)
	if d.arm.onTrigger != nil {
		d.arm.onTrigger()
	}
}

// ArmCrash installs a one-shot power-failure trigger that fires after
// afterOps further persistence operations (stores, per-line flushes,
// barriers; minimum 1). When it fires, the durable image that would
// survive a PowerFail at that exact operation is frozen under the given
// policy and seed; execution continues, and the next PowerFail restores
// the frozen image. onTrigger (may be nil) runs synchronously inside the
// trigger with the domain mutex held — it must not call back into the
// domain; it exists so sibling devices (file system, block device) can
// freeze their own durable state at the same instant.
func (d *Domain) ArmCrash(afterOps int64, policy FailPolicy, seed int64, onTrigger func()) {
	if afterOps < 1 {
		afterOps = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arm = &crashArm{
		target:    d.ops + afterOps,
		policy:    policy,
		seed:      seed,
		onTrigger: onTrigger,
	}
	d.frozen = nil
}

// DisarmCrash removes any armed trigger and discards a frozen image, so
// a subsequent PowerFail resolves the then-current state normally.
func (d *Domain) DisarmCrash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arm = nil
	d.frozen = nil
}

// CrashTriggered reports whether an armed trigger has fired. A commit
// acknowledged while this still reads false completed strictly before
// the crash instant and must be durable after the PowerFail — the
// classification edge a crash-consistency oracle needs.
func (d *Domain) CrashTriggered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.arm != nil && d.arm.triggered
}

// OpCount returns the persistence-operation counter, the coordinate
// space ArmCrash targets live in.
func (d *Domain) OpCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Recover clears the failed state after a PowerFail, modelling reboot:
// the volatile view is re-initialized from persisted NVRAM content.
func (d *Domain) Recover() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.failed {
		return
	}
	copy(d.volatileMem, d.persisted)
	d.failed = false
}

// Failed reports whether the domain is in the post-PowerFail state.
func (d *Domain) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// DirtyLines reports the number of dirty lines currently cached; useful
// for tests and for the Table 1 accounting.
func (d *Domain) DirtyLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirtyCount
}

// lru helpers; caller holds d.mu.

func (d *Domain) lruPushFront(n *lruNode) {
	n.prev = nil
	n.next = d.lruHead
	if d.lruHead != nil {
		d.lruHead.prev = n
	}
	d.lruHead = n
	if d.lruTail == nil {
		d.lruTail = n
	}
}

func (d *Domain) lruRemove(n *lruNode) {
	if n == nil {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		d.lruHead = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		d.lruTail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (d *Domain) lruMoveFront(n *lruNode) {
	if d.lruHead == n {
		return
	}
	d.lruRemove(n)
	d.lruPushFront(n)
}
