// Slow-fault (gray-failure) tests for the NVRAM domain: stall
// injection must be deterministic for a fixed seed, and power failures
// racing stores that are mid-stall must stay safe under -race.
package memsim

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSlowFaultsDeterministicForSeed(t *testing.T) {
	run := func() (int64, int64, time.Duration) {
		d, clock, m := newDomain(t, Config{Size: 1 << 16})
		d.InjectFaults(FaultConfig{
			Seed:        7,
			SlowOpRate:  0.3,
			SlowOpDelay: 5 * time.Microsecond,
			SlowRanges:  []AddrRange{{Start: 0, End: 4096}},
			SlowFactor:  4,
		})
		buf := make([]byte, 64)
		for i := 0; i < 500; i++ {
			writePersist(d, uint64((i*64)%(1<<15)), buf)
		}
		return m.Count(metrics.SlowFaultStalls), m.Count(metrics.SlowFaultStallNs), clock.Now()
	}
	s1, ns1, t1 := run()
	s2, ns2, t2 := run()
	if s1 == 0 {
		t.Fatal("no slow-fault stalls fired; the config should bite at this op count")
	}
	if s1 != s2 || ns1 != ns2 || t1 != t2 {
		t.Fatalf("slow faults not deterministic: %d stalls/%dns/%v vs %d stalls/%dns/%v",
			s1, ns1, t1, s2, ns2, t2)
	}
}

func TestSlowFaultsAreGrayNotFailStop(t *testing.T) {
	d, _, m := newDomain(t, Config{Size: 1 << 16})
	d.InjectFaults(FaultConfig{
		Seed:        1,
		SlowOpRate:  1, // every store stalls
		SlowOpDelay: time.Microsecond,
	})
	writePersist(d, 0, []byte("DATA"))
	if m.Count(metrics.SlowFaultStalls) == 0 {
		t.Fatal("stall did not fire at rate 1")
	}
	buf := make([]byte, 4)
	d.Read(0, buf)
	if string(buf) != "DATA" {
		t.Fatalf("slow fault corrupted data: %q", buf)
	}
	d.PowerFail(FailDropAll, 1)
	d.Recover()
	d.Read(0, buf)
	if string(buf) != "DATA" {
		t.Fatalf("slow fault broke durability: %q after recovery", buf)
	}
}

// TestPowerFailConcurrentWithSlowStores mirrors
// TestPowerFailConcurrentWithStores with the gray-failure model armed:
// power failures race stores that are mid slow-fault stall. Run under
// -race; the assertion is the absence of races and panics while the
// virtual clock is being advanced from inside the store path.
func TestPowerFailConcurrentWithSlowStores(t *testing.T) {
	d, _, _ := newDomain(t, Config{Size: 1 << 16})
	d.InjectFaults(FaultConfig{
		Seed:        3,
		SlowOpRate:  0.5,
		SlowOpDelay: 2 * time.Microsecond,
		SlowRanges:  []AddrRange{{Start: 0, End: 1 << 16}},
		SlowFactor:  3,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * 4096)
			buf := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addr := base + uint64(i%64)*64
				d.Write(addr, buf)
				d.CacheLineFlush(addr, addr+64)
				d.MemoryBarrier()
				d.PersistBarrier()
				d.Read(addr, buf)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		policy := FailPolicy(i % 3)
		d.ArmCrash(int64(1+i%7), policy, int64(i), nil)
		d.PowerFail(policy, int64(i))
		d.Recover()
	}
	close(stop)
	wg.Wait()
	if d.Failed() {
		t.Fatal("domain left in failed state after final Recover")
	}
}
