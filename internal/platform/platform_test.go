package platform

import (
	"testing"
	"time"

	"repro/internal/memsim"
)

func TestNewTuna(t *testing.T) {
	p, err := NewTuna()
	if err != nil {
		t.Fatal(err)
	}
	if p.NVRAM.LineSize() != 32 {
		t.Fatalf("Tuna line size = %d, want 32", p.NVRAM.LineSize())
	}
	if p.NVRAM.WriteLatency() != 500*time.Nanosecond {
		t.Fatalf("Tuna NVRAM latency = %v", p.NVRAM.WriteLatency())
	}
	if p.Trace != nil {
		t.Fatal("Tuna should not trace by default")
	}
	if p.Heap.TotalPages() == 0 {
		t.Fatal("heap not formatted")
	}
}

func TestNewNexus5(t *testing.T) {
	p, err := NewNexus5()
	if err != nil {
		t.Fatal(err)
	}
	if p.NVRAM.LineSize() != 64 {
		t.Fatalf("Nexus 5 line size = %d, want 64", p.NVRAM.LineSize())
	}
	if p.Trace == nil {
		t.Fatal("Nexus 5 must have block tracing for Figure 8")
	}
}

func TestSetNVRAMLatency(t *testing.T) {
	p, _ := NewTuna()
	p.SetNVRAMLatency(1942 * time.Nanosecond)
	if got := p.NVRAM.WriteLatency(); got != 1942*time.Nanosecond {
		t.Fatalf("latency = %v", got)
	}
}

func TestPowerFailRebootCycle(t *testing.T) {
	p, _ := NewTuna()
	blk, err := p.Heap.NVPreMalloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.FS.Create("x", "db")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("unsynced"), 0)

	p.PowerFail(memsim.FailDropAll, 1)
	if err := p.Reboot(); err != nil {
		t.Fatal(err)
	}
	// Pending block reclaimed by Reboot's heap recovery.
	if st, _ := p.Heap.StateOf(blk.Addr); st != 0 /* StateFree */ {
		t.Fatalf("pending block not reclaimed: state %d", st)
	}
	// Unsynced file gone (it was never fsynced).
	if p.FS.Exists("x") {
		t.Fatal("uncommitted file survived machine crash")
	}
	// Shared clock keeps running after reboot.
	before := p.Clock.Now()
	p.Heap.Device().Syscall()
	if p.Clock.Now() == before {
		t.Fatal("clock not shared post-reboot")
	}
}
